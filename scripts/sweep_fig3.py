#!/usr/bin/env python3
"""Regenerate the Fig. 3 sweep through the colibri-sim CLI.

The figure benches are hardcoded per-figure; this script shows the
composable path: one colibri-sim invocation per (adapter, bins) point,
merged into a single CSV on stdout. Stdlib only.

Usage:
  python3 scripts/sweep_fig3.py [--sim build/colibri-sim] [--cores 256]
          [--bins 1,2,4,...] [--adapters colibri,lrsc_single,...]
"""

import argparse
import csv
import io
import subprocess
import sys

DEFAULT_BINS = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
DEFAULT_ADAPTERS = ["amo", "lrscwait_ideal", "lrscwait", "colibri",
                    "lrsc_single"]


def run_point(sim, adapter, bins, cores, extra):
    cmd = [sim, "--adapter", adapter, "--workload", "histogram",
           "--cores", str(cores), "--bins", str(bins), "--csv"] + extra
    proc = subprocess.run(cmd, capture_output=True, text=True)
    # rc 1 = the run finished but failed self-verification; it still
    # prints its CSV row (verified=NO), which is exactly what we want to
    # record. Only treat runs with no parseable row as failed.
    rows = list(csv.DictReader(io.StringIO(proc.stdout)))
    if not rows:
        sys.stderr.write(f"FAILED (rc={proc.returncode}): {' '.join(cmd)}\n"
                         f"{proc.stderr}")
        return None
    return rows[0]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--sim", default="build/colibri-sim")
    ap.add_argument("--cores", type=int, default=256)
    ap.add_argument("--bins", default=",".join(map(str, DEFAULT_BINS)))
    ap.add_argument("--adapters", default=",".join(DEFAULT_ADAPTERS))
    ap.add_argument("--extra", default="",
                    help="extra colibri-sim flags, space-separated")
    args = ap.parse_args()

    bins = [int(b) for b in args.bins.split(",") if b]
    adapters = [a for a in args.adapters.split(",") if a]
    extra = args.extra.split() if args.extra else []

    writer = csv.writer(sys.stdout)
    writer.writerow(["adapter", "bins", "ops_per_cycle", "jain", "verified"])
    failures = 0
    for adapter in adapters:
        for b in bins:
            row = run_point(args.sim, adapter, b, args.cores, extra)
            if row is None:
                failures += 1
                continue
            writer.writerow([adapter, b, row["ops/cycle"], row["jain"],
                             row["verified"]])
            sys.stdout.flush()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
