#!/usr/bin/env python3
"""Diff a fresh benchmark run against a committed baseline and gate on it.

The counterpart to bench_record.py: where that script archives a run, this
one fails CI when the run regressed. Reads two JSON documents of the same
flavor and compares them series by series:

  exp mode     colibri-exp documents (e.g. BENCH_wgen.json). The numbers
               are simulated and bit-deterministic, so the gate is hard:
               any per-label drop in aggregate ops/cycle beyond the
               threshold fails, as does any rise in the per-op p99 latency
               where the document reports one.
  gbench mode  google-benchmark documents (e.g. BENCH_engine.json). Wall
               clock varies across machines, so by default only series
               present in both files are compared and --normalize divides
               every rate by the file's geometric-mean rate first,
               cancelling the machine-speed factor and gating only on
               *relative* shape changes.

Exit status: 0 = within threshold, 1 = regression (or malformed input),
2 = usage error. Improvements never fail.

Usage:
  scripts/bench_compare.py --mode exp BENCH_wgen.json fresh_wgen.json
  scripts/bench_compare.py --mode gbench --normalize \\
      BENCH_engine.json fresh_engine.json --threshold 0.10
  scripts/bench_compare.py --self-test      # exercises the gate itself
"""

import argparse
import json
import math
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        return None


def exp_series(report):
    """label -> {"opsPerCycle": mean, "p99": latency} from a colibri-exp doc."""
    schema = report.get("schema", "")
    if not schema.startswith("colibri-exp"):
        print(
            f"bench_compare: unexpected schema '{schema}' (want colibri-exp-*)",
            file=sys.stderr,
        )
        return None
    series = {}
    for run in report.get("runs", []):
        label = run.get("label", "?")
        entry = {}
        mean = run.get("aggregate", {}).get("opsPerCycle", {}).get("mean")
        if mean is not None:
            entry["opsPerCycle"] = mean
        reps = run.get("reps", [])
        p99s = [r["opLatency"]["p99"] for r in reps if "opLatency" in r]
        if p99s:
            entry["p99"] = sum(p99s) / len(p99s)
        if entry:
            series[label] = entry
    return series


def gbench_series(report, normalize):
    """name -> {"rate": items/s or 1/time} from a google-benchmark doc."""
    series = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        rate = b.get("items_per_second")
        if rate is None:
            t = b.get("real_time")
            rate = 1.0 / t if t else None
        if rate:
            series[b["name"]] = {"rate": rate}
    if normalize and series:
        gmean = math.exp(
            sum(math.log(v["rate"]) for v in series.values()) / len(series)
        )
        for v in series.values():
            v["rate"] /= gmean
    return series


# Per-metric direction: +1 = bigger is better (throughput), -1 = smaller is
# better (latency).
DIRECTION = {"opsPerCycle": 1, "rate": 1, "p99": -1}


def compare(base, cur, threshold, presence_only=False):
    """Return (regressions, rows) comparing metric dicts keyed by series.

    With presence_only, magnitudes are not gated: only a series missing
    from the current run is a regression. Used when the baseline was
    recorded on a single-CPU host (context.num_cpus == 1), where the
    parallel-engine series measure dispatcher overhead rather than
    speedup and their relative shape is not portable.
    """
    regressions = []
    rows = []
    for name in sorted(base):
        if name not in cur:
            rows.append((name, "-", "-", "-", "MISSING"))
            regressions.append(f"{name}: series missing from current run")
            continue
        if presence_only:
            rows.append((name, "-", "-", "-", "present"))
            continue
        for metric, b in sorted(base[name].items()):
            c = cur[name].get(metric)
            if c is None or b == 0:
                continue
            change = (c - b) / b
            bad = change * DIRECTION[metric] < -threshold
            rows.append(
                (name, metric, f"{b:.6g}", f"{c:.6g}", f"{change:+.1%}" + (" REGRESSION" if bad else ""))
            )
            if bad:
                regressions.append(
                    f"{name} [{metric}]: {b:.6g} -> {c:.6g} ({change:+.1%}, "
                    f"threshold {threshold:.0%})"
                )
    return regressions, rows


def self_test(threshold):
    """The gate must trip on an injected 12% regression and stay quiet on
    identical inputs — run as a CTest so the gate itself is regression-
    tested."""
    base = {
        "a": {"opsPerCycle": 1.00, "p99": 100.0},
        "b": {"opsPerCycle": 0.50},
    }
    same, _ = compare(base, base, threshold)
    if same:
        print("bench_compare: self-test FAILED (identical inputs flagged)")
        return 1
    slower = {
        "a": {"opsPerCycle": 0.88, "p99": 100.0},  # -12% throughput
        "b": {"opsPerCycle": 0.50},
    }
    hit, _ = compare(base, slower, threshold)
    if not hit:
        print("bench_compare: self-test FAILED (12% drop not flagged)")
        return 1
    latency = {
        "a": {"opsPerCycle": 1.00, "p99": 115.0},  # +15% p99
        "b": {"opsPerCycle": 0.50},
    }
    hit, _ = compare(base, latency, threshold)
    if not hit:
        print("bench_compare: self-test FAILED (p99 rise not flagged)")
        return 1
    faster = {
        "a": {"opsPerCycle": 1.30, "p99": 60.0},
        "b": {"opsPerCycle": 0.55},
    }
    ok, _ = compare(base, faster, threshold)
    if ok:
        print("bench_compare: self-test FAILED (improvement flagged)")
        return 1
    missing = dict(base)
    del missing["b"]
    hit, _ = compare(base, missing, threshold)
    if not hit:
        print("bench_compare: self-test FAILED (missing series not flagged)")
        return 1

    # Engine-threads sweep labels: each engine_threads:N series is its own
    # gated series, parsed out of a real google-benchmark document shape.
    def gbench_doc(rates):
        return {
            "benchmarks": [
                {
                    "name": f"BM_Parallel1kZipfHot/engine_threads:{t}",
                    "run_type": "iteration",
                    "items_per_second": r,
                }
                for t, r in rates.items()
            ]
        }

    sweep_base = gbench_series(gbench_doc({1: 1.0e6, 2: 1.8e6, 8: 5.2e6}), False)
    if sorted(sweep_base) != [
        "BM_Parallel1kZipfHot/engine_threads:1",
        "BM_Parallel1kZipfHot/engine_threads:2",
        "BM_Parallel1kZipfHot/engine_threads:8",
    ]:
        print("bench_compare: self-test FAILED (engine_threads labels lost)")
        return 1
    collapsed = gbench_series(gbench_doc({1: 1.0e6, 2: 1.8e6, 8: 1.0e6}), False)
    hit, _ = compare(sweep_base, collapsed, threshold)
    if not hit:
        print("bench_compare: self-test FAILED (speedup collapse not flagged)")
        return 1
    dropped = gbench_series(gbench_doc({1: 1.0e6, 2: 1.8e6}), False)
    hit, _ = compare(sweep_base, dropped, threshold)
    if not hit:
        print("bench_compare: self-test FAILED (dropped thread series not "
              "flagged)")
        return 1

    # Presence-only mode (single-CPU baseline): magnitude collapses pass,
    # missing series still fail.
    ok, _ = compare(sweep_base, collapsed, threshold, presence_only=True)
    if ok:
        print("bench_compare: self-test FAILED (presence-only gated on "
              "magnitude)")
        return 1
    hit, _ = compare(sweep_base, dropped, threshold, presence_only=True)
    if not hit:
        print("bench_compare: self-test FAILED (presence-only missed a "
              "dropped series)")
        return 1
    print("bench_compare: self-test passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline", nargs="?", help="committed baseline JSON")
    parser.add_argument("current", nargs="?", help="fresh run JSON")
    parser.add_argument(
        "--mode",
        choices=["gbench", "exp"],
        default="exp",
        help="document flavor (default: %(default)s)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="allowed fractional regression (default: %(default)s)",
    )
    parser.add_argument(
        "--normalize",
        action="store_true",
        help="gbench: divide rates by the file's geometric mean first "
        "(compare shape, not machine speed)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the gate trips on an injected regression and exit",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.threshold)
    if not args.baseline or not args.current:
        parser.error("baseline and current JSON paths are required")

    base_doc = load(args.baseline)
    cur_doc = load(args.current)
    if base_doc is None or cur_doc is None:
        return 1

    presence_only = False
    if args.mode == "exp":
        base = exp_series(base_doc)
        cur = exp_series(cur_doc)
    else:
        base = gbench_series(base_doc, args.normalize)
        cur = gbench_series(cur_doc, args.normalize)
        # A baseline recorded on a one-CPU host has no meaningful shape for
        # the engine-threads sweeps (every parallel series is pure
        # dispatcher overhead there), so gate on presence only.
        presence_only = (
            base_doc.get("context", {}).get("num_cpus") == 1
        )
    if base is None or cur is None:
        return 1
    if not base:
        print("bench_compare: baseline has no comparable series", file=sys.stderr)
        return 1

    if presence_only:
        print(
            "bench_compare: baseline context.num_cpus == 1 — gating on "
            "series presence only"
        )
    regressions, rows = compare(base, cur, args.threshold, presence_only)
    width = max(len(name) for name, *_ in rows)
    print(f"bench_compare: {args.baseline} vs {args.current} "
          f"(threshold {args.threshold:.0%}"
          + (", normalized" if args.normalize else "") + ")")
    for name, metric, b, c, verdict in rows:
        print(f"  {name:<{width}}  {metric:<12} {b:>12} -> {c:>12}  {verdict}")
    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s):")
        for r in regressions:
            print(f"  {r}")
        return 1
    print("bench_compare: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
