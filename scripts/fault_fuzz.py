#!/usr/bin/env python3
"""Bounded random fault-injection sweep over the colibri-sim CLI.

Each trial draws an adapter, a workload, a fault profile, a 64-bit fault
seed, and an engine-thread count from a seeded RNG, runs colibri-sim with
--json --json-fault, and checks three things:

  1. the run exits 0 (no invariant violation, no watchdog trip),
  2. every repetition reports "verified": true (faults cost retries,
     never correctness),
  3. the run is deterministic: a second identical invocation produces
     byte-identical stdout.

The sweep is bounded (--trials, --timeout) and reproducible (--seed fixes
the whole schedule). On any failure the script prints the exact one-line
command that reproduces it, then exits 1.

Usage:
  scripts/fault_fuzz.py --bin build/colibri-sim --trials 20
  scripts/fault_fuzz.py --bin build/colibri-sim --seed 7 --trials 50
  scripts/fault_fuzz.py --self-test     # no binary needed; run as a CTest

Exit status: 0 = all trials passed, 1 = a trial failed (repro printed),
2 = usage error.
"""

import argparse
import json
import random
import shlex
import subprocess
import sys

ADAPTERS = ["amo", "lrsc_single", "lrsc_table", "lrscwait", "colibri"]
WORKLOADS = ["histogram", "msqueue", "uniform_fa", "zipf_hot"]
PROFILES = ["net_jitter", "sc_storm", "evict_churn", "chaos"]
ENGINE_THREADS = ["1", "2", "8"]

# Small fixed geometry: 16 cores in 2 groups — big enough for real
# contention and for the parallel engine to activate, small enough that a
# 50-trial sweep finishes in seconds.
GEOMETRY = [
    "--cores", "16", "--cores-per-tile", "4", "--tiles-per-group", "2",
    "--banks-per-tile", "4", "--warmup", "500", "--measure", "2000",
]


def make_trial(rng):
    """One trial's CLI arguments (everything after the binary path)."""
    return GEOMETRY + [
        "--adapter", rng.choice(ADAPTERS),
        "--workload", rng.choice(WORKLOADS),
        "--seed", str(rng.getrandbits(32) | 1),
        "--fault", rng.choice(PROFILES),
        "--fault-seed", str(rng.getrandbits(64) | 1),
        "--engine-threads", rng.choice(ENGINE_THREADS),
        "--json", "--json-fault",
    ]


def repro_line(binary, args):
    return shlex.join([binary] + args)


def verdict(returncode, stdout):
    """(ok, reason) for one completed run's exit code + JSON stdout."""
    if returncode != 0:
        return False, f"exit code {returncode} (want 0)"
    try:
        doc = json.loads(stdout)
    except json.JSONDecodeError as e:
        return False, f"stdout is not valid JSON: {e}"
    runs = doc.get("runs", [])
    if not runs:
        return False, "JSON has no runs"
    for run in runs:
        if not run.get("aggregate", {}).get("allVerified", False):
            return False, "aggregate.allVerified is false"
        for rep in run.get("reps", []):
            if not rep.get("verified", False):
                return False, f"rep seed={rep.get('seed')} not verified"
            fault = rep.get("fault")
            if fault is None:
                return False, "--json-fault block missing"
            if fault.get("seed", 0) == 0:
                return False, "fault.seed is 0 with a profile active"
    return True, "ok"


def run_one(binary, args, timeout):
    try:
        p = subprocess.run(
            [binary] + args, capture_output=True, text=True, timeout=timeout
        )
    except subprocess.TimeoutExpired:
        return None, f"timed out after {timeout}s"
    except OSError as e:
        return None, f"cannot run {binary}: {e}"
    return p, None


def fuzz(binary, trials, seed, timeout):
    rng = random.Random(seed)
    for i in range(trials):
        args = make_trial(rng)
        first, err = run_one(binary, args, timeout)
        if first is not None:
            ok, reason = verdict(first.returncode, first.stdout)
        else:
            ok, reason = False, err
        if ok:
            second, err = run_one(binary, args, timeout)
            if second is None:
                ok, reason = False, err
            elif second.stdout != first.stdout:
                ok, reason = False, "rerun stdout diverged (nondeterminism)"
        if not ok:
            print(f"fault_fuzz: trial {i} FAILED: {reason}")
            if first is not None and first.stderr:
                sys.stdout.write(first.stderr)
            print(f"repro: {repro_line(binary, args)}")
            return 1
        print(f"fault_fuzz: trial {i} ok ({describe(args)})")
    print(f"fault_fuzz: {trials} trials passed (seed {seed})")
    return 0


def describe(args):
    d = dict(zip(args, args[1:]))
    return (
        f"{d.get('--adapter')} x {d.get('--workload')} x {d.get('--fault')} "
        f"threads={d.get('--engine-threads')}"
    )


def self_test():
    """Exercise trial generation and the verdict logic without a binary —
    runs as a CTest so a broken fuzzer fails the build, not a nightly."""
    # The schedule is a pure function of the meta-seed.
    a = [make_trial(random.Random(7)) for _ in range(5)]
    b = [make_trial(random.Random(7)) for _ in range(5)]
    if a != b:
        print("fault_fuzz: self-test FAILED (schedule not reproducible)")
        return 1
    if a == [make_trial(random.Random(8)) for _ in range(5)]:
        print("fault_fuzz: self-test FAILED (meta-seed ignored)")
        return 1
    for trial in a:
        for flag in ("--adapter", "--fault", "--fault-seed", "--json-fault"):
            if flag not in trial:
                print(f"fault_fuzz: self-test FAILED ({flag} missing)")
                return 1

    good = json.dumps({
        "runs": [{
            "aggregate": {"allVerified": True},
            "reps": [{"verified": True, "seed": 1,
                      "fault": {"seed": 99, "injected": 3}}],
        }]
    })
    ok, _ = verdict(0, good)
    if not ok:
        print("fault_fuzz: self-test FAILED (clean run flagged)")
        return 1
    cases = [
        (3, good, "watchdog exit not flagged"),
        (0, good.replace("true", "false"), "unverified rep not flagged"),
        (0, "not json", "malformed JSON not flagged"),
        (0, json.dumps({"runs": []}), "empty runs not flagged"),
        (0, good.replace('"seed": 99', '"seed": 0'),
         "zero fault seed not flagged"),
    ]
    for rc, out, msg in cases:
        ok, _ = verdict(rc, out)
        if ok:
            print(f"fault_fuzz: self-test FAILED ({msg})")
            return 1

    line = repro_line("./colibri-sim", a[0])
    if shlex.split(line) != ["./colibri-sim"] + a[0]:
        print("fault_fuzz: self-test FAILED (repro line does not round-trip)")
        return 1
    print("fault_fuzz: self-test passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--bin", help="path to the colibri-sim binary")
    parser.add_argument(
        "--trials", type=int, default=20,
        help="number of random trials (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=1,
        help="meta-seed fixing the whole trial schedule (default: "
        "%(default)s)",
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0,
        help="per-run wall-clock limit in seconds (default: %(default)s)",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="verify the fuzzer's own schedule + verdict logic and exit",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.bin:
        parser.error("--bin is required (or use --self-test)")
    if args.trials < 1:
        parser.error("--trials must be >= 1")
    return fuzz(args.bin, args.trials, args.seed, args.timeout)


if __name__ == "__main__":
    sys.exit(main())
