#!/usr/bin/env python3
"""Render colibri observability output as ASCII sparkline tables.

Reads any of the three sink formats the simulator emits and prints a
terminal-friendly summary — no matplotlib, no dependencies beyond the
standard library:

  metrics CSV   --metrics-csv output: `cycle,<metric>,...` rows of
                cumulative simulated-cycle samples. One sparkline per
                metric, plus min/max/last columns.
  exp JSON      colibri-exp-v2 documents carrying a "timeseries" block
                (produced by --json together with --metrics-csv). Same
                table, read from the samples matrix; histogram blocks are
                rendered as bucket bars.
  trace JSON    Chrome trace_event files from --trace: per-name event
                counts and total/mean span durations.

The input kind is sniffed from the content, not the file name. Counters
in colibri sinks are cumulative; pass --rate to plot first differences
per interval instead (usually the more readable view).

Exit status: 0 = ok, 1 = malformed input, 2 = usage error.

Usage:
  scripts/metrics_plot.py run.csv
  scripts/metrics_plot.py results.json --rate --width 60
  scripts/metrics_plot.py trace.json
  scripts/metrics_plot.py --self-test    # exercises parsing + rendering
"""

import argparse
import json
import sys

RAMP = " .:-=+*#%@"


def load_text(path):
    try:
        with open(path) as f:
            return f.read()
    except OSError as e:
        print(f"metrics_plot: cannot read {path}: {e}", file=sys.stderr)
        return None


def sparkline(values, width):
    """Downsample `values` to `width` buckets and map onto the ASCII ramp."""
    if not values:
        return ""
    if len(values) > width:
        # Bucket means: len(values) -> width, deterministic.
        buckets = []
        for b in range(width):
            lo = b * len(values) // width
            hi = max(lo + 1, (b + 1) * len(values) // width)
            chunk = values[lo:hi]
            buckets.append(sum(chunk) / len(chunk))
        values = buckets
    vmin = min(values)
    vmax = max(values)
    span = vmax - vmin
    if span == 0:
        return RAMP[0] * len(values)
    out = []
    for v in values:
        idx = int((v - vmin) / span * (len(RAMP) - 1))
        out.append(RAMP[idx])
    return "".join(out)


def fmt(v):
    if v == int(v) and abs(v) < 2**53:
        return str(int(v))
    return f"{v:.6g}"


def diffs(values):
    return [b - a for a, b in zip(values, values[1:])]


def render_series(names, columns, width, rate, out=sys.stdout):
    """Print one sparkline row per metric from parallel value columns."""
    namew = max((len(n) for n in names), default=0)
    header = f"{'metric':<{namew}}  {'spark':<{width}}  {'min':>12} {'max':>12} {'last':>12}"
    print(header, file=out)
    print("-" * len(header), file=out)
    for name, values in zip(names, columns):
        series = diffs(values) if rate else values
        if not series:
            continue
        print(
            f"{name:<{namew}}  {sparkline(series, width):<{width}}  "
            f"{fmt(min(series)):>12} {fmt(max(series)):>12} {fmt(series[-1]):>12}",
            file=out,
        )


def render_histogram(name, buckets, width, out=sys.stdout):
    total = sum(buckets)
    if total == 0:
        return
    print(f"\n{name} (log2 buckets, {total} samples)", file=out)
    peak = max(buckets)
    for i, n in enumerate(buckets):
        if n == 0:
            continue
        if i == 0:
            label = "0"
        elif i == len(buckets) - 1:
            label = f"{2 ** (i - 1)}+"
        else:
            label = f"{2 ** (i - 1)}-{2 ** i - 1}"
        bar = "#" * max(1, int(n / peak * width))
        print(f"  {label:>14}  {bar} {n}", file=out)


def plot_csv(text, width, rate, out=sys.stdout):
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        print("metrics_plot: empty CSV", file=sys.stderr)
        return 1
    header = lines[0].split(",")
    if header[0] != "cycle":
        print("metrics_plot: not a metrics CSV (no leading 'cycle' column)",
              file=sys.stderr)
        return 1
    names = header[1:]
    columns = [[] for _ in names]
    cycles = []
    for ln in lines[1:]:
        cells = ln.split(",")
        if len(cells) != len(header):
            print(f"metrics_plot: ragged CSV row: {ln!r}", file=sys.stderr)
            return 1
        cycles.append(float(cells[0]))
        for col, cell in zip(columns, cells[1:]):
            col.append(float(cell))
    print(f"{len(cycles)} samples, cycles {fmt(cycles[0])}..{fmt(cycles[-1])}"
          f"{' (rates per interval)' if rate else ' (cumulative)'}", file=out)
    render_series(names, columns, width, rate, out)
    return 0


def plot_timeseries(doc, width, rate, out=sys.stdout):
    ts = doc.get("timeseries")
    if ts is None:
        print("metrics_plot: exp document has no 'timeseries' block "
              "(run with --metrics-csv to enable sampling)", file=sys.stderr)
        return 1
    names = ts.get("metrics", [])
    samples = ts.get("samples", [])
    cycles = [row[0] for row in samples]
    columns = [[row[i + 1] for row in samples] for i in range(len(names))]
    print(f"{len(cycles)} samples, interval {ts.get('interval', '?')}"
          f"{' (rates per interval)' if rate else ' (cumulative)'}", file=out)
    render_series(names, columns, width, rate, out)
    for hist in ts.get("histograms", []):
        render_histogram(hist.get("name", "?"), hist.get("buckets", []),
                         width, out)
    return 0


def plot_trace(doc, width, out=sys.stdout):
    events = doc.get("traceEvents", [])
    spans = {}  # name -> [count, total_dur]
    instants = {}
    for ev in events:
        name = ev.get("name", "?")
        ph = ev.get("ph")
        if ph == "X":
            entry = spans.setdefault(name, [0, 0])
            entry[0] += 1
            entry[1] += ev.get("dur", 0)
        elif ph == "i":
            instants[name] = instants.get(name, 0) + 1
    print(f"{len(events)} trace events "
          f"({doc.get('otherData', {}).get('clock', 'unknown clock')})",
          file=out)
    if spans:
        namew = max(len(n) for n in spans)
        print(f"{'span':<{namew}}  {'count':>10} {'total dur':>14} {'mean':>10}",
              file=out)
        peak = max(e[1] for e in spans.values())
        for name in sorted(spans):
            count, dur = spans[name]
            bar = "#" * max(1, int(dur / peak * width)) if peak else ""
            print(f"{name:<{namew}}  {count:>10} {dur:>14} "
                  f"{dur / count:>10.1f}  {bar}", file=out)
    for name in sorted(instants):
        print(f"instant {name}: {instants[name]}", file=out)
    return 0


def run(path, width, rate, out=sys.stdout):
    text = load_text(path)
    if text is None:
        return 1
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as e:
            print(f"metrics_plot: malformed JSON in {path}: {e}",
                  file=sys.stderr)
            return 1
        if "traceEvents" in doc:
            return plot_trace(doc, width, out)
        if str(doc.get("schema", "")).startswith("colibri-exp"):
            return plot_timeseries(doc, width, rate, out)
        print(f"metrics_plot: unrecognized JSON document in {path}",
              file=sys.stderr)
        return 1
    return plot_csv(text, width, rate, out)


def self_test():
    import io

    failures = []

    def check(name, cond):
        if not cond:
            failures.append(name)

    # Sparkline mapping: constant, ramp, downsampling.
    check("flat", sparkline([5, 5, 5], 10) == "   ")
    ramp = sparkline(list(range(10)), 10)
    check("ramp-ends", ramp[0] == RAMP[0] and ramp[-1] == RAMP[-1])
    check("downsample", len(sparkline(list(range(100)), 8)) == 8)
    check("diffs", diffs([1, 4, 9]) == [3, 5])

    # CSV round trip.
    csv_text = "cycle,a,b\n0,0,1\n100,5,1\n200,20,1\n"
    buf = io.StringIO()
    check("csv-ok", plot_csv(csv_text, 20, False, buf) == 0)
    rendered = buf.getvalue()
    check("csv-names", "a" in rendered and "20" in rendered)
    check("csv-bad", plot_csv("nope,x\n1,2\n", 20, False, io.StringIO()) == 1)
    buf = io.StringIO()
    check("csv-rate", plot_csv(csv_text, 20, True, buf) == 0)
    check("csv-rate-last", "15" in buf.getvalue())

    # Exp timeseries block (the shape exp::writeJson emits).
    doc = {
        "schema": "colibri-exp-v2",
        "runs": [],
        "timeseries": {
            "interval": 100,
            "metrics": ["x", "y"],
            "samples": [[0, 0, 1.5], [100, 3, 2.5]],
            "histograms": [{"name": "lat", "buckets": [0, 2, 1] + [0] * 17}],
        },
    }
    buf = io.StringIO()
    check("ts-ok", plot_timeseries(doc, 20, False, buf) == 0)
    check("ts-hist", "lat" in buf.getvalue() and "1-1" in buf.getvalue())
    check("ts-missing",
          plot_timeseries({"schema": "colibri-exp-v2"}, 20, False,
                          io.StringIO()) == 1)

    # Chrome trace summary.
    trace = {
        "otherData": {"clock": "simulated-cycles"},
        "traceEvents": [
            {"name": "load", "ph": "X", "pid": 1, "tid": 0, "ts": 0,
             "dur": 10},
            {"name": "load", "ph": "X", "pid": 1, "tid": 1, "ts": 5,
             "dur": 20},
            {"name": "store", "ph": "i", "pid": 1, "tid": 0, "ts": 3,
             "s": "t"},
        ],
    }
    buf = io.StringIO()
    check("trace-ok", plot_trace(trace, 20, buf) == 0)
    out = buf.getvalue()
    check("trace-spans", "load" in out and "30" in out)
    check("trace-instants", "instant store: 1" in out)

    if failures:
        print(f"metrics_plot self-test FAILED: {failures}", file=sys.stderr)
        return 1
    print("metrics_plot self-test passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("file", nargs="?", help="metrics CSV, exp JSON, or "
                        "Chrome trace JSON")
    parser.add_argument("--width", type=int, default=48,
                        help="sparkline width in characters (default 48)")
    parser.add_argument("--rate", action="store_true",
                        help="plot per-interval differences instead of "
                        "cumulative values")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in self test and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.file is None:
        parser.print_usage(sys.stderr)
        return 2
    if args.width < 1:
        print("metrics_plot: --width must be >= 1", file=sys.stderr)
        return 2
    try:
        return run(args.file, args.width, args.rate)
    except BrokenPipeError:
        # Piping into `head` is a normal way to use this; exit quietly.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
