#!/usr/bin/env python3
"""Run a benchmark binary and archive its JSON output.

Seeds the repo's performance trajectory: CI runs this after every build
and archives the results (BENCH_engine.json, BENCH_wgen.json), so
throughput regressions show up as artifact diffs rather than anecdotes.

Two modes:
  gbench (default)  google-benchmark binary; passes --benchmark_format=json
                    and summarizes per-benchmark iteration rows.
  exp               a binary that prints a colibri-exp JSON document on
                    stdout (e.g. `bench_wgen_contention --json`);
                    validates the schema tag and summarizes per-run rates.

Usage:
  scripts/bench_record.py                         # engine bench, defaults
  scripts/bench_record.py --bench build/bench_sim_engine \\
      --out BENCH_engine.json --filter 'Engine|Construct' \\
      -- --benchmark_min_time=0.5
  scripts/bench_record.py --mode exp --bench build/bench_wgen_contention \\
      --out BENCH_wgen.json -- --json
"""

import argparse
import json
import subprocess
import sys


def engine_threads_of(name: str):
    """Parse the engine_threads label dimension out of a benchmark name
    (e.g. 'BM_Parallel1kZipfHot/engine_threads:8' -> 8)."""
    for part in name.split("/")[1:]:
        if part.startswith("engine_threads:"):
            try:
                return int(part.split(":", 1)[1])
            except ValueError:
                return None
    return None


def summarize_gbench(report) -> list:
    rows = []
    for b in report.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        rate = (
            f"{b['items_per_second'] / 1e6:10.2f} M items/s"
            if b.get("items_per_second")
            else ""
        )
        threads = engine_threads_of(b["name"])
        if threads is not None:
            rate += f"  [engine-threads {threads}]"
        rows.append((b["name"], b.get("real_time"), b.get("time_unit", "ns"), rate))
    return rows


def summarize_exp(report) -> list:
    schema = report.get("schema", "")
    if not schema.startswith("colibri-exp"):
        print(
            f"bench_record: unexpected schema '{schema}' (want colibri-exp-*)",
            file=sys.stderr,
        )
        return []
    return [
        (
            run.get("label", "?"),
            run.get("aggregate", {}).get("opsPerCycle", {}).get("mean"),
            "ops/cycle",
            "",
        )
        for run in report.get("runs", [])
    ]


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--bench",
        default="build/bench_sim_engine",
        help="benchmark binary to run (default: %(default)s)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_engine.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--mode",
        choices=["gbench", "exp"],
        default="gbench",
        help="binary flavor: google-benchmark or colibri-exp JSON emitter",
    )
    parser.add_argument(
        "--filter",
        default="",
        help="--benchmark_filter regex (gbench mode; default: all)",
    )
    parser.add_argument(
        "extra",
        nargs="*",
        help="extra arguments passed through to the binary (after --)",
    )
    args = parser.parse_args()

    cmd = [args.bench]
    if args.mode == "gbench":
        cmd.append("--benchmark_format=json")
        if args.filter:
            cmd.append(f"--benchmark_filter={args.filter}")
    cmd += args.extra

    print(f"bench_record: running {' '.join(cmd)}", file=sys.stderr)
    try:
        proc = subprocess.run(cmd, stdout=subprocess.PIPE, text=True)
    except OSError as e:
        print(f"bench_record: cannot run {args.bench}: {e}", file=sys.stderr)
        return 1
    if proc.returncode != 0:
        print(f"bench_record: {args.bench} exited {proc.returncode}", file=sys.stderr)
        return proc.returncode

    try:
        report = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        print(f"bench_record: benchmark output is not valid JSON: {e}", file=sys.stderr)
        return 1

    with open(args.out, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")

    rows = summarize_gbench(report) if args.mode == "gbench" else summarize_exp(report)
    if not rows:
        print("bench_record: no benchmark results in output", file=sys.stderr)
        return 1

    width = max(len(name) for name, *_ in rows)
    print(f"bench_record: wrote {args.out}")
    for name, value, unit, rate in rows:
        value_text = f"{value:12.4f}" if value is not None else " " * 12
        print(f"  {name:<{width}}  {value_text} {unit}  {rate}")

    # Engine-threads sweeps get a speedup line against their own
    # engine_threads:1 row — the number the parallel engine exists for.
    # (< 1.0 means the dispatcher cost more than its workers bought back,
    # e.g. on a single-CPU host.)
    sweeps = {}
    for name, value, _, _ in rows:
        threads = engine_threads_of(name)
        if threads is not None and value:
            sweeps.setdefault(name.split("/")[0], {})[threads] = value
    for family, series in sorted(sweeps.items()):
        base = series.get(1)
        if base is None or len(series) < 2:
            continue
        speedups = ", ".join(
            f"{t}T: {base / v:.2f}x" for t, v in sorted(series.items()) if t != 1
        )
        print(f"  {family} parallel speedup vs engine_threads:1 — {speedups}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
