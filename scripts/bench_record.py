#!/usr/bin/env python3
"""Run a google-benchmark binary and archive its JSON output.

Seeds the repo's performance trajectory: CI runs this against
bench_sim_engine after every build and archives BENCH_engine.json, so
engine-throughput regressions show up as artifact diffs rather than
anecdotes.

Usage:
  scripts/bench_record.py                         # engine bench, defaults
  scripts/bench_record.py --bench build/bench_sim_engine \\
      --out BENCH_engine.json --filter 'Engine|Construct' \\
      -- --benchmark_min_time=0.5
"""

import argparse
import json
import subprocess
import sys


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--bench",
        default="build/bench_sim_engine",
        help="benchmark binary to run (default: %(default)s)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_engine.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--filter",
        default="",
        help="--benchmark_filter regex (default: all benchmarks)",
    )
    parser.add_argument(
        "extra",
        nargs="*",
        help="extra arguments passed through to the binary (after --)",
    )
    args = parser.parse_args()

    cmd = [args.bench, "--benchmark_format=json"]
    if args.filter:
        cmd.append(f"--benchmark_filter={args.filter}")
    cmd += args.extra

    print(f"bench_record: running {' '.join(cmd)}", file=sys.stderr)
    try:
        proc = subprocess.run(cmd, stdout=subprocess.PIPE, text=True)
    except OSError as e:
        print(f"bench_record: cannot run {args.bench}: {e}", file=sys.stderr)
        return 1
    if proc.returncode != 0:
        print(f"bench_record: {args.bench} exited {proc.returncode}", file=sys.stderr)
        return proc.returncode

    try:
        report = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        print(f"bench_record: benchmark output is not valid JSON: {e}", file=sys.stderr)
        return 1

    with open(args.out, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")

    rows = [
        (
            b["name"],
            b.get("items_per_second"),
            b.get("real_time"),
            b.get("time_unit", "ns"),
        )
        for b in report.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    ]
    if not rows:
        print("bench_record: no benchmark results in output", file=sys.stderr)
        return 1

    width = max(len(name) for name, *_ in rows)
    print(f"bench_record: wrote {args.out}")
    for name, items, real_time, unit in rows:
        rate = f"{items / 1e6:10.2f} M items/s" if items else " " * 21
        print(f"  {name:<{width}}  {real_time:12.1f} {unit}  {rate}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
