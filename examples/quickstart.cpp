// Quickstart: build a small Colibri system, run a handful of cores doing
// atomic increments with LRwait/SCwait, and print what happened.
//
// This is the smallest end-to-end use of the library:
//   1. configure a system (geometry + adapter),
//   2. write workload kernels as coroutines over the Core API,
//   3. run and inspect memory/statistics.
#include <iostream>

#include "arch/system.hpp"
#include "sync/atomic.hpp"
#include "sync/backoff.hpp"

using namespace colibri;

namespace {

// Each worker atomically increments a shared counter `iters` times using
// the paper's LRwait/SCwait pair: contending cores sleep in the bank's
// reservation queue instead of spinning.
sim::Task worker(arch::System& sys, arch::Core& core, sim::Addr counter,
                 int iters) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, core.id());
  sync::Backoff backoff(sync::BackoffPolicy::fixed(128), rng);
  for (int i = 0; i < iters; ++i) {
    const auto r = co_await sync::fetchAdd(core, sync::RmwFlavor::kLrscWait,
                                           counter, 1, backoff);
    if (core.id() == 0 && i == 0) {
      std::cout << "core 0 saw counter value " << r.old
                << " on its first increment\n";
    }
  }
}

}  // namespace

int main() {
  // A 16-core system (4 tiles x 4 cores, 16 banks) with Colibri adapters.
  arch::SystemConfig cfg = arch::SystemConfig::smallTest();
  cfg.adapter = arch::AdapterKind::kColibri;
  arch::System sys(cfg);

  const sim::Addr counter = sys.allocator().allocGlobal(1);
  sys.poke(counter, 0);

  constexpr int kIters = 100;
  for (sim::CoreId c = 0; c < cfg.numCores; ++c) {
    sys.spawn(c, worker(sys, sys.core(c), counter, kIters));
  }
  sys.run();
  sys.rethrowFailures();

  const auto finalValue = sys.peek(counter);
  std::cout << cfg.numCores << " cores x " << kIters << " increments -> "
            << finalValue << " (expected " << cfg.numCores * kIters << ")\n";
  std::cout << "simulated cycles: " << sys.now() << "\n";

  std::uint64_t sleep = 0;
  std::uint64_t issued = 0;
  for (sim::CoreId c = 0; c < cfg.numCores; ++c) {
    sleep += sys.core(c).stats().sleepCycles;
    issued += sys.core(c).stats().totalIssued();
  }
  std::cout << "memory ops issued: " << issued
            << " (2 per increment + queue-full retries)\n";
  std::cout << "core-cycles spent asleep in the reservation queue: " << sleep
            << "\n";
  return finalValue == cfg.numCores * kIters ? 0 : 1;
}
