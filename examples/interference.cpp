// Interference demo: "my neighbors' spinlocks are slowing down my matmul"
// (the paper's Fig. 5 scenario, single-shot).
//
// 4 cores run a matrix multiplication; the other 252 cores hammer one
// atomic counter. The only thing that changes between runs is *how* the
// pollers wait — and that decides whether the matmul cores notice them.
#include <iostream>

#include "arch/system.hpp"
#include "report/table.hpp"
#include "workloads/matmul.hpp"

using namespace colibri;
using workloads::HistogramMode;

namespace {

arch::SystemConfig bench_cfg(arch::AdapterKind k) {
  auto cfg = arch::SystemConfig::memPool();
  cfg.adapter = k;
  return cfg;
}

sim::Cycle baseline() {
  arch::System sys(bench_cfg(arch::AdapterKind::kAmoOnly));
  workloads::MatmulParams p;
  p.n = 24;
  p.workers = {0, 1, 2, 3};
  return workloads::runMatmul(sys, p).duration;
}

sim::Cycle withPollers(arch::AdapterKind kind, HistogramMode mode) {
  arch::System sys(bench_cfg(kind));
  workloads::InterferenceParams ip;
  ip.matmul.n = 24;
  ip.matmul.workers = {0, 1, 2, 3};
  ip.bins = 1;
  ip.pollerMode = mode;
  ip.pollerBackoff = sync::BackoffPolicy::fixed(128);
  for (sim::CoreId c = 4; c < 256; ++c) {
    ip.pollers.push_back(c);
  }
  return workloads::runInterference(sys, ip).matmul.duration;
}

}  // namespace

int main() {
  std::cout << "4 matmul workers vs 252 atomic pollers on one counter "
               "(poller:worker = 252:4).\n";
  const auto alone = baseline();
  const auto colibri =
      withPollers(arch::AdapterKind::kColibri, HistogramMode::kLrscWait);
  const auto lrsc =
      withPollers(arch::AdapterKind::kLrscSingle, HistogramMode::kLrsc);

  report::Table table({"Scenario", "matmul cycles", "relative throughput"});
  table.addRow({"no pollers (baseline)", std::to_string(alone), "1.000"});
  table.addRow({"252 Colibri pollers (sleep in queue)",
                std::to_string(colibri),
                report::fmt(static_cast<double>(alone) / colibri, 3)});
  table.addRow({"252 LR/SC pollers (retry + backoff)", std::to_string(lrsc),
                report::fmt(static_cast<double>(alone) / lrsc, 3)});
  table.print(std::cout);
  std::cout << "\nSleeping waiters are invisible to bystanders; retrying\n"
               "waiters tax every core that shares the fabric with them.\n";
  return 0;
}
