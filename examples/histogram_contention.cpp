// Histogram contention sweep — a compact version of the paper's headline
// experiment (Fig. 3), runnable in seconds.
//
// Builds three 256-core systems (Colibri, MemPool-style LR/SC, AMO unit)
// and sweeps the number of histogram bins, printing updates/cycle and the
// Colibri speedup over LR/SC at each contention level.
//
// Usage: histogram_contention [max_bins]
#include <cstdlib>
#include <iostream>

#include "arch/system.hpp"
#include "report/table.hpp"
#include "workloads/histogram.hpp"

using namespace colibri;
using workloads::HistogramMode;
using workloads::HistogramParams;

namespace {

double run(arch::AdapterKind kind, HistogramMode mode, std::uint32_t bins) {
  auto cfg = arch::SystemConfig::memPool();
  cfg.adapter = kind;
  arch::System sys(cfg);
  HistogramParams p;
  p.bins = bins;
  p.mode = mode;
  p.window = workloads::MeasureWindow{1000, 8000};
  p.backoff = sync::BackoffPolicy::fixed(128);
  const auto r = workloads::runHistogram(sys, p);
  return r.rate.opsPerCycle;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t maxBins =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 256;

  std::cout << "Concurrent histogram on a simulated 256-core MemPool-like "
               "system.\nFewer bins = more contention.\n";
  report::Table table(
      {"#Bins", "Colibri", "LRSC", "AtomicAdd", "Colibri/LRSC"});
  for (std::uint32_t bins = 1; bins <= maxBins; bins *= 4) {
    const double colibri =
        run(arch::AdapterKind::kColibri, HistogramMode::kLrscWait, bins);
    const double lrsc =
        run(arch::AdapterKind::kLrscSingle, HistogramMode::kLrsc, bins);
    const double amo =
        run(arch::AdapterKind::kAmoOnly, HistogramMode::kAmoAdd, bins);
    table.addRow({std::to_string(bins), report::fmt(colibri, 4),
                  report::fmt(lrsc, 4), report::fmt(amo, 4),
                  report::fmtSpeedup(colibri / lrsc)});
  }
  table.print(std::cout);
  std::cout << "\nColibri (LRwait/SCwait) keeps ordered, polling-free\n"
               "progress under contention; LR/SC burns its cycles on\n"
               "failed store-conditionals and backoff.\n";
  return 0;
}
