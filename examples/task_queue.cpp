// Task-queue example: a producer/consumer pipeline over the shared ticket
// queue, showing what Mwait buys (the paper's Section III-C motivation).
//
// A few producer cores generate work items; many consumer cores process
// them. With Mwait, idle consumers *sleep* in the reservation queue of the
// word they're waiting on and are woken by the producer's store; with
// polling they hammer the banks. The example prints throughput, the
// consumers' sleep fraction, and their memory requests per item.
#include <iostream>

#include "arch/system.hpp"
#include "report/table.hpp"
#include "workloads/prodcons.hpp"

using namespace colibri;

namespace {

workloads::ProdConsResult run(bool useMwait) {
  auto cfg = arch::SystemConfig::memPool();
  cfg.adapter = arch::AdapterKind::kColibri;
  arch::System sys(cfg);
  workloads::ProdConsParams p;
  p.producers = 8;
  p.consumers = 48;
  p.produceDelay = 100;  // items are scarce: consumers wait a lot
  p.consumeDelay = 12;
  p.useMwait = useMwait;
  p.window = workloads::MeasureWindow{1000, 15000};
  return workloads::runProdCons(sys, p);
}

}  // namespace

int main() {
  std::cout << "Producer/consumer pipeline: 8 producers, 48 consumers on a "
               "simulated 256-core system.\n";
  const auto mwait = run(true);
  const auto poll = run(false);

  report::Table table({"Consumer wait", "items/cycle", "sleep fraction",
                       "mem requests/item"});
  table.addRow({"Mwait (sleep)", report::fmt(mwait.itemsPerCycle, 4),
                report::fmtPercent(100.0 * mwait.consumerSleepFraction, 1),
                report::fmt(mwait.consumerRequestsPerItem, 1)});
  table.addRow({"Polling", report::fmt(poll.itemsPerCycle, 4),
                report::fmtPercent(100.0 * poll.consumerSleepFraction, 1),
                report::fmt(poll.consumerRequestsPerItem, 1)});
  table.print(std::cout);

  std::cout << "\nSame throughput, but Mwait consumers spend their waiting\n"
               "time clock-gated instead of generating "
            << report::fmt(
                   poll.consumerRequestsPerItem / mwait.consumerRequestsPerItem,
                   1)
            << "x the memory traffic — bandwidth other cores could use.\n";
  return mwait.allItemsSeen && poll.allItemsSeen ? 0 : 1;
}
