// Figure 5: matrix-multiplication performance under interference from
// concurrent atomics.
//
// The 256 cores are partitioned into matmul workers and histogram pollers
// (ratios annotated poller:worker as in the paper). The y-axis is the
// workers' throughput relative to an interference-free run with the same
// worker count.
//
// Expected shape: Colibri pollers leave the workers essentially untouched
// even at 252:4 and 1 bin (relative throughput ~1.0); LR/SC pollers drag
// them down — hardest with many pollers on few bins (the paper reports
// 0.26 at 252:4) — because their retry traffic floods the banks and links
// the workers need.
#include <iostream>
#include <numeric>

#include "common.hpp"

using namespace colibri;
using workloads::HistogramMode;
using workloads::InterferenceParams;
using workloads::MatmulParams;

namespace {

struct Series {
  std::string name;
  std::string adapter;
  HistogramMode mode;
  std::uint32_t workers;
};

constexpr std::uint32_t kMatrixN = 24;

MatmulParams matmulFor(std::uint32_t workers) {
  MatmulParams p;
  p.n = kMatrixN;
  p.workers.resize(workers);
  // Workers are the first cores; pollers fill the rest (as in the paper's
  // partitioning of MemPool).
  std::iota(p.workers.begin(), p.workers.end(), 0);
  return p;
}

}  // namespace

int main() {
  const std::vector<Series> series = {
      {"Colibri 252:4", "colibri", HistogramMode::kLrscWait, 4},
      {"LRSC 128:128", "lrsc_single", HistogramMode::kLrsc, 128},
      {"LRSC 192:64", "lrsc_single", HistogramMode::kLrsc, 64},
      {"LRSC 248:8", "lrsc_single", HistogramMode::kLrsc, 8},
      {"LRSC 252:4", "lrsc_single", HistogramMode::kLrsc, 4},
  };
  const std::vector<std::uint32_t> bins = {1, 4, 8, 12, 16};

  // One sweep: interference-free baselines (one per distinct worker
  // count) first, then every series x bins point.
  const std::vector<std::uint32_t> workerCounts = {4, 8, 64, 128};
  std::vector<exp::RunSpec> specs;
  for (const auto w : workerCounts) {
    exp::RunSpec spec;
    spec.label = "baseline/" + std::to_string(w);
    spec.config = exp::configFor(bench::namedAdapter("amo"));
    spec.params = matmulFor(w);
    spec.window = bench::benchWindow();
    specs.push_back(std::move(spec));
  }
  for (const auto& s : series) {
    for (const auto b : bins) {
      InterferenceParams ip;
      ip.matmul = matmulFor(s.workers);
      ip.bins = b;
      ip.pollerMode = s.mode;
      ip.pollerBackoff = sync::BackoffPolicy::fixed(128);
      for (sim::CoreId c = s.workers; c < 256; ++c) {
        ip.pollers.push_back(c);
      }
      exp::RunSpec spec;
      spec.label = s.name + "/" + std::to_string(b);
      spec.config = exp::configFor(bench::namedAdapter(s.adapter));
      spec.params = std::move(ip);
      spec.window = bench::benchWindow();
      specs.push_back(std::move(spec));
    }
  }
  exp::SweepRunner runner;
  const auto results = runner.run(specs);

  const auto baselineFor = [&](std::uint32_t w) {
    for (std::size_t i = 0; i < workerCounts.size(); ++i) {
      if (workerCounts[i] == w) {
        return static_cast<double>(results[i].primary().duration);
      }
    }
    return static_cast<double>(
        results[workerCounts.size() - 1].primary().duration);
  };
  const auto durationAt = [&](std::size_t si, std::size_t bi) {
    return static_cast<double>(
        results[workerCounts.size() + si * bins.size() + bi]
            .primary()
            .duration);
  };

  report::banner(std::cout,
                 "Figure 5: matmul throughput under atomic interference "
                 "(relative to no interference; ratio is poller:worker)");
  std::vector<std::string> headers{"#Bins"};
  for (const auto& s : series) {
    headers.push_back(s.name);
  }
  report::Table table(headers);
  for (std::size_t bi = 0; bi < bins.size(); ++bi) {
    std::vector<std::string> row{std::to_string(bins[bi])};
    for (std::size_t si = 0; si < series.size(); ++si) {
      const double rel =
          baselineFor(series[si].workers) / durationAt(si, bi);
      row.push_back(report::fmt(rel, 3));
    }
    table.addRow(row);
  }
  table.print(std::cout);

  const double colibriWorst = baselineFor(4) / durationAt(0, 0);
  const double lrscWorst = baselineFor(4) / durationAt(4, 0);
  std::cout << "\nColibri 252:4 at 1 bin keeps workers at "
            << report::fmt(100.0 * colibriWorst, 1)
            << "% (paper: ~100%); LRSC 252:4 drags them to "
            << report::fmt(100.0 * lrscWorst, 1) << "% (paper: 26%).\n";
  return 0;
}
