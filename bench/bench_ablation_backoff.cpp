// Ablation B: backoff policy for LR/SC retry loops (the related-work
// mitigation the paper argues is insufficient, Section II).
//
// Sweeps none / fixed {32,128,512} / exponential on the 1-bin and 16-bin
// histogram. Expected: some backoff helps LR/SC a lot at high contention
// (less retry traffic per success), but no policy closes the gap to
// Colibri — backoff trades polling for idleness instead of eliminating it.
#include <algorithm>
#include <iostream>

#include "common.hpp"

using namespace colibri;
using workloads::HistogramMode;

int main() {
  struct Policy {
    std::string name;
    sync::BackoffPolicy policy;
  };
  const std::vector<Policy> policies = {
      {"none", sync::BackoffPolicy::none()},
      {"fixed32", sync::BackoffPolicy::fixed(32)},
      {"fixed128", sync::BackoffPolicy::fixed(128)},
      {"fixed512", sync::BackoffPolicy::fixed(512)},
      {"exp16..4096", sync::BackoffPolicy::exponential(16, 4096)},
  };
  const std::vector<std::uint32_t> bins = {1, 16};

  const auto lrscCfg = exp::configFor(bench::namedAdapter("lrsc_single"));
  std::vector<exp::RunSpec> specs;
  for (const auto& pol : policies) {
    for (const auto b : bins) {
      specs.push_back(bench::histogramSpec(pol.name + "/" +
                                               std::to_string(b),
                                           lrscCfg, b, HistogramMode::kLrsc,
                                           pol.policy));
    }
  }
  // Colibri reference (no backoff needed).
  specs.push_back(bench::histogramSpec(
      "colibri/1", exp::configFor(bench::namedAdapter("colibri")), 1,
      HistogramMode::kLrscWait, sync::BackoffPolicy::none()));
  exp::SweepRunner runner;
  const auto results = runner.run(specs);
  const auto rateAt = [&](std::size_t i) {
    return results[i].primary().rate.opsPerCycle;
  };

  report::banner(std::cout,
                 "Ablation B: LR/SC backoff policy (histogram, 256 cores)");
  report::Table table({"Backoff", "1 bin", "16 bins"});
  for (std::size_t i = 0; i < policies.size(); ++i) {
    table.addRow({policies[i].name, report::fmt(rateAt(i * 2), 4),
                  report::fmt(rateAt(i * 2 + 1), 4)});
  }
  table.print(std::cout);
  const double colibri = rateAt(results.size() - 1);
  double bestLrsc = 0.0;
  for (std::size_t i = 0; i < policies.size(); ++i) {
    bestLrsc = std::max(bestLrsc, rateAt(i * 2));
  }
  std::cout << "\nBest LR/SC policy at 1 bin: " << report::fmt(bestLrsc, 4)
            << " vs Colibri " << report::fmt(colibri, 4) << " ("
            << report::fmtSpeedup(colibri / bestLrsc)
            << ") — no backoff closes the gap.\n";
  return 0;
}
