// Shared infrastructure for the paper-reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper on the
// modeled 256-core MemPool system and prints the same rows/series the
// paper reports. Simulations are independent, so sweeps run in parallel
// across std::async workers (each point owns a fresh System).
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <iostream>
#include <vector>

#include "arch/system.hpp"
#include "report/table.hpp"
#include "workloads/histogram.hpp"

namespace colibri::bench {

/// The paper's contention sweep (Figs. 3 and 4).
inline std::vector<std::uint32_t> binSeries() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
}

/// Measurement window used by the figure benches: long enough for steady
/// state at 256 cores, short enough to keep the whole sweep in seconds.
inline workloads::MeasureWindow benchWindow() {
  return workloads::MeasureWindow{2000, 20000};
}

/// Run all jobs concurrently and collect results in order.
template <typename T>
std::vector<T> runParallel(std::vector<std::function<T()>> jobs) {
  std::vector<std::future<T>> futures;
  futures.reserve(jobs.size());
  for (auto& job : jobs) {
    futures.push_back(std::async(std::launch::async, std::move(job)));
  }
  std::vector<T> out;
  out.reserve(futures.size());
  for (auto& f : futures) {
    out.push_back(f.get());
  }
  return out;
}

/// MemPool config with the given adapter (and optional LRSCwait capacity).
inline arch::SystemConfig memPoolWith(arch::AdapterKind k,
                                      std::uint32_t lrscWaitCapacity = 8) {
  auto cfg = arch::SystemConfig::memPool();
  cfg.adapter = k;
  cfg.lrscWaitQueueCapacity = lrscWaitCapacity;
  return cfg;
}

/// One histogram point on a fresh system.
inline workloads::HistogramResult histogramPoint(
    const arch::SystemConfig& cfg, const workloads::HistogramParams& p) {
  arch::System sys(cfg);
  return workloads::runHistogram(sys, p);
}

}  // namespace colibri::bench
