// Shared infrastructure for the paper-reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper on the
// modeled 256-core MemPool system and prints the same rows/series the
// paper reports. A bench is a declarative sweep: build a vector of
// exp::RunSpec points, hand it to exp::SweepRunner (a bounded pool — at
// most hardware_concurrency OS threads, never one thread per point), and
// index the order-preserved results back into the figure's rows.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/run.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "report/table.hpp"
#include "sim/check.hpp"

namespace colibri::bench {

/// The paper's contention sweep (Figs. 3 and 4).
inline std::vector<std::uint32_t> binSeries() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
}

/// Measurement window used by the figure benches: long enough for steady
/// state at 256 cores, short enough to keep the whole sweep in seconds.
/// COLIBRI_BENCH_QUICK=1 shrinks it to a smoke-test window (CI runs every
/// bench this way; the numbers are noisy but every code path executes).
inline workloads::MeasureWindow benchWindow() {
  if (std::getenv("COLIBRI_BENCH_QUICK") != nullptr) {
    return workloads::MeasureWindow{200, 1000};
  }
  return workloads::MeasureWindow{2000, 20000};
}

/// Registry adapter by name; benches name scenarios instead of
/// hand-building configs.
inline exp::AdapterSpec namedAdapter(const std::string& name) {
  auto a = exp::findAdapter(name);
  COLIBRI_CHECK_MSG(a.has_value(), "unknown adapter '" << name << "'");
  return *std::move(a);
}

/// One histogram sweep point on the paper's MemPool geometry.
inline exp::RunSpec histogramSpec(
    std::string label, arch::SystemConfig cfg, std::uint32_t bins,
    workloads::HistogramMode mode,
    sync::BackoffPolicy backoff = sync::BackoffPolicy::fixed(128)) {
  workloads::HistogramParams p;
  p.bins = bins;
  p.mode = mode;
  p.backoff = backoff;
  exp::RunSpec spec;
  spec.label = std::move(label);
  spec.config = cfg;
  spec.params = p;
  spec.window = benchWindow();
  return spec;
}

}  // namespace colibri::bench
