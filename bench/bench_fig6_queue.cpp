// Figure 6: concurrent-queue throughput vs. core count.
//
// A shared bounded MPMC ticket queue (see workloads/msqueue.hpp for the
// substitution note) accessed by 1..256 cores with balanced
// enqueue/dequeue pairs:
//   Colibri        — ticket RMWs via LRwait/SCwait, slot waits via Mwait
//   AtomicAddLock  — amoswap spin lock protecting a plain queue
//   LRSC           — ticket RMWs via LR/SC, polling slot waits
//
// Besides the mean rate, the per-core min/max band (the paper's shaded
// area) shows fairness: Colibri's FIFO reservation queue keeps the band
// tight; LR/SC lets fast cores starve slow ones.
#include <iostream>
#include <numeric>

#include "common.hpp"
#include "workloads/msqueue.hpp"

using namespace colibri;
using workloads::QueueParams;
using workloads::QueueVariant;

namespace {

struct Curve {
  std::string name;
  arch::AdapterKind adapter;
  QueueVariant variant;
};

}  // namespace

int main() {
  const std::vector<Curve> curves = {
      {"Colibri", arch::AdapterKind::kColibri, QueueVariant::kLrscWait},
      {"AtomicAddLock", arch::AdapterKind::kAmoOnly, QueueVariant::kLock},
      {"LRSC", arch::AdapterKind::kLrscSingle, QueueVariant::kLrsc},
  };
  const std::vector<std::uint32_t> coreCounts = {1,  2,  4,  8,   16,
                                                 32, 64, 128, 256};

  struct Point {
    double rate;
    double minRate;
    double maxRate;
    double jain;
  };
  std::vector<std::function<Point()>> jobs;
  for (const auto& curve : curves) {
    for (const auto n : coreCounts) {
      jobs.push_back([&curve, n] {
        arch::System sys(bench::memPoolWith(curve.adapter));
        QueueParams p;
        p.variant = curve.variant;
        p.window = bench::benchWindow();
        p.backoff = sync::BackoffPolicy::fixed(128);
        p.cores.resize(n);
        std::iota(p.cores.begin(), p.cores.end(), 0);
        const auto r = workloads::runQueue(sys, p);
        return Point{r.rate.opsPerCycle, r.rate.perCoreMinRate * n,
                     r.rate.perCoreMaxRate * n, r.rate.fairnessJain};
      });
    }
  }
  const auto points = bench::runParallel(std::move(jobs));

  report::banner(std::cout,
                 "Figure 6: queue accesses/cycle vs #cores (min..max = "
                 "slowest..fastest core x n, the paper's shaded band)");
  report::Table table({"#Cores", "Colibri", "Colibri min..max", "Jain",
                       "AmoLock", "AmoLock min..max", "Jain", "LRSC",
                       "LRSC min..max", "Jain"});
  for (std::size_t ni = 0; ni < coreCounts.size(); ++ni) {
    std::vector<std::string> row{std::to_string(coreCounts[ni])};
    for (std::size_t ci = 0; ci < curves.size(); ++ci) {
      const auto& pt = points[ci * coreCounts.size() + ni];
      row.push_back(report::fmt(pt.rate, 4));
      row.push_back(report::fmt(pt.minRate, 4) + ".." +
                    report::fmt(pt.maxRate, 4));
      row.push_back(report::fmt(pt.jain, 3));
    }
    table.addRow(row);
  }
  table.print(std::cout);

  const auto at = [&](std::size_t ci, std::size_t ni) {
    return points[ci * coreCounts.size() + ni];
  };
  // Paper: Colibri 1.54x over LRSC at 8 cores, ~9x at 64 cores.
  std::cout << "\nColibri vs LRSC at 8 cores:  "
            << report::fmtSpeedup(at(0, 3).rate / at(2, 3).rate)
            << "  (paper: 1.54x)\n";
  std::cout << "Colibri vs LRSC at 64 cores: "
            << report::fmtSpeedup(at(0, 6).rate / at(2, 6).rate)
            << "  (paper: 9x)\n";
  std::cout << "Colibri vs lock  at 8 cores: "
            << report::fmtSpeedup(at(0, 3).rate / at(1, 3).rate)
            << "  (paper: 1.48x)\n";
  return 0;
}
