// Figure 6: concurrent-queue throughput vs. core count.
//
// A shared bounded MPMC ticket queue (see workloads/msqueue.hpp for the
// substitution note) accessed by 1..256 cores with balanced
// enqueue/dequeue pairs:
//   Colibri        — ticket RMWs via LRwait/SCwait, slot waits via Mwait
//   AtomicAddLock  — amoswap spin lock protecting a plain queue
//   LRSC           — ticket RMWs via LR/SC, polling slot waits
//
// Besides the mean rate, the per-core min/max band (the paper's shaded
// area) shows fairness: Colibri's FIFO reservation queue keeps the band
// tight; LR/SC lets fast cores starve slow ones.
#include <iostream>
#include <numeric>

#include "common.hpp"

using namespace colibri;
using workloads::QueueParams;
using workloads::QueueVariant;

namespace {

struct Curve {
  std::string name;
  std::string adapter;
  QueueVariant variant;
};

}  // namespace

int main() {
  const std::vector<Curve> curves = {
      {"Colibri", "colibri", QueueVariant::kLrscWait},
      {"AtomicAddLock", "amo", QueueVariant::kLock},
      {"LRSC", "lrsc_single", QueueVariant::kLrsc},
  };
  const std::vector<std::uint32_t> coreCounts = {1,  2,  4,  8,   16,
                                                 32, 64, 128, 256};

  std::vector<exp::RunSpec> specs;
  for (const auto& curve : curves) {
    for (const auto n : coreCounts) {
      QueueParams p;
      p.variant = curve.variant;
      p.backoff = sync::BackoffPolicy::fixed(128);
      p.cores.resize(n);
      std::iota(p.cores.begin(), p.cores.end(), 0);
      exp::RunSpec spec;
      spec.label = curve.name + "/" + std::to_string(n);
      spec.config = exp::configFor(bench::namedAdapter(curve.adapter));
      spec.params = std::move(p);
      spec.window = bench::benchWindow();
      specs.push_back(std::move(spec));
    }
  }
  exp::SweepRunner runner;
  const auto results = runner.run(specs);

  report::banner(std::cout,
                 "Figure 6: queue accesses/cycle vs #cores (min..max = "
                 "slowest..fastest core x n, the paper's shaded band)");
  const auto at = [&](std::size_t ci, std::size_t ni) -> const auto& {
    return results[ci * coreCounts.size() + ni].primary().rate;
  };
  report::Table table({"#Cores", "Colibri", "Colibri min..max", "Jain",
                       "AmoLock", "AmoLock min..max", "Jain", "LRSC",
                       "LRSC min..max", "Jain"});
  for (std::size_t ni = 0; ni < coreCounts.size(); ++ni) {
    const double n = static_cast<double>(coreCounts[ni]);
    std::vector<std::string> row{std::to_string(coreCounts[ni])};
    for (std::size_t ci = 0; ci < curves.size(); ++ci) {
      const auto& rate = at(ci, ni);
      row.push_back(report::fmt(rate.opsPerCycle, 4));
      row.push_back(report::fmt(rate.perCoreMinRate * n, 4) + ".." +
                    report::fmt(rate.perCoreMaxRate * n, 4));
      row.push_back(report::fmt(rate.fairnessJain, 3));
    }
    table.addRow(row);
  }
  table.print(std::cout);

  // Paper: Colibri 1.54x over LRSC at 8 cores, ~9x at 64 cores.
  std::cout << "\nColibri vs LRSC at 8 cores:  "
            << report::fmtSpeedup(at(0, 3).opsPerCycle / at(2, 3).opsPerCycle)
            << "  (paper: 1.54x)\n";
  std::cout << "Colibri vs LRSC at 64 cores: "
            << report::fmtSpeedup(at(0, 6).opsPerCycle / at(2, 6).opsPerCycle)
            << "  (paper: 9x)\n";
  std::cout << "Colibri vs lock  at 8 cores: "
            << report::fmtSpeedup(at(0, 3).opsPerCycle / at(1, 3).opsPerCycle)
            << "  (paper: 1.48x)\n";
  return 0;
}
