// Simulator micro-benchmarks (google-benchmark): raw event throughput,
// resource arbitration and end-to-end simulated-op cost. These measure the
// *simulator*, not the modeled hardware — they bound how large a sweep the
// figure benches can afford.
#include <benchmark/benchmark.h>

#include <functional>

#include "arch/system.hpp"
#include "exp/run.hpp"
#include "obs/recorder.hpp"
#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sync/atomic.hpp"
#include "wgen/presets.hpp"

namespace {

using namespace colibri;

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      e.scheduleAt(i % 97, [&sum] { ++sum; });
    }
    e.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1024)->Arg(65536);

struct CascadeStep {
  // Self-scheduling functor: the dependent-event (protocol) pattern, in
  // the allocation-free shape the simulator's own hot path uses.
  sim::Engine* e;
  std::uint64_t* depth;
  void operator()() const {
    if (++*depth % 4096 != 0) {
      e->scheduleAfter(1, CascadeStep{e, depth});
    }
  }
};
static_assert(sim::InlineEvent::fitsInline<CascadeStep>);

void BM_EngineCascade(benchmark::State& state) {
  // Each event schedules the next: the dependent-event (protocol) pattern.
  for (auto _ : state) {
    sim::Engine e;
    std::uint64_t depth = 0;
    e.scheduleAt(0, CascadeStep{&e, &depth});
    e.run();
    benchmark::DoNotOptimize(depth);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_EngineCascade);

void BM_EngineMixedHorizon(benchmark::State& state) {
  // Mixed scheduling horizons: most events land in the calendar's bucket
  // window (near future), a slice lands tens of thousands of cycles out and
  // exercises the overflow heap, including the bucket-vs-overflow
  // tie-breaks as the window sweeps over the far events.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    sim::Xoshiro256 rng(0xBEEF);
    std::uint64_t sum = 0;
    auto ev = [&sum] { ++sum; };
    for (std::size_t i = 0; i < n; ++i) {
      const sim::Cycle when = (i % 8 == 0) ? 20000 + rng.below(50000)
                                           : rng.below(900);
      e.scheduleAt(when, ev);
    }
    e.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EngineMixedHorizon)->Arg(65536);

void BM_InlineEventConstruct(benchmark::State& state) {
  // Construction+invoke+destroy cost of the event representation for a
  // capture that overflows std::function's SSO (3 pointers) but fits
  // InlineEvent's 48-byte buffer.
  std::uint64_t a = 0, b = 0, c = 0;
  for (auto _ : state) {
    sim::InlineEvent ev([&a, &b, &c] { ++a; });
    ev();
    benchmark::DoNotOptimize(ev);
  }
  benchmark::DoNotOptimize(a + b + c);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_InlineEventConstruct);

void BM_StdFunctionConstruct(benchmark::State& state) {
  // Baseline for BM_InlineEventConstruct: same capture via std::function
  // (heap-allocates — what every scheduled event used to pay).
  std::uint64_t a = 0, b = 0, c = 0;
  for (auto _ : state) {
    std::function<void()> ev([&a, &b, &c] { ++a; });
    ev();
    benchmark::DoNotOptimize(ev);
  }
  benchmark::DoNotOptimize(a + b + c);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StdFunctionConstruct);

void BM_ResourceAcquire(benchmark::State& state) {
  sim::ThroughputResource r(4);
  sim::Cycle at = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.acquire(at));
    ++at;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ResourceAcquire);

void BM_Xoshiro(benchmark::State& state) {
  sim::Xoshiro256 rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(1024));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Xoshiro);

sim::Task incrementLoop(arch::System& sys, arch::Core& core, sim::Addr a,
                        int iters) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, core.id());
  sync::Backoff bo(sync::BackoffPolicy::fixed(32), rng);
  for (int i = 0; i < iters; ++i) {
    (void)co_await sync::fetchAdd(core, sync::RmwFlavor::kLrscWait, a, 1, bo);
  }
}

void BM_EndToEndAtomicOp(benchmark::State& state) {
  // Wall-clock cost per simulated LRwait/SCwait increment (16 cores,
  // Colibri, full network + bank path).
  constexpr int kIters = 200;
  for (auto _ : state) {
    auto cfg = arch::SystemConfig::smallTest();
    cfg.adapter = arch::AdapterKind::kColibri;
    arch::System sys(cfg);
    const auto a = sys.allocator().allocGlobal(1);
    for (sim::CoreId c = 0; c < cfg.numCores; ++c) {
      sys.spawn(c, incrementLoop(sys, sys.core(c), a, kIters));
    }
    sys.run();
    if (sys.peek(a) != cfg.numCores * kIters) {
      state.SkipWithError("lost updates");
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16 *
                          kIters);
}
BENCHMARK(BM_EndToEndAtomicOp)->Unit(benchmark::kMillisecond);

void BM_EndToEndObsRecorder(benchmark::State& state) {
  // Observability overhead contract: the same 256-core Zipf-hot run with
  // no recorder (arg 0) and with the full sink set attached — interval
  // sampling plus the span tracer (arg 1). The ratio between the two rows
  // is the simulator-side cost of observing; items/s counts completed
  // window ops, which are identical in both rows.
  const bool observed = state.range(0) != 0;
  const auto* preset = wgen::findPreset("zipf_hot");
  if (preset == nullptr) {
    state.SkipWithError("zipf_hot preset missing");
    return;
  }
  exp::RunSpec spec;
  spec.label = observed ? "zipf_hot_obs" : "zipf_hot_base";
  spec.config = arch::SystemConfig{};  // paper geometry: 256 cores
  spec.config.adapter = arch::AdapterKind::kColibri;
  wgen::WgenParams params;
  params.kernel = preset->spec;
  spec.params = params;
  spec.window = workloads::MeasureWindow{500, 2000};
  std::uint64_t ops = 0;
  for (auto _ : state) {
    obs::Recorder::Config rc;
    rc.sampleInterval = 250;
    rc.traceEnabled = true;
    obs::Recorder recorder(rc);  // one Recorder records exactly one run
    spec.config.recorder = observed ? &recorder : nullptr;
    const auto result = exp::runOne(spec);
    ops = result.rate.opsInWindow;
    benchmark::DoNotOptimize(ops);
  }
  if (ops == 0) {
    state.SkipWithError("no ops completed in the window");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_EndToEndObsRecorder)
    ->ArgName("observed")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_Parallel1kZipfHot(benchmark::State& state) {
  // The acceptance-scale run: 1024 cores (16 topology groups) on the
  // Zipf-hot wgen kernel, swept over --engine-threads. items/s counts
  // completed window ops, which are bit-identical across thread counts —
  // so the ratio between the engine_threads series IS the parallel-engine
  // speedup on this host. Interpret it against context.num_cpus in the
  // JSON: with a single hardware thread the parallel rows measure pure
  // dispatcher overhead, not speedup.
  const auto* preset = wgen::findPreset("zipf_hot");
  if (preset == nullptr) {
    state.SkipWithError("zipf_hot preset missing");
    return;
  }
  exp::RunSpec spec;
  spec.label = "zipf_hot_1k";
  spec.config = arch::SystemConfig{};  // paper geometry, scaled up
  spec.config.numCores = 1024;
  spec.config.adapter = arch::AdapterKind::kColibri;
  spec.config.engineThreads = static_cast<std::uint32_t>(state.range(0));
  wgen::WgenParams params;
  params.kernel = preset->spec;
  spec.params = params;
  spec.window = workloads::MeasureWindow{2000, 20000};
  std::uint64_t ops = 0;
  for (auto _ : state) {
    const auto result = exp::runOne(spec);
    ops = result.rate.opsInWindow;
    benchmark::DoNotOptimize(ops);
  }
  if (ops == 0) {
    state.SkipWithError("no ops completed in the window");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_Parallel1kZipfHot)
    ->ArgName("engine_threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Parallel4kZipfHot(benchmark::State& state) {
  // The widened-horizon scale point: 4096 cores in 16 groups (64
  // tiles/group) on the Zipf-hot kernel. This geometry only runs at all
  // because the network's delivery clamps are per-endpoint (O(cores +
  // banks)); the dense per-(core, bank) matrices they replaced would need
  // over 1 GiB here. A shorter window than the 1k bench keeps one
  // iteration in single-digit seconds.
  const auto* preset = wgen::findPreset("zipf_hot");
  if (preset == nullptr) {
    state.SkipWithError("zipf_hot preset missing");
    return;
  }
  exp::RunSpec spec;
  spec.label = "zipf_hot_4k";
  spec.config = arch::SystemConfig{};
  spec.config.numCores = 4096;
  spec.config.tilesPerGroup = 64;  // 1024 tiles -> 16 groups
  spec.config.adapter = arch::AdapterKind::kColibri;
  spec.config.engineThreads = static_cast<std::uint32_t>(state.range(0));
  wgen::WgenParams params;
  params.kernel = preset->spec;
  spec.params = params;
  spec.window = workloads::MeasureWindow{1000, 5000};
  std::uint64_t ops = 0;
  for (auto _ : state) {
    const auto result = exp::runOne(spec);
    ops = result.rate.opsInWindow;
    benchmark::DoNotOptimize(ops);
  }
  if (ops == 0) {
    state.SkipWithError("no ops completed in the window");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_Parallel4kZipfHot)
    ->ArgName("engine_threads")
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
