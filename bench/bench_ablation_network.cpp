// Ablation C: sensitivity of the Colibri-vs-LRSC gap to the fabric model.
//
// Sweeps (a) interconnect latency scaling and (b) the backpressure proxy
// (linkHoldMax). Expected: the gap persists across latency scalings (it is
// a protocol property — retries vs. sleeping — not a latency artifact);
// disabling backpressure shrinks but does not eliminate it (bank-port
// serialization alone still punishes retry traffic).
#include <algorithm>
#include <iostream>

#include "common.hpp"

using namespace colibri;
using workloads::HistogramMode;

int main() {
  struct Variant {
    std::string name;
    std::uint32_t latencyMult;
    std::uint32_t linkHoldMax;
  };
  const std::vector<Variant> variants = {
      {"baseline (1x latency, hold 8)", 1, 8},
      {"2x latency", 2, 8},
      {"4x latency", 4, 8},
      {"no backpressure (hold 0)", 1, 0},
      {"strong backpressure (hold 16)", 1, 16},
  };

  // Two specs per variant: Colibri then LRSC on the same fabric.
  std::vector<exp::RunSpec> specs;
  for (const auto& v : variants) {
    const auto withFabric = [&v](arch::SystemConfig cfg) {
      cfg.latLocalTile *= v.latencyMult;
      cfg.latSameGroup *= v.latencyMult;
      cfg.latRemoteGroup *= v.latencyMult;
      cfg.linkHoldMax = v.linkHoldMax;
      return cfg;
    };
    specs.push_back(bench::histogramSpec(
        v.name + "/colibri",
        withFabric(exp::configFor(bench::namedAdapter("colibri"))), 1,
        HistogramMode::kLrscWait));
    specs.push_back(bench::histogramSpec(
        v.name + "/lrsc",
        withFabric(exp::configFor(bench::namedAdapter("lrsc_single"))), 1,
        HistogramMode::kLrsc));
  }
  exp::SweepRunner runner;
  const auto results = runner.run(specs);

  report::banner(std::cout,
                 "Ablation C: fabric-model sensitivity of the 1-bin "
                 "Colibri vs LRSC gap (256 cores)");
  report::Table table({"Fabric variant", "Colibri", "LRSC", "Gap"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const double colibri = results[2 * i].primary().rate.opsPerCycle;
    const double lrsc = results[2 * i + 1].primary().rate.opsPerCycle;
    table.addRow({variants[i].name, report::fmt(colibri, 4),
                  report::fmt(lrsc, 4),
                  report::fmtSpeedup(colibri / std::max(lrsc, 1e-9))});
  }
  table.print(std::cout);
  std::cout << "\nThe gap is a protocol property: it survives every fabric "
               "variant (magnitude shifts, winner does not).\n";
  return 0;
}
