// Ablation C: sensitivity of the Colibri-vs-LRSC gap to the fabric model.
//
// Sweeps (a) interconnect latency scaling and (b) the backpressure proxy
// (linkHoldMax). Expected: the gap persists across latency scalings (it is
// a protocol property — retries vs. sleeping — not a latency artifact);
// disabling backpressure shrinks but does not eliminate it (bank-port
// serialization alone still punishes retry traffic).
#include <iostream>

#include "common.hpp"

using namespace colibri;
using workloads::HistogramMode;
using workloads::HistogramParams;

namespace {

double point(arch::SystemConfig cfg, HistogramMode mode) {
  HistogramParams p;
  p.bins = 1;
  p.mode = mode;
  p.window = bench::benchWindow();
  p.backoff = sync::BackoffPolicy::fixed(128);
  return bench::histogramPoint(cfg, p).rate.opsPerCycle;
}

}  // namespace

int main() {
  struct Variant {
    std::string name;
    std::uint32_t latencyMult;
    std::uint32_t linkHoldMax;
  };
  const std::vector<Variant> variants = {
      {"baseline (1x latency, hold 8)", 1, 8},
      {"2x latency", 2, 8},
      {"4x latency", 4, 8},
      {"no backpressure (hold 0)", 1, 0},
      {"strong backpressure (hold 16)", 1, 16},
  };

  std::vector<std::function<std::pair<double, double>()>> jobs;
  for (const auto& v : variants) {
    jobs.push_back([&v] {
      auto mk = [&](arch::AdapterKind k) {
        auto cfg = bench::memPoolWith(k);
        cfg.latLocalTile *= v.latencyMult;
        cfg.latSameGroup *= v.latencyMult;
        cfg.latRemoteGroup *= v.latencyMult;
        cfg.linkHoldMax = v.linkHoldMax;
        return cfg;
      };
      const double colibri =
          point(mk(arch::AdapterKind::kColibri), HistogramMode::kLrscWait);
      const double lrsc =
          point(mk(arch::AdapterKind::kLrscSingle), HistogramMode::kLrsc);
      return std::make_pair(colibri, lrsc);
    });
  }
  const auto results = bench::runParallel(std::move(jobs));

  report::banner(std::cout,
                 "Ablation C: fabric-model sensitivity of the 1-bin "
                 "Colibri vs LRSC gap (256 cores)");
  report::Table table({"Fabric variant", "Colibri", "LRSC", "Gap"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    table.addRow({variants[i].name, report::fmt(results[i].first, 4),
                  report::fmt(results[i].second, 4),
                  report::fmtSpeedup(results[i].first /
                                     std::max(results[i].second, 1e-9))});
  }
  table.print(std::cout);
  std::cout << "\nThe gap is a protocol property: it survives every fabric "
               "variant (magnitude shifts, winner does not).\n";
  return 0;
}
