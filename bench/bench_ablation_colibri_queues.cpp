// Ablation A: Colibri queues per memory controller (the Table I area knob)
// vs. throughput.
//
// Interleaved histogram bins put at most one hot address in each bank, so
// this sweep stresses the controller differently: `hotAddrs` contended
// words are packed into a SINGLE bank. With Q < hotAddrs some LRwaits find
// every head/tail register pair busy and fail immediately (software
// retry); with Q >= hotAddrs Colibri is retry-free. This quantifies the
// area/performance trade of Table I's "addresses" parameter.
//
// The kernel is not a registry workload (it needs allocInBank placement),
// so the sweep runs through exp::SweepRunner::map — same bounded pool,
// custom job bodies.
#include <functional>
#include <iostream>
#include <numeric>

#include "arch/system.hpp"
#include "common.hpp"
#include "sync/atomic.hpp"

using namespace colibri;

namespace {

struct Shared {
  std::vector<sim::Addr> words;
  bool stop = false;
  std::vector<std::uint64_t> perCore;
  std::uint64_t fails = 0;
};

sim::Task worker(arch::System& sys, arch::Core& core, Shared& sh) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, core.id());
  sync::Backoff bo(sync::BackoffPolicy::fixed(64), rng);
  while (!sh.stop) {
    co_await core.delay(4);
    const auto a = sh.words[rng.below(sh.words.size())];
    const auto r = co_await sync::fetchAdd(core, sync::RmwFlavor::kLrscWait,
                                           a, 1, bo, &sh.stop);
    if (r.performed) {
      ++sh.perCore[core.id()];
    }
  }
}

struct QPoint {
  double rate = 0.0;
  std::uint64_t fails = 0;
};

QPoint runPoint(std::uint32_t queues, std::uint32_t hotAddrs) {
  auto cfg = exp::configFor(bench::namedAdapter("colibri"));
  cfg.colibriQueuesPerController = queues;
  arch::System sys(cfg);

  Shared sh;
  for (std::uint32_t i = 0; i < hotAddrs; ++i) {
    sh.words.push_back(sys.allocator().allocInBank(0));  // one bank
    sys.poke(sh.words.back(), 0);
  }
  sh.perCore.assign(sys.numCores(), 0);

  const sim::Cycle end = bench::benchWindow().horizon();
  for (sim::CoreId c = 0; c < 64; ++c) {  // 64 contenders
    sys.spawn(c, worker(sys, sys.core(c), sh));
  }
  sys.at(end, [&sh] { sh.stop = true; });
  sys.run();
  sys.rethrowFailures();

  QPoint pt;
  pt.fails = sys.bank(0).adapter().stats().lrFails;
  const auto total =
      std::accumulate(sh.perCore.begin(), sh.perCore.end(), std::uint64_t{0});
  pt.rate = static_cast<double>(total) / static_cast<double>(end);
  return pt;
}

}  // namespace

int main() {
  const std::vector<std::uint32_t> queueCounts = {1, 2, 4, 8};
  const std::vector<std::uint32_t> hotCounts = {1, 2, 4, 8};

  std::vector<std::function<QPoint()>> jobs;
  for (const auto q : queueCounts) {
    for (const auto hot : hotCounts) {
      jobs.push_back([q, hot] { return runPoint(q, hot); });
    }
  }
  exp::SweepRunner runner;
  const auto points = runner.map(std::move(jobs));

  report::banner(std::cout,
                 "Ablation A: Colibri queues/controller vs throughput "
                 "(64 cores on `hot` words packed into ONE bank)");
  report::Table table({"Queues/ctrl", "Hot=1", "Hot=2", "Hot=4", "Hot=8",
                       "ImmediateFails(hot=8)"});
  for (std::size_t qi = 0; qi < queueCounts.size(); ++qi) {
    std::vector<std::string> row{std::to_string(queueCounts[qi])};
    for (std::size_t hi = 0; hi < hotCounts.size(); ++hi) {
      row.push_back(report::fmt(points[qi * hotCounts.size() + hi].rate, 4));
    }
    row.push_back(std::to_string(
        points[qi * hotCounts.size() + hotCounts.size() - 1].fails));
    table.addRow(row);
  }
  table.print(std::cout);
  std::cout << "\nExpected: throughput is flat once Queues >= hot addresses "
               "per controller; below that, immediate-fail retries appear "
               "(the area knob of Table I buys retry-freedom).\n";
  return 0;
}
