// Ablation A: Colibri queues per memory controller (the Table I area knob)
// vs. throughput.
//
// Interleaved histogram bins put at most one hot address in each bank, so
// this sweep stresses the controller differently: `hotAddrs` contended
// words are packed into a SINGLE bank. With Q < hotAddrs some LRwaits find
// every head/tail register pair busy and fail immediately (software
// retry); with Q >= hotAddrs Colibri is retry-free. This quantifies the
// area/performance trade of Table I's "addresses" parameter.
#include <iostream>
#include <numeric>

#include "common.hpp"
#include "sync/atomic.hpp"

using namespace colibri;

namespace {

struct Shared {
  std::vector<sim::Addr> words;
  bool stop = false;
  std::vector<std::uint64_t> perCore;
  std::uint64_t fails = 0;
};

sim::Task worker(arch::System& sys, arch::Core& core, Shared& sh) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, core.id());
  sync::Backoff bo(sync::BackoffPolicy::fixed(64), rng);
  while (!sh.stop) {
    co_await core.delay(4);
    const auto a = sh.words[rng.below(sh.words.size())];
    const auto r = co_await sync::fetchAdd(core, sync::RmwFlavor::kLrscWait,
                                           a, 1, bo, &sh.stop);
    if (r.performed) {
      ++sh.perCore[core.id()];
    }
  }
}

double runPoint(std::uint32_t queues, std::uint32_t hotAddrs,
                std::uint64_t* fails) {
  auto cfg = arch::SystemConfig::memPool();
  cfg.adapter = arch::AdapterKind::kColibri;
  cfg.colibriQueuesPerController = queues;
  arch::System sys(cfg);

  Shared sh;
  for (std::uint32_t i = 0; i < hotAddrs; ++i) {
    sh.words.push_back(sys.allocator().allocInBank(0));  // one bank
    sys.poke(sh.words.back(), 0);
  }
  sh.perCore.assign(sys.numCores(), 0);

  constexpr sim::Cycle kEnd = 20000;
  for (sim::CoreId c = 0; c < 64; ++c) {  // 64 contenders
    sys.spawn(c, worker(sys, sys.core(c), sh));
  }
  sys.at(kEnd, [&sh] { sh.stop = true; });
  sys.run();
  sys.rethrowFailures();

  *fails = sys.bank(0).adapter().stats().lrFails;
  const auto total =
      std::accumulate(sh.perCore.begin(), sh.perCore.end(), std::uint64_t{0});
  return static_cast<double>(total) / static_cast<double>(kEnd);
}

}  // namespace

int main() {
  report::banner(std::cout,
                 "Ablation A: Colibri queues/controller vs throughput "
                 "(64 cores on `hot` words packed into ONE bank)");
  report::Table table({"Queues/ctrl", "Hot=1", "Hot=2", "Hot=4", "Hot=8",
                       "ImmediateFails(hot=8)"});
  for (const std::uint32_t q : {1u, 2u, 4u, 8u}) {
    std::vector<std::string> row{std::to_string(q)};
    std::uint64_t fails = 0;
    for (const std::uint32_t hot : {1u, 2u, 4u, 8u}) {
      row.push_back(report::fmt(runPoint(q, hot, &fails), 4));
    }
    row.push_back(std::to_string(fails));
    table.addRow(row);
  }
  table.print(std::cout);
  std::cout << "\nExpected: throughput is flat once Queues >= hot addresses "
               "per controller; below that, immediate-fail retries appear "
               "(the area knob of Table I buys retry-freedom).\n";
  return 0;
}
