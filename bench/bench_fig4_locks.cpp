// Figure 4: histogram throughput of lock-based critical sections vs.
// generic RMW atomics at varying contention (256 cores).
//
// Curves, as in the paper (spin locks use a 128-cycle backoff):
//   Colibri          — direct LRwait/SCwait RMW (reference from Fig. 3)
//   Colibri lock     — test-and-set built from LRwait/SCwait
//   Mwait lock       — software MCS lock; waiters sleep with Mwait
//   LRSC             — direct LR/SC RMW (reference)
//   LRSC lock        — test-and-set built from LR/SC
//   Atomic Add lock  — test-and-set built from amoswap
//
// Expected shape: Colibri on top everywhere; AMO/LRSC locks worst at high
// contention (polling + retry traffic); waiting-based locks in between at
// high contention but penalized by management overhead at low contention.
#include <iostream>

#include "common.hpp"

using namespace colibri;
using workloads::HistogramMode;

namespace {

struct Curve {
  std::string name;
  arch::SystemConfig cfg;
  HistogramMode mode;
};

}  // namespace

int main() {
  const auto colibriCfg = exp::configFor(bench::namedAdapter("colibri"));
  const auto lrscCfg = exp::configFor(bench::namedAdapter("lrsc_single"));
  const std::vector<Curve> curves = {
      {"Colibri", colibriCfg, HistogramMode::kLrscWait},
      {"ColibriLock", colibriCfg, HistogramMode::kLrwaitLock},
      {"MwaitLock", colibriCfg, HistogramMode::kMcsMwaitLock},
      {"LRSC", lrscCfg, HistogramMode::kLrsc},
      {"LRSCLock", lrscCfg, HistogramMode::kLrscLock},
      {"AmoAddLock", exp::configFor(bench::namedAdapter("amo")),
       HistogramMode::kAmoLock},
  };
  const auto bins = bench::binSeries();

  std::vector<exp::RunSpec> specs;
  for (const auto& curve : curves) {
    for (const auto b : bins) {
      specs.push_back(bench::histogramSpec(
          curve.name + "/" + std::to_string(b), curve.cfg, b, curve.mode));
    }
  }
  exp::SweepRunner runner;
  const auto results = runner.run(specs);

  report::banner(
      std::cout,
      "Figure 4: lock implementations vs generic RMW atomics (256 cores)");
  std::vector<std::string> headers{"#Bins"};
  for (const auto& c : curves) {
    headers.push_back(c.name);
  }
  const auto at = [&](std::size_t ci, std::size_t bi) {
    return results[ci * bins.size() + bi].primary().rate.opsPerCycle;
  };
  report::Table table(headers);
  for (std::size_t bi = 0; bi < bins.size(); ++bi) {
    std::vector<std::string> row{std::to_string(bins[bi])};
    for (std::size_t ci = 0; ci < curves.size(); ++ci) {
      row.push_back(report::fmt(at(ci, bi), 4));
    }
    table.addRow(row);
  }
  table.print(std::cout);

  bool colibriTops = true;
  for (std::size_t bi = 0; bi < bins.size(); ++bi) {
    for (std::size_t ci = 1; ci < curves.size(); ++ci) {
      colibriTops = colibriTops && at(0, bi) >= at(ci, bi) * 0.95;
    }
  }
  std::cout << "\nColibri outperforms every lock scheme across the sweep: "
            << (colibriTops ? "yes" : "NO (check calibration)") << "\n";
  std::cout << "Colibri vs Atomic Add lock at 1 bin: "
            << report::fmtSpeedup(at(0, 0) / at(5, 0)) << "\n";
  return 0;
}
