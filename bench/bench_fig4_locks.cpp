// Figure 4: histogram throughput of lock-based critical sections vs.
// generic RMW atomics at varying contention (256 cores).
//
// Curves, as in the paper (spin locks use a 128-cycle backoff):
//   Colibri          — direct LRwait/SCwait RMW (reference from Fig. 3)
//   Colibri lock     — test-and-set built from LRwait/SCwait
//   Mwait lock       — software MCS lock; waiters sleep with Mwait
//   LRSC             — direct LR/SC RMW (reference)
//   LRSC lock        — test-and-set built from LR/SC
//   Atomic Add lock  — test-and-set built from amoswap
//
// Expected shape: Colibri on top everywhere; AMO/LRSC locks worst at high
// contention (polling + retry traffic); waiting-based locks in between at
// high contention but penalized by management overhead at low contention.
#include <iostream>

#include "common.hpp"

using namespace colibri;
using workloads::HistogramMode;
using workloads::HistogramParams;

namespace {

struct Curve {
  std::string name;
  arch::SystemConfig cfg;
  HistogramMode mode;
};

}  // namespace

int main() {
  const auto colibriCfg = bench::memPoolWith(arch::AdapterKind::kColibri);
  const std::vector<Curve> curves = {
      {"Colibri", colibriCfg, HistogramMode::kLrscWait},
      {"ColibriLock", colibriCfg, HistogramMode::kLrwaitLock},
      {"MwaitLock", colibriCfg, HistogramMode::kMcsMwaitLock},
      {"LRSC", bench::memPoolWith(arch::AdapterKind::kLrscSingle),
       HistogramMode::kLrsc},
      {"LRSCLock", bench::memPoolWith(arch::AdapterKind::kLrscSingle),
       HistogramMode::kLrscLock},
      {"AmoAddLock", bench::memPoolWith(arch::AdapterKind::kAmoOnly),
       HistogramMode::kAmoLock},
  };
  const auto bins = bench::binSeries();

  std::vector<std::function<double()>> jobs;
  for (const auto& curve : curves) {
    for (const auto b : bins) {
      jobs.push_back([&curve, b] {
        HistogramParams p;
        p.bins = b;
        p.mode = curve.mode;
        p.window = bench::benchWindow();
        p.backoff = sync::BackoffPolicy::fixed(128);
        return bench::histogramPoint(curve.cfg, p).rate.opsPerCycle;
      });
    }
  }
  const auto rates = bench::runParallel(std::move(jobs));

  report::banner(
      std::cout,
      "Figure 4: lock implementations vs generic RMW atomics (256 cores)");
  std::vector<std::string> headers{"#Bins"};
  for (const auto& c : curves) {
    headers.push_back(c.name);
  }
  report::Table table(headers);
  for (std::size_t bi = 0; bi < bins.size(); ++bi) {
    std::vector<std::string> row{std::to_string(bins[bi])};
    for (std::size_t ci = 0; ci < curves.size(); ++ci) {
      row.push_back(report::fmt(rates[ci * bins.size() + bi], 4));
    }
    table.addRow(row);
  }
  table.print(std::cout);

  const auto at = [&](std::size_t ci, std::size_t bi) {
    return rates[ci * bins.size() + bi];
  };
  bool colibriTops = true;
  for (std::size_t bi = 0; bi < bins.size(); ++bi) {
    for (std::size_t ci = 1; ci < curves.size(); ++ci) {
      colibriTops = colibriTops && at(0, bi) >= at(ci, bi) * 0.95;
    }
  }
  std::cout << "\nColibri outperforms every lock scheme across the sweep: "
            << (colibriTops ? "yes" : "NO (check calibration)") << "\n";
  std::cout << "Colibri vs Atomic Add lock at 1 bin: "
            << report::fmtSpeedup(at(0, 0) / at(5, 0)) << "\n";
  return 0;
}
