// Figure 3: histogram throughput (updates/cycle) vs. #bins for the
// LRSCwait implementations and standard RISC-V atomics on 256 cores.
//
// Curves, exactly as in the paper:
//   Atomic Add       — AMO unit (the roofline)
//   LRSCwait_ideal   — reservation queue with one slot per core (q = 256)
//   LRSCwait_128     — q = 128
//   LRSCwait_1       — q = 1
//   Colibri          — distributed queue (4 queues per controller)
//   LRSC             — MemPool single-slot LR/SC, 128-cycle retry backoff
//
// Expected shape: LRSCwait_ideal on top across the sweep, Colibri
// near-ideal (it pays the extra WakeUp round trip), LRSCwait_q collapsing
// once contention exceeds q, LRSC worst at high contention (~6.5x below
// Colibri at 1 bin in the paper), everyone converging near the AMO
// roofline at 1024 bins (Colibri ahead of LRSC by ~13% there).
#include <iostream>

#include "common.hpp"

using namespace colibri;
using workloads::HistogramMode;

namespace {

struct Curve {
  std::string name;
  arch::SystemConfig cfg;
  HistogramMode mode;
};

}  // namespace

int main() {
  const std::vector<Curve> curves = {
      {"AtomicAdd", exp::configFor(bench::namedAdapter("amo")),
       HistogramMode::kAmoAdd},
      {"LRSCwait_ideal",
       exp::configFor(bench::namedAdapter("lrscwait_ideal")),
       HistogramMode::kLrscWait},
      {"LRSCwait_128", exp::configFor(bench::namedAdapter("lrscwait"), 128),
       HistogramMode::kLrscWait},
      {"LRSCwait_1", exp::configFor(bench::namedAdapter("lrscwait"), 1),
       HistogramMode::kLrscWait},
      {"Colibri", exp::configFor(bench::namedAdapter("colibri")),
       HistogramMode::kLrscWait},
      {"LRSC", exp::configFor(bench::namedAdapter("lrsc_single")),
       HistogramMode::kLrsc},
  };
  const auto bins = bench::binSeries();

  std::vector<exp::RunSpec> specs;
  for (const auto& curve : curves) {
    for (const auto b : bins) {
      specs.push_back(bench::histogramSpec(
          curve.name + "/" + std::to_string(b), curve.cfg, b, curve.mode));
    }
  }
  exp::SweepRunner runner;
  const auto results = runner.run(specs);

  report::banner(std::cout,
                 "Figure 3: histogram updates/cycle vs #bins (256 cores)");
  std::vector<std::string> headers{"#Bins"};
  for (const auto& c : curves) {
    headers.push_back(c.name);
  }
  const auto at = [&](std::size_t ci, std::size_t bi) {
    return results[ci * bins.size() + bi].primary().rate.opsPerCycle;
  };
  report::Table table(headers);
  for (std::size_t bi = 0; bi < bins.size(); ++bi) {
    std::vector<std::string> row{std::to_string(bins[bi])};
    for (std::size_t ci = 0; ci < curves.size(); ++ci) {
      row.push_back(report::fmt(at(ci, bi), 4));
    }
    table.addRow(row);
  }
  table.print(std::cout);

  const std::size_t last = bins.size() - 1;
  std::cout << "\nColibri vs LRSC at 1 bin:     "
            << report::fmtSpeedup(at(4, 0) / at(5, 0))
            << "  (paper: 6.5x)\n";
  std::cout << "Colibri vs LRSC at 1024 bins: "
            << report::fmtSpeedup(at(4, last) / at(5, last))
            << "  (paper: 1.13x)\n";
  std::cout << "Colibri vs LRSCwait_ideal at 1 bin: "
            << report::fmt(100.0 * at(4, 0) / at(1, 0), 1)
            << "% of ideal (near-ideal expected)\n";
  return 0;
}
