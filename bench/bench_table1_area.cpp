// Table I: area of a MemPool tile with the different LRSCwait designs.
//
// Prints the structural area model next to the paper's GF22FDX anchors,
// then the system-level scaling comparison that motivates Colibri:
// a reservation queue sized to the core count grows quadratically with the
// machine, Colibri linearly (Section III-A / IV).
//
// Model-only bench (no simulation); the scaling rows still go through
// exp::SweepRunner::map so every bench shares the same bounded executor.
#include <functional>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "model/area.hpp"

int main() {
  using namespace colibri;

  report::banner(std::cout, "Table I: area of a MemPool tile (kGE)");
  report::Table table(
      {"Architecture", "Parameters", "Model[kGE]", "Model[%]", "Paper[kGE]"});
  for (const auto& row : model::tableOne()) {
    table.addRow({row.architecture, row.parameters, report::fmt(row.areaKge, 0),
                  report::fmtPercent(row.areaPercent, 1),
                  row.paperKge > 0 ? report::fmt(row.paperKge, 0) : "-"});
  }
  table.print(std::cout);

  std::cout << "\nColibri with 1 address costs "
            << report::fmtPercent(
                   100.0 * (model::colibriTileArea(
                                arch::SystemConfig::memPool(), 1) /
                                model::AreaParams{}.baseTileKge -
                            1.0),
                   1)
            << " over the baseline tile (paper: ~6%).\n";

  report::banner(std::cout,
                 "System-level overhead scaling (whole machine, kGE)");
  std::vector<std::function<std::vector<std::string>()>> jobs;
  for (const std::uint32_t mult : {1u, 2u, 4u, 8u}) {
    jobs.push_back([mult]() -> std::vector<std::string> {
      auto cfg = arch::SystemConfig::memPool();
      cfg.numCores *= mult;  // tiles scale with the machine
      return {
          std::to_string(cfg.numCores),
          report::fmt(model::systemOverheadKge(cfg, false, cfg.numCores), 0),
          report::fmt(model::systemOverheadKge(cfg, false, 8), 0),
          report::fmt(model::systemOverheadKge(cfg, true, 4), 0)};
    });
  }
  exp::SweepRunner runner;
  const auto rows = runner.map(std::move(jobs));

  report::Table scaling({"Cores", "LRSCwait_ideal (q=n)", "LRSCwait_8",
                         "Colibri (4 queues)"});
  for (const auto& row : rows) {
    scaling.addRow(row);
  }
  scaling.print(std::cout);
  std::cout << "\nLRSCwait_ideal grows ~quadratically (O(n^2)); Colibri and "
               "fixed-q designs grow linearly.\n";
  return 0;
}
