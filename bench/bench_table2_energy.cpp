// Table II: power and energy per operation for atomic accesses to the
// histogram at the highest contention (1 bin, 256 cores).
//
// The event-energy model (model/energy.hpp) charges the counters measured
// in the same runs as Fig. 3/4. The Atomic Add row anchors the absolute
// scale; the LRSC / lock blow-ups then emerge from their measured retry
// and polling event counts, and Colibri's saving from its sleep cycles.
#include <iostream>

#include "common.hpp"
#include "model/energy.hpp"

using namespace colibri;
using workloads::HistogramMode;
using workloads::HistogramParams;

namespace {

struct Row {
  std::string name;
  arch::SystemConfig cfg;
  HistogramMode mode;
  std::uint32_t backoff;
  double paperPowerMw;
  double paperPjPerOp;
};

}  // namespace

int main() {
  const std::vector<Row> rows = {
      {"Atomic Add", bench::memPoolWith(arch::AdapterKind::kAmoOnly),
       HistogramMode::kAmoAdd, 0, 175.0, 29.0},
      {"Colibri", bench::memPoolWith(arch::AdapterKind::kColibri),
       HistogramMode::kLrscWait, 0, 169.0, 124.0},
      {"LRSC", bench::memPoolWith(arch::AdapterKind::kLrscSingle),
       HistogramMode::kLrsc, 128, 186.0, 884.0},
      {"Atomic Add lock", bench::memPoolWith(arch::AdapterKind::kAmoOnly),
       HistogramMode::kAmoLock, 128, 188.0, 1092.0},
  };

  struct Measured {
    double powerMw;
    double pjPerOp;
  };
  // Two contention points: 1 bin (the paper's "highest contention") and
  // 4 bins. In our FIFO-queued fabric the 1-bin LR/SC equilibrium degrades
  // further than on the authors' testbed (requests pile up in unbounded
  // order-preserving queues, so every request — including the reservation
  // holder's SC — waits behind the whole crowd), which inflates the LR/SC
  // blow-up; the 4-bin point reproduces the paper's ratios closely. See
  // EXPERIMENTS.md for the full analysis.
  std::vector<std::function<Measured()>> jobs;
  for (const std::uint32_t bins : {1u, 4u}) {
    for (const auto& row : rows) {
      jobs.push_back([&row, bins] {
        HistogramParams p;
        p.bins = bins;
        p.mode = row.mode;
        p.window = bench::benchWindow();
        p.backoff = row.backoff == 0
                        ? sync::BackoffPolicy::none()
                        : sync::BackoffPolicy::fixed(row.backoff);
        const auto r = bench::histogramPoint(row.cfg, p);
        return Measured{
            model::averagePowerMw(r.rate.counters),
            model::energyPerOp(r.rate.counters, r.rate.opsInWindow)};
      });
    }
  }
  const auto measured = bench::runParallel(std::move(jobs));

  const auto printSection = [&](const char* title, std::size_t base) {
    report::banner(std::cout, title);
    report::Table table({"Atomic access", "Backoff", "Power[mW]", "pJ/OP",
                         "dVsColibri", "Paper pJ/OP", "Paper d"});
    const double colibriPj = measured[base + 1].pjPerOp;
    const auto delta = [](double pj, double ref) {
      return report::fmt(100.0 * (pj / ref - 1.0), 0) + "%";
    };
    for (std::size_t i = 0; i < rows.size(); ++i) {
      table.addRow({rows[i].name, std::to_string(rows[i].backoff),
                    report::fmt(measured[base + i].powerMw, 0),
                    report::fmt(measured[base + i].pjPerOp, 0),
                    delta(measured[base + i].pjPerOp, colibriPj),
                    report::fmt(rows[i].paperPjPerOp, 0),
                    delta(rows[i].paperPjPerOp, 124.0)});
    }
    table.print(std::cout);
    std::cout << "LRSC / Colibri energy ratio: "
              << report::fmtSpeedup(measured[base + 2].pjPerOp / colibriPj)
              << "  (paper: 7.1x)\n";
    std::cout << "Lock / Colibri energy ratio: "
              << report::fmtSpeedup(measured[base + 3].pjPerOp / colibriPj)
              << "  (paper: 8.8x)\n";
  };
  printSection(
      "Table II: energy per atomic access, highest contention (1 bin)", 0);
  printSection(
      "Table II (4 bins — matches the paper's contention equilibrium, "
      "see EXPERIMENTS.md)",
      rows.size());
  return 0;
}
