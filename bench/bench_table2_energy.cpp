// Table II: power and energy per operation for atomic accesses to the
// histogram at the highest contention (1 bin, 256 cores).
//
// The event-energy model charges the counters measured in the same runs
// as Fig. 3/4 — the exp layer evaluates it on every RunResult, so this
// bench just reads averagePowerMw / energyPerOpPj off the sweep. The
// Atomic Add row anchors the absolute scale; the LRSC / lock blow-ups
// then emerge from their measured retry and polling event counts, and
// Colibri's saving from its sleep cycles.
#include <iostream>

#include "common.hpp"

using namespace colibri;
using workloads::HistogramMode;

namespace {

struct Row {
  std::string name;
  std::string adapter;
  HistogramMode mode;
  std::uint32_t backoff;
  double paperPowerMw;
  double paperPjPerOp;
};

}  // namespace

int main() {
  const std::vector<Row> rows = {
      {"Atomic Add", "amo", HistogramMode::kAmoAdd, 0, 175.0, 29.0},
      {"Colibri", "colibri", HistogramMode::kLrscWait, 0, 169.0, 124.0},
      {"LRSC", "lrsc_single", HistogramMode::kLrsc, 128, 186.0, 884.0},
      {"Atomic Add lock", "amo", HistogramMode::kAmoLock, 128, 188.0,
       1092.0},
  };

  // Two contention points: 1 bin (the paper's "highest contention") and
  // 4 bins. In our FIFO-queued fabric the 1-bin LR/SC equilibrium degrades
  // further than on the authors' testbed (requests pile up in unbounded
  // order-preserving queues, so every request — including the reservation
  // holder's SC — waits behind the whole crowd), which inflates the LR/SC
  // blow-up; the 4-bin point reproduces the paper's ratios closely. See
  // EXPERIMENTS.md for the full analysis.
  std::vector<exp::RunSpec> specs;
  for (const std::uint32_t bins : {1u, 4u}) {
    for (const auto& row : rows) {
      specs.push_back(bench::histogramSpec(
          row.name + "/" + std::to_string(bins),
          exp::configFor(bench::namedAdapter(row.adapter)), bins, row.mode,
          row.backoff == 0 ? sync::BackoffPolicy::none()
                           : sync::BackoffPolicy::fixed(row.backoff)));
    }
  }
  exp::SweepRunner runner;
  const auto results = runner.run(specs);

  const auto printSection = [&](const char* title, std::size_t base) {
    report::banner(std::cout, title);
    report::Table table({"Atomic access", "Backoff", "Power[mW]", "pJ/OP",
                         "dVsColibri", "Paper pJ/OP", "Paper d"});
    const auto pjAt = [&](std::size_t i) {
      return results[base + i].primary().energyPerOpPj;
    };
    const double colibriPj = pjAt(1);
    const auto delta = [](double pj, double ref) {
      return report::fmt(100.0 * (pj / ref - 1.0), 0) + "%";
    };
    for (std::size_t i = 0; i < rows.size(); ++i) {
      table.addRow({rows[i].name, std::to_string(rows[i].backoff),
                    report::fmt(results[base + i].primary().averagePowerMw,
                                0),
                    report::fmt(pjAt(i), 0), delta(pjAt(i), colibriPj),
                    report::fmt(rows[i].paperPjPerOp, 0),
                    delta(rows[i].paperPjPerOp, 124.0)});
    }
    table.print(std::cout);
    std::cout << "LRSC / Colibri energy ratio: "
              << report::fmtSpeedup(pjAt(2) / colibriPj)
              << "  (paper: 7.1x)\n";
    std::cout << "Lock / Colibri energy ratio: "
              << report::fmtSpeedup(pjAt(3) / colibriPj)
              << "  (paper: 8.8x)\n";
  };
  printSection(
      "Table II: energy per atomic access, highest contention (1 bin)", 0);
  printSection(
      "Table II (4 bins — matches the paper's contention equilibrium, "
      "see EXPERIMENTS.md)",
      rows.size());
  return 0;
}
