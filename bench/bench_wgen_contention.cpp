// Workload-generator contention sweep: every wgen preset on every adapter
// family, plus a Zipf-skew sweep — the scenario space the paper's five
// fixed kernels never measured.
//
// Part A (presets x adapters): updates/cycle for each preset across the
// adapter axis; unsupported combos (amo x CAS presets) print "-".
// Part B (skew sweep): zipf_hot with theta in {0, 0.5, 0.9, 0.99, 1.2} —
// how fast the wait-free adapters pull away as the key distribution
// sharpens.
//
// `--json` dumps the whole sweep as a colibri-exp document instead of the
// tables (scripts/bench_record.py archives it as BENCH_wgen.json in CI).
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "exp/json.hpp"
#include "wgen/presets.hpp"

using namespace colibri;

namespace {

exp::RunSpec wgenSpec(std::string label, const exp::AdapterSpec& adapter,
                      wgen::KernelSpec kernel) {
  wgen::WgenParams p;
  p.kernel = std::move(kernel);
  exp::RunSpec spec;
  spec.label = std::move(label);
  spec.workload = p.kernel.name;
  spec.config = exp::configFor(adapter);
  spec.params = std::move(p);
  spec.window = bench::benchWindow();
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::string(argv[1]) == "--json";

  const std::vector<std::string> adapterNames = {
      "amo", "lrsc_single", "lrsc_table", "lrscwait", "colibri"};
  const std::vector<double> thetas = {0.0, 0.5, 0.9, 0.99, 1.2};

  // Part A: presets x adapters. supported[i] marks runnable combos; the
  // spec list holds only those, in (preset-major, adapter-minor) order.
  std::vector<exp::RunSpec> specs;
  std::vector<std::vector<bool>> runnable;
  for (const auto& preset : wgen::presets()) {
    auto& row = runnable.emplace_back();
    for (const auto& name : adapterNames) {
      const auto adapter = bench::namedAdapter(name);
      const bool ok = !(adapter.kind == arch::AdapterKind::kAmoOnly &&
                        wgen::needsReservations(preset.spec));
      row.push_back(ok);
      if (ok) {
        specs.push_back(wgenSpec(preset.spec.name + "/" + name, adapter,
                                 preset.spec));
      }
    }
  }
  // Part B: zipf_hot skew sweep (appended after Part A's specs).
  const std::size_t skewBase = specs.size();
  for (const double theta : thetas) {
    for (const auto& name : adapterNames) {
      auto kernel = wgen::findPreset("zipf_hot")->spec;
      kernel.regions[0].zipfTheta = theta;
      specs.push_back(wgenSpec(
          "zipf_theta_" + report::fmt(theta, 2) + "/" + name,
          bench::namedAdapter(name), std::move(kernel)));
    }
  }

  exp::SweepRunner runner;
  const auto results = runner.run(specs);

  if (json) {
    exp::writeJson(std::cout, specs, results);
    return 0;
  }

  report::banner(std::cout,
                 "wgen contention: presets x adapters (updates/cycle)");
  {
    std::vector<std::string> headers{"preset"};
    headers.insert(headers.end(), adapterNames.begin(), adapterNames.end());
    headers.insert(headers.end(), {"p50", "p99"});  // colibri latency
    report::Table table(headers);
    std::size_t next = 0;
    for (std::size_t pi = 0; pi < wgen::presets().size(); ++pi) {
      std::vector<std::string> row{wgen::presets()[pi].spec.name};
      double colP50 = 0.0;
      double colP99 = 0.0;
      for (std::size_t ai = 0; ai < adapterNames.size(); ++ai) {
        if (!runnable[pi][ai]) {
          row.push_back("-");
          continue;
        }
        const auto& r = results[next++].primary();
        row.push_back(report::fmt(r.rate.opsPerCycle, 4));
        if (adapterNames[ai] == "colibri") {
          colP50 = r.opLatency.p50;
          colP99 = r.opLatency.p99;
        }
      }
      row.push_back(report::fmt(colP50, 1));
      row.push_back(report::fmt(colP99, 1));
      table.addRow(row);
    }
    table.print(std::cout);
  }

  report::banner(std::cout,
                 "wgen skew sweep: zipf_hot updates/cycle vs theta");
  {
    std::vector<std::string> headers{"theta"};
    headers.insert(headers.end(), adapterNames.begin(), adapterNames.end());
    report::Table table(headers);
    for (std::size_t ti = 0; ti < thetas.size(); ++ti) {
      std::vector<std::string> row{report::fmt(thetas[ti], 2)};
      for (std::size_t ai = 0; ai < adapterNames.size(); ++ai) {
        const auto& r =
            results[skewBase + ti * adapterNames.size() + ai].primary();
        row.push_back(report::fmt(r.rate.opsPerCycle, 4));
      }
      table.addRow(row);
    }
    table.print(std::cout);
  }
  return 0;
}
