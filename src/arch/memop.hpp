// Memory operation types exchanged between cores, the interconnect, and the
// bank-side atomic adapters.
//
// The operation set mirrors what the paper's cores can issue:
//  - plain load/store,
//  - RISC-V "A" extension AMOs (add/swap/and/or/xor/min/max) executed by an
//    AMO unit at the bank,
//  - LR/SC (standard reserved pair),
//  - LRwait/SCwait/Mwait (the paper's extension, Section III),
//  - WakeUpRequest: Colibri's Qnode-to-controller protocol message
//    (Section IV). It shares the request path (and bank-port arbitration)
//    with regular requests, as it would in hardware.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/types.hpp"

namespace colibri::arch {

using sim::Addr;
using sim::CoreId;
using sim::Word;

enum class OpKind : std::uint8_t {
  kLoad,
  kStore,
  kAmoAdd,
  kAmoSwap,
  kAmoAnd,
  kAmoOr,
  kAmoXor,
  kAmoMax,
  kAmoMin,
  kLr,
  kSc,
  kLrWait,
  kScWait,
  kMwait,
  kWakeUp,  // Colibri WakeUpRequest (value = successor core id)
};

[[nodiscard]] constexpr bool isAmo(OpKind k) {
  return k >= OpKind::kAmoAdd && k <= OpKind::kAmoMin;
}

/// Ops whose response the issuing core blocks on. Stores are posted
/// (fire-and-forget), as in the modeled Snitch cores.
[[nodiscard]] constexpr bool expectsResponse(OpKind k) {
  return k != OpKind::kStore && k != OpKind::kWakeUp;
}

/// Ops during which the core *sleeps* (clock-gated) rather than busy-stalls:
/// the polling-free property of the paper's extension.
[[nodiscard]] constexpr bool isSleepingWait(OpKind k) {
  return k == OpKind::kLrWait || k == OpKind::kMwait;
}

[[nodiscard]] std::string_view toString(OpKind k);

/// Apply an AMO to a memory word; returns the new memory value.
[[nodiscard]] Word applyAmo(OpKind k, Word mem, Word operand);

struct MemRequest {
  OpKind kind = OpKind::kLoad;
  Addr addr = 0;
  /// Store data / AMO operand / SCwait data / Mwait expected value /
  /// WakeUpRequest successor id.
  Word value = 0;
  CoreId core = sim::kNoCore;
  /// kWakeUp only: whether the successor's queued operation is an Mwait
  /// (vs. an LRwait). The bit originates at the controller (which saw the
  /// successor's request) and travels via SuccessorUpdate through the
  /// predecessor's Qnode — so the controller can serve a woken head without
  /// storing per-waiter state.
  bool successorIsMwait = false;
};

struct MemResponse {
  /// Loaded value / old value (AMO) / reserved value (LR, LRwait) /
  /// current value (Mwait wake).
  Word value = 0;
  /// SC/SCwait success; LRwait/Mwait admission (false = queue full, retry).
  bool ok = true;
  /// For SCwait/Mwait responses: true iff the responder was the queue tail,
  /// i.e. no successor exists and the Qnode may reset (Section IV-A).
  bool lastInQueue = true;
};

}  // namespace colibri::arch
