// Memory bank: word storage + single-ported access + the atomic adapter.
//
// One Bank models one SPM bank. Requests arriving from the network are
// serialized through the bank port (bankPortsPerCycle per cycle, FIFO) and
// then handed to the adapter. The Bank implements BankContext so the
// adapter can read/write storage and emit responses/protocol messages.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "arch/address.hpp"
#include "arch/config.hpp"
#include "arch/memop.hpp"
#include "arch/network.hpp"
#include "atomics/adapter.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"
#include "sim/resource.hpp"

namespace colibri::obs {
struct SimHooks;
}

namespace colibri::arch {

/// Delivery interface back to the core side (implemented by System).
class CoreSink {
 public:
  virtual ~CoreSink() = default;
  virtual void deliverResponse(CoreId c, const MemResponse& r) = 0;
  virtual void deliverSuccessorUpdate(CoreId c, CoreId successor, Addr a,
                                      bool successorIsMwait) = 0;
  /// Schedule `ev` to run at `when` in core `c`'s execution domain. In
  /// sequential mode this is a plain engine schedule; the parallel engine
  /// routes it to the core's shard (deferring across shard boundaries).
  virtual void scheduleAtCore(CoreId c, sim::Cycle when,
                              sim::InlineEvent ev) = 0;
};

struct BankStats {
  std::uint64_t requests = 0;  ///< requests that cleared the port
  void reset() { requests = 0; }
};

class Bank final : public atomics::BankContext {
 public:
  Bank(sim::Engine& engine, Network& net, CoreSink& sink,
       const SystemConfig& cfg, BankId id);

  /// Entry point from the network: arbitrate the port, then run the adapter.
  void receive(const MemRequest& req);

  // --- BankContext ----------------------------------------------------
  [[nodiscard]] Word read(Addr a) const override;
  void writeRaw(Addr a, Word v) override;
  void respond(CoreId c, const MemResponse& r) override;
  void sendSuccessorUpdate(CoreId target, CoreId successor, Addr a,
                           bool successorIsMwait) override;
  [[nodiscard]] sim::Cycle now() const override { return engine_.now(); }
  [[nodiscard]] BankId bankId() const override { return id_; }
  [[nodiscard]] std::uint32_t numCores() const override {
    return cfg_.numCores;
  }

  /// Cycles a request arriving at `at` would wait for the bank port — the
  /// congestion signal the network's backpressure proxy uses. During a
  /// parallel barrier merge (uncommitted inline acquires outstanding) the
  /// probe reads the replayed shadow state, which is exactly the port
  /// state the sequential engine would have had at that point.
  [[nodiscard]] sim::Cycle backlogAt(sim::Cycle at) const;

  [[nodiscard]] sim::Cycle backlog() const {
    const auto now = engine_.now();
    return backlogAt(now);
  }

  /// Attach the parallel engine's shadow grant state for this bank's port
  /// (nullptr detaches). receive() then records inline acquires for the
  /// barrier merge to replay.
  void setPortShadow(sim::ParallelDispatch::PortShadow* shadow) {
    shadow_ = shadow;
  }

  /// Attach the observability hook bundle (nullptr = off).
  void setObsHooks(const obs::SimHooks* hooks) { hooks_ = hooks; }

  /// Attach the fault plan (null = injection off). Transient service
  /// stalls add cycles between the port grant and the adapter handling
  /// the request; in-order service is preserved by a monotone clamp.
  void setFaultPlan(fault::FaultPlan* plan) { fault_ = plan; }
  [[nodiscard]] fault::FaultPlan* faultPlan() const override {
    return fault_;
  }

  [[nodiscard]] atomics::AtomicAdapter& adapter() { return *adapter_; }
  [[nodiscard]] const atomics::AtomicAdapter& adapter() const {
    return *adapter_;
  }
  [[nodiscard]] const BankStats& stats() const { return stats_; }
  void resetStats();

 private:
  [[nodiscard]] std::uint64_t offsetOf(Addr a) const;

  sim::Engine& engine_;
  Network& net_;
  CoreSink& sink_;
  SystemConfig cfg_;
  BankId id_;
  sim::ThroughputResource port_;
  sim::Cycle lastServe_ = 0;  ///< stall clamp: service stays in-order
  fault::FaultPlan* fault_ = nullptr;
  sim::ParallelDispatch::PortShadow* shadow_ = nullptr;
  const obs::SimHooks* hooks_ = nullptr;
  std::vector<Word> words_;
  std::unique_ptr<atomics::AtomicAdapter> adapter_;
  BankStats stats_;
};

}  // namespace colibri::arch
