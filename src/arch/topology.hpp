// Physical topology: which tile/group a core or bank belongs to, and the
// distance class between a core and a bank. Latency and energy per message
// are functions of the distance class only (hierarchical interconnect).
#pragma once

#include <cstdint>

#include "arch/config.hpp"
#include "sim/types.hpp"

namespace colibri::arch {

using sim::BankId;
using sim::CoreId;
using sim::GroupId;
using sim::TileId;

enum class Distance : std::uint8_t {
  kLocalTile,   ///< core and bank share a tile: single-cycle path
  kSameGroup,   ///< same group, different tile: through the group router
  kRemoteGroup  ///< different group: through inter-group links
};

[[nodiscard]] const char* toString(Distance d);

class Topology {
 public:
  explicit Topology(const SystemConfig& cfg)
      : coresPerTile_(cfg.coresPerTile),
        banksPerTile_(cfg.banksPerTile),
        tilesPerGroup_(cfg.tilesPerGroup) {}

  [[nodiscard]] TileId tileOfCore(CoreId c) const { return c / coresPerTile_; }
  [[nodiscard]] TileId tileOfBank(BankId b) const { return b / banksPerTile_; }
  [[nodiscard]] GroupId groupOfTile(TileId t) const {
    return t / tilesPerGroup_;
  }
  [[nodiscard]] GroupId groupOfCore(CoreId c) const {
    return groupOfTile(tileOfCore(c));
  }
  [[nodiscard]] GroupId groupOfBank(BankId b) const {
    return groupOfTile(tileOfBank(b));
  }

  [[nodiscard]] Distance distance(TileId src, TileId dst) const {
    if (src == dst) {
      return Distance::kLocalTile;
    }
    return groupOfTile(src) == groupOfTile(dst) ? Distance::kSameGroup
                                                : Distance::kRemoteGroup;
  }

  [[nodiscard]] Distance coreToBank(CoreId c, BankId b) const {
    return distance(tileOfCore(c), tileOfBank(b));
  }

 private:
  std::uint32_t coresPerTile_;
  std::uint32_t banksPerTile_;
  std::uint32_t tilesPerGroup_;
};

}  // namespace colibri::arch
