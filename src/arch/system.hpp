// System: the whole modeled manycore — engine, network, banks (with their
// atomic adapters), cores (with their Qnodes), and the SPM allocator.
//
// Construction wires everything; workloads are attached per core as
// coroutines and the simulation is driven with run()/runUntil(). Teardown
// clears the event queue before destroying coroutine frames so no stale
// event can touch a dead frame.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/address.hpp"
#include "arch/bank.hpp"
#include "arch/config.hpp"
#include "arch/network.hpp"
#include "atomics/qnode.hpp"
#include "core/core.hpp"
#include "fault/fault.hpp"
#include "fault/watchdog.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"
#include "sim/task.hpp"

namespace colibri::obs {
struct SimHooks;
}

namespace colibri::arch {

class System final : public CoreSink, public sim::ParallelDispatch::Hooks {
 public:
  explicit System(const SystemConfig& cfg);
  ~System() override;

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  [[nodiscard]] const SystemConfig& config() const { return cfg_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] Network& network() { return net_; }
  [[nodiscard]] Allocator& allocator() { return alloc_; }
  [[nodiscard]] const Topology& topology() const { return net_.topology(); }

  [[nodiscard]] Core& core(CoreId c) { return *cores_[c]; }
  [[nodiscard]] Bank& bank(BankId b) { return *banks_[b]; }
  [[nodiscard]] atomics::Qnode& qnode(CoreId c) { return qnodes_[c]; }
  [[nodiscard]] std::uint32_t numCores() const { return cfg_.numCores; }
  [[nodiscard]] std::uint32_t numBanks() const { return cfg_.numBanks(); }

  /// Attach a workload coroutine to a core and start it at the current time.
  void spawn(CoreId c, sim::Task task);

  /// Direct (zero-sim-time) memory access for setup and verification.
  [[nodiscard]] sim::Word peek(sim::Addr a) const;
  void poke(sim::Addr a, sim::Word v);

  /// Run until the event queue drains (all cores finished or asleep).
  void run();
  /// Run events up to and including `horizon`.
  void runUntil(sim::Cycle horizon);
  /// Schedule `fn` at an absolute cycle (e.g. to flip a stop flag).
  void at(sim::Cycle when, std::function<void()> fn);

  [[nodiscard]] sim::Cycle now() const { return engine_.now(); }

  /// Rethrow the first exception that escaped any core's task, if any.
  void rethrowFailures() const;

  /// True iff every spawned task ran to completion (none still asleep).
  [[nodiscard]] bool allTasksDone() const;

  /// Inject a request from a core into the network towards the owning bank.
  /// Used by Core::issue and by Qnodes dispatching WakeUpRequests.
  void injectRequest(CoreId from, const MemRequest& req);

  /// Reset all measurement counters (cores, banks, network) — typically at
  /// the end of a warmup phase. Reservation/protocol state is preserved.
  void resetStats();

  /// True iff the deterministic parallel engine is active for this system
  /// (engineThreads > 1 and the topology has at least two groups).
  [[nodiscard]] bool parallelEngine() const { return dispatch_ != nullptr; }

  /// Parallel-engine observability counters (--stats); all zero when the
  /// sequential engine ran.
  [[nodiscard]] sim::EngineCounters engineCounters() const {
    return dispatch_ != nullptr ? dispatch_->counters() : sim::EngineCounters{};
  }

  /// Null unless a Recorder was attached via SystemConfig::recorder.
  [[nodiscard]] const obs::SimHooks* obsHooks() const {
    return obsHooks_.get();
  }

  /// True iff a fault plan is active (some fault probability nonzero).
  [[nodiscard]] bool faultActive() const { return faultPlan_ != nullptr; }

  /// Per-site injected-fault counts; all zero when no plan is active.
  [[nodiscard]] fault::FaultCounters faultCounters() const {
    return faultPlan_ != nullptr ? faultPlan_->counters()
                                 : fault::FaultCounters{};
  }

  /// The resolved fault seed (explicit, or derived from the system seed);
  /// 0 when no plan is active.
  [[nodiscard]] std::uint64_t faultSeed() const {
    return faultPlan_ != nullptr ? faultPlan_->config().seed : 0;
  }

  /// Structured hang diagnosis: per stuck core its outstanding request,
  /// target bank and progress timestamps, plus the reservation state of
  /// every bank those requests point at. Used by the watchdog's blame
  /// hook and exposed for tests.
  [[nodiscard]] std::string blameReport(sim::Cycle now) const;

  // --- CoreSink ----------------------------------------------------------
  void deliverResponse(CoreId c, const MemResponse& r) override;
  void deliverSuccessorUpdate(CoreId c, CoreId successor, sim::Addr a,
                              bool successorIsMwait) override;
  void scheduleAtCore(CoreId c, sim::Cycle when, sim::InlineEvent ev) override;

  // --- ParallelDispatch::Hooks (barrier-merge callbacks) ------------------
  sim::Cycle resolveRequest(CoreId from, BankId bank, sim::Cycle at) override;
  void commitPortAcquire(BankId bank, sim::Cycle at) override;

 private:
  void enableParallelEngine();
  /// Register metrics/probes and distribute hook pointers (recorder set).
  void attachObservability();

  SystemConfig cfg_;
  sim::Engine engine_;
  Network net_;
  Allocator alloc_;
  std::vector<std::unique_ptr<Bank>> banks_;
  std::vector<atomics::Qnode> qnodes_;
  std::vector<CoreHot> coreHot_;  // dense hot state, one slot per core
  std::vector<std::unique_ptr<Core>> cores_;
  // Hook bundle handed to cores/banks/sync; owned here so those raw
  // pointers stay valid for the System's whole lifetime.
  std::unique_ptr<obs::SimHooks> obsHooks_;
  // Fault-injection plan (null when disabled) and the hang watchdog (null
  // when watchdogCycles == 0). Banks and the network hold raw pointers to
  // the plan; the engine holds a raw ProgressProbe pointer to the watchdog.
  std::unique_ptr<fault::FaultPlan> faultPlan_;
  std::unique_ptr<fault::Watchdog> watchdog_;
  // Parallel-engine state: shard (= topology group) of each endpoint, the
  // per-bank port shadows replayed at barrier merges, and the dispatcher
  // itself. Declared last: its destructor detaches from the engine and
  // joins the workers while the rest of the system is still alive.
  std::vector<std::uint32_t> shardOfCore_;
  std::vector<std::uint32_t> shardOfBank_;
  std::vector<sim::ParallelDispatch::PortShadow> portShadow_;
  std::unique_ptr<sim::ParallelDispatch> dispatch_;
};

}  // namespace colibri::arch
