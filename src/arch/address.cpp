#include "arch/address.hpp"

#include <algorithm>

namespace colibri::arch {

Addr Allocator::allocGlobal(std::uint64_t n) {
  const std::uint64_t numBanks = cfg_.numBanks();
  // Start past every per-bank cursor so interleaved rows never collide with
  // earlier tile-local allocations.
  for (const auto cursor : nextOffsetPerBank_) {
    nextGlobalOffset_ = std::max(nextGlobalOffset_, cursor);
  }
  const Addr base = nextGlobalOffset_ * numBanks;
  COLIBRI_CHECK_MSG(base + n <= map_.numWords(), "SPM exhausted (global)");
  // Advance whole interleaving rows and keep per-bank cursors consistent so
  // local allocations never collide with global ones.
  const std::uint64_t rows = (n + numBanks - 1) / numBanks;
  nextGlobalOffset_ += rows;
  for (auto& cursor : nextOffsetPerBank_) {
    cursor = std::max(cursor, nextGlobalOffset_);
  }
  return base;
}

std::vector<Addr> Allocator::allocLocal(TileId t, std::uint64_t n) {
  std::vector<Addr> out;
  out.reserve(n);
  const BankId first = t * cfg_.banksPerTile;
  for (std::uint64_t i = 0; i < n; ++i) {
    // Round-robin across the tile's banks to spread local traffic.
    const BankId b = first + static_cast<BankId>(i % cfg_.banksPerTile);
    out.push_back(allocInBank(b));
  }
  return out;
}

Addr Allocator::allocInBank(BankId b) {
  COLIBRI_CHECK(b < cfg_.numBanks());
  std::uint64_t& cursor = nextOffsetPerBank_[b];
  COLIBRI_CHECK_MSG(cursor < cfg_.wordsPerBank, "SPM exhausted (bank)");
  return map_.compose(b, cursor++);
}

}  // namespace colibri::arch
