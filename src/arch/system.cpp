#include "arch/system.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "obs/hooks.hpp"
#include "obs/recorder.hpp"
#include "sim/check.hpp"
#include "sim/event.hpp"
#include "sim/framepool.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"

namespace colibri::arch {

System::System(const SystemConfig& cfg)
    : cfg_(cfg), net_(engine_, cfg), alloc_(cfg) {
  cfg_.validate();

  banks_.reserve(cfg_.numBanks());
  for (BankId b = 0; b < cfg_.numBanks(); ++b) {
    banks_.push_back(std::make_unique<Bank>(engine_, net_, *this, cfg_, b));
  }

  qnodes_.reserve(cfg_.numCores);
  for (CoreId c = 0; c < cfg_.numCores; ++c) {
    qnodes_.emplace_back(c);
  }

  coreHot_.resize(cfg_.numCores);
  cores_.reserve(cfg_.numCores);
  for (CoreId c = 0; c < cfg_.numCores; ++c) {
    cores_.push_back(std::make_unique<Core>(*this, c, &coreHot_[c]));
    if (cfg_.adapter == AdapterKind::kColibri) {
      cores_[c]->qnode_ = &qnodes_[c];
      qnodes_[c].setWakeUpSender(
          [this, c](CoreId successor, bool successorIsMwait, sim::Addr a) {
            MemRequest wake;
            wake.kind = OpKind::kWakeUp;
            wake.addr = a;
            wake.value = static_cast<sim::Word>(successor);
            wake.core = c;
            wake.successorIsMwait = successorIsMwait;
            injectRequest(c, wake);
          });
    }
  }

  if (cfg_.fault.enabled()) {
    fault::FaultConfig fc = cfg_.fault;
    if (fc.seed == 0) {
      // Derive from the system seed so sweep repetitions explore distinct
      // fault schedules unless --fault-seed pins one.
      std::uint64_t s = cfg_.seed ^ 0xFA175EED00000001ULL;
      fc.seed = sim::splitmix64(s);
      if (fc.seed == 0) {
        fc.seed = 1;
      }
    }
    faultPlan_ = std::make_unique<fault::FaultPlan>(fc);
    net_.setFaultPlan(faultPlan_.get());
    for (auto& b : banks_) {
      b->setFaultPlan(faultPlan_.get());
    }
  }

  if (cfg_.watchdogCycles > 0) {
    fault::Watchdog::Hooks hooks;
    hooks.lastProgress = [this] {
      sim::Cycle last = 0;
      for (const CoreHot& h : coreHot_) {
        last = std::max(last, h.lastProductive);
      }
      return last;
    };
    hooks.allDone = [this] { return allTasksDone(); };
    hooks.blame = [this](sim::Cycle at) { return blameReport(at); };
    watchdog_ =
        std::make_unique<fault::Watchdog>(cfg_.watchdogCycles, std::move(hooks));
    engine_.setProgressProbe(watchdog_.get());
  }

  if (cfg_.recorder != nullptr) {
    attachObservability();
  }

  if (cfg_.engineThreads > 1) {
    enableParallelEngine();
  }
}

void System::attachObservability() {
  obs::Recorder* rec = cfg_.recorder;
  rec->attachSystem();
  obs::Registry& reg = rec->registry();
  obsHooks_ = std::make_unique<obs::SimHooks>();
  obsHooks_->registry = &reg;

  // Hot-path counters; everything else is a gauge probe read only at
  // serial sample points, so it costs nothing between samples.
  obsHooks_->casRetries = reg.counter("sync.casRetries");
  obsHooks_->rmwRetries = reg.counter("sync.rmwRetries");
  obsHooks_->wgenVisits = reg.counter("wgen.phaseVisits");
  obsHooks_->opLatency = reg.histogram("core.opLatency");

  using MC = obs::MetricClass;
  reg.gauge("engine.pendingEvents", [this] {
    return static_cast<double>(engine_.pendingEvents());
  });
  reg.gauge("engine.executedEvents", [this] {
    return static_cast<double>(engine_.executedEvents());
  });
  reg.gauge("core.issuedOps", [this] {
    std::uint64_t n = 0;
    for (const auto& c : cores_) {
      n += c->stats().totalIssued();
    }
    return static_cast<double>(n);
  });
  reg.gauge("core.sleepCycles", [this] {
    std::uint64_t n = 0;
    for (const auto& c : cores_) {
      n += c->stats().sleepCycles;
    }
    return static_cast<double>(n);
  });
  reg.gauge("core.stallCycles", [this] {
    std::uint64_t n = 0;
    for (const auto& c : cores_) {
      n += c->stats().stallCycles;
    }
    return static_cast<double>(n);
  });
  reg.gauge("bank.requests", [this] {
    std::uint64_t n = 0;
    for (const auto& b : banks_) {
      n += b->stats().requests;
    }
    return static_cast<double>(n);
  });
  reg.gauge("bank.backlogMax", [this] {
    sim::Cycle mx = 0;
    for (const auto& b : banks_) {
      mx = std::max(mx, b->backlog());
    }
    return static_cast<double>(mx);
  });
  reg.gauge("bank.backlogMean", [this] {
    double sum = 0;
    for (const auto& b : banks_) {
      sum += static_cast<double>(b->backlog());
    }
    return sum / static_cast<double>(banks_.size());
  });
  reg.gauge("net.msgsLocalTile", [this] {
    return static_cast<double>(net_.stats().messagesByDistance[0]);
  });
  reg.gauge("net.msgsSameGroup", [this] {
    return static_cast<double>(net_.stats().messagesByDistance[1]);
  });
  reg.gauge("net.msgsRemoteGroup", [this] {
    return static_cast<double>(net_.stats().messagesByDistance[2]);
  });
  reg.gauge("net.queueingDelay", [this] {
    return static_cast<double>(net_.stats().totalQueueingDelay);
  });
  reg.gauge("adapter.lrGrants", [this] {
    std::uint64_t n = 0;
    for (const auto& b : banks_) {
      n += b->adapter().stats().lrGrants;
    }
    return static_cast<double>(n);
  });
  reg.gauge("adapter.lrFails", [this] {
    std::uint64_t n = 0;
    for (const auto& b : banks_) {
      n += b->adapter().stats().lrFails;
    }
    return static_cast<double>(n);
  });
  reg.gauge("adapter.scSuccesses", [this] {
    std::uint64_t n = 0;
    for (const auto& b : banks_) {
      n += b->adapter().stats().scSuccesses;
    }
    return static_cast<double>(n);
  });
  reg.gauge("adapter.scFailures", [this] {
    std::uint64_t n = 0;
    for (const auto& b : banks_) {
      n += b->adapter().stats().scFailures;
    }
    return static_cast<double>(n);
  });
  reg.gauge("adapter.mwaitWakes", [this] {
    std::uint64_t n = 0;
    for (const auto& b : banks_) {
      n += b->adapter().stats().mwaitWakes;
    }
    return static_cast<double>(n);
  });
  reg.gauge("adapter.wakeUpRequests", [this] {
    std::uint64_t n = 0;
    for (const auto& b : banks_) {
      n += b->adapter().stats().wakeUpRequests;
    }
    return static_cast<double>(n);
  });
  // Coroutine-frame residency. The pooled/heap *split* depends on which OS
  // thread allocated (workers fall back to the heap), so only the sum is
  // deterministic across engine-thread counts.
  reg.gauge("framepool.frames", [rec] {
    return static_cast<double>(sim::framepool::pooledFrameCount() +
                               sim::framepool::heapFrameCount()) -
           static_cast<double>(rec->frameBaseline());
  });
  reg.gauge(
      "engine.windows",
      [this] { return static_cast<double>(engineCounters().windows); },
      MC::kDiagnostic);
  reg.gauge(
      "engine.barriersTaken",
      [this] { return static_cast<double>(engineCounters().barriersTaken); },
      MC::kDiagnostic);
  reg.gauge(
      "engine.barriersElided",
      [this] { return static_cast<double>(engineCounters().barriersElided); },
      MC::kDiagnostic);
  reg.gauge(
      "engine.deferredIntents",
      [this] { return static_cast<double>(engineCounters().deferredIntents); },
      MC::kDiagnostic);
  reg.gauge(
      "engine.idleShardSkips",
      [this] { return static_cast<double>(engineCounters().idleShardSkips); },
      MC::kDiagnostic);
  reg.gauge(
      "framepool.pooledFrames",
      [] { return static_cast<double>(sim::framepool::pooledFrameCount()); },
      MC::kDiagnostic);
  reg.gauge(
      "framepool.heapFrames",
      [] { return static_cast<double>(sim::framepool::heapFrameCount()); },
      MC::kDiagnostic);
  reg.gauge(
      "framepool.arenaBytes",
      [] { return static_cast<double>(sim::framepool::arenaBytes()); },
      MC::kDiagnostic);

  if (faultPlan_ != nullptr) {
    fault::FaultPlan* fp = faultPlan_.get();
    // Deterministic class: injection decisions are pure hashes of
    // (seed, site, entities, cycle), so the counts are bit-identical
    // across reruns and engine-thread counts and belong in goldens.
    reg.gauge("fault.netDelays", [fp] {
      return static_cast<double>(fp->counters().at(fault::Site::kNetDelay));
    });
    reg.gauge("fault.scFails", [fp] {
      return static_cast<double>(fp->counters().at(fault::Site::kScFail));
    });
    reg.gauge("fault.evictions", [fp] {
      return static_cast<double>(fp->counters().at(fault::Site::kEvict));
    });
    reg.gauge("fault.stalls", [fp] {
      return static_cast<double>(fp->counters().at(fault::Site::kStall));
    });
    reg.gauge("fault.injected", [fp] {
      return static_cast<double>(fp->counters().total());
    });
  }

  if (obs::Tracer* tr = rec->tracer()) {
    tr->bind(cfg_.numCores, cfg_.numBanks());
    obsHooks_->tracer = tr;
    if (faultPlan_ != nullptr) {
      faultPlan_->setTracer(tr);
    }
  }
  for (auto& b : banks_) {
    b->setObsHooks(obsHooks_.get());
  }
  for (auto& c : cores_) {
    c->hooks_ = obsHooks_.get();
  }
}

void System::enableParallelEngine() {
  // Shards are topology groups: every core, bank, qnode and adapter
  // belongs to exactly one group, and all intra-group traffic — local-tile
  // and same-group alike — executes inline inside windows (its shared
  // stages and clamp streams are touched by this group alone, so inline
  // resolution is already the exact sequential computation). Only
  // cross-group traffic is deferred, which makes the window length the
  // true cross-shard minimum latency, latRemoteGroup: nothing sent in a
  // window can reach another shard inside it, even when
  // latSameGroup > latRemoteGroup (intra-shard latencies never bound the
  // window; injectRequest checks the premise on every deferred send).
  const std::uint32_t groups = cfg_.numGroups();
  const sim::Cycle lookahead = cfg_.crossShardLookahead();
  if (groups < 2 || lookahead < 1) {
    return;  // nothing to parallelize; keep the sequential engine
  }
  const Topology& topo = net_.topology();
  shardOfCore_.resize(cfg_.numCores);
  for (CoreId c = 0; c < cfg_.numCores; ++c) {
    shardOfCore_[c] = topo.groupOfTile(topo.tileOfCore(c));
  }
  shardOfBank_.resize(cfg_.numBanks());
  portShadow_.resize(cfg_.numBanks());
  for (BankId b = 0; b < cfg_.numBanks(); ++b) {
    shardOfBank_[b] = topo.groupOfTile(topo.tileOfBank(b));
    banks_[b]->setPortShadow(&portShadow_[b]);
  }
  net_.enableShardStats(groups);
  if (faultPlan_ != nullptr) {
    // One injection-counter slot per shard (plus the serial slot), so
    // worker-thread counting never contends or races.
    faultPlan_->setShardSlots(groups);
  }
  if (obsHooks_ != nullptr) {
    // One counter slot per shard, so worker adds never contend or race.
    cfg_.recorder->registry().setShardSlots(groups);
  }
  dispatch_ = std::make_unique<sim::ParallelDispatch>(
      engine_, *this, groups, std::min(cfg_.engineThreads, groups), lookahead);
}

System::~System() {
  if (cfg_.recorder != nullptr) {
    // The gauge probes capture `this`; drop them before anything dies.
    cfg_.recorder->detachSystem();
  }
  // Drop queued events first: they may capture awaiter state living inside
  // coroutine frames that the Core destructors are about to destroy.
  engine_.clear();
}

void System::spawn(CoreId c, sim::Task task) {
  COLIBRI_CHECK(c < cores_.size());
  if (dispatch_ != nullptr) {
    // Start-up runs the coroutine to its first suspension; events it
    // schedules must land in the core's shard queue, in program order.
    sim::ParallelDispatch::ShardScope scope(*dispatch_, shardOfCore_[c]);
    cores_[c]->run(std::move(task));
    return;
  }
  cores_[c]->run(std::move(task));
}

sim::Word System::peek(sim::Addr a) const {
  return banks_[a % cfg_.numBanks()]->read(a);
}

void System::poke(sim::Addr a, sim::Word v) {
  banks_[a % cfg_.numBanks()]->writeRaw(a, v);
}

void System::run() { engine_.run(); }

void System::runUntil(sim::Cycle horizon) { engine_.runUntil(horizon); }

void System::at(sim::Cycle when, std::function<void()> fn) {
  engine_.scheduleAt(when, std::move(fn));
}

void System::rethrowFailures() const {
  for (const auto& core : cores_) {
    core->rethrowIfFailed();
  }
}

bool System::allTasksDone() const {
  for (const auto& core : cores_) {
    if (core->task_.valid() && !core->task_.done()) {
      return false;
    }
  }
  return true;
}

void System::injectRequest(CoreId from, const MemRequest& req) {
  const BankId b = static_cast<BankId>(req.addr % cfg_.numBanks());
  auto arrive = [this, b, req] { banks_[b]->receive(req); };
  static_assert(sim::InlineEvent::fitsInline<decltype(arrive)>,
                "request-injection closure must fit the inline event buffer");

  if (dispatch_ != nullptr && sim::ParallelDispatch::inWindowContext() &&
      shardOfCore_[from] != shardOfBank_[b]) {
    // Cross-shard send: the destination bank's backlog and the remote
    // stages (group egress, link, tile ingress) interleave with other
    // shards' traffic, so the probe and stage acquisition happen at the
    // barrier merge, at this send's exact sequential position
    // (resolveRequest below). Intra-shard traffic — local-tile and
    // same-group — resolves inline: its stages and clamp streams belong to
    // this shard alone. The window length is latRemoteGroup, so every
    // deferred send must be remote-group distance; check the premise.
    COLIBRI_CHECK_MSG(topology().coreToBank(from, b) == Distance::kRemoteGroup,
                      "cross-shard send with intra-group distance: core "
                          << from << " -> bank " << b);
    dispatch_->deferRequest(shardOfBank_[b], from, b, std::move(arrive));
    return;
  }

  const sim::Cycle arriveAt = resolveRequest(from, b, engine_.now());
  if (dispatch_ != nullptr) {
    dispatch_->scheduleToShard(shardOfBank_[b], arriveAt, std::move(arrive));
  } else {
    engine_.scheduleAt(arriveAt, std::move(arrive));
  }
}

sim::Cycle System::resolveRequest(CoreId from, BankId bank, sim::Cycle at) {
  // Backpressure proxy: a request towards a backlogged bank holds shared
  // network stages longer (finite switch buffers; see config.hpp).
  std::uint32_t hold = 1;
  if (cfg_.linkHoldMax > 0) {
    const sim::Cycle backlog = banks_[bank]->backlogAt(at);
    hold += static_cast<std::uint32_t>(
        backlog > cfg_.linkHoldMax ? cfg_.linkHoldMax : backlog);
  }
  return net_.routeRequest(from, bank, at, hold);
}

void System::commitPortAcquire(BankId bank, sim::Cycle at) {
  sim::ParallelDispatch::PortShadow& sh = portShadow_[bank];
  COLIBRI_CHECK_MSG(sh.pending > 0, "port-shadow commit with nothing pending");
  --sh.pending;
  sim::ThroughputResource::applyAcquire(sh.cursor, sh.used,
                                        cfg_.bankPortsPerCycle, at);
}

void System::scheduleAtCore(CoreId c, sim::Cycle when, sim::InlineEvent ev) {
  if (dispatch_ != nullptr) {
    dispatch_->scheduleToShard(shardOfCore_[c], when, std::move(ev));
    return;
  }
  engine_.scheduleAt(when, std::move(ev));
}

void System::resetStats() {
  for (auto& core : cores_) {
    core->resetStats();
  }
  for (auto& bank : banks_) {
    bank->resetStats();
  }
  net_.resetStats();
  if (faultPlan_ != nullptr) {
    faultPlan_->resetCounters();
  }
}

std::string System::blameReport(sim::Cycle now) const {
  constexpr std::size_t kMaxBlamedCores = 16;
  std::ostringstream os;
  sim::Cycle lastAny = 0;
  for (const CoreHot& h : coreHot_) {
    lastAny = std::max(lastAny, h.lastProductive);
  }
  os << "blame report at cycle " << now << " (adapter "
     << toString(cfg_.adapter) << ", last productive retirement system-wide at "
     << lastAny << "):\n";

  std::vector<BankId> blamedBanks;
  std::size_t stuck = 0;
  std::size_t shown = 0;
  for (CoreId c = 0; c < cfg_.numCores; ++c) {
    const Core& core = *cores_[c];
    if (!core.task_.valid() || core.task_.done()) {
      continue;
    }
    ++stuck;
    if (shown == kMaxBlamedCores) {
      continue;  // keep counting, stop printing
    }
    ++shown;
    const CoreHot& h = coreHot_[c];
    os << "  core " << c << ": ";
    if (h.pendingHandle != nullptr) {
      const BankId b = static_cast<BankId>(h.pendingAddr % cfg_.numBanks());
      os << "waiting on " << toString(h.pendingKind) << " to addr "
         << h.pendingAddr << " (bank " << b << ") since cycle "
         << h.pendingSince;
      if (std::find(blamedBanks.begin(), blamedBanks.end(), b) ==
          blamedBanks.end()) {
        blamedBanks.push_back(b);
      }
    } else {
      os << "no outstanding request";
    }
    os << ", last productive retirement at " << h.lastProductive;
    if (cfg_.adapter == AdapterKind::kColibri) {
      const atomics::Qnode& q = qnodes_[c];
      os << ", qnode ";
      switch (q.state()) {
        case atomics::Qnode::State::kIdle:
          os << "idle";
          break;
        case atomics::Qnode::State::kQueued:
          os << "queued";
          break;
        case atomics::Qnode::State::kOwesWakeup:
          os << "owes-wakeup";
          break;
      }
      if (q.hasSuccessor()) {
        os << " (successor core " << q.successor() << ")";
      }
    }
    os << '\n';
  }
  if (stuck > shown) {
    os << "  ... and " << (stuck - shown) << " more stuck cores\n";
  }
  if (stuck == 0) {
    os << "  (no core has an unfinished task)\n";
  }
  std::sort(blamedBanks.begin(), blamedBanks.end());
  for (const BankId b : blamedBanks) {
    os << "  bank " << b << ": ";
    banks_[b]->adapter().describeState(os);
    os << '\n';
  }
  return os.str();
}

void System::deliverResponse(CoreId c, const MemResponse& r) {
  cores_[c]->complete(r);
}

void System::deliverSuccessorUpdate(CoreId c, CoreId successor, sim::Addr a,
                                    bool successorIsMwait) {
  (void)a;
  qnodes_[c].onSuccessorUpdate(successor, successorIsMwait);
}

}  // namespace colibri::arch
