#include "arch/system.hpp"

#include <utility>

#include "sim/check.hpp"
#include "sim/event.hpp"

namespace colibri::arch {

System::System(const SystemConfig& cfg)
    : cfg_(cfg), net_(engine_, cfg), alloc_(cfg) {
  cfg_.validate();

  banks_.reserve(cfg_.numBanks());
  for (BankId b = 0; b < cfg_.numBanks(); ++b) {
    banks_.push_back(std::make_unique<Bank>(engine_, net_, *this, cfg_, b));
  }

  qnodes_.reserve(cfg_.numCores);
  for (CoreId c = 0; c < cfg_.numCores; ++c) {
    qnodes_.emplace_back(c);
  }

  cores_.reserve(cfg_.numCores);
  for (CoreId c = 0; c < cfg_.numCores; ++c) {
    cores_.push_back(std::make_unique<Core>(*this, c));
    if (cfg_.adapter == AdapterKind::kColibri) {
      cores_[c]->qnode_ = &qnodes_[c];
      qnodes_[c].setWakeUpSender(
          [this, c](CoreId successor, bool successorIsMwait, sim::Addr a) {
            MemRequest wake;
            wake.kind = OpKind::kWakeUp;
            wake.addr = a;
            wake.value = static_cast<sim::Word>(successor);
            wake.core = c;
            wake.successorIsMwait = successorIsMwait;
            injectRequest(c, wake);
          });
    }
  }
}

System::~System() {
  // Drop queued events first: they may capture awaiter state living inside
  // coroutine frames that the Core destructors are about to destroy.
  engine_.clear();
}

void System::spawn(CoreId c, sim::Task task) {
  COLIBRI_CHECK(c < cores_.size());
  cores_[c]->run(std::move(task));
}

sim::Word System::peek(sim::Addr a) const {
  return banks_[a % cfg_.numBanks()]->read(a);
}

void System::poke(sim::Addr a, sim::Word v) {
  banks_[a % cfg_.numBanks()]->writeRaw(a, v);
}

void System::run() { engine_.run(); }

void System::runUntil(sim::Cycle horizon) { engine_.runUntil(horizon); }

void System::at(sim::Cycle when, std::function<void()> fn) {
  engine_.scheduleAt(when, std::move(fn));
}

void System::rethrowFailures() const {
  for (const auto& core : cores_) {
    core->rethrowIfFailed();
  }
}

bool System::allTasksDone() const {
  for (const auto& core : cores_) {
    if (core->task_.valid() && !core->task_.done()) {
      return false;
    }
  }
  return true;
}

void System::injectRequest(CoreId from, const MemRequest& req) {
  const BankId b = static_cast<BankId>(req.addr % cfg_.numBanks());
  // Backpressure proxy: a request towards a backlogged bank holds shared
  // network stages longer (finite switch buffers; see config.hpp).
  std::uint32_t hold = 1;
  if (cfg_.linkHoldMax > 0) {
    const sim::Cycle backlog = banks_[b]->backlog();
    hold += static_cast<std::uint32_t>(
        backlog > cfg_.linkHoldMax ? cfg_.linkHoldMax : backlog);
  }
  auto arrive = [this, b, req] { banks_[b]->receive(req); };
  static_assert(sim::InlineEvent::fitsInline<decltype(arrive)>,
                "request-injection closure must fit the inline event buffer");
  net_.coreToBank(from, b, std::move(arrive), hold);
}

void System::resetStats() {
  for (auto& core : cores_) {
    core->resetStats();
  }
  for (auto& bank : banks_) {
    bank->resetStats();
  }
  net_.resetStats();
}

void System::deliverResponse(CoreId c, const MemResponse& r) {
  cores_[c]->complete(r);
}

void System::deliverSuccessorUpdate(CoreId c, CoreId successor, sim::Addr a,
                                    bool successorIsMwait) {
  (void)a;
  qnodes_[c].onSuccessorUpdate(successor, successorIsMwait);
}

}  // namespace colibri::arch
