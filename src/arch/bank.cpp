#include "arch/bank.hpp"

#include <utility>

#include "fault/fault.hpp"
#include "obs/hooks.hpp"
#include "sim/check.hpp"
#include "sim/event.hpp"

namespace colibri::arch {

Bank::Bank(sim::Engine& engine, Network& net, CoreSink& sink,
           const SystemConfig& cfg, BankId id)
    : engine_(engine),
      net_(net),
      sink_(sink),
      cfg_(cfg),
      id_(id),
      port_(cfg.bankPortsPerCycle),
      words_(cfg.wordsPerBank, 0) {
  adapter_ = atomics::makeAdapter(cfg, *this);
}

std::uint64_t Bank::offsetOf(Addr a) const {
  COLIBRI_CHECK_MSG(a % cfg_.numBanks() == id_,
                    "address " << a << " does not map to bank " << id_);
  const std::uint64_t off = a / cfg_.numBanks();
  COLIBRI_CHECK(off < words_.size());
  return off;
}

void Bank::receive(const MemRequest& req) {
  const sim::Cycle at = engine_.now();
  if (shadow_ != nullptr) {
    // Inside a worker window: log this acquire so the barrier merge can
    // replay the port's grant sequence when it resolves deferred sends
    // that interleave with it. The first uncommitted acquire snapshots the
    // live pre-acquire state as the replay starting point.
    if (auto* log = sim::ParallelDispatch::currentPortLog()) {
      if (shadow_->pending++ == 0) {
        shadow_->cursor = port_.cursor();
        shadow_->used = port_.slotUsed();
      }
      log->push_back({id_, at});
    }
  }
  const sim::Cycle grant = port_.acquire(at);
  sim::Cycle serveAt = grant;
  if (fault_ != nullptr) {
    // Transient service stall: extra cycles between the port grant and the
    // adapter. The port itself is untouched (its grant sequence — and the
    // parallel engine's shadow replay of it — stays exactly as without
    // faults); the clamp keeps service in order, so a stalled request
    // delays everything granted behind it, like a refresh-busy bank.
    serveAt += fault_->stall(id_, req.core, grant);
    if (serveAt < lastServe_) {
      serveAt = lastServe_;
    }
    lastServe_ = serveAt;
  }
  if (hooks_ != nullptr && hooks_->tracer != nullptr &&
      expectsResponse(req.kind)) {
    hooks_->tracer->onBankArrive(req.core, id_, at, serveAt);
  }
  auto serve = [this, req] {
    ++stats_.requests;
    adapter_->handle(req);
  };
  static_assert(sim::InlineEvent::fitsInline<decltype(serve)>,
                "bank service closure must fit the inline event buffer");
  engine_.scheduleAt(serveAt, std::move(serve));
}

sim::Cycle Bank::backlogAt(sim::Cycle at) const {
  // All acquires on this port come from the bank's own shard, in order, so
  // inside a window the live state is already sequential. A merge-time
  // probe (outside any window, with uncommitted acquires pending) must use
  // the shadow instead: it holds the state as of the committed prefix.
  const bool useShadow = shadow_ != nullptr && shadow_->pending > 0 &&
                         !sim::ParallelDispatch::inWindowContext();
  const sim::Cycle free =
      useShadow ? sim::ThroughputResource::peekFrom(
                      shadow_->cursor, shadow_->used, cfg_.bankPortsPerCycle, at)
                : port_.peek(at);
  return free - at;
}

Word Bank::read(Addr a) const { return words_[offsetOf(a)]; }

void Bank::writeRaw(Addr a, Word v) { words_[offsetOf(a)] = v; }

void Bank::respond(CoreId c, const MemResponse& r) {
  // Responses ride dedicated return paths (no shared stages), so the
  // arrival cycle is fully determined at send time; the sink routes the
  // event to the core's execution domain.
  const sim::Cycle arriveAt = net_.routeResponse(id_, c, engine_.now());
  if (hooks_ != nullptr && hooks_->tracer != nullptr) {
    hooks_->tracer->onRespond(c, engine_.now());
  }
  auto arrive = [this, c, r] { sink_.deliverResponse(c, r); };
  static_assert(sim::InlineEvent::fitsInline<decltype(arrive)>,
                "response closure must fit the inline event buffer");
  sink_.scheduleAtCore(c, arriveAt, std::move(arrive));
}

void Bank::sendSuccessorUpdate(CoreId target, CoreId successor, Addr a,
                               bool successorIsMwait) {
  const sim::Cycle arriveAt = net_.routeResponse(id_, target, engine_.now());
  auto arrive = [this, target, successor, a, successorIsMwait] {
    sink_.deliverSuccessorUpdate(target, successor, a, successorIsMwait);
  };
  static_assert(sim::InlineEvent::fitsInline<decltype(arrive)>,
                "successor-update closure must fit the inline event buffer");
  sink_.scheduleAtCore(target, arriveAt, std::move(arrive));
}

void Bank::resetStats() {
  stats_.reset();
  port_.resetStats();
  adapter_->mutableStats().reset();
}

}  // namespace colibri::arch
