#include "arch/bank.hpp"

#include <utility>

#include "sim/check.hpp"
#include "sim/event.hpp"

namespace colibri::arch {

Bank::Bank(sim::Engine& engine, Network& net, CoreSink& sink,
           const SystemConfig& cfg, BankId id)
    : engine_(engine),
      net_(net),
      sink_(sink),
      cfg_(cfg),
      id_(id),
      port_(cfg.bankPortsPerCycle),
      words_(cfg.wordsPerBank, 0) {
  adapter_ = atomics::makeAdapter(cfg, *this);
}

std::uint64_t Bank::offsetOf(Addr a) const {
  COLIBRI_CHECK_MSG(a % cfg_.numBanks() == id_,
                    "address " << a << " does not map to bank " << id_);
  const std::uint64_t off = a / cfg_.numBanks();
  COLIBRI_CHECK(off < words_.size());
  return off;
}

void Bank::receive(const MemRequest& req) {
  const sim::Cycle grant = port_.acquire(engine_.now());
  auto serve = [this, req] {
    ++stats_.requests;
    adapter_->handle(req);
  };
  static_assert(sim::InlineEvent::fitsInline<decltype(serve)>,
                "bank service closure must fit the inline event buffer");
  engine_.scheduleAt(grant, std::move(serve));
}

Word Bank::read(Addr a) const { return words_[offsetOf(a)]; }

void Bank::writeRaw(Addr a, Word v) { words_[offsetOf(a)] = v; }

void Bank::respond(CoreId c, const MemResponse& r) {
  auto arrive = [this, c, r] { sink_.deliverResponse(c, r); };
  static_assert(sim::InlineEvent::fitsInline<decltype(arrive)>,
                "response closure must fit the inline event buffer");
  net_.bankToCore(id_, c, std::move(arrive));
}

void Bank::sendSuccessorUpdate(CoreId target, CoreId successor, Addr a,
                               bool successorIsMwait) {
  auto arrive = [this, target, successor, a, successorIsMwait] {
    sink_.deliverSuccessorUpdate(target, successor, a, successorIsMwait);
  };
  static_assert(sim::InlineEvent::fitsInline<decltype(arrive)>,
                "successor-update closure must fit the inline event buffer");
  net_.bankToCore(id_, target, std::move(arrive));
}

void Bank::resetStats() {
  stats_.reset();
  port_.resetStats();
  adapter_->mutableStats().reset();
}

}  // namespace colibri::arch
