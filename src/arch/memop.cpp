#include "arch/memop.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace colibri::arch {

std::string_view toString(OpKind k) {
  switch (k) {
    case OpKind::kLoad:
      return "load";
    case OpKind::kStore:
      return "store";
    case OpKind::kAmoAdd:
      return "amoadd";
    case OpKind::kAmoSwap:
      return "amoswap";
    case OpKind::kAmoAnd:
      return "amoand";
    case OpKind::kAmoOr:
      return "amoor";
    case OpKind::kAmoXor:
      return "amoxor";
    case OpKind::kAmoMax:
      return "amomax";
    case OpKind::kAmoMin:
      return "amomin";
    case OpKind::kLr:
      return "lr";
    case OpKind::kSc:
      return "sc";
    case OpKind::kLrWait:
      return "lrwait";
    case OpKind::kScWait:
      return "scwait";
    case OpKind::kMwait:
      return "mwait";
    case OpKind::kWakeUp:
      return "wakeup";
  }
  return "?";
}

Word applyAmo(OpKind k, Word mem, Word operand) {
  switch (k) {
    case OpKind::kAmoAdd:
      return mem + operand;
    case OpKind::kAmoSwap:
      return operand;
    case OpKind::kAmoAnd:
      return mem & operand;
    case OpKind::kAmoOr:
      return mem | operand;
    case OpKind::kAmoXor:
      return mem ^ operand;
    case OpKind::kAmoMax:
      return std::max(static_cast<std::int32_t>(mem),
                      static_cast<std::int32_t>(operand));
    case OpKind::kAmoMin:
      return std::min(static_cast<std::int32_t>(mem),
                      static_cast<std::int32_t>(operand));
    default:
      COLIBRI_CHECK_MSG(false, "applyAmo on non-AMO op");
  }
  return 0;
}

}  // namespace colibri::arch
