#include "arch/topology.hpp"

namespace colibri::arch {

const char* toString(Distance d) {
  switch (d) {
    case Distance::kLocalTile:
      return "local-tile";
    case Distance::kSameGroup:
      return "same-group";
    case Distance::kRemoteGroup:
      return "remote-group";
  }
  return "?";
}

}  // namespace colibri::arch
