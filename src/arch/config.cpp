#include "arch/config.hpp"

namespace colibri::arch {

std::string toString(AdapterKind k) {
  switch (k) {
    case AdapterKind::kAmoOnly:
      return "amo-only";
    case AdapterKind::kLrscSingle:
      return "lrsc-single";
    case AdapterKind::kLrscTable:
      return "lrsc-table";
    case AdapterKind::kLrscWait:
      return "lrscwait";
    case AdapterKind::kColibri:
      return "colibri";
  }
  return "?";
}

}  // namespace colibri::arch
