// Address mapping and a simple bump allocator for the simulated SPM.
//
// The modeled L1 is word-interleaved across all banks (as in MemPool):
// consecutive word addresses land in consecutive banks, so a dense array
// spreads across the whole machine while a stride of numBanks() stays
// inside one bank. The allocator hands out either interleaved (global)
// regions or tile-local regions (all words of which live in one tile's
// banks — used for MCS queue nodes so cores spin/wait locally).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/config.hpp"
#include "sim/check.hpp"
#include "sim/types.hpp"

namespace colibri::arch {

using sim::Addr;
using sim::BankId;
using sim::TileId;

class AddressMap {
 public:
  explicit AddressMap(const SystemConfig& cfg)
      : numBanks_(cfg.numBanks()),
        banksPerTile_(cfg.banksPerTile),
        wordsPerBank_(cfg.wordsPerBank) {}

  [[nodiscard]] BankId bankOf(Addr a) const {
    return static_cast<BankId>(a % numBanks_);
  }
  [[nodiscard]] std::uint64_t offsetOf(Addr a) const { return a / numBanks_; }
  [[nodiscard]] TileId tileOfBank(BankId b) const { return b / banksPerTile_; }
  [[nodiscard]] TileId tileOf(Addr a) const { return tileOfBank(bankOf(a)); }

  [[nodiscard]] std::uint64_t numWords() const {
    return static_cast<std::uint64_t>(numBanks_) * wordsPerBank_;
  }

  /// Address of word `offset` in bank `b` (inverse of bankOf/offsetOf).
  [[nodiscard]] Addr compose(BankId b, std::uint64_t offset) const {
    COLIBRI_CHECK(b < numBanks_ && offset < wordsPerBank_);
    return offset * numBanks_ + b;
  }

 private:
  std::uint32_t numBanks_;
  std::uint32_t banksPerTile_;
  std::uint32_t wordsPerBank_;
};

/// Bump allocator over the simulated word space. Not thread-safe (the
/// simulator is single-threaded by design).
class Allocator {
 public:
  explicit Allocator(const SystemConfig& cfg)
      : map_(cfg),
        nextOffsetPerBank_(cfg.numBanks(), 0),
        cfg_(cfg) {}

  /// Allocate `n` consecutive word addresses (interleaved across banks).
  [[nodiscard]] Addr allocGlobal(std::uint64_t n);

  /// Allocate `n` words that all reside in banks of tile `t`. Returns the
  /// addresses (not necessarily contiguous).
  [[nodiscard]] std::vector<Addr> allocLocal(TileId t, std::uint64_t n);

  /// Allocate one word in a specific bank.
  [[nodiscard]] Addr allocInBank(BankId b);

  [[nodiscard]] const AddressMap& map() const { return map_; }

 private:
  AddressMap map_;
  std::uint64_t nextGlobalOffset_ = 0;  // in units of full rows (numBanks words)
  std::vector<std::uint64_t> nextOffsetPerBank_;
  SystemConfig cfg_;
};

}  // namespace colibri::arch
