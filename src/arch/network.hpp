// Hierarchical interconnect model.
//
// Messages between cores and banks take a latency determined by the
// distance class (local tile / same group / remote group) plus queueing
// delay on shared resources. Each distance class owns a disjoint set of
// stages (mirroring MemPool's separate local and remote tile ports):
//   - local tile:   dedicated single-cycle path, no shared stage;
//   - same group:   the group's local router (intra-group, inter-tile
//                   crossbar);
//   - remote group: the source group's egress port, the directed
//                   group-to-group link, and the destination tile's remote
//                   ingress port (shared by all of that tile's banks).
// The disjointness is deliberate: it gives every stage a single ordering
// domain — intra-group stages are touched only by their own group's
// traffic (one shard of the parallel engine, executed inline), remote
// stages only by deferred cross-shard traffic (resolved serially at the
// barrier merge) — which is what lets the parallel engine widen its
// window to the cross-shard minimum latency while staying bit-identical
// to the sequential engine (docs/ARCHITECTURE.md).
//
// Delivery is FIFO per (source endpoint, destination endpoint) pair. This
// is guaranteed structurally — fixed latency per class plus FIFO stages
// whose grants never decrease in acquire order — and enforced with a
// clamp, because Colibri's correctness argument relies on ordered memory
// transactions (Section IV-A): an SCwait and the WakeUpRequest dispatched
// right behind it must not be reordered. Because a pair's messages all
// traverse the same stage chain and add the same base latency, per-pair
// FIFO already follows from per-(endpoint, distance-class) monotonicity,
// so the clamp state is two numBanks() x 3 arrays (requests keyed by
// destination bank, responses by source bank) — O(cores + banks) instead
// of the O(cores * banks) dense pair matrix, which at 4096 cores x 16384
// banks would cost over a gigabyte. Debug builds on small geometries
// cross-check every message against the dense per-pair clamp.
//
// Only the request direction contends for stage bandwidth; responses use
// dedicated return paths (as in MemPool's full-duplex interconnect) with
// pure latency. Bank-port serialization is handled by the Bank itself.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/config.hpp"
#include "arch/topology.hpp"
#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "sim/resource.hpp"
#include "sim/types.hpp"

namespace colibri::fault {
class FaultPlan;
}

namespace colibri::arch {

using sim::Cycle;
using sim::Engine;

/// Per-distance-class traffic counters (for the energy model).
struct NetworkStats {
  std::array<std::uint64_t, 3> messagesByDistance{};  // indexed by Distance
  std::uint64_t totalMessages = 0;
  std::uint64_t totalQueueingDelay = 0;

  void reset() {
    messagesByDistance = {};
    totalMessages = 0;
    totalQueueingDelay = 0;
  }
};

class Network {
 public:
  Network(Engine& engine, const SystemConfig& cfg);

  /// Route a request departing core `c` at cycle `at` towards bank `b`:
  /// acquires the shared stages (link queueing), applies the per-pair FIFO
  /// clamp, and counts stats. Returns the delivery cycle — the caller
  /// schedules the arrival event itself (the parallel engine may defer it
  /// to another shard). Calls per (c,b) pair must be in send order.
  /// `holdSlots` >= 1 is the number of consecutive slots the message holds
  /// on each shared stage: >1 models backpressure from a backlogged
  /// destination (finite switch buffers, head-of-line blocking).
  Cycle routeRequest(CoreId c, BankId b, Cycle at, std::uint32_t holdSlots = 1);

  /// Route a response departing bank `b` at cycle `at` towards core `c`:
  /// pure latency plus the per-pair FIFO clamp, no shared stages. Returns
  /// the delivery cycle.
  Cycle routeResponse(BankId b, CoreId c, Cycle at);

  /// Convenience wrappers over route*: schedule `onArrive` on the engine
  /// at the computed delivery cycle. (Unit tests drive the network this
  /// way; System schedules through the parallel dispatcher instead.)
  void coreToBank(CoreId c, BankId b, sim::InlineEvent onArrive,
                  std::uint32_t holdSlots = 1);
  void bankToCore(BankId b, CoreId c, sim::InlineEvent onArrive);

  /// One-way latency (without queueing) for a distance class.
  [[nodiscard]] Cycle baseLatency(Distance d) const;

  /// Aggregated traffic counters. In parallel mode the counts land in
  /// per-shard buckets (worker windows) plus a main bucket (serial phases
  /// and merges); the sum is exactly the sequential engine's counters
  /// because every message increments exactly one bucket.
  [[nodiscard]] NetworkStats stats() const;
  void resetStats();

  /// Allocate per-shard stats buckets (parallel mode). Worker-window
  /// traffic then counts into the executing shard's bucket.
  void enableShardStats(std::uint32_t numShards);

  /// Attach the fault plan (null = injection off). With net-delay faults
  /// active the per-(bank, class) FIFO invariant is enforced as a true
  /// clamp instead of a hard check: injected delay can reorder raw
  /// arrivals, and the clamp restores FIFO delivery (a delayed message
  /// delays everything behind it on the same stream, like a blocked flit).
  void setFaultPlan(fault::FaultPlan* plan) { fault_ = plan; }

  [[nodiscard]] const Topology& topology() const { return topo_; }

  /// Total queueing delay currently accumulated on group links (congestion
  /// indicator used by interference analyses).
  [[nodiscard]] std::uint64_t linkQueueingDelay() const;

  /// Bytes of FIFO-clamp state actually allocated (the sparse per-bank
  /// per-distance-class arrays; excludes the debug cross-check).
  [[nodiscard]] std::size_t clampBytes() const;

  /// Bytes the retired dense per-pair clamp layout would need for `cfg`:
  /// two numCores * numBanks arrays of Cycle. Kept as a static formula so
  /// the 4k-core smoke test can assert the sparse layout's savings.
  [[nodiscard]] static std::size_t denseClampBytes(const SystemConfig& cfg);

 private:
  /// Claim the request path's shared stages for a message departing at
  /// `at`; returns the cycle it clears the last contended stage. Queueing
  /// delay counts into `st`.
  Cycle acquireRequestPath(GroupId srcGroup, GroupId dstGroup, TileId dstTile,
                           Distance d, Cycle at, std::uint32_t holdSlots,
                           NetworkStats& st);

  /// The stats bucket for the calling thread: the executing shard's bucket
  /// inside a worker window, the main bucket otherwise.
  [[nodiscard]] NetworkStats& currentStats();

  Engine& engine_;
  Topology topo_;
  SystemConfig cfg_;
  // Shared stages, each owned by exactly one distance class (see header
  // comment): same-group traffic uses the group's local router; remote
  // traffic uses source egress -> directed link -> destination ingress.
  std::vector<sim::ThroughputResource> localRouters_;  // one per group
  std::vector<sim::ThroughputResource> groupEgress_;   // one per group
  std::vector<sim::ThroughputResource> groupLinks_;    // numGroups^2, directed
  std::vector<sim::ThroughputResource> tileIngress_;   // one per tile, remote
  // FIFO clamps: last scheduled delivery per (bank, distance class). The
  // structural argument in the header comment makes these equivalent to
  // the dense per-pair clamp at O(banks) memory; indexed [id * 3 + class].
  std::vector<Cycle> lastRequestToBank_;    // requests, keyed by dst bank
  std::vector<Cycle> lastResponseFromBank_; // responses, keyed by src bank
#ifndef NDEBUG
  // Debug cross-check: the dense per-pair clamps, maintained alongside the
  // sparse ones on small geometries so every message's delivery can be
  // verified against the retired layout (empty when the geometry is too
  // large to afford the dense matrix).
  std::vector<Cycle> denseCoreToBank_;  // [c * numBanks + b]
  std::vector<Cycle> denseBankToCore_;  // [b * numCores + c]
#endif
  NetworkStats stats_;
  std::vector<NetworkStats> shardStats_;  // parallel mode, one per shard
  fault::FaultPlan* fault_ = nullptr;     // null = injection off
};

}  // namespace colibri::arch
