// Hierarchical interconnect model.
//
// Messages between cores and banks take a latency determined by the
// distance class (local tile / same group / remote group) plus queueing
// delay on shared resources:
//   - each group's local router (intra-group, inter-tile traffic),
//   - each directed group-to-group link (remote traffic).
// Local-tile traffic bypasses both (dedicated single-cycle paths).
//
// Delivery is FIFO per (source endpoint, destination endpoint) pair. This
// is guaranteed structurally (fixed latency + FIFO resources) and enforced
// with a per-pair clamp, because Colibri's correctness argument relies on
// ordered memory transactions (Section IV-A): an SCwait and the
// WakeUpRequest dispatched right behind it must not be reordered.
// The clamp is two flat direct-indexed arrays (core->bank and bank->core),
// sized numCores()*numBanks() from the config — one indexed load per
// message instead of a hash probe, and no packed-key collisions.
//
// Only the request direction contends for link bandwidth; responses use
// dedicated return paths (as in MemPool's full-duplex interconnect) with
// pure latency. Bank-port serialization is handled by the Bank itself.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "arch/config.hpp"
#include "arch/topology.hpp"
#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "sim/resource.hpp"
#include "sim/types.hpp"

namespace colibri::arch {

using sim::Cycle;
using sim::Engine;

/// Per-distance-class traffic counters (for the energy model).
struct NetworkStats {
  std::array<std::uint64_t, 3> messagesByDistance{};  // indexed by Distance
  std::uint64_t totalMessages = 0;
  std::uint64_t totalQueueingDelay = 0;

  void reset() {
    messagesByDistance = {};
    totalMessages = 0;
    totalQueueingDelay = 0;
  }
};

class Network {
 public:
  Network(Engine& engine, const SystemConfig& cfg);

  /// Deliver `onArrive` at the bank after the request-path latency from
  /// core `c` to bank `b` (including link queueing). FIFO per (c,b).
  /// `holdSlots` >= 1 is the number of consecutive slots the message holds
  /// on each shared stage: >1 models backpressure from a backlogged
  /// destination (finite switch buffers, head-of-line blocking).
  void coreToBank(CoreId c, BankId b, sim::InlineEvent onArrive,
                  std::uint32_t holdSlots = 1);

  /// Deliver `onArrive` at the core after the response-path latency from
  /// bank `b` to core `c` (pure latency, FIFO per (b,c)).
  void bankToCore(BankId b, CoreId c, sim::InlineEvent onArrive);

  /// One-way latency (without queueing) for a distance class.
  [[nodiscard]] Cycle baseLatency(Distance d) const;

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  void resetStats();

  [[nodiscard]] const Topology& topology() const { return topo_; }

  /// Total queueing delay currently accumulated on group links (congestion
  /// indicator used by interference analyses).
  [[nodiscard]] std::uint64_t linkQueueingDelay() const;

 private:
  /// Claim link resources for a request departing at `at`; returns the
  /// cycle the message clears the contended stage.
  Cycle acquireRequestPath(GroupId srcGroup, GroupId dstGroup, TileId dstTile,
                           Distance d, Cycle at, std::uint32_t holdSlots);

  /// Clamp `at` against the pair's last delivery time and schedule.
  void deliver(Cycle& lastDelivery, Cycle at, sim::InlineEvent fn);

  Engine& engine_;
  Topology topo_;
  SystemConfig cfg_;
  std::vector<sim::ThroughputResource> localRouters_;  // one per group
  std::vector<sim::ThroughputResource> groupLinks_;    // numGroups^2, directed
  std::vector<sim::ThroughputResource> tileIngress_;   // one per tile
  // FIFO clamps: last scheduled delivery per directed endpoint pair, flat
  // direct-indexed (row = source id).
  std::vector<Cycle> lastCoreToBank_;  // [c * numBanks + b]
  std::vector<Cycle> lastBankToCore_;  // [b * numCores + c]
  NetworkStats stats_;
};

}  // namespace colibri::arch
