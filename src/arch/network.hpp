// Hierarchical interconnect model.
//
// Messages between cores and banks take a latency determined by the
// distance class (local tile / same group / remote group) plus queueing
// delay on shared resources:
//   - each group's local router (intra-group, inter-tile traffic),
//   - each directed group-to-group link (remote traffic).
// Local-tile traffic bypasses both (dedicated single-cycle paths).
//
// Delivery is FIFO per (source endpoint, destination endpoint) pair. This
// is guaranteed structurally (fixed latency + FIFO resources) and enforced
// with a per-pair clamp, because Colibri's correctness argument relies on
// ordered memory transactions (Section IV-A): an SCwait and the
// WakeUpRequest dispatched right behind it must not be reordered.
// The clamp is two flat direct-indexed arrays (core->bank and bank->core),
// sized numCores()*numBanks() from the config — one indexed load per
// message instead of a hash probe, and no packed-key collisions.
//
// Only the request direction contends for link bandwidth; responses use
// dedicated return paths (as in MemPool's full-duplex interconnect) with
// pure latency. Bank-port serialization is handled by the Bank itself.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "arch/config.hpp"
#include "arch/topology.hpp"
#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "sim/resource.hpp"
#include "sim/types.hpp"

namespace colibri::arch {

using sim::Cycle;
using sim::Engine;

/// Per-distance-class traffic counters (for the energy model).
struct NetworkStats {
  std::array<std::uint64_t, 3> messagesByDistance{};  // indexed by Distance
  std::uint64_t totalMessages = 0;
  std::uint64_t totalQueueingDelay = 0;

  void reset() {
    messagesByDistance = {};
    totalMessages = 0;
    totalQueueingDelay = 0;
  }
};

class Network {
 public:
  Network(Engine& engine, const SystemConfig& cfg);

  /// Route a request departing core `c` at cycle `at` towards bank `b`:
  /// acquires the shared stages (link queueing), applies the per-pair FIFO
  /// clamp, and counts stats. Returns the delivery cycle — the caller
  /// schedules the arrival event itself (the parallel engine may defer it
  /// to another shard). Calls per (c,b) pair must be in send order.
  /// `holdSlots` >= 1 is the number of consecutive slots the message holds
  /// on each shared stage: >1 models backpressure from a backlogged
  /// destination (finite switch buffers, head-of-line blocking).
  Cycle routeRequest(CoreId c, BankId b, Cycle at, std::uint32_t holdSlots = 1);

  /// Route a response departing bank `b` at cycle `at` towards core `c`:
  /// pure latency plus the per-pair FIFO clamp, no shared stages. Returns
  /// the delivery cycle.
  Cycle routeResponse(BankId b, CoreId c, Cycle at);

  /// Convenience wrappers over route*: schedule `onArrive` on the engine
  /// at the computed delivery cycle. (Unit tests drive the network this
  /// way; System schedules through the parallel dispatcher instead.)
  void coreToBank(CoreId c, BankId b, sim::InlineEvent onArrive,
                  std::uint32_t holdSlots = 1);
  void bankToCore(BankId b, CoreId c, sim::InlineEvent onArrive);

  /// One-way latency (without queueing) for a distance class.
  [[nodiscard]] Cycle baseLatency(Distance d) const;

  /// Aggregated traffic counters. In parallel mode the counts land in
  /// per-shard buckets (worker windows) plus a main bucket (serial phases
  /// and merges); the sum is exactly the sequential engine's counters
  /// because every message increments exactly one bucket.
  [[nodiscard]] NetworkStats stats() const;
  void resetStats();

  /// Allocate per-shard stats buckets (parallel mode). Worker-window
  /// traffic then counts into the executing shard's bucket.
  void enableShardStats(std::uint32_t numShards);

  [[nodiscard]] const Topology& topology() const { return topo_; }

  /// Total queueing delay currently accumulated on group links (congestion
  /// indicator used by interference analyses).
  [[nodiscard]] std::uint64_t linkQueueingDelay() const;

 private:
  /// Claim link resources for a request departing at `at`; returns the
  /// cycle the message clears the contended stage. Queueing delay counts
  /// into `st`.
  Cycle acquireRequestPath(GroupId srcGroup, GroupId dstGroup, TileId dstTile,
                           Distance d, Cycle at, std::uint32_t holdSlots,
                           NetworkStats& st);

  /// The stats bucket for the calling thread: the executing shard's bucket
  /// inside a worker window, the main bucket otherwise.
  [[nodiscard]] NetworkStats& currentStats();

  Engine& engine_;
  Topology topo_;
  SystemConfig cfg_;
  std::vector<sim::ThroughputResource> localRouters_;  // one per group
  std::vector<sim::ThroughputResource> groupLinks_;    // numGroups^2, directed
  std::vector<sim::ThroughputResource> tileIngress_;   // one per tile
  // FIFO clamps: last scheduled delivery per directed endpoint pair, flat
  // direct-indexed (row = source id).
  std::vector<Cycle> lastCoreToBank_;  // [c * numBanks + b]
  std::vector<Cycle> lastBankToCore_;  // [b * numCores + c]
  NetworkStats stats_;
  std::vector<NetworkStats> shardStats_;  // parallel mode, one per shard
};

}  // namespace colibri::arch
