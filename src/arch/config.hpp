// System configuration: geometry, latencies, bandwidths, adapter choice.
//
// Defaults model the paper's evaluation platform, MemPool [5]:
// 256 Snitch-like cores in 64 tiles of 4 cores, 4 groups of 16 tiles,
// 1024 SPM banks (16 per tile, word-interleaved), 1 MiB of L1 overall,
// single-cycle local bank access and a hierarchical interconnect.
#pragma once

#include <cstdint>
#include <string>

#include "fault/fault.hpp"
#include "sim/check.hpp"
#include "sim/types.hpp"

namespace colibri::obs {
class Recorder;
}

namespace colibri::arch {

/// Which atomic adapter sits in front of every bank.
enum class AdapterKind : std::uint8_t {
  kAmoOnly,     ///< AMO unit only (LR/SC and waits unsupported).
  kLrscSingle,  ///< MemPool-style: one reservation slot per bank [5].
  kLrscTable,   ///< ATUN-style: one reservation per core per bank [11].
  kLrscWait,    ///< LRSCwait_q: in-order reservation queue of capacity q.
  kColibri,     ///< Colibri: distributed queue (head/tail + Qnodes).
};

[[nodiscard]] std::string toString(AdapterKind k);

struct SystemConfig {
  // --- Geometry (MemPool defaults) -------------------------------------
  std::uint32_t numCores = 256;
  std::uint32_t coresPerTile = 4;
  std::uint32_t tilesPerGroup = 16;
  std::uint32_t banksPerTile = 16;
  std::uint32_t wordsPerBank = 256;  ///< 1 MiB / 4 B / 1024 banks.

  // --- Interconnect one-way latencies (cycles) --------------------------
  // Chosen to match MemPool's reported round trips: local bank ~2-3 cy,
  // same-group remote tile ~5-7 cy, remote group ~9-11 cy.
  std::uint32_t latLocalTile = 1;
  std::uint32_t latSameGroup = 3;
  std::uint32_t latRemoteGroup = 5;

  // --- Bandwidth limits --------------------------------------------------
  std::uint32_t bankPortsPerCycle = 1;  ///< requests a bank accepts per cycle
  /// Requests per cycle on each directed group-to-group link (aggregate of
  /// the per-tile remote ports in MemPool).
  std::uint32_t groupLinkBandwidth = 16;
  /// Requests per cycle through a group's local (intra-group, inter-tile)
  /// interconnect.
  std::uint32_t localGroupBandwidth = 32;
  /// Remote requests per cycle a tile's ingress crossbar port accepts
  /// (shared by the tile's 16 banks — a hot bank's backlog starves its
  /// siblings through this stage).
  std::uint32_t tileIngressBandwidth = 4;
  /// Backpressure proxy: a request towards a bank whose port is backlogged
  /// holds its router/link/ingress slots for up to this many extra cycles
  /// (finite switch buffering causes head-of-line blocking in the real
  /// fabric — the mechanism behind Fig. 5's worker slowdown). 0 disables it.
  std::uint32_t linkHoldMax = 8;

  // --- Core timing ---------------------------------------------------------
  /// Minimum cycles between consecutive issues from one core (models the
  /// single-issue pipeline; loop/branch overhead is added by workloads).
  std::uint32_t issueInterval = 1;

  // --- Adapter ------------------------------------------------------------
  AdapterKind adapter = AdapterKind::kColibri;
  /// LRSCwait_q: reservation-queue capacity per bank. Set to numCores for
  /// LRSCwait_ideal.
  std::uint32_t lrscWaitQueueCapacity = 8;
  /// Colibri: number of head/tail queue slots per memory controller
  /// ("addresses" in Table I).
  std::uint32_t colibriQueuesPerController = 4;

  // --- Engine ---------------------------------------------------------------
  /// Worker threads for the deterministic parallel engine. 1 (default)
  /// runs the classic sequential engine; N > 1 partitions the topology
  /// groups across min(N, numGroups) threads with conservative-lookahead
  /// windows. Results are bit-identical for every value (see
  /// docs/ARCHITECTURE.md), so this only trades wall-clock time.
  std::uint32_t engineThreads = 1;

  // --- Misc ----------------------------------------------------------------
  std::uint64_t seed = 0xC011B21;

  // --- Fault injection ------------------------------------------------------
  /// Deterministic fault-injection plan (disabled by default: every
  /// probability zero). When enabled the System builds a FaultPlan whose
  /// decisions are pure hashes of (fault seed, site, entities, cycle) —
  /// bit-identical across reruns and engine-thread counts. A zero
  /// `fault.seed` derives one from `seed`, so sweep reps explore distinct
  /// fault schedules unless the seed is pinned explicitly.
  fault::FaultConfig fault;

  /// Watchdog: if no core retires a productive operation (see
  /// CoreHot::lastProductive) for this many cycles while tasks are still
  /// pending, the run stops with a structured blame report. 0 disables.
  /// The default is far beyond any healthy workload's longest quiet gap
  /// but small enough to bound hang diagnosis time.
  sim::Cycle watchdogCycles = 250'000;

  // --- Observability --------------------------------------------------------
  /// Optional recorder the System attaches to during construction (metric
  /// registry + span tracer). Null (the default) keeps every hook compiled
  /// to a single untaken branch. Not part of the simulated configuration:
  /// never serialized, never hashed, and attaching one must not change any
  /// simulated outcome.
  obs::Recorder* recorder = nullptr;

  // --- Derived -------------------------------------------------------------
  [[nodiscard]] std::uint32_t numTiles() const {
    return numCores / coresPerTile;
  }
  [[nodiscard]] std::uint32_t numGroups() const {
    return numTiles() / tilesPerGroup;
  }
  [[nodiscard]] std::uint32_t numBanks() const {
    return numTiles() * banksPerTile;
  }
  [[nodiscard]] std::uint64_t numWords() const {
    return static_cast<std::uint64_t>(numBanks()) * wordsPerBank;
  }

  /// Conservative window length for the deterministic parallel engine: the
  /// minimum latency of any message class that crosses a topology-group
  /// shard boundary. Shards are groups, and the only traffic between two
  /// groups is remote-group traffic (requests and responses alike pay
  /// latRemoteGroup before touching the other shard; the injection stages a
  /// request holds on the way out add delay but never subtract). Intra-
  /// shard classes — local-tile and same-group — execute inline within a
  /// window and therefore never bound it, even in the asymmetric case
  /// latSameGroup > latRemoteGroup. System::injectRequest asserts the
  /// premise: every deferred (cross-shard) send is kRemoteGroup distance.
  [[nodiscard]] std::uint32_t crossShardLookahead() const {
    return latRemoteGroup;
  }

  void validate() const {
    COLIBRI_CHECK(numCores >= 1 && coresPerTile >= 1);
    COLIBRI_CHECK(numCores % coresPerTile == 0);
    COLIBRI_CHECK(tilesPerGroup >= 1 && numTiles() % tilesPerGroup == 0);
    COLIBRI_CHECK(banksPerTile >= 1 && wordsPerBank >= 1);
    COLIBRI_CHECK(issueInterval >= 1);
    COLIBRI_CHECK(bankPortsPerCycle >= 1);
    COLIBRI_CHECK(groupLinkBandwidth >= 1 && localGroupBandwidth >= 1);
    COLIBRI_CHECK(tileIngressBandwidth >= 1);
    COLIBRI_CHECK(lrscWaitQueueCapacity >= 1);
    COLIBRI_CHECK(colibriQueuesPerController >= 1);
    COLIBRI_CHECK(engineThreads >= 1);
    fault.validate();
  }

  /// A small 16-core configuration for fast unit tests (same structure:
  /// 4 tiles of 4 cores, 2 groups of 2 tiles, 16 banks).
  static SystemConfig smallTest() {
    SystemConfig c;
    c.numCores = 16;
    c.coresPerTile = 4;
    c.tilesPerGroup = 2;
    c.banksPerTile = 4;
    c.wordsPerBank = 64;
    return c;
  }

  /// The paper's full 256-core MemPool configuration.
  static SystemConfig memPool() { return SystemConfig{}; }
};

}  // namespace colibri::arch
