#include "arch/network.hpp"

#include <type_traits>
#include <utility>

#include "fault/fault.hpp"
#include "sim/parallel.hpp"

namespace colibri::arch {

// The network only relays events built at the injection sites (core.cpp,
// bank.cpp, system.cpp), where their closures are asserted to fit inline;
// relaying must itself stay allocation-free, i.e. moves never allocate.
static_assert(std::is_nothrow_move_constructible_v<sim::InlineEvent> &&
              std::is_nothrow_move_assignable_v<sim::InlineEvent>);

namespace {

/// Largest pair count for which debug builds afford the dense cross-check
/// matrices (2 x 32 MiB at the cap; the 4k-core geometry's 67M pairs are
/// exactly what the sparse layout exists to avoid allocating).
constexpr std::size_t kDenseCheckMaxPairs = std::size_t{4} << 20;

constexpr std::size_t kDistanceClasses = 3;

}  // namespace

Network::Network(Engine& engine, const SystemConfig& cfg)
    : engine_(engine), topo_(cfg), cfg_(cfg) {
  const std::uint32_t groups = cfg.numGroups();
  localRouters_.reserve(groups);
  groupEgress_.reserve(groups);
  for (std::uint32_t g = 0; g < groups; ++g) {
    localRouters_.emplace_back(cfg.localGroupBandwidth);
    groupEgress_.emplace_back(cfg.localGroupBandwidth);
  }
  groupLinks_.reserve(static_cast<std::size_t>(groups) * groups);
  for (std::uint32_t i = 0; i < groups * groups; ++i) {
    groupLinks_.emplace_back(cfg.groupLinkBandwidth);
  }
  tileIngress_.reserve(cfg.numTiles());
  for (std::uint32_t t = 0; t < cfg.numTiles(); ++t) {
    tileIngress_.emplace_back(cfg.tileIngressBandwidth);
  }
  lastRequestToBank_.assign(cfg.numBanks() * kDistanceClasses, 0);
  lastResponseFromBank_.assign(cfg.numBanks() * kDistanceClasses, 0);
#ifndef NDEBUG
  const std::size_t pairs =
      static_cast<std::size_t>(cfg.numCores) * cfg.numBanks();
  if (pairs <= kDenseCheckMaxPairs) {
    denseCoreToBank_.assign(pairs, 0);
    denseBankToCore_.assign(pairs, 0);
  }
#endif
}

std::size_t Network::clampBytes() const {
  return (lastRequestToBank_.capacity() + lastResponseFromBank_.capacity()) *
         sizeof(Cycle);
}

std::size_t Network::denseClampBytes(const SystemConfig& cfg) {
  return 2 * static_cast<std::size_t>(cfg.numCores) * cfg.numBanks() *
         sizeof(Cycle);
}

Cycle Network::baseLatency(Distance d) const {
  switch (d) {
    case Distance::kLocalTile:
      return cfg_.latLocalTile;
    case Distance::kSameGroup:
      return cfg_.latSameGroup;
    case Distance::kRemoteGroup:
      return cfg_.latRemoteGroup;
  }
  return cfg_.latRemoteGroup;
}

NetworkStats& Network::currentStats() {
  const int shard = sim::ParallelDispatch::currentWindowShard();
  return shard >= 0 ? shardStats_[static_cast<std::size_t>(shard)] : stats_;
}

Cycle Network::acquireRequestPath(GroupId srcGroup, GroupId dstGroup,
                                  TileId dstTile, Distance d, Cycle at,
                                  std::uint32_t holdSlots, NetworkStats& st) {
  // A message with holdSlots > 1 occupies each shared stage for several
  // consecutive slots: the backpressure proxy for requests heading into a
  // backlogged bank (their flits sit in switch buffers, blocking others).
  switch (d) {
    case Distance::kLocalTile:
      return at;  // dedicated path, no shared stage
    case Distance::kSameGroup: {
      // The group's local (inter-tile) crossbar — the only shared stage on
      // the intra-group path, touched by no other group's traffic.
      const Cycle granted = localRouters_[srcGroup].acquire(at, holdSlots);
      st.totalQueueingDelay += granted - at;
      return granted;
    }
    case Distance::kRemoteGroup: {
      // Source-group egress port, directed inter-group link, destination
      // tile's remote ingress — all touched only by remote traffic.
      const Cycle egress = groupEgress_[srcGroup].acquire(at, holdSlots);
      const std::size_t link =
          static_cast<std::size_t>(srcGroup) * cfg_.numGroups() + dstGroup;
      const Cycle linkCleared = groupLinks_[link].acquire(egress, holdSlots);
      const Cycle granted =
          tileIngress_[dstTile].acquire(linkCleared, holdSlots);
      st.totalQueueingDelay += granted - at;
      return granted;
    }
  }
  return at;
}

Cycle Network::routeRequest(CoreId c, BankId b, Cycle at,
                            std::uint32_t holdSlots) {
  COLIBRI_CHECK_MSG(c < cfg_.numCores && b < cfg_.numBanks(),
                    "routeRequest with out-of-range endpoint: core "
                        << c << " bank " << b);
  const TileId srcTile = topo_.tileOfCore(c);
  const TileId dstTile = topo_.tileOfBank(b);
  const Distance d = topo_.distance(srcTile, dstTile);
  NetworkStats& st = currentStats();
  st.messagesByDistance[static_cast<std::size_t>(d)]++;
  st.totalMessages++;

  const Cycle cleared = acquireRequestPath(
      topo_.groupOfTile(srcTile), topo_.groupOfTile(dstTile), dstTile, d, at,
      holdSlots == 0 ? 1 : holdSlots, st);
  // FIFO clamp: no message of a class may be delivered into this bank
  // earlier than its predecessor of the same class. Per-pair FIFO follows
  // (a pair is a subsequence of its (bank, class) stream), and the clamp
  // provably never binds — every message of the stream traverses the same
  // stage chain, stage grants never decrease in acquire order, and the
  // class's base latency is constant — so it is enforced as a hard check
  // rather than silently rewriting the delivery cycle.
  Cycle arrive = cleared + baseLatency(d);
  Cycle& last = lastRequestToBank_[static_cast<std::size_t>(b) *
                                       kDistanceClasses +
                                   static_cast<std::size_t>(d)];
  if (fault_ != nullptr && fault_->netDelayActive()) {
    // Injected delivery delay: only ever adds cycles (the parallel
    // engine's cross-shard lookahead stays valid), and the FIFO invariant
    // becomes a binding clamp — an artificially delayed message holds up
    // the stream behind it.
    arrive += fault_->netDelay(c, b, /*response=*/false, at);
    if (arrive < last) {
      arrive = last;
    }
  } else {
    COLIBRI_CHECK_MSG(arrive >= last,
                      "request FIFO order violated into bank "
                          << b << ": arrive " << arrive << " < last " << last);
  }
  last = arrive;
#ifndef NDEBUG
  if (!denseCoreToBank_.empty()) {
    // Exhaustive cross-check against the retired dense per-pair clamp: the
    // sparse layout must deliver exactly what the dense one would have.
    Cycle& pairLast =
        denseCoreToBank_[static_cast<std::size_t>(c) * cfg_.numBanks() + b];
    const Cycle denseArrive = arrive < pairLast ? pairLast : arrive;
    COLIBRI_CHECK_MSG(denseArrive == arrive,
                      "sparse clamp diverged from dense per-pair clamp: core "
                          << c << " -> bank " << b << " arrive " << arrive
                          << " dense " << denseArrive);
    pairLast = denseArrive;
  }
#endif
  return arrive;
}

Cycle Network::routeResponse(BankId b, CoreId c, Cycle at) {
  COLIBRI_CHECK_MSG(c < cfg_.numCores && b < cfg_.numBanks(),
                    "routeResponse with out-of-range endpoint: bank "
                        << b << " core " << c);
  const TileId srcTile = topo_.tileOfBank(b);
  const TileId dstTile = topo_.tileOfCore(c);
  const Distance d = topo_.distance(srcTile, dstTile);
  NetworkStats& st = currentStats();
  st.messagesByDistance[static_cast<std::size_t>(d)]++;
  st.totalMessages++;

  // Responses are pure latency, so per-(bank, class) arrivals are monotone
  // in send order and the clamp never binds (same argument as requests,
  // with an empty stage chain).
  Cycle arrive = at + baseLatency(d);
  Cycle& last = lastResponseFromBank_[static_cast<std::size_t>(b) *
                                          kDistanceClasses +
                                      static_cast<std::size_t>(d)];
  if (fault_ != nullptr && fault_->netDelayActive()) {
    arrive += fault_->netDelay(c, b, /*response=*/true, at);
    if (arrive < last) {
      arrive = last;
    }
  } else {
    COLIBRI_CHECK_MSG(arrive >= last,
                      "response FIFO order violated from bank "
                          << b << ": arrive " << arrive << " < last " << last);
  }
  last = arrive;
#ifndef NDEBUG
  if (!denseBankToCore_.empty()) {
    Cycle& pairLast =
        denseBankToCore_[static_cast<std::size_t>(b) * cfg_.numCores + c];
    const Cycle denseArrive = arrive < pairLast ? pairLast : arrive;
    COLIBRI_CHECK_MSG(denseArrive == arrive,
                      "sparse clamp diverged from dense per-pair clamp: bank "
                          << b << " -> core " << c << " arrive " << arrive
                          << " dense " << denseArrive);
    pairLast = denseArrive;
  }
#endif
  return arrive;
}

void Network::coreToBank(CoreId c, BankId b, sim::InlineEvent onArrive,
                         std::uint32_t holdSlots) {
  engine_.scheduleAt(routeRequest(c, b, engine_.now(), holdSlots),
                     std::move(onArrive));
}

void Network::bankToCore(BankId b, CoreId c, sim::InlineEvent onArrive) {
  engine_.scheduleAt(routeResponse(b, c, engine_.now()), std::move(onArrive));
}

NetworkStats Network::stats() const {
  NetworkStats total = stats_;
  for (const NetworkStats& s : shardStats_) {
    for (std::size_t d = 0; d < total.messagesByDistance.size(); ++d) {
      total.messagesByDistance[d] += s.messagesByDistance[d];
    }
    total.totalMessages += s.totalMessages;
    total.totalQueueingDelay += s.totalQueueingDelay;
  }
  return total;
}

void Network::enableShardStats(std::uint32_t numShards) {
  shardStats_.assign(numShards, NetworkStats{});
}

void Network::resetStats() {
  stats_.reset();
  for (NetworkStats& s : shardStats_) {
    s.reset();
  }
  for (auto& r : localRouters_) {
    r.resetStats();
  }
  for (auto& r : groupEgress_) {
    r.resetStats();
  }
  for (auto& r : groupLinks_) {
    r.resetStats();
  }
  for (auto& r : tileIngress_) {
    r.resetStats();
  }
}

std::uint64_t Network::linkQueueingDelay() const {
  std::uint64_t total = 0;
  for (const auto& r : localRouters_) {
    total += r.totalQueueingDelay();
  }
  for (const auto& r : groupEgress_) {
    total += r.totalQueueingDelay();
  }
  for (const auto& r : groupLinks_) {
    total += r.totalQueueingDelay();
  }
  for (const auto& r : tileIngress_) {
    total += r.totalQueueingDelay();
  }
  return total;
}

}  // namespace colibri::arch
