#include "arch/network.hpp"

#include <type_traits>
#include <utility>

#include "sim/parallel.hpp"

namespace colibri::arch {

// The network only relays events built at the injection sites (core.cpp,
// bank.cpp, system.cpp), where their closures are asserted to fit inline;
// relaying must itself stay allocation-free, i.e. moves never allocate.
static_assert(std::is_nothrow_move_constructible_v<sim::InlineEvent> &&
              std::is_nothrow_move_assignable_v<sim::InlineEvent>);

Network::Network(Engine& engine, const SystemConfig& cfg)
    : engine_(engine), topo_(cfg), cfg_(cfg) {
  const std::uint32_t groups = cfg.numGroups();
  localRouters_.reserve(groups);
  for (std::uint32_t g = 0; g < groups; ++g) {
    localRouters_.emplace_back(cfg.localGroupBandwidth);
  }
  groupLinks_.reserve(static_cast<std::size_t>(groups) * groups);
  for (std::uint32_t i = 0; i < groups * groups; ++i) {
    groupLinks_.emplace_back(cfg.groupLinkBandwidth);
  }
  tileIngress_.reserve(cfg.numTiles());
  for (std::uint32_t t = 0; t < cfg.numTiles(); ++t) {
    tileIngress_.emplace_back(cfg.tileIngressBandwidth);
  }
  const std::size_t pairs =
      static_cast<std::size_t>(cfg.numCores) * cfg.numBanks();
  lastCoreToBank_.assign(pairs, 0);
  lastBankToCore_.assign(pairs, 0);
}

Cycle Network::baseLatency(Distance d) const {
  switch (d) {
    case Distance::kLocalTile:
      return cfg_.latLocalTile;
    case Distance::kSameGroup:
      return cfg_.latSameGroup;
    case Distance::kRemoteGroup:
      return cfg_.latRemoteGroup;
  }
  return cfg_.latRemoteGroup;
}

NetworkStats& Network::currentStats() {
  const int shard = sim::ParallelDispatch::currentWindowShard();
  return shard >= 0 ? shardStats_[static_cast<std::size_t>(shard)] : stats_;
}

Cycle Network::acquireRequestPath(GroupId srcGroup, GroupId dstGroup,
                                  TileId dstTile, Distance d, Cycle at,
                                  std::uint32_t holdSlots, NetworkStats& st) {
  // A message with holdSlots > 1 occupies each shared stage for several
  // consecutive slots: the backpressure proxy for requests heading into a
  // backlogged bank (their flits sit in switch buffers, blocking others).
  switch (d) {
    case Distance::kLocalTile:
      return at;  // dedicated path, no shared stage
    case Distance::kSameGroup: {
      // Group router, then the destination tile's ingress port (shared by
      // all of that tile's banks). Stages are FIFO, so ordering holds.
      const Cycle router = localRouters_[srcGroup].acquire(at, holdSlots);
      const Cycle granted = tileIngress_[dstTile].acquire(router, holdSlots);
      st.totalQueueingDelay += granted - at;
      return granted;
    }
    case Distance::kRemoteGroup: {
      // Router, directed inter-group link, destination tile ingress.
      const Cycle router = localRouters_[srcGroup].acquire(at, holdSlots);
      const std::size_t link =
          static_cast<std::size_t>(srcGroup) * cfg_.numGroups() + dstGroup;
      const Cycle linkCleared = groupLinks_[link].acquire(router, holdSlots);
      const Cycle granted =
          tileIngress_[dstTile].acquire(linkCleared, holdSlots);
      st.totalQueueingDelay += granted - at;
      return granted;
    }
  }
  return at;
}

Cycle Network::routeRequest(CoreId c, BankId b, Cycle at,
                            std::uint32_t holdSlots) {
  COLIBRI_CHECK_MSG(c < cfg_.numCores && b < cfg_.numBanks(),
                    "routeRequest with out-of-range endpoint: core "
                        << c << " bank " << b);
  const TileId srcTile = topo_.tileOfCore(c);
  const TileId dstTile = topo_.tileOfBank(b);
  const Distance d = topo_.distance(srcTile, dstTile);
  NetworkStats& st = currentStats();
  st.messagesByDistance[static_cast<std::size_t>(d)]++;
  st.totalMessages++;

  const Cycle cleared = acquireRequestPath(
      topo_.groupOfTile(srcTile), topo_.groupOfTile(dstTile), dstTile, d, at,
      holdSlots == 0 ? 1 : holdSlots, st);
  // FIFO clamp: never deliver earlier than a previously sent message on
  // the same (src, dst) pair.
  Cycle arrive = cleared + baseLatency(d);
  Cycle& last =
      lastCoreToBank_[static_cast<std::size_t>(c) * cfg_.numBanks() + b];
  if (arrive < last) {
    arrive = last;
  }
  last = arrive;
  return arrive;
}

Cycle Network::routeResponse(BankId b, CoreId c, Cycle at) {
  COLIBRI_CHECK_MSG(c < cfg_.numCores && b < cfg_.numBanks(),
                    "routeResponse with out-of-range endpoint: bank "
                        << b << " core " << c);
  const TileId srcTile = topo_.tileOfBank(b);
  const TileId dstTile = topo_.tileOfCore(c);
  const Distance d = topo_.distance(srcTile, dstTile);
  NetworkStats& st = currentStats();
  st.messagesByDistance[static_cast<std::size_t>(d)]++;
  st.totalMessages++;

  Cycle arrive = at + baseLatency(d);
  Cycle& last =
      lastBankToCore_[static_cast<std::size_t>(b) * cfg_.numCores + c];
  if (arrive < last) {
    arrive = last;
  }
  last = arrive;
  return arrive;
}

void Network::coreToBank(CoreId c, BankId b, sim::InlineEvent onArrive,
                         std::uint32_t holdSlots) {
  engine_.scheduleAt(routeRequest(c, b, engine_.now(), holdSlots),
                     std::move(onArrive));
}

void Network::bankToCore(BankId b, CoreId c, sim::InlineEvent onArrive) {
  engine_.scheduleAt(routeResponse(b, c, engine_.now()), std::move(onArrive));
}

NetworkStats Network::stats() const {
  NetworkStats total = stats_;
  for (const NetworkStats& s : shardStats_) {
    for (std::size_t d = 0; d < total.messagesByDistance.size(); ++d) {
      total.messagesByDistance[d] += s.messagesByDistance[d];
    }
    total.totalMessages += s.totalMessages;
    total.totalQueueingDelay += s.totalQueueingDelay;
  }
  return total;
}

void Network::enableShardStats(std::uint32_t numShards) {
  shardStats_.assign(numShards, NetworkStats{});
}

void Network::resetStats() {
  stats_.reset();
  for (NetworkStats& s : shardStats_) {
    s.reset();
  }
  for (auto& r : localRouters_) {
    r.resetStats();
  }
  for (auto& r : groupLinks_) {
    r.resetStats();
  }
  for (auto& r : tileIngress_) {
    r.resetStats();
  }
}

std::uint64_t Network::linkQueueingDelay() const {
  std::uint64_t total = 0;
  for (const auto& r : localRouters_) {
    total += r.totalQueueingDelay();
  }
  for (const auto& r : groupLinks_) {
    total += r.totalQueueingDelay();
  }
  for (const auto& r : tileIngress_) {
    total += r.totalQueueingDelay();
  }
  return total;
}

}  // namespace colibri::arch
