#include "arch/network.hpp"

#include <utility>

namespace colibri::arch {

namespace {
// Pair keys for the FIFO clamp. Core and bank id spaces overlap, so tag the
// direction in the top bits.
constexpr std::uint64_t kDirCoreToBank = 0;
constexpr std::uint64_t kDirBankToCore = 1;

std::uint64_t pairKey(std::uint64_t dir, std::uint64_t src,
                      std::uint64_t dst) {
  return (dir << 62) | (src << 31) | dst;
}
}  // namespace

Network::Network(Engine& engine, const SystemConfig& cfg)
    : engine_(engine), topo_(cfg), cfg_(cfg) {
  const std::uint32_t groups = cfg.numGroups();
  localRouters_.reserve(groups);
  for (std::uint32_t g = 0; g < groups; ++g) {
    localRouters_.emplace_back(cfg.localGroupBandwidth);
  }
  groupLinks_.reserve(static_cast<std::size_t>(groups) * groups);
  for (std::uint32_t i = 0; i < groups * groups; ++i) {
    groupLinks_.emplace_back(cfg.groupLinkBandwidth);
  }
  tileIngress_.reserve(cfg.numTiles());
  for (std::uint32_t t = 0; t < cfg.numTiles(); ++t) {
    tileIngress_.emplace_back(cfg.tileIngressBandwidth);
  }
}

Cycle Network::baseLatency(Distance d) const {
  switch (d) {
    case Distance::kLocalTile:
      return cfg_.latLocalTile;
    case Distance::kSameGroup:
      return cfg_.latSameGroup;
    case Distance::kRemoteGroup:
      return cfg_.latRemoteGroup;
  }
  return cfg_.latRemoteGroup;
}

Cycle Network::acquireRequestPath(GroupId srcGroup, GroupId dstGroup,
                                  TileId dstTile, Distance d, Cycle at,
                                  std::uint32_t holdSlots) {
  // A message with holdSlots > 1 occupies each shared stage for several
  // consecutive slots: the backpressure proxy for requests heading into a
  // backlogged bank (their flits sit in switch buffers, blocking others).
  const auto occupy = [&](sim::ThroughputResource& r, Cycle t) {
    Cycle granted = r.acquire(t);
    for (std::uint32_t i = 1; i < holdSlots; ++i) {
      granted = r.acquire(granted);
    }
    return granted;
  };
  switch (d) {
    case Distance::kLocalTile:
      return at;  // dedicated path, no shared stage
    case Distance::kSameGroup: {
      // Group router, then the destination tile's ingress port (shared by
      // all of that tile's banks). Stages are FIFO, so ordering holds.
      const Cycle router = occupy(localRouters_[srcGroup], at);
      const Cycle granted = occupy(tileIngress_[dstTile], router);
      stats_.totalQueueingDelay += granted - at;
      return granted;
    }
    case Distance::kRemoteGroup: {
      // Router, directed inter-group link, destination tile ingress.
      const Cycle router = occupy(localRouters_[srcGroup], at);
      const std::size_t link =
          static_cast<std::size_t>(srcGroup) * cfg_.numGroups() + dstGroup;
      const Cycle linkCleared = occupy(groupLinks_[link], router);
      const Cycle granted = occupy(tileIngress_[dstTile], linkCleared);
      stats_.totalQueueingDelay += granted - at;
      return granted;
    }
  }
  return at;
}

void Network::deliver(std::uint64_t key, Cycle at, std::function<void()> fn) {
  // FIFO clamp: never deliver earlier than a previously sent message on the
  // same (src, dst) pair.
  auto [it, inserted] = lastDelivery_.try_emplace(key, at);
  if (!inserted) {
    if (at < it->second) {
      at = it->second;
    }
    it->second = at;
  }
  engine_.scheduleAt(at, std::move(fn));
}

void Network::coreToBank(CoreId c, BankId b, std::function<void()> onArrive,
                         std::uint32_t holdSlots) {
  const TileId srcTile = topo_.tileOfCore(c);
  const TileId dstTile = topo_.tileOfBank(b);
  const Distance d = topo_.distance(srcTile, dstTile);
  stats_.messagesByDistance[static_cast<std::size_t>(d)]++;
  stats_.totalMessages++;

  const Cycle cleared = acquireRequestPath(
      topo_.groupOfTile(srcTile), topo_.groupOfTile(dstTile), dstTile, d,
      engine_.now(), holdSlots == 0 ? 1 : holdSlots);
  deliver(pairKey(kDirCoreToBank, c, b), cleared + baseLatency(d),
          std::move(onArrive));
}

void Network::bankToCore(BankId b, CoreId c, std::function<void()> onArrive) {
  const TileId srcTile = topo_.tileOfBank(b);
  const TileId dstTile = topo_.tileOfCore(c);
  const Distance d = topo_.distance(srcTile, dstTile);
  stats_.messagesByDistance[static_cast<std::size_t>(d)]++;
  stats_.totalMessages++;

  deliver(pairKey(kDirBankToCore, b, c), engine_.now() + baseLatency(d),
          std::move(onArrive));
}

void Network::resetStats() {
  stats_.reset();
  for (auto& r : localRouters_) {
    r.resetStats();
  }
  for (auto& r : groupLinks_) {
    r.resetStats();
  }
  for (auto& r : tileIngress_) {
    r.resetStats();
  }
}

std::uint64_t Network::linkQueueingDelay() const {
  std::uint64_t total = 0;
  for (const auto& r : localRouters_) {
    total += r.totalQueueingDelay();
  }
  for (const auto& r : groupLinks_) {
    total += r.totalQueueingDelay();
  }
  for (const auto& r : tileIngress_) {
    total += r.totalQueueingDelay();
  }
  return total;
}

}  // namespace colibri::arch
