#include "exp/json.hpp"

#include <ostream>

#include "obs/recorder.hpp"
#include "report/json.hpp"
#include "sim/check.hpp"

namespace colibri::exp {

namespace {

void writeStats(report::JsonWriter& w, const char* name, const Stats& s) {
  w.key(name).beginObject();
  w.kv("mean", s.mean)
      .kv("stddev", s.stddev)
      .kv("min", s.min)
      .kv("max", s.max)
      .kv("n", static_cast<std::uint64_t>(s.n));
  w.endObject();
}

void writeConfig(report::JsonWriter& w, const arch::SystemConfig& cfg) {
  w.key("config").beginObject();
  w.kv("adapter", arch::toString(cfg.adapter))
      .kv("cores", cfg.numCores)
      .kv("coresPerTile", cfg.coresPerTile)
      .kv("tilesPerGroup", cfg.tilesPerGroup)
      .kv("banksPerTile", cfg.banksPerTile)
      .kv("wordsPerBank", cfg.wordsPerBank)
      .kv("waitCapacity", cfg.lrscWaitQueueCapacity)
      .kv("colibriQueues", cfg.colibriQueuesPerController);
  w.endObject();
}

void writeCounters(report::JsonWriter& w,
                   const workloads::SystemCounters& c) {
  w.key("counters").beginObject();
  w.kv("instructions", c.instructions)
      .kv("computeCycles", c.computeCycles)
      .kv("sleepCycles", c.sleepCycles)
      .kv("stallCycles", c.stallCycles)
      .kv("bankAccesses", c.bankAccesses)
      .kv("windowCycles", static_cast<std::uint64_t>(c.windowCycles))
      .kv("activeCores", c.activeCores);
  w.key("netMessages").beginArray();
  for (const auto m : c.netMessages) {
    w.value(m);
  }
  w.endArray();
  w.endObject();
}

void writeRep(report::JsonWriter& w, const RunResult& r,
              const JsonOptions& opts) {
  w.beginObject();
  w.kv("seed", r.seed)
      .kv("opsPerCycle", r.rate.opsPerCycle)
      .kv("opsInWindow", r.rate.opsInWindow)
      .kv("fairnessJain", r.rate.fairnessJain)
      .kv("perCoreMinRate", r.rate.perCoreMinRate)
      .kv("perCoreMaxRate", r.rate.perCoreMaxRate)
      .kv("verified", r.verified)
      .kv("tileAreaKge", r.tileAreaKge)
      .kv("energyPerOpPj", r.energyPerOpPj)
      .kv("averagePowerMw", r.averagePowerMw);
  if (r.opLatency.count > 0) {  // wgen kernels: per-op latency distribution
    w.key("opLatency").beginObject();
    w.kv("p50", r.opLatency.p50)
        .kv("p95", r.opLatency.p95)
        .kv("p99", r.opLatency.p99)
        .kv("mean", r.opLatency.mean)
        .kv("min", r.opLatency.min)
        .kv("max", r.opLatency.max)
        .kv("count", static_cast<std::uint64_t>(r.opLatency.count));
    w.endObject();
  }
  if (r.workload == "matmul" || r.workload == "interference") {
    w.kv("duration", static_cast<std::uint64_t>(r.duration))
        .kv("macs", r.macs);
  }
  if (r.workload == "interference") {
    w.kv("pollerUpdates", r.pollerUpdates);
  }
  if (r.workload == "prodcons") {
    w.kv("itemsConsumed", r.itemsConsumed)
        .kv("consumerSleepFraction", r.consumerSleepFraction)
        .kv("consumerRequestsPerItem", r.consumerRequestsPerItem);
  }
  if (r.workload == "hashtable") {
    w.kv("inserts", r.inserts).kv("lookups", r.lookups);
  }
  if (r.workload == "wsdeque") {
    w.kv("duration", static_cast<std::uint64_t>(r.duration))
        .kv("steals", r.steals)
        .kv("ownerPops", r.ownerPops);
  }
  if (r.workload == "lockfair") {
    w.key("acqSpread").beginObject();
    w.kv("min", r.acqSpread.min)
        .kv("max", r.acqSpread.max)
        .kv("mean", r.acqSpread.mean)
        .kv("p50", r.acqSpread.p50)
        .kv("p95", r.acqSpread.p95)
        .kv("p99", r.acqSpread.p99);
    w.endObject();
  }
  writeCounters(w, r.rate.counters);
  if (opts.faultBlock) {
    // Opt-in (--json-fault): deterministic, but absent by default so the
    // schema is unchanged for consumers that never asked for faults.
    w.key("fault").beginObject();
    w.kv("seed", r.faultSeed)
        .kv("netDelays", r.faultCounters.at(fault::Site::kNetDelay))
        .kv("scFails", r.faultCounters.at(fault::Site::kScFail))
        .kv("evictions", r.faultCounters.at(fault::Site::kEvict))
        .kv("stalls", r.faultCounters.at(fault::Site::kStall))
        .kv("injected", r.faultCounters.total());
    w.endObject();
  }
  if (opts.engineBlock) {
    // Opt-in (--json-engine): these values vary with --engine-threads.
    w.key("engine").beginObject();
    w.kv("windows", r.engineCounters.windows)
        .kv("barriersTaken", r.engineCounters.barriersTaken)
        .kv("barriersElided", r.engineCounters.barriersElided)
        .kv("deferredIntents", r.engineCounters.deferredIntents)
        .kv("idleShardSkips", r.engineCounters.idleShardSkips);
    w.endObject();
  }
  w.endObject();
}

}  // namespace

void writeJson(std::ostream& os, const std::vector<RunSpec>& specs,
               const std::vector<SweepResult>& results) {
  writeJson(os, specs, results, JsonOptions{});
}

void writeJson(std::ostream& os, const std::vector<RunSpec>& specs,
               const std::vector<SweepResult>& results,
               const JsonOptions& opts) {
  COLIBRI_CHECK(specs.size() == results.size());
  report::JsonWriter w(os);
  w.beginObject();
  // v2 = v1 plus the optional per-rep "opLatency" block (wgen kernels)
  // and the opt-in "engine" / "timeseries" extensions (JsonOptions).
  w.kv("schema", "colibri-exp-v2");
  w.key("runs").beginArray();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& spec = specs[i];
    const auto& res = results[i];
    w.beginObject();
    w.kv("label", spec.label)
        .kv("workload", workloadNameFor(spec))
        .kv("seed", spec.seed)
        .kv("repetitions",
            static_cast<std::uint64_t>(res.reps.size()))
        .kv("warmup", static_cast<std::uint64_t>(spec.window.warmup))
        .kv("measure", static_cast<std::uint64_t>(spec.window.measure));
    writeConfig(w, spec.config);
    w.key("reps").beginArray();
    for (const auto& rep : res.reps) {
      writeRep(w, rep, opts);
    }
    w.endArray();
    w.key("aggregate").beginObject();
    writeStats(w, "opsPerCycle", res.opsPerCycle);
    writeStats(w, "energyPerOpPj", res.energyPerOpPj);
    w.kv("allVerified", res.allVerified);
    w.endObject();
    w.endObject();
  }
  w.endArray();
  if (opts.recorder != nullptr && opts.recorder->sampledAnything()) {
    opts.recorder->writeTimeseriesBlock(w);
  }
  w.endObject();
  os << '\n';
}

}  // namespace colibri::exp
