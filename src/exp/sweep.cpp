#include "exp/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <thread>

namespace colibri::exp {

Stats Stats::of(const std::vector<double>& xs) {
  Stats s;
  s.n = xs.size();
  if (xs.empty()) {
    return s;
  }
  s.min = xs.front();
  s.max = xs.front();
  double sum = 0.0;
  for (const double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double sq = 0.0;
    for (const double x : xs) {
      sq += (x - s.mean) * (x - s.mean);
    }
    s.stddev = std::sqrt(sq / static_cast<double>(xs.size() - 1));
  }
  return s;
}

SweepRunner::SweepRunner(unsigned threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

void SweepRunner::dispatch(std::size_t jobs,
                           const std::function<void(std::size_t)>& body) {
  if (jobs == 0) {
    return;
  }
  std::vector<std::exception_ptr> errors(jobs);
  const auto runJob = [&](std::size_t i) {
    try {
      body(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, jobs));
  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs; ++i) {
      runJob(i);
    }
  } else {
    // Work stealing over a shared index: each worker claims the next
    // unstarted job, so long points don't serialize behind short ones.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < jobs;
             i = next.fetch_add(1)) {
          runJob(i);
        }
      });
    }
    for (auto& t : pool) {
      t.join();
    }
  }

  for (auto& e : errors) {
    if (e) {
      std::rethrow_exception(e);
    }
  }
}

std::vector<SweepResult> SweepRunner::run(const std::vector<RunSpec>& specs) {
  // Flatten (spec, rep) pairs so repetitions load-balance like any other
  // job; each writes into its pre-sized slot (order preservation).
  struct Job {
    std::size_t spec;
    std::uint32_t rep;
  };
  std::vector<Job> jobs;
  std::vector<SweepResult> results(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const std::uint32_t reps = std::max(1u, specs[s].repetitions);
    results[s].reps.resize(reps);
    for (std::uint32_t r = 0; r < reps; ++r) {
      jobs.push_back({s, r});
    }
  }

  dispatch(jobs.size(), [&](std::size_t i) {
    results[jobs[i].spec].reps[jobs[i].rep] =
        runOne(specs[jobs[i].spec], jobs[i].rep);
  });

  for (auto& res : results) {
    std::vector<double> rates;
    std::vector<double> energies;
    rates.reserve(res.reps.size());
    energies.reserve(res.reps.size());
    res.allVerified = true;
    for (const auto& rep : res.reps) {
      rates.push_back(rep.rate.opsPerCycle);
      energies.push_back(rep.energyPerOpPj);
      res.allVerified = res.allVerified && rep.verified;
    }
    res.opsPerCycle = Stats::of(rates);
    res.energyPerOpPj = Stats::of(energies);
  }
  return results;
}

}  // namespace colibri::exp
