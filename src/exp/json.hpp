// JSON serialization of sweep results (report::JsonWriter does the
// syntax; this file owns the schema).
//
// Schema (colibri-exp-v1): a top-level object with a "runs" array, one
// entry per submitted RunSpec, each carrying the config summary, every
// repetition's measurements, and the aggregate stats across reps.
#pragma once

#include <iosfwd>
#include <vector>

#include "exp/sweep.hpp"

namespace colibri::obs {
class Recorder;
}

namespace colibri::exp {

/// Opt-in extensions to the colibri-exp-v2 document. Both default to off
/// because they change emitted bytes: the `engine` block varies with
/// --engine-threads, and `timeseries` only exists when a recorder sampled.
struct JsonOptions {
  /// Emit the recorder's `timeseries` block (interval samples +
  /// histograms) after the runs array.
  const obs::Recorder* recorder = nullptr;
  /// Emit a per-rep `engine` object (parallel-engine diagnostics).
  bool engineBlock = false;
  /// Emit a per-rep `fault` object (injected-fault counts + resolved
  /// seed). Deterministic across reruns and engine-thread counts, but
  /// opt-in so default documents are byte-identical with injection off.
  bool faultBlock = false;
};

/// Serialize one sweep: specs[i] produced results[i] (sizes must match).
void writeJson(std::ostream& os, const std::vector<RunSpec>& specs,
               const std::vector<SweepResult>& results);
void writeJson(std::ostream& os, const std::vector<RunSpec>& specs,
               const std::vector<SweepResult>& results,
               const JsonOptions& opts);

}  // namespace colibri::exp
