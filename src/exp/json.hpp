// JSON serialization of sweep results (report::JsonWriter does the
// syntax; this file owns the schema).
//
// Schema (colibri-exp-v1): a top-level object with a "runs" array, one
// entry per submitted RunSpec, each carrying the config summary, every
// repetition's measurements, and the aggregate stats across reps.
#pragma once

#include <iosfwd>
#include <vector>

#include "exp/sweep.hpp"

namespace colibri::exp {

/// Serialize one sweep: specs[i] produced results[i] (sizes must match).
void writeJson(std::ostream& os, const std::vector<RunSpec>& specs,
               const std::vector<SweepResult>& results);

}  // namespace colibri::exp
