#include "exp/scenario.hpp"

#include "wgen/presets.hpp"

namespace colibri::exp {

const std::vector<AdapterSpec>& adapters() {
  static const std::vector<AdapterSpec> kAdapters = {
      {"amo", arch::AdapterKind::kAmoOnly, false, false,
       "AMO unit only (no LR/SC, no waiting) — the throughput roofline"},
      {"lrsc_single", arch::AdapterKind::kLrscSingle, false, false,
       "MemPool-style LR/SC: one reservation slot per bank, retry loop"},
      {"lrsc_table", arch::AdapterKind::kLrscTable, false, false,
       "ATUN-style LR/SC: one reservation per core per bank"},
      {"lrscwait", arch::AdapterKind::kLrscWait, true, false,
       "LRSCwait_q: in-order reservation queue of capacity q per bank"},
      {"lrscwait_ideal", arch::AdapterKind::kLrscWait, true, true,
       "LRSCwait with one queue slot per core (the paper's ideal curve)"},
      {"colibri", arch::AdapterKind::kColibri, true, false,
       "Colibri: O(Q)-state distributed queue (head/tail + per-core Qnodes)"},
  };
  return kAdapters;
}

const std::vector<WorkloadSpec>& workloads() {
  static const std::vector<WorkloadSpec> kWorkloads = [] {
    std::vector<WorkloadSpec> ws = {
        {"histogram",
         "concurrent histogram: random-bin atomic increments (Figs. 3/4)"},
        {"msqueue",
         "MPMC ticket queue, balanced enqueue/dequeue steady state (Fig. 6)"},
        {"prodcons",
         "producer/consumer pipeline; consumers sleep (Mwait) or poll"},
        {"matmul",
         "SPM-interleaved matrix multiply, the Fig. 5 interference victim"},
        {"ticket_queue",
         "lock-based bounded ticket queue (the Fig. 6 'Atomic Add lock' "
         "curve)"},
        {"hashtable",
         "lock-free linear-probing hash table: CAS inserts, probe lookups"},
        {"wsdeque",
         "Chase-Lev work-stealing deque drained to completion (exactly-once "
         "checked)"},
        {"lockfair",
         "TAS spin-lock fairness/handoff study: per-core acquisition spread"},
    };
    // Workload-generator presets are first-class workloads: the CLI,
    // RunSpec dispatch, and SweepRunner treat them like the fixed five.
    for (const auto& p : wgen::presets()) {
      ws.push_back({p.spec.name, "wgen: " + p.description});
    }
    return ws;
  }();
  return kWorkloads;
}

std::vector<Scenario> allScenarios() {
  std::vector<Scenario> out;
  out.reserve(adapters().size() * workloads().size());
  for (const auto& a : adapters()) {
    for (const auto& w : workloads()) {
      Scenario s{a, w, /*supported=*/true, /*whyUnsupported=*/{}};
      // prodcons claims tickets with LR/SC (or LRwait/SCwait); the
      // AMO-only adapter rejects reservations, so that pair cannot run.
      // The same rule gates wgen presets built around CAS loops.
      if (a.kind == arch::AdapterKind::kAmoOnly) {
        if (w.name == "prodcons") {
          s.supported = false;
          s.whyUnsupported =
              "prodcons needs LR/SC at minimum and the AMO-only adapter "
              "has no reservations";
        } else if (w.name == "hashtable" || w.name == "wsdeque") {
          s.supported = false;
          s.whyUnsupported = w.name +
                             " claims words with CAS and the AMO-only "
                             "adapter has no reservations";
        } else if (const auto* preset = wgen::findPreset(w.name);
                   preset != nullptr &&
                   wgen::needsReservations(preset->spec)) {
          s.supported = false;
          s.whyUnsupported = "preset '" + w.name +
                             "' runs CAS loops and the AMO-only adapter "
                             "has no reservations";
        }
      }
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::optional<AdapterSpec> findAdapter(const std::string& name) {
  for (const auto& a : adapters()) {
    if (a.name == name) {
      return a;
    }
  }
  return std::nullopt;
}

std::optional<WorkloadSpec> findWorkload(const std::string& name) {
  for (const auto& w : workloads()) {
    if (w.name == name) {
      return w;
    }
  }
  return std::nullopt;
}

std::optional<Scenario> findScenario(const std::string& adapter,
                                     const std::string& workload) {
  for (auto& s : allScenarios()) {
    if (s.adapter.name == adapter && s.workload.name == workload) {
      return std::move(s);
    }
  }
  return std::nullopt;
}

namespace {

template <typename Specs>
std::string joinNames(const Specs& specs) {
  std::string out;
  for (const auto& s : specs) {
    if (!out.empty()) {
      out += ", ";
    }
    out += s.name;
  }
  return out;
}

}  // namespace

std::string adapterNameList() { return joinNames(adapters()); }
std::string workloadNameList() { return joinNames(workloads()); }

workloads::HistogramMode histogramModeFor(const AdapterSpec& adapter) {
  if (adapter.waitCapable) {
    return workloads::HistogramMode::kLrscWait;
  }
  if (adapter.kind == arch::AdapterKind::kAmoOnly) {
    return workloads::HistogramMode::kAmoAdd;
  }
  return workloads::HistogramMode::kLrsc;
}

workloads::QueueVariant queueVariantFor(const AdapterSpec& adapter) {
  if (adapter.waitCapable) {
    return workloads::QueueVariant::kLrscWait;
  }
  if (adapter.kind == arch::AdapterKind::kAmoOnly) {
    return workloads::QueueVariant::kLock;
  }
  return workloads::QueueVariant::kLrsc;
}

arch::SystemConfig configFor(const AdapterSpec& adapter,
                             std::uint32_t waitCapacity,
                             arch::SystemConfig base) {
  base.adapter = adapter.kind;
  base.lrscWaitQueueCapacity = (adapter.idealCapacity || waitCapacity == 0)
                                   ? base.numCores
                                   : waitCapacity;
  return base;
}

}  // namespace colibri::exp
