// RunSpec/RunResult: one simulation point as data.
//
// A RunSpec names everything a single simulation needs — the system
// configuration (adapter + geometry), the workload parameters, the
// measurement window, the seed, and how many repetitions to run — and
// exp::runOne executes it on a fresh System. This is the single dispatch
// point shared by the CLI driver, the nine figure benches, and the tests;
// per-workload run functions are not duplicated anywhere else.
//
// Determinism: a RunSpec plus a repetition index fully determines the
// result bit-for-bit. Repetition r derives its seed from the spec's base
// seed via the same splitmix64 stream scheme the cores use (rep 0 runs
// the base seed unchanged, so single-rep results match direct runs).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "arch/config.hpp"
#include "model/energy.hpp"
#include "sim/types.hpp"
#include "wgen/kernel.hpp"
#include "workloads/harness.hpp"
#include "workloads/hashtable.hpp"
#include "workloads/histogram.hpp"
#include "workloads/lockfair.hpp"
#include "workloads/matmul.hpp"
#include "workloads/msqueue.hpp"
#include "workloads/prodcons.hpp"
#include "workloads/wsdeque.hpp"

namespace colibri::exp {

/// Which workload to run, with its knobs. The MeasureWindow embedded in
/// the alternatives is overwritten from RunSpec::window by runOne (matmul
/// and interference run to completion and ignore it).
using WorkloadParams =
    std::variant<workloads::HistogramParams, workloads::QueueParams,
                 workloads::ProdConsParams, workloads::MatmulParams,
                 workloads::InterferenceParams, wgen::WgenParams,
                 workloads::HashTableParams, workloads::WsDequeParams,
                 workloads::LockFairParams>;

/// The workload family a WorkloadParams selects ("histogram", "msqueue",
/// "prodcons", "matmul", "interference"; WgenParams reports its kernel
/// name). QueueParams always reports "msqueue" — the registry's
/// "ticket_queue" entry runs the same queue with the kLock variant; set
/// RunSpec::workload to keep that name.
[[nodiscard]] const char* workloadNameOf(const WorkloadParams& params);

struct RunSpec {
  /// Display label for reports (curve name, CLI scenario, ...).
  std::string label;
  /// Optional registry workload name; empty derives it from `params`
  /// via workloadNameOf. Set it when the registry name is more specific
  /// than the params family (e.g. "ticket_queue" vs plain QueueParams).
  std::string workload;
  /// Adapter + geometry. `config.seed` is overwritten from `seed`.
  arch::SystemConfig config;
  WorkloadParams params;
  /// Authoritative measurement window (copied into `params`).
  workloads::MeasureWindow window{};
  /// Base seed; repetition r runs repSeed(seed, r).
  std::uint64_t seed = 0xC011B21;
  /// Independent repetitions (distinct derived seeds). SweepRunner
  /// aggregates mean/stddev/min/max across them.
  std::uint32_t repetitions = 1;
};

/// Everything one simulation produced: the rate summary (with the window
/// SystemCounters inside), workload-specific extras, and the area/energy
/// model outputs evaluated on those counters.
struct RunResult {
  std::string label;
  std::string workload;
  std::uint64_t seed = 0;  ///< the derived seed this rep actually ran

  workloads::RateResult rate;
  bool verified = false;

  // --- Workload-specific extras (zero where not applicable) -------------
  /// wgen kernels: per-op completion latency over the window (count > 0
  /// identifies a wgen result; p50/p95/p99 feed the latency columns).
  sim::Summary opLatency{};
  sim::Cycle duration = 0;   ///< matmul/interference: first spawn → done
  std::uint64_t macs = 0;    ///< matmul/interference
  std::uint64_t itemsConsumed = 0;       ///< prodcons: total incl. drain
  double consumerSleepFraction = 0.0;    ///< prodcons
  double consumerRequestsPerItem = 0.0;  ///< prodcons
  std::uint64_t pollerUpdates = 0;       ///< interference
  std::uint64_t inserts = 0;             ///< hashtable: successful inserts
  std::uint64_t lookups = 0;             ///< hashtable: completed lookups
  std::uint64_t steals = 0;              ///< wsdeque: tasks thieves won
  std::uint64_t ownerPops = 0;           ///< wsdeque: tasks the owner took
  /// lockfair: per-core window acquisition-count spread (count > 0
  /// identifies a lockfair result; its handoff latencies reuse opLatency).
  sim::Summary acqSpread{};

  // --- Model outputs (Table I / Table II, from the same counters) -------
  double tileAreaKge = 0.0;  ///< area of one tile with this adapter config
  model::EnergyBreakdown energy{};
  double energyPerOpPj = 0.0;
  double averagePowerMw = 0.0;

  /// Parallel-engine counters (all zero under the sequential engine).
  /// Diagnostic only: serialized solely under the caller's explicit
  /// opt-in (exp::JsonOptions::engineBlock / --json-engine), because the
  /// values depend on --engine-threads and default machine outputs must
  /// stay identical across engine-thread counts.
  sim::EngineCounters engineCounters{};

  /// Per-site injected-fault counts over the window (all zero with
  /// injection off). Deterministic — identical across reruns and
  /// engine-thread counts — but serialized only under
  /// exp::JsonOptions::faultBlock / --json-fault so default outputs and
  /// goldens are untouched by the fault subsystem's existence.
  fault::FaultCounters faultCounters{};
  /// The resolved fault seed the run used (0 = injection off).
  std::uint64_t faultSeed = 0;
};

/// The workload name a spec's results report: the explicit override, or
/// the name derived from the params family.
[[nodiscard]] std::string workloadNameFor(const RunSpec& spec);

/// Seed for repetition `rep` of a spec with base seed `base`: rep 0 is the
/// base itself; later reps come from the splitmix64 stream scheme (the
/// same derivation sim::Xoshiro256::forStream uses for per-core streams).
[[nodiscard]] std::uint64_t repSeed(std::uint64_t base, std::uint32_t rep);

/// Run one repetition of the spec on a fresh System. Throws
/// sim::InvariantViolation on simulation failures (bad geometry, lost
/// updates, ...). `rep` selects the derived seed; the single-argument
/// overload runs rep 0.
[[nodiscard]] RunResult runOne(const RunSpec& spec, std::uint32_t rep);
[[nodiscard]] RunResult runOne(const RunSpec& spec);

}  // namespace colibri::exp
