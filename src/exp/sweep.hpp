// SweepRunner: bounded parallel execution of experiment sweeps.
//
// Simulations are independent and CPU-bound, so sweeps parallelize
// perfectly — but one OS thread per point (the old bench::runParallel's
// unbounded std::async) oversubscribes the host as soon as a sweep has
// more points than cores (Fig. 3 alone has 66). SweepRunner caps
// concurrency at a fixed pool size (default hardware_concurrency):
// workers repeatedly steal the next unclaimed job from a shared index, so
// the pool stays busy regardless of how unevenly the points are sized.
//
// Results are deterministic and order-preserving: each job writes into
// its own pre-allocated slot, so the output order matches submission
// order and is bit-identical for any thread count (each simulation owns a
// fresh System seeded from its spec alone).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "exp/run.hpp"

namespace colibri::exp {

/// Aggregate statistics across repetitions of one metric.
struct Stats {
  double mean = 0.0;
  double stddev = 0.0;  ///< sample stddev (n-1); 0 for n <= 1
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;

  [[nodiscard]] static Stats of(const std::vector<double>& xs);
};

/// The outcome of one submitted RunSpec: every repetition's RunResult (in
/// repetition order) plus aggregate stats across them.
struct SweepResult {
  std::vector<RunResult> reps;
  Stats opsPerCycle;
  Stats energyPerOpPj;
  bool allVerified = false;

  /// Repetition 0 (the base seed — what a direct single run produces).
  [[nodiscard]] const RunResult& primary() const { return reps.front(); }
};

class SweepRunner {
 public:
  /// `threads` == 0 picks std::thread::hardware_concurrency().
  explicit SweepRunner(unsigned threads = 0);

  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Run every spec (times its repetitions) through the bounded pool.
  /// results[i] corresponds to specs[i]; the first job exception (in
  /// submission order) is rethrown after the batch drains.
  [[nodiscard]] std::vector<SweepResult> run(
      const std::vector<RunSpec>& specs);

  /// Bounded, order-preserving parallel map for jobs that are not
  /// expressible as RunSpecs (custom kernels, model-only computations).
  /// T must be default-constructible.
  template <typename T>
  [[nodiscard]] std::vector<T> map(std::vector<std::function<T()>> jobs) {
    std::vector<T> out(jobs.size());
    dispatch(jobs.size(), [&](std::size_t i) { out[i] = jobs[i](); });
    return out;
  }

 private:
  /// Run body(0..jobs-1) on at most threads() workers; rethrows the first
  /// (submission-order) exception after all workers join.
  void dispatch(std::size_t jobs,
                const std::function<void(std::size_t)>& body);

  unsigned threads_;
};

}  // namespace colibri::exp
