// Scenario registry: the cross product of every named adapter and every
// named workload, with the mapping rules that make each pair runnable
// (e.g. the histogram falls back from LRwait/SCwait to plain AMO adds on
// an AMO-only system; Mwait-based waiting degrades to polling on adapters
// without wait support).
//
// The registry is the single source of truth shared by the CLI driver,
// the figure benches, and the tests: all of them name scenarios instead
// of hand-building SystemConfigs. `configFor` turns an AdapterSpec into a
// ready SystemConfig; `histogramModeFor` / `queueVariantFor` encode which
// RMW flavor each adapter actually implements.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "workloads/histogram.hpp"
#include "workloads/msqueue.hpp"

namespace colibri::exp {

/// A named adapter configuration (AdapterKind plus the config knobs that
/// distinguish e.g. LRSCwait_q from LRSCwait_ideal).
struct AdapterSpec {
  std::string name;
  arch::AdapterKind kind;
  /// True for adapters that implement LRwait/SCwait and Mwait
  /// (reservation-queue waiting); false for retry-based LR/SC and AMO.
  bool waitCapable = false;
  /// True when the wait-queue capacity should be forced to numCores
  /// ("ideal").
  bool idealCapacity = false;
  std::string description;
};

struct WorkloadSpec {
  std::string name;
  std::string description;
};

/// One adapter x workload combination.
struct Scenario {
  AdapterSpec adapter;
  WorkloadSpec workload;
  /// False for combinations that cannot run. Currently only
  /// (amo, prodcons): the pipeline's ticket RMWs need LR/SC at minimum,
  /// and the AMO-only adapter rejects reservations outright. Queue
  /// workloads survive on amo by running lock-based (amoswap spinlock).
  bool supported = true;
  /// For unsupported pairs: the human-readable reason (shown by the CLI).
  std::string whyUnsupported;
};

/// All named adapters, in presentation order.
[[nodiscard]] const std::vector<AdapterSpec>& adapters();

/// All named workloads, in presentation order.
[[nodiscard]] const std::vector<WorkloadSpec>& workloads();

/// The full adapter x workload cross product (adapters-major order).
[[nodiscard]] std::vector<Scenario> allScenarios();

/// Look up by name; nullopt if unknown.
[[nodiscard]] std::optional<AdapterSpec> findAdapter(const std::string& name);
[[nodiscard]] std::optional<WorkloadSpec> findWorkload(const std::string& name);
/// The registry entry for one (adapter, workload) pair; nullopt if either
/// name is unknown.
[[nodiscard]] std::optional<Scenario> findScenario(const std::string& adapter,
                                                   const std::string& workload);

/// Comma-separated name lists for error messages.
[[nodiscard]] std::string adapterNameList();
[[nodiscard]] std::string workloadNameList();

/// The histogram RMW flavor each adapter actually implements.
[[nodiscard]] workloads::HistogramMode histogramModeFor(
    const AdapterSpec& adapter);

/// The queue variant each adapter runs for the msqueue workload.
[[nodiscard]] workloads::QueueVariant queueVariantFor(
    const AdapterSpec& adapter);

/// A SystemConfig for the adapter on the given base geometry (defaults to
/// the paper's 256-core MemPool). `waitCapacity` sizes the LRSCwait_q
/// reservation queue; 0 — or an idealCapacity adapter — means one slot
/// per core.
[[nodiscard]] arch::SystemConfig configFor(
    const AdapterSpec& adapter, std::uint32_t waitCapacity = 8,
    arch::SystemConfig base = arch::SystemConfig::memPool());

}  // namespace colibri::exp
