#include "exp/run.hpp"

#include "arch/system.hpp"
#include "model/area.hpp"
#include "obs/recorder.hpp"
#include "sim/random.hpp"

namespace colibri::exp {

namespace {

/// Per-workload dispatch: run on the (already constructed) system and
/// fill the workload-dependent part of the RunResult.
struct Dispatcher {
  arch::System& sys;
  RunResult& out;

  void operator()(const workloads::HistogramParams& p) const {
    const auto r = workloads::runHistogram(sys, p);
    out.rate = r.rate;
    out.verified = r.sumVerified;
  }

  void operator()(const workloads::QueueParams& p) const {
    const auto r = workloads::runQueue(sys, p);
    out.rate = r.rate;
    out.verified = r.fifoVerified;
  }

  void operator()(const workloads::ProdConsParams& p) const {
    const auto r = workloads::runProdCons(sys, p);
    out.rate.opsPerCycle = r.itemsPerCycle;
    out.rate.opsInWindow = r.itemsInWindow;
    out.rate.counters = r.counters;
    out.verified = r.allItemsSeen;
    out.itemsConsumed = r.itemsConsumed;
    out.consumerSleepFraction = r.consumerSleepFraction;
    out.consumerRequestsPerItem = r.consumerRequestsPerItem;
  }

  void operator()(const workloads::MatmulParams& p) const {
    const auto r = workloads::runMatmul(sys, p);
    fillMatmul(r, static_cast<std::uint32_t>(p.workers.size()));
  }

  void operator()(const workloads::InterferenceParams& p) const {
    const auto r = workloads::runInterference(sys, p);
    fillMatmul(r.matmul, static_cast<std::uint32_t>(p.matmul.workers.size() +
                                                    p.pollers.size()));
    out.pollerUpdates = r.pollerUpdates;
  }

  void operator()(const wgen::WgenParams& p) const {
    const auto r = wgen::runKernel(sys, p);
    out.rate = r.rate;
    out.verified = r.sumVerified;
    out.opLatency = r.opLatency;
  }

  void operator()(const workloads::HashTableParams& p) const {
    const auto r = workloads::runHashTable(sys, p);
    out.rate = r.rate;
    out.verified = r.verified;
    out.inserts = r.inserts;
    out.lookups = r.lookups;
  }

  void operator()(const workloads::WsDequeParams& p) const {
    // Completion-style like matmul: the whole run is the window and the
    // executed task count is the op count.
    const auto r = workloads::runWsDeque(sys, p);
    out.duration = r.duration;
    out.steals = r.steals;
    out.ownerPops = r.ownerPops;
    out.verified = r.verified;
    out.rate.counters = r.counters;
    out.rate.opsInWindow = r.executed;
    out.rate.opsPerCycle = r.duration > 0
                               ? static_cast<double>(r.executed) /
                                     static_cast<double>(r.duration)
                               : 0.0;
  }

  void operator()(const workloads::LockFairParams& p) const {
    const auto r = workloads::runLockFair(sys, p);
    out.rate = r.rate;
    out.verified = r.verified;
    out.acqSpread = r.acqSpread;
    out.opLatency = r.handoff;
  }

 private:
  /// Matmul runs to completion instead of over a window; treat the whole
  /// run as the window (stats were never reset) and report MACs as ops.
  void fillMatmul(const workloads::MatmulResult& r,
                  std::uint32_t participants) const {
    out.duration = r.duration;
    out.macs = r.macs;
    out.verified = r.verified;
    out.rate.counters = workloads::snapshotCounters(sys, r.duration,
                                                    participants);
    out.rate.opsInWindow = r.macs;
    out.rate.opsPerCycle = r.duration > 0
                               ? static_cast<double>(r.macs) /
                                     static_cast<double>(r.duration)
                               : 0.0;
  }
};

/// The authoritative window from the spec, applied to the alternatives
/// that have one.
WorkloadParams withWindow(WorkloadParams params,
                          const workloads::MeasureWindow& window) {
  std::visit(
      [&](auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, workloads::HistogramParams> ||
                      std::is_same_v<T, workloads::QueueParams> ||
                      std::is_same_v<T, workloads::ProdConsParams> ||
                      std::is_same_v<T, wgen::WgenParams> ||
                      std::is_same_v<T, workloads::HashTableParams> ||
                      std::is_same_v<T, workloads::LockFairParams>) {
          p.window = window;
        }
      },
      params);
  return params;
}

double tileAreaFor(const arch::SystemConfig& cfg) {
  switch (cfg.adapter) {
    case arch::AdapterKind::kLrscWait:
      return model::lrscWaitTileArea(cfg, cfg.lrscWaitQueueCapacity);
    case arch::AdapterKind::kColibri:
      return model::colibriTileArea(cfg, cfg.colibriQueuesPerController);
    default:
      // The AMO unit and plain LR/SC slots ship with the baseline tile.
      return model::AreaParams{}.baseTileKge;
  }
}

}  // namespace

const char* workloadNameOf(const WorkloadParams& params) {
  struct Namer {
    const char* operator()(const workloads::HistogramParams&) const {
      return "histogram";
    }
    const char* operator()(const workloads::QueueParams&) const {
      return "msqueue";
    }
    const char* operator()(const workloads::ProdConsParams&) const {
      return "prodcons";
    }
    const char* operator()(const workloads::MatmulParams&) const {
      return "matmul";
    }
    const char* operator()(const workloads::InterferenceParams&) const {
      return "interference";
    }
    const char* operator()(const wgen::WgenParams& p) const {
      return p.kernel.name.empty() ? "wgen" : p.kernel.name.c_str();
    }
    const char* operator()(const workloads::HashTableParams&) const {
      return "hashtable";
    }
    const char* operator()(const workloads::WsDequeParams&) const {
      return "wsdeque";
    }
    const char* operator()(const workloads::LockFairParams&) const {
      return "lockfair";
    }
  };
  return std::visit(Namer{}, params);
}

std::string workloadNameFor(const RunSpec& spec) {
  return spec.workload.empty() ? workloadNameOf(spec.params) : spec.workload;
}

std::uint64_t repSeed(std::uint64_t base, std::uint32_t rep) {
  if (rep == 0) {
    return base;  // single-rep runs are bit-identical to direct runs
  }
  std::uint64_t sm = base ^ (0x9e3779b97f4a7c15ULL * rep);
  return sim::splitmix64(sm);
}

RunResult runOne(const RunSpec& spec, std::uint32_t rep) {
  arch::SystemConfig cfg = spec.config;
  cfg.seed = repSeed(spec.seed, rep);
  if (rep != 0) {
    // A Recorder tracks one System; with multiple repetitions only rep 0
    // is observed (the CLI additionally restricts byte-compared sinks to
    // --reps 1).
    cfg.recorder = nullptr;
  }
  obs::Recorder* rec = cfg.recorder;
  if (rec != nullptr) {
    rec->beginRun();
  }

  RunResult out;
  out.label = spec.label;
  out.workload = workloadNameFor(spec);
  out.seed = cfg.seed;

  const WorkloadParams params = withWindow(spec.params, spec.window);
  arch::System sys(cfg);
  if (rec != nullptr && rec->config().sampleInterval > 0) {
    // Interval samples, scheduled up front — before any workload spawns —
    // so their event sequence numbers are identical in sequential and
    // parallel runs. They run as global serial cycles: every event below
    // the sample cycle has executed, making the counter-slot sums exact.
    const sim::Cycle step = rec->config().sampleInterval;
    const sim::Cycle horizon = spec.window.horizon();
    for (sim::Cycle t = 0;; t += step) {
      sys.at(t, [rec, &sys] { rec->sampleAt(sys.now()); });
      if (t + step > horizon) {
        break;
      }
    }
  }
  std::visit(Dispatcher{sys, out}, params);
  out.engineCounters = sys.engineCounters();
  out.faultCounters = sys.faultCounters();
  out.faultSeed = sys.faultSeed();
  if (rec != nullptr) {
    rec->finalize(sys.now());
  }

  out.tileAreaKge = tileAreaFor(cfg);
  out.energy = model::chargeEnergy(out.rate.counters);
  out.energyPerOpPj = model::energyPerOp(out.rate.counters,
                                         out.rate.opsInWindow);
  out.averagePowerMw = model::averagePowerMw(out.rate.counters);
  return out;
}

RunResult runOne(const RunSpec& spec) { return runOne(spec, 0); }

}  // namespace colibri::exp
