// Recorder: one observability session over one simulation run.
//
// Owns the metric registry, the interval sample rows and (optionally) the
// span tracer. The exp layer drives it: runOne() calls beginRun(), the
// System attaches during construction (registering its probes and hot
// counters), sample events scheduled at serial points call sampleAt(), and
// finalize() takes the closing row before the System is destroyed — after
// which the gauge probes are gone but every recorded row and counter cell
// stays readable for the writers.
//
// A Recorder records exactly one System (attachSystem checks); the CLI
// additionally restricts the byte-compared sinks to --reps 1 because
// concurrent repetitions share process-wide state (the coroutine frame
// pool) that would bleed into the sampled values.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/types.hpp"

namespace colibri::report {
class JsonWriter;
}

namespace colibri::obs {

class Recorder {
 public:
  struct Config {
    /// Cycles between interval samples; 0 = closing snapshot only.
    sim::Cycle sampleInterval = 0;
    /// Span tracer on/off and its 1/K sampling knob.
    bool traceEnabled = false;
    std::uint32_t traceEvery = 1;
  };

  Recorder() : Recorder(Config{}) {}
  explicit Recorder(Config cfg);

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] const Registry& registry() const { return registry_; }
  [[nodiscard]] Tracer* tracer() {
    return cfg_.traceEnabled ? &tracer_ : nullptr;
  }

  // --- Run plumbing -------------------------------------------------------
  /// Capture process-wide baselines (frame pool) before the System exists.
  void beginRun();
  /// Called by the System under construction; a Recorder records one run.
  void attachSystem();
  /// Called by the System destructor: drops the probes into it.
  void detachSystem();
  /// Append one sample row (serial points only).
  void sampleAt(sim::Cycle now);
  /// Take the closing row; must run before the System is destroyed.
  void finalize(sim::Cycle now);

  [[nodiscard]] bool sampledAnything() const { return !samples_.empty(); }
  [[nodiscard]] std::uint64_t frameBaseline() const { return frameBase_; }
  [[nodiscard]] std::uint64_t arenaBaseline() const { return arenaBase_; }

  // --- Sinks ---------------------------------------------------------------
  /// Deterministic metrics as CSV: `cycle,<name>,...`, cumulative values.
  void writeMetricsCsv(std::ostream& os) const;
  /// The exp JSON `timeseries` member (key + object). Deterministic
  /// metrics only, same column order as the CSV.
  void writeTimeseriesBlock(report::JsonWriter& w) const;
  /// Chrome trace_event JSON (requires traceEnabled).
  void writeChromeTrace(std::ostream& os) const;
  /// Every metric (diagnostic included) as `obs: name = value` lines.
  void printStats(std::ostream& os) const;

 private:
  struct Row {
    sim::Cycle cycle = 0;
    std::vector<std::uint64_t> counters;  // kCounter metrics, in order
    std::vector<double> gauges;           // kGauge metrics, in order
  };

  Config cfg_;
  Registry registry_;
  Tracer tracer_;
  bool attached_ = false;
  bool runBegun_ = false;
  bool finalized_ = false;
  std::uint64_t frameBase_ = 0;
  std::uint64_t arenaBase_ = 0;
  std::vector<Row> samples_;
};

}  // namespace colibri::obs
