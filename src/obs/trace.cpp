#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>

#include "report/json.hpp"
#include "sim/check.hpp"

namespace colibri::obs {

void Tracer::bind(std::uint32_t numCores, std::uint32_t numBanks) {
  COLIBRI_CHECK_MSG(cur_.empty(), "tracer already bound to a system");
  numBanks_ = numBanks;
  cur_.resize(numCores);
  opCount_.assign(numCores, 0);
  postCount_.assign(numCores, 0);
  visitCount_.assign(numCores, 0);
  done_.resize(numCores);
  posted_.resize(numCores);
  phases_.resize(numCores);
  coreFaults_.resize(numCores);
  bankFaults_.resize(numBanks);
}

void Tracer::onIssue(std::uint32_t core, std::string_view kind,
                     sim::Cycle departs) {
  InFlight& f = cur_[core];
  f.sampled = opCount_[core]++ % every_ == 0;
  f.active = true;
  f.rec = ReqSpan{};
  f.rec.issue = departs;
  f.rec.kind = kind;
}

void Tracer::onPosted(std::uint32_t core, std::string_view kind,
                      sim::Cycle departs) {
  if (postCount_[core]++ % every_ == 0) {
    posted_[core].push_back({departs, kind});
  }
}

void Tracer::onBankArrive(std::uint32_t core, std::uint32_t bank,
                          sim::Cycle arrive, sim::Cycle grant) {
  InFlight& f = cur_[core];
  if (!f.active) {
    return;  // op issued before the tracer attached (not possible today)
  }
  f.rec.bank = bank;
  f.rec.arrive = arrive;
  f.rec.grant = grant;
}

void Tracer::onRespond(std::uint32_t core, sim::Cycle at) {
  InFlight& f = cur_[core];
  if (f.active) {
    f.rec.respond = at;
  }
}

void Tracer::onComplete(std::uint32_t core, sim::Cycle at) {
  InFlight& f = cur_[core];
  if (!f.active) {
    return;
  }
  f.active = false;
  if (f.sampled) {
    f.rec.complete = at;
    done_[core].push_back(f.rec);
  }
}

void Tracer::onPhase(std::uint32_t core, std::string_view name,
                     sim::Cycle begin, sim::Cycle end) {
  if (visitCount_[core]++ % every_ == 0) {
    phases_[core].push_back({begin, end, name});
  }
}

void Tracer::onFaultCore(std::uint32_t core, std::string_view kind,
                         sim::Cycle at) {
  coreFaults_[core].push_back({at, kind});
}

void Tracer::onFaultBank(std::uint32_t bank, std::string_view kind,
                         sim::Cycle at) {
  bankFaults_[bank].push_back({at, kind});
}

std::size_t Tracer::spanCount() const {
  std::size_t n = 0;
  for (const auto& v : done_) {
    n += v.size();
  }
  return n;
}

namespace {

/// One trace_event line, flattened for canonical sorting.
struct Emit {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  sim::Cycle ts = 0;
  sim::Cycle dur = 0;
  bool instant = false;
  std::string_view name;
  std::string_view argKey;  // empty = no args
  std::uint64_t argValue = 0;
};

bool emitLess(const Emit& a, const Emit& b) {
  if (a.pid != b.pid) return a.pid < b.pid;
  if (a.tid != b.tid) return a.tid < b.tid;
  if (a.ts != b.ts) return a.ts < b.ts;
  if (a.dur != b.dur) return a.dur > b.dur;  // parents before children
  if (a.name != b.name) return a.name < b.name;
  return a.argValue < b.argValue;
}

void writeEvent(report::JsonWriter& w, const Emit& e) {
  w.beginObject();
  w.kv("name", e.name)
      .kv("ph", e.instant ? "i" : "X")
      .kv("pid", e.pid)
      .kv("tid", e.tid)
      .kv("ts", static_cast<std::uint64_t>(e.ts));
  if (e.instant) {
    w.kv("s", "t");
  } else {
    w.kv("dur", static_cast<std::uint64_t>(e.dur));
  }
  if (!e.argKey.empty()) {
    w.key("args").beginObject();
    w.kv(e.argKey, e.argValue);
    w.endObject();
  }
  w.endObject();
}

void writeProcessName(report::JsonWriter& w, std::uint32_t pid,
                      const char* name) {
  w.beginObject();
  w.kv("name", "process_name").kv("ph", "M").kv("pid", pid);
  w.key("args").beginObject();
  w.kv("name", name);
  w.endObject();
  w.endObject();
}

}  // namespace

void Tracer::writeChromeTrace(std::ostream& os) const {
  std::vector<Emit> events;
  for (std::uint32_t c = 0; c < done_.size(); ++c) {
    for (const auto& s : done_[c]) {
      // Parent op span plus the three lifecycle children on the core track.
      events.push_back({1, c, s.issue, s.complete - s.issue, false, s.kind,
                        "bank", s.bank});
      events.push_back(
          {1, c, s.issue, s.arrive - s.issue, false, "net.req", {}, 0});
      events.push_back({1, c, s.arrive, s.respond - s.arrive, false, "bank",
                        "wait", s.grant - s.arrive});
      events.push_back(
          {1, c, s.respond, s.complete - s.respond, false, "net.resp", {}, 0});
      // Mirrored service span on the bank track.
      events.push_back(
          {2, s.bank, s.grant, s.respond - s.grant, false, s.kind, "core", c});
    }
    for (const auto& p : posted_[c]) {
      events.push_back({1, c, p.at, 0, true, p.kind, {}, 0});
    }
    for (const auto& ph : phases_[c]) {
      events.push_back(
          {1, c, ph.begin, ph.end - ph.begin, false, ph.name, {}, 0});
    }
    for (const auto& i : coreFaults_[c]) {
      events.push_back({1, c, i.at, 0, true, i.kind, {}, 0});
    }
  }
  for (std::uint32_t b = 0; b < bankFaults_.size(); ++b) {
    for (const auto& i : bankFaults_[b]) {
      events.push_back({2, b, i.at, 0, true, i.kind, {}, 0});
    }
  }
  std::sort(events.begin(), events.end(), emitLess);

  report::JsonWriter w(os);
  w.beginObject();
  w.kv("displayTimeUnit", "ns");
  w.key("otherData").beginObject();
  w.kv("clock", "simulated-cycles");
  w.endObject();
  w.key("traceEvents").beginArray();
  writeProcessName(w, 1, "cores");
  if (numBanks_ > 0) {
    writeProcessName(w, 2, "banks");
  }
  for (const auto& e : events) {
    writeEvent(w, e);
  }
  w.endArray();
  w.endObject();
  os << '\n';
}

}  // namespace colibri::obs
