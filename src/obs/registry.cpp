#include "obs/registry.hpp"

#include <utility>

#include "sim/check.hpp"

namespace colibri::obs {

std::uint32_t Registry::addRows(std::uint32_t n) {
  const std::uint32_t first = counterRows_;
  counterRows_ += n;
  for (auto& slot : slots_) {
    slot.resize(counterRows_, 0);
  }
  return first;
}

MetricId Registry::counter(std::string name, MetricClass cls) {
  const MetricId id{addRows(1)};
  metrics_.push_back({std::move(name), MetricKind::kCounter, cls, id.cell});
  return id;
}

MetricId Registry::histogram(std::string name, MetricClass cls) {
  const MetricId id{addRows(kHistogramBuckets)};
  metrics_.push_back({std::move(name), MetricKind::kHistogram, cls, id.cell});
  return id;
}

MetricId Registry::gauge(std::string name, std::function<double()> probe,
                         MetricClass cls) {
  const MetricId id{static_cast<std::uint32_t>(probes_.size())};
  probes_.push_back(std::move(probe));
  metrics_.push_back({std::move(name), MetricKind::kGauge, cls, id.cell});
  return id;
}

void Registry::setShardSlots(std::uint32_t numShards) {
  COLIBRI_CHECK_MSG(slots_.size() == 1,
                    "shard slots already sized for this registry");
  slots_.resize(static_cast<std::size_t>(numShards) + 1);
  for (auto& slot : slots_) {
    slot.resize(counterRows_, 0);
  }
}

void Registry::clearProbes() { probes_.clear(); }

std::uint64_t Registry::rowTotal(std::uint32_t row) const {
  COLIBRI_CHECK(row < counterRows_);
  std::uint64_t sum = 0;
  for (const auto& slot : slots_) {
    sum += slot[row];
  }
  return sum;
}

double Registry::gaugeValue(std::uint32_t probeIndex) const {
  COLIBRI_CHECK_MSG(probeIndex < probes_.size() && probes_[probeIndex],
                    "gauge probe read after detach");
  return probes_[probeIndex]();
}

}  // namespace colibri::obs
