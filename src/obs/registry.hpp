// Metric registry: named counters, gauges and histograms keyed to
// *simulated* cycles.
//
// Determinism contract (the reason this exists instead of ad-hoc printf):
// every metric carries a class tag. kDeterministic metrics are functions of
// the simulated event history alone, so their sampled values are
// bit-identical across reruns, host machines, SweepRunner thread counts and
// --engine-threads values. kDiagnostic metrics describe the machinery that
// *ran* the simulation (parallel windows, allocator arenas) — useful on
// stderr, but excluded from every byte-compared sink (--metrics-csv, the
// exp JSON `timeseries` block).
//
// Parallel engine: counters are sharded. A worker executing shard s adds
// into slot s+1; serial execution (the sequential engine, global serial
// cycles, barrier merges) adds into slot 0. Reads sum the slots — exact at
// every serial sample point, because by then all events before the sample
// cycle have executed and addition commutes. Gauges are probes (callbacks
// into live simulator state) and are only ever read at serial points.
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/parallel.hpp"

namespace colibri::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// kDeterministic: bit-identical across reruns / hosts / engine threads.
/// kDiagnostic: describes the simulation machinery; stderr only.
enum class MetricClass : std::uint8_t { kDeterministic, kDiagnostic };

/// Opaque handle returned at registration. For counters it is the cell row;
/// for histograms the first of kHistogramBuckets consecutive rows; for
/// gauges the probe index.
struct MetricId {
  std::uint32_t cell = 0;
};

struct MetricInfo {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  MetricClass cls = MetricClass::kDeterministic;
  std::uint32_t cell = 0;
};

class Registry {
 public:
  /// Log2 latency/value buckets per histogram: bucket 0 holds value 0,
  /// bucket k holds [2^(k-1), 2^k), the last bucket absorbs the tail.
  static constexpr std::uint32_t kHistogramBuckets = 20;

  Registry() { slots_.emplace_back(); }

  // --- Registration (serial, during System construction) -----------------
  MetricId counter(std::string name,
                   MetricClass cls = MetricClass::kDeterministic);
  MetricId histogram(std::string name,
                     MetricClass cls = MetricClass::kDeterministic);
  MetricId gauge(std::string name, std::function<double()> probe,
                 MetricClass cls = MetricClass::kDeterministic);

  /// Size the per-shard counter slots (slot 0 = serial, slots 1..n =
  /// shards). Called once by System::enableParallelEngine, after all hot
  /// counters are registered and before any event runs.
  void setShardSlots(std::uint32_t numShards);

  /// Drop the gauge probes (they capture the System, which is being
  /// destroyed); counter and histogram cells stay readable.
  void clearProbes();

  // --- Hot path -----------------------------------------------------------
  /// Add to a counter from any execution context. Inside a parallel worker
  /// window the add lands in the shard's own slot; everywhere else
  /// (sequential engine, serial cycles, merges) in slot 0.
  void add(MetricId id, std::uint64_t n = 1) {
    const auto slot = static_cast<std::uint32_t>(
        sim::ParallelDispatch::currentWindowShard() + 1);
    slots_[slot][id.cell] += n;
  }

  /// Record one value into a histogram (same sharding as add()).
  void record(MetricId id, std::uint64_t value) {
    add(MetricId{id.cell + bucketOf(value)});
  }

  [[nodiscard]] static std::uint32_t bucketOf(std::uint64_t value) {
    const auto w = static_cast<std::uint32_t>(std::bit_width(value));
    return w < kHistogramBuckets ? w : kHistogramBuckets - 1;
  }

  // --- Reads (serial points only) ----------------------------------------
  [[nodiscard]] std::uint64_t counterTotal(MetricId id) const {
    return rowTotal(id.cell);
  }
  [[nodiscard]] std::uint64_t bucketTotal(MetricId id,
                                          std::uint32_t bucket) const {
    return rowTotal(id.cell + bucket);
  }
  [[nodiscard]] double gaugeValue(std::uint32_t probeIndex) const;
  [[nodiscard]] bool probesLive() const { return !probes_.empty(); }

  [[nodiscard]] const std::vector<MetricInfo>& metrics() const {
    return metrics_;
  }

 private:
  [[nodiscard]] std::uint64_t rowTotal(std::uint32_t row) const;
  std::uint32_t addRows(std::uint32_t n);

  std::vector<MetricInfo> metrics_;
  std::uint32_t counterRows_ = 0;
  /// slots_[slot][row]: per-execution-context counter cells. Each slot is
  /// its own allocation, so workers on different shards never share a
  /// cache line through this table.
  std::vector<std::vector<std::uint64_t>> slots_;
  std::vector<std::function<double()>> probes_;
};

}  // namespace colibri::obs
