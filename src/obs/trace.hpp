// Span tracer: per-request lifecycle spans in Chrome trace_event JSON.
//
// Each blocking memory operation becomes one parent span on the issuing
// core's track (pid 1, tid = core id) with three children — net.req
// (issue -> bank arrival), bank (arrival -> response send, which includes
// the port wait and any reservation-queue wait), net.resp (response send
// -> delivery) — plus a mirrored service span on the bank's track (pid 2,
// tid = bank id). Posted stores are instant events; wgen phase visits are
// spans that nest around the ops they contain.
//
// Matching needs no request ids: the modeled pipeline is single-issue, so
// at any simulated moment a core has at most one blocking op in flight and
// every bank-side hook for that core refers to it. Cross-thread writes to
// the per-core in-flight record are ordered by the parallel engine's
// window barriers (a bank touches the record strictly between the issue
// and the completion of the same op).
//
// Determinism: all timestamps are simulated cycles, the 1/K sampling
// decision counts each core's ops in program order, and the writer sorts
// events canonically — so the emitted file is bit-identical across reruns
// and engine-thread counts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "sim/types.hpp"

namespace colibri::obs {

class Tracer {
 public:
  /// Record every K-th op per core (1 = everything).
  explicit Tracer(std::uint32_t sampleEvery = 1)
      : every_(sampleEvery == 0 ? 1 : sampleEvery) {}

  /// Size the per-core/per-bank state; called once by the System.
  void bind(std::uint32_t numCores, std::uint32_t numBanks);

  // --- Hooks (hot paths; all names must point at static storage) ----------
  void onIssue(std::uint32_t core, std::string_view kind, sim::Cycle departs);
  void onPosted(std::uint32_t core, std::string_view kind, sim::Cycle departs);
  void onBankArrive(std::uint32_t core, std::uint32_t bank, sim::Cycle arrive,
                    sim::Cycle grant);
  void onRespond(std::uint32_t core, sim::Cycle at);
  void onComplete(std::uint32_t core, sim::Cycle at);
  void onPhase(std::uint32_t core, std::string_view name, sim::Cycle begin,
               sim::Cycle end);
  /// Fault-injection instants (never sampled — injections are rare and
  /// each one is diagnostic). The caller picks the track whose execution
  /// context made the decision, so pushes never cross parallel shards.
  void onFaultCore(std::uint32_t core, std::string_view kind, sim::Cycle at);
  void onFaultBank(std::uint32_t bank, std::string_view kind, sim::Cycle at);

  // --- Output --------------------------------------------------------------
  void writeChromeTrace(std::ostream& os) const;
  [[nodiscard]] std::size_t spanCount() const;

 private:
  struct ReqSpan {
    sim::Cycle issue = 0;
    sim::Cycle arrive = 0;
    sim::Cycle grant = 0;
    sim::Cycle respond = 0;
    sim::Cycle complete = 0;
    std::uint32_t bank = 0;
    std::string_view kind;
  };
  struct InFlight {
    ReqSpan rec;
    bool active = false;
    bool sampled = false;
  };
  struct Instant {
    sim::Cycle at = 0;
    std::string_view kind;
  };
  struct Phase {
    sim::Cycle begin = 0;
    sim::Cycle end = 0;
    std::string_view name;
  };

  std::uint32_t every_;
  std::uint32_t numBanks_ = 0;
  std::vector<InFlight> cur_;
  std::vector<std::uint64_t> opCount_;
  std::vector<std::uint64_t> postCount_;
  std::vector<std::uint64_t> visitCount_;
  std::vector<std::vector<ReqSpan>> done_;
  std::vector<std::vector<Instant>> posted_;
  std::vector<std::vector<Phase>> phases_;
  std::vector<std::vector<Instant>> coreFaults_;
  std::vector<std::vector<Instant>> bankFaults_;
};

}  // namespace colibri::obs
