// SimHooks: the one pointer the hot paths test.
//
// Core, Bank and the sync primitives hold a `const SimHooks*` that is null
// unless a Recorder is attached, so with observability off every
// instrumentation site compiles to a single predictable-untaken branch —
// the same pattern as Bank's port shadow and the engine's dispatch trace.
// The struct bundles the registry, the optional tracer and the
// pre-registered hot-counter ids so a site never pays a name lookup.
#pragma once

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace colibri::obs {

struct SimHooks {
  Registry* registry = nullptr;
  Tracer* tracer = nullptr;  // null when tracing is off

  // Hot counters (everything else is probed at sample points instead).
  MetricId casRetries{};   ///< sync: CAS attempts that had to loop
  MetricId rmwRetries{};   ///< sync: fetchAdd SC failures / queue-full LRs
  MetricId wgenVisits{};   ///< wgen: phase visits completed
  MetricId opLatency{};    ///< histogram of blocking-op completion latency

  void add(MetricId id, std::uint64_t n = 1) const { registry->add(id, n); }
  void record(MetricId id, std::uint64_t v) const { registry->record(id, v); }
};

}  // namespace colibri::obs
