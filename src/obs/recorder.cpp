#include "obs/recorder.hpp"

#include <charconv>
#include <cmath>
#include <ostream>
#include <string>

#include "report/json.hpp"
#include "sim/check.hpp"
#include "sim/framepool.hpp"

namespace colibri::obs {

namespace {

/// Gauges are doubles, but most of ours are integral sums; print those
/// without an exponent so the CSV reads (and diffs) like the counters do.
std::string formatGauge(double v) {
  if (std::isfinite(v) && std::floor(v) == v && std::abs(v) < 9.007199254740992e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  COLIBRI_CHECK(ec == std::errc{});
  return std::string(buf, ptr);
}

/// Human-readable label for a log2 histogram bucket.
std::string bucketLabel(std::uint32_t b) {
  if (b == 0) {
    return "0";
  }
  const std::uint64_t lo = std::uint64_t{1} << (b - 1);
  if (b == Registry::kHistogramBuckets - 1) {
    return std::to_string(lo) + "+";
  }
  return std::to_string(lo) + "-" + std::to_string((lo << 1) - 1);
}

}  // namespace

Recorder::Recorder(Config cfg) : cfg_(cfg), tracer_(cfg.traceEvery) {}

void Recorder::beginRun() {
  COLIBRI_CHECK_MSG(!runBegun_, "a Recorder records exactly one run");
  runBegun_ = true;
  frameBase_ = sim::framepool::pooledFrameCount() + sim::framepool::heapFrameCount();
  arenaBase_ = sim::framepool::arenaBytes();
}

void Recorder::attachSystem() {
  COLIBRI_CHECK_MSG(runBegun_, "attachSystem before beginRun");
  COLIBRI_CHECK_MSG(!attached_, "a Recorder records exactly one System");
  attached_ = true;
}

void Recorder::detachSystem() { registry_.clearProbes(); }

void Recorder::sampleAt(sim::Cycle now) {
  Row row;
  row.cycle = now;
  for (const auto& m : registry_.metrics()) {
    switch (m.kind) {
      case MetricKind::kCounter:
        row.counters.push_back(registry_.counterTotal(MetricId{m.cell}));
        break;
      case MetricKind::kGauge:
        row.gauges.push_back(registry_.gaugeValue(m.cell));
        break;
      case MetricKind::kHistogram:
        break;  // buckets are emitted once, at the end
    }
  }
  samples_.push_back(std::move(row));
}

void Recorder::finalize(sim::Cycle now) {
  if (finalized_) {
    return;
  }
  finalized_ = true;
  if (attached_ && (samples_.empty() || samples_.back().cycle != now)) {
    sampleAt(now);
  }
}

void Recorder::writeMetricsCsv(std::ostream& os) const {
  os << "cycle";
  for (const auto& m : registry_.metrics()) {
    if (m.kind != MetricKind::kHistogram &&
        m.cls == MetricClass::kDeterministic) {
      os << ',' << m.name;
    }
  }
  os << '\n';
  for (const auto& row : samples_) {
    os << row.cycle;
    std::size_t ci = 0;
    std::size_t gi = 0;
    for (const auto& m : registry_.metrics()) {
      switch (m.kind) {
        case MetricKind::kCounter:
          if (m.cls == MetricClass::kDeterministic) {
            os << ',' << row.counters[ci];
          }
          ++ci;
          break;
        case MetricKind::kGauge:
          if (m.cls == MetricClass::kDeterministic) {
            os << ',' << formatGauge(row.gauges[gi]);
          }
          ++gi;
          break;
        case MetricKind::kHistogram:
          break;
      }
    }
    os << '\n';
  }
}

void Recorder::writeTimeseriesBlock(report::JsonWriter& w) const {
  w.key("timeseries").beginObject();
  w.kv("interval", static_cast<std::uint64_t>(cfg_.sampleInterval));
  w.key("metrics").beginArray();
  for (const auto& m : registry_.metrics()) {
    if (m.kind != MetricKind::kHistogram &&
        m.cls == MetricClass::kDeterministic) {
      w.value(m.name);
    }
  }
  w.endArray();
  // Each sample is [cycle, <metric values in the order above>].
  w.key("samples").beginArray();
  for (const auto& row : samples_) {
    w.beginArray();
    w.value(static_cast<std::uint64_t>(row.cycle));
    std::size_t ci = 0;
    std::size_t gi = 0;
    for (const auto& m : registry_.metrics()) {
      switch (m.kind) {
        case MetricKind::kCounter:
          if (m.cls == MetricClass::kDeterministic) {
            w.value(row.counters[ci]);
          }
          ++ci;
          break;
        case MetricKind::kGauge:
          if (m.cls == MetricClass::kDeterministic) {
            w.value(row.gauges[gi]);
          }
          ++gi;
          break;
        case MetricKind::kHistogram:
          break;
      }
    }
    w.endArray();
  }
  w.endArray();
  w.key("histograms").beginArray();
  for (const auto& m : registry_.metrics()) {
    if (m.kind == MetricKind::kHistogram &&
        m.cls == MetricClass::kDeterministic) {
      w.beginObject();
      w.kv("name", m.name);
      w.key("buckets").beginArray();
      for (std::uint32_t b = 0; b < Registry::kHistogramBuckets; ++b) {
        w.value(registry_.bucketTotal(MetricId{m.cell}, b));
      }
      w.endArray();
      w.endObject();
    }
  }
  w.endArray();
  w.endObject();
}

void Recorder::writeChromeTrace(std::ostream& os) const {
  COLIBRI_CHECK_MSG(cfg_.traceEnabled, "trace sink without --trace");
  tracer_.writeChromeTrace(os);
}

void Recorder::printStats(std::ostream& os) const {
  std::size_t gi = 0;
  for (const auto& m : registry_.metrics()) {
    switch (m.kind) {
      case MetricKind::kCounter:
        os << "obs: " << m.name << " = "
           << registry_.counterTotal(MetricId{m.cell}) << '\n';
        break;
      case MetricKind::kGauge:
        // After detach the probes are gone; serve the closing sample.
        if (!samples_.empty()) {
          os << "obs: " << m.name << " = "
             << formatGauge(samples_.back().gauges[gi]) << '\n';
        }
        ++gi;
        break;
      case MetricKind::kHistogram:
        for (std::uint32_t b = 0; b < Registry::kHistogramBuckets; ++b) {
          const std::uint64_t n = registry_.bucketTotal(MetricId{m.cell}, b);
          if (n != 0) {
            os << "obs: " << m.name << '[' << bucketLabel(b) << "] = " << n
               << '\n';
          }
        }
        break;
    }
  }
}

}  // namespace colibri::obs
