// Spin locks over the simulated atomics — the lock variants of Fig. 4.
//
//   kAmoTas    — test-and-set via amoswap      ("Atomic Add lock")
//   kLrscTas   — test-and-set via LR/SC        ("LRSC lock")
//   kLrwaitTas — test-and-set via LRwait/SCwait ("Colibri lock"): waiting
//                cores sleep in the reservation queue instead of polling;
//                on observing the lock taken, the SCwait writes the value
//                back unchanged to yield the queue.
//
// All three use the paper's 128-cycle backoff by default. A lock is one
// SPM word: 0 = free, 1 = taken.
//
// Memory-ordering note: the modeled cores post stores, and stores to
// different banks complete out of order. A critical section must therefore
// publish its last data write with an *acked* store (Core::amoSwap) before
// the plain release store, mirroring the fence a real MemPool kernel needs.
// releaseLock() itself is a plain store to the lock word.
#pragma once

#include <cstdint>

#include "core/core.hpp"
#include "sim/co.hpp"
#include "sync/atomic.hpp"
#include "sync/backoff.hpp"

namespace colibri::sync {

enum class SpinLockKind : std::uint8_t { kAmoTas, kLrscTas, kLrwaitTas };

[[nodiscard]] const char* toString(SpinLockKind k);

/// Acquire `lock` (blocking). `backoff` paces the retries.
sim::Co<void> acquireLock(Core& core, SpinLockKind kind, Addr lock,
                          Backoff& backoff);

/// Release `lock` (posted store of 0). See the header note on ordering.
sim::Co<void> releaseLock(Core& core, Addr lock);

}  // namespace colibri::sync
