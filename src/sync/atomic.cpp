#include "sync/atomic.hpp"

#include "obs/hooks.hpp"
#include "sim/check.hpp"

namespace colibri::sync {

namespace {

/// Count one retry loop iteration (SC failure or queue-full LR) against
/// the issuing core. A CAS value mismatch is a *result*, not a retry.
void countRetry(Core& core, bool cas) {
  if (const obs::SimHooks* h = core.obsHooks()) {
    h->add(cas ? h->casRetries : h->rmwRetries);
  }
}

}  // namespace

const char* toString(RmwFlavor f) {
  switch (f) {
    case RmwFlavor::kAmo:
      return "amo";
    case RmwFlavor::kLrsc:
      return "lrsc";
    case RmwFlavor::kLrscWait:
      return "lrscwait";
  }
  return "?";
}

sim::Co<RmwResult> fetchAdd(Core& core, RmwFlavor flavor, Addr a, Word delta,
                            Backoff& backoff, const bool* abandon) {
  switch (flavor) {
    case RmwFlavor::kAmo: {
      const auto r = co_await core.amoAdd(a, delta);
      co_return RmwResult{r.value, true};
    }
    case RmwFlavor::kLrsc: {
      while (true) {
        const auto lr = co_await core.lr(a);
        co_await core.delay(kRmwComputeCycles);
        const auto sc = co_await core.sc(a, lr.value + delta);
        if (sc.ok) {
          co_return RmwResult{lr.value, true};
        }
        // Failed SC: the retry loop the paper sets out to eliminate.
        countRetry(core, /*cas=*/false);
        co_await core.delay(backoff.next());
        if (abandon != nullptr && *abandon) {
          co_return RmwResult{0, false};
        }
      }
    }
    case RmwFlavor::kLrscWait: {
      while (true) {
        const auto lr = co_await core.lrWait(a);
        if (!lr.ok) {
          // Reservation queue full (LRSCwait_q / Colibri with too few
          // slots): immediate fail, retry after backoff. We were never
          // enqueued, so abandoning here is legal.
          countRetry(core, /*cas=*/false);
          co_await core.delay(backoff.next());
          if (abandon != nullptr && *abandon) {
            co_return RmwResult{0, false};
          }
          continue;
        }
        co_await core.delay(kRmwComputeCycles);
        const auto sc = co_await core.scWait(a, lr.value + delta);
        if (sc.ok) {
          co_return RmwResult{lr.value, true};
        }
        // SCwait can only fail if a plain store slipped in between; the
        // queue already advanced past us, so re-enqueue.
      }
    }
  }
  COLIBRI_CHECK_MSG(false, "unreachable");
  co_return RmwResult{};
}

sim::Co<CasResult> compareAndSwap(Core& core, RmwFlavor flavor, Addr a,
                                  Word expected, Word desired,
                                  Backoff& backoff, const bool* abandon) {
  COLIBRI_CHECK_MSG(flavor != RmwFlavor::kAmo,
                    "CAS needs a reservation pair (LR/SC or LRwait/SCwait)");
  if (flavor == RmwFlavor::kLrsc) {
    while (true) {
      const auto lr = co_await core.lr(a);
      if (lr.value != expected) {
        // RISC-V allows abandoning an LR without an SC, but bank-side
        // reservation slots (lrsc_single) do not: a granted LR holds the
        // bank's only slot, and a caller that walks away for good — the
        // deque owner losing its last-element race, say — strands it,
        // deadlocking every later SC to that address. Close the pair by
        // storing the observed value back: our own SC frees the slot with
        // a no-op write, and if the slot was never ours it simply fails.
        // (The wait flavors below yield their queue the same way.)
        (void)co_await core.sc(a, lr.value);
        co_return CasResult{lr.value, false};
      }
      co_await core.delay(kRmwComputeCycles);
      const auto sc = co_await core.sc(a, desired);
      if (sc.ok) {
        co_return CasResult{expected, true};
      }
      countRetry(core, /*cas=*/true);
      co_await core.delay(backoff.next());
      if (abandon != nullptr && *abandon) {
        co_return CasResult{lr.value, false};
      }
    }
  }
  // kLrscWait: every granted LRwait must be closed with an SCwait so the
  // distributed queue advances (Section III constraint b) — on a value
  // mismatch we store the *unchanged* value back to yield the queue.
  while (true) {
    const auto lr = co_await core.lrWait(a);
    if (!lr.ok) {
      countRetry(core, /*cas=*/true);
      co_await core.delay(backoff.next());
      if (abandon != nullptr && *abandon) {
        co_return CasResult{0, false};
      }
      continue;
    }
    co_await core.delay(kRmwComputeCycles);
    if (lr.value != expected) {
      (void)co_await core.scWait(a, lr.value);  // yield the queue
      co_return CasResult{lr.value, false};
    }
    const auto sc = co_await core.scWait(a, desired);
    if (sc.ok) {
      co_return CasResult{expected, true};
    }
  }
}

}  // namespace colibri::sync
