// Software MCS lock [6], with two ways of waiting:
//
//   kPoll  — classic: each core spins on its own node's `locked` word
//            (allocated in the core's tile-local banks, so the spinning at
//            least stays off the global interconnect),
//   kMwait — the paper's "Mwait lock" (Fig. 4): instead of spinning, the
//            core issues an Mwait on its node word and sleeps until the
//            predecessor's hand-over store wakes it.
//
// The queue-tail exchange uses amoswap; the release-time compare-and-swap
// uses the reservation pair (LR/SC or LRwait/SCwait, matching the system's
// adapter).
//
// Node memory is one `next` word and one `locked` word per core, allocated
// tile-locally by McsNodes::create(). Ordering-sensitive writes (node init
// before the tail swap) use acked stores (amoswap) — see spinlock.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/system.hpp"
#include "core/core.hpp"
#include "sim/co.hpp"
#include "sync/atomic.hpp"
#include "sync/backoff.hpp"

namespace colibri::sync {

enum class WaitKind : std::uint8_t { kPoll, kMwait };

[[nodiscard]] const char* toString(WaitKind w);

/// Per-core MCS queue nodes (shared by all MCS locks in the system, since a
/// core holds at most one lock at a time in our workloads).
struct McsNodes {
  std::vector<Addr> next;    ///< next[c]: successor core id + 1 (0 = none)
  std::vector<Addr> locked;  ///< locked[c]: 1 = wait, 0 = lock handed over

  static McsNodes create(arch::System& sys);
};

class McsLock {
 public:
  /// `tail` is the lock word: holds core id + 1 of the queue tail, 0 = free.
  McsLock(Addr tail, McsNodes& nodes, RmwFlavor casFlavor, WaitKind wait)
      : tail_(tail), nodes_(nodes), casFlavor_(casFlavor), wait_(wait) {}

  sim::Co<void> acquire(Core& core, Backoff& backoff);
  sim::Co<void> release(Core& core, Backoff& backoff);

  [[nodiscard]] Addr tailAddr() const { return tail_; }

 private:
  sim::Co<void> waitForWrite(Core& core, Addr a, sim::Word sleepValue,
                             Backoff& backoff);

  Addr tail_;
  McsNodes& nodes_;
  RmwFlavor casFlavor_;
  WaitKind wait_;
};

}  // namespace colibri::sync
