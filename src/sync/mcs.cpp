#include "sync/mcs.hpp"

#include "sim/check.hpp"

namespace colibri::sync {

const char* toString(WaitKind w) {
  return w == WaitKind::kPoll ? "poll" : "mwait";
}

McsNodes McsNodes::create(arch::System& sys) {
  McsNodes n;
  const auto cores = sys.numCores();
  n.next.reserve(cores);
  n.locked.reserve(cores);
  for (sim::CoreId c = 0; c < cores; ++c) {
    // Two words in the core's own tile: spinning/sleeping stays local.
    auto words = sys.allocator().allocLocal(sys.topology().tileOfCore(c), 2);
    n.next.push_back(words[0]);
    n.locked.push_back(words[1]);
    sys.poke(words[0], 0);
    sys.poke(words[1], 0);
  }
  return n;
}

sim::Co<void> McsLock::waitForWrite(Core& core, Addr a, sim::Word sleepValue,
                                    Backoff& backoff) {
  // Wait until *a != sleepValue. kPoll busy-loads with a short pause;
  // kMwait sleeps in the bank's reservation queue.
  if (wait_ == WaitKind::kPoll) {
    while (true) {
      const auto v = co_await core.load(a);
      if (v.value != sleepValue) {
        co_return;
      }
      co_await core.delay(8);  // local-bank spin pacing
    }
  }
  while (true) {
    const auto r = co_await core.mwait(a, sleepValue);
    if (r.ok && r.value != sleepValue) {
      co_return;
    }
    if (!r.ok) {
      // Monitor queue full: fall back to a paced retry.
      co_await core.delay(backoff.next());
      continue;
    }
    // Spurious wake (a write left the value equal): re-arm immediately.
  }
}

sim::Co<void> McsLock::acquire(Core& core, Backoff& backoff) {
  const sim::CoreId c = core.id();
  const sim::Word self = c + 1;
  // Node init must be globally visible before we enter the queue: acked
  // stores (amoswap used as store-with-response) act as the fence.
  (void)co_await core.amoSwap(nodes_.next[c], 0);
  (void)co_await core.amoSwap(nodes_.locked[c], 1);

  const auto prev = co_await core.amoSwap(tail_, self);
  if (prev.value == 0) {
    co_return;  // uncontended
  }
  // Link behind the predecessor, then wait for the hand-over write.
  (void)co_await core.store(nodes_.next[prev.value - 1], self);
  co_await waitForWrite(core, nodes_.locked[c], 1, backoff);
}

sim::Co<void> McsLock::release(Core& core, Backoff& backoff) {
  const sim::CoreId c = core.id();
  const sim::Word self = c + 1;

  auto next = co_await core.load(nodes_.next[c]);
  if (next.value == 0) {
    // Nobody visible behind us: try to swing the tail back to free.
    const auto cas =
        co_await compareAndSwap(core, casFlavor_, tail_, self, 0, backoff);
    if (cas.swapped) {
      co_return;
    }
    // A successor is enqueueing: wait for it to link itself.
    co_await waitForWrite(core, nodes_.next[c], 0, backoff);
    next = co_await core.load(nodes_.next[c]);
    COLIBRI_CHECK(next.value != 0);
  }
  // Hand the lock over.
  (void)co_await core.store(nodes_.locked[next.value - 1], 0);
  co_return;
}

}  // namespace colibri::sync
