#include "sync/spinlock.hpp"

#include "sim/check.hpp"

namespace colibri::sync {

const char* toString(SpinLockKind k) {
  switch (k) {
    case SpinLockKind::kAmoTas:
      return "amo-tas";
    case SpinLockKind::kLrscTas:
      return "lrsc-tas";
    case SpinLockKind::kLrwaitTas:
      return "lrwait-tas";
  }
  return "?";
}

namespace {

sim::Co<void> acquireAmoTas(Core& core, Addr lock, Backoff& backoff) {
  while (true) {
    const auto old = co_await core.amoSwap(lock, 1);
    if (old.value == 0) {
      co_return;
    }
    co_await core.delay(backoff.next());
  }
}

sim::Co<void> acquireLrscTas(Core& core, Addr lock, Backoff& backoff) {
  while (true) {
    const auto lr = co_await core.lr(lock);
    if (lr.value != 0) {
      co_await core.delay(backoff.next());
      continue;
    }
    const auto sc = co_await core.sc(lock, 1);
    if (sc.ok) {
      co_return;
    }
    co_await core.delay(backoff.next());
  }
}

sim::Co<void> acquireLrwaitTas(Core& core, Addr lock, Backoff& backoff) {
  while (true) {
    const auto lr = co_await core.lrWait(lock);
    if (!lr.ok) {
      co_await core.delay(backoff.next());  // reservation queue full
      continue;
    }
    if (lr.value == 0) {
      const auto sc = co_await core.scWait(lock, 1);
      if (sc.ok) {
        co_return;
      }
      continue;  // a store interfered; re-enqueue
    }
    // Lock taken: write the value back unchanged to yield the queue (the
    // mandatory SCwait after every LRwait), then back off and re-enqueue.
    (void)co_await core.scWait(lock, lr.value);
    co_await core.delay(backoff.next());
  }
}

}  // namespace

sim::Co<void> acquireLock(Core& core, SpinLockKind kind, Addr lock,
                          Backoff& backoff) {
  switch (kind) {
    case SpinLockKind::kAmoTas:
      return acquireAmoTas(core, lock, backoff);
    case SpinLockKind::kLrscTas:
      return acquireLrscTas(core, lock, backoff);
    case SpinLockKind::kLrwaitTas:
      return acquireLrwaitTas(core, lock, backoff);
  }
  COLIBRI_CHECK_MSG(false, "unknown lock kind");
  return acquireAmoTas(core, lock, backoff);
}

sim::Co<void> releaseLock(Core& core, Addr lock) {
  (void)co_await core.store(lock, 0);
  co_return;
}

}  // namespace colibri::sync
