#include "sync/barrier.hpp"

namespace colibri::sync {

CentralBarrier::CentralBarrier(arch::System& sys, std::uint32_t participants,
                               WaitKind wait)
    : counter_(sys.allocator().allocGlobal(1)),
      sense_(sys.allocator().allocGlobal(1)),
      participants_(participants),
      waitKind_(wait) {
  sys.poke(counter_, 0);
  sys.poke(sense_, 0);
}

sim::Co<void> CentralBarrier::wait(Core& core, sim::Word& localSense,
                                   Backoff& backoff) {
  localSense ^= 1;
  const auto arrived = co_await core.amoAdd(counter_, 1);
  if (arrived.value + 1 == participants_) {
    // Last arrival: reset the counter, then flip the sense. The counter
    // reset is acked so that no straggler of the *next* round can overtake
    // it on a different bank.
    (void)co_await core.amoSwap(counter_, 0);
    (void)co_await core.store(sense_, localSense);
    co_return;
  }
  if (waitKind_ == WaitKind::kPoll) {
    while (true) {
      const auto s = co_await core.load(sense_);
      if (s.value == localSense) {
        co_return;
      }
      co_await core.delay(16);
    }
  }
  while (true) {
    const auto s = co_await core.mwait(sense_, localSense ^ 1);
    if (s.ok && s.value == localSense) {
      co_return;
    }
    if (!s.ok) {
      co_await core.delay(backoff.next());
    }
    // Spurious wake: re-arm.
  }
}

}  // namespace colibri::sync
