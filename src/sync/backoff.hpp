// Backoff policies for retry loops.
//
// The paper's spin-lock baselines use a fixed 128-cycle backoff; the
// related-work section discusses exponential backoff. Both are provided so
// the ablation bench can sweep policies. Jitter (±25%) avoids lockstep
// retry convoys, which otherwise produce artificial periodicity in the
// simulator.
#pragma once

#include <cstdint>

#include "sim/random.hpp"
#include "sim/types.hpp"

namespace colibri::sync {

enum class BackoffKind : std::uint8_t { kNone, kFixed, kExponential };

struct BackoffPolicy {
  BackoffKind kind = BackoffKind::kFixed;
  std::uint32_t base = 128;  ///< cycles (paper's lock experiments use 128)
  std::uint32_t max = 4096;  ///< cap for exponential growth

  static BackoffPolicy none() { return {BackoffKind::kNone, 0, 0}; }
  static BackoffPolicy fixed(std::uint32_t cycles = 128) {
    return {BackoffKind::kFixed, cycles, cycles};
  }
  static BackoffPolicy exponential(std::uint32_t base = 16,
                                   std::uint32_t max = 4096) {
    return {BackoffKind::kExponential, base, max};
  }
};

/// Per-call-site backoff state. Create one per retry loop; call next() on
/// every failure and reset() on success.
class Backoff {
 public:
  Backoff(const BackoffPolicy& policy, sim::Xoshiro256& rng)
      : policy_(policy), rng_(rng), current_(policy.base) {}

  /// Cycles to wait before the next retry (0 for BackoffKind::kNone).
  [[nodiscard]] sim::Cycle next() {
    switch (policy_.kind) {
      case BackoffKind::kNone:
        return 0;
      case BackoffKind::kFixed:
        return jitter(policy_.base);
      case BackoffKind::kExponential: {
        const sim::Cycle wait = jitter(current_);
        current_ = current_ * 2 > policy_.max ? policy_.max : current_ * 2;
        return wait;
      }
    }
    return 0;
  }

  void reset() { current_ = policy_.base; }

 private:
  [[nodiscard]] sim::Cycle jitter(std::uint32_t around) {
    if (around == 0) {
      return 0;
    }
    // Uniform in [0.75, 1.25) * around.
    const std::uint64_t lo = around - around / 4;
    return lo + rng_.below(around / 2 + 1);
  }

  BackoffPolicy policy_;
  sim::Xoshiro256& rng_;
  std::uint32_t current_;
};

}  // namespace colibri::sync
