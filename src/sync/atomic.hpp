// Generic atomic read-modify-write operations over the three hardware
// flavors the paper compares:
//
//   kAmo      — single-instruction AMO (only simple ops like add/swap),
//   kLrsc     — standard LR/SC retry loop (polling, retries),
//   kLrscWait — the paper's LRwait/SCwait pair (polling- and retry-free;
//               the only retry left is the immediate-fail of a full
//               reservation queue, and the rare SCwait failure after an
//               interfering plain store).
//
// These are coroutines that run on a simulated Core; the flavor must match
// the system's adapter (e.g. kLrscWait requires LrscWait or Colibri).
#pragma once

#include <cstdint>

#include "core/core.hpp"
#include "sim/co.hpp"
#include "sim/random.hpp"
#include "sync/backoff.hpp"

namespace colibri::sync {

using arch::Core;
using sim::Addr;
using sim::Word;

enum class RmwFlavor : std::uint8_t { kAmo, kLrsc, kLrscWait };

[[nodiscard]] const char* toString(RmwFlavor f);

/// Cycles of local computation between the load half and the store half of
/// an LR/SC-style RMW (the add + branch of the paper's histogram kernel).
inline constexpr sim::Cycle kRmwComputeCycles = 2;

struct RmwResult {
  Word old = 0;        ///< value observed before the modification
  bool performed = true;  ///< false only when abandoned via `abandon`
};

/// Atomically add `delta` to *a and return the previous value.
/// If `abandon` is non-null and becomes true, the loop may give up at a
/// retry point *before* holding a grant (never between LRwait and SCwait,
/// which would violate the pair constraint) and returns performed=false.
sim::Co<RmwResult> fetchAdd(Core& core, RmwFlavor flavor, Addr a, Word delta,
                            Backoff& backoff, const bool* abandon = nullptr);

struct CasResult {
  Word observed = 0;  ///< value seen (== expected iff swapped)
  bool swapped = false;
};

/// Compare-and-swap via the reservation pair (not available for kAmo).
/// Reservation-based, hence ABA-immune: an SC/SCwait fails on *any*
/// intervening write, not on a value comparison.
/// If `abandon` is non-null and becomes true, the retry loop gives up at a
/// retry point before holding a grant (like fetchAdd) and reports
/// swapped=false — without this, single-slot LR/SC workers whose SCs keep
/// losing the bank's reservation can spin past a stop flag forever.
sim::Co<CasResult> compareAndSwap(Core& core, RmwFlavor flavor, Addr a,
                                  Word expected, Word desired,
                                  Backoff& backoff,
                                  const bool* abandon = nullptr);

}  // namespace colibri::sync
