// Central sense-reversing barrier over the simulated atomics.
//
// Arrivals are counted with an amoadd; the last core flips the sense word,
// releasing the others. Waiters either poll the sense word (with a short
// pause) or sleep on it with Mwait — a textbook use of the paper's Mwait:
// the whole waiting set is woken by the single sense-flip store, draining
// the reservation queue without any polling traffic.
#pragma once

#include <cstdint>

#include "arch/system.hpp"
#include "core/core.hpp"
#include "sim/co.hpp"
#include "sync/backoff.hpp"
#include "sync/mcs.hpp"

namespace colibri::sync {

class CentralBarrier {
 public:
  /// Allocates the counter and sense words. `participants` cores must call
  /// wait() per round.
  CentralBarrier(arch::System& sys, std::uint32_t participants, WaitKind wait);

  /// One barrier episode. Each core keeps its own `localSense` (flipped per
  /// round by this call).
  sim::Co<void> wait(Core& core, sim::Word& localSense, Backoff& backoff);

  [[nodiscard]] Addr counterAddr() const { return counter_; }
  [[nodiscard]] Addr senseAddr() const { return sense_; }

 private:
  Addr counter_;
  Addr sense_;
  std::uint32_t participants_;
  WaitKind waitKind_;
};

}  // namespace colibri::sync
