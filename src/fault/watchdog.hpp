// Simulated-cycle watchdog: converts a hang into a diagnosed failure.
//
// The watchdog is a sim::ProgressProbe: the engine fires it at fixed
// simulated-cycle boundaries (identically under the sequential and the
// parallel engine — the parallel engine caps execution windows at probe
// boundaries, so a probe always observes the state with exactly the events
// before its cycle executed). If no core has retired a *productive*
// operation for `limit` cycles while tasks are still outstanding, the
// probe throws a WatchdogError carrying a structured blame report built by
// the System (per stuck core: pipeline state, outstanding request and
// target bank; per referenced bank: adapter reservation/queue state).
//
// "Productive" excludes LR/LRwait grants and failed SC/SCwait commits: a
// livelocked retry loop keeps retiring LRs forever, so only completed
// work counts as progress. Probes never execute events, never consume
// sequence numbers and never advance simulated time — with no trip, a run
// with the watchdog attached is byte-identical to one without.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "sim/check.hpp"
#include "sim/engine.hpp"
#include "sim/types.hpp"

namespace colibri::fault {

/// Thrown by the watchdog on a trip. Derives from InvariantViolation so
/// every existing catch/rethrow path (SweepRunner, the CLI driver, tests)
/// propagates it; what() contains the summary plus the full blame report.
class WatchdogError : public sim::InvariantViolation {
 public:
  WatchdogError(const std::string& what, std::string report, sim::Cycle at)
      : sim::InvariantViolation(what), report_(std::move(report)), at_(at) {}

  /// The structured blame report alone (what() = summary + report).
  [[nodiscard]] const std::string& report() const { return report_; }
  [[nodiscard]] sim::Cycle trippedAt() const { return at_; }

 private:
  std::string report_;
  sim::Cycle at_;
};

class Watchdog final : public sim::ProgressProbe {
 public:
  /// Callbacks into the owning System (kept as std::functions so fault/
  /// never depends on arch/). All are invoked at serial points only.
  struct Hooks {
    /// Max over all cores of the last productive-retirement cycle.
    std::function<sim::Cycle()> lastProgress;
    /// True when every spawned task has completed (no trip possible).
    std::function<bool()> allDone;
    /// Build the blame report for a trip at the given cycle.
    std::function<std::string(sim::Cycle)> blame;
  };

  Watchdog(sim::Cycle limit, Hooks hooks);

  [[nodiscard]] sim::Cycle limit() const { return limit_; }
  [[nodiscard]] sim::Cycle nextProbeAt() const override { return next_; }

  /// Throws WatchdogError when `at - lastProgress() >= limit` with tasks
  /// still outstanding; otherwise just schedules the next probe. Trip
  /// latency is bounded by limit + limit/8 simulated cycles.
  void onProbe(sim::Cycle at) override;

 private:
  sim::Cycle limit_;
  sim::Cycle step_;
  sim::Cycle next_;
  Hooks hooks_;
};

}  // namespace colibri::fault
