#include "fault/demo.hpp"

#include <memory>
#include <vector>

#include "arch/system.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"
#include "sync/atomic.hpp"
#include "sync/backoff.hpp"

namespace colibri::fault {
namespace {

// The bug: a reservation is acquired and never released. On the
// single-slot adapter this strands the bank's only slot with core 0.
sim::Task strandLr(arch::Core& core, sim::Addr a) {
  (void)co_await core.lr(a);
  co_return;  // no SC — the slot is never freed
}

// Honest workers: unbounded fetchAdd loops. Their LRs place no
// reservation (slot busy), their SCs fail, and none of those retirements
// count as productive — the watchdog's exact trigger condition.
sim::Task increment(arch::Core& core, sim::Addr a, sim::Xoshiro256& rng) {
  sync::Backoff backoff(sync::BackoffPolicy::fixed(32), rng);
  for (;;) {
    (void)co_await sync::fetchAdd(core, sync::RmwFlavor::kLrsc, a, 1,
                                  backoff);
  }
}

}  // namespace

void runStrandedLr(arch::SystemConfig cfg, sim::Cycle horizon) {
  cfg.adapter = arch::AdapterKind::kLrscSingle;
  arch::System sys(cfg);
  const sim::Addr counter = 0;
  sys.poke(counter, 0);

  std::vector<std::unique_ptr<sim::Xoshiro256>> rngs;
  rngs.reserve(cfg.numCores);
  for (sim::CoreId c = 0; c < cfg.numCores; ++c) {
    rngs.push_back(
        std::make_unique<sim::Xoshiro256>(sim::Xoshiro256::forStream(
            cfg.seed, c)));
  }

  sys.spawn(0, strandLr(sys.core(0), counter));
  for (sim::CoreId c = 1; c < cfg.numCores; ++c) {
    sys.spawn(c, increment(sys.core(c), counter, *rngs[c]));
  }
  sys.runUntil(horizon);
  sys.rethrowFailures();
}

}  // namespace colibri::fault
