// Deterministic fault injection: manufactured adversarial timing.
//
// A FaultPlan turns a seed plus per-site probabilities into injection
// decisions at four sites threaded through the existing layers:
//
//   net_delay — extra delivery cycles on a network hop (arch/network)
//   sc_fail   — a would-succeed SC/SCwait commit spuriously fails
//               (atomics adapters; the sync retry loops absorb it)
//   evict     — a held reservation is dropped (lrsc_single slot,
//               lrsc_table entry, lrscwait served-head reservation)
//   stall     — transient extra bank service latency (arch/bank)
//
// Determinism contract: every decision is a *stateless* splitmix64 hash of
// (fault seed, site salt, entity ids, simulated cycle) — no counters, no
// shared RNG stream — so an injection fires at exactly the same simulated
// point regardless of reruns, SweepRunner --threads, or --engine-threads.
// The injected magnitudes only ever *add* latency, which keeps the
// parallel engine's conservative cross-shard lookahead valid.
//
// Canned profiles (net_jitter, sc_storm, evict_churn, chaos) are
// registered like wgen presets and selected with `--fault <profile>`;
// individual `--fault-*` flags overlay single sites. Injected faults are
// counted per site (sharded like obs::Registry counters, summed at serial
// points) and surfaced as deterministic-class `fault.*` metrics and trace
// instants.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace colibri::obs {
class Tracer;
}

namespace colibri::fault {

/// Per-site probabilities and magnitudes. All-zero (the default) disables
/// injection entirely: no FaultPlan is constructed and every site stays a
/// single null-pointer test.
struct FaultConfig {
  /// Decision seed; 0 derives one from the system seed (so repetitions
  /// explore distinct fault schedules unless pinned with --fault-seed).
  std::uint64_t seed = 0;

  double netDelayP = 0.0;         ///< per network hop (request or response)
  std::uint32_t netDelayMax = 0;  ///< extra delivery cycles in [1, max]
  double scFailP = 0.0;           ///< per would-succeed SC/SCwait commit
  double evictP = 0.0;            ///< per handled request at a bank
  double stallP = 0.0;            ///< per bank service grant
  std::uint32_t stallMax = 0;     ///< extra service cycles in [1, max]

  [[nodiscard]] bool enabled() const {
    return netDelayP > 0.0 || scFailP > 0.0 || evictP > 0.0 || stallP > 0.0;
  }

  /// Throws sim::InvariantViolation on out-of-range probabilities or a
  /// zero magnitude with a nonzero probability.
  void validate() const;
};

/// Injection sites, in reporting order.
enum class Site : std::uint8_t { kNetDelay = 0, kScFail, kEvict, kStall };
inline constexpr std::size_t kSiteCount = 4;

[[nodiscard]] const char* toString(Site s);

/// Per-site injected-fault counts over a window (reset with the other
/// window counters). Zero everywhere when injection is off.
struct FaultCounters {
  std::array<std::uint64_t, kSiteCount> injected{};

  [[nodiscard]] std::uint64_t at(Site s) const {
    return injected[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t n = 0;
    for (const auto v : injected) {
      n += v;
    }
    return n;
  }
};

/// Canned profile: a named FaultConfig, registered like a wgen preset.
struct Profile {
  std::string name;
  std::string description;
  FaultConfig config;
};

/// All canned profiles, in presentation order.
[[nodiscard]] const std::vector<Profile>& profiles();

/// Look up a profile by name; nullptr if unknown ("off" is not a profile).
[[nodiscard]] const Profile* findProfile(const std::string& name);

/// The runtime decision engine. One per System; the network, the banks and
/// the adapters hold a raw pointer that is null when injection is off.
class FaultPlan {
 public:
  /// `config.seed` must already be resolved (nonzero) by the caller.
  explicit FaultPlan(const FaultConfig& config);

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t seed() const { return cfg_.seed; }

  /// Trace-instant sink (null = off). Set once at System construction,
  /// before any event runs.
  void setTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Size the per-shard counter slots; mirrors Registry::setShardSlots.
  void setShardSlots(std::uint32_t numShards);

  // --- Decision points (called from simulation hot paths) -----------------
  /// True when the network must clamp instead of hard-check its
  /// per-(bank, class) FIFO arrival invariant.
  [[nodiscard]] bool netDelayActive() const { return netThreshold_ != 0; }

  /// Extra delivery cycles for the hop core<->bank at cycle `at`
  /// (0 = no fault). `response` distinguishes the two directions.
  [[nodiscard]] sim::Cycle netDelay(sim::CoreId core, sim::BankId bank,
                                    bool response, sim::Cycle at);

  /// Should this would-succeed SC/SCwait commit spuriously fail?
  [[nodiscard]] bool scFail(sim::BankId bank, sim::CoreId core, sim::Addr a,
                            sim::Cycle at);

  /// Should the bank drop a held reservation while handling this request?
  [[nodiscard]] bool evict(sim::BankId bank, sim::CoreId core, sim::Cycle at);

  /// Victim index in [0, bound) for an eviction that must pick one of
  /// several held reservations (lrsc_table). Pure; not counted.
  [[nodiscard]] std::uint32_t evictVictim(sim::BankId bank, sim::Cycle at,
                                          std::uint32_t bound) const;

  /// Extra service cycles for the request granted at `at` (0 = no fault).
  [[nodiscard]] sim::Cycle stall(sim::BankId bank, sim::CoreId core,
                                 sim::Cycle at);

  // --- Reads (serial points only) -----------------------------------------
  [[nodiscard]] FaultCounters counters() const;
  void resetCounters();

 private:
  [[nodiscard]] bool decide(std::uint64_t salt, std::uint64_t a,
                            std::uint64_t b, sim::Cycle at,
                            std::uint64_t threshold) const;
  [[nodiscard]] std::uint64_t mix(std::uint64_t salt, std::uint64_t a,
                                  std::uint64_t b, sim::Cycle at) const;
  void count(Site s);

  FaultConfig cfg_;
  std::uint64_t netThreshold_ = 0;
  std::uint64_t scThreshold_ = 0;
  std::uint64_t evictThreshold_ = 0;
  std::uint64_t stallThreshold_ = 0;
  obs::Tracer* tracer_ = nullptr;
  /// slots_[slot][site]: per-execution-context injection counts (slot 0 =
  /// serial, slots 1..n = parallel shards), summed by counters().
  std::vector<std::array<std::uint64_t, kSiteCount>> slots_;
};

}  // namespace colibri::fault
