// Stranded-LR hang demo: a deliberately re-introduced protocol bug whose
// only symptom is silence — exactly what the watchdog exists to diagnose.
//
// Core 0 issues a raw LR and returns without ever issuing the matching SC.
// On the single-slot adapter (MemPool-style) the reservation slot stays
// held by core 0 forever: every other core's LR places no reservation, its
// SC fails, and the fetchAdd retry loops spin for eternity. No invariant
// check fires — the system is "making events", just no progress. With the
// watchdog enabled the run stops in bounded simulated time with a blame
// report naming the owning core and the stranded reservation slot.
//
// Shared by the CLI (`--hang-demo`) and the fault tests so both exercise
// the identical scenario.
#pragma once

#include "arch/config.hpp"
#include "sim/types.hpp"

namespace colibri::fault {

/// Run the stranded-LR scenario on `cfg` (the adapter is forced to
/// kLrscSingle, the geometry and watchdog settings are taken as given)
/// until `horizon`. Throws WatchdogError iff the watchdog is enabled and
/// trips; returns normally when it is disabled (the hang runs silently to
/// the horizon — the pre-watchdog behavior).
void runStrandedLr(arch::SystemConfig cfg, sim::Cycle horizon);

}  // namespace colibri::fault
