#include "fault/watchdog.hpp"

#include <sstream>

namespace colibri::fault {

Watchdog::Watchdog(sim::Cycle limit, Hooks hooks)
    : limit_(limit),
      step_(limit / 8 > 0 ? limit / 8 : 1),
      next_(limit),
      hooks_(std::move(hooks)) {
  COLIBRI_CHECK_MSG(limit > 0, "watchdog: limit must be positive");
}

void Watchdog::onProbe(sim::Cycle at) {
  next_ = at + step_;
  const sim::Cycle last = hooks_.lastProgress();
  if (at < last || at - last < limit_ || hooks_.allDone()) {
    return;
  }
  std::string report = hooks_.blame ? hooks_.blame(at) : std::string{};
  std::ostringstream what;
  what << "watchdog: no core retired a productive operation for "
       << (at - last) << " simulated cycles (limit " << limit_ << ", now "
       << at << ", last progress at " << last << ")";
  if (!report.empty()) {
    what << '\n' << report;
  }
  throw WatchdogError(what.str(), std::move(report), at);
}

}  // namespace colibri::fault
