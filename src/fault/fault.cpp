#include "fault/fault.hpp"

#include "obs/trace.hpp"
#include "sim/check.hpp"
#include "sim/parallel.hpp"
#include "sim/random.hpp"

namespace colibri::fault {

namespace {

// Site/direction salts: distinct constants so the same (core, bank, cycle)
// tuple yields independent decisions at every site.
constexpr std::uint64_t kSaltNetRequest = 0xFA17'0001'9E37'79B9ULL;
constexpr std::uint64_t kSaltNetResponse = 0xFA17'0002'C2B2'AE35ULL;
constexpr std::uint64_t kSaltNetMagnitude = 0xFA17'0003'165F'67B1ULL;
constexpr std::uint64_t kSaltScFail = 0xFA17'0004'27D4'EB2FULL;
constexpr std::uint64_t kSaltEvict = 0xFA17'0005'9E66'95C1ULL;
constexpr std::uint64_t kSaltEvictVictim = 0xFA17'0006'85EB'CA77ULL;
constexpr std::uint64_t kSaltStall = 0xFA17'0007'94D0'49BBULL;
constexpr std::uint64_t kSaltStallMagnitude = 0xFA17'0008'BF58'476DULL;

/// Probability -> 53-bit acceptance threshold. The comparison runs on
/// `hash >> 11` (53 uniform bits), sidestepping double->uint64 overflow at
/// P == 1 (threshold 2^53 accepts every 53-bit value).
std::uint64_t thresholdOf(double p) {
  if (p <= 0.0) {
    return 0;
  }
  if (p >= 1.0) {
    return 1ULL << 53;
  }
  return static_cast<std::uint64_t>(p * 9007199254740992.0);  // P * 2^53
}

void checkProbability(const char* name, double p) {
  COLIBRI_CHECK_MSG(p >= 0.0 && p <= 1.0,
                    "fault: " << name << " probability " << p
                              << " outside [0, 1]");
}

// Trace-instant names must point at static storage (obs::Tracer keeps
// string_views).
constexpr const char* kInstantName[kSiteCount] = {
    "fault.net_delay", "fault.sc_fail", "fault.evict", "fault.stall"};

}  // namespace

void FaultConfig::validate() const {
  checkProbability("net-delay", netDelayP);
  checkProbability("sc-fail", scFailP);
  checkProbability("evict", evictP);
  checkProbability("stall", stallP);
  COLIBRI_CHECK_MSG(netDelayP == 0.0 || netDelayMax >= 1,
                    "fault: net-delay needs a max >= 1 cycle");
  COLIBRI_CHECK_MSG(stallP == 0.0 || stallMax >= 1,
                    "fault: stall needs a max >= 1 cycle");
}

const char* toString(Site s) {
  switch (s) {
    case Site::kNetDelay:
      return "net_delay";
    case Site::kScFail:
      return "sc_fail";
    case Site::kEvict:
      return "evict";
    case Site::kStall:
      return "stall";
  }
  return "?";
}

const std::vector<Profile>& profiles() {
  static const std::vector<Profile> kProfiles = [] {
    std::vector<Profile> v;
    {
      Profile p;
      p.name = "net_jitter";
      p.description = "15% of hops take up to 12 extra delivery cycles";
      p.config.netDelayP = 0.15;
      p.config.netDelayMax = 12;
      v.push_back(std::move(p));
    }
    {
      Profile p;
      p.name = "sc_storm";
      p.description = "25% of would-succeed SC/SCwait commits spuriously fail";
      p.config.scFailP = 0.25;
      v.push_back(std::move(p));
    }
    {
      Profile p;
      p.name = "evict_churn";
      p.description = "5% of bank requests drop a held reservation";
      p.config.evictP = 0.05;
      v.push_back(std::move(p));
    }
    {
      Profile p;
      p.name = "chaos";
      p.description = "all four sites at once (net 8%/8, sc 15%, evict 2%, "
                      "stall 10%/6)";
      p.config.netDelayP = 0.08;
      p.config.netDelayMax = 8;
      p.config.scFailP = 0.15;
      p.config.evictP = 0.02;
      p.config.stallP = 0.10;
      p.config.stallMax = 6;
      v.push_back(std::move(p));
    }
    return v;
  }();
  return kProfiles;
}

const Profile* findProfile(const std::string& name) {
  for (const auto& p : profiles()) {
    if (p.name == name) {
      return &p;
    }
  }
  return nullptr;
}

FaultPlan::FaultPlan(const FaultConfig& config) : cfg_(config) {
  cfg_.validate();
  COLIBRI_CHECK_MSG(cfg_.seed != 0, "fault: plan seed must be resolved");
  netThreshold_ = thresholdOf(cfg_.netDelayP);
  scThreshold_ = thresholdOf(cfg_.scFailP);
  evictThreshold_ = thresholdOf(cfg_.evictP);
  stallThreshold_ = thresholdOf(cfg_.stallP);
  slots_.emplace_back();
}

void FaultPlan::setShardSlots(std::uint32_t numShards) {
  slots_.assign(static_cast<std::size_t>(numShards) + 1, {});
}

std::uint64_t FaultPlan::mix(std::uint64_t salt, std::uint64_t a,
                             std::uint64_t b, sim::Cycle at) const {
  std::uint64_t s = cfg_.seed ^ salt;
  s ^= 0x9e3779b97f4a7c15ULL * (a + 1);
  s ^= 0xbf58476d1ce4e5b9ULL * (b + 2);
  s ^= 0x94d049bb133111ebULL * (at + 3);
  return sim::splitmix64(s);
}

bool FaultPlan::decide(std::uint64_t salt, std::uint64_t a, std::uint64_t b,
                       sim::Cycle at, std::uint64_t threshold) const {
  if (threshold == 0) {
    return false;
  }
  return (mix(salt, a, b, at) >> 11) < threshold;
}

void FaultPlan::count(Site s) {
  const auto slot = static_cast<std::size_t>(
      sim::ParallelDispatch::currentWindowShard() + 1);
  slots_[slot][static_cast<std::size_t>(s)]++;
}

sim::Cycle FaultPlan::netDelay(sim::CoreId core, sim::BankId bank,
                               bool response, sim::Cycle at) {
  const std::uint64_t salt = response ? kSaltNetResponse : kSaltNetRequest;
  if (!decide(salt, core, bank, at, netThreshold_)) {
    return 0;
  }
  count(Site::kNetDelay);
  if (tracer_ != nullptr) {
    // Attribute the instant to the track whose execution context made the
    // decision (request hops route on the core side, response hops on the
    // bank side), so per-track pushes never cross parallel-engine shards.
    if (response) {
      tracer_->onFaultBank(bank, kInstantName[0], at);
    } else {
      tracer_->onFaultCore(core, kInstantName[0], at);
    }
  }
  const std::uint64_t h = mix(kSaltNetMagnitude, core, bank, at);
  return 1 + static_cast<sim::Cycle>(h % cfg_.netDelayMax);
}

bool FaultPlan::scFail(sim::BankId bank, sim::CoreId core, sim::Addr a,
                       sim::Cycle at) {
  if (!decide(kSaltScFail, (static_cast<std::uint64_t>(bank) << 32) | core, a,
              at, scThreshold_)) {
    return false;
  }
  count(Site::kScFail);
  if (tracer_ != nullptr) {
    tracer_->onFaultBank(bank, kInstantName[1], at);
  }
  return true;
}

bool FaultPlan::evict(sim::BankId bank, sim::CoreId core, sim::Cycle at) {
  if (!decide(kSaltEvict, bank, core, at, evictThreshold_)) {
    return false;
  }
  count(Site::kEvict);
  if (tracer_ != nullptr) {
    tracer_->onFaultBank(bank, kInstantName[2], at);
  }
  return true;
}

std::uint32_t FaultPlan::evictVictim(sim::BankId bank, sim::Cycle at,
                                     std::uint32_t bound) const {
  if (bound <= 1) {
    return 0;
  }
  return static_cast<std::uint32_t>(mix(kSaltEvictVictim, bank, 0, at) %
                                    bound);
}

sim::Cycle FaultPlan::stall(sim::BankId bank, sim::CoreId core,
                            sim::Cycle at) {
  if (!decide(kSaltStall, bank, core, at, stallThreshold_)) {
    return 0;
  }
  count(Site::kStall);
  if (tracer_ != nullptr) {
    tracer_->onFaultBank(bank, kInstantName[3], at);
  }
  const std::uint64_t h = mix(kSaltStallMagnitude, bank, core, at);
  return 1 + static_cast<sim::Cycle>(h % cfg_.stallMax);
}

FaultCounters FaultPlan::counters() const {
  FaultCounters out;
  for (const auto& slot : slots_) {
    for (std::size_t i = 0; i < kSiteCount; ++i) {
      out.injected[i] += slot[i];
    }
  }
  return out;
}

void FaultPlan::resetCounters() {
  for (auto& slot : slots_) {
    slot = {};
  }
}

}  // namespace colibri::fault
