// Bank-side atomic adapter interface.
//
// Every memory bank has one adapter in front of it (Fig. 1 of the paper).
// The adapter owns all reservation state for its bank and decides when and
// what to respond. The Bank provides the BankContext services: raw word
// storage, sending responses and protocol messages back into the network,
// and the clock.
//
// Concrete adapters:
//   AmoAdapter        — AMO unit only (baseline roofline).
//   LrscSingleAdapter — one reservation slot per bank (MemPool [5]).
//   LrscTableAdapter  — one reservation per core (ATUN [11]).
//   LrscWaitAdapter   — LRSCwait_q in-order reservation queue (Sec. III-B).
//   ColibriAdapter    — distributed queue controller (Sec. IV).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>

#include "arch/config.hpp"
#include "arch/memop.hpp"
#include "sim/types.hpp"

namespace colibri::fault {
class FaultPlan;
}

namespace colibri::atomics {

using arch::MemRequest;
using arch::MemResponse;
using arch::OpKind;
using sim::Addr;
using sim::BankId;
using sim::CoreId;
using sim::Cycle;
using sim::Word;

/// Services a bank provides to its adapter.
class BankContext {
 public:
  virtual ~BankContext() = default;

  [[nodiscard]] virtual Word read(Addr a) const = 0;
  /// Raw storage write; does NOT trigger reservation invalidation (the
  /// adapter is the one doing the invalidating).
  virtual void writeRaw(Addr a, Word v) = 0;

  /// Send a response to a core through the network.
  virtual void respond(CoreId c, const MemResponse& r) = 0;
  /// Colibri: send a SuccessorUpdate to `target`'s Qnode. `successorIsMwait`
  /// tells the Qnode what kind of wait the successor queued (the bit is
  /// relayed in the eventual WakeUpRequest so the controller can serve the
  /// new head without per-waiter storage).
  virtual void sendSuccessorUpdate(CoreId target, CoreId successor, Addr a,
                                   bool successorIsMwait) = 0;

  [[nodiscard]] virtual Cycle now() const = 0;
  [[nodiscard]] virtual BankId bankId() const = 0;
  [[nodiscard]] virtual std::uint32_t numCores() const = 0;

  /// The fault-injection plan, or nullptr when injection is off (the
  /// default — test mocks and fault-free systems never override this).
  [[nodiscard]] virtual fault::FaultPlan* faultPlan() const {
    return nullptr;
  }
};

/// Per-adapter event counters (feed the energy model and tests).
struct AdapterStats {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t amos = 0;
  std::uint64_t lrGrants = 0;
  std::uint64_t lrFails = 0;  ///< immediate failures (queue full / unsupported)
  std::uint64_t scSuccesses = 0;
  std::uint64_t scFailures = 0;
  std::uint64_t mwaitWakes = 0;
  std::uint64_t successorUpdates = 0;
  std::uint64_t wakeUpRequests = 0;

  void reset() { *this = AdapterStats{}; }
};

class AtomicAdapter {
 public:
  explicit AtomicAdapter(BankContext& ctx) : ctx_(ctx) {}
  virtual ~AtomicAdapter() = default;
  AtomicAdapter(const AtomicAdapter&) = delete;
  AtomicAdapter& operator=(const AtomicAdapter&) = delete;

  /// Process one request that has cleared the bank port.
  virtual void handle(const MemRequest& req) = 0;

  /// Drop all reservation state (between benchmark phases).
  virtual void reset() { stats_.reset(); }

  /// One-line reservation/queue state summary for watchdog blame reports
  /// (e.g. which core owns the slot). Default: no interesting state.
  virtual void describeState(std::ostream& os) const;

  [[nodiscard]] const AdapterStats& stats() const { return stats_; }
  [[nodiscard]] AdapterStats& mutableStats() { return stats_; }

 protected:
  /// Handle load/store/AMO uniformly: every write goes through onWrite()
  /// first so the concrete adapter can invalidate reservations / wake
  /// monitors. Returns true if the request was one of those basic ops.
  bool handleBasic(const MemRequest& req);

  /// Called for every write (store, AMO, successful SC/SCwait) to `a`
  /// *before* the new value is committed.
  virtual void onWrite(Addr a) { (void)a; }

  BankContext& ctx_;
  AdapterStats stats_;
};

/// Factory: build the adapter selected by `cfg.adapter` for one bank.
std::unique_ptr<AtomicAdapter> makeAdapter(const arch::SystemConfig& cfg,
                                           BankContext& ctx);

}  // namespace colibri::atomics
