// Colibri memory-controller adapter (paper Section IV).
//
// Instead of a full reservation queue, the controller keeps only a small,
// parameterizable set of queue slots, each holding {address, head core,
// tail core, state}. Waiting cores form a distributed linked list through
// their Qnodes:
//
//   LRwait to a new address   -> allocate a slot, grant immediately
//   LRwait to a queued address-> retarget tail, send SuccessorUpdate to the
//                                previous tail's Qnode (no response yet)
//   SCwait from the head      -> commit (if the reservation survived),
//                                answer with lastInQueue, and either free
//                                the slot (head == tail) or await the
//                                WakeUpRequest bounced via the head's Qnode
//   WakeUpRequest(successor)  -> advance head and serve the new head
//   Mwait                     -> like LRwait but the head sleeps until a
//                                write; a write drains the queue head-first
//
// The controller stores O(Q) state regardless of core count — the paper's
// linear-scaling argument. The successor's operation type (LRwait vs Mwait)
// travels inside SuccessorUpdate/WakeUpRequest so a woken head can be
// served without per-waiter storage (see memop.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "atomics/adapter.hpp"

namespace colibri::atomics {

class ColibriAdapter final : public AtomicAdapter {
 public:
  ColibriAdapter(BankContext& ctx, std::uint32_t queuesPerController)
      : AtomicAdapter(ctx), slots_(queuesPerController) {}

  void handle(const MemRequest& req) override;
  void reset() override;
  void describeState(std::ostream& os) const override;

  // --- Introspection for tests & invariant checks -----------------------
  enum class SlotState : std::uint8_t {
    kFree,
    kGranted,          ///< head holds an LRwait grant (or cascade grant)
    kMwaitMonitoring,  ///< head is an Mwait waiting for a write
    kAwaitingWakeUp,   ///< head dequeued; WakeUpRequest in flight
  };

  struct Slot {
    SlotState state = SlotState::kFree;
    Addr addr = 0;
    CoreId head = sim::kNoCore;
    CoreId tail = sim::kNoCore;
    bool resvValid = false;  // meaningful in kGranted
  };

  [[nodiscard]] const std::vector<Slot>& slots() const { return slots_; }
  [[nodiscard]] std::size_t freeSlots() const;
  /// The core currently granted on `a`, if any (for mutual-exclusion checks).
  [[nodiscard]] std::optional<CoreId> grantedCore(Addr a) const;

 private:
  void onWrite(Addr a) override;

  [[nodiscard]] Slot* find(Addr a);
  [[nodiscard]] Slot* allocate();

  void handleWait(const MemRequest& req);
  void handleScWait(const MemRequest& req);
  void handleWakeUp(const MemRequest& req);

  /// Serve `core` as the new head of `slot` after a queue advance. A write
  /// necessarily happened since the core enqueued (SCwait commit or the
  /// store that triggered an Mwait drain), so Mwaits are answered
  /// immediately; LRwaits get a grant with a fresh reservation.
  void serveNewHead(Slot& slot, CoreId core, bool isMwait);

  std::vector<Slot> slots_;
};

}  // namespace colibri::atomics
