#include "atomics/adapter.hpp"

#include <ostream>

#include "atomics/amo.hpp"
#include "atomics/colibri.hpp"
#include "atomics/lrsc_single.hpp"
#include "atomics/lrsc_table.hpp"
#include "atomics/lrscwait.hpp"
#include "sim/check.hpp"

namespace colibri::atomics {

void AtomicAdapter::describeState(std::ostream& os) const {
  os << "no reservation state";
}

std::unique_ptr<AtomicAdapter> makeAdapter(const arch::SystemConfig& cfg,
                                           BankContext& ctx) {
  switch (cfg.adapter) {
    case arch::AdapterKind::kAmoOnly:
      return std::make_unique<AmoAdapter>(ctx);
    case arch::AdapterKind::kLrscSingle:
      return std::make_unique<LrscSingleAdapter>(ctx);
    case arch::AdapterKind::kLrscTable:
      return std::make_unique<LrscTableAdapter>(ctx);
    case arch::AdapterKind::kLrscWait:
      return std::make_unique<LrscWaitAdapter>(ctx, cfg.lrscWaitQueueCapacity);
    case arch::AdapterKind::kColibri:
      return std::make_unique<ColibriAdapter>(ctx,
                                              cfg.colibriQueuesPerController);
  }
  COLIBRI_CHECK_MSG(false, "unknown adapter kind");
  return nullptr;
}

}  // namespace colibri::atomics
