#include "atomics/lrsc_table.hpp"

#include <ostream>

#include "fault/fault.hpp"
#include "sim/check.hpp"

namespace colibri::atomics {

void LrscTableAdapter::handle(const MemRequest& req) {
  if (fault::FaultPlan* fp = ctx_.faultPlan();
      fp != nullptr && fp->evict(ctx_.bankId(), req.core, ctx_.now())) {
    // Injected eviction: drop one held reservation, hash-picked among the
    // valid entries so churn spreads across cores. The victim's SC fails
    // and its retry loop re-grants.
    std::uint32_t held = 0;
    for (const Entry& e : entries_) {
      held += e.valid ? 1 : 0;
    }
    if (held > 0) {
      std::uint32_t victim =
          fp->evictVictim(ctx_.bankId(), ctx_.now(), held);
      for (Entry& e : entries_) {
        if (e.valid && victim-- == 0) {
          e.valid = false;
          break;
        }
      }
    }
  }
  if (handleBasic(req)) {
    return;
  }
  switch (req.kind) {
    case OpKind::kLr: {
      COLIBRI_CHECK(req.core < entries_.size());
      entries_[req.core] = Entry{true, req.addr};
      ++stats_.lrGrants;
      ctx_.respond(req.core, MemResponse{ctx_.read(req.addr), true, true});
      return;
    }
    case OpKind::kSc: {
      COLIBRI_CHECK(req.core < entries_.size());
      Entry& e = entries_[req.core];
      bool success = e.valid && e.addr == req.addr;
      if (success) {
        if (fault::FaultPlan* fp = ctx_.faultPlan();
            fp != nullptr &&
            fp->scFail(ctx_.bankId(), req.core, req.addr, ctx_.now())) {
          success = false;  // spurious failure; the entry clears either way
        }
      }
      e.valid = false;
      if (success) {
        ++stats_.scSuccesses;
        // Commit, then invalidate every other reservation on this address.
        ctx_.writeRaw(req.addr, req.value);
        onWrite(req.addr);
      } else {
        ++stats_.scFailures;
      }
      ctx_.respond(req.core, MemResponse{0, success, true});
      return;
    }
    default:
      COLIBRI_CHECK_MSG(false, "LrscTableAdapter cannot handle op "
                                   << arch::toString(req.kind));
  }
}

void LrscTableAdapter::onWrite(Addr a) {
  for (Entry& e : entries_) {
    if (e.valid && e.addr == a) {
      e.valid = false;
    }
  }
}

void LrscTableAdapter::reset() {
  AtomicAdapter::reset();
  for (Entry& e : entries_) {
    e = Entry{};
  }
}

void LrscTableAdapter::describeState(std::ostream& os) const {
  std::uint32_t held = 0;
  for (const Entry& e : entries_) {
    held += e.valid ? 1 : 0;
  }
  os << held << " of " << entries_.size() << " reservation entries held";
  if (held > 0) {
    os << " (cores:";
    for (std::size_t c = 0; c < entries_.size(); ++c) {
      if (entries_[c].valid) {
        os << ' ' << c;
      }
    }
    os << ')';
  }
}

}  // namespace colibri::atomics
