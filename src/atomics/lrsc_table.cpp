#include "atomics/lrsc_table.hpp"

#include "sim/check.hpp"

namespace colibri::atomics {

void LrscTableAdapter::handle(const MemRequest& req) {
  if (handleBasic(req)) {
    return;
  }
  switch (req.kind) {
    case OpKind::kLr: {
      COLIBRI_CHECK(req.core < entries_.size());
      entries_[req.core] = Entry{true, req.addr};
      ++stats_.lrGrants;
      ctx_.respond(req.core, MemResponse{ctx_.read(req.addr), true, true});
      return;
    }
    case OpKind::kSc: {
      COLIBRI_CHECK(req.core < entries_.size());
      Entry& e = entries_[req.core];
      const bool success = e.valid && e.addr == req.addr;
      e.valid = false;
      if (success) {
        ++stats_.scSuccesses;
        // Commit, then invalidate every other reservation on this address.
        ctx_.writeRaw(req.addr, req.value);
        onWrite(req.addr);
      } else {
        ++stats_.scFailures;
      }
      ctx_.respond(req.core, MemResponse{0, success, true});
      return;
    }
    default:
      COLIBRI_CHECK_MSG(false, "LrscTableAdapter cannot handle op "
                                   << arch::toString(req.kind));
  }
}

void LrscTableAdapter::onWrite(Addr a) {
  for (Entry& e : entries_) {
    if (e.valid && e.addr == a) {
      e.valid = false;
    }
  }
}

void LrscTableAdapter::reset() {
  AtomicAdapter::reset();
  for (Entry& e : entries_) {
    e = Entry{};
  }
}

}  // namespace colibri::atomics
