#include "atomics/lrsc_single.hpp"

#include <ostream>

#include "fault/fault.hpp"
#include "sim/check.hpp"

namespace colibri::atomics {

void LrscSingleAdapter::handle(const MemRequest& req) {
  if (fault::FaultPlan* fp = ctx_.faultPlan();
      fp != nullptr && valid_ &&
      fp->evict(ctx_.bankId(), req.core, ctx_.now())) {
    // Injected eviction: the held reservation is dropped before this
    // request is processed. The owner's next SC fails and its retry loop
    // re-grants — faults cost retries, never correctness.
    valid_ = false;
  }
  if (handleBasic(req)) {
    return;
  }
  switch (req.kind) {
    case OpKind::kLr: {
      // Take the slot only if it is free (or already ours — re-LR moves
      // the reservation). A busy slot stays with its owner; the newcomer
      // reads the value but will fail its SC.
      if (!valid_ || core_ == req.core) {
        valid_ = true;
        core_ = req.core;
        addr_ = req.addr;
        ++stats_.lrGrants;
      } else {
        ++stats_.lrFails;  // no reservation placed
      }
      ctx_.respond(req.core, MemResponse{ctx_.read(req.addr), true, true});
      return;
    }
    case OpKind::kSc: {
      bool success = valid_ && core_ == req.core && addr_ == req.addr;
      if (success) {
        if (fault::FaultPlan* fp = ctx_.faultPlan();
            fp != nullptr &&
            fp->scFail(ctx_.bankId(), req.core, req.addr, ctx_.now())) {
          // Spurious SC failure: the commit is dropped as if the
          // reservation had just been invalidated; the slot frees and the
          // owner retries.
          success = false;
        }
      }
      if (success) {
        valid_ = false;
        commit(req);
      } else {
        if (valid_ && core_ == req.core) {
          valid_ = false;  // own SC to the wrong address frees the slot
        }
        ++stats_.scFailures;
      }
      ctx_.respond(req.core, MemResponse{0, success, true});
      return;
    }
    default:
      COLIBRI_CHECK_MSG(false, "LrscSingleAdapter cannot handle op "
                                   << arch::toString(req.kind));
  }
}

void LrscSingleAdapter::commit(const MemRequest& req) {
  ++stats_.scSuccesses;
  ctx_.writeRaw(req.addr, req.value);
  onWrite(req.addr);
}

void LrscSingleAdapter::onWrite(Addr a) {
  if (valid_ && addr_ == a) {
    valid_ = false;
  }
}

void LrscSingleAdapter::reset() {
  AtomicAdapter::reset();
  valid_ = false;
  core_ = sim::kNoCore;
}

void LrscSingleAdapter::describeState(std::ostream& os) const {
  if (valid_) {
    os << "reservation slot held by core " << core_ << " on addr " << addr_;
  } else {
    os << "reservation slot free";
  }
}

}  // namespace colibri::atomics
