#include "atomics/lrsc_single.hpp"

#include "sim/check.hpp"

namespace colibri::atomics {

void LrscSingleAdapter::handle(const MemRequest& req) {
  if (handleBasic(req)) {
    return;
  }
  switch (req.kind) {
    case OpKind::kLr: {
      // Take the slot only if it is free (or already ours — re-LR moves
      // the reservation). A busy slot stays with its owner; the newcomer
      // reads the value but will fail its SC.
      if (!valid_ || core_ == req.core) {
        valid_ = true;
        core_ = req.core;
        addr_ = req.addr;
        ++stats_.lrGrants;
      } else {
        ++stats_.lrFails;  // no reservation placed
      }
      ctx_.respond(req.core, MemResponse{ctx_.read(req.addr), true, true});
      return;
    }
    case OpKind::kSc: {
      const bool success = valid_ && core_ == req.core && addr_ == req.addr;
      if (success) {
        valid_ = false;
        commit(req);
      } else {
        if (valid_ && core_ == req.core) {
          valid_ = false;  // own SC to the wrong address frees the slot
        }
        ++stats_.scFailures;
      }
      ctx_.respond(req.core, MemResponse{0, success, true});
      return;
    }
    default:
      COLIBRI_CHECK_MSG(false, "LrscSingleAdapter cannot handle op "
                                   << arch::toString(req.kind));
  }
}

void LrscSingleAdapter::commit(const MemRequest& req) {
  ++stats_.scSuccesses;
  ctx_.writeRaw(req.addr, req.value);
  onWrite(req.addr);
}

void LrscSingleAdapter::onWrite(Addr a) {
  if (valid_ && addr_ == a) {
    valid_ = false;
  }
}

void LrscSingleAdapter::reset() {
  AtomicAdapter::reset();
  valid_ = false;
  core_ = sim::kNoCore;
}

}  // namespace colibri::atomics
