// Colibri queue node (Qnode): the per-core hardware node of the distributed
// reservation queue (paper Section IV).
//
// Each core owns exactly one Qnode, which is sufficient because a core can
// have at most one outstanding LRwait/Mwait. The Qnode:
//   - records this core's position metadata (which bank/address it queued
//     on, and whether the wait is an Mwait),
//   - accepts SuccessorUpdates from memory controllers — even while the
//     core sleeps — storing the successor core id and its operation type,
//   - dispatches a WakeUpRequest to the memory controller when the local
//     core's SCwait passes by (or, for Mwait, when the wake response
//     arrives), or *bounces* a late SuccessorUpdate straight back as a
//     WakeUpRequest if the SCwait already went past (Section IV-A.1).
//
// The Qnode emits WakeUpRequests through a callback wired by the System to
// the core's network request path, so protocol messages contend for the
// same links and bank ports as ordinary traffic.
#pragma once

#include <cstdint>
#include <functional>

#include "arch/memop.hpp"
#include "sim/check.hpp"
#include "sim/types.hpp"

namespace colibri::atomics {

using sim::CoreId;

class Qnode {
 public:
  enum class State : std::uint8_t {
    kIdle,        ///< not in any queue
    kQueued,      ///< LRwait/Mwait outstanding or granted
    kOwesWakeup,  ///< dequeued locally; must forward a WakeUpRequest to the
                  ///< controller as soon as the successor becomes known
  };

  /// `sendWakeUp(successor, successorIsMwait, addr)` must inject a kWakeUp
  /// request from this core towards the bank owning `addr`.
  using WakeUpSender = std::function<void(CoreId, bool, sim::Addr)>;

  explicit Qnode(CoreId core) : core_(core) {}

  void setWakeUpSender(WakeUpSender s) { sendWakeUp_ = std::move(s); }

  // --- Local core events -------------------------------------------------
  void onWaitIssued(sim::Addr addr, bool isMwait);
  void onLrWaitResponse(bool admitted);
  void onScWaitIssued();
  void onScWaitResponse(bool lastInQueue);
  void onMwaitResponse(bool admitted, bool lastInQueue);

  // --- Network events ----------------------------------------------------
  void onSuccessorUpdate(CoreId successor, bool successorIsMwait);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool hasSuccessor() const {
    return successor_ != sim::kNoCore;
  }
  [[nodiscard]] CoreId successor() const { return successor_; }

  void reset();

 private:
  void dispatchWakeUp();

  CoreId core_;
  State state_ = State::kIdle;
  sim::Addr addr_ = 0;
  bool isMwait_ = false;
  CoreId successor_ = sim::kNoCore;
  bool successorIsMwait_ = false;
  WakeUpSender sendWakeUp_;
};

}  // namespace colibri::atomics
