// ATUN-style LR/SC: one reservation entry per core per bank [11].
//
// Every core can hold its own reservation simultaneously (non-blocking
// LR/SC, CAS-like behavior): a write to an address invalidates *all*
// reservations on it, so under contention exactly one SC per round
// succeeds and the losers retry. The hardware cost of the full table is
// what Table I's area model charges for reservation-table designs.
#pragma once

#include <vector>

#include "atomics/adapter.hpp"

namespace colibri::atomics {

class LrscTableAdapter final : public AtomicAdapter {
 public:
  explicit LrscTableAdapter(BankContext& ctx)
      : AtomicAdapter(ctx), entries_(ctx.numCores()) {}

  void handle(const MemRequest& req) override;
  void reset() override;
  void describeState(std::ostream& os) const override;

 private:
  struct Entry {
    bool valid = false;
    Addr addr = 0;
  };

  void onWrite(Addr a) override;

  std::vector<Entry> entries_;  // indexed by core id
};

}  // namespace colibri::atomics
