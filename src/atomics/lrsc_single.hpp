// MemPool-style LR/SC: a single reservation slot per bank [5].
//
// The slot is taken by the first LR and held until the owner's SC (success
// or failure) or until a write to the reserved address invalidates it. An
// LR from a *different* core while the slot is busy returns the current
// value but places no reservation — its SC will fail and the core retries.
// This is the lightweight design the paper describes as "sacrificing the
// non-blocking property": under contention every non-owner burns LR/SC
// round trips and backoff, producing the retry traffic the paper measures,
// while the owner still makes (slow) progress.
#pragma once

#include "atomics/adapter.hpp"

namespace colibri::atomics {

class LrscSingleAdapter final : public AtomicAdapter {
 public:
  using AtomicAdapter::AtomicAdapter;

  void handle(const MemRequest& req) override;
  void reset() override;
  void describeState(std::ostream& os) const override;

  /// Owner of the reservation slot, if valid (for tests).
  [[nodiscard]] bool slotValid() const { return valid_; }
  [[nodiscard]] CoreId slotOwner() const { return core_; }

 private:
  void onWrite(Addr a) override;
  void commit(const MemRequest& req);

  bool valid_ = false;
  CoreId core_ = sim::kNoCore;
  Addr addr_ = 0;
};

}  // namespace colibri::atomics
