// AMO-only adapter: the bank executes read-modify-write AMOs atomically in
// one port slot. This is the paper's "Atomic Add" roofline — the best any
// generic scheme could do for a simple increment — and the substrate for
// lock variables (amoswap-based test-and-set).
//
// LR/SC and the wait extension are unsupported: issuing them on this
// adapter is a software bug and trips an invariant.
#pragma once

#include "atomics/adapter.hpp"

namespace colibri::atomics {

class AmoAdapter final : public AtomicAdapter {
 public:
  using AtomicAdapter::AtomicAdapter;

  void handle(const MemRequest& req) override;
};

}  // namespace colibri::atomics
