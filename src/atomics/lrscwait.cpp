#include "atomics/lrscwait.hpp"

#include <algorithm>
#include <ostream>

#include "fault/fault.hpp"
#include "sim/check.hpp"

namespace colibri::atomics {

bool LrscWaitAdapter::hasEarlierForAddr(std::list<Entry>::const_iterator it,
                                        Addr a) const {
  for (auto j = queue_.begin(); j != it; ++j) {
    if (j->addr == a) {
      return true;
    }
  }
  return false;
}

bool LrscWaitAdapter::serve(std::list<Entry>::iterator it) {
  COLIBRI_CHECK(!it->served);
  if (it->isMwait) {
    const Word cur = ctx_.read(it->addr);
    if (cur != it->expected) {
      // The change already happened: notify immediately (Section III-C).
      ++stats_.mwaitWakes;
      ctx_.respond(it->core, MemResponse{cur, true, true});
      queue_.erase(it);
      return true;
    }
    it->served = true;  // monitoring; a write will wake it
    return false;
  }
  // LRwait: grant — respond with the current value and hold a reservation.
  it->served = true;
  it->resvValid = true;
  ++stats_.lrGrants;
  ctx_.respond(it->core, MemResponse{ctx_.read(it->addr), true, true});
  return false;
}

void LrscWaitAdapter::pump() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (!it->served && !hasEarlierForAddr(it, it->addr)) {
        if (serve(it)) {
          progressed = true;  // iterator invalidated; rescan
          break;
        }
      }
    }
  }
}

void LrscWaitAdapter::handle(const MemRequest& req) {
  if (fault::FaultPlan* fp = ctx_.faultPlan();
      fp != nullptr && fp->evict(ctx_.bankId(), req.core, ctx_.now())) {
    // Injected eviction: invalidate the reservation of a served LRwait
    // (never erase the entry — the queue's SCwait-matching invariant
    // stays intact). The holder's SCwait fails and its loop re-enqueues.
    for (Entry& e : queue_) {
      if (e.served && !e.isMwait && e.resvValid) {
        e.resvValid = false;
        break;
      }
    }
  }
  if (handleBasic(req)) {
    return;
  }
  switch (req.kind) {
    case OpKind::kLrWait:
    case OpKind::kMwait: {
      if (queue_.size() >= capacity_) {
        // Full queue: immediate failure, the core retries (Section III-B).
        ++stats_.lrFails;
        ctx_.respond(req.core, MemResponse{0, false, true});
        return;
      }
      Entry e;
      e.core = req.core;
      e.addr = req.addr;
      e.isMwait = req.kind == OpKind::kMwait;
      e.expected = req.value;
      queue_.push_back(e);
      pump();
      return;
    }
    case OpKind::kScWait: {
      // The issuer must hold the served LRwait for this address: the
      // adapter granted it exclusively, so anything else is a protocol bug.
      auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Entry& e) {
        return e.core == req.core && e.addr == req.addr && !e.isMwait;
      });
      COLIBRI_CHECK_MSG(it != queue_.end() && it->served,
                        "SCwait without a served LRwait (core "
                            << req.core << ", addr " << req.addr << ")");
      bool success = it->resvValid;
      if (success) {
        if (fault::FaultPlan* fp = ctx_.faultPlan();
            fp != nullptr &&
            fp->scFail(ctx_.bankId(), req.core, req.addr, ctx_.now())) {
          // Spurious SCwait failure: the grant is consumed without a
          // commit; the holder's loop re-enqueues an LRwait.
          success = false;
        }
      }
      queue_.erase(it);
      if (success) {
        ++stats_.scSuccesses;
        ctx_.writeRaw(req.addr, req.value);
      } else {
        ++stats_.scFailures;
      }
      // Respond to the SCwait first, then let the commit wake monitors and
      // the dequeue serve the next waiter (in-order response stream).
      ctx_.respond(req.core, MemResponse{0, success, true});
      if (success) {
        onWrite(req.addr);
      }
      pump();
      return;
    }
    default:
      COLIBRI_CHECK_MSG(false, "LrscWaitAdapter cannot handle op "
                                   << arch::toString(req.kind));
  }
}

void LrscWaitAdapter::onWrite(Addr a) {
  // Invalidate the served LRwait reservation (its SCwait will fail) and
  // wake every queued Mwait on this address with the freshly written value.
  const Word cur = ctx_.read(a);
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->addr != a) {
      ++it;
      continue;
    }
    if (it->isMwait) {
      ++stats_.mwaitWakes;
      ctx_.respond(it->core, MemResponse{cur, true, true});
      it = queue_.erase(it);
      continue;
    }
    if (it->served) {
      it->resvValid = false;
    }
    ++it;
  }
  pump();
}

void LrscWaitAdapter::describeState(std::ostream& os) const {
  os << queue_.size() << " of " << capacity_ << " queue entries used";
  bool any = false;
  for (const Entry& e : queue_) {
    if (e.served && !e.isMwait && e.resvValid) {
      os << (any ? "," : "; grants:") << " core " << e.core << " on addr "
         << e.addr;
      any = true;
    }
  }
}

bool LrscWaitAdapter::holdsGrant(CoreId core, Addr a) const {
  return std::any_of(queue_.begin(), queue_.end(), [&](const Entry& e) {
    return e.core == core && e.addr == a && !e.isMwait && e.served &&
           e.resvValid;
  });
}

void LrscWaitAdapter::reset() {
  AtomicAdapter::reset();
  queue_.clear();
}

}  // namespace colibri::atomics
