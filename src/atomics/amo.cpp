#include "atomics/amo.hpp"

#include "sim/check.hpp"

namespace colibri::atomics {

bool AtomicAdapter::handleBasic(const MemRequest& req) {
  switch (req.kind) {
    case OpKind::kLoad: {
      ++stats_.loads;
      ctx_.respond(req.core, MemResponse{ctx_.read(req.addr), true, true});
      return true;
    }
    case OpKind::kStore: {
      ++stats_.stores;
      ctx_.writeRaw(req.addr, req.value);
      // onWrite runs after the commit so Mwait wake responses observe the
      // new value. Stores are posted: no response to the writer.
      onWrite(req.addr);
      return true;
    }
    default:
      break;
  }
  if (arch::isAmo(req.kind)) {
    ++stats_.amos;
    const Word old = ctx_.read(req.addr);
    ctx_.writeRaw(req.addr, arch::applyAmo(req.kind, old, req.value));
    onWrite(req.addr);
    ctx_.respond(req.core, MemResponse{old, true, true});
    return true;
  }
  return false;
}

void AmoAdapter::handle(const MemRequest& req) {
  const bool handled = handleBasic(req);
  COLIBRI_CHECK_MSG(handled, "AmoAdapter cannot handle op "
                                 << arch::toString(req.kind)
                                 << " (LR/SC and waits unsupported)");
}

}  // namespace colibri::atomics
