#include "atomics/colibri.hpp"

#include <ostream>

#include "fault/fault.hpp"
#include "sim/check.hpp"

namespace colibri::atomics {

ColibriAdapter::Slot* ColibriAdapter::find(Addr a) {
  for (Slot& s : slots_) {
    if (s.state != SlotState::kFree && s.addr == a) {
      return &s;
    }
  }
  return nullptr;
}

ColibriAdapter::Slot* ColibriAdapter::allocate() {
  for (Slot& s : slots_) {
    if (s.state == SlotState::kFree) {
      return &s;
    }
  }
  return nullptr;
}

void ColibriAdapter::handle(const MemRequest& req) {
  if (handleBasic(req)) {
    return;
  }
  switch (req.kind) {
    case OpKind::kLrWait:
    case OpKind::kMwait:
      handleWait(req);
      return;
    case OpKind::kScWait:
      handleScWait(req);
      return;
    case OpKind::kWakeUp:
      handleWakeUp(req);
      return;
    default:
      COLIBRI_CHECK_MSG(false, "ColibriAdapter cannot handle op "
                                   << arch::toString(req.kind)
                                   << " (plain LR/SC not supported; use the"
                                      " wait pair)");
  }
}

void ColibriAdapter::handleWait(const MemRequest& req) {
  const bool isMwait = req.kind == OpKind::kMwait;
  if (Slot* s = find(req.addr)) {
    // Queue exists: append by retargeting the tail and linking the previous
    // tail's Qnode to us. No response — the core sleeps.
    const CoreId prevTail = s->tail;
    s->tail = req.core;
    ++stats_.successorUpdates;
    ctx_.sendSuccessorUpdate(prevTail, req.core, req.addr, isMwait);
    return;
  }
  Slot* s = allocate();
  if (s == nullptr) {
    // All head/tail register pairs busy: immediate fail, software retries.
    ++stats_.lrFails;
    ctx_.respond(req.core, MemResponse{0, false, true});
    return;
  }
  if (isMwait) {
    const Word cur = ctx_.read(req.addr);
    if (cur != req.value) {
      // Value already changed: notify immediately, nothing to enqueue.
      ++stats_.mwaitWakes;
      ctx_.respond(req.core, MemResponse{cur, true, true});
      return;
    }
    *s = Slot{SlotState::kMwaitMonitoring, req.addr, req.core, req.core,
              false};
    return;  // head sleeps until a write
  }
  *s = Slot{SlotState::kGranted, req.addr, req.core, req.core, true};
  ++stats_.lrGrants;
  ctx_.respond(req.core, MemResponse{ctx_.read(req.addr), true, true});
}

void ColibriAdapter::handleScWait(const MemRequest& req) {
  Slot* s = find(req.addr);
  COLIBRI_CHECK_MSG(s != nullptr && s->state == SlotState::kGranted &&
                        s->head == req.core,
                    "SCwait from core " << req.core << " to addr " << req.addr
                                        << " without a grant");
  bool success = s->resvValid;
  if (success) {
    if (fault::FaultPlan* fp = ctx_.faultPlan();
        fp != nullptr &&
        fp->scFail(ctx_.bankId(), req.core, req.addr, ctx_.now())) {
      // Spurious SCwait failure: the commit is dropped but the queue still
      // advances (the protocol's hand-over is unconditional), so the head
      // simply retries through software. No eviction site here: Colibri's
      // reservations live in the distributed queue, not a shared table.
      success = false;
    }
  }
  const bool last = s->tail == req.core;
  if (success) {
    ++stats_.scSuccesses;
    ctx_.writeRaw(req.addr, req.value);
    // Invalidation hook: the only slot on this address is `s`, which is
    // being advanced anyway, but stores to *other* monitored addresses are
    // unaffected; onWrite keeps the bookkeeping uniform.
  } else {
    ++stats_.scFailures;
  }
  if (last) {
    *s = Slot{};  // head == tail: trivial dequeue, slot freed (Sec. IV-A.2)
  } else {
    // Temporarily invalidate the head; only the WakeUpRequest bounced
    // through our Qnode may install the successor.
    s->state = SlotState::kAwaitingWakeUp;
    s->head = sim::kNoCore;
    s->resvValid = false;
  }
  ctx_.respond(req.core, MemResponse{0, success, last});
}

void ColibriAdapter::handleWakeUp(const MemRequest& req) {
  ++stats_.wakeUpRequests;
  Slot* s = find(req.addr);
  COLIBRI_CHECK_MSG(s != nullptr && s->state == SlotState::kAwaitingWakeUp,
                    "WakeUpRequest for addr " << req.addr
                                              << " with no pending advance");
  serveNewHead(*s, static_cast<CoreId>(req.value), req.successorIsMwait);
}

void ColibriAdapter::serveNewHead(Slot& slot, CoreId core, bool isMwait) {
  slot.head = core;
  const bool last = slot.tail == core;
  if (isMwait) {
    // A write happened since this Mwait enqueued (it is only woken through
    // an SCwait commit or a store-triggered drain): answer immediately.
    ++stats_.mwaitWakes;
    ctx_.respond(core, MemResponse{ctx_.read(slot.addr), true, last});
    if (last) {
      slot = Slot{};
    } else {
      slot.state = SlotState::kAwaitingWakeUp;
      slot.head = sim::kNoCore;
    }
    return;
  }
  slot.state = SlotState::kGranted;
  slot.resvValid = true;
  ++stats_.lrGrants;
  ctx_.respond(core, MemResponse{ctx_.read(slot.addr), true, last});
}

void ColibriAdapter::onWrite(Addr a) {
  Slot* s = find(a);
  if (s == nullptr) {
    return;
  }
  switch (s->state) {
    case SlotState::kGranted:
      // The head's SCwait will now fail (mutual exclusion, Section III).
      s->resvValid = false;
      return;
    case SlotState::kMwaitMonitoring: {
      // Wake the sleeping head with the freshly written value; the rest of
      // the queue drains through Qnode WakeUpRequests.
      const CoreId head = s->head;
      const bool last = s->tail == head;
      ++stats_.mwaitWakes;
      ctx_.respond(head, MemResponse{ctx_.read(a), true, last});
      if (last) {
        *s = Slot{};
      } else {
        s->state = SlotState::kAwaitingWakeUp;
        s->head = sim::kNoCore;
      }
      return;
    }
    case SlotState::kAwaitingWakeUp:
    case SlotState::kFree:
      return;
  }
}

std::size_t ColibriAdapter::freeSlots() const {
  std::size_t n = 0;
  for (const Slot& s : slots_) {
    n += s.state == SlotState::kFree ? 1 : 0;
  }
  return n;
}

std::optional<CoreId> ColibriAdapter::grantedCore(Addr a) const {
  for (const Slot& s : slots_) {
    if (s.state == SlotState::kGranted && s.addr == a) {
      return s.head;
    }
  }
  return std::nullopt;
}

void ColibriAdapter::reset() {
  AtomicAdapter::reset();
  for (Slot& s : slots_) {
    s = Slot{};
  }
}

namespace {
const char* toString(ColibriAdapter::SlotState s) {
  switch (s) {
    case ColibriAdapter::SlotState::kFree:
      return "free";
    case ColibriAdapter::SlotState::kGranted:
      return "granted";
    case ColibriAdapter::SlotState::kMwaitMonitoring:
      return "mwait-monitoring";
    case ColibriAdapter::SlotState::kAwaitingWakeUp:
      return "awaiting-wakeup";
  }
  return "?";
}
}  // namespace

void ColibriAdapter::describeState(std::ostream& os) const {
  os << (slots_.size() - freeSlots()) << " of " << slots_.size()
     << " queue slots busy";
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.state == SlotState::kFree) {
      continue;
    }
    os << "; slot " << i << ": " << toString(s.state) << " addr " << s.addr
       << " head ";
    if (s.head == sim::kNoCore) {
      os << "none";
    } else {
      os << s.head;
    }
    os << " tail " << s.tail;
    if (s.state == SlotState::kGranted) {
      os << (s.resvValid ? " (reservation valid)" : " (reservation lost)");
    }
  }
}

}  // namespace colibri::atomics
