#include "atomics/qnode.hpp"

namespace colibri::atomics {

void Qnode::onWaitIssued(sim::Addr addr, bool isMwait) {
  COLIBRI_CHECK_MSG(state_ == State::kIdle,
                    "core " << core_ << " issued a wait with one outstanding"
                            << " (deadlock-freedom constraint, Sec. III)");
  state_ = State::kQueued;
  addr_ = addr;
  isMwait_ = isMwait;
  successor_ = sim::kNoCore;
  successorIsMwait_ = false;
}

void Qnode::onLrWaitResponse(bool admitted) {
  COLIBRI_CHECK(state_ == State::kQueued && !isMwait_);
  if (!admitted) {
    // Queue-full immediate fail: the core was never enqueued.
    COLIBRI_CHECK(successor_ == sim::kNoCore);
    state_ = State::kIdle;
  }
  // On a grant the Qnode stays kQueued until the SCwait passes.
}

void Qnode::onScWaitIssued() {
  COLIBRI_CHECK_MSG(state_ == State::kQueued && !isMwait_,
                    "SCwait without matching LRwait at Qnode " << core_);
  if (hasSuccessor()) {
    // "Immediately after an SCwait passes the Qnode, it sends a
    // WakeUpRequest containing its successor" (Section IV). It follows the
    // SCwait on the same core->bank path, so FIFO keeps them ordered.
    dispatchWakeUp();
    state_ = State::kIdle;
  } else {
    state_ = State::kOwesWakeup;
  }
}

void Qnode::onScWaitResponse(bool lastInQueue) {
  if (state_ == State::kIdle) {
    // WakeUp already dispatched (successor was known at SCwait time, or a
    // SuccessorUpdate bounced in between); nothing left to do.
    return;
  }
  COLIBRI_CHECK(state_ == State::kOwesWakeup);
  if (lastInQueue) {
    // The controller freed the queue slot; nobody was appended behind us.
    state_ = State::kIdle;
  }
  // Otherwise a SuccessorUpdate is in flight and will bounce as a WakeUp.
}

void Qnode::onMwaitResponse(bool admitted, bool lastInQueue) {
  COLIBRI_CHECK(state_ == State::kQueued && isMwait_);
  if (!admitted || lastInQueue) {
    state_ = State::kIdle;
    return;
  }
  // Wake the successor: this is how a write drains the whole Mwait queue
  // "without any interference from the cores" (Section IV-B).
  if (hasSuccessor()) {
    dispatchWakeUp();
    state_ = State::kIdle;
  } else {
    state_ = State::kOwesWakeup;
  }
}

void Qnode::onSuccessorUpdate(CoreId successor, bool successorIsMwait) {
  COLIBRI_CHECK_MSG(state_ != State::kIdle,
                    "SuccessorUpdate to idle Qnode " << core_);
  successor_ = successor;
  successorIsMwait_ = successorIsMwait;
  if (state_ == State::kOwesWakeup) {
    // The local dequeue already happened: bounce back as a WakeUpRequest
    // (Section IV-A.1).
    dispatchWakeUp();
    state_ = State::kIdle;
  }
}

void Qnode::dispatchWakeUp() {
  COLIBRI_CHECK(hasSuccessor());
  COLIBRI_CHECK_MSG(static_cast<bool>(sendWakeUp_), "Qnode not wired");
  sendWakeUp_(successor_, successorIsMwait_, addr_);
  successor_ = sim::kNoCore;
  successorIsMwait_ = false;
}

void Qnode::reset() {
  state_ = State::kIdle;
  successor_ = sim::kNoCore;
  successorIsMwait_ = false;
}

}  // namespace colibri::atomics
