// LRSCwait_q: the centralized reservation-queue implementation of
// LRwait/SCwait/Mwait (paper Sections III-A/III-B).
//
// Each bank adapter holds an in-order queue of at most `capacity` waiting
// reservations (any mix of addresses). The oldest entry per address is
// "served": an LRwait gets its response (grant) and holds a reservation; an
// Mwait is checked against its expected value and then monitors the
// address. Capacity == numCores reproduces LRSCwait_ideal; smaller
// capacities fail LRwaits to a full queue immediately (the core retries in
// software), trading hardware for performance exactly as in Section III-B.
//
// Unlike Colibri there are no protocol messages: the queue lives wholly in
// the adapter, which is why its hardware cost (Table I) grows with q.
#pragma once

#include <cstdint>
#include <list>

#include "atomics/adapter.hpp"

namespace colibri::atomics {

class LrscWaitAdapter final : public AtomicAdapter {
 public:
  LrscWaitAdapter(BankContext& ctx, std::uint32_t capacity)
      : AtomicAdapter(ctx), capacity_(capacity) {}

  void handle(const MemRequest& req) override;
  void reset() override;
  void describeState(std::ostream& os) const override;

  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t occupancy() const { return queue_.size(); }

  /// True iff `core` currently holds a served (granted) LRwait on `a` with
  /// a still-valid reservation. Exposed for invariant checking in tests.
  [[nodiscard]] bool holdsGrant(CoreId core, Addr a) const;

 private:
  struct Entry {
    CoreId core = sim::kNoCore;
    Addr addr = 0;
    bool isMwait = false;
    Word expected = 0;  // Mwait only
    bool served = false;
    bool resvValid = false;  // LRwait only, meaningful when served
  };

  void onWrite(Addr a) override;

  /// Serve every address whose oldest entry is not yet served. May remove
  /// entries (Mwait immediate wake), so it loops to a fixed point.
  void pump();

  /// Serve one entry (must be the oldest for its address). Returns true if
  /// the entry was consumed (removed from the queue).
  bool serve(std::list<Entry>::iterator it);

  [[nodiscard]] bool hasEarlierForAddr(std::list<Entry>::const_iterator it,
                                       Addr a) const;

  std::uint32_t capacity_;
  std::list<Entry> queue_;  // FIFO arrival order
};

}  // namespace colibri::atomics
