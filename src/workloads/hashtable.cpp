#include "workloads/hashtable.hpp"

#include <numeric>

#include "sim/check.hpp"
#include "sim/random.hpp"
#include "sync/atomic.hpp"

namespace colibri::workloads {

namespace {

// Keys carry (worker + 1) in the high half so they are unique across
// workers and never 0 (0 marks an empty slot).
constexpr sim::Word kWorkerShift = 16;

constexpr std::uint32_t hashSlot(sim::Word key, std::uint32_t slots) {
  return static_cast<std::uint32_t>((key * 2654435761u) % slots);
}

struct TableCtx {
  const HashTableParams* params = nullptr;
  std::vector<sim::Addr> slots;
  std::uint32_t insertBudget = 0;  ///< successful inserts per worker
  sync::RmwFlavor casFlavor = sync::RmwFlavor::kLrsc;
  bool stop = false;
  sim::Cycle windowStart = 0;
  sim::Cycle windowEnd = 0;
  std::vector<std::uint64_t> perCoreWindow;
  std::vector<std::vector<sim::Word>> inserted;  ///< per worker, for verify
  std::uint64_t inserts = 0;
  std::uint64_t lookups = 0;
  std::uint64_t probeSteps = 0;
};

void countOp(arch::System& sys, TableCtx& ctx, std::uint32_t idx) {
  const auto now = sys.now();
  if (now >= ctx.windowStart && now < ctx.windowEnd) {
    ++ctx.perCoreWindow[idx];
  }
}

/// Claim an empty slot for `key`, probing linearly from its hash. Returns
/// false only when the stop flag aborted the CAS before it claimed a slot.
sim::Co<bool> insertKey(arch::Core& core, TableCtx& ctx, sim::Word key,
                        sync::Backoff& backoff) {
  const auto n = static_cast<std::uint32_t>(ctx.slots.size());
  std::uint32_t probe = hashSlot(key, n);
  for (std::uint32_t step = 0; step < n; ++step) {
    ++ctx.probeSteps;
    const auto seen = co_await core.load(ctx.slots[probe]);
    if (seen.value == 0) {
      const auto cas =
          co_await sync::compareAndSwap(core, ctx.casFlavor, ctx.slots[probe],
                                        0, key, backoff, &ctx.stop);
      if (cas.swapped) {
        co_return true;
      }
      if (ctx.stop) {
        co_return false;  // abandoned at a retry point, slot not claimed
      }
      // Lost the slot to a concurrent insert; fall through to the next.
    }
    probe = (probe + 1) % n;
  }
  // The insert budget caps the load factor at 1/2, so a full sweep
  // without finding an empty slot means the table logic is broken.
  COLIBRI_CHECK_MSG(false, "hashtable: probe wrapped without an empty slot");
  co_return false;
}

/// Probe for a key this worker already published; it must be found before
/// an empty slot terminates the probe.
sim::Co<void> lookupKey(arch::Core& core, TableCtx& ctx, sim::Word key) {
  const auto n = static_cast<std::uint32_t>(ctx.slots.size());
  std::uint32_t probe = hashSlot(key, n);
  for (std::uint32_t step = 0; step < n; ++step) {
    ++ctx.probeSteps;
    const auto seen = co_await core.load(ctx.slots[probe]);
    if (seen.value == key) {
      co_return;
    }
    COLIBRI_CHECK_MSG(seen.value != 0,
                      "hashtable: published key vanished from its probe run");
    probe = (probe + 1) % n;
  }
  COLIBRI_CHECK_MSG(false, "hashtable: lookup wrapped the whole table");
}

sim::Task tableWorker(arch::System& sys, arch::Core& core, TableCtx& ctx,
                      std::uint32_t idx) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, 0x7AB1E + core.id());
  sync::Backoff backoff(ctx.params->backoff, rng);
  auto& mine = ctx.inserted[idx];
  sim::Word seq = 0;

  while (!ctx.stop) {
    co_await core.delay(ctx.params->iterDelay);
    if (mine.size() < ctx.insertBudget) {
      const sim::Word key =
          (static_cast<sim::Word>(idx + 1) << kWorkerShift) | (++seq);
      if (co_await insertKey(core, ctx, key, backoff)) {
        mine.push_back(key);
        ++ctx.inserts;
        countOp(sys, ctx, idx);
      }
    } else {
      const auto& key = mine[rng.below(mine.size())];
      co_await lookupKey(core, ctx, key);
      ++ctx.lookups;
      countOp(sys, ctx, idx);
    }
  }
}

/// Host-side verification after the drain: slot occupancy matches the
/// insert count and every published key is reachable from its hash.
bool verifyTable(arch::System& sys, const TableCtx& ctx) {
  std::uint64_t occupied = 0;
  for (const auto a : ctx.slots) {
    occupied += sys.peek(a) != 0 ? 1 : 0;
  }
  if (occupied != ctx.inserts) {
    return false;
  }
  const auto n = static_cast<std::uint32_t>(ctx.slots.size());
  for (const auto& keys : ctx.inserted) {
    for (const auto key : keys) {
      std::uint32_t probe = hashSlot(key, n);
      bool found = false;
      for (std::uint32_t step = 0; step < n; ++step) {
        const auto v = sys.peek(ctx.slots[probe]);
        if (v == key) {
          found = true;
          break;
        }
        if (v == 0) {
          break;  // probe run ended before the key: unreachable
        }
        probe = (probe + 1) % n;
      }
      if (!found) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

HashTableResult runHashTable(arch::System& sys, const HashTableParams& p) {
  COLIBRI_CHECK_MSG(sys.config().adapter != arch::AdapterKind::kAmoOnly,
                    "hashtable inserts are CAS loops and the AMO-only "
                    "adapter has no reservations");

  std::vector<sim::CoreId> cores = p.cores;
  if (cores.empty()) {
    cores.resize(sys.numCores());
    std::iota(cores.begin(), cores.end(), 0);
  }
  const auto participants = static_cast<std::uint32_t>(cores.size());

  TableCtx ctx;
  ctx.params = &p;
  const std::uint32_t slots = p.slots != 0 ? p.slots : 16 * participants;
  COLIBRI_CHECK_MSG(slots >= 2 * participants,
                    "hashtable: need at least two slots per core");
  // Cap the aggregate load factor at 1/2 so linear probes stay short and
  // an insert can always find an empty slot.
  const std::uint32_t budget =
      p.keysPerCore != 0 ? p.keysPerCore : slots / 2 / participants;
  COLIBRI_CHECK_MSG(budget >= 1, "hashtable: insert budget underflow");
  COLIBRI_CHECK_MSG(budget * participants <= slots / 2,
                    "hashtable: insert budget exceeds half the table");
  COLIBRI_CHECK_MSG(budget < (1u << kWorkerShift),
                    "hashtable: insert budget overflows the key sequence");
  ctx.insertBudget = budget;
  ctx.casFlavor = rmwFlavorFor(sys.config().adapter);

  auto& alloc = sys.allocator();
  const sim::Addr base = alloc.allocGlobal(slots);
  ctx.slots.reserve(slots);
  for (std::uint32_t i = 0; i < slots; ++i) {
    ctx.slots.push_back(base + i);
    sys.poke(base + i, 0);
  }

  ctx.perCoreWindow.assign(participants, 0);
  ctx.inserted.resize(participants);
  ctx.windowStart = p.window.warmup;
  ctx.windowEnd = p.window.horizon();

  for (std::uint32_t i = 0; i < participants; ++i) {
    sys.spawn(cores[i], tableWorker(sys, sys.core(cores[i]), ctx, i));
  }
  sys.at(ctx.windowStart, [&sys] { sys.resetStats(); });
  sys.at(ctx.windowEnd, [&ctx] { ctx.stop = true; });

  sys.runUntil(ctx.windowEnd);
  const auto counters = snapshotCounters(sys, p.window.measure, participants);
  sys.run();
  sys.rethrowFailures();
  COLIBRI_CHECK_MSG(sys.allTasksDone(), "hashtable workers failed to drain");

  HashTableResult res;
  res.inserts = ctx.inserts;
  res.lookups = ctx.lookups;
  res.probeSteps = ctx.probeSteps;
  res.verified = verifyTable(sys, ctx);
  COLIBRI_CHECK_MSG(res.verified, "hashtable: occupancy/reachability check "
                                  "failed, inserts="
                                      << ctx.inserts);
  res.rate = summarizeRates(ctx.perCoreWindow, p.window.measure, counters);
  return res;
}

}  // namespace colibri::workloads
