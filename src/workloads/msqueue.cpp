#include "workloads/msqueue.hpp"

#include <algorithm>
#include <numeric>

#include "sim/check.hpp"
#include "sim/random.hpp"
#include "sync/atomic.hpp"
#include "sync/spinlock.hpp"
#include "workloads/ticket_queue.hpp"

namespace colibri::workloads {

const char* toString(QueueVariant v) {
  switch (v) {
    case QueueVariant::kLrsc:
      return "lrsc";
    case QueueVariant::kLrscWait:
      return "lrscwait";
    case QueueVariant::kLock:
      return "amo-lock";
  }
  return "?";
}

namespace {

// Dequeued values are tagged (producer, sequence) so FIFO order per
// producer can be verified against the linearization order (the ticket).
constexpr sim::Word kProducerShift = 20;

struct QueueCtx {
  QueueParams params;
  TicketQueue queue;
  sim::Addr lock = 0;      // kLock only
  sim::Addr lockHead = 0;  // kLock: plain head index
  sim::Addr lockTail = 0;  // kLock: plain tail index
  std::vector<sim::Addr> lockVal;
  std::uint32_t capacity = 0;
  bool stop = false;
  sim::Cycle windowStart = 0;
  sim::Cycle windowEnd = 0;
  std::vector<std::uint64_t> perCoreWindow;
  std::uint64_t totalAccesses = 0;
  /// (dequeue ticket, value) pairs for post-run FIFO verification.
  std::vector<std::pair<sim::Word, sim::Word>> dequeueLog;
};

void countAccess(arch::System& sys, QueueCtx& ctx, sim::CoreId c) {
  ++ctx.totalAccesses;
  const auto now = sys.now();
  if (now >= ctx.windowStart && now < ctx.windowEnd) {
    ++ctx.perCoreWindow[c];
  }
}

sim::Co<void> lockedEnqueue(arch::Core& core, QueueCtx& ctx, sim::Word v,
                            sync::Backoff& backoff) {
  while (true) {
    co_await sync::acquireLock(core, sync::SpinLockKind::kAmoTas, ctx.lock,
                               backoff);
    const auto h = co_await core.load(ctx.lockHead);
    const auto t = co_await core.load(ctx.lockTail);
    if (t.value - h.value >= ctx.capacity) {  // full
      co_await sync::releaseLock(core, ctx.lock);
      co_await core.delay(backoff.next());
      continue;
    }
    // Acked stores: both must commit before the release is observable.
    (void)co_await core.amoSwap(ctx.lockVal[t.value % ctx.capacity], v);
    (void)co_await core.amoSwap(ctx.lockTail, t.value + 1);
    co_await sync::releaseLock(core, ctx.lock);
    co_return;
  }
}

sim::Co<sim::Word> lockedDequeue(arch::Core& core, QueueCtx& ctx,
                                 sync::Backoff& backoff,
                                 sim::Word* ticketOut) {
  while (true) {
    co_await sync::acquireLock(core, sync::SpinLockKind::kAmoTas, ctx.lock,
                               backoff);
    const auto h = co_await core.load(ctx.lockHead);
    const auto t = co_await core.load(ctx.lockTail);
    if (t.value == h.value) {  // empty
      co_await sync::releaseLock(core, ctx.lock);
      co_await core.delay(backoff.next());
      continue;
    }
    const auto v = co_await core.load(ctx.lockVal[h.value % ctx.capacity]);
    (void)co_await core.amoSwap(ctx.lockHead, h.value + 1);
    co_await sync::releaseLock(core, ctx.lock);
    *ticketOut = h.value;
    co_return v.value;
  }
}

sim::Task queueWorker(arch::System& sys, arch::Core& core, QueueCtx& ctx) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, 0x5EED + core.id());
  sync::Backoff backoff(ctx.params.backoff, rng);
  const auto variant = ctx.params.variant;
  const auto flavor = variant == QueueVariant::kLrscWait
                          ? sync::RmwFlavor::kLrscWait
                          : sync::RmwFlavor::kLrsc;
  const bool useMwait = variant == QueueVariant::kLrscWait;
  sim::Word seqNo = 0;

  while (!ctx.stop) {
    co_await core.delay(ctx.params.iterDelay);
    const sim::Word v = (core.id() << kProducerShift) | (++seqNo);
    sim::Word ticket = 0;
    sim::Word got = 0;
    if (variant == QueueVariant::kLock) {
      co_await lockedEnqueue(core, ctx, v, backoff);
      countAccess(sys, ctx, core.id());
      got = co_await lockedDequeue(core, ctx, backoff, &ticket);
    } else {
      co_await ctx.queue.enqueue(core, v, flavor, useMwait, backoff);
      countAccess(sys, ctx, core.id());
      got = co_await ctx.queue.dequeue(core, flavor, useMwait, backoff,
                                       &ticket);
    }
    countAccess(sys, ctx, core.id());
    ctx.dequeueLog.emplace_back(ticket, got);
  }
}

bool verifyFifo(const QueueCtx& ctx, std::uint32_t numCores) {
  // Sort dequeues by ticket (the linearization order) and check that each
  // producer's sequence numbers appear strictly increasing. Prefill values
  // use producer id `numCores` (outside any real core).
  auto log = ctx.dequeueLog;
  std::sort(log.begin(), log.end());
  std::vector<sim::Word> lastSeen(numCores + 1, 0);
  for (const auto& [ticket, value] : log) {
    const sim::Word producer = value >> kProducerShift;
    const sim::Word s = value & ((1u << kProducerShift) - 1);
    if (producer >= lastSeen.size() || s <= lastSeen[producer]) {
      return false;
    }
    lastSeen[producer] = s;
  }
  return true;
}

}  // namespace

QueueResult runQueue(arch::System& sys, const QueueParams& p) {
  const auto adapter = sys.config().adapter;
  if (p.variant == QueueVariant::kLrscWait) {
    COLIBRI_CHECK_MSG(adapter == arch::AdapterKind::kLrscWait ||
                          adapter == arch::AdapterKind::kColibri,
                      "lrscwait queue needs a wait-capable adapter");
  }

  QueueCtx ctx;
  ctx.params = p;
  std::vector<sim::CoreId> cores = p.cores;
  if (cores.empty()) {
    cores.resize(sys.numCores());
    std::iota(cores.begin(), cores.end(), 0);
  }
  ctx.capacity = p.capacity != 0
                     ? p.capacity
                     : 2 * static_cast<std::uint32_t>(cores.size());
  const std::uint32_t prefillCount =
      p.prefill != 0 ? p.prefill : ctx.capacity / 2;
  COLIBRI_CHECK(prefillCount <= ctx.capacity);
  std::vector<sim::Word> prefill;
  prefill.reserve(prefillCount);
  for (std::uint32_t i = 0; i < prefillCount; ++i) {
    prefill.push_back((sys.numCores() << kProducerShift) | (i + 1));
  }

  if (p.variant == QueueVariant::kLock) {
    auto& alloc = sys.allocator();
    ctx.lock = alloc.allocGlobal(1);
    ctx.lockHead = alloc.allocGlobal(1);
    ctx.lockTail = alloc.allocGlobal(1);
    const sim::Addr valBase = alloc.allocGlobal(ctx.capacity);
    for (std::uint32_t i = 0; i < ctx.capacity; ++i) {
      ctx.lockVal.push_back(valBase + i);
      sys.poke(valBase + i, 0);
    }
    for (std::uint32_t i = 0; i < prefillCount; ++i) {
      sys.poke(valBase + i, prefill[i]);
    }
    sys.poke(ctx.lock, 0);
    sys.poke(ctx.lockHead, 0);
    sys.poke(ctx.lockTail, prefillCount);
  } else {
    ctx.queue = TicketQueue::create(sys, ctx.capacity, prefill);
  }

  ctx.perCoreWindow.assign(sys.numCores(), 0);
  ctx.windowStart = p.window.warmup;
  ctx.windowEnd = p.window.horizon();

  for (const auto c : cores) {
    sys.spawn(c, queueWorker(sys, sys.core(c), ctx));
  }
  sys.at(ctx.windowStart, [&sys] { sys.resetStats(); });
  sys.at(ctx.windowEnd, [&ctx] { ctx.stop = true; });

  sys.runUntil(ctx.windowEnd);
  const auto counters = snapshotCounters(
      sys, p.window.measure, static_cast<std::uint32_t>(cores.size()));
  sys.run();
  sys.rethrowFailures();
  COLIBRI_CHECK_MSG(sys.allTasksDone(), "queue workers failed to drain");

  QueueResult res;
  res.totalAccesses = ctx.totalAccesses;
  res.fifoVerified = verifyFifo(ctx, sys.numCores());
  COLIBRI_CHECK_MSG(res.fifoVerified, "queue FIFO order violated, variant="
                                          << toString(p.variant));

  std::vector<std::uint64_t> windowOps;
  windowOps.reserve(cores.size());
  for (const auto c : cores) {
    windowOps.push_back(ctx.perCoreWindow[c]);
  }
  res.rate = summarizeRates(windowOps, p.window.measure, counters);
  return res;
}

}  // namespace colibri::workloads
