#include "workloads/ticket_queue.hpp"

#include "sim/check.hpp"

namespace colibri::workloads {

TicketQueue TicketQueue::create(arch::System& sys, std::uint32_t capacity,
                                const std::vector<sim::Word>& prefill) {
  COLIBRI_CHECK(capacity >= 1);
  COLIBRI_CHECK(prefill.size() <= capacity);
  TicketQueue q;
  q.capacity_ = capacity;
  auto& alloc = sys.allocator();
  q.tail_ = alloc.allocGlobal(1);
  q.head_ = alloc.allocGlobal(1);
  const sim::Addr seqBase = alloc.allocGlobal(capacity);
  const sim::Addr valBase = alloc.allocGlobal(capacity);
  for (std::uint32_t i = 0; i < capacity; ++i) {
    q.seq_.push_back(seqBase + i);
    q.val_.push_back(valBase + i);
    sys.poke(seqBase + i, i);
    sys.poke(valBase + i, 0);
  }
  for (std::uint32_t i = 0; i < prefill.size(); ++i) {
    sys.poke(valBase + i, prefill[i]);
    sys.poke(seqBase + i, i + 1);  // published
  }
  sys.poke(q.tail_, static_cast<sim::Word>(prefill.size()));
  sys.poke(q.head_, 0);
  return q;
}

sim::Co<void> TicketQueue::awaitValue(arch::Core& core, sim::Addr a,
                                      sim::Word want, bool useMwait,
                                      sync::Backoff& backoff) {
  auto cur = co_await core.load(a);
  while (cur.value != want) {
    if (!useMwait) {
      co_await core.delay(8);
      cur = co_await core.load(a);
      continue;
    }
    const auto r = co_await core.mwait(a, cur.value);
    if (!r.ok) {
      // Monitor queue full: paced reload.
      co_await core.delay(backoff.next());
      cur = co_await core.load(a);
      continue;
    }
    cur.value = r.value;
  }
}

sim::Co<void> TicketQueue::enqueue(arch::Core& core, sim::Word v,
                                   sync::RmwFlavor flavor, bool useMwait,
                                   sync::Backoff& backoff) {
  const auto t =
      co_await sync::fetchAdd(core, flavor, tail_, 1, backoff, nullptr);
  const std::uint32_t slot = t.old % capacity_;
  co_await awaitValue(core, seq_[slot], t.old, useMwait, backoff);
  // Acked store: the value must commit before the sequence word releases
  // the slot to a consumer (cross-bank store ordering, see spinlock.hpp).
  (void)co_await core.amoSwap(val_[slot], v);
  (void)co_await core.store(seq_[slot], t.old + 1);
}

sim::Co<sim::Word> TicketQueue::dequeue(arch::Core& core,
                                        sync::RmwFlavor flavor, bool useMwait,
                                        sync::Backoff& backoff,
                                        sim::Word* ticketOut) {
  const auto h =
      co_await sync::fetchAdd(core, flavor, head_, 1, backoff, nullptr);
  const std::uint32_t slot = h.old % capacity_;
  co_await awaitValue(core, seq_[slot], h.old + 1, useMwait, backoff);
  const auto v = co_await core.load(val_[slot]);
  // The enqueuer `capacity` tickets later reads the sequence word before
  // touching val, so a posted store suffices here.
  (void)co_await core.store(seq_[slot], h.old + capacity_);
  if (ticketOut != nullptr) {
    *ticketOut = h.old;
  }
  co_return v.value;
}

}  // namespace colibri::workloads
