// Matrix multiplication worker kernel + the interference experiment
// (paper Section V-A "Interference", Fig. 5).
//
// Worker cores compute C = A × B over matrices interleaved across all SPM
// banks (as MemPool kernels do), so their loads traverse the shared
// interconnect. Poller cores run the concurrent histogram beside them. The
// experiment reports the workers' slowdown relative to an interference-free
// run: LR/SC retry traffic congests the links and banks the workers need,
// while Colibri's sleeping waiters leave them almost untouched.
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/harness.hpp"
#include "workloads/histogram.hpp"

namespace colibri::workloads {

struct MatmulParams {
  std::uint32_t n = 32;  ///< square matrix dimension
  std::vector<sim::CoreId> workers;
};

struct MatmulResult {
  sim::Cycle duration = 0;  ///< first spawn to last worker completion
  std::uint64_t macs = 0;   ///< multiply-accumulates executed
  bool verified = false;    ///< C spot-checked against a host-side matmul
};

/// Run the matmul alone on a fresh system (the Fig. 5 baseline).
MatmulResult runMatmul(arch::System& sys, const MatmulParams& p);

struct InterferenceParams {
  MatmulParams matmul{};
  /// Histogram pollers running beside the workers.
  std::uint32_t bins = 1;
  HistogramMode pollerMode = HistogramMode::kLrsc;
  sync::BackoffPolicy pollerBackoff = sync::BackoffPolicy::fixed(128);
  std::vector<sim::CoreId> pollers;
};

struct InterferenceResult {
  MatmulResult matmul;
  std::uint64_t pollerUpdates = 0;
};

/// Run matmul workers and histogram pollers together on a fresh system.
/// Relative throughput (Fig. 5 y-axis) = baseline.duration / result.duration.
InterferenceResult runInterference(arch::System& sys,
                                   const InterferenceParams& p);

}  // namespace colibri::workloads
