#include "workloads/histogram.hpp"

#include <memory>
#include <numeric>

#include "sim/check.hpp"
#include "sim/random.hpp"
#include "sync/atomic.hpp"
#include "sync/mcs.hpp"
#include "sync/spinlock.hpp"

namespace colibri::workloads {

const char* toString(HistogramMode m) {
  switch (m) {
    case HistogramMode::kAmoAdd:
      return "amo-add";
    case HistogramMode::kLrsc:
      return "lrsc";
    case HistogramMode::kLrscWait:
      return "lrscwait";
    case HistogramMode::kAmoLock:
      return "amo-lock";
    case HistogramMode::kLrscLock:
      return "lrsc-lock";
    case HistogramMode::kLrwaitLock:
      return "lrwait-lock";
    case HistogramMode::kMcsMwaitLock:
      return "mwait-mcs-lock";
    case HistogramMode::kMcsPollLock:
      return "poll-mcs-lock";
  }
  return "?";
}

bool needsWaitSupport(HistogramMode m) {
  return m == HistogramMode::kLrscWait || m == HistogramMode::kLrwaitLock ||
         m == HistogramMode::kMcsMwaitLock;
}

namespace {

/// Shared state of one histogram run. Lives on the runHistogram stack;
/// worker frames reference it and are guaranteed to be resumed only while
/// the run is active (one workload per System).
struct HistCtx {
  HistogramParams params;
  sim::Addr binsBase = 0;
  std::vector<sim::Addr> locks;          // lock word per bin (lock modes)
  std::vector<sim::Addr> mcsTails;       // MCS tail word per bin
  std::unique_ptr<sync::McsNodes> mcs;   // MCS node words (MCS modes)
  sync::RmwFlavor casFlavor = sync::RmwFlavor::kLrsc;
  bool stop = false;
  sim::Cycle windowStart = 0;
  sim::Cycle windowEnd = 0;
  std::vector<std::uint64_t> perCoreTotal;
  std::vector<std::uint64_t> perCoreWindow;
};

sim::Task histWorker(arch::System& sys, arch::Core& core, HistCtx& ctx) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, core.id());
  sync::Backoff backoff(ctx.params.backoff, rng);
  const auto mode = ctx.params.mode;

  while (!ctx.stop) {
    co_await core.delay(ctx.params.iterDelay);
    const std::uint32_t bin =
        static_cast<std::uint32_t>(rng.below(ctx.params.bins));
    const sim::Addr binAddr = ctx.binsBase + bin;

    bool performed = false;
    switch (mode) {
      case HistogramMode::kAmoAdd:
      case HistogramMode::kLrsc:
      case HistogramMode::kLrscWait: {
        const auto flavor = mode == HistogramMode::kAmoAdd
                                ? sync::RmwFlavor::kAmo
                                : (mode == HistogramMode::kLrsc
                                       ? sync::RmwFlavor::kLrsc
                                       : sync::RmwFlavor::kLrscWait);
        const auto r = co_await sync::fetchAdd(core, flavor, binAddr, 1,
                                               backoff, &ctx.stop);
        performed = r.performed;
        break;
      }
      case HistogramMode::kAmoLock:
      case HistogramMode::kLrscLock:
      case HistogramMode::kLrwaitLock: {
        const auto kind = mode == HistogramMode::kAmoLock
                              ? sync::SpinLockKind::kAmoTas
                              : (mode == HistogramMode::kLrscLock
                                     ? sync::SpinLockKind::kLrscTas
                                     : sync::SpinLockKind::kLrwaitTas);
        co_await sync::acquireLock(core, kind, ctx.locks[bin], backoff);
        const auto v = co_await core.load(binAddr);
        co_await core.delay(ctx.params.csDelay);
        // Acked store: the bin update must commit before the release store
        // can be observed (see spinlock.hpp on ordering).
        (void)co_await core.amoSwap(binAddr, v.value + 1);
        co_await sync::releaseLock(core, ctx.locks[bin]);
        performed = true;
        break;
      }
      case HistogramMode::kMcsMwaitLock:
      case HistogramMode::kMcsPollLock: {
        const auto wait = mode == HistogramMode::kMcsMwaitLock
                              ? sync::WaitKind::kMwait
                              : sync::WaitKind::kPoll;
        sync::McsLock lock(ctx.mcsTails[bin], *ctx.mcs, ctx.casFlavor, wait);
        co_await lock.acquire(core, backoff);
        const auto v = co_await core.load(binAddr);
        co_await core.delay(ctx.params.csDelay);
        (void)co_await core.amoSwap(binAddr, v.value + 1);
        co_await lock.release(core, backoff);
        performed = true;
        break;
      }
    }
    if (performed) {
      ++ctx.perCoreTotal[core.id()];
      const auto now = sys.now();
      if (now >= ctx.windowStart && now < ctx.windowEnd) {
        ++ctx.perCoreWindow[core.id()];
      }
    }
  }
}

}  // namespace

HistogramResult runHistogram(arch::System& sys, const HistogramParams& p) {
  COLIBRI_CHECK(p.bins >= 1);
  const auto adapter = sys.config().adapter;
  if (needsWaitSupport(p.mode)) {
    COLIBRI_CHECK_MSG(adapter == arch::AdapterKind::kLrscWait ||
                          adapter == arch::AdapterKind::kColibri,
                      "mode " << toString(p.mode)
                              << " needs a wait-capable adapter");
  }

  HistCtx ctx;
  ctx.params = p;
  ctx.binsBase = sys.allocator().allocGlobal(p.bins);
  for (std::uint32_t i = 0; i < p.bins; ++i) {
    sys.poke(ctx.binsBase + i, 0);
  }

  const bool lockMode = p.mode == HistogramMode::kAmoLock ||
                        p.mode == HistogramMode::kLrscLock ||
                        p.mode == HistogramMode::kLrwaitLock;
  const bool mcsMode = p.mode == HistogramMode::kMcsMwaitLock ||
                       p.mode == HistogramMode::kMcsPollLock;
  if (lockMode) {
    const sim::Addr base = sys.allocator().allocGlobal(p.bins);
    for (std::uint32_t i = 0; i < p.bins; ++i) {
      ctx.locks.push_back(base + i);
      sys.poke(base + i, 0);
    }
  }
  if (mcsMode) {
    const sim::Addr base = sys.allocator().allocGlobal(p.bins);
    for (std::uint32_t i = 0; i < p.bins; ++i) {
      ctx.mcsTails.push_back(base + i);
      sys.poke(base + i, 0);
    }
    ctx.mcs = std::make_unique<sync::McsNodes>(sync::McsNodes::create(sys));
    ctx.casFlavor = adapter == arch::AdapterKind::kColibri ||
                            adapter == arch::AdapterKind::kLrscWait
                        ? sync::RmwFlavor::kLrscWait
                        : sync::RmwFlavor::kLrsc;
  }

  std::vector<sim::CoreId> cores = p.cores;
  if (cores.empty()) {
    cores.resize(sys.numCores());
    std::iota(cores.begin(), cores.end(), 0);
  }
  ctx.perCoreTotal.assign(sys.numCores(), 0);
  ctx.perCoreWindow.assign(sys.numCores(), 0);
  ctx.windowStart = p.window.warmup;
  ctx.windowEnd = p.window.horizon();

  for (const auto c : cores) {
    sys.spawn(c, histWorker(sys, sys.core(c), ctx));
  }
  sys.at(ctx.windowStart, [&sys] { sys.resetStats(); });
  sys.at(ctx.windowEnd, [&ctx] { ctx.stop = true; });

  sys.runUntil(ctx.windowEnd);
  const auto counters =
      snapshotCounters(sys, p.window.measure,
                       static_cast<std::uint32_t>(cores.size()));
  sys.run();  // drain: workers close their pairs and exit
  sys.rethrowFailures();
  COLIBRI_CHECK_MSG(sys.allTasksDone(), "histogram workers failed to drain");

  HistogramResult res;
  res.drainCycles = sys.now() - ctx.windowEnd;
  res.totalUpdates =
      std::accumulate(ctx.perCoreTotal.begin(), ctx.perCoreTotal.end(),
                      std::uint64_t{0});
  std::uint64_t sum = 0;
  for (std::uint32_t i = 0; i < p.bins; ++i) {
    sum += sys.peek(ctx.binsBase + i);
  }
  res.sumVerified = sum == res.totalUpdates;
  COLIBRI_CHECK_MSG(res.sumVerified, "histogram sum mismatch: bins="
                                         << sum << " updates="
                                         << res.totalUpdates << " mode="
                                         << toString(p.mode));

  std::vector<std::uint64_t> windowOps;
  windowOps.reserve(cores.size());
  for (const auto c : cores) {
    windowOps.push_back(ctx.perCoreWindow[c]);
  }
  res.rate = summarizeRates(windowOps, p.window.measure, counters);
  return res;
}

}  // namespace colibri::workloads
