#include "workloads/harness.hpp"

#include <algorithm>

namespace colibri::workloads {

sync::RmwFlavor rmwFlavorFor(arch::AdapterKind k) {
  switch (k) {
    case arch::AdapterKind::kAmoOnly:
      return sync::RmwFlavor::kAmo;
    case arch::AdapterKind::kLrscWait:
    case arch::AdapterKind::kColibri:
      return sync::RmwFlavor::kLrscWait;
    default:
      return sync::RmwFlavor::kLrsc;
  }
}

sync::SpinLockKind lockKindFor(arch::AdapterKind k) {
  switch (k) {
    case arch::AdapterKind::kAmoOnly:
      return sync::SpinLockKind::kAmoTas;
    case arch::AdapterKind::kLrscWait:
    case arch::AdapterKind::kColibri:
      return sync::SpinLockKind::kLrwaitTas;
    default:
      return sync::SpinLockKind::kLrscTas;
  }
}

SystemCounters snapshotCounters(arch::System& sys, Cycle windowCycles,
                                std::uint32_t participants) {
  SystemCounters s;
  s.windowCycles = windowCycles;
  s.activeCores = participants;
  for (sim::CoreId c = 0; c < sys.numCores(); ++c) {
    const auto& cs = sys.core(c).stats();
    s.instructions += cs.totalIssued();
    s.computeCycles += cs.computeCycles;
    s.sleepCycles += cs.sleepCycles;
    s.stallCycles += cs.stallCycles;
  }
  for (sim::BankId b = 0; b < sys.numBanks(); ++b) {
    s.bankAccesses += sys.bank(b).stats().requests;
  }
  s.netMessages = sys.network().stats().messagesByDistance;
  return s;
}

RateResult summarizeRates(const std::vector<std::uint64_t>& perCoreWindowOps,
                          Cycle windowCycles, const SystemCounters& counters) {
  RateResult r;
  r.perCoreWindowOps = perCoreWindowOps;
  r.counters = counters;
  if (windowCycles == 0) {
    return r;
  }
  std::uint64_t total = 0;
  std::uint64_t lo = ~0ULL;
  std::uint64_t hi = 0;
  for (auto v : perCoreWindowOps) {
    total += v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (perCoreWindowOps.empty()) {
    lo = 0;
  }
  r.opsInWindow = total;
  const double w = static_cast<double>(windowCycles);
  r.opsPerCycle = static_cast<double>(total) / w;
  r.perCoreMinRate = static_cast<double>(lo) / w;
  r.perCoreMaxRate = static_cast<double>(hi) / w;
  r.fairnessJain = sim::Summary::jainIndex(perCoreWindowOps);
  return r;
}

}  // namespace colibri::workloads
