#include "workloads/wsdeque.hpp"

#include "sim/check.hpp"
#include "sim/random.hpp"
#include "sync/atomic.hpp"

namespace colibri::workloads {

namespace {

struct DequeCtx {
  const WsDequeParams* params = nullptr;
  std::vector<sim::Addr> ring;   ///< task values (index + 1), never rewritten
  std::vector<sim::Addr> marks;  ///< per-task execution marks
  sim::Addr top = 0;
  sim::Addr bottom = 0;
  sim::Addr remaining = 0;
  std::uint32_t tasks = 0;
  sync::RmwFlavor casFlavor = sync::RmwFlavor::kLrsc;
  std::uint64_t executed = 0;
  std::uint64_t ownerPops = 0;
  std::uint64_t steals = 0;
  std::uint64_t failedSteals = 0;
  std::uint64_t duplicates = 0;
  sim::Cycle lastRetire = 0;
};

/// Run one claimed task: compute, then mark it executed (the old mark must
/// be 0 — a non-zero old value is a duplicate execution, the bug this
/// workload exists to catch) and retire it from the remaining-counter.
sim::Co<void> executeTask(arch::System& sys, arch::Core& core, DequeCtx& ctx,
                          sim::Word task) {
  co_await core.delay(ctx.params->taskCycles);
  const auto mark = co_await core.amoAdd(ctx.marks[task - 1], 1);
  if (mark.value != 0) {
    ++ctx.duplicates;
  }
  (void)co_await core.amoAdd(ctx.remaining, sim::Word(-1));
  ++ctx.executed;
  ctx.lastRetire = sys.now();
}

sim::Task ownerTask(arch::System& sys, arch::Core& core, DequeCtx& ctx) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, 0xDE0 + core.id());
  sync::Backoff backoff(ctx.params->backoff, rng);
  while (true) {
    const auto bOld = co_await core.load(ctx.bottom);
    const sim::Word b = bOld.value - 1;
    // Publish the decremented bottom with an acked store: a thief that
    // subsequently advances top to b must observe it and stand down from
    // the element the owner is about to take.
    (void)co_await core.amoSwap(ctx.bottom, b);
    const auto t = co_await core.load(ctx.top);
    if (t.value < b) {  // more than one element left: free take
      const auto task = co_await core.load(ctx.ring[b]);
      ++ctx.ownerPops;
      co_await executeTask(sys, core, ctx, task.value);
      continue;
    }
    if (t.value == b) {  // last element: race the thieves for it
      const auto task = co_await core.load(ctx.ring[b]);
      const auto cas = co_await sync::compareAndSwap(
          core, ctx.casFlavor, ctx.top, t.value, t.value + 1, backoff);
      (void)co_await core.amoSwap(ctx.bottom, t.value + 1);
      if (cas.swapped) {
        ++ctx.ownerPops;
        co_await executeTask(sys, core, ctx, task.value);
      }
      co_return;  // deque is empty either way (no pushes in this workload)
    }
    // t > b: the deque was already empty; restore bottom and retire.
    (void)co_await core.amoSwap(ctx.bottom, t.value);
    co_return;
  }
}

sim::Task thiefTask(arch::System& sys, arch::Core& core, DequeCtx& ctx) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, 0x7F1E + core.id());
  sync::Backoff backoff(ctx.params->backoff, rng);
  while (true) {
    const auto rem = co_await core.load(ctx.remaining);
    if (rem.value == 0 || rem.value > ctx.tasks) {  // drained (or underflow)
      co_return;
    }
    const auto t = co_await core.load(ctx.top);
    const auto b = co_await core.load(ctx.bottom);
    if (t.value < b.value) {
      const auto task = co_await core.load(ctx.ring[t.value]);
      const auto cas = co_await sync::compareAndSwap(
          core, ctx.casFlavor, ctx.top, t.value, t.value + 1, backoff);
      if (cas.swapped) {
        ++ctx.steals;
        backoff.reset();
        co_await executeTask(sys, core, ctx, task.value);
        continue;
      }
      ++ctx.failedSteals;
    }
    co_await core.delay(backoff.next());
  }
}

}  // namespace

WsDequeResult runWsDeque(arch::System& sys, const WsDequeParams& p) {
  COLIBRI_CHECK_MSG(sys.config().adapter != arch::AdapterKind::kAmoOnly,
                    "wsdeque steals CAS the top pointer and the AMO-only "
                    "adapter has no reservations");
  const auto numCores = sys.numCores();
  COLIBRI_CHECK_MSG(numCores >= 2, "wsdeque needs an owner and a thief");
  const std::uint32_t thieves =
      p.thieves != 0 ? p.thieves : numCores - 1;
  COLIBRI_CHECK_MSG(thieves <= numCores - 1,
                    "wsdeque: more thieves than spare cores");

  DequeCtx ctx;
  ctx.params = &p;
  ctx.tasks = p.tasks != 0 ? p.tasks : 8 * numCores;
  COLIBRI_CHECK_MSG(ctx.tasks >= 1, "wsdeque: empty task set");
  ctx.casFlavor = rmwFlavorFor(sys.config().adapter);

  auto& alloc = sys.allocator();
  const sim::Addr ringBase = alloc.allocGlobal(ctx.tasks);
  const sim::Addr markBase = alloc.allocGlobal(ctx.tasks);
  ctx.ring.reserve(ctx.tasks);
  ctx.marks.reserve(ctx.tasks);
  for (std::uint32_t i = 0; i < ctx.tasks; ++i) {
    ctx.ring.push_back(ringBase + i);
    ctx.marks.push_back(markBase + i);
    sys.poke(ringBase + i, i + 1);
    sys.poke(markBase + i, 0);
  }
  ctx.top = alloc.allocGlobal(1);
  ctx.bottom = alloc.allocGlobal(1);
  ctx.remaining = alloc.allocGlobal(1);
  sys.poke(ctx.top, 0);
  sys.poke(ctx.bottom, ctx.tasks);
  sys.poke(ctx.remaining, ctx.tasks);

  // Owner on core 0; thieves spread over the remaining cores so steals
  // cross tiles and groups.
  sys.spawn(0, ownerTask(sys, sys.core(0), ctx));
  const auto stride = std::max(1u, (numCores - 1) / thieves);
  for (std::uint32_t i = 0; i < thieves; ++i) {
    const auto c = static_cast<sim::CoreId>(1 + (i * stride) % (numCores - 1));
    sys.spawn(c, thiefTask(sys, sys.core(c), ctx));
  }

  sys.run();
  sys.rethrowFailures();
  COLIBRI_CHECK_MSG(sys.allTasksDone(), "wsdeque workers failed to drain");

  WsDequeResult res;
  res.duration = ctx.lastRetire;
  res.executed = ctx.executed;
  res.ownerPops = ctx.ownerPops;
  res.steals = ctx.steals;
  res.failedSteals = ctx.failedSteals;
  res.duplicates = ctx.duplicates;
  std::uint64_t markSum = 0;
  for (const auto m : ctx.marks) {
    markSum += sys.peek(m);
  }
  res.verified = ctx.duplicates == 0 && ctx.executed == ctx.tasks &&
                 markSum == ctx.tasks && sys.peek(ctx.remaining) == 0;
  COLIBRI_CHECK_MSG(res.verified,
                    "wsdeque: exactly-once violated, executed="
                        << ctx.executed << " duplicates=" << ctx.duplicates
                        << " markSum=" << markSum);
  res.counters = snapshotCounters(sys, res.duration,
                                  static_cast<std::uint32_t>(1 + thieves));
  return res;
}

}  // namespace colibri::workloads
