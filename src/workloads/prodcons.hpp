// Producer/consumer pipeline (the paper's Mwait motivation: "a core may
// monitor a queue and be woken up when an element is pushed").
//
// Producers generate items at a configurable rate into the shared ticket
// queue; consumers process them (a fixed compute cost per item). With
// polling consumers, an idle pipeline still saturates banks and links;
// with Mwait consumers the idle side sleeps. The result reports the
// consumer sleep/poll fraction alongside throughput — the polling-
// reduction claim in a form Fig. 3/4 cannot show.
#pragma once

#include <cstdint>
#include <vector>

#include "sync/backoff.hpp"
#include "workloads/harness.hpp"

namespace colibri::workloads {

struct ProdConsParams {
  std::uint32_t producers = 8;
  std::uint32_t consumers = 8;
  /// Cycles a producer computes between items (item generation cost).
  std::uint32_t produceDelay = 64;
  /// Cycles a consumer computes per item.
  std::uint32_t consumeDelay = 16;
  bool useMwait = true;  ///< consumers sleep (Mwait) vs. poll
  std::uint32_t capacity = 64;
  MeasureWindow window{};
  sync::BackoffPolicy backoff = sync::BackoffPolicy::fixed(128);
};

struct ProdConsResult {
  double itemsPerCycle = 0.0;
  std::uint64_t itemsConsumed = 0;
  std::uint64_t itemsInWindow = 0;  ///< consumed inside the window
  /// System-wide event counters over the measurement window (snapshot
  /// before the drain phase) — what the energy model charges.
  SystemCounters counters{};
  /// Fraction of consumer core-cycles spent asleep (Mwait) in the window.
  double consumerSleepFraction = 0.0;
  /// Memory requests issued by consumers per consumed item (polling cost).
  double consumerRequestsPerItem = 0.0;
  bool allItemsSeen = false;  ///< every produced item consumed exactly once
};

ProdConsResult runProdCons(arch::System& sys, const ProdConsParams& p);

}  // namespace colibri::workloads
