#include "workloads/matmul.hpp"

#include <memory>
#include <numeric>

#include "sim/check.hpp"
#include "sim/random.hpp"
#include "sync/atomic.hpp"
#include "sync/mcs.hpp"
#include "sync/spinlock.hpp"

namespace colibri::workloads {

namespace {

struct MatmulCtx {
  std::uint32_t n = 0;
  sim::Addr a = 0;
  sim::Addr b = 0;
  sim::Addr c = 0;
  std::uint32_t workersTotal = 0;
  std::uint32_t workersDone = 0;
  sim::Cycle lastDone = 0;
  std::uint64_t macs = 0;
  bool pollersStop = false;
};

/// One worker computes every `stride`-th output element starting at `first`
/// (cyclic distribution balances load).
sim::Task matmulWorker(arch::System& sys, arch::Core& core, MatmulCtx& ctx,
                       std::uint32_t first, std::uint32_t stride) {
  const std::uint32_t n = ctx.n;
  for (std::uint32_t e = first; e < n * n; e += stride) {
    const std::uint32_t i = e / n;
    const std::uint32_t j = e % n;
    sim::Word acc = 0;
    for (std::uint32_t k = 0; k < n; ++k) {
      const auto av = co_await core.load(ctx.a + i * n + k);
      const auto bv = co_await core.load(ctx.b + k * n + j);
      co_await core.delay(1);  // MAC
      acc += av.value * bv.value;
      ++ctx.macs;
    }
    (void)co_await core.store(ctx.c + e, acc);
  }
  ++ctx.workersDone;
  if (ctx.workersDone == ctx.workersTotal) {
    ctx.lastDone = sys.now();
    ctx.pollersStop = true;  // (only read by the interference harness)
  }
}

void initMatrices(arch::System& sys, MatmulCtx& ctx) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, 0xA17A);
  for (std::uint32_t i = 0; i < ctx.n * ctx.n; ++i) {
    sys.poke(ctx.a + i, static_cast<sim::Word>(rng.below(16)));
    sys.poke(ctx.b + i, static_cast<sim::Word>(rng.below(16)));
    sys.poke(ctx.c + i, 0);
  }
}

bool verifyMatmul(arch::System& sys, const MatmulCtx& ctx) {
  // Full host-side check: n is small (<= 64) so this is cheap.
  const std::uint32_t n = ctx.n;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      sim::Word acc = 0;
      for (std::uint32_t k = 0; k < n; ++k) {
        acc += sys.peek(ctx.a + i * n + k) * sys.peek(ctx.b + k * n + j);
      }
      if (sys.peek(ctx.c + i * n + j) != acc) {
        return false;
      }
    }
  }
  return true;
}

MatmulCtx setupMatmul(arch::System& sys, const MatmulParams& p) {
  COLIBRI_CHECK(p.n >= 1 && !p.workers.empty());
  MatmulCtx ctx;
  ctx.n = p.n;
  const std::uint64_t words = static_cast<std::uint64_t>(p.n) * p.n;
  ctx.a = sys.allocator().allocGlobal(words);
  ctx.b = sys.allocator().allocGlobal(words);
  ctx.c = sys.allocator().allocGlobal(words);
  ctx.workersTotal = static_cast<std::uint32_t>(p.workers.size());
  initMatrices(sys, ctx);
  return ctx;
}

void spawnWorkers(arch::System& sys, const MatmulParams& p, MatmulCtx& ctx) {
  const auto stride = static_cast<std::uint32_t>(p.workers.size());
  for (std::uint32_t w = 0; w < stride; ++w) {
    sys.spawn(p.workers[w],
              matmulWorker(sys, sys.core(p.workers[w]), ctx, w, stride));
  }
}

}  // namespace

MatmulResult runMatmul(arch::System& sys, const MatmulParams& p) {
  MatmulCtx ctx = setupMatmul(sys, p);
  spawnWorkers(sys, p, ctx);
  sys.run();
  sys.rethrowFailures();
  COLIBRI_CHECK(sys.allTasksDone());

  MatmulResult r;
  r.duration = ctx.lastDone;
  r.macs = ctx.macs;
  r.verified = verifyMatmul(sys, ctx);
  COLIBRI_CHECK_MSG(r.verified, "matmul result mismatch");
  return r;
}

namespace {

/// Poller: histogram increments forever (until the workers finish).
sim::Task pollerTask(arch::System& sys, arch::Core& core, MatmulCtx& ctx,
                     const std::vector<sim::Addr>& bins,
                     const InterferenceParams& p, std::uint64_t* updates) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, 0x9011 + core.id());
  sync::Backoff backoff(p.pollerBackoff, rng);
  const auto flavor = p.pollerMode == HistogramMode::kAmoAdd
                          ? sync::RmwFlavor::kAmo
                          : (p.pollerMode == HistogramMode::kLrsc
                                 ? sync::RmwFlavor::kLrsc
                                 : sync::RmwFlavor::kLrscWait);
  while (!ctx.pollersStop) {
    co_await core.delay(4);
    const sim::Addr bin = bins[rng.below(bins.size())];
    const auto r =
        co_await sync::fetchAdd(core, flavor, bin, 1, backoff,
                                &ctx.pollersStop);
    if (r.performed) {
      ++*updates;
    }
  }
}

}  // namespace

InterferenceResult runInterference(arch::System& sys,
                                   const InterferenceParams& p) {
  COLIBRI_CHECK_MSG(p.pollerMode == HistogramMode::kAmoAdd ||
                        p.pollerMode == HistogramMode::kLrsc ||
                        p.pollerMode == HistogramMode::kLrscWait,
                    "interference pollers use direct RMW modes");
  MatmulCtx ctx = setupMatmul(sys, p.matmul);
  // One bin per bank, starting mid-machine: the hot banks must not be
  // co-located with the worker cores' tiles (local-tile accesses bypass
  // the shared ingress, which would mask the interference under study).
  const auto numBanks = sys.numBanks();
  std::vector<sim::Addr> bins;
  bins.reserve(p.bins);
  for (std::uint32_t i = 0; i < p.bins; ++i) {
    const sim::BankId bank = (numBanks / 2 + i) % numBanks;
    bins.push_back(sys.allocator().allocInBank(bank));
    sys.poke(bins.back(), 0);
  }

  InterferenceResult res;
  spawnWorkers(sys, p.matmul, ctx);
  for (const auto c : p.pollers) {
    sys.spawn(c, pollerTask(sys, sys.core(c), ctx, bins, p,
                            &res.pollerUpdates));
  }
  sys.run();
  sys.rethrowFailures();
  COLIBRI_CHECK(sys.allTasksDone());

  res.matmul.duration = ctx.lastDone;
  res.matmul.macs = ctx.macs;
  res.matmul.verified = verifyMatmul(sys, ctx);
  COLIBRI_CHECK_MSG(res.matmul.verified, "matmul result mismatch");
  return res;
}

}  // namespace colibri::workloads
