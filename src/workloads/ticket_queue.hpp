// Bounded MPMC ticket queue (Vyukov-style) on the simulated memory.
//
// Two shared ticket counters are claimed with a generic fetch-add RMW (the
// flavor under test: LR/SC or LRwait/SCwait); each slot has a sequence
// word mediating the producer/consumer hand-off. Waiting on a sequence
// word either polls or sleeps with Mwait.
//
// Blocking semantics: enqueue blocks while the queue is full, dequeue
// blocks while it is empty (the ticket holder waits for its slot's
// sequence word).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/system.hpp"
#include "core/core.hpp"
#include "sim/co.hpp"
#include "sync/atomic.hpp"
#include "sync/backoff.hpp"

namespace colibri::workloads {

class TicketQueue {
 public:
  /// Allocate queue storage. `prefill` values are pre-published so early
  /// dequeuers don't block (they consume tickets 0..prefill-1).
  static TicketQueue create(arch::System& sys, std::uint32_t capacity,
                            const std::vector<sim::Word>& prefill = {});

  sim::Co<void> enqueue(arch::Core& core, sim::Word v,
                        sync::RmwFlavor flavor, bool useMwait,
                        sync::Backoff& backoff);

  /// Dequeue one value; if `ticketOut` is non-null, receives the claim
  /// ticket (the linearization index of this dequeue).
  sim::Co<sim::Word> dequeue(arch::Core& core, sync::RmwFlavor flavor,
                             bool useMwait, sync::Backoff& backoff,
                             sim::Word* ticketOut = nullptr);

  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }
  [[nodiscard]] sim::Addr tailAddr() const { return tail_; }
  [[nodiscard]] sim::Addr headAddr() const { return head_; }
  [[nodiscard]] sim::Addr seqAddr(std::uint32_t slot) const {
    return seq_[slot];
  }
  [[nodiscard]] sim::Addr valAddr(std::uint32_t slot) const {
    return val_[slot];
  }

  /// Wait until *a == want (polling or Mwait). Shared helper, also used by
  /// other slot-handoff patterns.
  static sim::Co<void> awaitValue(arch::Core& core, sim::Addr a,
                                  sim::Word want, bool useMwait,
                                  sync::Backoff& backoff);

 private:
  sim::Addr tail_ = 0;
  sim::Addr head_ = 0;
  std::vector<sim::Addr> seq_;
  std::vector<sim::Addr> val_;
  std::uint32_t capacity_ = 0;
};

}  // namespace colibri::workloads
