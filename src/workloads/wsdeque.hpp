// Chase–Lev work-stealing deque (owner pops, thieves steal; run to
// completion).
//
// One owner core drains a pre-filled ring of tasks from the bottom while
// every thief core steals from the top. The owner's pop publishes the new
// bottom with an *acked* store (the simulator's fence idiom — posted
// stores to different banks complete out of order, and Chase–Lev's
// correctness hinges on the thief seeing the decremented bottom before it
// reads it); top advances only by reservation CAS, in the owner/thief
// race for the last element too.
//
// Each task executes exactly once: execution bumps a per-task mark word
// with an atomic add and the old value must be 0 — a duplicate steal or a
// doubly-popped bottom element is caught immediately, not inferred from
// aggregate counts. A shared remaining-counter, decremented per execution,
// tells the thieves when to retire.
//
// This is the suite's completion-style concurrent workload (like matmul):
// the figure of merit is the makespan of the task set and the share of
// tasks the thieves won. The AMO-only adapter cannot run it (the top CAS
// needs reservations).
#pragma once

#include <cstdint>

#include "sync/backoff.hpp"
#include "workloads/harness.hpp"

namespace colibri::workloads {

struct WsDequeParams {
  std::uint32_t tasks = 0;       ///< ring size; 0 = 8 * #cores
  std::uint32_t taskCycles = 12; ///< compute per task
  /// Stealing cores (owner is core 0 of the system); 0 = all other cores.
  std::uint32_t thieves = 0;
  /// Exponential by default: every thief CASes the one top word, and on
  /// the single-slot LR/SC adapter a fixed short backoff livelocks (the
  /// competing LRs keep displacing each other's reservation); growth
  /// spaces the retries until someone's SC lands.
  sync::BackoffPolicy backoff = sync::BackoffPolicy::exponential(16, 2048);
};

struct WsDequeResult {
  sim::Cycle duration = 0;       ///< spawn -> last task retired
  std::uint64_t executed = 0;    ///< tasks run (must equal the ring size)
  std::uint64_t ownerPops = 0;   ///< tasks the owner took from the bottom
  std::uint64_t steals = 0;      ///< tasks thieves won from the top
  std::uint64_t failedSteals = 0;  ///< top CASes thieves lost
  std::uint64_t duplicates = 0;  ///< mark words found already set (must be 0)
  bool verified = false;  ///< every task ran exactly once, nothing remained
  /// Window counters over the whole run (stats are never reset).
  SystemCounters counters;
};

/// Run the deque to completion. Requires a reservation-capable adapter.
WsDequeResult runWsDeque(arch::System& sys, const WsDequeParams& p);

}  // namespace colibri::workloads
