#include "workloads/prodcons.hpp"

#include "sim/check.hpp"
#include "sim/random.hpp"
#include "workloads/ticket_queue.hpp"

namespace colibri::workloads {

namespace {

constexpr sim::Word kPoison = 0xFFFFFFFF;

struct PcCtx {
  ProdConsParams params;
  TicketQueue queue;
  sync::RmwFlavor flavor = sync::RmwFlavor::kLrscWait;
  bool stopProducing = false;
  std::uint32_t activeProducers = 0;
  std::uint64_t produced = 0;
  std::uint64_t consumed = 0;
  std::uint64_t consumedInWindow = 0;
  sim::Cycle windowStart = 0;
  sim::Cycle windowEnd = 0;
};

sim::Task producerTask(arch::System& sys, arch::Core& core, PcCtx& ctx,
                       bool poisoner) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, 0xF00D + core.id());
  sync::Backoff backoff(ctx.params.backoff, rng);
  const bool useMwait = ctx.params.useMwait;
  sim::Word item = 1;
  while (!ctx.stopProducing) {
    co_await core.delay(ctx.params.produceDelay);
    co_await ctx.queue.enqueue(core, item++, ctx.flavor, useMwait, backoff);
    ++ctx.produced;
  }
  --ctx.activeProducers;
  if (poisoner) {
    // One designated producer shuts the pipeline down: one poison pill per
    // consumer (each consumer exits after eating exactly one). The pills
    // must be the LAST items in ticket order — a producer still blocked in
    // its final enqueue could otherwise land behind them and its item would
    // never be consumed — so wait for every producer to quiesce first.
    while (ctx.activeProducers > 0) {
      co_await core.delay(16);
    }
    for (std::uint32_t i = 0; i < ctx.params.consumers; ++i) {
      co_await ctx.queue.enqueue(core, kPoison, ctx.flavor, useMwait,
                                 backoff);
    }
  }
}

sim::Task consumerTask(arch::System& sys, arch::Core& core, PcCtx& ctx) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, 0xCAFE + core.id());
  sync::Backoff backoff(ctx.params.backoff, rng);
  const bool useMwait = ctx.params.useMwait;
  while (true) {
    const auto v =
        co_await ctx.queue.dequeue(core, ctx.flavor, useMwait, backoff);
    if (v == kPoison) {
      co_return;
    }
    co_await core.delay(ctx.params.consumeDelay);
    ++ctx.consumed;
    const auto now = sys.now();
    if (now >= ctx.windowStart && now < ctx.windowEnd) {
      ++ctx.consumedInWindow;
    }
  }
}

}  // namespace

ProdConsResult runProdCons(arch::System& sys, const ProdConsParams& p) {
  const auto adapter = sys.config().adapter;
  const bool waitCapable = adapter == arch::AdapterKind::kLrscWait ||
                           adapter == arch::AdapterKind::kColibri;
  COLIBRI_CHECK_MSG(waitCapable || !p.useMwait,
                    "Mwait consumers need a wait-capable adapter");
  COLIBRI_CHECK(p.producers >= 1 && p.consumers >= 1);
  COLIBRI_CHECK(p.producers + p.consumers <= sys.numCores());

  PcCtx ctx;
  ctx.params = p;
  ctx.flavor =
      waitCapable ? sync::RmwFlavor::kLrscWait : sync::RmwFlavor::kLrsc;
  ctx.queue = TicketQueue::create(sys, p.capacity);
  ctx.activeProducers = p.producers;
  ctx.windowStart = p.window.warmup;
  ctx.windowEnd = p.window.horizon();

  std::vector<sim::CoreId> consumerCores;
  for (std::uint32_t i = 0; i < p.producers; ++i) {
    sys.spawn(i, producerTask(sys, sys.core(i), ctx, i == 0));
  }
  for (std::uint32_t i = 0; i < p.consumers; ++i) {
    const sim::CoreId c = p.producers + i;
    consumerCores.push_back(c);
    sys.spawn(c, consumerTask(sys, sys.core(c), ctx));
  }
  sys.at(ctx.windowStart, [&sys] { sys.resetStats(); });
  sys.at(ctx.windowEnd, [&ctx] { ctx.stopProducing = true; });

  sys.runUntil(ctx.windowEnd);
  // Consumer-side counters over the window (before the drain phase).
  std::uint64_t consumerSleep = 0;
  std::uint64_t consumerIssued = 0;
  for (const auto c : consumerCores) {
    consumerSleep += sys.core(c).stats().sleepCycles;
    consumerIssued += sys.core(c).stats().totalIssued();
  }
  const std::uint64_t windowItems = ctx.consumedInWindow;
  const SystemCounters windowCounters =
      snapshotCounters(sys, p.window.measure, p.producers + p.consumers);

  sys.run();  // drain: poison pills terminate every consumer
  sys.rethrowFailures();
  COLIBRI_CHECK_MSG(sys.allTasksDone(), "prod/cons failed to drain");

  ProdConsResult res;
  res.itemsConsumed = ctx.consumed;
  res.itemsInWindow = windowItems;
  res.counters = windowCounters;
  res.allItemsSeen = ctx.consumed == ctx.produced;
  COLIBRI_CHECK_MSG(res.allItemsSeen, "lost items: produced "
                                          << ctx.produced << " consumed "
                                          << ctx.consumed);
  res.itemsPerCycle = p.window.measure == 0
                          ? 0.0
                          : static_cast<double>(windowItems) /
                                static_cast<double>(p.window.measure);
  const double consumerCycles =
      static_cast<double>(p.window.measure) * p.consumers;
  res.consumerSleepFraction =
      consumerCycles == 0.0 ? 0.0
                            : static_cast<double>(consumerSleep) /
                                  consumerCycles;
  res.consumerRequestsPerItem =
      windowItems == 0 ? 0.0
                       : static_cast<double>(consumerIssued) /
                             static_cast<double>(windowItems);
  return res;
}

}  // namespace colibri::workloads
