// Concurrent histogram benchmark (paper Section V-A, Figs. 3 and 4).
//
// Every participating core repeatedly picks a random bin and atomically
// increments it. The bin count sets the contention level: 1 bin = all
// cores on one address/bank; 1024 bins spread across every bank. Modes
// cover all curves of both figures:
//
//   Fig. 3 (RMW flavors):  kAmoAdd, kLrsc, kLrscWait  (the LRSCwait curve
//     family — ideal/128/1/Colibri — comes from the system's adapter
//     configuration, not the mode)
//   Fig. 4 (lock flavors): kAmoLock, kLrscLock, kLrwaitLock (spin locks,
//     128-cycle backoff) and kMcsMwaitLock / kMcsPollLock (MCS).
//
// The run self-checks: the sum over all bins must equal the number of
// increments performed.
#pragma once

#include <cstdint>
#include <vector>

#include "sync/backoff.hpp"
#include "workloads/harness.hpp"

namespace colibri::workloads {

enum class HistogramMode : std::uint8_t {
  kAmoAdd,
  kLrsc,
  kLrscWait,
  kAmoLock,
  kLrscLock,
  kLrwaitLock,
  kMcsMwaitLock,
  kMcsPollLock,
};

[[nodiscard]] const char* toString(HistogramMode m);

/// Does this mode require a wait-capable adapter (LrscWait or Colibri)?
[[nodiscard]] bool needsWaitSupport(HistogramMode m);

struct HistogramParams {
  std::uint32_t bins = 16;
  HistogramMode mode = HistogramMode::kAmoAdd;
  sync::BackoffPolicy backoff = sync::BackoffPolicy::fixed(128);
  MeasureWindow window{};
  /// Per-iteration non-atomic work: bin selection, loop overhead.
  std::uint32_t iterDelay = 4;
  /// Extra compute inside a lock-protected critical section.
  std::uint32_t csDelay = 1;
  /// Participating cores; empty = all cores of the system.
  std::vector<sim::CoreId> cores;
};

struct HistogramResult {
  RateResult rate;
  std::uint64_t totalUpdates = 0;  ///< all increments, incl. outside window
  bool sumVerified = false;        ///< Σ bins == totalUpdates
  sim::Cycle drainCycles = 0;      ///< cycles from stop flag to full drain
};

/// Run the histogram on a fresh system. The system's adapter must support
/// the mode's operations (checked).
HistogramResult runHistogram(arch::System& sys, const HistogramParams& p);

}  // namespace colibri::workloads
