#include "workloads/lockfair.hpp"

#include <numeric>

#include "sim/check.hpp"
#include "sim/random.hpp"
#include "sync/spinlock.hpp"

namespace colibri::workloads {

namespace {

struct LockCtx {
  const LockFairParams* params = nullptr;
  sim::Addr lock = 0;
  sim::Addr overlap = 0;  ///< occupancy probe, litmus-style
  sim::Addr shared = 0;   ///< lock-protected word, bumped per CS
  sync::SpinLockKind kind = sync::SpinLockKind::kAmoTas;
  bool stop = false;
  sim::Cycle windowStart = 0;
  sim::Cycle windowEnd = 0;
  std::vector<std::uint64_t> perCoreWindow;
  std::vector<std::vector<double>> perCoreWait;
  std::uint64_t acquisitions = 0;
  std::uint64_t exclusionViolations = 0;
};

sim::Task lockWorker(arch::System& sys, arch::Core& core, LockCtx& ctx,
                     std::uint32_t idx) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, 0x10CF + core.id());
  sync::Backoff backoff(ctx.params->backoff, rng);
  while (!ctx.stop) {
    const auto waitFrom = sys.now();
    co_await sync::acquireLock(core, ctx.kind, ctx.lock, backoff);
    const auto held = sys.now();

    // Occupancy probe: anyone else inside means the lock is broken.
    const auto occ = co_await core.amoAdd(ctx.overlap, 1);
    if (occ.value != 0) {
      ++ctx.exclusionViolations;
    }
    co_await core.delay(ctx.params->csCycles);
    // Publish the protected update with an acked store before releasing
    // (the fence the posted-store model requires; see spinlock.hpp).
    const auto seen = co_await core.load(ctx.shared);
    (void)co_await core.amoSwap(ctx.shared, seen.value + 1);
    (void)co_await core.amoAdd(ctx.overlap, sim::Word(-1));
    co_await sync::releaseLock(core, ctx.lock);

    ++ctx.acquisitions;
    if (held >= ctx.windowStart && held < ctx.windowEnd) {
      ++ctx.perCoreWindow[idx];
      ctx.perCoreWait[idx].push_back(static_cast<double>(held - waitFrom));
    }
    co_await core.delay(1 + ctx.params->thinkCycles + rng.below(8));
  }
}

}  // namespace

LockFairResult runLockFair(arch::System& sys, const LockFairParams& p) {
  std::vector<sim::CoreId> cores = p.cores;
  if (cores.empty()) {
    cores.resize(sys.numCores());
    std::iota(cores.begin(), cores.end(), 0);
  }
  const auto participants = static_cast<std::uint32_t>(cores.size());

  LockCtx ctx;
  ctx.params = &p;
  ctx.kind = lockKindFor(sys.config().adapter);
  auto& alloc = sys.allocator();
  ctx.lock = alloc.allocGlobal(1);
  ctx.overlap = alloc.allocGlobal(1);
  ctx.shared = alloc.allocGlobal(1);
  sys.poke(ctx.lock, 0);
  sys.poke(ctx.overlap, 0);
  sys.poke(ctx.shared, 0);
  ctx.perCoreWindow.assign(participants, 0);
  ctx.perCoreWait.resize(participants);
  ctx.windowStart = p.window.warmup;
  ctx.windowEnd = p.window.horizon();

  for (std::uint32_t i = 0; i < participants; ++i) {
    sys.spawn(cores[i], lockWorker(sys, sys.core(cores[i]), ctx, i));
  }
  sys.at(ctx.windowStart, [&sys] { sys.resetStats(); });
  sys.at(ctx.windowEnd, [&ctx] { ctx.stop = true; });

  sys.runUntil(ctx.windowEnd);
  const auto counters = snapshotCounters(sys, p.window.measure, participants);
  sys.run();
  sys.rethrowFailures();
  COLIBRI_CHECK_MSG(sys.allTasksDone(), "lockfair workers failed to drain");

  LockFairResult res;
  res.acquisitions = ctx.acquisitions;
  res.exclusionViolations = ctx.exclusionViolations;
  res.verified = ctx.exclusionViolations == 0 && sys.peek(ctx.lock) == 0 &&
                 sys.peek(ctx.overlap) == 0 &&
                 sys.peek(ctx.shared) == ctx.acquisitions;
  COLIBRI_CHECK_MSG(res.verified,
                    "lockfair: lock invariant violated, overlaps="
                        << ctx.exclusionViolations
                        << " shared=" << sys.peek(ctx.shared)
                        << " acquisitions=" << ctx.acquisitions);

  res.rate = summarizeRates(ctx.perCoreWindow, p.window.measure, counters);
  res.acqSpread = sim::Summary::ofCounts(ctx.perCoreWindow);
  std::size_t samples = 0;
  for (const auto& v : ctx.perCoreWait) {
    samples += v.size();
  }
  std::vector<double> waits;
  waits.reserve(samples);
  for (const auto& v : ctx.perCoreWait) {
    waits.insert(waits.end(), v.begin(), v.end());
  }
  res.handoff = sim::Summary::of(waits);
  return res;
}

}  // namespace colibri::workloads
