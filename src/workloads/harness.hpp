// Shared measurement scaffolding for workload runs.
//
// The paper reports steady-state rates over a measurement window. A run
// proceeds as: spawn workers at cycle 0, let them warm up, reset counters,
// measure until the horizon, flip the stop flag, then drain (workers
// finish their current operation — an LRwait must still be closed by its
// SCwait — and exit, which also drains every reservation queue).
//
// One workload run per System instance: suspended coroutine frames and
// adapter reservation state are not recycled across workloads.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "arch/system.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"
#include "sync/atomic.hpp"
#include "sync/spinlock.hpp"

namespace colibri::workloads {

using sim::Cycle;

/// The RMW flavor each adapter natively runs (AMO adds on the AMO-only
/// adapter, LRwait/SCwait on wait-capable ones, plain LR/SC otherwise) —
/// the mapping every workload kernel shares.
[[nodiscard]] sync::RmwFlavor rmwFlavorFor(arch::AdapterKind k);

/// The TAS spin-lock kind each adapter natively runs.
[[nodiscard]] sync::SpinLockKind lockKindFor(arch::AdapterKind k);

struct MeasureWindow {
  Cycle warmup = 3000;
  Cycle measure = 30000;

  [[nodiscard]] Cycle horizon() const { return warmup + measure; }
};

/// Aggregated hardware event counters over the measurement window —
/// everything the energy model (Table II) needs.
struct SystemCounters {
  std::uint64_t instructions = 0;  ///< issued ops incl. retries
  std::uint64_t computeCycles = 0;
  std::uint64_t sleepCycles = 0;  ///< cores asleep in LRwait/Mwait
  std::uint64_t stallCycles = 0;
  std::uint64_t bankAccesses = 0;
  std::array<std::uint64_t, 3> netMessages{};  ///< by Distance
  Cycle windowCycles = 0;
  std::uint32_t activeCores = 0;

  /// Busy core-cycles = window * cores - sleep (a sleeping core burns
  /// almost nothing; everything else is pipeline-active or stalled).
  [[nodiscard]] std::uint64_t busyCoreCycles() const {
    const std::uint64_t total =
        static_cast<std::uint64_t>(windowCycles) * activeCores;
    return total > sleepCycles ? total - sleepCycles : 0;
  }
};

/// Snapshot the window counters from a system whose stats were reset at
/// the window start. `participants` = cores that ran during the window.
[[nodiscard]] SystemCounters snapshotCounters(arch::System& sys,
                                              Cycle windowCycles,
                                              std::uint32_t participants);

/// Per-core completion counts → rate + fairness numbers for the figures.
struct RateResult {
  double opsPerCycle = 0.0;
  std::uint64_t opsInWindow = 0;
  std::vector<std::uint64_t> perCoreWindowOps;
  double fairnessJain = 1.0;
  double perCoreMinRate = 0.0;  ///< slowest core, ops/cycle (Fig. 6 band)
  double perCoreMaxRate = 0.0;  ///< fastest core, ops/cycle
  SystemCounters counters;
};

[[nodiscard]] RateResult summarizeRates(
    const std::vector<std::uint64_t>& perCoreWindowOps, Cycle windowCycles,
    const SystemCounters& counters);

}  // namespace colibri::workloads
