// Lock-free open-addressing hash table (insert + lookup steady state).
//
// A linear-probing table of SPM words (0 = empty slot) shared by every
// participating core. Inserts claim an empty slot with a reservation CAS
// (0 -> key); lookups probe from the hash until they hit the key or an
// empty slot. Keys are unique per worker, so a successful CAS publishes
// exactly one key and the table never needs deletion or resizing.
//
// Each worker front-loads its insert budget (a bounded share of the table,
// keeping the load factor — and therefore probe lengths — stable across
// window sizes) and then switches to lookups of its own published keys.
// This makes the workload CAS-heavy early and read-probe-heavy at steady
// state: the same claim-a-word contention pattern as the paper's queue
// benches, but spread across many addresses instead of two hot words.
//
// The run self-checks from the host side after the drain: the number of
// occupied slots must equal the number of successful inserts, and every
// key a worker reported inserted must be reachable by probing from its
// hash. The AMO-only adapter cannot run this workload (CAS needs
// reservations).
#pragma once

#include <cstdint>
#include <vector>

#include "sync/backoff.hpp"
#include "workloads/harness.hpp"

namespace colibri::workloads {

struct HashTableParams {
  std::uint32_t slots = 0;        ///< table size in words; 0 = 16 * #cores
  /// Successful inserts each worker performs before switching to lookups;
  /// 0 = an equal share of half the table (load factor capped at 1/2).
  std::uint32_t keysPerCore = 0;
  sync::BackoffPolicy backoff = sync::BackoffPolicy::fixed(32);
  MeasureWindow window{};
  std::uint32_t iterDelay = 4;  ///< per-iteration local work
  std::vector<sim::CoreId> cores;  ///< participants; empty = all
};

struct HashTableResult {
  /// Completed operations (inserts + lookups) per cycle over the window.
  RateResult rate;
  std::uint64_t inserts = 0;      ///< successful inserts (all outside-window
                                  ///< work included)
  std::uint64_t lookups = 0;      ///< completed lookups
  std::uint64_t probeSteps = 0;   ///< total slots examined across all ops
  bool verified = false;  ///< occupancy == inserts and every key reachable
};

/// Run the table on a fresh system. Requires a reservation-capable adapter.
HashTableResult runHashTable(arch::System& sys, const HashTableParams& p);

}  // namespace colibri::workloads
