// Spin-lock fairness and handoff study (windowed).
//
// Every participating core loops acquire -> critical section -> release ->
// think on one global test-and-set lock, using the TAS flavor the system's
// adapter natively runs (amoswap, LR/SC, or LRwait/SCwait). Two things are
// measured over the window that a plain throughput number hides:
//
//   - fairness: the per-core acquisition-count distribution (min / max /
//     percentiles via sim::Summary, Jain index via the rate summary) — a
//     TAS lock over a banked interconnect systematically favors cores
//     close to the lock's bank, and the wait-capable adapters queue
//     waiters instead, flattening the spread;
//   - handoff: the cycles each acquisition spent waiting, from first
//     attempt to lock held (the latency distribution of the handoff path).
//
// The critical section carries the same occupancy probe as the litmus
// suite (atomic add on an overlap word, old value must be 0), so a broken
// lock is caught as an exclusion violation, not a statistical anomaly.
#pragma once

#include <cstdint>
#include <vector>

#include "sync/backoff.hpp"
#include "workloads/harness.hpp"

namespace colibri::workloads {

struct LockFairParams {
  std::uint32_t csCycles = 8;     ///< compute inside the critical section
  std::uint32_t thinkCycles = 16; ///< local work between releases
  sync::BackoffPolicy backoff = sync::BackoffPolicy::fixed(128);
  MeasureWindow window{};
  std::vector<sim::CoreId> cores;  ///< participants; empty = all
};

struct LockFairResult {
  /// Acquisitions per cycle over the window, plus the Jain index.
  RateResult rate;
  std::uint64_t acquisitions = 0;  ///< total, incl. outside the window
  /// Distribution of per-core window acquisition counts (the fairness
  /// spread: max/min >> 1 means the lock starves distant cores).
  sim::Summary acqSpread{};
  /// Cycles from first acquire attempt to lock held, per acquisition in
  /// the window.
  sim::Summary handoff{};
  std::uint64_t exclusionViolations = 0;  ///< must be 0
  bool verified = false;  ///< no overlap, lock left free, counts add up
};

LockFairResult runLockFair(arch::System& sys, const LockFairParams& p);

}  // namespace colibri::workloads
