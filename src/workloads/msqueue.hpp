// Concurrent FIFO queue benchmark (paper Section V-A "Queue", Fig. 6).
//
// The paper benchmarks a concurrent queue implemented with LRSC, with
// LRSCwait, and as a lock-based queue. We implement a bounded MPMC ticket
// queue (Vyukov-style): two shared counters (head/tail tickets) claimed
// with a generic fetch-add RMW, and per-slot sequence words for the
// producer/consumer hand-off. This preserves the paper's contention
// pattern — two hot words hammered by every core plus a distributed
// hand-off — while being safe against node-reuse hazards in simulation.
// (Substitution documented in DESIGN.md/EXPERIMENTS.md.)
//
// Variants (the Fig. 6 curves):
//   kLrsc     — ticket RMWs with LR/SC, slot waits by polling
//   kLrscWait — ticket RMWs with LRwait/SCwait, slot waits with Mwait
//               ("Colibri" curve on a Colibri system)
//   kLock     — a spin lock (amoswap test-and-set, 128-cycle backoff)
//               protecting plain head/tail/slot updates ("Atomic Add lock")
#pragma once

#include <cstdint>
#include <vector>

#include "sync/backoff.hpp"
#include "workloads/harness.hpp"

namespace colibri::workloads {

enum class QueueVariant : std::uint8_t { kLrsc, kLrscWait, kLock };

[[nodiscard]] const char* toString(QueueVariant v);

struct QueueParams {
  QueueVariant variant = QueueVariant::kLrscWait;
  std::uint32_t capacity = 0;  ///< 0 = 2 * #cores
  /// Elements pre-filled so balanced enqueue/dequeue pairs never block on
  /// an empty queue at the start.
  std::uint32_t prefill = 0;  ///< 0 = capacity / 2
  sync::BackoffPolicy backoff = sync::BackoffPolicy::fixed(128);
  MeasureWindow window{};
  std::uint32_t iterDelay = 4;  ///< per-iteration local work
  std::vector<sim::CoreId> cores;  ///< participants; empty = all
};

struct QueueResult {
  /// Queue accesses (each enqueue and each dequeue counts as one).
  RateResult rate;
  std::uint64_t totalAccesses = 0;
  bool fifoVerified = false;  ///< per-producer element order preserved
};

QueueResult runQueue(arch::System& sys, const QueueParams& p);

}  // namespace colibri::workloads
