// Command-line options for the colibri-sim driver.
//
// The flag surface covers the full scenario space: adapter choice,
// workload choice, geometry (everything arch::SystemConfig exposes), the
// measurement window, and per-workload knobs. Parsing never aborts the
// process: errors come back as a message naming the offending flag plus a
// pointer to --help, so the driver (and the tests) can decide what to do.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace colibri::cli {

struct Options {
  // --- Scenario selection -----------------------------------------------
  std::string adapter = "colibri";
  std::string workload = "histogram";

  // --- Geometry (arch::SystemConfig) ------------------------------------
  std::uint32_t cores = 256;
  std::uint32_t coresPerTile = 4;
  std::uint32_t tilesPerGroup = 16;
  std::uint32_t banksPerTile = 16;
  std::uint32_t wordsPerBank = 256;

  // --- Adapter knobs ------------------------------------------------------
  /// LRSCwait_q reservation-queue capacity; 0 = "ideal" (one slot per core).
  std::uint32_t waitCapacity = 8;
  /// Colibri head/tail queue slots per memory controller.
  std::uint32_t colibriQueues = 4;

  // --- Measurement window -------------------------------------------------
  std::uint64_t warmup = 2000;
  std::uint64_t measure = 20000;

  // --- Workload knobs -----------------------------------------------------
  std::uint32_t bins = 16;          ///< histogram
  std::uint32_t backoffCycles = 128;
  std::uint32_t producers = 8;      ///< prodcons
  std::uint32_t consumers = 8;      ///< prodcons
  std::uint32_t queueCapacity = 0;  ///< msqueue/ticket_queue; 0 = 2*cores
  std::uint32_t matmulN = 32;       ///< matmul dimension
  std::uint32_t htSlots = 0;        ///< hashtable size; 0 = 16*cores
  std::uint32_t htKeys = 0;         ///< hashtable inserts/core; 0 = share
  std::uint32_t wsdTasks = 0;       ///< wsdeque ring size; 0 = 8*cores
  std::uint32_t taskCycles = 12;    ///< wsdeque compute per task
  std::uint32_t csCycles = 8;       ///< lockfair critical-section cycles

  // --- Workload-generator (wgen preset) overrides --------------------------
  /// Zipf skew θ for zipfian regions; negative = keep the preset value.
  double zipfTheta = -1.0;
  /// Hot-word probability for hotspot regions; negative = preset value.
  double hotFraction = -1.0;
  /// Region word count for non-strided regions; 0 = preset value.
  std::uint32_t wgenWords = 0;

  std::uint64_t seed = 0xC011B21;

  // --- Fault injection & watchdog -----------------------------------------
  /// Canned fault profile ("net_jitter" | "sc_storm" | "evict_churn" |
  /// "chaos") or "off" (default). Individual --fault-* flags overlay the
  /// profile (or enable single sites on top of "off").
  std::string faultProfile = "off";
  /// Fault decision seed; 0 derives one from --seed (so reps explore
  /// distinct fault schedules unless pinned here).
  std::uint64_t faultSeed = 0;
  /// "P,MAX" per-site overlays; empty = keep the profile's value. P alone
  /// is accepted for the probability-only site (sc-fail, evict).
  std::string faultNetDelay;
  std::string faultScFail;
  std::string faultEvict;
  std::string faultStall;
  /// Watchdog limit in cycles (no productive retirement for this long with
  /// tasks outstanding = diagnosed hang, exit 3). 0 disables.
  std::uint64_t watchdog = 250'000;
  /// Add the per-rep "fault" block (injected-fault counts) to --json.
  bool jsonFault = false;
  /// Run the stranded-LR hang demo instead of a workload: a re-introduced
  /// reservation leak the watchdog catches and names.
  bool hangDemo = false;

  // --- Litmus mode --------------------------------------------------------
  /// Litmus algorithm name ("dekker" | "peterson" | "bakery" | "tas" |
  /// "naive" | "race") or "all"; empty = normal workload mode.
  std::string litmus;
  /// Contending cores; 0 = the algorithm's default (clamped to its range).
  std::uint32_t contenders = 0;
  std::uint32_t litmusIters = 40;  ///< CS entries per contender
  /// Run the full algorithm x adapter matrix instead of one adapter.
  bool litmusMatrix = false;
  /// Posted (unfenced) protocol stores: the memory-model probe that lets
  /// the flag algorithms' store->load race actually happen.
  bool unfenced = false;

  // --- Experiment execution -----------------------------------------------
  /// Independent repetitions with derived seeds; > 1 reports aggregate
  /// mean/stddev across reps.
  std::uint32_t reps = 1;
  /// exp::SweepRunner pool size; 0 = hardware_concurrency.
  std::uint32_t threads = 0;
  /// Deterministic parallel-engine worker threads inside each simulated
  /// system; 1 = the classic sequential engine, 0 = auto (resolved to
  /// min(hardware threads, topology groups) once the geometry is known).
  /// Any value produces bit-identical results (scheduling is
  /// order-preserving), so this only changes wall-clock time.
  std::uint32_t engineThreads = 1;

  // --- Observability sinks -------------------------------------------------
  /// Write interval metric samples (deterministic metrics only) as CSV to
  /// this file. Requires --reps 1.
  std::string metricsCsv;
  /// Cycles between metric samples; 0 = default (1000) when a metrics
  /// sink is active.
  std::uint64_t metricsInterval = 0;
  /// Write per-request lifecycle spans as Chrome trace_event JSON
  /// (Perfetto-loadable) to this file. Requires --reps 1.
  std::string trace;
  /// Record every K-th op per core in the trace (deterministic sampling).
  std::uint32_t traceSample = 1;
  /// Add the per-rep "engine" block (parallel-engine diagnostics) to
  /// --json output. Off by default: the values vary with --engine-threads
  /// while default output must not.
  bool jsonEngine = false;

  // --- Output / control ---------------------------------------------------
  bool csv = false;
  bool json = false;
  /// Print parallel-engine counters (windows, barriers taken/elided,
  /// deferred intents, idle-shard skips) and frame-pool usage to stderr
  /// after the run. Machine outputs (csv/json/stdout) are untouched.
  bool stats = false;
  bool listScenarios = false;
  bool help = false;
};

/// Result of parsing: either a valid Options or an error message that
/// names the offending flag and suggests --help.
struct ParseResult {
  Options options;
  std::optional<std::string> error;

  [[nodiscard]] bool ok() const { return !error.has_value(); }
};

/// Parse argv (excluding argv[0]). Unknown flags, missing values, and
/// malformed numbers all produce ParseResult::error.
[[nodiscard]] ParseResult parseArgs(const std::vector<std::string>& args);

/// Print the flag reference (the --help text).
void printUsage(std::ostream& os);

}  // namespace colibri::cli
