// colibri-sim entry point. All logic lives in cli::runMain so the tests
// can drive the driver in-process.
#include <iostream>
#include <string>
#include <vector>

#include "cli/driver.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return colibri::cli::runMain(args, std::cout, std::cerr);
}
