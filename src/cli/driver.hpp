// Driver: turn parsed Options into a SystemConfig, run the selected
// workload on a fresh System, and print a report::Table with the result.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "cli/options.hpp"
#include "exp/scenario.hpp"

namespace colibri::cli {

/// Build the SystemConfig for the options + adapter. Returns an error
/// message (and leaves `cfg` unspecified) when the geometry is invalid.
[[nodiscard]] std::optional<std::string> buildConfig(
    const Options& opts, const exp::AdapterSpec& adapter,
    arch::SystemConfig& cfg);

/// Print the scenario registry (the --list output).
void printScenarios(std::ostream& os, bool csv);

/// Run one scenario end-to-end and print its result table to `out`.
/// Returns a process exit code; errors are written to `err`.
int runScenario(const Options& opts, std::ostream& out, std::ostream& err);

/// Full CLI entry point: parse args, handle --help/--list, dispatch.
int runMain(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace colibri::cli
