// Scenario registry: the cross product of every named adapter and every
// named workload, with the mapping rules that make each pair runnable
// (e.g. the histogram falls back from LRwait/SCwait to plain AMO adds on
// an AMO-only system; Mwait-based waiting degrades to polling on adapters
// without wait support).
//
// The registry is the single source of truth shared by the driver, the
// --list output, and the CLI tests.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arch/config.hpp"

namespace colibri::cli {

/// A named adapter configuration (AdapterKind plus the config knobs that
/// distinguish e.g. LRSCwait_q from LRSCwait_ideal).
struct AdapterSpec {
  std::string name;
  arch::AdapterKind kind;
  /// True for adapters that implement LRwait/SCwait and Mwait
  /// (reservation-queue waiting); false for retry-based LR/SC and AMO.
  bool waitCapable = false;
  /// True when --wait-capacity should be forced to numCores ("ideal").
  bool idealCapacity = false;
  std::string description;
};

struct WorkloadSpec {
  std::string name;
  std::string description;
};

/// One adapter x workload combination.
struct Scenario {
  AdapterSpec adapter;
  WorkloadSpec workload;
  /// False for combinations that cannot run. Currently only
  /// (amo, prodcons): the pipeline's ticket RMWs need LR/SC at minimum,
  /// and the AMO-only adapter rejects reservations outright. Queue
  /// workloads survive on amo by running lock-based (amoswap spinlock).
  bool supported = true;
  /// For unsupported pairs: the human-readable reason (shown by the CLI).
  std::string whyUnsupported;
};

/// All named adapters, in presentation order.
[[nodiscard]] const std::vector<AdapterSpec>& adapters();

/// All named workloads, in presentation order.
[[nodiscard]] const std::vector<WorkloadSpec>& workloads();

/// The full adapter x workload cross product (adapters-major order).
[[nodiscard]] std::vector<Scenario> allScenarios();

/// Look up by name; nullopt if unknown.
[[nodiscard]] std::optional<AdapterSpec> findAdapter(const std::string& name);
[[nodiscard]] std::optional<WorkloadSpec> findWorkload(const std::string& name);
/// The registry entry for one (adapter, workload) pair; nullopt if either
/// name is unknown.
[[nodiscard]] std::optional<Scenario> findScenario(const std::string& adapter,
                                                   const std::string& workload);

/// Comma-separated name lists for error messages.
[[nodiscard]] std::string adapterNameList();
[[nodiscard]] std::string workloadNameList();

}  // namespace colibri::cli
