// Compatibility shim: the scenario registry was promoted to exp/ (PR 2)
// so benches and tests can name scenarios without linking the CLI. The
// cli:: aliases keep existing includes and qualified names working.
#pragma once

#include "exp/scenario.hpp"

namespace colibri::cli {

using exp::AdapterSpec;
using exp::Scenario;
using exp::WorkloadSpec;

using exp::adapterNameList;
using exp::adapters;
using exp::allScenarios;
using exp::findAdapter;
using exp::findScenario;
using exp::findWorkload;
using exp::workloadNameList;
using exp::workloads;

}  // namespace colibri::cli
