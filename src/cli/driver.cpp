#include "cli/driver.hpp"

#include <exception>
#include <numeric>
#include <ostream>

#include "arch/system.hpp"
#include "report/table.hpp"
#include "sim/check.hpp"
#include "workloads/histogram.hpp"
#include "workloads/matmul.hpp"
#include "workloads/msqueue.hpp"
#include "workloads/prodcons.hpp"

namespace colibri::cli {
namespace {

workloads::MeasureWindow windowOf(const Options& opts) {
  return workloads::MeasureWindow{opts.warmup, opts.measure};
}

/// The histogram RMW flavor each adapter actually implements.
workloads::HistogramMode histogramModeFor(const AdapterSpec& adapter) {
  if (adapter.waitCapable) {
    return workloads::HistogramMode::kLrscWait;
  }
  if (adapter.kind == arch::AdapterKind::kAmoOnly) {
    return workloads::HistogramMode::kAmoAdd;
  }
  return workloads::HistogramMode::kLrsc;
}

/// The queue variant each adapter runs for the msqueue workload.
workloads::QueueVariant queueVariantFor(const AdapterSpec& adapter) {
  if (adapter.waitCapable) {
    return workloads::QueueVariant::kLrscWait;
  }
  if (adapter.kind == arch::AdapterKind::kAmoOnly) {
    return workloads::QueueVariant::kLock;
  }
  return workloads::QueueVariant::kLrsc;
}

void emit(const report::Table& table, std::ostream& out, bool csv) {
  if (csv) {
    table.printCsv(out);
  } else {
    table.print(out);
  }
}

/// In CSV mode the output must stay machine-clean: no banner line.
void maybeBanner(std::ostream& out, const Options& opts,
                 const std::string& title) {
  if (!opts.csv) {
    report::banner(out, title);
  }
}

double sleepFraction(const workloads::SystemCounters& c) {
  const double total =
      static_cast<double>(c.windowCycles) * static_cast<double>(c.activeCores);
  return total > 0.0 ? static_cast<double>(c.sleepCycles) / total : 0.0;
}

std::vector<std::string> rateHeaders() {
  return {"adapter", "workload",  "cores",   "ops/cycle",
          "ops",     "jain",      "sleep%",  "verified"};
}

std::vector<std::string> rateRow(const Options& opts,
                                 const workloads::RateResult& rate,
                                 bool verified) {
  return {opts.adapter,
          opts.workload,
          std::to_string(opts.cores),
          report::fmt(rate.opsPerCycle, 4),
          std::to_string(rate.opsInWindow),
          report::fmt(rate.fairnessJain, 3),
          report::fmtPercent(100.0 * sleepFraction(rate.counters)),
          verified ? "yes" : "NO"};
}

int runHistogram(const Options& opts, const AdapterSpec& adapter,
                 const arch::SystemConfig& cfg, std::ostream& out) {
  workloads::HistogramParams p;
  p.bins = opts.bins;
  p.mode = histogramModeFor(adapter);
  p.window = windowOf(opts);
  p.backoff = sync::BackoffPolicy::fixed(opts.backoffCycles);
  arch::System sys(cfg);
  const auto r = workloads::runHistogram(sys, p);

  maybeBanner(out, opts, "colibri-sim: histogram (" +
                              std::string(workloads::toString(p.mode)) +
                              ", " + std::to_string(opts.bins) +
                              " bins) on " + opts.adapter);
  auto headers = rateHeaders();
  headers.insert(headers.begin() + 3, "bins");
  auto row = rateRow(opts, r.rate, r.sumVerified);
  row.insert(row.begin() + 3, std::to_string(opts.bins));
  report::Table table(headers);
  table.addRow(row);
  emit(table, out, opts.csv);
  return r.sumVerified ? 0 : 1;
}

int runQueue(const Options& opts, const AdapterSpec& adapter,
             const arch::SystemConfig& cfg, std::ostream& out) {
  workloads::QueueParams p;
  p.variant = opts.workload == "ticket_queue"
                  ? workloads::QueueVariant::kLock
                  : queueVariantFor(adapter);
  p.capacity = opts.queueCapacity;
  p.window = windowOf(opts);
  p.backoff = sync::BackoffPolicy::fixed(opts.backoffCycles);
  arch::System sys(cfg);
  const auto r = workloads::runQueue(sys, p);

  maybeBanner(out, opts, "colibri-sim: " + opts.workload + " (" +
                              std::string(workloads::toString(p.variant)) +
                              ") on " + opts.adapter);
  report::Table table(rateHeaders());
  table.addRow(rateRow(opts, r.rate, r.fifoVerified));
  emit(table, out, opts.csv);
  return r.fifoVerified ? 0 : 1;
}

int runProdCons(const Options& opts, const AdapterSpec& adapter,
                const arch::SystemConfig& cfg, std::ostream& out,
                std::ostream& err) {
  if (opts.producers + opts.consumers > opts.cores) {
    err << "colibri-sim: --producers + --consumers (" << opts.producers
        << " + " << opts.consumers << ") exceeds --cores (" << opts.cores
        << ")\n";
    return 2;
  }
  workloads::ProdConsParams p;
  p.producers = opts.producers;
  p.consumers = opts.consumers;
  p.useMwait = adapter.waitCapable;
  p.window = windowOf(opts);
  p.backoff = sync::BackoffPolicy::fixed(opts.backoffCycles);
  arch::System sys(cfg);
  const auto r = workloads::runProdCons(sys, p);

  maybeBanner(out, opts, "colibri-sim: prodcons (" +
                              std::string(p.useMwait ? "Mwait" : "polling") +
                              " consumers) on " + opts.adapter);
  report::Table table({"adapter", "producers", "consumers", "items/cycle",
                       "items", "sleep%", "reqs/item", "verified"});
  table.addRow({opts.adapter, std::to_string(opts.producers),
                std::to_string(opts.consumers),
                report::fmt(r.itemsPerCycle, 4),
                std::to_string(r.itemsConsumed),
                report::fmtPercent(100.0 * r.consumerSleepFraction),
                report::fmt(r.consumerRequestsPerItem, 2),
                r.allItemsSeen ? "yes" : "NO"});
  emit(table, out, opts.csv);
  return r.allItemsSeen ? 0 : 1;
}

int runMatmul(const Options& opts, const arch::SystemConfig& cfg,
              std::ostream& out) {
  workloads::MatmulParams p;
  p.n = opts.matmulN;
  p.workers.resize(opts.cores);
  std::iota(p.workers.begin(), p.workers.end(), 0);
  arch::System sys(cfg);
  const auto r = workloads::runMatmul(sys, p);

  maybeBanner(out, opts,
              "colibri-sim: matmul (n=" + std::to_string(opts.matmulN) +
                  ") on " + opts.adapter);
  report::Table table(
      {"adapter", "workers", "n", "cycles", "macs", "macs/cycle", "verified"});
  table.addRow({opts.adapter, std::to_string(opts.cores),
                std::to_string(opts.matmulN), std::to_string(r.duration),
                std::to_string(r.macs),
                report::fmt(r.duration > 0
                                ? static_cast<double>(r.macs) /
                                      static_cast<double>(r.duration)
                                : 0.0,
                            2),
                r.verified ? "yes" : "NO"});
  emit(table, out, opts.csv);
  return r.verified ? 0 : 1;
}

}  // namespace

std::optional<std::string> buildConfig(const Options& opts,
                                       const AdapterSpec& adapter,
                                       arch::SystemConfig& cfg) {
  cfg = arch::SystemConfig{};
  cfg.numCores = opts.cores;
  cfg.coresPerTile = opts.coresPerTile;
  cfg.tilesPerGroup = opts.tilesPerGroup;
  cfg.banksPerTile = opts.banksPerTile;
  cfg.wordsPerBank = opts.wordsPerBank;
  cfg.adapter = adapter.kind;
  cfg.colibriQueuesPerController = opts.colibriQueues;
  cfg.seed = opts.seed;
  const std::uint32_t capacity =
      (adapter.idealCapacity || opts.waitCapacity == 0) ? opts.cores
                                                        : opts.waitCapacity;
  cfg.lrscWaitQueueCapacity = capacity;

  if (opts.cores == 0 || opts.coresPerTile == 0 || opts.tilesPerGroup == 0 ||
      opts.banksPerTile == 0 || opts.wordsPerBank == 0) {
    return "geometry values must be >= 1";
  }
  if (opts.cores % opts.coresPerTile != 0) {
    return "--cores (" + std::to_string(opts.cores) +
           ") must be a multiple of --cores-per-tile (" +
           std::to_string(opts.coresPerTile) + ")";
  }
  if (cfg.numTiles() % opts.tilesPerGroup != 0) {
    return "tile count (" + std::to_string(cfg.numTiles()) +
           ") must be a multiple of --tiles-per-group (" +
           std::to_string(opts.tilesPerGroup) + ")";
  }
  return std::nullopt;
}

void printScenarios(std::ostream& os, bool csv) {
  report::Table table({"adapter", "workload", "supported", "description"});
  for (const auto& s : allScenarios()) {
    table.addRow({s.adapter.name, s.workload.name,
                  s.supported ? "yes" : "no",
                  s.adapter.description + " | " + s.workload.description});
  }
  if (csv) {
    table.printCsv(os);
  } else {
    report::banner(os, "colibri-sim scenarios (adapter x workload)");
    table.print(os);
  }
}

int runScenario(const Options& opts, std::ostream& out, std::ostream& err) {
  const auto adapter = findAdapter(opts.adapter);
  if (!adapter) {
    err << "colibri-sim: unknown adapter '" << opts.adapter
        << "' (choose from: " << adapterNameList() << ")\n";
    return 2;
  }
  const auto workload = findWorkload(opts.workload);
  if (!workload) {
    err << "colibri-sim: unknown workload '" << opts.workload
        << "' (choose from: " << workloadNameList() << ")\n";
    return 2;
  }
  const auto scenario = findScenario(opts.adapter, opts.workload);
  if (scenario && !scenario->supported) {
    err << "colibri-sim: scenario " << opts.adapter << " x " << opts.workload
        << " is not runnable (" << scenario->whyUnsupported << "); see "
           "--list\n";
    return 2;
  }

  arch::SystemConfig cfg;
  if (const auto geomError = buildConfig(opts, *adapter, cfg)) {
    err << "colibri-sim: " << *geomError << "\n";
    return 2;
  }

  // Friendly flag errors for knobs the workloads would otherwise reject
  // with a raw invariant trace.
  if (opts.workload == "histogram" && opts.bins == 0) {
    err << "colibri-sim: --bins must be >= 1\n";
    return 2;
  }
  if (opts.workload == "matmul" && opts.matmulN == 0) {
    err << "colibri-sim: --matmul-n must be >= 1\n";
    return 2;
  }
  if (opts.workload == "prodcons" &&
      (opts.producers == 0 || opts.consumers == 0)) {
    err << "colibri-sim: --producers and --consumers must be >= 1\n";
    return 2;
  }

  try {
    if (opts.workload == "histogram") {
      return runHistogram(opts, *adapter, cfg, out);
    }
    if (opts.workload == "msqueue" || opts.workload == "ticket_queue") {
      return runQueue(opts, *adapter, cfg, out);
    }
    if (opts.workload == "prodcons") {
      return runProdCons(opts, *adapter, cfg, out, err);
    }
    if (opts.workload == "matmul") {
      return runMatmul(opts, cfg, out);
    }
  } catch (const sim::InvariantViolation& e) {
    err << "colibri-sim: simulation invariant violated: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    err << "colibri-sim: error: " << e.what() << "\n";
    return 1;
  }
  err << "colibri-sim: workload '" << opts.workload
      << "' is registered but has no runner (internal error)\n";
  return 1;
}

int runMain(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  const auto parsed = parseArgs(args);
  if (!parsed.ok()) {
    err << "colibri-sim: " << *parsed.error << "\n";
    return 2;
  }
  if (parsed.options.help) {
    printUsage(out);
    return 0;
  }
  if (parsed.options.listScenarios) {
    printScenarios(out, parsed.options.csv);
    return 0;
  }
  return runScenario(parsed.options, out, err);
}

}  // namespace colibri::cli
