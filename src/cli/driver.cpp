#include "cli/driver.hpp"

#include <algorithm>
#include <charconv>
#include <exception>
#include <fstream>
#include <numeric>
#include <ostream>
#include <thread>

#include "exp/json.hpp"
#include "fault/demo.hpp"
#include "fault/fault.hpp"
#include "fault/watchdog.hpp"
#include "obs/recorder.hpp"
#include "exp/run.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "litmus/harness.hpp"
#include "report/table.hpp"
#include "sim/check.hpp"
#include "sim/framepool.hpp"
#include "wgen/presets.hpp"

namespace colibri::cli {
namespace {

workloads::MeasureWindow windowOf(const Options& opts) {
  return workloads::MeasureWindow{opts.warmup, opts.measure};
}

void emit(const report::Table& table, std::ostream& out, bool csv) {
  if (csv) {
    table.printCsv(out);
  } else {
    table.print(out);
  }
}

/// In CSV/JSON mode the output must stay machine-clean: no banner line.
void maybeBanner(std::ostream& out, const Options& opts,
                 const std::string& title) {
  if (!opts.csv && !opts.json) {
    report::banner(out, title);
  }
}

std::string faultProfileList() {
  std::string names;
  for (const auto& p : fault::profiles()) {
    if (!names.empty()) {
      names += " | ";
    }
    names += p.name;
  }
  return names + " | off";
}

template <typename T>
bool parseChars(const std::string& text, T& out) {
  const char* first = text.data();
  const char* last = first + text.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

/// Parse a per-site fault overlay: "P" (probability alone) or "P,MAX"
/// (probability plus magnitude). `max` == nullptr means the site has no
/// magnitude and the ",MAX" form is rejected.
std::optional<std::string> parseFaultSite(const char* flag,
                                          const std::string& text, double& p,
                                          std::uint32_t* max) {
  std::string probText = text;
  if (const auto comma = text.find(','); comma != std::string::npos) {
    if (max == nullptr) {
      return std::string(flag) + " takes a bare probability, got '" + text +
             "'";
    }
    probText = text.substr(0, comma);
    if (!parseChars(text.substr(comma + 1), *max) || *max < 1) {
      return std::string(flag) + ": MAX in '" + text +
             "' must be an integer >= 1";
    }
  }
  if (!parseChars(probText, p) || p < 0.0 || p > 1.0) {
    return std::string(flag) + ": probability in '" + text +
           "' must be in [0, 1]";
  }
  if (max != nullptr && p > 0.0 && *max < 1) {
    return std::string(flag) + " needs a ',MAX' magnitude (e.g. 0.1,8)";
  }
  return std::nullopt;
}

/// Apply --fault/--fault-* flags onto cfg.fault (profile first, then the
/// per-site overlays) and --watchdog onto cfg.watchdogCycles.
std::optional<std::string> applyFaultFlags(const Options& opts,
                                           arch::SystemConfig& cfg) {
  if (opts.faultProfile != "off") {
    const fault::Profile* p = fault::findProfile(opts.faultProfile);
    if (p == nullptr) {
      return "unknown fault profile '" + opts.faultProfile +
             "' (choose from: " + faultProfileList() + ")";
    }
    cfg.fault = p->config;
  }
  cfg.fault.seed = opts.faultSeed;
  if (!opts.faultNetDelay.empty()) {
    if (auto e = parseFaultSite("--fault-net-delay", opts.faultNetDelay,
                                cfg.fault.netDelayP, &cfg.fault.netDelayMax)) {
      return e;
    }
  }
  if (!opts.faultScFail.empty()) {
    if (auto e = parseFaultSite("--fault-sc-fail", opts.faultScFail,
                                cfg.fault.scFailP, nullptr)) {
      return e;
    }
  }
  if (!opts.faultEvict.empty()) {
    if (auto e = parseFaultSite("--fault-evict", opts.faultEvict,
                                cfg.fault.evictP, nullptr)) {
      return e;
    }
  }
  if (!opts.faultStall.empty()) {
    if (auto e = parseFaultSite("--fault-stall", opts.faultStall,
                                cfg.fault.stallP, &cfg.fault.stallMax)) {
      return e;
    }
  }
  cfg.watchdogCycles = opts.watchdog;
  return std::nullopt;
}

double sleepFraction(const workloads::SystemCounters& c) {
  const double total =
      static_cast<double>(c.windowCycles) * static_cast<double>(c.activeCores);
  return total > 0.0 ? static_cast<double>(c.sleepCycles) / total : 0.0;
}

/// Translate Options into the declarative RunSpec the exp layer executes.
/// The scenario registry already vetted the names; nullopt means a
/// workload is registered but has no dispatch here (internal error).
std::optional<exp::RunSpec> buildSpec(const Options& opts,
                                      const exp::AdapterSpec& adapter,
                                      const arch::SystemConfig& cfg) {
  exp::RunSpec spec;
  spec.label = opts.adapter + "/" + opts.workload;
  spec.workload = opts.workload;
  spec.config = cfg;
  spec.window = windowOf(opts);
  spec.seed = opts.seed;
  spec.repetitions = opts.reps;

  const auto backoff = sync::BackoffPolicy::fixed(opts.backoffCycles);
  if (opts.workload == "histogram") {
    workloads::HistogramParams p;
    p.bins = opts.bins;
    p.mode = exp::histogramModeFor(adapter);
    p.backoff = backoff;
    spec.params = p;
  } else if (opts.workload == "msqueue" || opts.workload == "ticket_queue") {
    workloads::QueueParams p;
    p.variant = opts.workload == "ticket_queue"
                    ? workloads::QueueVariant::kLock
                    : exp::queueVariantFor(adapter);
    p.capacity = opts.queueCapacity;
    p.backoff = backoff;
    spec.params = p;
  } else if (opts.workload == "prodcons") {
    workloads::ProdConsParams p;
    p.producers = opts.producers;
    p.consumers = opts.consumers;
    p.useMwait = adapter.waitCapable;
    p.backoff = backoff;
    spec.params = p;
  } else if (opts.workload == "matmul") {
    workloads::MatmulParams p;
    p.n = opts.matmulN;
    p.workers.resize(opts.cores);
    std::iota(p.workers.begin(), p.workers.end(), 0);
    spec.params = p;
  } else if (opts.workload == "hashtable") {
    workloads::HashTableParams p;
    p.slots = opts.htSlots;
    p.keysPerCore = opts.htKeys;
    p.backoff = backoff;
    spec.params = p;
  } else if (opts.workload == "wsdeque") {
    workloads::WsDequeParams p;
    p.tasks = opts.wsdTasks;
    p.taskCycles = opts.taskCycles;
    // Keep the workload's exponential default: a fixed --backoff livelocks
    // the top-word CAS storm on the single-slot LR/SC adapter.
    spec.params = p;
  } else if (opts.workload == "lockfair") {
    workloads::LockFairParams p;
    p.csCycles = opts.csCycles;
    p.backoff = backoff;
    spec.params = p;
  } else if (const auto* preset = wgen::findPreset(opts.workload)) {
    wgen::WgenParams p;
    p.kernel = preset->spec;
    p.backoff = backoff;
    for (auto& region : p.kernel.regions) {
      if (opts.zipfTheta >= 0.0) {
        region.zipfTheta = opts.zipfTheta;
      }
      if (opts.hotFraction >= 0.0) {
        region.hotFraction = opts.hotFraction;
      }
      if (opts.wgenWords != 0 && region.dist != wgen::AddrDist::kStrided) {
        region.range = opts.wgenWords;
      }
    }
    spec.params = p;
  } else {
    return std::nullopt;
  }
  return spec;
}

/// The columns shared by the rate-based workloads (histogram, queues);
/// the rate column shows the mean across reps (== the single measurement
/// for --reps 1, keeping the documented output stable).
std::vector<std::string> rateHeaders() {
  return {"adapter", "workload", "cores",  "ops/cycle",
          "ops",     "jain",     "sleep%", "verified"};
}

std::vector<std::string> rateRow(const Options& opts,
                                 const exp::SweepResult& res) {
  const auto& r = res.primary();
  return {opts.adapter,
          opts.workload,
          std::to_string(opts.cores),
          report::fmt(res.opsPerCycle.mean, 4),
          std::to_string(r.rate.opsInWindow),
          report::fmt(r.rate.fairnessJain, 3),
          report::fmtPercent(100.0 * sleepFraction(r.rate.counters)),
          res.allVerified ? "yes" : "NO"};
}

/// With --reps N > 1 every table gains the aggregate columns; the rate
/// column always shows the mean across reps (identical to the single
/// measurement for N = 1, keeping the documented output stable).
void appendAggregate(std::vector<std::string>& headers,
                     std::vector<std::string>& row, const Options& opts,
                     const exp::SweepResult& res) {
  if (opts.reps <= 1) {
    return;
  }
  headers.insert(headers.end(), {"reps", "stddev", "min", "max"});
  row.push_back(std::to_string(res.reps.size()));
  row.push_back(report::fmt(res.opsPerCycle.stddev, 4));
  row.push_back(report::fmt(res.opsPerCycle.min, 4));
  row.push_back(report::fmt(res.opsPerCycle.max, 4));
}

void printHistogram(const Options& opts, const exp::RunSpec& spec,
                    const exp::SweepResult& res, std::ostream& out) {
  const auto& p = std::get<workloads::HistogramParams>(spec.params);
  maybeBanner(out, opts, "colibri-sim: histogram (" +
                             std::string(workloads::toString(p.mode)) + ", " +
                             std::to_string(opts.bins) + " bins) on " +
                             opts.adapter);
  auto headers = rateHeaders();
  headers.insert(headers.begin() + 3, "bins");
  auto row = rateRow(opts, res);
  row.insert(row.begin() + 3, std::to_string(opts.bins));
  appendAggregate(headers, row, opts, res);
  report::Table table(headers);
  table.addRow(row);
  emit(table, out, opts.csv);
}

void printQueue(const Options& opts, const exp::RunSpec& spec,
                const exp::SweepResult& res, std::ostream& out) {
  const auto& p = std::get<workloads::QueueParams>(spec.params);
  maybeBanner(out, opts, "colibri-sim: " + opts.workload + " (" +
                             std::string(workloads::toString(p.variant)) +
                             ") on " + opts.adapter);
  auto headers = rateHeaders();
  auto row = rateRow(opts, res);
  appendAggregate(headers, row, opts, res);
  report::Table table(headers);
  table.addRow(row);
  emit(table, out, opts.csv);
}

void printProdCons(const Options& opts, const exp::RunSpec& spec,
                   const exp::SweepResult& res, std::ostream& out) {
  const auto& p = std::get<workloads::ProdConsParams>(spec.params);
  const auto& r = res.primary();
  maybeBanner(out, opts, "colibri-sim: prodcons (" +
                             std::string(p.useMwait ? "Mwait" : "polling") +
                             " consumers) on " + opts.adapter);
  std::vector<std::string> headers{"adapter",     "producers", "consumers",
                                   "items/cycle", "items",     "sleep%",
                                   "reqs/item",   "verified"};
  std::vector<std::string> row{
      opts.adapter,
      std::to_string(opts.producers),
      std::to_string(opts.consumers),
      report::fmt(res.opsPerCycle.mean, 4),
      std::to_string(r.itemsConsumed),
      report::fmtPercent(100.0 * r.consumerSleepFraction),
      report::fmt(r.consumerRequestsPerItem, 2),
      res.allVerified ? "yes" : "NO"};
  appendAggregate(headers, row, opts, res);
  report::Table table(headers);
  table.addRow(row);
  emit(table, out, opts.csv);
}

void printWgen(const Options& opts, const exp::SweepResult& res,
               std::ostream& out) {
  const auto& r = res.primary();
  maybeBanner(out, opts, "colibri-sim: wgen preset '" + opts.workload +
                             "' on " + opts.adapter);
  std::vector<std::string> headers{
      "adapter", "workload", "cores",   "ops/cycle", "ops",     "jain",
      "lat-p50", "lat-p95",  "lat-p99", "sleep%",    "verified"};
  std::vector<std::string> row{
      opts.adapter,
      opts.workload,
      std::to_string(opts.cores),
      report::fmt(res.opsPerCycle.mean, 4),
      std::to_string(r.rate.opsInWindow),
      report::fmt(r.rate.fairnessJain, 3),
      report::fmt(r.opLatency.p50, 1),
      report::fmt(r.opLatency.p95, 1),
      report::fmt(r.opLatency.p99, 1),
      report::fmtPercent(100.0 * sleepFraction(r.rate.counters)),
      res.allVerified ? "yes" : "NO"};
  appendAggregate(headers, row, opts, res);
  report::Table table(headers);
  table.addRow(row);
  emit(table, out, opts.csv);
}

void printMatmul(const Options& opts, const exp::SweepResult& res,
                 std::ostream& out) {
  const auto& r = res.primary();
  maybeBanner(out, opts,
              "colibri-sim: matmul (n=" + std::to_string(opts.matmulN) +
                  ") on " + opts.adapter);
  std::vector<std::string> headers{"adapter", "workers",    "n",
                                   "cycles",  "macs",       "macs/cycle",
                                   "verified"};
  std::vector<std::string> row{opts.adapter,
                               std::to_string(opts.cores),
                               std::to_string(opts.matmulN),
                               std::to_string(r.duration),
                               std::to_string(r.macs),
                               report::fmt(res.opsPerCycle.mean, 2),
                               res.allVerified ? "yes" : "NO"};
  appendAggregate(headers, row, opts, res);
  report::Table table(headers);
  table.addRow(row);
  emit(table, out, opts.csv);
}

void printHashTable(const Options& opts, const exp::SweepResult& res,
                    std::ostream& out) {
  const auto& r = res.primary();
  maybeBanner(out, opts, "colibri-sim: hashtable (lock-free linear "
                         "probing) on " + opts.adapter);
  auto headers = rateHeaders();
  headers.insert(headers.begin() + 3, {"inserts", "lookups"});
  auto row = rateRow(opts, res);
  row.insert(row.begin() + 3, {std::to_string(r.inserts),
                               std::to_string(r.lookups)});
  appendAggregate(headers, row, opts, res);
  report::Table table(headers);
  table.addRow(row);
  emit(table, out, opts.csv);
}

void printWsDeque(const Options& opts, const exp::SweepResult& res,
                  std::ostream& out) {
  const auto& r = res.primary();
  maybeBanner(out, opts, "colibri-sim: wsdeque (Chase-Lev work stealing) "
                         "on " + opts.adapter);
  std::vector<std::string> headers{"adapter", "cores",       "tasks",
                                   "cycles",  "owner-pops",  "steals",
                                   "tasks/cycle", "verified"};
  std::vector<std::string> row{opts.adapter,
                               std::to_string(opts.cores),
                               std::to_string(r.rate.opsInWindow),
                               std::to_string(r.duration),
                               std::to_string(r.ownerPops),
                               std::to_string(r.steals),
                               report::fmt(res.opsPerCycle.mean, 4),
                               res.allVerified ? "yes" : "NO"};
  appendAggregate(headers, row, opts, res);
  report::Table table(headers);
  table.addRow(row);
  emit(table, out, opts.csv);
}

void printLockFair(const Options& opts, const exp::SweepResult& res,
                   std::ostream& out) {
  const auto& r = res.primary();
  maybeBanner(out, opts,
              "colibri-sim: lockfair (TAS handoff/fairness) on " +
                  opts.adapter);
  std::vector<std::string> headers{
      "adapter",  "cores",    "acq/cycle", "acqs",     "jain",
      "acq-min",  "acq-max",  "wait-p50",  "wait-p99", "verified"};
  std::vector<std::string> row{
      opts.adapter,
      std::to_string(opts.cores),
      report::fmt(res.opsPerCycle.mean, 4),
      std::to_string(r.rate.opsInWindow),
      report::fmt(r.rate.fairnessJain, 3),
      report::fmt(r.acqSpread.min, 0),
      report::fmt(r.acqSpread.max, 0),
      report::fmt(r.opLatency.p50, 1),
      report::fmt(r.opLatency.p99, 1),
      res.allVerified ? "yes" : "NO"};
  appendAggregate(headers, row, opts, res);
  report::Table table(headers);
  table.addRow(row);
  emit(table, out, opts.csv);
}

/// --hang-demo: run the shared stranded-LR scenario (fault::runStrandedLr)
/// and let the watchdog diagnose it. Exit 3 on a trip — the same code a
/// real diagnosed hang produces — so scripts can tell "caught" apart from
/// "ran silently" (0, watchdog disabled) and "hung past the horizon
/// without a diagnosis" (1).
int runHangDemo(const Options& opts, std::ostream& out, std::ostream& err) {
  const auto adapter = exp::findAdapter("lrsc_single");
  arch::SystemConfig cfg;
  if (const auto geomError = buildConfig(opts, *adapter, cfg)) {
    err << "colibri-sim: " << *geomError << "\n";
    return 2;
  }
  maybeBanner(out, opts,
              "colibri-sim: stranded-LR hang demo (lrsc_single, watchdog " +
                  (cfg.watchdogCycles > 0
                       ? std::to_string(cfg.watchdogCycles) + " cycles"
                       : std::string("off")) +
                  ")");
  // A trip is bounded by limit + limit/8; double the limit is a safely
  // bounded horizon. With the watchdog off, stop at the normal window end.
  const sim::Cycle horizon = cfg.watchdogCycles > 0
                                 ? 2 * cfg.watchdogCycles
                                 : opts.warmup + opts.measure;
  try {
    fault::runStrandedLr(cfg, horizon);
  } catch (const fault::WatchdogError& e) {
    err << "colibri-sim: " << e.what();
    out << "watchdog caught the hang at cycle " << e.trippedAt()
        << " (limit " << cfg.watchdogCycles << ")\n";
    return 3;
  } catch (const sim::InvariantViolation& e) {
    err << "colibri-sim: simulation invariant violated: " << e.what() << "\n";
    return 1;
  }
  if (cfg.watchdogCycles == 0) {
    out << "hang ran silently to cycle " << horizon
        << " (watchdog disabled — this is the failure mode the watchdog "
           "exists for)\n";
    return 0;
  }
  out << "no watchdog trip by cycle " << horizon << " (unexpected)\n";
  return 1;
}

std::string litmusAlgorithmList() {
  std::string names;
  for (const auto& info : litmus::algorithms()) {
    if (!names.empty()) {
      names += " | ";
    }
    names += info.name;
  }
  return names + " | all";
}

int runLitmusMode(const Options& opts, std::ostream& out, std::ostream& err) {
  std::vector<const litmus::AlgorithmInfo*> algos;
  if (opts.litmus == "all" || opts.litmus.empty()) {
    for (const auto& info : litmus::algorithms()) {
      algos.push_back(&info);
    }
  } else if (const auto* info = litmus::findAlgorithm(opts.litmus)) {
    algos.push_back(info);
  } else {
    err << "colibri-sim: unknown litmus algorithm '" << opts.litmus
        << "' (choose from: " << litmusAlgorithmList() << ")\n";
    return 2;
  }
  std::vector<exp::AdapterSpec> adapterSpecs;
  if (opts.litmusMatrix) {
    adapterSpecs = exp::adapters();
  } else {
    const auto adapter = exp::findAdapter(opts.adapter);
    if (!adapter) {
      err << "colibri-sim: unknown adapter '" << opts.adapter
          << "' (choose from: " << exp::adapterNameList() << ")\n";
      return 2;
    }
    adapterSpecs.push_back(*adapter);
  }
  if (opts.litmusIters == 0) {
    err << "colibri-sim: --litmus-iters must be >= 1\n";
    return 2;
  }
  if (opts.json) {
    err << "colibri-sim: litmus mode has no --json output (use --csv)\n";
    return 2;
  }
  if (!opts.metricsCsv.empty() || !opts.trace.empty() || opts.jsonEngine) {
    err << "colibri-sim: litmus mode has no observability sinks "
           "(--metrics-csv/--trace/--json-engine)\n";
    return 2;
  }

  std::vector<litmus::MatrixCase> cases;
  for (const auto& adapter : adapterSpecs) {
    arch::SystemConfig cfg;
    if (const auto geomError = buildConfig(opts, adapter, cfg)) {
      err << "colibri-sim: " << *geomError << "\n";
      return 2;
    }
    for (const auto* info : algos) {
      litmus::MatrixCase c;
      c.adapter = adapter;
      c.config = cfg;
      c.params.algo = info->algo;
      c.params.iterations = opts.litmusIters;
      c.params.fenced = !opts.unfenced;
      c.params.backoff = sync::BackoffPolicy::fixed(opts.backoffCycles);
      auto n = opts.contenders != 0 ? opts.contenders
                                    : info->defaultContenders;
      n = std::min(n, std::min(info->maxContenders, cfg.numCores));
      if (n < info->minContenders) {
        err << "colibri-sim: litmus '" << info->name << "' needs at least "
            << info->minContenders << " contending cores\n";
        return 2;
      }
      c.params.contenders = n;
      cases.push_back(std::move(c));
    }
  }

  try {
    const auto results = litmus::runMatrix(cases, opts.threads);
    maybeBanner(out, opts,
                "colibri-sim: litmus (" +
                    std::string(opts.unfenced ? "unfenced" : "fenced") +
                    " protocol stores)");
    report::Table table({"adapter", "algorithm", "contenders", "entries",
                         "expected", "overlap", "lost", "progress",
                         "result"});
    bool allPass = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      const auto& info = litmus::infoFor(cases[i].params.algo);
      const bool ok = litmus::passes(info, r);
      allPass = allPass && ok;
      const char* verdict =
          ok ? (info.expectExclusion ? "PASS" : "PASS (caught)") : "FAIL";
      table.addRow({r.adapter, r.algorithm, std::to_string(r.contenders),
                    std::to_string(r.entries),
                    std::to_string(r.expectedEntries),
                    std::to_string(r.exclusionViolations),
                    std::to_string(r.lostUpdates),
                    r.progressOk ? "yes" : "NO", verdict});
    }
    emit(table, out, opts.csv);
    return allPass ? 0 : 1;
  } catch (const fault::WatchdogError& e) {
    err << "colibri-sim: " << e.what();
    return 3;
  } catch (const sim::InvariantViolation& e) {
    err << "colibri-sim: simulation invariant violated: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    err << "colibri-sim: error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

std::optional<std::string> buildConfig(const Options& opts,
                                       const exp::AdapterSpec& adapter,
                                       arch::SystemConfig& cfg) {
  arch::SystemConfig base;
  base.numCores = opts.cores;
  base.coresPerTile = opts.coresPerTile;
  base.tilesPerGroup = opts.tilesPerGroup;
  base.banksPerTile = opts.banksPerTile;
  base.wordsPerBank = opts.wordsPerBank;
  base.colibriQueuesPerController = opts.colibriQueues;
  base.engineThreads = opts.engineThreads;
  base.seed = opts.seed;
  cfg = exp::configFor(adapter, opts.waitCapacity, base);

  if (opts.cores == 0 || opts.coresPerTile == 0 || opts.tilesPerGroup == 0 ||
      opts.banksPerTile == 0 || opts.wordsPerBank == 0) {
    return "geometry values must be >= 1";
  }
  if (opts.cores % opts.coresPerTile != 0) {
    return "--cores (" + std::to_string(opts.cores) +
           ") must be a multiple of --cores-per-tile (" +
           std::to_string(opts.coresPerTile) + ")";
  }
  if (cfg.numTiles() % opts.tilesPerGroup != 0) {
    return "tile count (" + std::to_string(cfg.numTiles()) +
           ") must be a multiple of --tiles-per-group (" +
           std::to_string(opts.tilesPerGroup) + ")";
  }
  if (opts.engineThreads == 0) {
    // Auto: one worker per topology group, capped by the machine. Resolved
    // only after the geometry checks so numGroups() is meaningful. More
    // workers than groups would idle (shards are groups), and results are
    // bit-identical for any value, so this is purely a wall-clock choice.
    const auto hw = std::max(1u, std::thread::hardware_concurrency());
    cfg.engineThreads = std::max(1u, std::min(hw, cfg.numGroups()));
  }
  if (auto faultError = applyFaultFlags(opts, cfg)) {
    return faultError;
  }
  return std::nullopt;
}

void printScenarios(std::ostream& os, bool csv) {
  report::Table table({"adapter", "workload", "supported", "description"});
  for (const auto& s : exp::allScenarios()) {
    table.addRow({s.adapter.name, s.workload.name,
                  s.supported ? "yes" : "no",
                  s.adapter.description + " | " + s.workload.description});
  }
  if (csv) {
    table.printCsv(os);
  } else {
    report::banner(os, "colibri-sim scenarios (adapter x workload)");
    table.print(os);
  }
}

int runScenario(const Options& opts, std::ostream& out, std::ostream& err) {
  if (opts.hangDemo) {
    return runHangDemo(opts, out, err);
  }
  if (!opts.litmus.empty() || opts.litmusMatrix) {
    return runLitmusMode(opts, out, err);
  }
  const auto adapter = exp::findAdapter(opts.adapter);
  if (!adapter) {
    err << "colibri-sim: unknown adapter '" << opts.adapter
        << "' (choose from: " << exp::adapterNameList() << ")\n";
    return 2;
  }
  const auto workload = exp::findWorkload(opts.workload);
  if (!workload) {
    err << "colibri-sim: unknown workload '" << opts.workload
        << "' (choose from: " << exp::workloadNameList() << ")\n";
    return 2;
  }
  const auto scenario = exp::findScenario(opts.adapter, opts.workload);
  if (scenario && !scenario->supported) {
    err << "colibri-sim: scenario " << opts.adapter << " x " << opts.workload
        << " is not runnable (" << scenario->whyUnsupported << "); see "
           "--list\n";
    return 2;
  }

  arch::SystemConfig cfg;
  if (const auto geomError = buildConfig(opts, *adapter, cfg)) {
    err << "colibri-sim: " << *geomError << "\n";
    return 2;
  }

  // --engine-threads 0 resolved against this machine: surface the choice in
  // the human-readable header only, so CSV/JSON stay machine-identical
  // across hosts with different core counts.
  if (opts.engineThreads == 0 && !opts.csv && !opts.json) {
    out << "engine-threads: " << cfg.engineThreads << " (auto: min(hardware "
        << "threads, " << cfg.numGroups() << " groups))\n";
  }

  // Friendly flag errors for knobs the workloads would otherwise reject
  // with a raw invariant trace.
  if (opts.workload == "histogram" && opts.bins == 0) {
    err << "colibri-sim: --bins must be >= 1\n";
    return 2;
  }
  if (opts.workload == "matmul" && opts.matmulN == 0) {
    err << "colibri-sim: --matmul-n must be >= 1\n";
    return 2;
  }
  if (opts.workload == "wsdeque" && opts.cores < 2) {
    err << "colibri-sim: wsdeque needs --cores >= 2 (an owner and a "
           "thief)\n";
    return 2;
  }
  if (opts.workload == "prodcons" &&
      (opts.producers == 0 || opts.consumers == 0)) {
    err << "colibri-sim: --producers and --consumers must be >= 1\n";
    return 2;
  }
  if (opts.workload == "prodcons" &&
      opts.producers + opts.consumers > opts.cores) {
    err << "colibri-sim: --producers + --consumers (" << opts.producers
        << " + " << opts.consumers << ") exceeds --cores (" << opts.cores
        << ")\n";
    return 2;
  }
  if (opts.reps == 0) {
    err << "colibri-sim: --reps must be >= 1\n";
    return 2;
  }
  if (opts.hotFraction > 1.0) {
    err << "colibri-sim: --hot-fraction must be <= 1\n";
    return 2;
  }
  if (opts.csv && opts.json) {
    err << "colibri-sim: choose one of --csv and --json\n";
    return 2;
  }
  const bool wantSampling = !opts.metricsCsv.empty();
  const bool wantTrace = !opts.trace.empty();
  if ((wantSampling || wantTrace) && opts.reps > 1) {
    // Concurrent repetitions share process-wide state (the coroutine frame
    // pool) that would bleed into sampled values; the byte-compared sinks
    // observe exactly one run.
    err << "colibri-sim: --metrics-csv/--trace require --reps 1\n";
    return 2;
  }
  if (opts.traceSample == 0) {
    err << "colibri-sim: --trace-sample must be >= 1\n";
    return 2;
  }
  if (opts.jsonEngine && !opts.json) {
    err << "colibri-sim: --json-engine requires --json\n";
    return 2;
  }
  if (opts.jsonFault && !opts.json) {
    err << "colibri-sim: --json-fault requires --json\n";
    return 2;
  }

  auto spec = buildSpec(opts, *adapter, cfg);
  if (!spec) {
    err << "colibri-sim: workload '" << opts.workload
        << "' is registered but has no runner (internal error)\n";
    return 1;
  }

  // One recorder for the whole scenario. Attaching it (sinks or --stats)
  // must not change any machine output: the sampler events are pure reads
  // scheduled before the workload spawns, so stdout stays byte-identical
  // to a run without it.
  obs::Recorder::Config recCfg;
  recCfg.sampleInterval =
      wantSampling
          ? (opts.metricsInterval > 0 ? opts.metricsInterval : 1000)
          : 0;
  recCfg.traceEnabled = wantTrace;
  recCfg.traceEvery = opts.traceSample;
  obs::Recorder recorder(recCfg);
  if (wantSampling || wantTrace || opts.stats) {
    spec->config.recorder = &recorder;
  }

  try {
    const std::vector<exp::RunSpec> specs = {*std::move(spec)};
    exp::SweepRunner runner(opts.threads);
    const auto results = runner.run(specs);
    const auto& res = results.front();

    if (opts.json) {
      exp::JsonOptions jsonOpts;
      jsonOpts.recorder = wantSampling ? &recorder : nullptr;
      jsonOpts.engineBlock = opts.jsonEngine;
      jsonOpts.faultBlock = opts.jsonFault;
      exp::writeJson(out, specs, results, jsonOpts);
    } else if (opts.workload == "histogram") {
      printHistogram(opts, specs.front(), res, out);
    } else if (opts.workload == "msqueue" ||
               opts.workload == "ticket_queue") {
      printQueue(opts, specs.front(), res, out);
    } else if (opts.workload == "prodcons") {
      printProdCons(opts, specs.front(), res, out);
    } else if (opts.workload == "hashtable") {
      printHashTable(opts, res, out);
    } else if (opts.workload == "wsdeque") {
      printWsDeque(opts, res, out);
    } else if (opts.workload == "lockfair") {
      printLockFair(opts, res, out);
    } else if (wgen::findPreset(opts.workload) != nullptr) {
      printWgen(opts, res, out);
    } else {
      printMatmul(opts, res, out);
    }
    if (!opts.metricsCsv.empty()) {
      std::ofstream f(opts.metricsCsv, std::ios::binary);
      if (!f) {
        err << "colibri-sim: cannot open --metrics-csv file '"
            << opts.metricsCsv << "'\n";
        return 1;
      }
      recorder.writeMetricsCsv(f);
    }
    if (!opts.trace.empty()) {
      std::ofstream f(opts.trace, std::ios::binary);
      if (!f) {
        err << "colibri-sim: cannot open --trace file '" << opts.trace
            << "'\n";
        return 1;
      }
      recorder.writeChromeTrace(f);
    }
    if (opts.stats) {
      // stderr keeps stdout byte-identical with and without --stats, so
      // the golden corpus and the 1-vs-N-thread CI byte gate stay valid.
      const auto& ec = res.primary().engineCounters;
      err << "engine-stats: windows=" << ec.windows
          << " barriers-taken=" << ec.barriersTaken
          << " barriers-elided=" << ec.barriersElided
          << " deferred-intents=" << ec.deferredIntents
          << " idle-shard-skips=" << ec.idleShardSkips << "\n";
      err << "frame-pool: pooled=" << sim::framepool::pooledFrameCount()
          << " heap=" << sim::framepool::heapFrameCount()
          << " arena-bytes=" << sim::framepool::arenaBytes() << "\n";
      if (res.primary().faultSeed != 0) {
        const auto& fc = res.primary().faultCounters;
        err << "fault: seed=" << res.primary().faultSeed
            << " net-delays=" << fc.at(fault::Site::kNetDelay)
            << " sc-fails=" << fc.at(fault::Site::kScFail)
            << " evictions=" << fc.at(fault::Site::kEvict)
            << " stalls=" << fc.at(fault::Site::kStall)
            << " total=" << fc.total() << "\n";
      }
      // The registry view of the same run (rep 0): every metric,
      // diagnostic ones included.
      recorder.printStats(err);
    }
    return res.allVerified ? 0 : 1;
  } catch (const fault::WatchdogError& e) {
    // A diagnosed hang: the blame report is inside what(). Exit 3 keeps it
    // distinguishable from verification failures (1) and flag errors (2).
    err << "colibri-sim: " << e.what();
    return 3;
  } catch (const sim::InvariantViolation& e) {
    err << "colibri-sim: simulation invariant violated: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    err << "colibri-sim: error: " << e.what() << "\n";
    return 1;
  }
}

int runMain(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  const auto parsed = parseArgs(args);
  if (!parsed.ok()) {
    err << "colibri-sim: " << *parsed.error << "\n";
    return 2;
  }
  if (parsed.options.help) {
    printUsage(out);
    return 0;
  }
  if (parsed.options.listScenarios) {
    printScenarios(out, parsed.options.csv);
    return 0;
  }
  return runScenario(parsed.options, out, err);
}

}  // namespace colibri::cli
