#include "cli/options.hpp"

#include <charconv>
#include <functional>
#include <map>
#include <ostream>

namespace colibri::cli {
namespace {

template <typename T>
bool parseNumber(const std::string& text, T& out) {
  const char* first = text.data();
  const char* last = first + text.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

struct Flag {
  const char* help;
  bool takesValue;
  std::function<bool(Options&, const std::string&)> apply;
};

template <typename T>
Flag numberFlag(const char* help, T Options::* member) {
  return Flag{help, true, [member](Options& o, const std::string& v) {
                return parseNumber(v, o.*member);
              }};
}

Flag stringFlag(const char* help, std::string Options::* member) {
  return Flag{help, true, [member](Options& o, const std::string& v) {
                o.*member = v;
                return true;
              }};
}

Flag boolFlag(const char* help, bool Options::* member) {
  return Flag{help, false, [member](Options& o, const std::string&) {
                o.*member = true;
                return true;
              }};
}

const std::map<std::string, Flag>& flagTable() {
  static const std::map<std::string, Flag> table = {
      {"--adapter", stringFlag("atomic adapter: amo | lrsc_single | "
                               "lrsc_table | lrscwait | lrscwait_ideal | "
                               "colibri",
                               &Options::adapter)},
      {"--workload", stringFlag("workload: histogram | msqueue | prodcons | "
                                "matmul | ticket_queue | a wgen preset "
                                "(see --list)",
                                &Options::workload)},
      {"--cores", numberFlag("total cores (default 256)", &Options::cores)},
      {"--cores-per-tile",
       numberFlag("cores per tile (default 4)", &Options::coresPerTile)},
      {"--tiles-per-group",
       numberFlag("tiles per group (default 16)", &Options::tilesPerGroup)},
      {"--banks-per-tile",
       numberFlag("SPM banks per tile (default 16)", &Options::banksPerTile)},
      {"--words-per-bank",
       numberFlag("words per bank (default 256)", &Options::wordsPerBank)},
      {"--wait-capacity",
       numberFlag("LRSCwait_q queue capacity; 0 = one slot per core",
                  &Options::waitCapacity)},
      {"--colibri-queues",
       numberFlag("Colibri queue slots per controller (default 4)",
                  &Options::colibriQueues)},
      {"--warmup",
       numberFlag("warmup cycles before the window (default 2000)",
                  &Options::warmup)},
      {"--measure",
       numberFlag("measurement-window cycles (default 20000)",
                  &Options::measure)},
      {"--bins",
       numberFlag("histogram bins / contention level (default 16)",
                  &Options::bins)},
      {"--backoff",
       numberFlag("fixed retry backoff in cycles (default 128)",
                  &Options::backoffCycles)},
      {"--producers",
       numberFlag("prodcons producer cores (default 8)", &Options::producers)},
      {"--consumers",
       numberFlag("prodcons consumer cores (default 8)", &Options::consumers)},
      {"--queue-capacity",
       numberFlag("queue slots; 0 = 2 * cores", &Options::queueCapacity)},
      {"--matmul-n",
       numberFlag("matmul square dimension (default 32)", &Options::matmulN)},
      {"--ht-slots",
       numberFlag("hashtable slots; 0 = 16 * cores", &Options::htSlots)},
      {"--ht-keys",
       numberFlag("hashtable inserts per core; 0 = equal share of half "
                  "the table",
                  &Options::htKeys)},
      {"--wsd-tasks",
       numberFlag("wsdeque ring size; 0 = 8 * cores", &Options::wsdTasks)},
      {"--task-cycles",
       numberFlag("wsdeque compute cycles per task (default 12)",
                  &Options::taskCycles)},
      {"--cs-cycles",
       numberFlag("lockfair critical-section cycles (default 8)",
                  &Options::csCycles)},
      {"--zipf-theta",
       numberFlag("wgen: Zipf skew for zipfian regions (default: preset "
                  "value)",
                  &Options::zipfTheta)},
      {"--hot-fraction",
       numberFlag("wgen: hot-word probability for hotspot regions "
                  "(default: preset value)",
                  &Options::hotFraction)},
      {"--wgen-words",
       numberFlag("wgen: words per non-strided region; 0 = preset value",
                  &Options::wgenWords)},
      {"--seed", numberFlag("RNG seed", &Options::seed)},
      {"--fault",
       stringFlag("fault-injection profile: net_jitter | sc_storm | "
                  "evict_churn | chaos | off (default off)",
                  &Options::faultProfile)},
      {"--fault-seed",
       numberFlag("fault decision seed; 0 = derive from --seed",
                  &Options::faultSeed)},
      {"--fault-net-delay",
       stringFlag("extra network delivery delay as P,MAX (probability per "
                  "hop, max extra cycles)",
                  &Options::faultNetDelay)},
      {"--fault-sc-fail",
       stringFlag("spurious SC/SCwait failure probability P per "
                  "would-succeed commit",
                  &Options::faultScFail)},
      {"--fault-evict",
       stringFlag("reservation-eviction probability P per handled bank "
                  "request",
                  &Options::faultEvict)},
      {"--fault-stall",
       stringFlag("transient bank service stall as P,MAX (probability per "
                  "grant, max extra cycles)",
                  &Options::faultStall)},
      {"--watchdog",
       numberFlag("hang watchdog: diagnose + exit 3 after this many cycles "
                  "without productive progress; 0 disables (default "
                  "250000)",
                  &Options::watchdog)},
      {"--json-fault",
       boolFlag("add the per-rep \"fault\" block (injected-fault counts) "
                "to --json",
                &Options::jsonFault)},
      {"--hang-demo",
       boolFlag("run the stranded-LR hang demo (a re-introduced "
                "reservation leak) under the watchdog and exit",
                &Options::hangDemo)},
      {"--litmus",
       stringFlag("run a litmus algorithm instead of a workload: dekker | "
                  "peterson | bakery | tas | naive | race | all",
                  &Options::litmus)},
      {"--contenders",
       numberFlag("litmus: contending cores; 0 = algorithm default",
                  &Options::contenders)},
      {"--litmus-iters",
       numberFlag("litmus: critical-section entries per contender "
                  "(default 40)",
                  &Options::litmusIters)},
      {"--litmus-matrix",
       boolFlag("litmus: sweep every adapter (ignores --adapter)",
                &Options::litmusMatrix)},
      {"--unfenced",
       boolFlag("litmus: posted protocol stores (memory-model probe; "
                "flag algorithms may violate exclusion)",
                &Options::unfenced)},
      {"--reps",
       numberFlag("independent repetitions (derived seeds); > 1 reports "
                  "mean/stddev (default 1)",
                  &Options::reps)},
      {"--threads",
       numberFlag("sweep worker threads; 0 = all hardware threads",
                  &Options::threads)},
      {"--engine-threads",
       numberFlag("deterministic parallel-engine workers per simulated "
                  "system; results are bit-identical for any value "
                  "(default 1 = sequential, 0 = auto: min(hardware "
                  "threads, topology groups))",
                  &Options::engineThreads)},
      {"--stats", boolFlag("print parallel-engine and frame-pool counters "
                           "to stderr after the run",
                           &Options::stats)},
      {"--metrics-csv",
       stringFlag("write interval metric samples (simulated-cycle "
                  "time-series) to this CSV file; requires --reps 1",
                  &Options::metricsCsv)},
      {"--metrics-interval",
       numberFlag("cycles between metric samples; 0 = default (1000)",
                  &Options::metricsInterval)},
      {"--trace",
       stringFlag("write per-request lifecycle spans as Chrome trace_event "
                  "JSON to this file; requires --reps 1",
                  &Options::trace)},
      {"--trace-sample",
       numberFlag("trace every K-th op per core (default 1 = all)",
                  &Options::traceSample)},
      {"--json-engine",
       boolFlag("add the per-rep \"engine\" block (parallel-engine "
                "diagnostics, varies with --engine-threads) to --json",
                &Options::jsonEngine)},
      {"--csv", boolFlag("emit CSV instead of an aligned table",
                         &Options::csv)},
      {"--json", boolFlag("emit the full result (per-rep + aggregate) as "
                          "JSON",
                          &Options::json)},
      {"--list", boolFlag("list every adapter x workload scenario and exit",
                          &Options::listScenarios)},
      {"--help", boolFlag("show this help", &Options::help)},
  };
  return table;
}

}  // namespace

ParseResult parseArgs(const std::vector<std::string>& args) {
  ParseResult result;
  const auto& table = flagTable();
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string name = arg;
    std::optional<std::string> inlineValue;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      inlineValue = arg.substr(eq + 1);
    }
    const auto it = table.find(name);
    if (it == table.end()) {
      result.error = "unknown flag '" + name +
                     "' — run 'colibri-sim --help' for the flag list";
      return result;
    }
    const Flag& flag = it->second;
    std::string value;
    if (flag.takesValue) {
      if (inlineValue) {
        value = *inlineValue;
      } else if (i + 1 < args.size()) {
        value = args[++i];
      } else {
        result.error = "flag '" + name +
                       "' needs a value — run 'colibri-sim --help' for usage";
        return result;
      }
    } else if (inlineValue) {
      result.error = "flag '" + name + "' takes no value";
      return result;
    }
    if (!flag.apply(result.options, value)) {
      result.error = "invalid value '" + value + "' for flag '" + name +
                     "' — run 'colibri-sim --help' for usage";
      return result;
    }
  }
  return result;
}

void printUsage(std::ostream& os) {
  os << "colibri-sim — unified driver over every adapter x workload x "
        "geometry scenario\n\n"
        "usage: colibri-sim [--adapter A] [--workload W] [flags...]\n\n"
        "flags:\n";
  for (const auto& [name, flag] : flagTable()) {
    os << "  " << name;
    for (std::size_t pad = name.size(); pad < 20; ++pad) {
      os << ' ';
    }
    os << flag.help << '\n';
  }
  os << "\nexamples:\n"
        "  colibri-sim --adapter colibri --workload histogram --cores 256\n"
        "  colibri-sim --adapter colibri --workload histogram --json "
        "--reps 3\n"
        "  colibri-sim --adapter lrscwait --wait-capacity 128 --workload "
        "msqueue\n"
        "  colibri-sim --adapter lrsc_single --workload prodcons "
        "--producers 16 --consumers 16\n"
        "  colibri-sim --adapter colibri --workload zipf_hot "
        "--zipf-theta 0.99\n"
        "  colibri-sim --litmus all --litmus-matrix --cores 16\n"
        "  colibri-sim --litmus dekker --unfenced --cores 16\n"
        "  colibri-sim --adapter colibri --workload histogram --fault chaos\n"
        "  colibri-sim --hang-demo --cores 16 --watchdog 50000\n"
        "  colibri-sim --list\n";
}

}  // namespace colibri::cli
