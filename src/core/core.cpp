#include "core/core.hpp"

#include <utility>

#include "arch/system.hpp"
#include "atomics/qnode.hpp"
#include "obs/hooks.hpp"
#include "sim/check.hpp"
#include "sim/event.hpp"

namespace colibri::arch {

Core::Core(System& sys, CoreId id, CoreHot* hot)
    : sys_(sys), id_(id), tile_(sys.topology().tileOfCore(id)), hot_(hot) {}

void Core::run(sim::Task task) {
  COLIBRI_CHECK_MSG(!task_.valid(), "core already has a task");
  task_ = std::move(task);
  task_.start();
}

sim::Cycle Core::nextIssueCycle() const {
  const Cycle now = sys_.engine().now();
  if (!hot_->hasIssued) {
    return now;
  }
  const Cycle earliest = hot_->lastIssue + sys_.config().issueInterval;
  return earliest > now ? earliest : now;
}

void Core::issue(const MemRequest& req, std::coroutine_handle<> h,
                 MemResponse* out) {
  COLIBRI_CHECK_MSG(hot_->pendingHandle == nullptr,
                    "core " << id_ << " has an outstanding op (single-issue)");
  stats_.issuedByKind[static_cast<std::size_t>(req.kind)]++;

  const Cycle depart = nextIssueCycle();
  hot_->hasIssued = true;
  hot_->lastIssue = depart;

  // Tracing happens here, at issue time, never inside the departure
  // closures below — they must stay within the inline event buffer.
  if (hooks_ != nullptr && hooks_->tracer != nullptr) {
    if (req.kind == OpKind::kStore) {
      hooks_->tracer->onPosted(id_, toString(req.kind), depart);
    } else {
      hooks_->tracer->onIssue(id_, toString(req.kind), depart);
    }
  }

  if (req.kind == OpKind::kStore) {
    // Posted store: the request travels on its own; the core continues
    // right after the issue slot.
    auto depart_ev = [this, req, h] {
      sys_.injectRequest(id_, req);
      h.resume();
    };
    static_assert(sim::InlineEvent::fitsInline<decltype(depart_ev)>,
                  "posted-store closure must fit the inline event buffer");
    sys_.engine().scheduleAt(depart, std::move(depart_ev));
    return;
  }

  hot_->pendingHandle = h;
  hot_->pendingOut = out;
  hot_->pendingKind = req.kind;
  hot_->pendingAddr = req.addr;

  auto depart_ev = [this, req] {
    hot_->pendingSince = sys_.engine().now();
    // The request passes the core's Qnode on its way out (Colibri only).
    // Wait registration happens before injection; the SCwait hook runs
    // *after* injection because it may dispatch a WakeUpRequest that must
    // follow the SCwait on the same core->bank FIFO path.
    if (qnode_ != nullptr &&
        (req.kind == OpKind::kLrWait || req.kind == OpKind::kMwait)) {
      qnode_->onWaitIssued(req.addr, req.kind == OpKind::kMwait);
    }
    sys_.injectRequest(id_, req);
    if (qnode_ != nullptr && req.kind == OpKind::kScWait) {
      qnode_->onScWaitIssued();
    }
  };
  static_assert(sim::InlineEvent::fitsInline<decltype(depart_ev)>,
                "issue closure must fit the inline event buffer");
  sys_.engine().scheduleAt(depart, std::move(depart_ev));
}

void Core::complete(const MemResponse& r) {
  COLIBRI_CHECK_MSG(hot_->pendingHandle != nullptr,
                    "response delivered to core " << id_
                                                  << " with no pending op");
  const Cycle waited = sys_.engine().now() - hot_->pendingSince;
  if (arch::isSleepingWait(hot_->pendingKind)) {
    stats_.sleepCycles += waited;
  } else {
    stats_.stallCycles += waited;
  }
  if (hooks_ != nullptr) {
    hooks_->record(hooks_->opLatency, waited);
    if (hooks_->tracer != nullptr) {
      hooks_->tracer->onComplete(id_, sys_.engine().now());
    }
  }

  if (qnode_ != nullptr) {
    switch (hot_->pendingKind) {
      case OpKind::kLrWait:
        qnode_->onLrWaitResponse(r.ok);
        break;
      case OpKind::kScWait:
        qnode_->onScWaitResponse(r.lastInQueue);
        break;
      case OpKind::kMwait:
        qnode_->onMwaitResponse(r.ok, r.lastInQueue);
        break;
      default:
        break;
    }
  }

  // Productive-retirement bookkeeping for the watchdog: reservation
  // acquires (LR/LRwait) and failed SC/SCwait are the ops a livelocked
  // retry loop retires forever, so they do not count as progress.
  const OpKind k = hot_->pendingKind;
  const bool productive =
      k != OpKind::kLr && k != OpKind::kLrWait &&
      ((k != OpKind::kSc && k != OpKind::kScWait) || r.ok);
  if (productive) {
    hot_->lastProductive = sys_.engine().now();
  }

  auto h = hot_->pendingHandle;
  *hot_->pendingOut = r;
  hot_->pendingHandle = nullptr;
  hot_->pendingOut = nullptr;
  h.resume();
  task_.rethrowIfFailed();
}

void Core::delayed(Cycle n, std::coroutine_handle<> h) {
  stats_.computeCycles += n;
  // Compute occupies the issue pipeline: the next memory op cannot depart
  // before the computation ends.
  const Cycle done = sys_.engine().now() + n;
  const Cycle interval = sys_.config().issueInterval;
  const Cycle issueMark = done > interval ? done - interval : 0;
  if (!hot_->hasIssued || hot_->lastIssue < issueMark) {
    hot_->hasIssued = true;
    hot_->lastIssue = issueMark;
  }
  auto resume_ev = [this, h] {
    h.resume();
    task_.rethrowIfFailed();
  };
  static_assert(sim::InlineEvent::fitsInline<decltype(resume_ev)>,
                "delay closure must fit the inline event buffer");
  sys_.engine().scheduleAt(done, std::move(resume_ev));
}

}  // namespace colibri::arch
