// Core model.
//
// A Core models one Snitch-like in-order core: it executes a workload
// kernel written as a C++20 coroutine that issues blocking memory
// operations (`co_await core.load(a)`), posted stores, and explicit compute
// delays. At most one memory operation is outstanding (single-issue,
// blocking pipeline), and consecutive issues are at least
// `issueInterval` cycles apart.
//
// Sleep accounting: while waiting for an LRwait/Mwait response the core is
// *asleep* (clock-gated — the polling-free property the paper measures);
// while waiting for loads/AMOs/SCs it is busy-stalled. The split feeds the
// energy model (Table II).
//
// The Qnode hooks fire when an operation physically passes the core's
// Qnode (at request departure), matching the Colibri protocol ordering.
#pragma once

#include <array>
#include <coroutine>
#include <cstdint>

#include "arch/memop.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"

namespace colibri::atomics {
class Qnode;
}

namespace colibri::obs {
struct SimHooks;
}

namespace colibri::arch {
class System;

using sim::Cycle;
using sim::TileId;

struct CoreStats {
  std::array<std::uint64_t, 16> issuedByKind{};  // indexed by OpKind
  std::uint64_t computeCycles = 0;               ///< explicit delay() cycles
  std::uint64_t sleepCycles = 0;                 ///< LRwait/Mwait waits
  std::uint64_t stallCycles = 0;                 ///< load/AMO/SC waits

  [[nodiscard]] std::uint64_t issued(OpKind k) const {
    return issuedByKind[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t totalIssued() const {
    std::uint64_t n = 0;
    for (auto v : issuedByKind) {
      n += v;
    }
    return n;
  }
  void reset() { *this = CoreStats{}; }
};

/// Hot per-core pipeline state, structure-of-arrays style: System owns one
/// contiguous vector of these (one per core) so the dispatch loop touching
/// many cores per cycle walks a dense array instead of chasing per-Core
/// heap objects — the Core object itself keeps only cold identity, stats,
/// and the task handle.
struct CoreHot {
  std::coroutine_handle<> pendingHandle{};
  MemResponse* pendingOut = nullptr;
  Cycle pendingSince = 0;
  Cycle lastIssue = 0;
  /// Last cycle this core retired a *productive* operation: anything but a
  /// reservation acquire (LR/LRwait) or a failed SC/SCwait. A core spinning
  /// in an acquire-fail-retry loop never advances this — exactly the signal
  /// the watchdog needs to tell livelock/deadlock from slow progress.
  Cycle lastProductive = 0;
  sim::Addr pendingAddr = 0;
  OpKind pendingKind = OpKind::kLoad;
  bool hasIssued = false;
};

class Core {
 public:
  Core(System& sys, CoreId id, CoreHot* hot);
  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  [[nodiscard]] CoreId id() const { return id_; }
  [[nodiscard]] TileId tile() const { return tile_; }

  // --- Workload-facing awaitables ---------------------------------------
  struct [[nodiscard]] MemAwait {
    Core& core;
    MemRequest req;
    MemResponse resp{};
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { core.issue(req, h, &resp); }
    MemResponse await_resume() const noexcept { return resp; }
  };

  struct [[nodiscard]] DelayAwait {
    Core& core;
    Cycle cycles;
    bool await_ready() const noexcept { return cycles == 0; }
    void await_suspend(std::coroutine_handle<> h) { core.delayed(cycles, h); }
    void await_resume() const noexcept {}
  };

  MemAwait op(OpKind k, sim::Addr a, sim::Word v = 0) {
    return MemAwait{*this, MemRequest{k, a, v, id_, false}, {}};
  }
  MemAwait load(sim::Addr a) { return op(OpKind::kLoad, a); }
  MemAwait store(sim::Addr a, sim::Word v) { return op(OpKind::kStore, a, v); }
  MemAwait amoAdd(sim::Addr a, sim::Word v) { return op(OpKind::kAmoAdd, a, v); }
  MemAwait amoSwap(sim::Addr a, sim::Word v) {
    return op(OpKind::kAmoSwap, a, v);
  }
  MemAwait amoOr(sim::Addr a, sim::Word v) { return op(OpKind::kAmoOr, a, v); }
  MemAwait amoAnd(sim::Addr a, sim::Word v) { return op(OpKind::kAmoAnd, a, v); }
  MemAwait lr(sim::Addr a) { return op(OpKind::kLr, a); }
  MemAwait sc(sim::Addr a, sim::Word v) { return op(OpKind::kSc, a, v); }
  MemAwait lrWait(sim::Addr a) { return op(OpKind::kLrWait, a); }
  MemAwait scWait(sim::Addr a, sim::Word v) { return op(OpKind::kScWait, a, v); }
  /// Sleep until `a` is written (or immediately if *a != expected).
  MemAwait mwait(sim::Addr a, sim::Word expected) {
    return op(OpKind::kMwait, a, expected);
  }
  /// Busy-compute for `n` cycles (models non-memory instructions).
  DelayAwait delay(Cycle n) { return DelayAwait{*this, n}; }

  // --- Simulation plumbing ----------------------------------------------
  /// Attach and start the workload coroutine.
  void run(sim::Task task);
  /// Response delivery (called by System when the network delivers).
  void complete(const MemResponse& r);
  /// Propagate an exception that escaped the task, if any.
  void rethrowIfFailed() const { task_.rethrowIfFailed(); }
  [[nodiscard]] bool taskDone() const { return task_.done(); }
  [[nodiscard]] bool hasOutstandingOp() const {
    return hot_->pendingHandle != nullptr;
  }

  [[nodiscard]] const CoreStats& stats() const { return stats_; }
  void resetStats() { stats_.reset(); }

  /// Observability hook bundle (null = off); used by the sync primitives
  /// to count retries against the issuing core's execution context.
  [[nodiscard]] const obs::SimHooks* obsHooks() const { return hooks_; }

 private:
  friend struct MemAwait;
  friend struct DelayAwait;

  void issue(const MemRequest& req, std::coroutine_handle<> h,
             MemResponse* out);
  void delayed(Cycle n, std::coroutine_handle<> h);
  [[nodiscard]] Cycle nextIssueCycle() const;

  System& sys_;
  CoreId id_;
  TileId tile_;
  atomics::Qnode* qnode_ = nullptr;  // set by System when Colibri is active
  CoreHot* hot_;                     // slot in System's dense hot-state array
  const obs::SimHooks* hooks_ = nullptr;  // set by System with a recorder

  sim::Task task_;
  CoreStats stats_;

  friend class System;
};

}  // namespace colibri::arch
