#include "model/area.hpp"

namespace colibri::model {

double lrscWaitTileArea(const arch::SystemConfig& cfg, std::uint32_t q,
                        const AreaParams& p) {
  const double perBank =
      p.lrscWaitFixedPerBank + p.lrscWaitPerSlotPerBank * q;
  return p.baseTileKge + perBank * cfg.banksPerTile;
}

double colibriTileArea(const arch::SystemConfig& cfg, std::uint32_t queues,
                       const AreaParams& p) {
  const double qnodes = p.colibriQnodePerCore * cfg.coresPerTile;
  const double perBank =
      p.colibriCtrlFixedPerBank + p.colibriPerQueuePerBank * queues;
  return p.baseTileKge + qnodes + perBank * cfg.banksPerTile;
}

double systemOverheadKge(const arch::SystemConfig& cfg, bool colibri,
                         std::uint32_t qOrQueues, const AreaParams& p) {
  const double tile = colibri ? colibriTileArea(cfg, qOrQueues, p)
                              : lrscWaitTileArea(cfg, qOrQueues, p);
  return (tile - p.baseTileKge) * cfg.numTiles();
}

std::vector<TableOneRow> tableOne(const arch::SystemConfig& cfg,
                                  const AreaParams& p) {
  std::vector<TableOneRow> rows;
  const double base = p.baseTileKge;
  auto add = [&](std::string arch, std::string params, double kge,
                 double paper) {
    rows.push_back(TableOneRow{std::move(arch), std::move(params), kge,
                               100.0 * kge / base, paper});
  };
  add("MemPool tile", "none", base, 691.0);
  add("with LRSCwait_1", "1 queue slot", lrscWaitTileArea(cfg, 1, p), 790.0);
  add("with LRSCwait_8", "8 queue slots", lrscWaitTileArea(cfg, 8, p), 865.0);
  // LRSCwait_ideal needs a slot per core: "physically infeasible" per the
  // paper; the model shows why.
  add("with LRSCwait_ideal", std::to_string(cfg.numCores) + " queue slots",
      lrscWaitTileArea(cfg, cfg.numCores, p), 0.0);
  add("with Colibri+Mwait", "1 address", colibriTileArea(cfg, 1, p), 732.0);
  add("with Colibri+Mwait", "2 addresses", colibriTileArea(cfg, 2, p), 750.0);
  add("with Colibri+Mwait", "4 addresses", colibriTileArea(cfg, 4, p), 761.0);
  add("with Colibri+Mwait", "8 addresses", colibriTileArea(cfg, 8, p), 802.0);
  return rows;
}

}  // namespace colibri::model
