// Structural area model for Table I.
//
// The paper implements MemPool tiles in GF22FDX and reports kGE (kilo gate
// equivalents) per tile for each reservation design. We model area
// structurally — registers, comparators and control FSMs, costed in kGE —
// with constants calibrated against the paper's anchors:
//
//     MemPool tile (baseline)            691 kGE
//     + LRSCwait_1                       790 kGE (+16.4 %)
//     + LRSCwait_8                       865 kGE (+27.4 %)
//     + Colibri, 1..8 queues/controller  732 / 750 / 761 / 802 kGE
//
// The model's purpose is the scaling *shape*: a reservation queue per bank
// grows linearly in q per bank (quadratically system-wide once q tracks
// the core count — the O(n^2) argument of Section III-A), while Colibri
// adds one Qnode per core and O(Q) registers per controller.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hpp"

namespace colibri::model {

struct AreaParams {
  double baseTileKge = 691.0;

  // Per-bank cost of an LRSCwait_q adapter: fixed monitor/control logic
  // plus per-slot storage (core id + address + valid + FIFO cell).
  double lrscWaitFixedPerBank = 5.52;
  double lrscWaitPerSlotPerBank = 0.67;

  // Colibri: per-core Qnode (successor id, type bit, FSM) and per-bank
  // controller (fixed control + head/tail/address registers per queue).
  double colibriQnodePerCore = 3.0;
  double colibriCtrlFixedPerBank = 1.41;
  double colibriPerQueuePerBank = 0.594;
};

/// Area of one tile (kGE) with an LRSCwait_q adapter on each of its banks.
[[nodiscard]] double lrscWaitTileArea(const arch::SystemConfig& cfg,
                                      std::uint32_t q,
                                      const AreaParams& p = {});

/// Area of one tile (kGE) with Colibri: Qnodes for the tile's cores plus a
/// controller with `queues` head/tail pairs on each bank.
[[nodiscard]] double colibriTileArea(const arch::SystemConfig& cfg,
                                     std::uint32_t queues,
                                     const AreaParams& p = {});

/// Whole-system overhead in kGE over the baseline (for the scaling plot:
/// LRSCwait_ideal grows ~quadratically with cores, Colibri linearly).
[[nodiscard]] double systemOverheadKge(const arch::SystemConfig& cfg,
                                       bool colibri, std::uint32_t qOrQueues,
                                       const AreaParams& p = {});

struct TableOneRow {
  std::string architecture;
  std::string parameters;
  double areaKge = 0.0;
  double areaPercent = 0.0;  ///< relative to the baseline tile
  double paperKge = 0.0;     ///< 0 if the paper has no anchor for this row
};

/// The full Table I (model values side by side with the paper's anchors).
[[nodiscard]] std::vector<TableOneRow> tableOne(
    const arch::SystemConfig& cfg = arch::SystemConfig::memPool(),
    const AreaParams& p = {});

}  // namespace colibri::model
