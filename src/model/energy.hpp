// Event-based energy model for Table II.
//
// The paper evaluates power from post-layout gate-level simulation at
// 600 MHz (GF22FDX, TT/0.80 V/25 °C) and reports the energy of an atomic
// access at the highest contention. That figure is the *marginal* energy
// attributable to the access — the switching activity of the issuing
// pipeline, the interconnect flits, the bank, and whatever retry traffic
// the scheme generates — not total chip power divided by throughput.
//
// We therefore charge energy per event counted by the simulator:
//
//   - instructions issued (every retry of a failed LR/SC counts),
//   - bank accesses (every request that claims a bank port),
//   - network messages, weighted by distance class,
//   - busy compute cycles (local work, spin-wait pacing loops),
//   - sleep cycles (clock-gated LRwait/Mwait waits — near-free, but the
//     whole point of the paper is that this term replaces retry traffic),
//   - stall cycles (scoreboard stalls on in-flight responses; the Snitch
//     pipeline is largely gated while stalled).
//
// The per-event constants are calibrated once against the paper's Atomic
// Add anchor (29 pJ/op); every other row then follows from the measured
// event counts. Average power = background (idle fabric + clock tree) +
// event energy over time.
#pragma once

#include <cstdint>

#include "workloads/harness.hpp"

namespace colibri::model {

struct EnergyParams {
  // pJ per event; see header comment.
  double instruction = 3.0;
  double bankAccess = 2.0;
  double msgLocalTile = 1.0;
  double msgSameGroup = 4.0;
  double msgRemoteGroup = 8.0;
  double computeCycle = 0.4;  ///< issuing pipeline active
  double stallCycle = 0.08;   ///< gated while waiting for a response
  double sleepCycle = 0.02;   ///< clock-gated in the reservation queue
  /// Background power of the idle 256-core fabric (clock tree, SRAM
  /// retention): sets the floor of the paper's ~170-190 mW power column.
  double idlePowerMw = 160.0;
  double mhz = 600.0;  ///< modeled clock
};

struct EnergyBreakdown {
  double instructionPj = 0.0;
  double bankPj = 0.0;
  double networkPj = 0.0;
  double computePj = 0.0;
  double stallPj = 0.0;
  double sleepPj = 0.0;

  [[nodiscard]] double totalPj() const {
    return instructionPj + bankPj + networkPj + computePj + stallPj +
           sleepPj;
  }
};

/// Charge the counters of one measurement window.
[[nodiscard]] EnergyBreakdown chargeEnergy(
    const workloads::SystemCounters& counters, const EnergyParams& p = {});

/// Energy per completed operation (Table II's pJ/OP column).
[[nodiscard]] double energyPerOp(const workloads::SystemCounters& counters,
                                 std::uint64_t opsCompleted,
                                 const EnergyParams& p = {});

/// Average power in mW over the window: background + event energy / time.
[[nodiscard]] double averagePowerMw(const workloads::SystemCounters& counters,
                                    const EnergyParams& p = {});

}  // namespace colibri::model
