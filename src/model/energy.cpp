#include "model/energy.hpp"

namespace colibri::model {

EnergyBreakdown chargeEnergy(const workloads::SystemCounters& c,
                             const EnergyParams& p) {
  EnergyBreakdown e;
  e.instructionPj = static_cast<double>(c.instructions) * p.instruction;
  e.bankPj = static_cast<double>(c.bankAccesses) * p.bankAccess;
  e.networkPj =
      static_cast<double>(c.netMessages[0]) * p.msgLocalTile +
      static_cast<double>(c.netMessages[1]) * p.msgSameGroup +
      static_cast<double>(c.netMessages[2]) * p.msgRemoteGroup;
  e.computePj = static_cast<double>(c.computeCycles) * p.computeCycle;
  e.stallPj = static_cast<double>(c.stallCycles) * p.stallCycle;
  e.sleepPj = static_cast<double>(c.sleepCycles) * p.sleepCycle;
  return e;
}

double energyPerOp(const workloads::SystemCounters& counters,
                   std::uint64_t opsCompleted, const EnergyParams& p) {
  if (opsCompleted == 0) {
    return 0.0;
  }
  return chargeEnergy(counters, p).totalPj() /
         static_cast<double>(opsCompleted);
}

double averagePowerMw(const workloads::SystemCounters& counters,
                      const EnergyParams& p) {
  if (counters.windowCycles == 0) {
    return p.idlePowerMw;
  }
  const double totalPj = chargeEnergy(counters, p).totalPj();
  const double seconds =
      static_cast<double>(counters.windowCycles) / (p.mhz * 1e6);
  return p.idlePowerMw + totalPj * 1e-12 / seconds * 1e3;
}

}  // namespace colibri::model
