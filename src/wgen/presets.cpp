#include "wgen/presets.hpp"

namespace colibri::wgen {

namespace {

Role soloRole(Phase phase) { return Role{"worker", 1.0, {phase}}; }

std::vector<Preset> buildPresets() {
  std::vector<Preset> out;

  {
    KernelSpec s;
    s.name = "uniform_fa";
    s.regions = {Region{.dist = AddrDist::kUniform, .range = 256}};
    s.roles = {soloRole(Phase{.region = 0, .op = OpClass::kRmw})};
    out.push_back({std::move(s),
                   "uniform fetch-add over 256 words — low-contention "
                   "baseline"});
  }
  {
    KernelSpec s;
    s.name = "zipf_hot";
    s.regions = {Region{
        .dist = AddrDist::kZipfian, .range = 256, .zipfTheta = 0.99}};
    s.roles = {soloRole(Phase{.region = 0, .op = OpClass::kRmw})};
    out.push_back({std::move(s),
                   "Zipf(0.99)-skewed fetch-add over 256 words — hot-key "
                   "contention"});
  }
  {
    KernelSpec s;
    s.name = "hotspot1";
    s.regions = {Region{
        .dist = AddrDist::kHotspot, .range = 64, .hotFraction = 0.9}};
    s.roles = {soloRole(Phase{.region = 0, .op = OpClass::kRmw})};
    out.push_back({std::move(s),
                   "90% of fetch-adds hit one hot word, the rest spread "
                   "over 63"});
  }
  {
    KernelSpec s;
    s.name = "readers_writers";
    s.regions = {Region{.dist = AddrDist::kUniform, .range = 64}};
    s.roles = {
        Role{"readers", 0.9,
             {Phase{.region = 0, .op = OpClass::kLoad, .thinkCycles = 2}}},
        Role{"writers", 0.1,
             {Phase{.region = 0, .op = OpClass::kRmw, .thinkCycles = 4}}},
    };
    out.push_back({std::move(s),
                   "90% reader cores load, 10% writer cores fetch-add one "
                   "shared region"});
  }
  {
    KernelSpec s;
    s.name = "stride_fs";
    // range 0 = one word per participating core; strideBanks 0 = every
    // word in the same bank: distinct words, one serializing bank port.
    s.regions = {Region{
        .dist = AddrDist::kStrided, .range = 0, .strideBanks = 0}};
    s.roles = {soloRole(Phase{.region = 0, .op = OpClass::kRmw})};
    out.push_back({std::move(s),
                   "each core updates its own word but all words share one "
                   "bank (false sharing)"});
  }
  {
    KernelSpec s;
    s.name = "mixed_cas";
    s.regions = {
        Region{.dist = AddrDist::kZipfian, .range = 128, .zipfTheta = 0.9},
        Region{.dist = AddrDist::kUniform, .range = 256},
    };
    s.roles = {
        Role{"cas", 0.5, {Phase{.region = 0, .op = OpClass::kCas}}},
        Role{"adders", 0.5, {Phase{.region = 1, .op = OpClass::kRmw}}},
    };
    out.push_back({std::move(s),
                   "half the cores CAS-loop on a Zipf-hot region, half "
                   "fetch-add a uniform one"});
  }
  {
    KernelSpec s;
    s.name = "burst";
    s.regions = {Region{
        .dist = AddrDist::kHotspot, .range = 32, .hotFraction = 0.8}};
    s.roles = {soloRole(Phase{.region = 0,
                              .op = OpClass::kRmw,
                              .opsPerVisit = 8,
                              .thinkCycles = 0,
                              .gapCycles = 256})};
    out.push_back({std::move(s),
                   "8-op bursts against a hot region separated by 256 idle "
                   "cycles"});
  }
  {
    KernelSpec s;
    s.name = "lock_zipf";
    s.regions = {Region{
        .dist = AddrDist::kZipfian, .range = 16, .zipfTheta = 0.99}};
    s.roles = {soloRole(Phase{.region = 0,
                              .op = OpClass::kLock,
                              .thinkCycles = 8,
                              .csCycles = 4})};
    out.push_back({std::move(s),
                   "lock-protected critical sections with Zipf-skewed lock "
                   "popularity"});
  }

  for (const auto& p : out) {
    validate(p.spec);  // fail fast at first use, not mid-run
  }
  return out;
}

}  // namespace

const std::vector<Preset>& presets() {
  static const std::vector<Preset> kPresets = buildPresets();
  return kPresets;
}

const Preset* findPreset(const std::string& name) {
  for (const auto& p : presets()) {
    if (p.spec.name == name) {
      return &p;
    }
  }
  return nullptr;
}

}  // namespace colibri::wgen
