// Curated named kernels — the workload-generator presets the scenario
// registry exposes as first-class workloads.
//
// Every preset runs on the default geometries (the paper's 256-core
// MemPool and the 16-core smallTest): region ranges fit the SPM and the
// strided preset sizes itself to the participating core count.
#pragma once

#include <string>
#include <vector>

#include "wgen/spec.hpp"

namespace colibri::wgen {

struct Preset {
  KernelSpec spec;
  std::string description;
};

/// All registered presets, in presentation order.
[[nodiscard]] const std::vector<Preset>& presets();

/// Look up by KernelSpec name; nullptr if unknown.
[[nodiscard]] const Preset* findPreset(const std::string& name);

}  // namespace colibri::wgen
