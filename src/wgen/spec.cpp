#include "wgen/spec.hpp"

#include <algorithm>
#include <cmath>

#include "sim/check.hpp"

namespace colibri::wgen {

const char* toString(AddrDist d) {
  switch (d) {
    case AddrDist::kUniform:
      return "uniform";
    case AddrDist::kZipfian:
      return "zipfian";
    case AddrDist::kHotspot:
      return "hotspot";
    case AddrDist::kStrided:
      return "strided";
  }
  return "?";
}

const char* toString(OpClass o) {
  switch (o) {
    case OpClass::kLoad:
      return "load";
    case OpClass::kRmw:
      return "rmw";
    case OpClass::kCas:
      return "cas";
    case OpClass::kLock:
      return "lock";
  }
  return "?";
}

void validate(const KernelSpec& spec) {
  COLIBRI_CHECK_MSG(!spec.name.empty(), "kernel needs a name");
  COLIBRI_CHECK_MSG(!spec.regions.empty(),
                    "kernel '" << spec.name << "' declares no regions");
  COLIBRI_CHECK_MSG(!spec.roles.empty(),
                    "kernel '" << spec.name << "' declares no roles");
  for (const auto& r : spec.regions) {
    COLIBRI_CHECK_MSG(r.zipfTheta >= 0.0, "zipfTheta must be >= 0");
    COLIBRI_CHECK_MSG(r.hotFraction >= 0.0 && r.hotFraction <= 1.0,
                      "hotFraction must be in [0, 1]");
  }
  double totalShare = 0.0;
  for (const auto& role : spec.roles) {
    COLIBRI_CHECK_MSG(role.share >= 0.0,
                      "role '" << role.name << "' has a negative share");
    COLIBRI_CHECK_MSG(!role.phases.empty(),
                      "role '" << role.name << "' has no phases");
    totalShare += role.share;
    for (const auto& ph : role.phases) {
      COLIBRI_CHECK_MSG(ph.region < spec.regions.size(),
                        "phase of role '" << role.name
                                          << "' references region "
                                          << ph.region << " of "
                                          << spec.regions.size());
      COLIBRI_CHECK_MSG(ph.opsPerVisit >= 1, "opsPerVisit must be >= 1");
    }
  }
  COLIBRI_CHECK_MSG(totalShare > 0.0,
                    "kernel '" << spec.name << "' has zero total share");
}

bool needsReservations(const KernelSpec& spec) {
  for (const auto& role : spec.roles) {
    for (const auto& ph : role.phases) {
      if (ph.op == OpClass::kCas) {
        return true;
      }
    }
  }
  return false;
}

std::vector<std::uint32_t> assignRoles(const KernelSpec& spec,
                                       std::uint32_t participants) {
  const std::size_t n = spec.roles.size();
  double total = 0.0;
  for (const auto& role : spec.roles) {
    total += role.share;
  }
  // Cumulative-share boundaries; floor keeps the split deterministic.
  std::vector<std::uint32_t> counts(n, 0);
  double cum = 0.0;
  std::uint32_t prev = 0;
  for (std::size_t r = 0; r < n; ++r) {
    cum += spec.roles[r].share;
    const auto edge = static_cast<std::uint32_t>(
        std::floor(static_cast<double>(participants) * (cum / total)));
    counts[r] = edge - prev;
    prev = edge;
  }
  counts[n - 1] += participants - prev;  // rounding remainder to the last role
  // Fixup: a positive-share role squeezed to zero takes one core from the
  // currently largest role (first-largest wins — deterministic).
  for (std::size_t r = 0; r < n; ++r) {
    if (spec.roles[r].share > 0.0 && counts[r] == 0) {
      const auto big = static_cast<std::size_t>(
          std::max_element(counts.begin(), counts.end()) - counts.begin());
      if (counts[big] > 1) {
        --counts[big];
        ++counts[r];
      }
    }
  }
  std::vector<std::uint32_t> out;
  out.reserve(participants);
  for (std::size_t r = 0; r < n; ++r) {
    out.insert(out.end(), counts[r], static_cast<std::uint32_t>(r));
  }
  return out;
}

std::vector<double> zipfCdf(std::uint32_t range, double theta) {
  COLIBRI_CHECK_MSG(range >= 1, "zipf range must be >= 1");
  std::vector<double> cdf(range);
  double sum = 0.0;
  for (std::uint32_t i = 0; i < range; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf[i] = sum;
  }
  for (auto& c : cdf) {
    c /= sum;
  }
  cdf.back() = 1.0;  // guard against rounding shortfall at the tail
  return cdf;
}

}  // namespace colibri::wgen
