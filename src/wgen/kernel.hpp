// Kernel runner: compile a KernelSpec into coroutine workers and run it
// on the shared workloads:: measurement harness (warmup window, counter
// snapshot, drain, self-check).
//
// Op flavors are resolved from the system's adapter at run time — kRmw is
// a single AMO on the AMO-only adapter, an LR/SC loop on the LR/SC
// adapters, and LRwait/SCwait on wait-capable ones — so the same spec is
// runnable across the whole adapter axis (CAS phases excepted; they need
// reservations).
//
// Determinism: participant i derives its RNG stream from (seed, CoreId)
// exactly like the fixed workloads, regions are allocated in declaration
// order, and latencies are merged in participant order — a (config, seed,
// spec) triple reproduces the WgenResult bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/stats.hpp"
#include "sync/backoff.hpp"
#include "wgen/spec.hpp"
#include "workloads/harness.hpp"

namespace colibri::wgen {

struct WgenParams {
  KernelSpec kernel;
  sync::BackoffPolicy backoff = sync::BackoffPolicy::fixed(128);
  workloads::MeasureWindow window{};
  /// Participating cores; empty = all cores of the system. Roles are
  /// assigned over positions in this list (assignRoles).
  std::vector<sim::CoreId> cores;
};

/// A Region instantiated on a System: the address table (index →
/// simulated word), the parallel lock words (kLock phases only), and the
/// sampled CDF (kZipfian only). Exposed for tests.
struct ResolvedRegion {
  std::vector<sim::Addr> addrs;
  std::vector<sim::Addr> locks;
  std::vector<double> cdf;
};

/// Allocate and zero-initialize every region of `spec` on `sys`.
/// `participants` resolves range-0 (one word per core) regions.
[[nodiscard]] std::vector<ResolvedRegion> resolveRegions(
    arch::System& sys, const KernelSpec& spec, std::uint32_t participants);

struct WgenResult {
  workloads::RateResult rate;
  /// Latency (cycles, think time excluded) of every op that completed
  /// inside the measurement window; count == rate.opsInWindow.
  sim::Summary opLatency;
  std::uint64_t totalOps = 0;         ///< performed ops incl. outside window
  std::uint64_t totalIncrements = 0;  ///< modifying ops (verification basis)
  bool sumVerified = false;  ///< Σ region words == totalIncrements, locks free
};

/// Run the kernel on a fresh system. The adapter must support every op
/// class the spec uses (checked).
WgenResult runKernel(arch::System& sys, const WgenParams& p);

}  // namespace colibri::wgen
