// KernelSpec: a declarative description of a synthetic contention kernel.
//
// The paper's evaluation fixes five kernels; a KernelSpec opens the
// scenario space by describing a kernel as data instead of code. A kernel
// is a set of shared *regions* (parameterized address streams), a set of
// *roles* (fractions of the participating cores), and per-role *phases*
// (which region, which op class, how much think time) visited round-robin.
//
//   Region — how target addresses are drawn:
//     kUniform  every word of the region equally likely,
//     kZipfian  rank i with probability ∝ 1/(i+1)^θ (hot-key skew),
//     kHotspot  word 0 with probability hotFraction, the rest uniform,
//     kStrided  each core owns one fixed word; strideBanks controls how
//               the words map to banks (0 = all in one bank, the
//               false-sharing pattern — distinct words serialized on one
//               bank port).
//
//   Phase op classes — resolved to the strongest flavor the system's
//   adapter supports at run time (like the registry's histogramModeFor):
//     kLoad  plain load (readers),
//     kRmw   fetch-add: single AMO on amo, LR/SC loop on the LR/SC
//            adapters, LRwait/SCwait on wait-capable ones,
//     kCas   compare-and-swap loop over the reservation pair (not
//            runnable on the AMO-only adapter),
//     kLock  lock-protected critical section via sync::acquireLock
//            (TAS flavor matched to the adapter).
//
// Every modifying op adds exactly 1 to one region word, so a run
// self-checks like the histogram: Σ region words == performed increments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace colibri::wgen {

enum class AddrDist : std::uint8_t { kUniform, kZipfian, kHotspot, kStrided };

[[nodiscard]] const char* toString(AddrDist d);

enum class OpClass : std::uint8_t { kLoad, kRmw, kCas, kLock };

[[nodiscard]] const char* toString(OpClass o);

/// One shared address stream. Regions are declared once per kernel and
/// referenced by index from phases, so two roles can hammer (or read) the
/// same words — a readers/writers kernel is two roles over one region.
struct Region {
  AddrDist dist = AddrDist::kUniform;
  /// Distinct words; 0 = one word per participating core (resolved when
  /// the kernel is instantiated on a System).
  std::uint32_t range = 64;
  /// kZipfian: skew exponent θ; 0 degenerates to uniform.
  double zipfTheta = 0.99;
  /// kHotspot: probability an op hits word 0.
  double hotFraction = 0.9;
  /// kStrided: bank step between successive words; 0 = every word in the
  /// same bank (false sharing).
  std::uint32_t strideBanks = 0;
};

/// One step of a role's loop: `opsPerVisit` ops against one region, each
/// preceded by `thinkCycles` of local compute, with `gapCycles` of idle
/// time after the pass (burst shapes come from opsPerVisit + gapCycles).
struct Phase {
  std::uint32_t region = 0;  ///< index into KernelSpec::regions
  OpClass op = OpClass::kRmw;
  std::uint32_t opsPerVisit = 1;
  std::uint32_t thinkCycles = 4;
  std::uint32_t gapCycles = 0;
  /// kLock: extra compute inside the critical section.
  std::uint32_t csCycles = 1;
};

/// A fraction of the cores running the same phase loop.
struct Role {
  std::string name;
  /// Relative share of the participating cores (normalized over all
  /// roles); every role with share > 0 receives at least one core.
  double share = 1.0;
  std::vector<Phase> phases;  ///< visited round-robin
};

struct KernelSpec {
  std::string name;
  std::vector<Region> regions;
  std::vector<Role> roles;
};

/// Structural validation (non-empty roles/phases, region indices in
/// range, sane distribution parameters). Throws sim::InvariantViolation.
void validate(const KernelSpec& spec);

/// True iff the kernel issues reservation-based CAS loops, which the
/// AMO-only adapter cannot run (mirrors the amo × prodcons rule).
[[nodiscard]] bool needsReservations(const KernelSpec& spec);

/// Deterministic role assignment: participant i (position in the core
/// list, not CoreId) → role index. Cumulative-share splits, with a fixup
/// pass guaranteeing every positive-share role at least one core when
/// there are enough participants.
[[nodiscard]] std::vector<std::uint32_t> assignRoles(const KernelSpec& spec,
                                                     std::uint32_t participants);

/// Normalized Zipf CDF over `range` ranks with skew `theta` (rank i has
/// weight 1/(i+1)^θ). Sample by upper_bound with a uniform [0,1) draw.
[[nodiscard]] std::vector<double> zipfCdf(std::uint32_t range, double theta);

}  // namespace colibri::wgen
