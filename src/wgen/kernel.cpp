#include "wgen/kernel.hpp"

#include <algorithm>
#include <numeric>

#include "arch/system.hpp"
#include "obs/hooks.hpp"
#include "sim/check.hpp"
#include "sim/random.hpp"
#include "sync/atomic.hpp"
#include "sync/spinlock.hpp"

namespace colibri::wgen {

namespace {

/// Shared state of one kernel run. Lives on the runKernel stack; worker
/// frames reference it and are only resumed while the run is active.
struct WgenCtx {
  const WgenParams* params = nullptr;
  std::vector<ResolvedRegion> regions;
  sync::RmwFlavor rmwFlavor = sync::RmwFlavor::kLrsc;
  sync::RmwFlavor casFlavor = sync::RmwFlavor::kLrsc;
  sync::SpinLockKind lockKind = sync::SpinLockKind::kLrscTas;
  bool stop = false;
  sim::Cycle windowStart = 0;
  sim::Cycle windowEnd = 0;
  std::vector<std::uint64_t> perCoreTotal;       // by participant index
  std::vector<std::uint64_t> perCoreWindow;
  std::vector<std::uint64_t> perCoreIncrements;
  std::vector<std::vector<double>> perCoreLatency;
};

std::uint32_t pickIndex(const Region& def, const ResolvedRegion& region,
                        sim::Xoshiro256& rng, std::uint32_t pidx) {
  const auto range = static_cast<std::uint32_t>(region.addrs.size());
  switch (def.dist) {
    case AddrDist::kUniform:
      return static_cast<std::uint32_t>(rng.below(range));
    case AddrDist::kZipfian: {
      const double u = rng.uniform01();
      const auto it =
          std::upper_bound(region.cdf.begin(), region.cdf.end(), u);
      const auto i =
          static_cast<std::uint32_t>(it - region.cdf.begin());
      return i < range ? i : range - 1;
    }
    case AddrDist::kHotspot:
      if (range <= 1 || rng.uniform01() < def.hotFraction) {
        return 0;
      }
      return 1 + static_cast<std::uint32_t>(rng.below(range - 1));
    case AddrDist::kStrided:
      return pidx % range;
  }
  return 0;
}

sim::Task wgenWorker(arch::System& sys, arch::Core& core, WgenCtx& ctx,
                     const Role& role, std::uint32_t pidx) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, core.id());
  sync::Backoff backoff(ctx.params->backoff, rng);
  const obs::SimHooks* hooks = sys.obsHooks();
  std::size_t next = 0;

  while (!ctx.stop) {
    const Phase& phase = role.phases[next];
    next = (next + 1) % role.phases.size();
    const Region& def = ctx.params->kernel.regions[phase.region];
    const ResolvedRegion& region = ctx.regions[phase.region];
    const sim::Cycle visitStart = sys.now();

    for (std::uint32_t rep = 0; rep < phase.opsPerVisit && !ctx.stop;
         ++rep) {
      if (phase.thinkCycles > 0) {
        co_await core.delay(phase.thinkCycles);
        if (ctx.stop) {
          break;
        }
      }
      const std::uint32_t idx = pickIndex(def, region, rng, pidx);
      const sim::Addr a = region.addrs[idx];
      const sim::Cycle start = sys.now();
      bool performed = false;
      bool modified = false;
      switch (phase.op) {
        case OpClass::kLoad: {
          (void)co_await core.load(a);
          performed = true;
          break;
        }
        case OpClass::kRmw: {
          const auto r = co_await sync::fetchAdd(core, ctx.rmwFlavor, a, 1,
                                                 backoff, &ctx.stop);
          performed = modified = r.performed;
          break;
        }
        case OpClass::kCas: {
          auto expected = (co_await core.load(a)).value;
          while (true) {
            const auto r = co_await sync::compareAndSwap(
                core, ctx.casFlavor, a, expected, expected + 1, backoff,
                &ctx.stop);
            if (r.swapped) {
              performed = modified = true;
              break;
            }
            expected = r.observed;
            // Each attempt closes its reservation pair, so giving up
            // between attempts never leaves a dangling LRwait.
            co_await core.delay(backoff.next());
            if (ctx.stop) {
              break;
            }
          }
          break;
        }
        case OpClass::kLock: {
          co_await sync::acquireLock(core, ctx.lockKind, region.locks[idx],
                                     backoff);
          const auto v = co_await core.load(a);
          co_await core.delay(phase.csCycles);
          // Acked store: the data update must commit before the release
          // store can be observed (see spinlock.hpp on ordering).
          (void)co_await core.amoSwap(a, v.value + 1);
          co_await sync::releaseLock(core, region.locks[idx]);
          performed = modified = true;
          break;
        }
      }
      if (performed) {
        ++ctx.perCoreTotal[pidx];
        if (modified) {
          ++ctx.perCoreIncrements[pidx];
        }
        const auto now = sys.now();
        if (now >= ctx.windowStart && now < ctx.windowEnd) {
          ++ctx.perCoreWindow[pidx];
          ctx.perCoreLatency[pidx].push_back(
              static_cast<double>(now - start));
        }
      }
    }
    if (hooks != nullptr) {
      hooks->add(hooks->wgenVisits);
      if (hooks->tracer != nullptr) {
        hooks->tracer->onPhase(core.id(), toString(phase.op), visitStart,
                               sys.now());
      }
    }
    if (phase.gapCycles > 0 && !ctx.stop) {
      co_await core.delay(phase.gapCycles);
    }
  }
}

}  // namespace

std::vector<ResolvedRegion> resolveRegions(arch::System& sys,
                                           const KernelSpec& spec,
                                           std::uint32_t participants) {
  validate(spec);
  std::vector<bool> needsLocks(spec.regions.size(), false);
  for (const auto& role : spec.roles) {
    for (const auto& ph : role.phases) {
      if (ph.op == OpClass::kLock) {
        needsLocks[ph.region] = true;
      }
    }
  }

  std::vector<ResolvedRegion> out(spec.regions.size());
  for (std::size_t i = 0; i < spec.regions.size(); ++i) {
    const Region& def = spec.regions[i];
    const std::uint32_t range =
        def.range != 0 ? def.range : std::max(1u, participants);
    ResolvedRegion& region = out[i];
    region.addrs.reserve(range);
    if (def.dist == AddrDist::kStrided) {
      const auto banks = sys.numBanks();
      for (std::uint32_t j = 0; j < range; ++j) {
        const sim::BankId b =
            def.strideBanks == 0
                ? 0
                : static_cast<sim::BankId>(
                      (static_cast<std::uint64_t>(j) * def.strideBanks) %
                      banks);
        region.addrs.push_back(sys.allocator().allocInBank(b));
      }
    } else {
      const sim::Addr base = sys.allocator().allocGlobal(range);
      for (std::uint32_t j = 0; j < range; ++j) {
        region.addrs.push_back(base + j);
      }
    }
    for (const auto a : region.addrs) {
      sys.poke(a, 0);
    }
    if (needsLocks[i]) {
      const sim::Addr base = sys.allocator().allocGlobal(range);
      region.locks.reserve(range);
      for (std::uint32_t j = 0; j < range; ++j) {
        region.locks.push_back(base + j);
        sys.poke(base + j, 0);
      }
    }
    if (def.dist == AddrDist::kZipfian) {
      region.cdf = zipfCdf(range, def.zipfTheta);
    }
  }
  return out;
}

WgenResult runKernel(arch::System& sys, const WgenParams& p) {
  validate(p.kernel);
  const auto adapter = sys.config().adapter;
  if (needsReservations(p.kernel)) {
    COLIBRI_CHECK_MSG(adapter != arch::AdapterKind::kAmoOnly,
                      "kernel '" << p.kernel.name
                                 << "' runs CAS loops and the AMO-only "
                                    "adapter has no reservations");
  }

  std::vector<sim::CoreId> cores = p.cores;
  if (cores.empty()) {
    cores.resize(sys.numCores());
    std::iota(cores.begin(), cores.end(), 0);
  }
  const auto participants = static_cast<std::uint32_t>(cores.size());

  WgenCtx ctx;
  ctx.params = &p;
  ctx.regions = resolveRegions(sys, p.kernel, participants);
  ctx.rmwFlavor = workloads::rmwFlavorFor(adapter);
  ctx.casFlavor = ctx.rmwFlavor == sync::RmwFlavor::kAmo
                      ? sync::RmwFlavor::kLrsc  // unreachable (checked above)
                      : ctx.rmwFlavor;
  ctx.lockKind = workloads::lockKindFor(adapter);
  ctx.windowStart = p.window.warmup;
  ctx.windowEnd = p.window.horizon();
  ctx.perCoreTotal.assign(participants, 0);
  ctx.perCoreWindow.assign(participants, 0);
  ctx.perCoreIncrements.assign(participants, 0);
  ctx.perCoreLatency.assign(participants, {});

  const auto assignment = assignRoles(p.kernel, participants);
  for (std::uint32_t i = 0; i < participants; ++i) {
    sys.spawn(cores[i],
              wgenWorker(sys, sys.core(cores[i]), ctx,
                         p.kernel.roles[assignment[i]], i));
  }
  sys.at(ctx.windowStart, [&sys] { sys.resetStats(); });
  sys.at(ctx.windowEnd, [&ctx] { ctx.stop = true; });

  sys.runUntil(ctx.windowEnd);
  const auto counters =
      workloads::snapshotCounters(sys, p.window.measure, participants);
  sys.run();  // drain: workers close their pairs and exit
  sys.rethrowFailures();
  COLIBRI_CHECK_MSG(sys.allTasksDone(), "wgen workers failed to drain");

  WgenResult res;
  res.totalOps = std::accumulate(ctx.perCoreTotal.begin(),
                                 ctx.perCoreTotal.end(), std::uint64_t{0});
  res.totalIncrements =
      std::accumulate(ctx.perCoreIncrements.begin(),
                      ctx.perCoreIncrements.end(), std::uint64_t{0});

  std::uint64_t sum = 0;
  bool locksFree = true;
  for (const auto& region : ctx.regions) {
    for (const auto a : region.addrs) {
      sum += sys.peek(a);
    }
    for (const auto l : region.locks) {
      locksFree = locksFree && sys.peek(l) == 0;
    }
  }
  res.sumVerified = sum == res.totalIncrements && locksFree;
  COLIBRI_CHECK_MSG(res.sumVerified,
                    "wgen sum mismatch: kernel=" << p.kernel.name
                                                 << " words=" << sum
                                                 << " increments="
                                                 << res.totalIncrements
                                                 << " locksFree="
                                                 << locksFree);

  res.rate = workloads::summarizeRates(ctx.perCoreWindow, p.window.measure,
                                       counters);

  std::size_t samples = 0;
  for (const auto& v : ctx.perCoreLatency) {
    samples += v.size();
  }
  std::vector<double> latencies;
  latencies.reserve(samples);
  for (const auto& v : ctx.perCoreLatency) {
    latencies.insert(latencies.end(), v.begin(), v.end());
  }
  res.opLatency = sim::Summary::of(latencies);
  return res;
}

}  // namespace colibri::wgen
