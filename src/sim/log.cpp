#include "sim/log.hpp"

namespace colibri::sim {

LogLevel Log::level_ = LogLevel::kNone;

void Log::write(LogLevel l, Cycle at, std::string_view msg) {
  const char* tag = "?";
  switch (l) {
    case LogLevel::kError:
      tag = "E";
      break;
    case LogLevel::kWarn:
      tag = "W";
      break;
    case LogLevel::kInfo:
      tag = "I";
      break;
    case LogLevel::kTrace:
      tag = "T";
      break;
    case LogLevel::kNone:
      break;
  }
  std::clog << '[' << tag << ' ' << at << "] " << msg << '\n';
}

}  // namespace colibri::sim
