// ParallelDispatch implementation: window execution, the barrier merge
// that reconstructs sequential order, and the worker pool.
#include "sim/parallel.hpp"

#include <algorithm>

namespace colibri::sim {

namespace {

// Thread-local execution context. `shard` is set both inside worker
// windows (inWindow = true) and for live main-thread execution on behalf
// of a shard (spawn / serial cycles, inWindow = false); the distinction
// decides whether a schedule call becomes a provisional child or takes a
// real counter seq immediately. Stored as void* because Shard is private
// to ParallelDispatch — only its member functions cast it back.
struct TlsCtx {
  void* shard = nullptr;
  std::vector<ParallelDispatch::PortAcquire>* portLog = nullptr;
  int shardIndex = -1;
  bool inWindow = false;
};
thread_local TlsCtx g_tls;

// Elision backlog cap: total exec records accumulated across consecutive
// quiet windows before a sweep is forced anyway. Purely a memory bound —
// the batched sweep produces the same commit stream wherever it lands —
// sized so the retained logs stay a few MiB at worst.
constexpr std::size_t kMergeBacklogCap = std::size_t{1} << 16;

}  // namespace

// A deferred cross-boundary message, recorded during a window and resolved
// at the barrier merge in exact sequential position.
struct ParallelDispatch::ShardSend {
  enum Kind : std::uint8_t {
    kDirect,   ///< arrival precomputed at send time (no shared resources)
    kRequest,  ///< backlog probe + shared-stage acquisition at the merge
  };
  Kind kind;
  std::uint32_t dstShard;
  Cycle when;    ///< send time (kRequest: the hook's probe point)
  Cycle arrive;  ///< kDirect: precomputed delivery cycle
  CoreId from;   ///< kRequest
  BankId bank;   ///< kRequest
  InlineEvent ev;
};

// One schedule call made while its parent event executed inside a window,
// in shard-local call order. The index into the shard's `children` vector
// is the provisional key; the merge assigns the real seq at parent commit.
struct ParallelDispatch::Child {
  enum Kind : std::uint8_t { kLocal, kSend };
  Kind kind;
  std::uint32_t sendIdx = 0;       ///< kSend: index into `sends`
  EventQueue::NodeRef ref;         ///< kLocal: pending-event handle
  std::uint64_t resolvedSeq = 0;   ///< kLocal: set at parent commit
};

// One event executed inside a window: its (when, key) identity plus the
// half-open ranges of children it scheduled and port slots it acquired.
struct ParallelDispatch::ExecRecord {
  Cycle when;
  std::uint64_t key;  ///< real seq, or kProvisional | childIdx
  std::uint32_t childBegin, childEnd;
  std::uint32_t portBegin, portEnd;
};

struct alignas(64) ParallelDispatch::Shard {
  EventQueue queue;
  Cycle now = 0;
  std::uint64_t executed = 0;
  std::vector<ExecRecord> execLog;
  std::vector<Child> children;
  std::vector<ShardSend> sends;
  std::vector<PortAcquire> portLog;
  std::exception_ptr error;
  std::uint32_t mergePos = 0;
  std::uint32_t index = 0;
  std::uint64_t idleSkips = 0;  ///< windows skipped with no event due
};

ParallelDispatch::ParallelDispatch(Engine& engine, Hooks& hooks,
                                   std::uint32_t numShards,
                                   std::uint32_t numWorkers, Cycle lookahead)
    : engine_(engine),
      hooks_(hooks),
      lookahead_(lookahead),
      workerCount_(std::min(numWorkers, numShards)) {
  COLIBRI_CHECK(numShards >= 2);
  COLIBRI_CHECK(lookahead >= 1);
  COLIBRI_CHECK(workerCount_ >= 1);
  COLIBRI_CHECK_MSG(engine.pendingEvents() == 0 && engine.now() == 0,
                    "parallel mode must be enabled on a fresh engine");
  shards_.reserve(numShards);
  for (std::uint32_t i = 0; i < numShards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->index = i;
  }
  engine_.setParallel(this);
}

ParallelDispatch::~ParallelDispatch() {
  if (workersStarted_) {
    stop_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    for (auto& t : threads_) {
      t.join();
    }
  }
  engine_.setParallel(nullptr);
}

// --- Thread-local context --------------------------------------------------

int ParallelDispatch::currentWindowShard() noexcept {
  return g_tls.inWindow ? g_tls.shardIndex : -1;
}

std::vector<ParallelDispatch::PortAcquire>*
ParallelDispatch::currentPortLog() noexcept {
  return g_tls.inWindow ? g_tls.portLog : nullptr;
}

bool ParallelDispatch::inWindowContext() noexcept { return g_tls.inWindow; }

Cycle ParallelDispatch::nowOnThisThread() const noexcept {
  const auto* s = static_cast<const Shard*>(g_tls.shard);
  return s != nullptr ? s->now : now_;
}

ParallelDispatch::ShardScope::ShardScope(ParallelDispatch& d,
                                         std::uint32_t shard)
    : savedShard_(g_tls.shard),
      savedLog_(g_tls.portLog),
      savedIndex_(g_tls.shardIndex),
      savedInWindow_(g_tls.inWindow) {
  Shard& s = *d.shards_[shard];
  g_tls.shard = &s;
  g_tls.portLog = nullptr;
  g_tls.shardIndex = static_cast<int>(shard);
  g_tls.inWindow = false;
}

ParallelDispatch::ShardScope::~ShardScope() {
  g_tls.shard = savedShard_;
  g_tls.portLog = savedLog_;
  g_tls.shardIndex = savedIndex_;
  g_tls.inWindow = savedInWindow_;
}

// --- Scheduling ------------------------------------------------------------

void ParallelDispatch::scheduleFromEngine(Cycle when, Event&& ev) {
  TlsCtx& t = g_tls;
  if (t.shard == nullptr) {
    scheduleGlobal(when, std::move(ev));
    return;
  }
  auto& s = *static_cast<Shard*>(t.shard);
  if (!t.inWindow) {
    // Live execution (spawn start-up or a serial cycle): the schedule call
    // happens in exact sequential program order, so it consumes a real
    // counter value, just like the sequential engine would.
    COLIBRI_CHECK_MSG(when >= s.now, "scheduleAt into the past: when="
                                         << when << " now=" << s.now);
    s.queue.scheduleWithSeq(when, nextSeq_++, std::move(ev));
    return;
  }
  // Worker window: park the event under a provisional key. kProvisional
  // guarantees it sorts after every already-sequenced event of the same
  // cycle, which is exactly where a freshly scheduled event belongs.
  COLIBRI_CHECK_MSG(when >= s.now, "scheduleAt into the past: when="
                                       << when << " now=" << s.now);
  const auto idx = static_cast<std::uint32_t>(s.children.size());
  Child c;
  c.kind = Child::kLocal;
  c.ref = s.queue.scheduleWithSeq(when, kProvisional | idx, std::move(ev));
  s.children.push_back(c);
}

void ParallelDispatch::scheduleToShard(std::uint32_t dstShard, Cycle when,
                                       Event&& ev) {
  TlsCtx& t = g_tls;
  if (t.inWindow) {
    auto& s = *static_cast<Shard*>(t.shard);
    if (dstShard == s.index) {
      scheduleFromEngine(when, std::move(ev));
      return;
    }
    // Cross-shard: the destination queue belongs to another worker, so the
    // delivery is deferred; the merge inserts it with its real seq.
    const auto sendIdx = static_cast<std::uint32_t>(s.sends.size());
    ShardSend snd;
    snd.kind = ShardSend::kDirect;
    snd.dstShard = dstShard;
    snd.when = s.now;
    snd.arrive = when;
    snd.ev = std::move(ev);
    s.sends.push_back(std::move(snd));
    Child c;
    c.kind = Child::kSend;
    c.sendIdx = sendIdx;
    s.children.push_back(c);
    return;
  }
  // Live: schedule straight into the destination shard's queue.
  COLIBRI_CHECK_MSG(when >= now_, "scheduleAt into the past: when="
                                      << when << " now=" << now_);
  shards_[dstShard]->queue.scheduleWithSeq(when, nextSeq_++, std::move(ev));
}

void ParallelDispatch::deferRequest(std::uint32_t dstShard, CoreId from,
                                    BankId bank, Event&& ev) {
  TlsCtx& t = g_tls;
  COLIBRI_CHECK_MSG(t.inWindow, "deferRequest outside a worker window");
  auto& s = *static_cast<Shard*>(t.shard);
  const auto sendIdx = static_cast<std::uint32_t>(s.sends.size());
  ShardSend snd;
  snd.kind = ShardSend::kRequest;
  snd.dstShard = dstShard;
  snd.when = s.now;
  snd.from = from;
  snd.bank = bank;
  snd.ev = std::move(ev);
  s.sends.push_back(std::move(snd));
  Child c;
  c.kind = Child::kSend;
  c.sendIdx = sendIdx;
  s.children.push_back(c);
}

void ParallelDispatch::scheduleGlobal(Cycle when, Event&& ev) {
  COLIBRI_CHECK_MSG(!g_tls.inWindow,
                    "global schedule from inside a worker window");
  COLIBRI_CHECK_MSG(when >= now_, "scheduleAt into the past: when="
                                      << when << " now=" << now_);
  global_.scheduleWithSeq(when, nextSeq_++, std::move(ev));
}

// --- Driver ----------------------------------------------------------------

std::size_t ParallelDispatch::runUntil(Cycle horizon) {
  const std::uint64_t before = executedEvents();
  for (;;) {
    const Cycle globalMin = global_.minWhen();
    Cycle m = globalMin;
    for (const auto& sp : shards_) {
      m = std::min(m, sp->queue.minWhen());
    }
    if (m == kCycleNever || m > horizon) {
      break;
    }
    if (auto* probe = engine_.progressProbe()) {
      // Fire probe boundaries at or below the next due cycle before any of
      // its events run — the same boundary semantics as the sequential
      // engine, and at a serial point (no worker is executing here), so
      // the probe observes exactly the pre-cycle state.
      for (Cycle p = probe->nextProbeAt(); p != kCycleNever && p <= m;
           p = probe->nextProbeAt()) {
        probe->onProbe(p);
      }
    }
    if (globalMin == m) {
      // A global event (stats snapshot, stop flag, driver callback) is due
      // this cycle: it may observe or mutate cross-shard state, so the
      // whole cycle runs serially in exact seq order — which requires
      // every pending event to carry its real counter seq first.
      flushSweep();
      runSerialCycle(m);
      continue;
    }
    Cycle end = m + lookahead_;
    end = std::min(end, globalMin);  // never run past a global event
    if (horizon != kCycleNever) {
      end = std::min(end, horizon + 1);
    }
    if (const auto* probe = engine_.progressProbe()) {
      // Never run a window across a probe boundary: the next boundary is
      // > m (everything <= m fired above), so the window stays non-empty
      // and the probe fires at a point where, as in the sequential engine,
      // all events before it have executed.
      const Cycle p = probe->nextProbeAt();
      if (p != kCycleNever && p < end) {
        end = p;
      }
    }
    runWindow(m, end);
  }
  flushSweep();
  if (now_ < lastWhen_) {
    now_ = lastWhen_;
  }
  if (horizon != kCycleNever && now_ < horizon) {
    now_ = horizon;
  }
  return static_cast<std::size_t>(executedEvents() - before);
}

std::size_t ParallelDispatch::runSerialCycle(Cycle t) {
  now_ = t;
  std::size_t ran = 0;
  for (;;) {
    // Pick the queue holding the lowest-seq event of cycle t. Every
    // pending event carries a real counter seq at a serial point (the
    // preceding sweep re-keyed all provisionals), so the comparison is the
    // sequential tie-break.
    EventQueue* best = nullptr;
    Shard* bestShard = nullptr;
    std::uint64_t bestSeq = 0;
    Cycle w = 0;
    std::uint64_t sq = 0;
    if (global_.peekEarliest(w, sq) && w == t) {
      best = &global_;
      bestSeq = sq;
    }
    for (const auto& sp : shards_) {
      if (sp->queue.peekEarliest(w, sq) && w == t &&
          (best == nullptr || sq < bestSeq)) {
        best = &sp->queue;
        bestShard = sp.get();
        bestSeq = sq;
      }
    }
    if (best == nullptr) {
      break;
    }
    const TlsCtx saved = g_tls;
    g_tls.shard = bestShard;
    g_tls.portLog = nullptr;
    g_tls.shardIndex = bestShard != nullptr ? static_cast<int>(bestShard->index)
                                            : -1;
    g_tls.inWindow = false;
    struct Restore {
      const TlsCtx& saved;
      ~Restore() { g_tls = saved; }
    } restore{saved};
    best->runEarliestIfAtMost(
        t, [this, bestShard](Cycle when, std::uint64_t seq, Event& ev) {
          if (bestShard != nullptr) {
            bestShard->now = when;
          }
          if (trace_ != nullptr) {
            trace_->push_back({when, seq});
          }
          ev();
        });
    ++ran;
    ++serialExecuted_;
    lastWhen_ = t;
  }
  return ran;
}

std::size_t ParallelDispatch::runWindow(Cycle start, Cycle end) {
  const std::uint64_t before = executedEvents();
  now_ = start;
  windowEnd_ = end;
  ++counters_.windows;
  if (workerCount_ > 1) {
    ensureWorkers();
    done_.store(0, std::memory_order_relaxed);
    // The release publishes every queue mutation from the last sweep /
    // serial phase to the workers.
    epoch_.fetch_add(1, std::memory_order_release);
    runWorkerShards(0);
    std::uint32_t spins = 0;
    while (done_.load(std::memory_order_acquire) != workerCount_ - 1) {
      if (++spins > 4096) {
        std::this_thread::yield();
      }
    }
  } else {
    runWorkerShards(0);
  }
  rethrowShardError();
  // Adaptive barrier elision: a quiet window (no shard deferred a send)
  // has nothing to resolve at the merge, so leave its exec logs in place
  // and let a later sweep commit the whole batch. A dirty window sweeps at
  // its own boundary, which keeps the invariant that every send in a batch
  // was recorded during the batch's final window (so the arrive >= end
  // check in commitExec stays valid). The backlog cap bounds the retained
  // log memory, nothing else.
  bool dirty = false;
  std::size_t backlog = 0;
  for (const auto& sp : shards_) {
    dirty = dirty || !sp->sends.empty();
    backlog += sp->execLog.size();
  }
  if (!dirty && backlog <= kMergeBacklogCap) {
    ++counters_.barriersElided;
    sweepPending_ = sweepPending_ || backlog > 0;
    return static_cast<std::size_t>(executedEvents() - before);
  }
  ++counters_.barriersTaken;
  sweepPending_ = false;
  sweep(end);
  return static_cast<std::size_t>(executedEvents() - before);
}

void ParallelDispatch::flushSweep() {
  if (!sweepPending_) {
    return;
  }
  // Only quiet windows elide, so the batch holds no deferred sends — this
  // merge just commits exec logs: trace records, port-shadow replay, and
  // real seqs for provisionally keyed children.
  sweepPending_ = false;
  sweep(windowEnd_);
}

void ParallelDispatch::ensureWorkers() {
  if (workersStarted_) {
    return;
  }
  workersStarted_ = true;
  threads_.reserve(workerCount_ - 1);
  for (std::uint32_t w = 1; w < workerCount_; ++w) {
    threads_.emplace_back([this, w] { workerLoop(w); });
  }
}

void ParallelDispatch::workerLoop(std::uint32_t w) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t e = 0;
    std::uint32_t spins = 0;
    while ((e = epoch_.load(std::memory_order_acquire)) == seen) {
      if (++spins > 4096) {
        std::this_thread::yield();
      }
    }
    seen = e;
    if (stop_.load(std::memory_order_acquire)) {
      return;
    }
    runWorkerShards(w);
    done_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ParallelDispatch::runWorkerShards(std::uint32_t w) {
  // Static shard→worker pinning: shard state stays on one thread's caches
  // across windows, and the assignment is trivially deterministic.
  for (std::size_t i = w; i < shards_.size(); i += workerCount_) {
    Shard& s = *shards_[i];
    if (s.queue.minWhen() >= windowEnd_) {
      // Nothing due before the window's end (minWhen is kCycleNever when
      // the queue is empty): skip the context setup and batch scan. The
      // queue state at a boundary is the same for every worker count, so
      // the skip — and its counter — are deterministic.
      ++s.idleSkips;
      continue;
    }
    try {
      runShardWindow(s, windowEnd_);
    } catch (...) {
      s.error = std::current_exception();
    }
  }
}

void ParallelDispatch::runShardWindow(Shard& s, Cycle end) {
  const TlsCtx saved = g_tls;
  g_tls.shard = &s;
  g_tls.portLog = &s.portLog;
  g_tls.shardIndex = static_cast<int>(s.index);
  g_tls.inWindow = true;
  struct Restore {
    const TlsCtx& saved;
    ~Restore() { g_tls = saved; }
  } restore{saved};
  auto fn = [&s](Cycle when, std::uint64_t seq, Event& ev) {
    s.now = when;
    ExecRecord e;
    e.when = when;
    e.key = seq;
    e.childBegin = static_cast<std::uint32_t>(s.children.size());
    e.portBegin = static_cast<std::uint32_t>(s.portLog.size());
    ev();
    ++s.executed;
    e.childEnd = static_cast<std::uint32_t>(s.children.size());
    e.portEnd = static_cast<std::uint32_t>(s.portLog.size());
    s.execLog.push_back(e);
  };
  while (s.queue.runBatchIfAtMost(end - 1, fn) != 0) {
  }
}

void ParallelDispatch::rethrowShardError() {
  for (const auto& sp : shards_) {
    if (sp->error) {
      std::exception_ptr e = sp->error;
      sp->error = nullptr;
      std::rethrow_exception(e);
    }
  }
}

// --- Barrier merge ---------------------------------------------------------

std::uint64_t ParallelDispatch::resolvedKey(const Shard& s,
                                            const ExecRecord& e) const {
  if (e.key < kProvisional) {
    return e.key;
  }
  // The parent event that scheduled this one sits earlier in the same
  // shard's exec log, so by the time this record reaches the stream head
  // its real seq has been assigned.
  return s.children[e.key & ~kProvisional].resolvedSeq;
}

void ParallelDispatch::sweep(Cycle end) {
  // P-way merge of the per-shard exec logs by resolved (when, seq): the
  // commit order IS the order the sequential engine would have dispatched
  // these events in. The logs may span several windows (barrier elision);
  // per shard they are still in execution — hence (when, key) — order, so
  // the merge is oblivious to where the window boundaries fell. Shard
  // counts are small (<= groups), so a linear scan over the stream heads
  // beats a heap.
  for (const auto& sp : shards_) {
    sp->mergePos = 0;
  }
  for (;;) {
    Shard* best = nullptr;
    Cycle bw = 0;
    std::uint64_t bk = 0;
    for (const auto& sp : shards_) {
      Shard& s = *sp;
      if (s.mergePos >= s.execLog.size()) {
        continue;
      }
      const ExecRecord& e = s.execLog[s.mergePos];
      const std::uint64_t k = resolvedKey(s, e);
      if (best == nullptr || e.when < bw || (e.when == bw && k < bk)) {
        best = &s;
        bw = e.when;
        bk = k;
      }
    }
    if (best == nullptr) {
      break;
    }
    commitExec(*best, best->execLog[best->mergePos]);
    ++best->mergePos;
  }
  for (const auto& sp : shards_) {
    counters_.deferredIntents += sp->sends.size();
    sp->execLog.clear();
    sp->children.clear();
    sp->sends.clear();
    sp->portLog.clear();
  }
  (void)end;
}

void ParallelDispatch::commitExec(Shard& s, const ExecRecord& e) {
  if (trace_ != nullptr) {
    trace_->push_back({e.when, resolvedKey(s, e)});
  }
  lastWhen_ = e.when;  // commits arrive in when order
  // Replay this event's inline bank-port acquires onto the shadow state:
  // the post-state of every committed acquire is the pre-state a deferred
  // send committed next would have observed sequentially.
  for (std::uint32_t i = e.portBegin; i < e.portEnd; ++i) {
    hooks_.commitPortAcquire(s.portLog[i].bank, s.portLog[i].at);
  }
  // Assign real seqs to this event's schedule calls, in call order — each
  // consumes exactly one counter value, so the counter stream matches the
  // sequential engine's bit for bit.
  for (std::uint32_t i = e.childBegin; i < e.childEnd; ++i) {
    Child& c = s.children[i];
    const std::uint64_t seq = nextSeq_++;
    if (c.kind == Child::kLocal) {
      c.resolvedSeq = seq;
      // False (stale handle) iff the child already ran inside the window;
      // its exec record still resolves through resolvedSeq.
      s.queue.rekey(c.ref, seq);
      continue;
    }
    ShardSend& snd = s.sends[c.sendIdx];
    Cycle arrive;
    if (snd.kind == ShardSend::kRequest) {
      arrive = hooks_.resolveRequest(snd.from, snd.bank, snd.when);
    } else {
      arrive = snd.arrive;
    }
    COLIBRI_CHECK_MSG(arrive >= windowEnd_,
                      "deferred send arrives inside its own window: arrive="
                          << arrive << " windowEnd=" << windowEnd_);
    shards_[snd.dstShard]->queue.insertSorted(arrive, seq, std::move(snd.ev));
  }
}

// --- Aggregation / teardown ------------------------------------------------

std::size_t ParallelDispatch::pendingEvents() const {
  std::size_t n = global_.size();
  for (const auto& sp : shards_) {
    n += sp->queue.size();
  }
  return n;
}

std::uint64_t ParallelDispatch::executedEvents() const {
  std::uint64_t n = serialExecuted_;
  for (const auto& sp : shards_) {
    n += sp->executed;
  }
  return n;
}

EngineCounters ParallelDispatch::counters() const {
  EngineCounters c = counters_;
  for (const auto& sp : shards_) {
    c.idleShardSkips += sp->idleSkips;
  }
  return c;
}

void ParallelDispatch::clearAll() noexcept {
  global_.clear();
  sweepPending_ = false;
  for (const auto& sp : shards_) {
    sp->queue.clear();
    sp->execLog.clear();
    sp->children.clear();
    sp->sends.clear();
    sp->portLog.clear();
  }
}

// --- Engine glue (lives here so the tls context stays file-local) ----------

Cycle Engine::parallelNow() const { return parallel_->nowOnThisThread(); }

void Engine::parallelSchedule(Cycle when, Event&& ev) {
  parallel_->scheduleFromEngine(when, std::move(ev));
}

}  // namespace colibri::sim
