// Two-level calendar queue: the engine's pending-event store.
//
// The near future — a window of kBucketCount consecutive cycles starting
// at the last dispatched cycle — is a ring of per-cycle FIFO buckets
// (intrusive singly-linked lists of pooled nodes), with a bitmap of
// non-empty buckets so finding the next cycle is a handful of word scans.
// Network and bank delays are small config constants, so virtually every
// event lands in this window: schedule and dispatch are O(1) and touch no
// allocator (nodes come from a free-list refilled in chunks).
//
// Events beyond the window go to an overflow binary heap ordered by
// (when, seq). Overflow entries are never migrated; dispatch compares the
// earliest bucket head against the heap top — ties on `when` are broken by
// the global sequence number, so the execution order is exactly the
// (when, seq) total order a single binary heap would produce. That makes
// the queue swap bit-transparent to every simulation.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/check.hpp"
#include "sim/event.hpp"
#include "sim/types.hpp"

namespace colibri::sim {

class EventQueue {
 public:
  /// Window length in cycles; power of two (index = when & (N-1)).
  static constexpr std::size_t kBucketCount = 1024;
  /// Pool growth granularity.
  static constexpr std::size_t kNodesPerChunk = 256;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  ~EventQueue() { clear(); }

  /// Stable handle to a scheduled (still pending) event. The generation
  /// detects node reuse after dispatch, so a stale handle is recognized
  /// instead of touching an unrelated event. Used by the parallel engine
  /// to re-key provisionally sequenced events at window barriers.
  struct NodeRef {
    void* node = nullptr;
    std::uint32_t gen = 0;
  };

  /// Append an event; FIFO among events with equal `when`. `when` must be
  /// >= the cycle of the most recently popped event. The callable is
  /// constructed directly inside a pooled node — no intermediate moves.
  template <typename F>
  void schedule(Cycle when, F&& f);

  /// Like schedule(), but with a caller-supplied sequence number instead
  /// of the internal counter. `seq` must be >= every seq already stored
  /// for this `when` (the caller owns the total order). Returns a handle
  /// for later re-keying. Parallel-engine shards schedule through this.
  template <typename F>
  NodeRef scheduleWithSeq(Cycle when, std::uint64_t seq, F&& f);

  /// Insert an event with an arbitrary (when, seq) key, placing it in seq
  /// order among already-pending events of the same cycle (walks the
  /// cycle's FIFO chain). Used by the barrier merge to commit cross-shard
  /// arrivals whose sequence numbers interleave with pending local events.
  void insertSorted(Cycle when, std::uint64_t seq, InlineEvent ev);

  /// Rewrite the seq of a still-pending event; returns false (and does
  /// nothing) if the handle is stale. The new seq must preserve the
  /// event's relative order among its cycle's pending events.
  bool rekey(NodeRef ref, std::uint64_t seq) noexcept;

  /// Remove the earliest event (by (when, seq)) if its cycle is <= horizon;
  /// fills `when`/`ev` and returns true, else returns false.
  bool popIfAtMost(Cycle horizon, Cycle& when, InlineEvent& ev);

  /// Like popIfAtMost, but runs the event in place inside its (already
  /// unlinked) node via `fn(when, seq, ev)` — the dispatch path pays no
  /// event move. The node returns to the free-list even if the callable
  /// throws.
  template <typename F>
  bool runEarliestIfAtMost(Cycle horizon, F&& fn);

  /// Batched dispatch: run every event of the earliest pending cycle (if
  /// <= horizon) via `fn(when, seq, ev)`, touching the occupancy bitmap
  /// and the bucket-minimum probe once per cycle instead of once per
  /// event. Events the callables schedule for the same cycle join the
  /// drain (FIFO). Returns how many events ran (0 if none were due).
  /// Execution order is exactly the (when, seq) order of the one-event
  /// path — when the cycle ties with an overflow entry, the batch falls
  /// back to one-event dispatch to keep the seq interleave.
  template <typename F>
  std::size_t runBatchIfAtMost(Cycle horizon, F&& fn);

  /// Cycle of the earliest pending event; kCycleNever when empty.
  [[nodiscard]] Cycle minWhen() const;

  /// Key of the earliest pending event without removing it. Returns false
  /// when empty. The parallel engine's serial phase uses this to pick the
  /// lowest-seq head among several queues.
  bool peekEarliest(Cycle& when, std::uint64_t& seq) const;

  /// Drop every pending event without running it: destroys the callables
  /// and splices the nodes back onto the free-list — no heap traffic, no
  /// per-item heap rebalancing.
  void clear() noexcept;

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  // --- Introspection (tests / stats) ------------------------------------
  /// Total nodes ever allocated from the pool. A steady-state workload
  /// stops moving this counter once the free-list covers its live set.
  [[nodiscard]] std::size_t allocatedNodes() const noexcept {
    return chunks_.size() * kNodesPerChunk;
  }
  /// Events currently parked in the far-future overflow heap.
  [[nodiscard]] std::size_t overflowSize() const noexcept {
    return overflow_.size();
  }

 private:
  struct Node {
    Cycle when = 0;
    std::uint64_t seq = 0;
    Node* next = nullptr;
    std::uint32_t gen = 0;  ///< bumped on free; validates NodeRef handles
    InlineEvent ev;
  };
  struct Bucket {
    Node* head = nullptr;
    Node* tail = nullptr;
  };

  static constexpr std::size_t kBitmapWords = kBucketCount / 64;

  /// Later-first comparison, i.e. `overflow_` is a max-heap of "later"
  /// so its front is the earliest (when, seq).
  static bool later(const Node* a, const Node* b) noexcept {
    return a->when != b->when ? a->when > b->when : a->seq > b->seq;
  }

  Node* allocNode() {
    if (freeList_ == nullptr) {
      refillPool();
    }
    Node* n = freeList_;
    freeList_ = n->next;
    return n;
  }
  void freeNode(Node* n) noexcept {
    ++n->gen;  // invalidate outstanding NodeRef handles
    n->next = freeList_;
    freeList_ = n;
  }
  void refillPool();

  /// Link an already-filled node into the bucket window or overflow heap.
  void linkNode(Node* n);

  /// Earliest non-empty bucket cycle; requires bucketCount_ > 0.
  [[nodiscard]] Cycle bucketMinWhen() const;

  /// Unlink and return the earliest (when, seq) node if its cycle is
  /// <= horizon, else nullptr. Advances the window cursor.
  Node* takeEarliest(Cycle horizon);

  std::array<Bucket, kBucketCount> buckets_{};
  std::array<std::uint64_t, kBitmapWords> occupied_{};
  std::vector<Node*> overflow_;
  std::vector<std::unique_ptr<Node[]>> chunks_;
  Node* freeList_ = nullptr;
  Cycle cursor_ = 0;  ///< lower bound of the bucket window
  /// Memoized earliest non-empty bucket cycle. Kept warm by schedule()
  /// and invalidated only when the minimum bucket drains, so the common
  /// schedule/dispatch rhythm skips the bitmap scan entirely.
  mutable Cycle bucketMinCache_ = 0;
  mutable bool bucketMinValid_ = false;
  std::uint64_t nextSeq_ = 0;
  std::size_t size_ = 0;
  std::size_t bucketCount_ = 0;  ///< events in buckets (rest in overflow_)
};

// --- Hot-path definitions (kept in the header so the per-event schedule
// and dispatch cost is a handful of inlined loads/stores) -----------------

inline void EventQueue::linkNode(Node* n) {
  const Cycle when = n->when;
  if (when - cursor_ < kBucketCount) {
    const std::size_t idx = when & (kBucketCount - 1);
    Bucket& b = buckets_[idx];
    if (b.head == nullptr) {
      b.head = b.tail = n;
      occupied_[idx / 64] |= std::uint64_t{1} << (idx % 64);
    } else {
      b.tail->next = n;
      b.tail = n;
    }
    if (bucketMinValid_) {
      if (when < bucketMinCache_) {
        bucketMinCache_ = when;
      }
    } else if (bucketCount_ == 0) {
      // No other bucket can be earlier; an invalid cache with buckets
      // still occupied must stay invalid until the next bitmap scan.
      bucketMinCache_ = when;
      bucketMinValid_ = true;
    }
    ++bucketCount_;
  } else {
    overflow_.push_back(n);
    std::push_heap(overflow_.begin(), overflow_.end(), &later);
  }
  ++size_;
}

template <typename F>
inline void EventQueue::schedule(Cycle when, F&& f) {
  COLIBRI_CHECK_MSG(when >= cursor_, "schedule before the dispatch cursor: when="
                                         << when << " cursor=" << cursor_);
  Node* n = allocNode();
  n->when = when;
  n->seq = nextSeq_++;
  n->next = nullptr;
  if constexpr (std::is_same_v<std::remove_cvref_t<F>, InlineEvent>) {
    n->ev = std::forward<F>(f);
  } else {
    n->ev.emplace(std::forward<F>(f));
  }
  linkNode(n);
}

template <typename F>
inline EventQueue::NodeRef EventQueue::scheduleWithSeq(Cycle when,
                                                       std::uint64_t seq,
                                                       F&& f) {
  COLIBRI_CHECK_MSG(when >= cursor_, "schedule before the dispatch cursor: when="
                                         << when << " cursor=" << cursor_);
  Node* n = allocNode();
  n->when = when;
  n->seq = seq;
  n->next = nullptr;
  if constexpr (std::is_same_v<std::remove_cvref_t<F>, InlineEvent>) {
    n->ev = std::forward<F>(f);
  } else {
    n->ev.emplace(std::forward<F>(f));
  }
  linkNode(n);
  return NodeRef{n, n->gen};
}

inline bool EventQueue::rekey(NodeRef ref, std::uint64_t seq) noexcept {
  auto* n = static_cast<Node*>(ref.node);
  if (n == nullptr || n->gen != ref.gen) {
    return false;  // already dispatched (node freed or reused)
  }
  n->seq = seq;
  return true;
}

inline Cycle EventQueue::bucketMinWhen() const {
  if (bucketMinValid_) {
    return bucketMinCache_;
  }
  // Scan the occupancy bitmap starting at the cursor's slot, wrapping once.
  // Every bucket event lies in [cursor_, cursor_ + kBucketCount), so the
  // wrap distance from the cursor slot recovers the absolute cycle.
  const std::size_t start = cursor_ & (kBucketCount - 1);
  std::size_t w = start / 64;
  std::uint64_t word = occupied_[w] & (~std::uint64_t{0} << (start % 64));
  for (std::size_t i = 0; i <= kBitmapWords; ++i) {
    if (word != 0) {
      const std::size_t bit =
          w * 64 + static_cast<std::size_t>(std::countr_zero(word));
      const std::size_t dist = (bit + kBucketCount - start) & (kBucketCount - 1);
      bucketMinCache_ = cursor_ + dist;
      bucketMinValid_ = true;
      return bucketMinCache_;
    }
    w = (w + 1) % kBitmapWords;
    word = occupied_[w];
  }
  COLIBRI_CHECK_MSG(false, "occupancy bitmap empty with bucketCount_ > 0");
  return kCycleNever;
}

inline Cycle EventQueue::minWhen() const {
  Cycle m = kCycleNever;
  if (bucketCount_ > 0) {
    m = bucketMinWhen();
  }
  if (!overflow_.empty() && overflow_.front()->when < m) {
    m = overflow_.front()->when;
  }
  return m;
}

inline EventQueue::Node* EventQueue::takeEarliest(Cycle horizon) {
  if (size_ == 0) {
    return nullptr;
  }
  const Cycle bucketWhen = bucketCount_ > 0 ? bucketMinWhen() : kCycleNever;
  const Node* top = overflow_.empty() ? nullptr : overflow_.front();

  // A bucket head and the heap top can share a cycle (the overflow entry
  // was scheduled before the window reached it); the lower seq wins.
  bool fromOverflow;
  if (bucketCount_ == 0) {
    fromOverflow = true;
  } else if (top == nullptr || top->when > bucketWhen) {
    fromOverflow = false;
  } else if (top->when < bucketWhen) {
    fromOverflow = true;
  } else {
    const std::size_t idx = bucketWhen & (kBucketCount - 1);
    fromOverflow = top->seq < buckets_[idx].head->seq;
  }

  Node* n;
  if (fromOverflow) {
    if (top->when > horizon) {
      return nullptr;
    }
    std::pop_heap(overflow_.begin(), overflow_.end(), &later);
    n = overflow_.back();
    overflow_.pop_back();
  } else {
    if (bucketWhen > horizon) {
      return nullptr;
    }
    const std::size_t idx = bucketWhen & (kBucketCount - 1);
    Bucket& b = buckets_[idx];
    n = b.head;
    b.head = n->next;
    if (b.head == nullptr) {
      b.tail = nullptr;
      occupied_[idx / 64] &= ~(std::uint64_t{1} << (idx % 64));
      bucketMinValid_ = false;  // the minimum bucket just drained
    }
    --bucketCount_;
  }

  cursor_ = n->when;  // everything earlier has been dispatched
  --size_;
  return n;
}

inline bool EventQueue::popIfAtMost(Cycle horizon, Cycle& when,
                                    InlineEvent& ev) {
  Node* n = takeEarliest(horizon);
  if (n == nullptr) {
    return false;
  }
  when = n->when;
  ev = std::move(n->ev);
  freeNode(n);
  return true;
}

template <typename F>
inline bool EventQueue::runEarliestIfAtMost(Cycle horizon, F&& fn) {
  Node* n = takeEarliest(horizon);
  if (n == nullptr) {
    return false;
  }
  // The node is unlinked, so the callable may schedule freely (the pool
  // cannot hand this node out again before the guard frees it).
  struct Guard {
    EventQueue* q;
    Node* n;
    ~Guard() {
      n->ev.reset();
      q->freeNode(n);
    }
  } guard{this, n};
  fn(n->when, n->seq, n->ev);
  return true;
}

template <typename F>
inline std::size_t EventQueue::runBatchIfAtMost(Cycle horizon, F&& fn) {
  if (size_ == 0) {
    return 0;
  }
  const Cycle bucketWhen = bucketCount_ > 0 ? bucketMinWhen() : kCycleNever;
  const Node* top = overflow_.empty() ? nullptr : overflow_.front();
  const Cycle overflowWhen = top != nullptr ? top->when : kCycleNever;
  const Cycle t = overflowWhen < bucketWhen ? overflowWhen : bucketWhen;
  if (t > horizon) {
    return 0;
  }
  if (overflowWhen <= bucketWhen) {
    // The cycle starts in (or ties with) the overflow heap: dispatch one
    // event through the exact-interleave path. Rare — only when the
    // window has just reached a far-future entry's cycle.
    return runEarliestIfAtMost(t, std::forward<F>(fn)) ? 1 : 0;
  }
  // Whole-bucket drain. Events scheduled for cycle `t` during the drain
  // append to this bucket's tail and join the loop (FIFO); overflow
  // entries pushed during the drain lie >= t + kBucketCount, so no
  // interleave check is needed per event.
  const std::size_t idx = t & (kBucketCount - 1);
  Bucket& b = buckets_[idx];
  std::size_t ran = 0;
  cursor_ = t;
  while (Node* n = b.head) {
    b.head = n->next;
    if (b.head == nullptr) {
      b.tail = nullptr;
    }
    --bucketCount_;
    --size_;
    struct Guard {
      EventQueue* q;
      Node* n;
      ~Guard() {
        n->ev.reset();
        q->freeNode(n);
      }
    } guard{this, n};
    fn(n->when, n->seq, n->ev);
    ++ran;
  }
  occupied_[idx / 64] &= ~(std::uint64_t{1} << (idx % 64));
  bucketMinValid_ = false;  // this cycle's bucket just drained
  return ran;
}

}  // namespace colibri::sim
