// Invariant checking for the simulator.
//
// COLIBRI_CHECK is always on (also in release builds): the benchmarks are
// only meaningful if the protocol invariants hold, and the cost of the
// checks is negligible next to event scheduling.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace colibri::sim {

/// Thrown when a modeled hardware invariant is violated. Tests assert on
/// this; benches treat it as fatal.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void checkFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw InvariantViolation(os.str());
}
}  // namespace detail

}  // namespace colibri::sim

#define COLIBRI_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::colibri::sim::detail::checkFailed(#expr, __FILE__, __LINE__, ""); \
    }                                                                    \
  } while (false)

#define COLIBRI_CHECK_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream os_;                                            \
      os_ << msg;                                                        \
      ::colibri::sim::detail::checkFailed(#expr, __FILE__, __LINE__,     \
                                          os_.str());                    \
    }                                                                    \
  } while (false)
