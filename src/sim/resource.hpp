// Throughput-limited shared resources.
//
// Interconnect links and memory-bank ports serve a bounded number of
// transfers per cycle. Instead of simulating per-cycle arbitration, a
// ThroughputResource hands out service *slots*: a request arriving at time
// t is granted the earliest slot >= t that respects the bandwidth limit,
// in arrival order (FIFO). This models queueing delay under contention —
// the mechanism behind the paper's polling-interference results (Fig. 5) —
// at event-level cost.
#pragma once

#include <cstdint>

#include "sim/check.hpp"
#include "sim/types.hpp"

namespace colibri::sim {

class ThroughputResource {
 public:
  /// `slotsPerCycle` transfers can start in any one cycle (>= 1).
  explicit ThroughputResource(std::uint32_t slotsPerCycle = 1)
      : slotsPerCycle_(slotsPerCycle) {
    COLIBRI_CHECK(slotsPerCycle >= 1);
  }

  /// The grant-state transition behind acquire(), exposed statically so the
  /// parallel engine can replay acquires on a shadow copy of the state (its
  /// barrier merge probes bank-port backlogs at past interleave points).
  /// Mutates (cursor, used) exactly like one scalar acquire; returns the
  /// granted cycle. No stats.
  static Cycle applyAcquire(Cycle& cursor, std::uint32_t& used,
                            std::uint32_t slotsPerCycle, Cycle at) {
    if (at > cursor) {
      cursor = at;
      used = 0;
    }
    if (used >= slotsPerCycle) {
      ++cursor;
      used = 0;
    }
    ++used;
    return cursor;
  }

  /// Earliest cycle >= `at` a slot would be granted given explicit state.
  [[nodiscard]] static Cycle peekFrom(Cycle cursor, std::uint32_t used,
                                      std::uint32_t slotsPerCycle, Cycle at) {
    if (at > cursor) {
      return at;
    }
    return used >= slotsPerCycle ? cursor + 1 : cursor;
  }

  /// Claim the next free slot at or after `at`; returns the cycle in which
  /// service starts. Requests must be issued in non-decreasing time order
  /// per caller, but interleaved callers are fine (global FIFO).
  Cycle acquire(Cycle at) {
    const Cycle granted = applyAcquire(cursor_, used_, slotsPerCycle_, at);
    ++totalGrants_;
    if (granted > at) {
      totalQueueingDelay_ += granted - at;
    }
    return granted;
  }

  /// Claim `n` consecutive slots, the first at or after `at`, each
  /// subsequent one at or after its predecessor; returns the cycle of the
  /// last slot. Exactly equivalent (state, stats and return value) to
  /// `g = acquire(at); repeat n-1 times: g = acquire(g);` — the pattern
  /// backpressured messages use to hold a stage for several slots — but in
  /// closed form instead of a loop.
  Cycle acquire(Cycle at, std::uint32_t n) {
    COLIBRI_CHECK(n >= 1);
    Cycle granted = acquire(at);
    const std::uint32_t rest = n - 1;
    if (rest == 0) {
      return granted;
    }
    totalGrants_ += rest;
    const std::uint32_t freeNow = slotsPerCycle_ - used_;
    if (rest <= freeNow) {
      used_ += rest;
      return cursor_;
    }
    // Fill the current cycle, then spill over whole cycles. Each spilled
    // cycle corresponds to one scalar acquire arriving one cycle early,
    // i.e. one unit of queueing delay.
    const std::uint32_t spill = rest - freeNow;
    const Cycle extraCycles = (spill + slotsPerCycle_ - 1) / slotsPerCycle_;
    cursor_ += extraCycles;
    used_ = spill - static_cast<std::uint32_t>(extraCycles - 1) * slotsPerCycle_;
    totalQueueingDelay_ += extraCycles;
    return cursor_;
  }

  /// Earliest cycle >= `at` at which a slot *would* be granted (no claim).
  [[nodiscard]] Cycle peek(Cycle at) const {
    return peekFrom(cursor_, used_, slotsPerCycle_, at);
  }

  // Raw grant state, so the parallel engine can snapshot it for replay.
  [[nodiscard]] Cycle cursor() const { return cursor_; }
  [[nodiscard]] std::uint32_t slotUsed() const { return used_; }

  [[nodiscard]] std::uint32_t slotsPerCycle() const { return slotsPerCycle_; }
  [[nodiscard]] std::uint64_t totalGrants() const { return totalGrants_; }
  /// Sum over grants of (grant cycle − request cycle): a congestion metric.
  [[nodiscard]] std::uint64_t totalQueueingDelay() const {
    return totalQueueingDelay_;
  }

  void resetStats() {
    totalGrants_ = 0;
    totalQueueingDelay_ = 0;
  }

 private:
  std::uint32_t slotsPerCycle_;
  Cycle cursor_ = 0;        // cycle currently being filled
  std::uint32_t used_ = 0;  // slots consumed in `cursor_`
  std::uint64_t totalGrants_ = 0;
  std::uint64_t totalQueueingDelay_ = 0;
};

}  // namespace colibri::sim
