// Fundamental scalar types shared across the simulator.
//
// The simulator measures time in clock cycles of the modeled manycore
// fabric (the paper's MemPool runs at 600 MHz; cycle counts are what the
// evaluation reports, so cycles are the native unit here).
#pragma once

#include <cstdint>
#include <limits>

namespace colibri::sim {

/// Simulated time in clock cycles.
using Cycle = std::uint64_t;

/// Sentinel for "no deadline" / "never".
inline constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/// Identifier types. Plain integers are kept (the simulator indexes dense
/// arrays with them) but aliased for readability at interfaces.
using CoreId = std::uint32_t;
using TileId = std::uint32_t;
using GroupId = std::uint32_t;
using BankId = std::uint32_t;

/// Sentinel core id (used e.g. for "queue slot empty" in Colibri state).
inline constexpr CoreId kNoCore = std::numeric_limits<CoreId>::max();

/// Simulated memory addresses are word-granular: the modeled SPM is
/// word-interleaved across banks and all atomics in the paper operate on
/// 32-bit words, so a word index is the natural address unit.
using Addr = std::uint64_t;

/// Simulated 32-bit memory word (RISC-V RV32 data path, as in MemPool).
using Word = std::uint32_t;

/// Parallel-engine observability counters (surfaced by --stats; all zero
/// when the sequential engine ran). Invariant: every window boundary either
/// merges immediately or elides the merge, so
/// barriersTaken + barriersElided == windows.
struct EngineCounters {
  std::uint64_t windows = 0;         ///< conservative-lookahead windows run
  std::uint64_t barriersTaken = 0;   ///< windows ending in a full serial merge
  std::uint64_t barriersElided = 0;  ///< quiet windows committed shard-locally
  std::uint64_t deferredIntents = 0; ///< cross-shard sends resolved at merges
  std::uint64_t idleShardSkips = 0;  ///< shard-windows skipped (no due events)
};

}  // namespace colibri::sim
