// ThroughputResource is header-only; this TU anchors the target and keeps a
// place for future out-of-line resource models (e.g. credit-based links).
#include "sim/resource.hpp"
