// Deterministic pseudo-random number generation.
//
// xoshiro256** (Blackman & Vigna) — small, fast, and good enough for
// workload randomization (bin selection, backoff jitter). Each simulated
// core gets its own stream derived from a global seed via splitmix64 so
// results are reproducible regardless of event interleaving.
#pragma once

#include <array>
#include <cstdint>

namespace colibri::sim {

/// splitmix64: used to seed xoshiro from a single 64-bit value.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
  }

  /// Derive a per-stream generator (e.g. one per core) from a base seed.
  static Xoshiro256 forStream(std::uint64_t seed, std::uint64_t stream) {
    std::uint64_t sm = seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    return Xoshiro256(splitmix64(sm));
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound) {
    if (bound <= 1) {
      return 0;
    }
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace colibri::sim
