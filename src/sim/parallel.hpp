// Deterministic parallel dispatch: conservative-lookahead windows over
// topology shards, with a serial barrier merge that reconstructs the exact
// sequential event order.
//
// The model partitions the system into S shards (one per topology group:
// every core, bank, and their protocol state belong to exactly one shard)
// executed by up to N worker threads. Time advances in windows [T, T+L)
// where L is the minimum latency of any *deferred* message class. Within a
// window each shard drains its own event queue independently; anything that
// would touch another shard — or a resource whose acquisition order
// interleaves shards (group routers, inter-group links, tile ingress
// ports) — is recorded as a deferred intent instead of executed. At the
// window barrier a single thread merges the per-shard execution logs into
// the exact order the sequential engine would have produced and resolves
// every intent at its precise sequential position, which makes the whole
// simulation bit-identical to the single-threaded engine for any worker
// count (see docs/ARCHITECTURE.md for the full argument).
//
// Sequence numbers: events scheduled inside a window get a *provisional*
// key (high bit set, ordered by the shard's schedule-call index); the
// barrier merge then walks commits in sequential order and assigns the
// same global sequence numbers the sequential engine's counter would have
// handed out, re-keying still-pending events in place (EventQueue::rekey)
// and inserting cross-shard deliveries in seq order (insertSorted).
//
// Barrier elision: the per-window worker synchronization is unavoidable
// (a shard may only run ahead once its neighbours are known not to have
// sent it anything), but the serial merge is not — a *quiet* window, one
// in which no shard recorded a deferred send, has nothing to resolve, so
// its exec logs are left in place and the merge is batched into the next
// dirty window's sweep (or the next serial point). The batched sweep is
// exactly the per-window sweep run over several windows' logs at once:
// windows cover disjoint, increasing time ranges, child indices are
// absolute into never-mid-batch-cleared vectors, and every deferred send
// belongs to the batch's final (dirty) window, so the merge order and the
// seq-counter stream are unchanged. Idle shards — no event due before the
// window's end — are skipped entirely without touching their state.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "sim/eventqueue.hpp"
#include "sim/types.hpp"

namespace colibri::sim {

class ParallelDispatch {
 public:
  /// Provisional-sequence marker. Within a window, locally scheduled events
  /// carry kProvisional | childIndex — numerically above every real
  /// sequence number, so they sort after same-cycle events scheduled in
  /// earlier (sequentially smaller) calls, exactly like fresh counter
  /// values would.
  static constexpr std::uint64_t kProvisional = std::uint64_t{1} << 63;

  /// Shadow bank-port grant state for merge-time backlog probes. While a
  /// window runs, the first inline port acquire on a bank snapshots the
  /// pre-acquire state here; the merge then replays acquires in commit
  /// order, so a deferred send committed between two acquires reads the
  /// port exactly as the sequential engine would have at that point.
  struct PortShadow {
    Cycle cursor = 0;
    std::uint32_t used = 0;
    std::uint32_t pending = 0;  ///< logged-but-uncommitted acquires
  };
  struct PortAcquire {
    BankId bank;
    Cycle at;
  };

  /// Merge-time callbacks implemented by arch::System (which owns the
  /// network resources and the bank-port shadows).
  class Hooks {
   public:
    virtual ~Hooks() = default;
    /// Resolve a deferred core->bank request at its exact sequential
    /// position: probe the destination backlog, acquire the shared network
    /// stages, apply the FIFO clamp; returns the delivery cycle.
    virtual Cycle resolveRequest(CoreId from, BankId bank, Cycle at) = 0;
    /// Advance the bank's port shadow over one committed inline acquire.
    virtual void commitPortAcquire(BankId bank, Cycle at) = 0;
  };

  /// `numWorkers` includes the calling thread (worker 0); `lookahead` is
  /// the window length L >= 1.
  ParallelDispatch(Engine& engine, Hooks& hooks, std::uint32_t numShards,
                   std::uint32_t numWorkers, Cycle lookahead);
  ~ParallelDispatch();
  ParallelDispatch(const ParallelDispatch&) = delete;
  ParallelDispatch& operator=(const ParallelDispatch&) = delete;

  // --- Driver interface (called via Engine) ------------------------------
  std::size_t runUntil(Cycle horizon);
  void clearAll() noexcept;
  [[nodiscard]] Cycle mainNow() const { return now_; }
  [[nodiscard]] std::size_t pendingEvents() const;
  [[nodiscard]] std::uint64_t executedEvents() const;
  void setTrace(std::vector<DispatchRecord>* trace) { trace_ = trace; }
  /// Observability counters (surfaced by --stats). Window boundaries and
  /// queue states are identical for every worker count, so these are
  /// deterministic: a function of config and workload only.
  [[nodiscard]] EngineCounters counters() const;

  // --- Scheduling entry points -------------------------------------------
  /// Engine::scheduleAt lands here: routes to the current shard (worker or
  /// live serial context) or the global queue (no shard context).
  void scheduleFromEngine(Cycle when, Event&& ev);
  /// Schedule a delivery into an explicit shard — the cross-shard-capable
  /// path used by System for network deliveries with a known arrival time.
  /// In-window it defers cross-shard sends to the barrier; outside it
  /// schedules live with the global counter.
  void scheduleToShard(std::uint32_t dstShard, Cycle when, Event&& ev);
  /// Defer a core->bank request send (backlog probe + shared-stage
  /// acquisition happen at the barrier merge, in exact sequential order).
  /// Only legal from a worker window context.
  void deferRequest(std::uint32_t dstShard, CoreId from, BankId bank,
                    Event&& ev);
  /// Schedule onto the global (boundary-executed) queue; System::at uses
  /// this. Illegal from inside a worker window.
  void scheduleGlobal(Cycle when, Event&& ev);

  /// RAII shard context for live (non-window) execution on the main
  /// thread: System::spawn wraps task start-up with this so initial events
  /// land in the right shard queue with real counter seqs.
  class ShardScope {
   public:
    ShardScope(ParallelDispatch& d, std::uint32_t shard);
    ~ShardScope();
    ShardScope(const ShardScope&) = delete;
    ShardScope& operator=(const ShardScope&) = delete;

   private:
    void* savedShard_;
    std::vector<PortAcquire>* savedLog_;
    int savedIndex_;
    bool savedInWindow_;
  };

  /// Simulated time as seen by the calling thread: the current shard's
  /// clock inside a shard context, else the main (inter-window) clock.
  /// Engine::now() lands here in parallel mode.
  [[nodiscard]] Cycle nowOnThisThread() const noexcept;

  // --- Thread-local context queries (valid on any thread) ----------------
  /// Shard index if the calling thread is inside a worker window, else -1.
  /// Network stats routing keys off this.
  [[nodiscard]] static int currentWindowShard() noexcept;
  /// The current shard's port-acquire log when inside a worker window,
  /// else nullptr. Bank::receive records inline acquires through this.
  [[nodiscard]] static std::vector<PortAcquire>* currentPortLog() noexcept;
  /// True iff the calling thread is executing inside a worker window (so
  /// sends must be deferred rather than resolved live).
  [[nodiscard]] static bool inWindowContext() noexcept;

 private:
  struct Shard;
  struct ShardSend;
  struct Child;
  struct ExecRecord;

  void ensureWorkers();
  void workerLoop(std::uint32_t w);
  void runWorkerShards(std::uint32_t w);
  void runShardWindow(Shard& s, Cycle end);
  std::size_t runWindow(Cycle start, Cycle end);
  std::size_t runSerialCycle(Cycle t);
  void sweep(Cycle end);
  /// Run the batched sweep deferred by elided (quiet) windows, if any.
  /// Must be called before any code that assumes every pending event
  /// carries a real counter seq (serial cycles, live scheduling, return
  /// from runUntil).
  void flushSweep();
  void commitExec(Shard& s, const ExecRecord& e);
  [[nodiscard]] std::uint64_t resolvedKey(const Shard& s,
                                          const ExecRecord& e) const;
  void rethrowShardError();

  Engine& engine_;
  Hooks& hooks_;
  std::vector<std::unique_ptr<Shard>> shards_;
  EventQueue global_;  ///< System::at / driver events, executed serially
  std::uint64_t nextSeq_ = 0;
  Cycle lookahead_;
  Cycle now_ = 0;       ///< main-thread clock (between windows / serial)
  Cycle lastWhen_ = 0;  ///< when of the latest executed event
  Cycle windowEnd_ = 0;
  std::uint64_t serialExecuted_ = 0;
  EngineCounters counters_;   ///< idleShardSkips lives in the shards
  bool sweepPending_ = false; ///< elided windows left unmerged exec logs
  std::vector<DispatchRecord>* trace_ = nullptr;

  // Worker pool: workers wait for epoch_ to advance, run their shards up
  // to windowEnd_, then bump done_. The epoch/done pair is the barrier and
  // the memory fence publishing queue state in both directions.
  std::uint32_t workerCount_;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint32_t> done_{0};
  std::atomic<bool> stop_{false};
  bool workersStarted_ = false;
};

}  // namespace colibri::sim
