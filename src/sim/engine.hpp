// Discrete-event simulation engine.
//
// The engine owns a time-ordered queue of events (move-only callables).
// Events scheduled for the same cycle execute in scheduling order (stable
// FIFO tie-break via a sequence number) — this matters for protocol
// modeling: two messages injected into the network in some order on the
// same cycle must not be reordered spontaneously.
//
// The hot path is allocation-free: events are sim::InlineEvent (48-byte
// inline capture buffer, event.hpp) and the pending set is a two-level
// calendar queue (per-cycle FIFO buckets over pooled nodes with an
// overflow heap, eventqueue.hpp), so the steady-state schedule/dispatch
// cycle costs no heap traffic and no O(log n) sift. Dispatch drains whole
// cycles at a time (EventQueue::runBatchIfAtMost), touching the queue's
// minimum probe once per cycle instead of once per event.
//
// By default the engine is single-threaded and fully deterministic. A
// ParallelDispatch backend (parallel.hpp) can be attached to execute the
// schedule across worker threads; its conservative-lookahead windows and
// barrier merge keep the dispatch order bit-identical to this sequential
// engine, so attaching it changes wall-clock time and nothing else.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/check.hpp"
#include "sim/event.hpp"
#include "sim/eventqueue.hpp"
#include "sim/types.hpp"

namespace colibri::sim {

/// Callable executed at a simulated point in time.
using Event = InlineEvent;

/// One dispatched event's identity: cycle and global sequence number.
/// Captured via Engine::setTrace; the parallel-engine tests compare these
/// streams to prove order equivalence with the sequential engine.
struct DispatchRecord {
  Cycle when;
  std::uint64_t seq;
  friend bool operator==(const DispatchRecord&,
                         const DispatchRecord&) = default;
};

class ParallelDispatch;

/// Simulated-cycle progress probe (e.g. the fault-layer watchdog). The
/// engine fires onProbe(p) for every boundary p = nextProbeAt() before
/// executing any event at cycle >= p, so a probe observes the state with
/// exactly the events before p applied — identically in the sequential
/// and the parallel engine (which caps its execution windows at probe
/// boundaries). Probes never execute events, never consume sequence
/// numbers and never advance now(); onProbe may throw to abort the run.
class ProgressProbe {
 public:
  virtual ~ProgressProbe() = default;
  /// Next boundary to fire at (kCycleNever = no more probes).
  [[nodiscard]] virtual Cycle nextProbeAt() const = 0;
  /// Fired at boundary `at`; must advance nextProbeAt() past `at`.
  virtual void onProbe(Cycle at) = 0;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. Advances only inside run()/runUntil(). In
  /// parallel mode this is the calling thread's view (its shard's clock
  /// inside shard execution, the main clock otherwise).
  [[nodiscard]] Cycle now() const {
    return parallel_ != nullptr ? parallelNow() : now_;
  }

  /// Schedule `f` to run at absolute cycle `when` (must be >= now()).
  /// Accepts any void() callable (or a prebuilt InlineEvent); the closure
  /// is constructed directly inside a pooled queue node.
  template <typename F>
  void scheduleAt(Cycle when, F&& f) {
    if (parallel_ != nullptr) {
      parallelSchedule(when, Event(std::forward<F>(f)));
      return;
    }
    COLIBRI_CHECK_MSG(when >= now_, "scheduleAt into the past: when="
                                        << when << " now=" << now_);
    queue_.schedule(when, std::forward<F>(f));
  }

  /// Schedule `f` to run `delay` cycles from now.
  template <typename F>
  void scheduleAfter(Cycle delay, F&& f) {
    scheduleAt(now() + delay, std::forward<F>(f));
  }

  /// Run until the event queue is empty. Returns the number of events run.
  std::size_t run() { return runUntil(kCycleNever); }

  /// Run events with time <= horizon; leaves later events queued and sets
  /// now() to min(horizon, time of last executed event). Returns the number
  /// of events executed.
  std::size_t runUntil(Cycle horizon);

  /// Execute at most `n` further events (for incremental co-simulation and
  /// tests). Returns how many actually ran. Sequential mode only.
  std::size_t step(std::size_t n = 1);

  /// Drop all pending events without running them. Used at teardown so that
  /// no queued callback can touch objects that are about to be destroyed.
  /// Splices the queue's node lists back onto its free-list — no per-item
  /// heap frees or heap rebalancing.
  void clear();

  [[nodiscard]] bool empty() const { return pendingEvents() == 0; }
  [[nodiscard]] std::size_t pendingEvents() const;
  [[nodiscard]] std::uint64_t executedEvents() const;

  /// Advance now() to `when` without running anything (only legal when no
  /// earlier event is pending). Lets drivers account for idle gaps.
  /// Sequential mode only.
  void advanceTo(Cycle when);

  /// Record every dispatched event's (when, seq) into `trace` (nullptr to
  /// stop). Test hook for order-equivalence checks; adds one predictable
  /// branch to dispatch when unset.
  void setTrace(std::vector<DispatchRecord>* trace);

  /// Attach (or detach, with nullptr) a parallel dispatch backend. Every
  /// run/schedule/query entry point delegates to it while attached.
  /// Managed by ParallelDispatch's constructor/destructor.
  void setParallel(ParallelDispatch* p);
  [[nodiscard]] ParallelDispatch* parallel() const { return parallel_; }

  /// Attach (or detach, with nullptr) a progress probe. Must be set before
  /// the run starts; both engines honor it (see ProgressProbe).
  void setProgressProbe(ProgressProbe* probe) { probe_ = probe; }
  [[nodiscard]] ProgressProbe* progressProbe() const { return probe_; }

 private:
  /// Pop and run the earliest event if its cycle is <= horizon. Returns
  /// whether an event ran. The dispatch body behind step().
  bool dispatchOne(Cycle horizon);

  // Defined in parallel.cpp (they need the backend's thread-local state).
  [[nodiscard]] Cycle parallelNow() const;
  void parallelSchedule(Cycle when, Event&& ev);

  EventQueue queue_;
  Cycle now_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<DispatchRecord>* trace_ = nullptr;
  ParallelDispatch* parallel_ = nullptr;
  ProgressProbe* probe_ = nullptr;
};

}  // namespace colibri::sim
