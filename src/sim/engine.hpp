// Discrete-event simulation engine.
//
// The engine owns a time-ordered queue of events (arbitrary callables).
// Events scheduled for the same cycle execute in scheduling order (stable
// FIFO tie-break via a sequence number) — this matters for protocol
// modeling: two messages injected into the network in some order on the
// same cycle must not be reordered spontaneously.
//
// The engine is single-threaded and fully deterministic. Benchmarks that
// sweep configurations parallelize across *engines*, never within one.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/check.hpp"
#include "sim/types.hpp"

namespace colibri::sim {

/// Callable executed at a simulated point in time.
using Event = std::function<void()>;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. Advances only inside run()/runUntil().
  [[nodiscard]] Cycle now() const { return now_; }

  /// Schedule `ev` to run at absolute cycle `when` (must be >= now()).
  void scheduleAt(Cycle when, Event ev) {
    COLIBRI_CHECK_MSG(when >= now_, "scheduleAt into the past: when="
                                        << when << " now=" << now_);
    queue_.push(Item{when, nextSeq_++, std::move(ev)});
  }

  /// Schedule `ev` to run `delay` cycles from now.
  void scheduleAfter(Cycle delay, Event ev) {
    scheduleAt(now_ + delay, std::move(ev));
  }

  /// Run until the event queue is empty. Returns the number of events run.
  std::size_t run() { return runUntil(kCycleNever); }

  /// Run events with time <= horizon; leaves later events queued and sets
  /// now() to min(horizon, time of last executed event). Returns the number
  /// of events executed.
  std::size_t runUntil(Cycle horizon);

  /// Execute at most `n` further events (for incremental co-simulation and
  /// tests). Returns how many actually ran.
  std::size_t step(std::size_t n = 1);

  /// Drop all pending events without running them. Used at teardown so that
  /// no queued callback can touch objects that are about to be destroyed.
  void clear();

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pendingEvents() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executedEvents() const { return executed_; }

  /// Advance now() to `when` without running anything (only legal when no
  /// earlier event is pending). Lets drivers account for idle gaps.
  void advanceTo(Cycle when);

 private:
  struct Item {
    Cycle when;
    std::uint64_t seq;
    Event ev;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  Cycle now_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace colibri::sim
