// Discrete-event simulation engine.
//
// The engine owns a time-ordered queue of events (move-only callables).
// Events scheduled for the same cycle execute in scheduling order (stable
// FIFO tie-break via a sequence number) — this matters for protocol
// modeling: two messages injected into the network in some order on the
// same cycle must not be reordered spontaneously.
//
// The hot path is allocation-free: events are sim::InlineEvent (48-byte
// inline capture buffer, event.hpp) and the pending set is a two-level
// calendar queue (per-cycle FIFO buckets over pooled nodes with an
// overflow heap, eventqueue.hpp), so the steady-state schedule/dispatch
// cycle costs no heap traffic and no O(log n) sift.
//
// The engine is single-threaded and fully deterministic. Benchmarks that
// sweep configurations parallelize across *engines*, never within one.
#pragma once

#include <cstddef>
#include <utility>

#include "sim/check.hpp"
#include "sim/event.hpp"
#include "sim/eventqueue.hpp"
#include "sim/types.hpp"

namespace colibri::sim {

/// Callable executed at a simulated point in time.
using Event = InlineEvent;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. Advances only inside run()/runUntil().
  [[nodiscard]] Cycle now() const { return now_; }

  /// Schedule `f` to run at absolute cycle `when` (must be >= now()).
  /// Accepts any void() callable (or a prebuilt InlineEvent); the closure
  /// is constructed directly inside a pooled queue node.
  template <typename F>
  void scheduleAt(Cycle when, F&& f) {
    COLIBRI_CHECK_MSG(when >= now_, "scheduleAt into the past: when="
                                        << when << " now=" << now_);
    queue_.schedule(when, std::forward<F>(f));
  }

  /// Schedule `f` to run `delay` cycles from now.
  template <typename F>
  void scheduleAfter(Cycle delay, F&& f) {
    scheduleAt(now_ + delay, std::forward<F>(f));
  }

  /// Run until the event queue is empty. Returns the number of events run.
  std::size_t run() { return runUntil(kCycleNever); }

  /// Run events with time <= horizon; leaves later events queued and sets
  /// now() to min(horizon, time of last executed event). Returns the number
  /// of events executed.
  std::size_t runUntil(Cycle horizon);

  /// Execute at most `n` further events (for incremental co-simulation and
  /// tests). Returns how many actually ran.
  std::size_t step(std::size_t n = 1);

  /// Drop all pending events without running them. Used at teardown so that
  /// no queued callback can touch objects that are about to be destroyed.
  /// Splices the queue's node lists back onto its free-list — no per-item
  /// heap frees or heap rebalancing.
  void clear() { queue_.clear(); }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pendingEvents() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executedEvents() const { return executed_; }

  /// Advance now() to `when` without running anything (only legal when no
  /// earlier event is pending). Lets drivers account for idle gaps.
  void advanceTo(Cycle when);

 private:
  /// Pop and run the earliest event if its cycle is <= horizon. Returns
  /// whether an event ran. The single dispatch body behind runUntil/step.
  bool dispatchOne(Cycle horizon);

  EventQueue queue_;
  Cycle now_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace colibri::sim
