#include "sim/stats.hpp"

namespace colibri::sim {

Summary Summary::of(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) {
    return s;
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0.0;
  for (double x : sorted) {
    sum += x;
  }
  s.mean = sum / static_cast<double>(sorted.size());
  double var = 0.0;
  for (double x : sorted) {
    var += (x - s.mean) * (x - s.mean);
  }
  s.stddev = std::sqrt(var / static_cast<double>(sorted.size()));
  const std::size_t mid = sorted.size() / 2;
  s.median = sorted.size() % 2 == 1
                 ? sorted[mid]
                 : 0.5 * (sorted[mid - 1] + sorted[mid]);
  s.p50 = percentileSorted(sorted, 0.50);
  s.p95 = percentileSorted(sorted, 0.95);
  s.p99 = percentileSorted(sorted, 0.99);
  return s;
}

double Summary::percentileSorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  if (q <= 0.0) {
    return sorted.front();
  }
  if (q >= 1.0) {
    return sorted.back();
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) {
    return sorted.back();
  }
  return sorted[lo] + (sorted[lo + 1] - sorted[lo]) *
                          (pos - static_cast<double>(lo));
}

Summary Summary::ofCounts(std::span<const std::uint64_t> xs) {
  std::vector<double> d(xs.begin(), xs.end());
  return of(d);
}

double Summary::jainIndex(std::span<const std::uint64_t> xs) {
  if (xs.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double sumSq = 0.0;
  for (std::uint64_t x : xs) {
    const double d = static_cast<double>(x);
    sum += d;
    sumSq += d * d;
  }
  if (sumSq == 0.0) {
    return 1.0;
  }
  return (sum * sum) / (static_cast<double>(xs.size()) * sumSq);
}

double Accumulator::stddev() const {
  if (n_ < 2) {
    return 0.0;
  }
  const double m = mean();
  const double var = sumSq_ / static_cast<double>(n_) - m * m;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

}  // namespace colibri::sim
