// Coroutine task type for simulated cores.
//
// Each simulated core runs one `Task`: a C++20 coroutine that awaits
// simulated memory operations and delays. The coroutine starts suspended;
// the owner kicks it off via start(). When the task co_awaits an operation,
// the frame stays suspended until the simulation delivers the response and
// resumes the handle — a suspended task costs zero simulation events, which
// is exactly how the paper's sleeping cores behave.
//
// Ownership: Task is move-only and destroys the coroutine frame in its
// destructor. The owner must guarantee that no event still referencing the
// frame can fire after destruction (System::shutdown clears the engine
// queue first).
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>

#include "sim/check.hpp"
#include "sim/framepool.hpp"

namespace colibri::sim {

class Task {
 public:
  struct promise_type {
    /// Task frames live in the frame pool (size-class free lists) so that
    /// spawning a thousand cores costs no per-frame heap traffic.
    static void* operator new(std::size_t n) { return framepool::allocate(n); }
    static void operator delete(void* p) noexcept { framepool::release(p); }

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    // Suspend at the end so the frame (and the promise's `done` flag)
    // outlives completion; the owning Task destroys the frame.
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }

    std::exception_ptr exception;
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return handle_ != nullptr; }
  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }

  /// Begin execution (runs until the first suspension point).
  void start() {
    COLIBRI_CHECK(valid() && !handle_.done());
    handle_.resume();
    rethrowIfFailed();
  }

  /// Rethrow an exception that escaped the coroutine body, if any.
  void rethrowIfFailed() const {
    if (handle_ && handle_.done() && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace colibri::sim
