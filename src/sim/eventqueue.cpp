// Cold paths of the calendar queue: pool growth and bulk teardown. The
// per-event schedule/dispatch fast path lives in the header.
#include "sim/eventqueue.hpp"

namespace colibri::sim {

void EventQueue::refillPool() {
  auto chunk = std::make_unique<Node[]>(kNodesPerChunk);
  for (std::size_t i = kNodesPerChunk; i-- > 0;) {
    chunk[i].next = freeList_;
    freeList_ = &chunk[i];
  }
  chunks_.push_back(std::move(chunk));
}

void EventQueue::clear() noexcept {
  for (std::size_t w = 0; w < kBitmapWords; ++w) {
    std::uint64_t word = occupied_[w];
    while (word != 0) {
      const std::size_t idx =
          w * 64 + static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;
      Bucket& b = buckets_[idx];
      Node* n = b.head;
      while (n != nullptr) {
        Node* next = n->next;
        n->ev.reset();
        freeNode(n);
        n = next;
      }
      b.head = b.tail = nullptr;
    }
    occupied_[w] = 0;
  }
  for (Node* n : overflow_) {
    n->ev.reset();
    freeNode(n);
  }
  overflow_.clear();
  size_ = 0;
  bucketCount_ = 0;
  bucketMinValid_ = false;
}

}  // namespace colibri::sim
