// Cold paths of the calendar queue: pool growth and bulk teardown. The
// per-event schedule/dispatch fast path lives in the header.
#include "sim/eventqueue.hpp"

namespace colibri::sim {

void EventQueue::refillPool() {
  auto chunk = std::make_unique<Node[]>(kNodesPerChunk);
  for (std::size_t i = kNodesPerChunk; i-- > 0;) {
    chunk[i].next = freeList_;
    freeList_ = &chunk[i];
  }
  chunks_.push_back(std::move(chunk));
}

bool EventQueue::peekEarliest(Cycle& when, std::uint64_t& seq) const {
  if (size_ == 0) {
    return false;
  }
  const Node* best = nullptr;
  if (bucketCount_ > 0) {
    const Cycle bw = bucketMinWhen();
    best = buckets_[bw & (kBucketCount - 1)].head;
  }
  if (!overflow_.empty()) {
    const Node* top = overflow_.front();
    if (best == nullptr || later(best, top)) {
      best = top;
    }
  }
  when = best->when;
  seq = best->seq;
  return true;
}

void EventQueue::insertSorted(Cycle when, std::uint64_t seq, InlineEvent ev) {
  COLIBRI_CHECK_MSG(when >= cursor_, "insert before the dispatch cursor: when="
                                         << when << " cursor=" << cursor_);
  Node* n = allocNode();
  n->when = when;
  n->seq = seq;
  n->next = nullptr;
  n->ev = std::move(ev);
  if (when - cursor_ >= kBucketCount) {
    overflow_.push_back(n);
    std::push_heap(overflow_.begin(), overflow_.end(), &later);
    ++size_;
    return;
  }
  const std::size_t idx = when & (kBucketCount - 1);
  Bucket& b = buckets_[idx];
  // Splice before the first pending node with a larger seq — each cycle's
  // chain is seq-sorted (FIFO appends are monotone), so one walk restores
  // the total (when, seq) order for a merged cross-shard arrival.
  Node* prev = nullptr;
  Node* cur = b.head;
  while (cur != nullptr && cur->seq < seq) {
    prev = cur;
    cur = cur->next;
  }
  n->next = cur;
  if (prev == nullptr) {
    b.head = n;
  } else {
    prev->next = n;
  }
  if (cur == nullptr) {
    b.tail = n;
  }
  if (b.head == n && prev == nullptr && n->next == nullptr) {
    occupied_[idx / 64] |= std::uint64_t{1} << (idx % 64);
  }
  if (bucketMinValid_) {
    if (when < bucketMinCache_) {
      bucketMinCache_ = when;
    }
  } else if (bucketCount_ == 0) {
    bucketMinCache_ = when;
    bucketMinValid_ = true;
  }
  ++bucketCount_;
  ++size_;
}

void EventQueue::clear() noexcept {
  for (std::size_t w = 0; w < kBitmapWords; ++w) {
    std::uint64_t word = occupied_[w];
    while (word != 0) {
      const std::size_t idx =
          w * 64 + static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;
      Bucket& b = buckets_[idx];
      Node* n = b.head;
      while (n != nullptr) {
        Node* next = n->next;
        n->ev.reset();
        freeNode(n);
        n = next;
      }
      b.head = b.tail = nullptr;
    }
    occupied_[w] = 0;
  }
  for (Node* n : overflow_) {
    n->ev.reset();
    freeNode(n);
  }
  overflow_.clear();
  size_ = 0;
  bucketCount_ = 0;
  bucketMinValid_ = false;
}

}  // namespace colibri::sim
