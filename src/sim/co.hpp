// Co<T>: an awaitable sub-coroutine for composing simulated kernels.
//
// Workload coroutines (sim::Task) call synchronization primitives that are
// themselves multi-step simulated operations (a lock acquire is a loop of
// memory ops). Co<T> lets those be written as coroutines and awaited:
//
//   sim::Co<Word> fetchAdd(Core& c, Addr a, Word d) { ... co_return old; }
//   Task worker(...) { Word v = co_await fetchAdd(core, a, 1); ... }
//
// The child starts lazily when awaited and resumes its parent by symmetric
// transfer at completion. Exceptions propagate to the awaiting coroutine.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>

#include "sim/check.hpp"
#include "sim/framepool.hpp"

namespace colibri::sim {

template <typename T>
class Co;

namespace detail {

template <typename T>
struct CoPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  // Coroutine frames come from the frame pool instead of the heap: a lock
  // acquire awaits several Co frames per attempt, and on the default
  // allocator that was one malloc/free each on the per-op hot path.
  static void* operator new(std::size_t n) { return framepool::allocate(n); }
  static void operator delete(void* p) noexcept { framepool::release(p); }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Co {
 public:
  struct promise_type : detail::CoPromiseBase<T> {
    T value{};
    Co get_return_object() {
      return Co{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value = std::move(v); }
  };

  Co(Co&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&&) = delete;
  ~Co() {
    if (handle_) {
      handle_.destroy();
    }
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;  // start the child
  }
  T await_resume() {
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
    return std::move(handle_.promise().value);
  }

 private:
  explicit Co(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Co<void> {
 public:
  struct promise_type : detail::CoPromiseBase<void> {
    Co get_return_object() {
      return Co{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  Co(Co&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&&) = delete;
  ~Co() {
    if (handle_) {
      handle_.destroy();
    }
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  void await_resume() {
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  explicit Co(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace colibri::sim
