// Pooled storage for coroutine frames (sim::Task and sim::Co promises).
//
// Every simulated core lives in a coroutine frame, and every awaited
// synchronization primitive (sim::Co) allocates another one — on the
// default allocator that is one malloc/free per lock acquire per core,
// the dominant allocator traffic of a big run. FramePool is a size-class
// segregated-fit arena in the spirit of the calendar queue's node pool:
// blocks come from per-thread subpools (so the parallel engine's workers
// never contend) refilled in chunks, and a freed block goes back onto the
// freeing thread's list, ready for the next frame of the same class.
//
// Blocks carry a 16-byte header recording their size class (or that they
// came from the system heap, for oversized frames and for threads without
// a subpool), so release() needs no external lookup. Chunk memory is owned
// by the process-wide arena and recycled for the life of the process —
// a steady-state simulation allocates no frame memory from the heap, which
// the `heapFrameCount()` test hook asserts.
#pragma once

#include <cstddef>
#include <cstdint>

namespace colibri::sim {

namespace framepool {

/// Allocate `size` bytes of frame storage (never returns nullptr; throws
/// std::bad_alloc on exhaustion like operator new).
[[nodiscard]] void* allocate(std::size_t size);

/// Return a block obtained from allocate().
void release(void* p) noexcept;

/// Number of frame allocations served by the pool since process start.
[[nodiscard]] std::uint64_t pooledFrameCount() noexcept;

/// Number of frame allocations that fell back to the system heap
/// (oversized frames only). Test hook: a steady-state simulation must not
/// move this counter.
[[nodiscard]] std::uint64_t heapFrameCount() noexcept;

/// Bytes of chunk memory currently owned by the arena (all threads).
[[nodiscard]] std::uint64_t arenaBytes() noexcept;

}  // namespace framepool

}  // namespace colibri::sim
