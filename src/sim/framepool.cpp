#include "sim/framepool.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

#include "sim/check.hpp"

namespace colibri::sim::framepool {

namespace {

// Size classes cover the frames the simulator actually creates: Co<T>
// frames are small (~100-300 B), workload Task frames run larger (locals
// plus captured parameters). Anything beyond the largest class is rare
// enough to take the system heap.
constexpr std::size_t kClassSizes[] = {64,  128,  192,  256,
                                       512, 1024, 2048, 4096};
constexpr std::size_t kNumClasses = sizeof(kClassSizes) / sizeof(std::size_t);
constexpr std::size_t kHeaderSize = 16;
constexpr std::size_t kChunkBlocks = 64;  // blocks added per refill

// The 16-byte block header: (cls, magic) in the first 8 bytes, the
// free-list link in the second 8 — so the magic survives a block's trip
// through the free list and release() can tell a double free
// (magic == kFreedMagic) from a foreign pointer (anything else).
struct Header {
  std::uint32_t cls;    // size class index, or kHeapClass
  std::uint32_t magic;  // kMagic while live, kFreedMagic while pooled
  Header* next;         // free-list link (meaningful only while pooled)
};
static_assert(sizeof(Header) == 16);
constexpr std::uint32_t kHeapClass = 0xFFFFFFFFu;
constexpr std::uint32_t kMagic = 0xF4A3E001u;
constexpr std::uint32_t kFreedMagic = 0xF4A3DEADu;

std::uint32_t classFor(std::size_t size) {
  for (std::uint32_t i = 0; i < kNumClasses; ++i) {
    if (size <= kClassSizes[i]) {
      return i;
    }
  }
  return kHeapClass;
}

std::atomic<std::uint64_t> pooledCount{0};
std::atomic<std::uint64_t> heapCount{0};
std::atomic<std::uint64_t> arenaTotal{0};

/// One thread's segregated free lists. Subpools are registered with the
/// arena on first use and parked (not destroyed) at thread exit, so a
/// later worker thread can adopt the lists — chunk memory is recycled for
/// the life of the process and blocks may be freed by a different thread
/// than the one that allocated them.
struct SubPool {
  Header* freeLists[kNumClasses] = {};
  std::vector<std::unique_ptr<std::byte[]>> chunks;
  bool inUse = false;

  void refill(std::uint32_t cls) {
    const std::size_t block = kHeaderSize + kClassSizes[cls];
    const std::size_t bytes = block * kChunkBlocks;
    auto chunk = std::make_unique<std::byte[]>(bytes);
    std::byte* base = chunk.get();
    for (std::size_t i = 0; i < kChunkBlocks; ++i) {
      auto* h = reinterpret_cast<Header*>(base + i * block);
      h->cls = cls;
      h->magic = kFreedMagic;
      h->next = freeLists[cls];
      freeLists[cls] = h;
    }
    chunks.push_back(std::move(chunk));
    arenaTotal.fetch_add(bytes, std::memory_order_relaxed);
  }
};

struct Arena {
  std::mutex mu;
  std::vector<std::unique_ptr<SubPool>> pools;

  SubPool* acquire() {
    std::lock_guard<std::mutex> lock(mu);
    for (auto& p : pools) {
      if (!p->inUse) {
        p->inUse = true;
        return p.get();
      }
    }
    pools.push_back(std::make_unique<SubPool>());
    pools.back()->inUse = true;
    return pools.back().get();
  }

  void park(SubPool* p) {
    std::lock_guard<std::mutex> lock(mu);
    p->inUse = false;
  }
};

Arena& arena() {
  // Leaked deliberately: frames can outlive any scope shorter than the
  // process (static System instances, thread teardown order), so the
  // arena must never be destroyed.
  static Arena* a = new Arena();
  return *a;
}

/// RAII thread registration: binds a subpool to the current thread on
/// first frame allocation and parks it (lists intact) at thread exit.
struct ThreadPool {
  SubPool* pool = nullptr;
  ThreadPool() : pool(arena().acquire()) {}
  ~ThreadPool() { arena().park(pool); }
};

SubPool& threadPool() {
  thread_local ThreadPool tp;
  return *tp.pool;
}

}  // namespace

void* allocate(std::size_t size) {
  const std::uint32_t cls = classFor(size);
  if (cls == kHeapClass) {
    auto* raw = static_cast<std::byte*>(::operator new(kHeaderSize + size));
    auto* h = reinterpret_cast<Header*>(raw);
    h->cls = kHeapClass;
    h->magic = kMagic;
    heapCount.fetch_add(1, std::memory_order_relaxed);
    return raw + kHeaderSize;
  }
  SubPool& sp = threadPool();
  if (sp.freeLists[cls] == nullptr) {
    sp.refill(cls);
  }
  Header* h = sp.freeLists[cls];
  sp.freeLists[cls] = h->next;
  h->cls = cls;
  h->magic = kMagic;
  pooledCount.fetch_add(1, std::memory_order_relaxed);
  return reinterpret_cast<std::byte*>(h) + kHeaderSize;
}

void release(void* p) noexcept {
  if (p == nullptr) {
    return;
  }
  auto* raw = static_cast<std::byte*>(p) - kHeaderSize;
  auto* h = reinterpret_cast<Header*>(raw);
  COLIBRI_CHECK_MSG(h->magic == kMagic,
                    "framepool::release of "
                        << (h->magic == kFreedMagic ? "an already-freed block"
                                                    : "a foreign pointer")
                        << " (p=" << p << ")");
  if (h->cls == kHeapClass) {
    ::operator delete(raw);
    return;
  }
  // Freed blocks go to the *freeing* thread's list: chunk memory belongs
  // to the process-wide arena, so adoption across threads is safe, and
  // the common case (frame created and destroyed on one worker) stays
  // contention-free.
  SubPool& sp = threadPool();
  h->magic = kFreedMagic;
  h->next = sp.freeLists[h->cls];
  sp.freeLists[h->cls] = h;
}

std::uint64_t pooledFrameCount() noexcept {
  return pooledCount.load(std::memory_order_relaxed);
}

std::uint64_t heapFrameCount() noexcept {
  return heapCount.load(std::memory_order_relaxed);
}

std::uint64_t arenaBytes() noexcept {
  return arenaTotal.load(std::memory_order_relaxed);
}

}  // namespace colibri::sim::framepool
