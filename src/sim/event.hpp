// InlineEvent: the engine's move-only callable with small-buffer storage.
//
// Every simulated memory operation schedules several events; with
// std::function each closure that outgrew the 16-byte SSO buffer cost a
// heap allocation on the per-op hot path. InlineEvent reserves 48 bytes
// of inline storage — enough for every closure the simulator schedules
// (asserted with static_asserts at each scheduling site via fitsInline) —
// and falls back to the heap only for oversized callables (test drivers,
// user callbacks routed through System::at).
//
// Heap fallbacks are counted in a process-wide counter (aggregated across
// the parallel engine's worker threads) so tests can assert that a
// steady-state simulation performs zero event allocations.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/check.hpp"

namespace colibri::sim {

class InlineEvent {
 public:
  /// Inline capture budget. Sized for the largest hot-path closure
  /// (core issue: this + MemRequest + coroutine handle = 40 bytes) with
  /// headroom; grow deliberately — every node in the event queue pays it.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  /// True iff a callable of type F is stored inline (no heap allocation).
  /// Scheduling sites on the per-op path static_assert this.
  template <typename F>
  static constexpr bool fitsInline =
      sizeof(std::decay_t<F>) <= kInlineSize &&
      alignof(std::decay_t<F>) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  InlineEvent() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineEvent> &&
             std::is_invocable_v<std::decay_t<F>&>)
  InlineEvent(F&& f) {  // NOLINT(google-explicit-constructor) — events are
                        // passed as lambdas at ~30 call sites
    construct(std::forward<F>(f));
  }

  /// Destroy the held callable (if any) and construct `f` in place —
  /// the event queue builds closures directly inside pooled nodes with
  /// this, so scheduling performs zero intermediate moves.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineEvent> &&
             std::is_invocable_v<std::decay_t<F>&>)
  void emplace(F&& f) {
    reset();
    construct(std::forward<F>(f));
  }

  InlineEvent(InlineEvent&& other) noexcept { moveFrom(std::move(other)); }

  InlineEvent& operator=(InlineEvent&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(std::move(other));
    }
    return *this;
  }

  InlineEvent(const InlineEvent&) = delete;
  InlineEvent& operator=(const InlineEvent&) = delete;

  ~InlineEvent() { reset(); }

  void operator()() {
    COLIBRI_CHECK_MSG(vtable_ != nullptr, "invoking an empty InlineEvent");
    vtable_->invoke(buf_);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }

  /// Destroy the held callable (if any); the event becomes empty.
  void reset() noexcept {
    if (vtable_ != nullptr) {
      if (vtable_->destroy != nullptr) {
        vtable_->destroy(buf_);
      }
      vtable_ = nullptr;
    }
  }

  /// Number of heap-fallback constructions process-wide since start.
  /// Test hook: a steady-state simulation must not move this counter.
  /// A single atomic (not thread-local) so the count stays meaningful when
  /// the parallel engine constructs events on worker threads; the fallback
  /// path is cold (oversized driver closures only), so the relaxed
  /// increment costs nothing on the hot path.
  [[nodiscard]] static std::uint64_t heapFallbackCount() noexcept {
    return heapFallbacks_.load(std::memory_order_relaxed);
  }

 private:
  struct VTable {
    void (*invoke)(void* obj);
    /// nullptr => trivially destructible (or heap: never null there).
    void (*destroy)(void* obj) noexcept;
    /// Move the representation from one buffer to another and destroy the
    /// source representation. nullptr => the representation is trivially
    /// relocatable and a buffer memcpy suffices (covers trivially movable
    /// inline callables and the heap case, which relocates its pointer).
    /// Either way an InlineEvent move never allocates.
    void (*relocate)(void* from, void* to) noexcept;
  };

  template <typename D>
  static void inlineInvoke(void* p) {
    (*std::launder(static_cast<D*>(p)))();
  }
  template <typename D>
  static void inlineDestroy(void* p) noexcept {
    std::launder(static_cast<D*>(p))->~D();
  }
  template <typename D>
  static void inlineRelocate(void* from, void* to) noexcept {
    D* src = std::launder(static_cast<D*>(from));
    ::new (to) D(std::move(*src));
    src->~D();
  }

  template <typename D>
  static void heapInvoke(void* p) {
    (**std::launder(static_cast<D**>(p)))();
  }
  template <typename D>
  static void heapDestroy(void* p) noexcept {
    delete *std::launder(static_cast<D**>(p));
  }

  template <typename D>
  static constexpr VTable kInlineVTable{
      &inlineInvoke<D>,
      std::is_trivially_destructible_v<D> ? nullptr : &inlineDestroy<D>,
      std::is_trivially_move_constructible_v<D> &&
              std::is_trivially_destructible_v<D>
          ? nullptr
          : &inlineRelocate<D>};
  template <typename D>
  static constexpr VTable kHeapVTable{&heapInvoke<D>, &heapDestroy<D>,
                                      nullptr};

  template <typename F>
  void construct(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fitsInline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vtable_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(buf_)) void*(new D(std::forward<F>(f)));
      heapFallbacks_.fetch_add(1, std::memory_order_relaxed);
      vtable_ = &kHeapVTable<D>;
    }
  }

  void moveFrom(InlineEvent&& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      if (vtable_->relocate != nullptr) {
        vtable_->relocate(other.buf_, buf_);
      } else {
        std::memcpy(buf_, other.buf_, kInlineSize);
      }
      other.vtable_ = nullptr;
    }
  }

  inline static std::atomic<std::uint64_t> heapFallbacks_{0};

  alignas(kInlineAlign) std::byte buf_[kInlineSize];
  const VTable* vtable_ = nullptr;
};

}  // namespace colibri::sim
