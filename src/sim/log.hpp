// Minimal leveled logging for the simulator.
//
// Protocol traces (adapter decisions, Colibri messages) are invaluable when
// debugging races, but must cost nothing when disabled: the macro checks
// the level before evaluating the stream expression.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

#include "sim/types.hpp"

namespace colibri::sim {

enum class LogLevel { kNone = 0, kError, kWarn, kInfo, kTrace };

class Log {
 public:
  static LogLevel level() { return level_; }
  static void setLevel(LogLevel l) { level_ = l; }
  static bool enabled(LogLevel l) {
    return static_cast<int>(l) <= static_cast<int>(level_);
  }

  static void write(LogLevel l, Cycle at, std::string_view msg);

 private:
  static LogLevel level_;
};

}  // namespace colibri::sim

#define COLIBRI_LOG(lvl, cycle, expr)                                \
  do {                                                               \
    if (::colibri::sim::Log::enabled(lvl)) {                         \
      std::ostringstream os_;                                        \
      os_ << expr;                                                   \
      ::colibri::sim::Log::write(lvl, cycle, os_.str());             \
    }                                                                \
  } while (false)

#define COLIBRI_TRACE(cycle, expr) \
  COLIBRI_LOG(::colibri::sim::LogLevel::kTrace, cycle, expr)
