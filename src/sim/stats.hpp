// Measurement utilities.
//
// The paper's evaluation reports steady-state rates (updates/cycle,
// accesses/cycle) and fairness (per-core min/max spread). WindowedCounter
// supports warmup-then-measure: events before the window opens are counted
// separately and excluded from the reported rate. Summary computes the
// descriptive statistics the figures need.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/types.hpp"

namespace colibri::sim {

/// Counts discrete completions, split at a measurement-window boundary.
class WindowedCounter {
 public:
  /// Open the measurement window at cycle `start` (events strictly before
  /// `start` are warmup). Window closes at `end` (events at/after `end`
  /// are cooldown). Defaults measure everything.
  void setWindow(Cycle start, Cycle end) {
    windowStart_ = start;
    windowEnd_ = end;
  }

  void record(Cycle at, std::uint64_t n = 1) {
    total_ += n;
    if (at >= windowStart_ && at < windowEnd_) {
      inWindow_ += n;
    }
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t inWindow() const { return inWindow_; }
  [[nodiscard]] Cycle windowStart() const { return windowStart_; }
  [[nodiscard]] Cycle windowEnd() const { return windowEnd_; }

  /// Events per cycle over the (clamped) window; `simEnd` caps the window
  /// if the simulation stopped early.
  [[nodiscard]] double rate(Cycle simEnd) const {
    const Cycle end = std::min(windowEnd_, simEnd);
    if (end <= windowStart_) {
      return 0.0;
    }
    return static_cast<double>(inWindow_) /
           static_cast<double>(end - windowStart_);
  }

 private:
  Cycle windowStart_ = 0;
  Cycle windowEnd_ = kCycleNever;
  std::uint64_t total_ = 0;
  std::uint64_t inWindow_ = 0;
};

/// Descriptive statistics over a sample (per-core op counts, latencies...).
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;
  double p50 = 0.0;  ///< == median (both kept: median predates percentiles)
  double p95 = 0.0;
  double p99 = 0.0;
  std::size_t count = 0;

  static Summary of(std::span<const double> xs);
  static Summary ofCounts(std::span<const std::uint64_t> xs);

  /// Linearly interpolated quantile over an *ascending-sorted* sample;
  /// q in [0, 1]. Empty samples yield 0.
  static double percentileSorted(std::span<const double> sorted, double q);

  /// Jain's fairness index: 1.0 = perfectly fair, 1/n = maximally unfair.
  static double jainIndex(std::span<const std::uint64_t> xs);
};

/// Online accumulator for streaming samples (latency distributions).
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    sumSq_ += x * x;
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double stddev() const;

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double sumSq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace colibri::sim
