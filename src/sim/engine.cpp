#include "sim/engine.hpp"

namespace colibri::sim {

bool Engine::dispatchOne(Cycle horizon) {
  // The event runs in place inside its (already unlinked) queue node, so
  // the callable may schedule new events — which mutates the queue — while
  // it executes, and dispatch pays no event move.
  return queue_.runEarliestIfAtMost(horizon, [this](Cycle when, Event& ev) {
    now_ = when;
    ev();
    ++executed_;
  });
}

std::size_t Engine::runUntil(Cycle horizon) {
  std::size_t ran = 0;
  while (dispatchOne(horizon)) {
    ++ran;
  }
  if (horizon != kCycleNever && now_ < horizon) {
    now_ = horizon;
  }
  return ran;
}

std::size_t Engine::step(std::size_t n) {
  std::size_t ran = 0;
  while (ran < n && dispatchOne(kCycleNever)) {
    ++ran;
  }
  return ran;
}

void Engine::advanceTo(Cycle when) {
  COLIBRI_CHECK(when >= now_);
  COLIBRI_CHECK_MSG(queue_.minWhen() >= when,
                    "advanceTo would skip a pending event");
  now_ = when;
}

}  // namespace colibri::sim
