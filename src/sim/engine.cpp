#include "sim/engine.hpp"

namespace colibri::sim {

std::size_t Engine::runUntil(Cycle horizon) {
  std::size_t ran = 0;
  while (!queue_.empty() && queue_.top().when <= horizon) {
    // Move the event out before popping so the callable may schedule new
    // events (which mutates the queue) while it runs.
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    now_ = item.when;
    item.ev();
    ++ran;
    ++executed_;
  }
  if (horizon != kCycleNever && now_ < horizon) {
    now_ = horizon;
  }
  return ran;
}

std::size_t Engine::step(std::size_t n) {
  std::size_t ran = 0;
  while (ran < n && !queue_.empty()) {
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    now_ = item.when;
    item.ev();
    ++ran;
    ++executed_;
  }
  return ran;
}

void Engine::clear() {
  while (!queue_.empty()) {
    queue_.pop();
  }
}

void Engine::advanceTo(Cycle when) {
  COLIBRI_CHECK(when >= now_);
  COLIBRI_CHECK_MSG(queue_.empty() || queue_.top().when >= when,
                    "advanceTo would skip a pending event");
  now_ = when;
}

}  // namespace colibri::sim
