#include "sim/engine.hpp"

#include "sim/parallel.hpp"

namespace colibri::sim {

bool Engine::dispatchOne(Cycle horizon) {
  // The event runs in place inside its (already unlinked) queue node, so
  // the callable may schedule new events — which mutates the queue — while
  // it executes, and dispatch pays no event move.
  return queue_.runEarliestIfAtMost(
      horizon, [this](Cycle when, std::uint64_t seq, Event& ev) {
        now_ = when;
        if (trace_ != nullptr) {
          trace_->push_back({when, seq});
        }
        ev();
        ++executed_;
      });
}

std::size_t Engine::runUntil(Cycle horizon) {
  if (parallel_ != nullptr) {
    return parallel_->runUntil(horizon);
  }
  std::size_t ran = 0;
  auto dispatch = [this](Cycle when, std::uint64_t seq, Event& ev) {
    now_ = when;
    if (trace_ != nullptr) {
      trace_->push_back({when, seq});
    }
    ev();
    ++executed_;
  };
  for (;;) {
    if (probe_ != nullptr) {
      // Fire every probe boundary at or below the next event's cycle
      // before that cycle's batch executes — the probe then sees exactly
      // the events before its boundary applied, matching the parallel
      // engine's probe point (before the window starting at that cycle).
      const Cycle next = queue_.minWhen();
      if (next != kCycleNever && next <= horizon) {
        for (Cycle p = probe_->nextProbeAt(); p != kCycleNever && p <= next;
             p = probe_->nextProbeAt()) {
          probe_->onProbe(p);
        }
      }
    }
    const std::size_t n = queue_.runBatchIfAtMost(horizon, dispatch);
    if (n == 0) {
      break;
    }
    ran += n;
  }
  if (horizon != kCycleNever && now_ < horizon) {
    now_ = horizon;
  }
  return ran;
}

std::size_t Engine::step(std::size_t n) {
  COLIBRI_CHECK_MSG(parallel_ == nullptr,
                    "step() requires the sequential engine");
  std::size_t ran = 0;
  while (ran < n && dispatchOne(kCycleNever)) {
    ++ran;
  }
  return ran;
}

void Engine::clear() {
  if (parallel_ != nullptr) {
    parallel_->clearAll();
    return;
  }
  queue_.clear();
}

std::size_t Engine::pendingEvents() const {
  return parallel_ != nullptr ? parallel_->pendingEvents() : queue_.size();
}

std::uint64_t Engine::executedEvents() const {
  return parallel_ != nullptr ? parallel_->executedEvents() : executed_;
}

void Engine::advanceTo(Cycle when) {
  COLIBRI_CHECK_MSG(parallel_ == nullptr,
                    "advanceTo() requires the sequential engine");
  COLIBRI_CHECK(when >= now_);
  COLIBRI_CHECK_MSG(queue_.minWhen() >= when,
                    "advanceTo would skip a pending event");
  now_ = when;
}

void Engine::setTrace(std::vector<DispatchRecord>* trace) {
  trace_ = trace;
  if (parallel_ != nullptr) {
    parallel_->setTrace(trace);
  }
}

void Engine::setParallel(ParallelDispatch* p) {
  parallel_ = p;
  if (p != nullptr && trace_ != nullptr) {
    p->setTrace(trace_);
  }
}

}  // namespace colibri::sim
