#include "sim/engine.hpp"

#include "sim/parallel.hpp"

namespace colibri::sim {

bool Engine::dispatchOne(Cycle horizon) {
  // The event runs in place inside its (already unlinked) queue node, so
  // the callable may schedule new events — which mutates the queue — while
  // it executes, and dispatch pays no event move.
  return queue_.runEarliestIfAtMost(
      horizon, [this](Cycle when, std::uint64_t seq, Event& ev) {
        now_ = when;
        if (trace_ != nullptr) {
          trace_->push_back({when, seq});
        }
        ev();
        ++executed_;
      });
}

std::size_t Engine::runUntil(Cycle horizon) {
  if (parallel_ != nullptr) {
    return parallel_->runUntil(horizon);
  }
  std::size_t ran = 0;
  auto dispatch = [this](Cycle when, std::uint64_t seq, Event& ev) {
    now_ = when;
    if (trace_ != nullptr) {
      trace_->push_back({when, seq});
    }
    ev();
    ++executed_;
  };
  while (const std::size_t n = queue_.runBatchIfAtMost(horizon, dispatch)) {
    ran += n;
  }
  if (horizon != kCycleNever && now_ < horizon) {
    now_ = horizon;
  }
  return ran;
}

std::size_t Engine::step(std::size_t n) {
  COLIBRI_CHECK_MSG(parallel_ == nullptr,
                    "step() requires the sequential engine");
  std::size_t ran = 0;
  while (ran < n && dispatchOne(kCycleNever)) {
    ++ran;
  }
  return ran;
}

void Engine::clear() {
  if (parallel_ != nullptr) {
    parallel_->clearAll();
    return;
  }
  queue_.clear();
}

std::size_t Engine::pendingEvents() const {
  return parallel_ != nullptr ? parallel_->pendingEvents() : queue_.size();
}

std::uint64_t Engine::executedEvents() const {
  return parallel_ != nullptr ? parallel_->executedEvents() : executed_;
}

void Engine::advanceTo(Cycle when) {
  COLIBRI_CHECK_MSG(parallel_ == nullptr,
                    "advanceTo() requires the sequential engine");
  COLIBRI_CHECK(when >= now_);
  COLIBRI_CHECK_MSG(queue_.minWhen() >= when,
                    "advanceTo would skip a pending event");
  now_ = when;
}

void Engine::setTrace(std::vector<DispatchRecord>* trace) {
  trace_ = trace;
  if (parallel_ != nullptr) {
    parallel_->setTrace(trace);
  }
}

void Engine::setParallel(ParallelDispatch* p) {
  parallel_ = p;
  if (p != nullptr && trace_ != nullptr) {
    p->setTrace(trace_);
  }
}

}  // namespace colibri::sim
