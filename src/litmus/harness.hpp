// The litmus harness: run one algorithm on a System and check its
// invariants, or sweep the whole algorithm x adapter x seed matrix in
// parallel (deterministically — each cell owns a fresh System seeded from
// its case alone, so results are bit-identical for any thread count).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/config.hpp"
#include "exp/scenario.hpp"
#include "litmus/litmus.hpp"

namespace colibri::arch {
class System;
}

namespace colibri::litmus {

/// Run one litmus case on `sys` (which must be freshly constructed — the
/// harness allocates its words from the system allocator). Throws
/// sim::InvariantViolation on harness-level failures (tasks not draining,
/// phantom counter increments); algorithm-level violations are *reported*
/// in the result, not thrown — the broken naive lock is supposed to fail.
[[nodiscard]] LitmusResult runLitmus(arch::System& sys,
                                     const LitmusParams& params);

/// One cell of the algorithm x adapter x seed matrix.
struct MatrixCase {
  exp::AdapterSpec adapter;
  LitmusParams params;
  arch::SystemConfig config;  ///< geometry + seed, adapter already applied
};

/// The expected-behavior pass criterion for a result: algorithms that
/// promise exclusion must hold every invariant; the broken naive lock
/// passes when the harness *detected* its violation (and it still made
/// progress).
[[nodiscard]] bool passes(const AlgorithmInfo& info, const LitmusResult& r);

/// Build the full matrix: every adapter x every algorithm x every seed on
/// the `base` geometry, with each algorithm at its default contender count
/// (clamped to the geometry).
[[nodiscard]] std::vector<MatrixCase> buildMatrix(
    const std::vector<std::uint64_t>& seeds, const arch::SystemConfig& base,
    std::uint32_t iterations = 40);

/// Run the cases through exp::SweepRunner::map. Results are in case order
/// and bit-identical across reruns and thread counts.
[[nodiscard]] std::vector<LitmusResult> runMatrix(
    const std::vector<MatrixCase>& cases, unsigned threads = 0);

}  // namespace colibri::litmus
