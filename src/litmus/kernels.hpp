// The litmus coroutine kernels: one worker Task per contender, sharing a
// LitmusCtx that lives on the harness stack frame for the duration of the
// run (the same ownership pattern as wgen's WgenCtx).
//
// Every mutual-exclusion kernel wraps the same critical-section body:
// an atomic occupancy probe (amoAdd ±1 on an `overlap` word — a nonzero
// old value at entry means another contender was inside) plus a
// deliberately non-atomic increment of a shared counter (load, compute,
// acked store) whose final value equals the entry count iff no update was
// lost. The probe catches overlap even when the racing increments happen
// to serialize; the counter catches lost updates even when the overlap
// windows miss each other — two independent detectors.
//
// Kernels must stay abortable: every wait loop checks ctx.stop (flipped by
// the harness watchdog) and backs out of the entry protocol cleanly, so a
// livelocked or deadlocked algorithm fails the *progress* invariant
// instead of hanging the simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/system.hpp"
#include "litmus/litmus.hpp"
#include "sim/task.hpp"
#include "sync/atomic.hpp"
#include "sync/spinlock.hpp"

namespace colibri::litmus {

/// Shared state of one litmus run. Addresses are simulated SPM words; the
/// host-side fields (perCoreEntries, exclusionViolations, ...) are safe to
/// mutate from any kernel because the engine is single-threaded.
struct LitmusCtx {
  const LitmusParams* params = nullptr;

  // Simulated shared words.
  sim::Addr counter = 0;  ///< non-atomically incremented inside the CS
  sim::Addr overlap = 0;  ///< occupancy probe (amoAdd +1 / -1)
  sim::Addr turn = 0;     ///< Dekker turn / Peterson victim
  sim::Addr lockWord = 0; ///< TAS / naive lock
  std::vector<sim::Addr> flags;    ///< Dekker/Peterson flag, bakery choosing
  std::vector<sim::Addr> numbers;  ///< bakery tickets

  // Adapter-matched operation selection.
  sync::RmwFlavor rmwFlavor = sync::RmwFlavor::kLrsc;
  sync::RmwFlavor casFlavor = sync::RmwFlavor::kLrsc;
  sync::SpinLockKind lockKind = sync::SpinLockKind::kLrscTas;
  bool casAvailable = true;  ///< false on the AMO-only adapter

  /// Contender index -> core id (identity unless spreadCores).
  std::vector<sim::CoreId> coreOf;

  // Watchdog / results (host side).
  bool stop = false;
  std::vector<std::uint64_t> perCoreEntries;  ///< by contender index
  std::uint64_t exclusionViolations = 0;
  sim::Cycle lastDone = 0;  ///< cycle the last contender finished
};

/// The worker coroutine for contender `idx` of the configured algorithm.
/// Runs `iterations` critical-section entries (or successful increments
/// for kIncrementRace), honoring ctx.stop at every wait point.
[[nodiscard]] sim::Task litmusWorker(arch::System& sys, LitmusCtx& ctx,
                                     std::uint32_t idx);

}  // namespace colibri::litmus
