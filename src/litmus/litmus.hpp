// Litmus suite: classic concurrent algorithms run as coroutine kernels on
// the simulated memory system, with their correctness invariants checked
// after the run.
//
// The histogram-style self-checks (Σ increments, locks back to 0) verify
// that nothing was *lost*; the litmus suite verifies *semantics*: mutual
// exclusion (Dekker, Peterson, Lamport bakery, a test-and-set baseline),
// lost-update freedom under mixed LL/SC-vs-CAS increment races, and
// progress (every contender finishes its programmed entries before a
// watchdog horizon). A deliberately broken naive lock (load-check-then-
// store, no atomic RMW) is included so every run also proves the harness
// *detects* violations — a suite that cannot fail is not a suite.
//
// Memory-model note: the modeled cores post plain stores, and stores to
// different banks complete out of order relative to subsequent loads
// (see spinlock.hpp). The flag-based algorithms are therefore run with
// *acked* protocol writes by default (`fenced = true`, publishing via
// amoSwap — the simulator's analogue of the fence a real MemPool kernel
// needs between the flag store and the flag read). `fenced = false` posts
// them instead, which lets Dekker's store→load race actually happen — the
// suite uses it to prove the detector sees real reorderings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "sync/backoff.hpp"

namespace colibri::litmus {

enum class Algorithm : std::uint8_t {
  kDekker,        ///< Dekker's algorithm (2 contenders, flags + turn)
  kPeterson,      ///< Peterson's algorithm (2 contenders, flags + victim)
  kBakery,        ///< Lamport's bakery (N contenders, choosing + tickets)
  kTasLock,       ///< test-and-set spin lock baseline (adapter-matched TAS)
  kNaiveLock,     ///< BROKEN load-check-then-store lock — must be caught
  kIncrementRace, ///< mixed LL/SC-vs-CAS increments on one shared counter
};

[[nodiscard]] const char* toString(Algorithm a);

/// Registry entry: how a litmus algorithm may be instantiated and what its
/// expected behavior is.
struct AlgorithmInfo {
  Algorithm algo;
  std::string name;
  std::string description;
  std::uint32_t minContenders = 2;
  std::uint32_t maxContenders = 2;
  std::uint32_t defaultContenders = 2;
  /// True when the algorithm is expected to uphold exclusion/lost-update
  /// freedom (with fenced protocol writes); false for the broken naive
  /// lock, whose pass criterion is that the harness detects the violation.
  bool expectExclusion = true;
};

/// All litmus algorithms, in presentation order.
[[nodiscard]] const std::vector<AlgorithmInfo>& algorithms();

/// Look up by name ("dekker", "peterson", ...); nullptr if unknown.
[[nodiscard]] const AlgorithmInfo* findAlgorithm(const std::string& name);

/// The registry entry for an Algorithm value.
[[nodiscard]] const AlgorithmInfo& infoFor(Algorithm a);

struct LitmusParams {
  Algorithm algo = Algorithm::kDekker;
  /// Contending cores; clamped to the registry's [min, max] by validate().
  std::uint32_t contenders = 2;
  /// Critical-section entries (or successful increments) per contender.
  std::uint32_t iterations = 40;
  /// Acked (amoSwap) protocol writes; false posts them (see header note).
  bool fenced = true;
  /// Spread contenders across the core space (one per numCores/contenders
  /// stride) instead of packing them into tile 0 — remote placement widens
  /// the reorder window the flag algorithms must survive.
  bool spreadCores = true;
  std::uint32_t csCycles = 3;    ///< compute inside the critical section
  std::uint32_t pollCycles = 4;  ///< wait-loop poll pacing
  sync::BackoffPolicy backoff = sync::BackoffPolicy::fixed(32);
  /// Watchdog horizon: the stop flag flips here; contenders that had to
  /// abandon their loop fail the progress invariant.
  sim::Cycle watchdog = 2'000'000;
};

/// Everything one litmus run produced. A (config, params) pair reproduces
/// the result bit-for-bit.
struct LitmusResult {
  std::string algorithm;
  std::string adapter;
  std::uint32_t contenders = 0;
  std::uint64_t seed = 0;
  bool fenced = true;

  std::uint64_t entries = 0;          ///< completed CS entries / increments
  std::uint64_t expectedEntries = 0;  ///< contenders * iterations
  /// Overlap observations: the atomic occupancy probe saw another core
  /// inside the critical section at entry.
  std::uint64_t exclusionViolations = 0;
  /// Increments the shared counter lost (entries - final counter value).
  std::uint64_t lostUpdates = 0;
  std::vector<std::uint64_t> perCoreEntries;  ///< by contender index
  sim::Cycle finishedAt = 0;  ///< cycle the last contender completed

  /// Every contender completed all its entries before the watchdog.
  bool progressOk = false;

  [[nodiscard]] bool exclusionOk() const {
    return exclusionViolations == 0 && lostUpdates == 0;
  }
  /// All invariants held (the pass criterion for correct algorithms).
  [[nodiscard]] bool holds() const { return progressOk && exclusionOk(); }
  /// The harness observed a violation (the pass criterion for kNaiveLock).
  [[nodiscard]] bool violationDetected() const { return !exclusionOk(); }
};

}  // namespace colibri::litmus
