#include "litmus/litmus.hpp"

#include "sim/check.hpp"

namespace colibri::litmus {

const char* toString(Algorithm a) {
  switch (a) {
    case Algorithm::kDekker:
      return "dekker";
    case Algorithm::kPeterson:
      return "peterson";
    case Algorithm::kBakery:
      return "bakery";
    case Algorithm::kTasLock:
      return "tas";
    case Algorithm::kNaiveLock:
      return "naive";
    case Algorithm::kIncrementRace:
      return "race";
  }
  return "?";
}

const std::vector<AlgorithmInfo>& algorithms() {
  static const std::vector<AlgorithmInfo> kAlgorithms = {
      {Algorithm::kDekker, "dekker",
       "Dekker's algorithm: flags + turn word, 2 contenders", 2, 2, 2, true},
      {Algorithm::kPeterson, "peterson",
       "Peterson's algorithm: flags + victim word, 2 contenders", 2, 2, 2,
       true},
      {Algorithm::kBakery, "bakery",
       "Lamport's bakery: choosing flags + tickets, N contenders", 2, 16, 4,
       true},
      {Algorithm::kTasLock, "tas",
       "test-and-set spin lock baseline (adapter-matched TAS)", 2, 256, 8,
       true},
      {Algorithm::kNaiveLock, "naive",
       "BROKEN load-check-then-store lock: the harness must catch it", 2,
       256, 4, false},
      {Algorithm::kIncrementRace, "race",
       "mixed LL/SC-vs-CAS increments on one shared counter", 2, 256, 8,
       true},
  };
  return kAlgorithms;
}

const AlgorithmInfo* findAlgorithm(const std::string& name) {
  for (const auto& info : algorithms()) {
    if (info.name == name) {
      return &info;
    }
  }
  return nullptr;
}

const AlgorithmInfo& infoFor(Algorithm a) {
  for (const auto& info : algorithms()) {
    if (info.algo == a) {
      return info;
    }
  }
  COLIBRI_CHECK_MSG(false, "algorithm missing from registry");
  return algorithms().front();  // unreachable
}

}  // namespace colibri::litmus
