#include "litmus/harness.hpp"

#include <algorithm>
#include <utility>

#include "arch/system.hpp"
#include "exp/sweep.hpp"
#include "litmus/kernels.hpp"
#include "sim/check.hpp"
#include "workloads/harness.hpp"

namespace colibri::litmus {

namespace {

/// Adversarial placement for contender `i`'s protocol word: a bank in the
/// tile of the *next* contender, so the owner's protocol store travels the
/// interconnect while the neighbor's check loads locally — the widest
/// store->load reorder window the geometry offers. Fenced mode must
/// survive exactly this placement.
sim::Addr allocRemoteWord(arch::System& sys,
                          const std::vector<sim::CoreId>& coreOf,
                          std::uint32_t i, std::uint32_t salt) {
  auto& alloc = sys.allocator();
  const auto& cfg = sys.config();
  const auto n = static_cast<std::uint32_t>(coreOf.size());
  const auto neighborTile =
      static_cast<sim::TileId>(coreOf[(i + 1) % n] / cfg.coresPerTile);
  const auto bank = static_cast<sim::BankId>(
      neighborTile * cfg.banksPerTile + (salt % cfg.banksPerTile));
  return alloc.allocInBank(bank);
}

}  // namespace

LitmusResult runLitmus(arch::System& sys, const LitmusParams& params) {
  const auto& info = infoFor(params.algo);
  const auto& cfg = sys.config();
  COLIBRI_CHECK_MSG(params.iterations >= 1, "litmus: iterations must be >= 1");
  COLIBRI_CHECK_MSG(params.watchdog > 0, "litmus: watchdog must be > 0");
  COLIBRI_CHECK_MSG(params.contenders >= info.minContenders &&
                        params.contenders <= info.maxContenders,
                    "litmus: contender count outside the algorithm's range");
  COLIBRI_CHECK_MSG(params.contenders <= cfg.numCores,
                    "litmus: more contenders than cores");

  const auto n = params.contenders;
  LitmusCtx ctx;
  ctx.params = &params;
  ctx.rmwFlavor = workloads::rmwFlavorFor(cfg.adapter);
  ctx.casAvailable = cfg.adapter != arch::AdapterKind::kAmoOnly;
  ctx.casFlavor = ctx.casAvailable ? ctx.rmwFlavor : sync::RmwFlavor::kLrsc;
  ctx.lockKind = workloads::lockKindFor(cfg.adapter);
  ctx.perCoreEntries.assign(n, 0);

  // Contender -> core: spread across the core space (one per stride) so
  // contenders sit in different tiles/groups, or pack into tile 0.
  ctx.coreOf.resize(n);
  const auto stride = params.spreadCores ? std::max(1u, cfg.numCores / n) : 1u;
  for (std::uint32_t i = 0; i < n; ++i) {
    ctx.coreOf[i] = static_cast<sim::CoreId>(i * stride);
  }

  auto& alloc = sys.allocator();
  ctx.counter = alloc.allocGlobal(1);
  ctx.overlap = alloc.allocGlobal(1);
  ctx.turn = alloc.allocGlobal(1);
  ctx.lockWord = alloc.allocGlobal(1);
  sys.poke(ctx.counter, 0);
  sys.poke(ctx.overlap, 0);
  sys.poke(ctx.turn, 0);
  sys.poke(ctx.lockWord, 0);
  ctx.flags.resize(n);
  ctx.numbers.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ctx.flags[i] = allocRemoteWord(sys, ctx.coreOf, i, i);
    ctx.numbers[i] = allocRemoteWord(sys, ctx.coreOf, i, i + n);
    sys.poke(ctx.flags[i], 0);
    sys.poke(ctx.numbers[i], 0);
  }

  for (std::uint32_t i = 0; i < n; ++i) {
    sys.spawn(ctx.coreOf[i], litmusWorker(sys, ctx, i));
  }
  sys.at(params.watchdog, [&ctx] { ctx.stop = true; });
  sys.run();
  sys.rethrowFailures();
  COLIBRI_CHECK_MSG(sys.allTasksDone(), "litmus: workers failed to drain");

  LitmusResult r;
  r.algorithm = info.name;
  r.adapter = arch::toString(cfg.adapter);
  r.contenders = n;
  r.seed = cfg.seed;
  r.fenced = params.fenced;
  r.perCoreEntries = ctx.perCoreEntries;
  r.expectedEntries = static_cast<std::uint64_t>(n) * params.iterations;
  for (const auto e : ctx.perCoreEntries) {
    r.entries += e;
  }
  r.exclusionViolations = ctx.exclusionViolations;
  const std::uint64_t counterVal = sys.peek(ctx.counter);
  COLIBRI_CHECK_MSG(counterVal <= r.entries,
                    "litmus: phantom counter increments");
  COLIBRI_CHECK_MSG(sys.peek(ctx.overlap) == 0,
                    "litmus: unbalanced occupancy probe");
  r.lostUpdates = r.entries - counterVal;
  r.progressOk = r.entries == r.expectedEntries;
  r.finishedAt = ctx.lastDone;
  return r;
}

bool passes(const AlgorithmInfo& info, const LitmusResult& r) {
  if (info.expectExclusion) {
    return r.holds();
  }
  return r.violationDetected() && r.progressOk;
}

std::vector<MatrixCase> buildMatrix(const std::vector<std::uint64_t>& seeds,
                                    const arch::SystemConfig& base,
                                    std::uint32_t iterations) {
  std::vector<MatrixCase> cases;
  for (const auto& adapter : exp::adapters()) {
    for (const auto& info : algorithms()) {
      for (const auto seed : seeds) {
        MatrixCase c;
        c.adapter = adapter;
        c.params.algo = info.algo;
        c.params.contenders =
            std::min(info.defaultContenders, base.numCores);
        c.params.iterations = iterations;
        c.config = exp::configFor(adapter, 8, base);
        c.config.seed = seed;
        cases.push_back(std::move(c));
      }
    }
  }
  return cases;
}

std::vector<LitmusResult> runMatrix(const std::vector<MatrixCase>& cases,
                                    unsigned threads) {
  std::vector<std::function<LitmusResult()>> jobs;
  jobs.reserve(cases.size());
  for (const auto& c : cases) {
    jobs.emplace_back([c] {
      arch::System sys(c.config);
      auto r = runLitmus(sys, c.params);
      // Registry name, which distinguishes lrscwait from lrscwait_ideal
      // (both are AdapterKind::kLrscWait).
      r.adapter = c.adapter.name;
      return r;
    });
  }
  exp::SweepRunner runner(threads);
  return runner.map(std::move(jobs));
}

}  // namespace colibri::litmus
