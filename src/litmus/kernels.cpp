#include "litmus/kernels.hpp"

#include <algorithm>

#include "sim/co.hpp"
#include "sim/random.hpp"

namespace colibri::litmus {

namespace {

using arch::Core;

/// An ordering-sensitive protocol write: acked (amoSwap) in fenced mode so
/// it is globally visible before the next load; posted otherwise, which
/// re-opens the store->load race the flag algorithms assume away.
sim::Co<void> protocolStore(Core& core, const LitmusCtx& ctx, sim::Addr a,
                            sim::Word v) {
  if (ctx.params->fenced) {
    (void)co_await core.amoSwap(a, v);
  } else {
    (void)co_await core.store(a, v);
  }
}

/// The shared critical-section body: occupancy probe + non-atomic counter
/// increment (see header). Must only run while the contender believes it
/// holds the exclusion the algorithm under test provides.
sim::Co<void> criticalSection(Core& core, LitmusCtx& ctx) {
  const auto occ = co_await core.amoAdd(ctx.overlap, 1);
  if (occ.value != 0) {
    ++ctx.exclusionViolations;  // someone else was already inside
  }
  const auto v = co_await core.load(ctx.counter);
  co_await core.delay(ctx.params->csCycles);
  // Acked store so the increment is complete before we leave; the RMW as a
  // whole is still non-atomic — overlapping entries lose updates.
  (void)co_await core.amoSwap(ctx.counter, v.value + 1);
  (void)co_await core.amoAdd(ctx.overlap, static_cast<sim::Word>(-1));
}

// --- Dekker (2 contenders) ----------------------------------------------

sim::Co<bool> dekkerEnter(Core& core, LitmusCtx& ctx, std::uint32_t i) {
  const std::uint32_t j = 1 - i;
  co_await protocolStore(core, ctx, ctx.flags[i], 1);
  while (true) {
    if (ctx.stop) {
      co_await protocolStore(core, ctx, ctx.flags[i], 0);
      co_return false;
    }
    const auto other = co_await core.load(ctx.flags[j]);
    if (other.value == 0) {
      co_return true;
    }
    const auto t = co_await core.load(ctx.turn);
    if (t.value == j) {
      // Not our turn: step back, wait for the turn word, re-contend.
      co_await protocolStore(core, ctx, ctx.flags[i], 0);
      while (!ctx.stop) {
        const auto t2 = co_await core.load(ctx.turn);
        if (t2.value != j) {
          break;
        }
        co_await core.delay(ctx.params->pollCycles);
      }
      if (ctx.stop) {
        co_return false;
      }
      co_await protocolStore(core, ctx, ctx.flags[i], 1);
    } else {
      co_await core.delay(ctx.params->pollCycles);
    }
  }
}

sim::Co<void> dekkerExit(Core& core, LitmusCtx& ctx, std::uint32_t i) {
  co_await protocolStore(core, ctx, ctx.turn, 1 - i);
  co_await protocolStore(core, ctx, ctx.flags[i], 0);
}

// --- Peterson (2 contenders) ----------------------------------------------

sim::Co<bool> petersonEnter(Core& core, LitmusCtx& ctx, std::uint32_t i) {
  const std::uint32_t j = 1 - i;
  co_await protocolStore(core, ctx, ctx.flags[i], 1);
  co_await protocolStore(core, ctx, ctx.turn, j);  // "you first"
  while (!ctx.stop) {
    const auto fj = co_await core.load(ctx.flags[j]);
    if (fj.value == 0) {
      co_return true;
    }
    const auto t = co_await core.load(ctx.turn);
    if (t.value != j) {
      co_return true;
    }
    co_await core.delay(ctx.params->pollCycles);
  }
  co_await protocolStore(core, ctx, ctx.flags[i], 0);
  co_return false;
}

sim::Co<void> petersonExit(Core& core, LitmusCtx& ctx, std::uint32_t i) {
  co_await protocolStore(core, ctx, ctx.flags[i], 0);
}

// --- Lamport bakery (N contenders) ----------------------------------------

sim::Co<bool> bakeryEnter(Core& core, LitmusCtx& ctx, std::uint32_t i) {
  const auto n = static_cast<std::uint32_t>(ctx.numbers.size());
  // flags[] doubles as the bakery's choosing[] array.
  co_await protocolStore(core, ctx, ctx.flags[i], 1);
  sim::Word maxTicket = 0;
  for (std::uint32_t k = 0; k < n; ++k) {
    const auto v = co_await core.load(ctx.numbers[k]);
    maxTicket = std::max(maxTicket, v.value);
  }
  const sim::Word mine = maxTicket + 1;
  co_await protocolStore(core, ctx, ctx.numbers[i], mine);
  co_await protocolStore(core, ctx, ctx.flags[i], 0);
  for (std::uint32_t k = 0; k < n; ++k) {
    if (k == i) {
      continue;
    }
    while (!ctx.stop) {  // wait until k is done choosing
      const auto c = co_await core.load(ctx.flags[k]);
      if (c.value == 0) {
        break;
      }
      co_await core.delay(ctx.params->pollCycles);
    }
    while (!ctx.stop) {  // wait until (mine, i) has priority over (nk, k)
      const auto nk = co_await core.load(ctx.numbers[k]);
      if (nk.value == 0 || nk.value > mine ||
          (nk.value == mine && k > i)) {
        break;
      }
      co_await core.delay(ctx.params->pollCycles);
    }
    if (ctx.stop) {
      co_await protocolStore(core, ctx, ctx.numbers[i], 0);
      co_return false;
    }
  }
  co_return true;
}

sim::Co<void> bakeryExit(Core& core, LitmusCtx& ctx, std::uint32_t i) {
  co_await protocolStore(core, ctx, ctx.numbers[i], 0);
}

// --- TAS baseline / broken naive lock --------------------------------------

sim::Co<bool> naiveEnter(Core& core, LitmusCtx& ctx, sync::Backoff& backoff) {
  while (!ctx.stop) {
    const auto v = co_await core.load(ctx.lockWord);
    if (v.value == 0) {
      // Check-then-act without an atomic RMW: the load->store gap is the
      // bug this kernel exists to demonstrate.
      co_await protocolStore(core, ctx, ctx.lockWord, 1);
      co_return true;
    }
    co_await core.delay(backoff.next());
  }
  co_return false;
}

// --- Mixed LL/SC-vs-CAS increment race -------------------------------------

/// One successful increment of the shared counter: even contenders use the
/// adapter's fetch-and-add path, odd contenders a CAS retry loop — the two
/// must interoperate without losing updates (reservation-based CAS fails
/// on *any* intervening write, including the AMO adds).
sim::Co<bool> raceIncrement(Core& core, LitmusCtx& ctx, std::uint32_t idx,
                            sync::Backoff& backoff) {
  const bool useCas = ctx.casAvailable && (idx % 2 == 1);
  if (!useCas) {
    const auto r = co_await sync::fetchAdd(core, ctx.rmwFlavor, ctx.counter,
                                           1, backoff, &ctx.stop);
    co_return r.performed;
  }
  auto expected = (co_await core.load(ctx.counter)).value;
  while (!ctx.stop) {
    const auto r =
        co_await sync::compareAndSwap(core, ctx.casFlavor, ctx.counter,
                                      expected, expected + 1, backoff,
                                      &ctx.stop);
    if (r.swapped) {
      co_return true;
    }
    expected = r.observed;
    co_await core.delay(backoff.next());
  }
  co_return false;
}

}  // namespace

sim::Task litmusWorker(arch::System& sys, LitmusCtx& ctx, std::uint32_t idx) {
  auto& core = sys.core(ctx.coreOf[idx]);
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, core.id());
  sync::Backoff backoff(ctx.params->backoff, rng);
  const auto algo = ctx.params->algo;

  for (std::uint32_t it = 0; it < ctx.params->iterations; ++it) {
    if (ctx.stop) {
      break;
    }
    if (algo == Algorithm::kIncrementRace) {
      if (!co_await raceIncrement(core, ctx, idx, backoff)) {
        break;
      }
      ++ctx.perCoreEntries[idx];
    } else {
      bool entered = false;
      switch (algo) {
        case Algorithm::kDekker:
          entered = co_await dekkerEnter(core, ctx, idx);
          break;
        case Algorithm::kPeterson:
          entered = co_await petersonEnter(core, ctx, idx);
          break;
        case Algorithm::kBakery:
          entered = co_await bakeryEnter(core, ctx, idx);
          break;
        case Algorithm::kTasLock:
          co_await sync::acquireLock(core, ctx.lockKind, ctx.lockWord,
                                     backoff);
          entered = true;
          break;
        case Algorithm::kNaiveLock:
          entered = co_await naiveEnter(core, ctx, backoff);
          break;
        case Algorithm::kIncrementRace:
          break;  // handled above
      }
      if (!entered) {
        break;
      }
      co_await criticalSection(core, ctx);
      switch (algo) {
        case Algorithm::kDekker:
          co_await dekkerExit(core, ctx, idx);
          break;
        case Algorithm::kPeterson:
          co_await petersonExit(core, ctx, idx);
          break;
        case Algorithm::kBakery:
          co_await bakeryExit(core, ctx, idx);
          break;
        case Algorithm::kTasLock:
          co_await sync::releaseLock(core, ctx.lockWord);
          break;
        case Algorithm::kNaiveLock:
          co_await protocolStore(core, ctx, ctx.lockWord, 0);
          break;
        case Algorithm::kIncrementRace:
          break;
      }
      ++ctx.perCoreEntries[idx];
    }
    // Randomized think time varies the interleavings between iterations.
    co_await core.delay(1 + rng.below(2 * ctx.params->pollCycles + 1));
  }
  ctx.lastDone = std::max(ctx.lastDone, sys.now());
}

}  // namespace colibri::litmus
