// Plain-text table / CSV emission shared by the bench harnesses.
//
// Every bench prints the rows/series of one paper table or figure; the
// printer keeps the output aligned and greppable, and can mirror the rows
// to CSV for external plotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace colibri::report {

enum class Align { kLeft, kRight };

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& addRow(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  void printCsv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `prec` fractional digits.
[[nodiscard]] std::string fmt(double v, int prec = 3);
/// Format as "xN" speedup (e.g. "6.5x").
[[nodiscard]] std::string fmtSpeedup(double v);
/// Format a percentage.
[[nodiscard]] std::string fmtPercent(double v, int prec = 1);

/// Print a section banner ("=== Figure 3: ... ===").
void banner(std::ostream& os, const std::string& title);

}  // namespace colibri::report
