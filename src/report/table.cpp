#include "report/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/check.hpp"

namespace colibri::report {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::addRow(std::vector<std::string> cells) {
  COLIBRI_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    width[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) {
        os << "  ";
      }
      // First column (labels) left-aligned, numeric columns right-aligned.
      os << (i == 0 ? std::left : std::right)
         << std::setw(static_cast<int>(width[i])) << cells[i];
    }
    os << '\n';
  };
  line(headers_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < width.size(); ++i) {
    total += width[i] + (i == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    line(row);
  }
}

void Table::printCsv(std::ostream& os) const {
  // RFC 4180: cells containing a comma, quote, or newline are quoted,
  // with embedded quotes doubled. Plain cells stay bare.
  auto quoted = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      return cell;
    }
    std::string out = "\"";
    for (const char c : cell) {
      if (c == '"') {
        out += '"';
      }
      out += c;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i == 0 ? "" : ",") << quoted(cells[i]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::string fmt(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string fmtSpeedup(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << v << "x";
  return os.str();
}

std::string fmtPercent(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v << "%";
  return os.str();
}

void banner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace colibri::report
