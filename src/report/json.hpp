// Streaming JSON emission, the third output format beside the aligned
// table and CSV.
//
// JsonWriter is a structural writer: it tracks the object/array nesting,
// inserts commas and indentation, escapes strings per RFC 8259, and
// prints doubles round-trippably (max_digits10). Non-finite doubles
// become null — JSON has no NaN/Inf. The schema of what gets written
// lives with the callers (exp::writeJson for RunResult batches).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace colibri::report {

/// Escape a string for embedding in a JSON document (no surrounding
/// quotes).
[[nodiscard]] std::string jsonEscape(std::string_view s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indentWidth = 2);

  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Emit the key of the next object member. Must be followed by exactly
  /// one value / beginObject / beginArray.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v);
  JsonWriter& value(bool v);

  /// Shorthand: key + value.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// True once every opened object/array has been closed.
  [[nodiscard]] bool complete() const { return stack_.empty() && started_; }

 private:
  void beforeValue();
  void beforeContainerEnd();
  void newline();

  struct Level {
    bool isArray = false;
    bool empty = true;
  };

  std::ostream& os_;
  std::vector<Level> stack_;
  int indentWidth_;
  bool pendingKey_ = false;
  bool started_ = false;
};

}  // namespace colibri::report
