#include "report/json.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "sim/check.hpp"

namespace colibri::report {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& os, int indentWidth)
    : os_(os), indentWidth_(indentWidth) {}

void JsonWriter::newline() {
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * indentWidth_; ++i) {
    os_ << ' ';
  }
}

void JsonWriter::beforeValue() {
  if (pendingKey_) {
    pendingKey_ = false;
    return;  // the key already emitted the comma/indent
  }
  if (!stack_.empty()) {
    COLIBRI_CHECK_MSG(stack_.back().isArray,
                      "JsonWriter: object member without a key");
    if (!stack_.back().empty) {
      os_ << ',';
    }
    stack_.back().empty = false;
    newline();
  } else {
    COLIBRI_CHECK_MSG(!started_, "JsonWriter: multiple top-level values");
  }
  started_ = true;
}

void JsonWriter::beforeContainerEnd() {
  COLIBRI_CHECK_MSG(!pendingKey_, "JsonWriter: dangling key");
  COLIBRI_CHECK_MSG(!stack_.empty(), "JsonWriter: unbalanced end");
  const bool wasEmpty = stack_.back().empty;
  stack_.pop_back();
  if (!wasEmpty) {
    newline();
  }
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  os_ << '{';
  stack_.push_back({/*isArray=*/false, /*empty=*/true});
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  beforeContainerEnd();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  os_ << '[';
  stack_.push_back({/*isArray=*/true, /*empty=*/true});
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  beforeContainerEnd();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  COLIBRI_CHECK_MSG(!stack_.empty() && !stack_.back().isArray,
                    "JsonWriter: key outside an object");
  COLIBRI_CHECK_MSG(!pendingKey_, "JsonWriter: two keys in a row");
  if (!stack_.back().empty) {
    os_ << ',';
  }
  stack_.back().empty = false;
  newline();
  os_ << '"' << jsonEscape(k) << "\": ";
  pendingKey_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  beforeValue();
  os_ << '"' << jsonEscape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string_view(v));
}

JsonWriter& JsonWriter::value(double v) {
  beforeValue();
  if (!std::isfinite(v)) {
    os_ << "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g",
                std::numeric_limits<double>::max_digits10, v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  beforeValue();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint32_t v) {
  return value(static_cast<std::uint64_t>(v));
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  os_ << (v ? "true" : "false");
  return *this;
}

}  // namespace colibri::report
