// Experiment-layer tests: RunSpec/runOne dispatch, per-rep seed
// derivation, SweepRunner determinism (bit-identical results for any
// thread count, submission-order preservation, bounded concurrency),
// aggregate stats, and the JSON serialization.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "arch/system.hpp"
#include "exp/json.hpp"
#include "exp/run.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "report/json.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"
#include "wgen/presets.hpp"

namespace colibri::exp {
namespace {

constexpr workloads::MeasureWindow kTestWindow{200, 1000};

RunSpec histogramSpec(const std::string& adapterName, std::uint32_t bins) {
  const auto adapter = findAdapter(adapterName);
  EXPECT_TRUE(adapter.has_value()) << adapterName;
  RunSpec spec;
  spec.label = adapterName + "/histogram/" + std::to_string(bins);
  spec.config = configFor(*adapter, 8, arch::SystemConfig::smallTest());
  workloads::HistogramParams p;
  p.bins = bins;
  p.mode = histogramModeFor(*adapter);
  spec.params = p;
  spec.window = kTestWindow;
  return spec;
}

RunSpec queueSpec(const std::string& adapterName) {
  const auto adapter = findAdapter(adapterName);
  EXPECT_TRUE(adapter.has_value()) << adapterName;
  RunSpec spec;
  spec.label = adapterName + "/msqueue";
  spec.config = configFor(*adapter, 8, arch::SystemConfig::smallTest());
  workloads::QueueParams p;
  p.variant = queueVariantFor(*adapter);
  spec.params = p;
  spec.window = kTestWindow;
  return spec;
}

RunSpec wgenSpec(const std::string& adapterName, const char* presetName) {
  const auto adapter = findAdapter(adapterName);
  EXPECT_TRUE(adapter.has_value()) << adapterName;
  const auto* preset = wgen::findPreset(presetName);
  EXPECT_NE(preset, nullptr) << presetName;
  RunSpec spec;
  spec.label = adapterName + "/" + presetName;
  spec.workload = presetName;
  spec.config = configFor(*adapter, 8, arch::SystemConfig::smallTest());
  wgen::WgenParams p;
  p.kernel = preset->spec;
  spec.params = p;
  spec.window = kTestWindow;
  return spec;
}

/// The sweep suite: a mix of workloads and adapters, all on the 16-core
/// test geometry so the whole file stays fast.
std::vector<RunSpec> testSpecs() {
  std::vector<RunSpec> specs = {
      histogramSpec("colibri", 4),  histogramSpec("lrsc_single", 2),
      histogramSpec("amo", 8),      histogramSpec("lrscwait", 1),
      queueSpec("colibri"),         queueSpec("lrsc_single"),
      wgenSpec("colibri", "zipf_hot"),
  };
  return specs;
}

void expectBitIdentical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.rate.opsPerCycle, b.rate.opsPerCycle);  // exact, not NEAR
  EXPECT_EQ(a.rate.opsInWindow, b.rate.opsInWindow);
  EXPECT_EQ(a.rate.perCoreWindowOps, b.rate.perCoreWindowOps);
  EXPECT_EQ(a.rate.fairnessJain, b.rate.fairnessJain);
  EXPECT_EQ(a.rate.counters.instructions, b.rate.counters.instructions);
  EXPECT_EQ(a.rate.counters.bankAccesses, b.rate.counters.bankAccesses);
  EXPECT_EQ(a.rate.counters.sleepCycles, b.rate.counters.sleepCycles);
  EXPECT_EQ(a.rate.counters.netMessages, b.rate.counters.netMessages);
  EXPECT_EQ(a.verified, b.verified);
  EXPECT_EQ(a.energyPerOpPj, b.energyPerOpPj);
  EXPECT_EQ(a.opLatency.count, b.opLatency.count);
  EXPECT_EQ(a.opLatency.p99, b.opLatency.p99);
}

TEST(ExpRepSeed, RepZeroIsTheBaseSeed) {
  EXPECT_EQ(repSeed(0xC011B21, 0), 0xC011B21u);
  EXPECT_EQ(repSeed(42, 0), 42u);
}

TEST(ExpRepSeed, LaterRepsUseTheSplitmixStream) {
  const std::uint64_t base = 0xC011B21;
  // The documented derivation: splitmix64 of base ^ (golden-gamma * rep).
  std::uint64_t sm = base ^ (0x9e3779b97f4a7c15ULL * 3);
  EXPECT_EQ(repSeed(base, 3), sim::splitmix64(sm));

  std::vector<std::uint64_t> seen;
  for (std::uint32_t r = 0; r < 8; ++r) {
    const auto s = repSeed(base, r);
    for (const auto prev : seen) {
      EXPECT_NE(s, prev) << "rep " << r << " collided";
    }
    seen.push_back(s);
  }
}

TEST(ExpRunOne, MatchesADirectWorkloadRun) {
  const auto spec = histogramSpec("colibri", 4);
  const auto viaExp = runOne(spec);

  auto cfg = spec.config;
  cfg.seed = spec.seed;
  arch::System sys(cfg);
  auto p = std::get<workloads::HistogramParams>(spec.params);
  p.window = spec.window;
  const auto direct = workloads::runHistogram(sys, p);

  EXPECT_EQ(viaExp.rate.opsPerCycle, direct.rate.opsPerCycle);
  EXPECT_EQ(viaExp.rate.opsInWindow, direct.rate.opsInWindow);
  EXPECT_EQ(viaExp.rate.perCoreWindowOps, direct.rate.perCoreWindowOps);
  EXPECT_EQ(viaExp.verified, direct.sumVerified);
  EXPECT_EQ(viaExp.workload, "histogram");
}

TEST(ExpRunOne, WorkloadNameHonorsTheSpecOverride) {
  // QueueParams cannot distinguish msqueue-on-amo (kLock fallback) from
  // the ticket_queue scenario — the spec's explicit name must win.
  auto spec = queueSpec("amo");
  EXPECT_EQ(std::get<workloads::QueueParams>(spec.params).variant,
            workloads::QueueVariant::kLock);
  EXPECT_EQ(workloadNameFor(spec), "msqueue");
  spec.workload = "ticket_queue";
  EXPECT_EQ(workloadNameFor(spec), "ticket_queue");
  EXPECT_EQ(runOne(spec).workload, "ticket_queue");
}

TEST(ExpRunOne, ProdConsReportsTotalAndWindowItems) {
  const auto adapter = findAdapter("colibri");
  RunSpec spec;
  spec.config = configFor(*adapter, 8, arch::SystemConfig::smallTest());
  workloads::ProdConsParams p;
  p.producers = 4;
  p.consumers = 4;
  spec.params = p;
  spec.window = kTestWindow;
  const auto r = runOne(spec);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.rate.opsInWindow, 0u);
  // Total consumption includes warmup and the drain phase.
  EXPECT_GT(r.itemsConsumed, r.rate.opsInWindow);
  EXPECT_GT(r.rate.counters.instructions, 0u);
}

TEST(ExpRunOne, FillsModelOutputs) {
  const auto r = runOne(histogramSpec("colibri", 4));
  EXPECT_GT(r.tileAreaKge, 0.0);
  EXPECT_GT(r.averagePowerMw, 0.0);
  EXPECT_GT(r.energyPerOpPj, 0.0);
  EXPECT_NEAR(r.energy.totalPj() / static_cast<double>(r.rate.opsInWindow),
              r.energyPerOpPj, 1e-9);
}

TEST(ExpSweepRunner, BitIdenticalAcrossThreadCounts) {
  const auto specs = testSpecs();
  SweepRunner serial(1);
  SweepRunner wide(8);
  const auto a = serial.run(specs);
  const auto b = wide.run(specs);
  ASSERT_EQ(a.size(), specs.size());
  ASSERT_EQ(b.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_EQ(a[i].reps.size(), 1u);
    ASSERT_EQ(b[i].reps.size(), 1u);
    expectBitIdentical(a[i].primary(), b[i].primary());
  }
}

TEST(ExpSweepRunner, ResultsComeBackInSubmissionOrder) {
  const auto specs = testSpecs();
  SweepRunner runner(4);
  const auto swept = runner.run(specs);
  ASSERT_EQ(swept.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto individual = runOne(specs[i]);
    EXPECT_EQ(swept[i].primary().label, specs[i].label);
    expectBitIdentical(swept[i].primary(), individual);
  }
}

TEST(ExpSweepRunner, RepetitionsDeriveSeedsAndAggregate) {
  auto spec = histogramSpec("colibri", 4);
  spec.repetitions = 3;
  SweepRunner runner(4);
  const auto res = runner.run({spec}).front();
  ASSERT_EQ(res.reps.size(), 3u);

  std::vector<double> rates;
  for (std::uint32_t r = 0; r < 3; ++r) {
    EXPECT_EQ(res.reps[r].seed, repSeed(spec.seed, r));
    expectBitIdentical(res.reps[r], runOne(spec, r));
    rates.push_back(res.reps[r].rate.opsPerCycle);
  }
  // Distinct seeds should actually vary the measurement.
  EXPECT_NE(res.reps[0].seed, res.reps[1].seed);

  const auto stats = Stats::of(rates);
  EXPECT_EQ(res.opsPerCycle.n, 3u);
  EXPECT_DOUBLE_EQ(res.opsPerCycle.mean, stats.mean);
  EXPECT_DOUBLE_EQ(res.opsPerCycle.stddev, stats.stddev);
  EXPECT_LE(res.opsPerCycle.min, res.opsPerCycle.mean);
  EXPECT_LE(res.opsPerCycle.mean, res.opsPerCycle.max);
  EXPECT_TRUE(res.allVerified);
}

TEST(ExpSweepRunner, MapIsOrderPreservingAndBounded) {
  SweepRunner runner(3);
  EXPECT_EQ(runner.threads(), 3u);

  std::atomic<int> active{0};
  std::atomic<int> maxActive{0};
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 24; ++i) {
    jobs.push_back([i, &active, &maxActive] {
      const int now = ++active;
      int seen = maxActive.load();
      while (now > seen && !maxActive.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      --active;
      return i * i;
    });
  }
  const auto out = runner.map(std::move(jobs));
  ASSERT_EQ(out.size(), 24u);
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
  EXPECT_LE(maxActive.load(), 3) << "pool exceeded its thread bound";
  EXPECT_EQ(active.load(), 0);
}

TEST(ExpSweepRunner, DefaultPoolUsesHardwareConcurrency) {
  SweepRunner runner;
  EXPECT_GE(runner.threads(), 1u);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) {
    EXPECT_EQ(runner.threads(), hw);
  }
}

TEST(ExpSweepRunner, JobExceptionsAreRethrownAfterTheBatch) {
  SweepRunner runner(2);
  std::atomic<int> completed{0};
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back([i, &completed]() -> int {
      if (i == 3) {
        throw std::runtime_error("job 3 failed");
      }
      ++completed;
      return i;
    });
  }
  EXPECT_THROW((void)runner.map(std::move(jobs)), std::runtime_error);
  // The failing job must not have torn down the pool mid-batch.
  EXPECT_EQ(completed.load(), 7);
}

TEST(ExpStats, OfComputesSampleStatistics) {
  const auto s = Stats::of({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.2909944487358056, 1e-12);  // sqrt(5/3)
  EXPECT_EQ(s.n, 4u);

  const auto one = Stats::of({7.0});
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);

  const auto none = Stats::of({});
  EXPECT_EQ(none.n, 0u);
}

TEST(ExpJson, SerializesASweepAsValidJson) {
  auto spec = histogramSpec("colibri", 2);
  spec.repetitions = 2;
  const std::vector<RunSpec> specs = {spec, queueSpec("colibri"),
                                      wgenSpec("colibri", "hotspot1")};
  SweepRunner runner(2);
  const auto results = runner.run(specs);

  std::ostringstream os;
  writeJson(os, specs, results);
  const std::string json = os.str();

  EXPECT_TRUE(test::isValidJson(json)) << json;
  EXPECT_NE(json.find("\"schema\": \"colibri-exp-v2\""), std::string::npos);
  EXPECT_NE(json.find("\"aggregate\""), std::string::npos);
  EXPECT_NE(json.find("\"mean\""), std::string::npos);
  EXPECT_NE(json.find("\"stddev\""), std::string::npos);
  EXPECT_NE(json.find("\"msqueue\""), std::string::npos);
  // wgen runs (and only they) carry the per-op latency block.
  EXPECT_NE(json.find("\"opLatency\""), std::string::npos);
  EXPECT_NE(json.find("\"hotspot1\""), std::string::npos);
}

TEST(ExpJson, WriterEscapesAndBalances) {
  std::ostringstream os;
  report::JsonWriter w(os);
  w.beginObject();
  w.kv("quote\"back\\slash", "line\nbreak\ttab");
  w.key("nested").beginArray();
  w.value(1.5).value(false).value(std::uint64_t{18446744073709551615ULL});
  w.endArray();
  w.endObject();
  EXPECT_TRUE(w.complete());
  EXPECT_TRUE(test::isValidJson(os.str())) << os.str();
}

TEST(ExpScenario, HelpersMatchTheAdapterContract) {
  EXPECT_EQ(histogramModeFor(*findAdapter("colibri")),
            workloads::HistogramMode::kLrscWait);
  EXPECT_EQ(histogramModeFor(*findAdapter("amo")),
            workloads::HistogramMode::kAmoAdd);
  EXPECT_EQ(histogramModeFor(*findAdapter("lrsc_single")),
            workloads::HistogramMode::kLrsc);
  EXPECT_EQ(queueVariantFor(*findAdapter("amo")),
            workloads::QueueVariant::kLock);

  // configFor: ideal capacity tracks the core count; explicit q sticks.
  const auto base = arch::SystemConfig::smallTest();
  const auto ideal = configFor(*findAdapter("lrscwait_ideal"), 8, base);
  EXPECT_EQ(ideal.lrscWaitQueueCapacity, base.numCores);
  const auto q = configFor(*findAdapter("lrscwait"), 3, base);
  EXPECT_EQ(q.lrscWaitQueueCapacity, 3u);
  EXPECT_EQ(q.adapter, arch::AdapterKind::kLrscWait);
  const auto zero = configFor(*findAdapter("lrscwait"), 0, base);
  EXPECT_EQ(zero.lrscWaitQueueCapacity, base.numCores);
}

}  // namespace
}  // namespace colibri::exp
