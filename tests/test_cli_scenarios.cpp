// CLI driver tests: the scenario registry enumerates every adapter x
// workload pair, flag parsing surfaces usable errors, and a small
// end-to-end run through cli::runMain prints a result table.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cli/driver.hpp"
#include "cli/options.hpp"
#include "exp/scenario.hpp"
#include "test_util.hpp"
#include "wgen/presets.hpp"

namespace colibri::cli {
namespace {

using exp::adapters;
using exp::allScenarios;
using exp::findAdapter;
using exp::findScenario;
using exp::findWorkload;
using exp::workloads;

TEST(CliRegistry, EnumeratesAllAdapterWorkloadPairs) {
  const auto& as = adapters();
  const auto& ws = workloads();
  ASSERT_GE(as.size(), 6u);   // amo, lrsc_single, lrsc_table, lrscwait,
                              // lrscwait_ideal, colibri
  ASSERT_GE(ws.size(), 13u);  // histogram, msqueue, prodcons, matmul,
                              // ticket_queue + >= 8 wgen presets

  const auto scenarios = allScenarios();
  EXPECT_EQ(scenarios.size(), as.size() * ws.size());

  std::set<std::pair<std::string, std::string>> seen;
  for (const auto& s : scenarios) {
    seen.emplace(s.adapter.name, s.workload.name);
  }
  EXPECT_EQ(seen.size(), scenarios.size()) << "duplicate scenario pairs";
  for (const auto& a : as) {
    for (const auto& w : ws) {
      EXPECT_TRUE(seen.count({a.name, w.name}))
          << "missing scenario " << a.name << " x " << w.name;
    }
  }
}

TEST(CliRegistry, NamesMatchIssueSurface) {
  for (const char* name : {"amo", "lrsc_single", "lrsc_table", "lrscwait",
                           "lrscwait_ideal", "colibri"}) {
    EXPECT_TRUE(findAdapter(name).has_value()) << name;
  }
  for (const char* name :
       {"histogram", "msqueue", "prodcons", "matmul", "ticket_queue",
        "uniform_fa", "zipf_hot", "hotspot1", "readers_writers",
        "stride_fs", "mixed_cas", "burst", "lock_zipf"}) {
    EXPECT_TRUE(findWorkload(name).has_value()) << name;
  }
  EXPECT_FALSE(findAdapter("tsx").has_value());
  EXPECT_FALSE(findWorkload("raytracer").has_value());
}

TEST(CliRegistry, OnlyReservationNeedsOnAmoUnsupported) {
  for (const auto& s : allScenarios()) {
    bool expectUnsupported = false;
    if (s.adapter.name == "amo") {
      const auto* preset = wgen::findPreset(s.workload.name);
      expectUnsupported =
          s.workload.name == "prodcons" || s.workload.name == "hashtable" ||
          s.workload.name == "wsdeque" ||
          (preset != nullptr && wgen::needsReservations(preset->spec));
    }
    EXPECT_EQ(s.supported, !expectUnsupported)
        << s.adapter.name << " x " << s.workload.name;
  }
}

TEST(CliOptions, ParsesScenarioAndGeometryFlags) {
  const auto r = parseArgs({"--adapter", "lrscwait", "--workload", "msqueue",
                            "--cores", "64", "--wait-capacity=16",
                            "--measure", "5000", "--csv"});
  ASSERT_TRUE(r.ok()) << *r.error;
  EXPECT_EQ(r.options.adapter, "lrscwait");
  EXPECT_EQ(r.options.workload, "msqueue");
  EXPECT_EQ(r.options.cores, 64u);
  EXPECT_EQ(r.options.waitCapacity, 16u);
  EXPECT_EQ(r.options.measure, 5000u);
  EXPECT_TRUE(r.options.csv);
}

TEST(CliOptions, UnknownFlagFailsWithUsableError) {
  const auto r = parseArgs({"--frobnicate", "7"});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error->find("--frobnicate"), std::string::npos)
      << "error must name the offending flag: " << *r.error;
  EXPECT_NE(r.error->find("--help"), std::string::npos)
      << "error must point at --help: " << *r.error;
}

TEST(CliOptions, MissingAndMalformedValuesFail) {
  const auto missing = parseArgs({"--cores"});
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.error->find("--cores"), std::string::npos);

  const auto malformed = parseArgs({"--cores", "many"});
  ASSERT_FALSE(malformed.ok());
  EXPECT_NE(malformed.error->find("many"), std::string::npos);
}

TEST(CliDriver, NegativeAndMalformedEngineThreadsAreUsableErrors) {
  // --engine-threads parses into an unsigned count; "-4" must surface as
  // an invalid-value error, not wrap around to four billion workers.
  for (const char* bad : {"-4", "abc", "2x"}) {
    std::ostringstream out, err;
    EXPECT_EQ(runMain({"--engine-threads", bad}, out, err), 2) << bad;
    EXPECT_NE(err.str().find("invalid value"), std::string::npos)
        << bad << ": " << err.str();
    EXPECT_NE(err.str().find("--engine-threads"), std::string::npos)
        << bad << ": " << err.str();
  }
}

TEST(CliDriver, EngineThreadsAutoPrintsResolutionInTableModeOnly) {
  const std::vector<std::string> base = {
      "--workload", "histogram", "--cores",   "64",  "--tiles-per-group",
      "4",          "--warmup",  "200",       "--measure", "1000",
      "--engine-threads", "0"};
  {
    std::ostringstream out, err;
    ASSERT_EQ(runMain(base, out, err), 0) << err.str();
    EXPECT_NE(out.str().find("(auto"), std::string::npos)
        << "table mode must surface the resolved thread count: "
        << out.str();
  }
  // Machine outputs must stay host-independent: no resolved-count line.
  for (const char* flag : {"--csv", "--json"}) {
    auto args = base;
    args.emplace_back(flag);
    std::ostringstream out, err;
    ASSERT_EQ(runMain(args, out, err), 0) << err.str();
    EXPECT_EQ(out.str().find("auto"), std::string::npos) << flag;
    EXPECT_EQ(out.str().find("engine"), std::string::npos) << flag;
  }
}

TEST(CliDriver, StatsFlagPrintsCountersToStderrOnly) {
  auto run = [](bool stats, std::string& outStr, std::string& errStr) {
    std::vector<std::string> args = {
        "--workload", "histogram", "--cores",   "64",  "--tiles-per-group",
        "4",          "--warmup",  "200",       "--measure", "1000",
        "--engine-threads", "4"};
    if (stats) {
      args.emplace_back("--stats");
    }
    std::ostringstream out, err;
    const int rc = runMain(args, out, err);
    outStr = out.str();
    errStr = err.str();
    return rc;
  };
  std::string quietOut, quietErr, statsOut, statsErr;
  ASSERT_EQ(run(false, quietOut, quietErr), 0) << quietErr;
  ASSERT_EQ(run(true, statsOut, statsErr), 0) << statsErr;
  // stdout is byte-identical with and without --stats (golden-corpus and
  // CI byte gates depend on this).
  EXPECT_EQ(statsOut, quietOut);
  EXPECT_NE(statsErr.find("engine-stats:"), std::string::npos) << statsErr;
  EXPECT_NE(statsErr.find("frame-pool:"), std::string::npos) << statsErr;
  // The printed counters obey the barrier invariant: every window either
  // took its barrier merge or elided it.
  auto grab = [&statsErr](const char* key) {
    const auto pos = statsErr.find(key);
    EXPECT_NE(pos, std::string::npos) << key;
    return std::strtoull(statsErr.c_str() + pos + std::strlen(key), nullptr,
                         10);
  };
  const auto windows = grab("windows=");
  const auto taken = grab("barriers-taken=");
  const auto elided = grab("barriers-elided=");
  EXPECT_GT(windows, 0u);
  EXPECT_EQ(taken + elided, windows);
  // --stats also routes the metric registry to stderr: deterministic and
  // diagnostic metrics alike, as `obs: name = value` lines.
  EXPECT_NE(statsErr.find("obs: core.issuedOps = "), std::string::npos)
      << statsErr;
  EXPECT_NE(statsErr.find("obs: engine.windows = "), std::string::npos)
      << statsErr;
}

TEST(CliDriver, UnknownFlagExitsNonzeroViaMain) {
  std::ostringstream out, err;
  EXPECT_EQ(runMain({"--frobnicate"}, out, err), 2);
  EXPECT_NE(err.str().find("--frobnicate"), std::string::npos);
}

TEST(CliDriver, UnknownAdapterListsChoices) {
  std::ostringstream out, err;
  EXPECT_EQ(runMain({"--adapter", "tsx"}, out, err), 2);
  EXPECT_NE(err.str().find("colibri"), std::string::npos)
      << "error should list valid adapters: " << err.str();
}

TEST(CliDriver, BadGeometryIsAUsableError) {
  std::ostringstream out, err;
  EXPECT_EQ(runMain({"--cores", "10", "--cores-per-tile", "4"}, out, err), 2);
  EXPECT_NE(err.str().find("--cores"), std::string::npos) << err.str();
}

TEST(CliDriver, ListPrintsEveryScenario) {
  std::ostringstream out, err;
  EXPECT_EQ(runMain({"--list"}, out, err), 0);
  for (const auto& s : allScenarios()) {
    EXPECT_NE(out.str().find(s.adapter.name), std::string::npos);
    EXPECT_NE(out.str().find(s.workload.name), std::string::npos);
  }
}

TEST(CliDriver, HelpMentionsEveryFlagUsedInTests) {
  std::ostringstream out, err;
  EXPECT_EQ(runMain({"--help"}, out, err), 0);
  for (const char* flag : {"--adapter", "--workload", "--cores",
                           "--wait-capacity", "--measure", "--list",
                           "--json", "--reps", "--threads"}) {
    EXPECT_NE(out.str().find(flag), std::string::npos) << flag;
  }
}

TEST(CliDriver, SmallHistogramRunPrintsResultRow) {
  std::ostringstream out, err;
  const int rc = runMain({"--adapter", "colibri", "--workload", "histogram",
                          "--cores", "16", "--cores-per-tile", "4",
                          "--tiles-per-group", "2", "--banks-per-tile", "4",
                          "--words-per-bank", "64", "--bins", "4", "--warmup",
                          "500", "--measure", "2000"},
                         out, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("ops/cycle"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("colibri"), std::string::npos);
  EXPECT_NE(out.str().find("yes"), std::string::npos) << "sum not verified";
}

// Shared small-geometry prefix: 16 cores, short window, fast everywhere.
std::vector<std::string> smallRun(std::vector<std::string> extra) {
  std::vector<std::string> args{
      "--adapter",         "colibri", "--workload",      "histogram",
      "--cores",           "16",      "--cores-per-tile", "4",
      "--tiles-per-group", "2",       "--banks-per-tile", "4",
      "--words-per-bank",  "64",      "--bins",          "4",
      "--warmup",          "200",     "--measure",       "1000"};
  args.insert(args.end(), extra.begin(), extra.end());
  return args;
}

TEST(CliDriver, JsonRunEmitsValidJsonWithAggregates) {
  std::ostringstream out, err;
  const int rc = runMain(smallRun({"--json", "--reps", "3"}), out, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_TRUE(test::isValidJson(out.str())) << out.str();
  EXPECT_NE(out.str().find("\"aggregate\""), std::string::npos);
  EXPECT_NE(out.str().find("\"mean\""), std::string::npos);
  EXPECT_NE(out.str().find("\"repetitions\": 3"), std::string::npos);
}

TEST(CliDriver, JsonReportsTheRequestedWorkloadName) {
  // msqueue on amo runs the kLock fallback variant; the document must
  // still say "msqueue", not "ticket_queue".
  std::ostringstream out, err;
  const int rc = runMain(
      smallRun({"--adapter", "amo", "--workload", "msqueue", "--json"}), out,
      err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("\"workload\": \"msqueue\""), std::string::npos)
      << out.str();
}

TEST(CliDriver, RepsTableReportsAggregateColumns) {
  std::ostringstream out, err;
  const int rc = runMain(smallRun({"--reps", "3"}), out, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("stddev"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("reps"), std::string::npos);
}

TEST(CliDriver, SingleRepKeepsTheClassicColumns) {
  std::ostringstream out, err;
  EXPECT_EQ(runMain(smallRun({}), out, err), 0) << err.str();
  EXPECT_EQ(out.str().find("stddev"), std::string::npos)
      << "reps-only columns leaked into single-run output";
}

TEST(CliDriver, CsvAndJsonAreMutuallyExclusive) {
  std::ostringstream out, err;
  EXPECT_EQ(runMain(smallRun({"--csv", "--json"}), out, err), 2);
  EXPECT_NE(err.str().find("--csv"), std::string::npos) << err.str();
}

TEST(CliDriver, ZeroRepsIsAUsableError) {
  std::ostringstream out, err;
  EXPECT_EQ(runMain(smallRun({"--reps", "0"}), out, err), 2);
  EXPECT_NE(err.str().find("--reps"), std::string::npos) << err.str();
}

TEST(CliDriver, ThreadsFlagDoesNotChangeTheResult) {
  std::ostringstream out1, out2, err;
  EXPECT_EQ(runMain(smallRun({"--csv", "--threads", "1"}), out1, err), 0);
  EXPECT_EQ(runMain(smallRun({"--csv", "--threads", "8"}), out2, err), 0);
  EXPECT_EQ(out1.str(), out2.str())
      << "results must be thread-count independent";
}

TEST(CliDriver, UnsupportedScenarioFailsCleanly) {
  std::ostringstream out, err;
  const int rc =
      runMain({"--adapter", "amo", "--workload", "prodcons"}, out, err);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(err.str().find("not runnable"), std::string::npos) << err.str();
}

// ---- wgen presets through the CLI -----------------------------------------

TEST(CliWgen, PresetRunPrintsLatencyColumns) {
  std::ostringstream out, err;
  const int rc = runMain(smallRun({"--workload", "zipf_hot"}), out, err);
  EXPECT_EQ(rc, 0) << err.str();
  for (const char* col : {"lat-p50", "lat-p95", "lat-p99", "ops/cycle"}) {
    EXPECT_NE(out.str().find(col), std::string::npos) << col << "\n"
                                                      << out.str();
  }
  EXPECT_NE(out.str().find("yes"), std::string::npos) << "sum not verified";
}

TEST(CliWgen, ListShowsEveryPreset) {
  std::ostringstream out, err;
  EXPECT_EQ(runMain({"--list"}, out, err), 0);
  for (const auto& p : wgen::presets()) {
    EXPECT_NE(out.str().find(p.spec.name), std::string::npos)
        << p.spec.name;
  }
}

TEST(CliWgen, ThetaFlagChangesTheMeasurementDeterministically) {
  std::ostringstream flat1, flat2, sharp, err;
  const auto args = [](const char* theta) {
    return smallRun({"--workload", "zipf_hot", "--csv", "--zipf-theta",
                     theta});
  };
  EXPECT_EQ(runMain(args("0.0"), flat1, err), 0) << err.str();
  EXPECT_EQ(runMain(args("0.0"), flat2, err), 0);
  EXPECT_EQ(runMain(args("1.2"), sharp, err), 0);
  EXPECT_EQ(flat1.str(), flat2.str()) << "same flags must reproduce";
  EXPECT_NE(flat1.str(), sharp.str()) << "skew must change the result";
}

TEST(CliWgen, CasPresetOnAmoFailsCleanly) {
  std::ostringstream out, err;
  const int rc =
      runMain({"--adapter", "amo", "--workload", "mixed_cas"}, out, err);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(err.str().find("not runnable"), std::string::npos) << err.str();
}

TEST(CliWgen, HotFractionAboveOneIsAUsableError) {
  std::ostringstream out, err;
  EXPECT_EQ(runMain(smallRun({"--workload", "hotspot1", "--hot-fraction",
                              "1.5"}),
                    out, err),
            2);
  EXPECT_NE(err.str().find("--hot-fraction"), std::string::npos)
      << err.str();
}

TEST(CliWgen, JsonRunCarriesTheLatencyBlock) {
  std::ostringstream out, err;
  const int rc =
      runMain(smallRun({"--workload", "burst", "--json"}), out, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_TRUE(test::isValidJson(out.str())) << out.str();
  EXPECT_NE(out.str().find("\"opLatency\""), std::string::npos);
  EXPECT_NE(out.str().find("\"p99\""), std::string::npos);
  EXPECT_NE(out.str().find("\"workload\": \"burst\""), std::string::npos);
}

}  // namespace
}  // namespace colibri::cli
