// Address map, allocator and topology unit tests.
#include <gtest/gtest.h>

#include <set>

#include "arch/address.hpp"
#include "arch/topology.hpp"

namespace colibri::arch {
namespace {

SystemConfig cfg() { return SystemConfig::smallTest(); }  // 16 cores, 16 banks

TEST(AddressMap, WordInterleavingAcrossBanks) {
  AddressMap m(cfg());
  // Consecutive words land in consecutive banks.
  for (sim::Addr a = 0; a < 64; ++a) {
    EXPECT_EQ(m.bankOf(a), a % 16);
    EXPECT_EQ(m.offsetOf(a), a / 16);
  }
}

TEST(AddressMap, ComposeInvertsDecompose) {
  AddressMap m(cfg());
  for (sim::BankId b = 0; b < 16; ++b) {
    for (std::uint64_t off = 0; off < 8; ++off) {
      const sim::Addr a = m.compose(b, off);
      EXPECT_EQ(m.bankOf(a), b);
      EXPECT_EQ(m.offsetOf(a), off);
    }
  }
}

TEST(AddressMap, TileOfBankMatchesGeometry) {
  AddressMap m(cfg());  // 4 banks per tile
  EXPECT_EQ(m.tileOfBank(0), 0u);
  EXPECT_EQ(m.tileOfBank(3), 0u);
  EXPECT_EQ(m.tileOfBank(4), 1u);
  EXPECT_EQ(m.tileOfBank(15), 3u);
}

TEST(Allocator, GlobalRegionsDoNotOverlap) {
  Allocator alloc(cfg());
  const auto a = alloc.allocGlobal(10);
  const auto b = alloc.allocGlobal(10);
  EXPECT_GE(b, a + 10);
}

TEST(Allocator, LocalWordsLiveInTheRequestedTile) {
  Allocator alloc(cfg());
  for (sim::TileId t = 0; t < 4; ++t) {
    for (const auto a : alloc.allocLocal(t, 9)) {
      EXPECT_EQ(alloc.map().tileOf(a), t);
    }
  }
}

TEST(Allocator, LocalThenGlobalNeverCollide) {
  Allocator alloc(cfg());
  std::set<sim::Addr> seen;
  for (const auto a : alloc.allocLocal(2, 5)) {
    EXPECT_TRUE(seen.insert(a).second);
  }
  const auto base = alloc.allocGlobal(40);
  for (sim::Addr a = base; a < base + 40; ++a) {
    EXPECT_TRUE(seen.insert(a).second) << "collision at " << a;
  }
  for (const auto a : alloc.allocLocal(0, 5)) {
    EXPECT_TRUE(seen.insert(a).second) << "collision at " << a;
  }
}

TEST(Allocator, ExhaustionThrows) {
  auto c = cfg();  // 16 banks * 64 words = 1024 words
  Allocator alloc(c);
  (void)alloc.allocGlobal(1024);
  EXPECT_THROW((void)alloc.allocGlobal(1), sim::InvariantViolation);
}

TEST(Allocator, BankExhaustionThrows) {
  Allocator alloc(cfg());
  for (int i = 0; i < 64; ++i) {
    (void)alloc.allocInBank(0);
  }
  EXPECT_THROW((void)alloc.allocInBank(0), sim::InvariantViolation);
}

TEST(Topology, DistanceClasses) {
  Topology t(cfg());  // 4 cores/tile, 2 tiles/group, 4 banks/tile
  // Core 0 lives in tile 0, group 0.
  EXPECT_EQ(t.coreToBank(0, 0), Distance::kLocalTile);
  EXPECT_EQ(t.coreToBank(0, 3), Distance::kLocalTile);
  EXPECT_EQ(t.coreToBank(0, 4), Distance::kSameGroup);   // tile 1, group 0
  EXPECT_EQ(t.coreToBank(0, 8), Distance::kRemoteGroup);  // tile 2, group 1
  EXPECT_EQ(t.coreToBank(0, 15), Distance::kRemoteGroup);
}

TEST(Topology, GroupMembership) {
  Topology t(cfg());
  EXPECT_EQ(t.groupOfCore(0), 0u);
  EXPECT_EQ(t.groupOfCore(7), 0u);   // tile 1
  EXPECT_EQ(t.groupOfCore(8), 1u);   // tile 2
  EXPECT_EQ(t.groupOfCore(15), 1u);  // tile 3
}

TEST(Config, MemPoolGeometryMatchesPaper) {
  const auto c = SystemConfig::memPool();
  EXPECT_EQ(c.numCores, 256u);
  EXPECT_EQ(c.numTiles(), 64u);
  EXPECT_EQ(c.numGroups(), 4u);
  EXPECT_EQ(c.numBanks(), 1024u);
  // 1 MiB of L1: 1024 banks * 256 words * 4 B.
  EXPECT_EQ(c.numWords() * 4, 1u << 20);
}

TEST(Config, ValidateRejectsBadGeometry) {
  auto c = cfg();
  c.numCores = 10;  // not divisible by coresPerTile=4
  EXPECT_THROW(c.validate(), sim::InvariantViolation);
}

}  // namespace
}  // namespace colibri::arch
