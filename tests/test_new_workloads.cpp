// The three data-structure workloads added with the litmus suite: the
// lock-free hash table, the Chase-Lev work-stealing deque, and the
// spin-lock fairness study. Each must run and self-verify on every
// adapter that supports it, reject the AMO-only adapter where it needs
// reservations, produce bit-identical results on reruns, and be wired
// into the exp:: registry/dispatch like the original five workloads.
#include <gtest/gtest.h>

#include <string>

#include "arch/system.hpp"
#include "exp/run.hpp"
#include "exp/scenario.hpp"
#include "sim/check.hpp"
#include "workloads/hashtable.hpp"
#include "workloads/lockfair.hpp"
#include "workloads/wsdeque.hpp"

namespace colibri {
namespace {

const workloads::MeasureWindow kWindow{1000, 6000};

arch::SystemConfig smallConfigFor(const exp::AdapterSpec& adapter) {
  return exp::configFor(adapter, 8, arch::SystemConfig::smallTest());
}

exp::RunSpec specFor(const exp::AdapterSpec& adapter,
                     const exp::WorkloadParams& params) {
  exp::RunSpec spec;
  spec.label = adapter.name;
  spec.config = smallConfigFor(adapter);
  spec.params = params;
  spec.window = kWindow;
  return spec;
}

bool supportsCas(const exp::AdapterSpec& a) {
  return a.kind != arch::AdapterKind::kAmoOnly;
}

TEST(NewWorkloadRegistry, AllThreeRegisteredAndGated) {
  for (const char* name : {"hashtable", "wsdeque", "lockfair"}) {
    EXPECT_TRUE(exp::findWorkload(name).has_value()) << name;
  }
  for (const auto& s : exp::allScenarios()) {
    const bool needsCas =
        s.workload.name == "hashtable" || s.workload.name == "wsdeque";
    if (s.adapter.kind == arch::AdapterKind::kAmoOnly && needsCas) {
      EXPECT_FALSE(s.supported) << s.workload.name;
      EXPECT_FALSE(s.whyUnsupported.empty());
    } else if (s.workload.name == "lockfair") {
      EXPECT_TRUE(s.supported) << s.adapter.name;
    }
  }
}

TEST(HashTable, RunsAndVerifiesOnEveryCasAdapter) {
  for (const auto& adapter : exp::adapters()) {
    if (!supportsCas(adapter)) {
      continue;
    }
    const auto r = exp::runOne(specFor(adapter, workloads::HashTableParams{}));
    EXPECT_TRUE(r.verified) << adapter.name;
    EXPECT_EQ(r.workload, "hashtable") << adapter.name;
    EXPECT_GT(r.inserts, 0u) << adapter.name;
    EXPECT_LE(r.inserts, 128u) << adapter.name;  // 16 cores x 8-key budget
    EXPECT_GT(r.rate.opsInWindow, 0u) << adapter.name;
    if (adapter.waitCapable || adapter.kind == arch::AdapterKind::kColibri) {
      // Fast CAS adapters exhaust the whole insert budget well inside the
      // window and move on to lookups; the single-slot LR/SC adapter
      // spends the window fighting over reservations instead — which is
      // the contention story this workload exists to show.
      EXPECT_EQ(r.inserts, 128u) << adapter.name;
      EXPECT_GT(r.lookups, 0u) << adapter.name;
    }
  }
}

TEST(HashTable, RejectsTheAmoOnlyAdapter) {
  auto cfg = arch::SystemConfig::smallTest();
  cfg.adapter = arch::AdapterKind::kAmoOnly;
  arch::System sys(cfg);
  EXPECT_THROW((void)workloads::runHashTable(sys, {}),
               sim::InvariantViolation);
}

TEST(HashTable, RejectsBudgetsThatOverfillTheTable) {
  arch::System sys(arch::SystemConfig::smallTest());
  workloads::HashTableParams p;
  p.slots = 64;
  p.keysPerCore = 3;  // 16 cores * 3 keys > 32 = half the table
  EXPECT_THROW((void)workloads::runHashTable(sys, p),
               sim::InvariantViolation);
}

TEST(WsDeque, EveryTaskRunsExactlyOnceOnEveryCasAdapter) {
  for (const auto& adapter : exp::adapters()) {
    if (!supportsCas(adapter)) {
      continue;
    }
    arch::System sys(smallConfigFor(adapter));
    const auto r = workloads::runWsDeque(sys, {});
    EXPECT_TRUE(r.verified) << adapter.name;
    EXPECT_EQ(r.executed, 8u * 16u) << adapter.name;
    EXPECT_EQ(r.ownerPops + r.steals, r.executed) << adapter.name;
    EXPECT_EQ(r.duplicates, 0u) << adapter.name;
    EXPECT_GT(r.steals, 0u) << adapter.name;  // thieves actually win work
    EXPECT_GT(r.duration, 0u) << adapter.name;
  }
}

TEST(WsDeque, RejectsTheAmoOnlyAdapterAndSingleCoreRuns) {
  auto cfg = arch::SystemConfig::smallTest();
  cfg.adapter = arch::AdapterKind::kAmoOnly;
  arch::System sys(cfg);
  EXPECT_THROW((void)workloads::runWsDeque(sys, {}), sim::InvariantViolation);

  arch::System sys2(arch::SystemConfig::smallTest());
  workloads::WsDequeParams p;
  p.thieves = 16;  // only 15 spare cores on smallTest
  EXPECT_THROW((void)workloads::runWsDeque(sys2, p), sim::InvariantViolation);
}

TEST(LockFair, HoldsExclusionAndMeasuresTheSpreadOnEveryAdapter) {
  for (const auto& adapter : exp::adapters()) {
    const auto r = exp::runOne(specFor(adapter, workloads::LockFairParams{}));
    EXPECT_TRUE(r.verified) << adapter.name;
    EXPECT_EQ(r.workload, "lockfair") << adapter.name;
    EXPECT_GT(r.rate.opsInWindow, 0u) << adapter.name;
    // The spread summary covers all 16 participants; the handoff latency
    // distribution has one sample per window acquisition.
    EXPECT_EQ(r.acqSpread.count, 16u) << adapter.name;
    EXPECT_EQ(r.opLatency.count, r.rate.opsInWindow) << adapter.name;
    EXPECT_GE(r.acqSpread.max, r.acqSpread.min) << adapter.name;
  }
}

TEST(NewWorkloadDeterminism, RerunsAreBitIdentical) {
  for (const auto& adapter : exp::adapters()) {
    if (!supportsCas(adapter)) {
      continue;
    }
    for (const char* workload : {"hashtable", "wsdeque", "lockfair"}) {
      exp::WorkloadParams params;
      if (std::string(workload) == "hashtable") {
        params = workloads::HashTableParams{};
      } else if (std::string(workload) == "wsdeque") {
        params = workloads::WsDequeParams{};
      } else {
        params = workloads::LockFairParams{};
      }
      const auto spec = specFor(adapter, params);
      const auto a = exp::runOne(spec);
      const auto b = exp::runOne(spec);
      const std::string what = std::string(adapter.name) + "/" + workload;
      EXPECT_EQ(a.rate.opsInWindow, b.rate.opsInWindow) << what;
      EXPECT_EQ(a.rate.perCoreWindowOps, b.rate.perCoreWindowOps) << what;
      EXPECT_EQ(a.duration, b.duration) << what;
      EXPECT_EQ(a.inserts, b.inserts) << what;
      EXPECT_EQ(a.steals, b.steals) << what;
      EXPECT_EQ(a.opLatency.p99, b.opLatency.p99) << what;
    }
  }
}

TEST(NewWorkloadDeterminism, RepSeedsChangeTheInterleaving) {
  // Repetition 1 must actually run a different schedule than rep 0 —
  // otherwise --reps aggregates N copies of the same number.
  const auto& adapter = exp::adapters().back();  // colibri
  auto spec = specFor(adapter, workloads::LockFairParams{});
  const auto a = exp::runOne(spec, 0);
  const auto b = exp::runOne(spec, 1);
  EXPECT_NE(a.seed, b.seed);
  EXPECT_NE(a.rate.perCoreWindowOps, b.rate.perCoreWindowOps);
}

}  // namespace
}  // namespace colibri
