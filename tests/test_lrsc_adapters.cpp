// LR/SC baseline adapters: single-slot (MemPool) and per-core table (ATUN).
#include <gtest/gtest.h>

#include "atomics/lrsc_single.hpp"
#include "atomics/lrsc_table.hpp"
#include "mock_bank.hpp"

namespace colibri::test {
namespace {

TEST(LrscSingle, PlainPairSucceeds) {
  MockBank bank;
  atomics::LrscSingleAdapter a(bank);
  bank.writeRaw(3, 41);
  a.handle(lr(3, 0));
  EXPECT_EQ(bank.take().resp.value, 41u);
  a.handle(sc(3, 42, 0));
  EXPECT_TRUE(bank.take().resp.ok);
  EXPECT_EQ(bank.read(3), 42u);
}

TEST(LrscSingle, BusySlotIsNotStolenByAnotherLr) {
  MockBank bank;
  atomics::LrscSingleAdapter a(bank);
  a.handle(lr(3, 0));
  a.handle(lr(3, 1));  // slot busy: core 1 reads the value, no reservation
  EXPECT_EQ(a.slotOwner(), 0u);
  bank.responses.clear();
  a.handle(sc(3, 8, 1));
  EXPECT_FALSE(bank.take().resp.ok);  // core 1 never had the slot
  a.handle(sc(3, 7, 0));
  EXPECT_TRUE(bank.take().resp.ok);  // the owner succeeds
  EXPECT_EQ(bank.read(3), 7u);
}

TEST(LrscSingle, SlotFreesAfterOwnersScForNextLr) {
  MockBank bank;
  atomics::LrscSingleAdapter a(bank);
  a.handle(lr(3, 0));
  a.handle(sc(3, 1, 0));
  bank.responses.clear();
  a.handle(lr(3, 1));  // slot free again
  EXPECT_EQ(a.slotOwner(), 1u);
  a.handle(sc(3, 2, 1));
  bank.responses.clear();
  EXPECT_EQ(bank.read(3), 2u);
}

TEST(LrscSingle, ReLrByOwnerMovesReservation) {
  MockBank bank;
  atomics::LrscSingleAdapter a(bank);
  a.handle(lr(3, 0));
  a.handle(lr(4, 0));  // the owner re-reserves elsewhere
  bank.responses.clear();
  a.handle(sc(4, 7, 0));
  EXPECT_TRUE(bank.take().resp.ok);
  EXPECT_EQ(bank.read(4), 7u);
}

TEST(LrscSingle, StoreInvalidatesReservation) {
  MockBank bank;
  atomics::LrscSingleAdapter a(bank);
  a.handle(lr(3, 0));
  a.handle(store(3, 9, 1));
  bank.responses.clear();
  a.handle(sc(3, 7, 0));
  EXPECT_FALSE(bank.take().resp.ok);
  EXPECT_EQ(bank.read(3), 9u);  // the store's value survived
}

TEST(LrscSingle, StoreToOtherAddressKeepsReservation) {
  MockBank bank;
  atomics::LrscSingleAdapter a(bank);
  a.handle(lr(3, 0));
  a.handle(store(4, 9, 1));
  bank.responses.clear();
  a.handle(sc(3, 7, 0));
  EXPECT_TRUE(bank.take().resp.ok);
}

TEST(LrscSingle, ScWithoutReservationFails) {
  MockBank bank;
  atomics::LrscSingleAdapter a(bank);
  a.handle(sc(3, 7, 0));
  EXPECT_FALSE(bank.take().resp.ok);
  EXPECT_EQ(bank.read(3), 0u);
}

TEST(LrscSingle, ScConsumesReservation) {
  MockBank bank;
  atomics::LrscSingleAdapter a(bank);
  a.handle(lr(3, 0));
  bank.responses.clear();
  a.handle(sc(3, 7, 0));
  EXPECT_TRUE(bank.take().resp.ok);
  a.handle(sc(3, 8, 0));  // second SC: reservation gone
  EXPECT_FALSE(bank.take().resp.ok);
  EXPECT_EQ(bank.read(3), 7u);
}

TEST(LrscSingle, ScToDifferentAddressFails) {
  MockBank bank;
  atomics::LrscSingleAdapter a(bank);
  a.handle(lr(3, 0));
  bank.responses.clear();
  a.handle(sc(5, 7, 0));
  EXPECT_FALSE(bank.take().resp.ok);
}

TEST(LrscTable, ConcurrentReservationsCoexist) {
  MockBank bank;
  atomics::LrscTableAdapter a(bank);
  a.handle(lr(3, 0));
  a.handle(lr(3, 1));  // does NOT evict core 0 (per-core table)
  bank.responses.clear();
  a.handle(sc(3, 7, 0));
  EXPECT_TRUE(bank.take().resp.ok);  // core 0 wins the round
  a.handle(sc(3, 8, 1));
  EXPECT_FALSE(bank.take().resp.ok);  // core 1's reservation was killed
  EXPECT_EQ(bank.read(3), 7u);
}

TEST(LrscTable, ReservationsOnDifferentAddressesIndependent) {
  MockBank bank;
  atomics::LrscTableAdapter a(bank);
  a.handle(lr(3, 0));
  a.handle(lr(4, 1));
  bank.responses.clear();
  a.handle(sc(3, 7, 0));
  a.handle(sc(4, 8, 1));
  EXPECT_TRUE(bank.take().resp.ok);
  EXPECT_TRUE(bank.take().resp.ok);
}

TEST(LrscTable, StoreInvalidatesAllReservationsOnAddress) {
  MockBank bank;
  atomics::LrscTableAdapter a(bank);
  a.handle(lr(3, 0));
  a.handle(lr(3, 1));
  a.handle(store(3, 1, 2));
  bank.responses.clear();
  a.handle(sc(3, 7, 0));
  a.handle(sc(3, 8, 1));
  EXPECT_FALSE(bank.take().resp.ok);
  EXPECT_FALSE(bank.take().resp.ok);
}

TEST(LrscTable, ScFailureConsumesOwnReservation) {
  MockBank bank;
  atomics::LrscTableAdapter a(bank);
  a.handle(lr(4, 1));
  bank.responses.clear();
  a.handle(sc(3, 7, 1));  // wrong address
  EXPECT_FALSE(bank.take().resp.ok);
  a.handle(sc(4, 9, 1));  // the failed SC cleared the table entry
  EXPECT_FALSE(bank.take().resp.ok);
}

TEST(LrscTable, TracksSuccessAndFailureCounts) {
  MockBank bank;
  atomics::LrscTableAdapter a(bank);
  a.handle(lr(3, 0));
  a.handle(lr(3, 1));
  a.handle(sc(3, 7, 0));
  a.handle(sc(3, 8, 1));
  EXPECT_EQ(a.stats().lrGrants, 2u);
  EXPECT_EQ(a.stats().scSuccesses, 1u);
  EXPECT_EQ(a.stats().scFailures, 1u);
}

}  // namespace
}  // namespace colibri::test
