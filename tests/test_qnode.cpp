// Qnode state-machine tests, including the SuccessorUpdate-after-SCwait
// bounce race of Section IV-A.1.
#include <gtest/gtest.h>

#include <vector>

#include "atomics/qnode.hpp"

namespace colibri::atomics {
namespace {

struct SentWakeUp {
  CoreId successor;
  bool isMwait;
  sim::Addr addr;
};

class QnodeTest : public ::testing::Test {
 protected:
  QnodeTest() : q(/*core=*/0) {
    q.setWakeUpSender([this](CoreId s, bool m, sim::Addr a) {
      sent.push_back({s, m, a});
    });
  }
  Qnode q;
  std::vector<SentWakeUp> sent;
};

TEST_F(QnodeTest, StartsIdle) {
  EXPECT_EQ(q.state(), Qnode::State::kIdle);
  EXPECT_FALSE(q.hasSuccessor());
}

TEST_F(QnodeTest, ScwaitWithKnownSuccessorDispatchesImmediately) {
  q.onWaitIssued(5, false);
  q.onSuccessorUpdate(3, false);
  q.onScWaitIssued();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].successor, 3u);
  EXPECT_EQ(sent[0].addr, 5u);
  EXPECT_EQ(q.state(), Qnode::State::kIdle);
  // The late SCwait response (successor pending) is a no-op.
  q.onScWaitResponse(/*lastInQueue=*/false);
  EXPECT_EQ(q.state(), Qnode::State::kIdle);
}

TEST_F(QnodeTest, ScwaitWithoutSuccessorOwesWakeup) {
  q.onWaitIssued(5, false);
  q.onScWaitIssued();
  EXPECT_EQ(q.state(), Qnode::State::kOwesWakeup);
  EXPECT_TRUE(sent.empty());
}

TEST_F(QnodeTest, LateSuccessorUpdateBouncesAsWakeUp) {
  q.onWaitIssued(5, false);
  q.onScWaitIssued();
  q.onSuccessorUpdate(7, true);  // arrives after the SCwait passed
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].successor, 7u);
  EXPECT_TRUE(sent[0].isMwait);
  EXPECT_EQ(q.state(), Qnode::State::kIdle);
}

TEST_F(QnodeTest, LastInQueueResponseResets) {
  q.onWaitIssued(5, false);
  q.onScWaitIssued();
  q.onScWaitResponse(/*lastInQueue=*/true);
  EXPECT_EQ(q.state(), Qnode::State::kIdle);
  EXPECT_TRUE(sent.empty());
}

TEST_F(QnodeTest, PendingResponseKeepsOwingUntilUpdate) {
  q.onWaitIssued(5, false);
  q.onScWaitIssued();
  q.onScWaitResponse(/*lastInQueue=*/false);
  EXPECT_EQ(q.state(), Qnode::State::kOwesWakeup);
  q.onSuccessorUpdate(2, false);
  EXPECT_EQ(sent.size(), 1u);
  EXPECT_EQ(q.state(), Qnode::State::kIdle);
}

TEST_F(QnodeTest, FailedLrwaitAdmissionResets) {
  q.onWaitIssued(5, false);
  q.onLrWaitResponse(/*admitted=*/false);
  EXPECT_EQ(q.state(), Qnode::State::kIdle);
}

TEST_F(QnodeTest, GrantedLrwaitStaysQueued) {
  q.onWaitIssued(5, false);
  q.onLrWaitResponse(/*admitted=*/true);
  EXPECT_EQ(q.state(), Qnode::State::kQueued);
}

TEST_F(QnodeTest, MwaitLastResponseResetsSilently) {
  q.onWaitIssued(5, true);
  q.onMwaitResponse(/*admitted=*/true, /*lastInQueue=*/true);
  EXPECT_EQ(q.state(), Qnode::State::kIdle);
  EXPECT_TRUE(sent.empty());
}

TEST_F(QnodeTest, MwaitResponseWithSuccessorCascades) {
  q.onWaitIssued(5, true);
  q.onSuccessorUpdate(4, true);
  q.onMwaitResponse(true, /*lastInQueue=*/false);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].successor, 4u);
  EXPECT_EQ(q.state(), Qnode::State::kIdle);
}

TEST_F(QnodeTest, MwaitResponseWithoutSuccessorOwesWakeup) {
  q.onWaitIssued(5, true);
  q.onMwaitResponse(true, /*lastInQueue=*/false);
  EXPECT_EQ(q.state(), Qnode::State::kOwesWakeup);
  q.onSuccessorUpdate(4, false);
  EXPECT_EQ(sent.size(), 1u);
}

TEST_F(QnodeTest, MwaitAdmissionFailureResets) {
  q.onWaitIssued(5, true);
  q.onMwaitResponse(/*admitted=*/false, false);
  EXPECT_EQ(q.state(), Qnode::State::kIdle);
}

TEST_F(QnodeTest, DoubleWaitTripsInvariant) {
  q.onWaitIssued(5, false);
  EXPECT_THROW(q.onWaitIssued(6, false), sim::InvariantViolation);
}

TEST_F(QnodeTest, SuccessorUpdateToIdleTripsInvariant) {
  EXPECT_THROW(q.onSuccessorUpdate(1, false), sim::InvariantViolation);
}

TEST_F(QnodeTest, ScwaitWithoutWaitTripsInvariant) {
  EXPECT_THROW(q.onScWaitIssued(), sim::InvariantViolation);
}

TEST_F(QnodeTest, ReusableAcrossEpisodes) {
  for (int i = 0; i < 3; ++i) {
    q.onWaitIssued(5, false);
    q.onLrWaitResponse(true);
    q.onScWaitIssued();
    q.onScWaitResponse(true);
    EXPECT_EQ(q.state(), Qnode::State::kIdle);
  }
  EXPECT_TRUE(sent.empty());
}

}  // namespace
}  // namespace colibri::atomics
