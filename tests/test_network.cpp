// Network model tests: distance latencies, FIFO-per-pair delivery, link
// contention, statistics.
#include <gtest/gtest.h>

#include <vector>

#include "arch/network.hpp"
#include "sim/engine.hpp"

namespace colibri::arch {
namespace {

SystemConfig cfg() { return SystemConfig::smallTest(); }

TEST(Network, LocalTileLatency) {
  sim::Engine e;
  Network n(e, cfg());
  sim::Cycle arrived = 0;
  n.coreToBank(0, 0, [&] { arrived = e.now(); });  // core 0, bank 0: tile 0
  e.run();
  EXPECT_EQ(arrived, cfg().latLocalTile);
}

TEST(Network, SameGroupLatency) {
  sim::Engine e;
  Network n(e, cfg());
  sim::Cycle arrived = 0;
  n.coreToBank(0, 4, [&] { arrived = e.now(); });  // tile 0 -> tile 1
  e.run();
  EXPECT_EQ(arrived, cfg().latSameGroup);
}

TEST(Network, RemoteGroupLatency) {
  sim::Engine e;
  Network n(e, cfg());
  sim::Cycle arrived = 0;
  n.coreToBank(0, 12, [&] { arrived = e.now(); });  // group 0 -> group 1
  e.run();
  EXPECT_EQ(arrived, cfg().latRemoteGroup);
}

TEST(Network, ResponsePathMirrorsLatency) {
  sim::Engine e;
  Network n(e, cfg());
  sim::Cycle arrived = 0;
  n.bankToCore(12, 0, [&] { arrived = e.now(); });
  e.run();
  EXPECT_EQ(arrived, cfg().latRemoteGroup);
}

TEST(Network, SamePairDeliveryIsFifo) {
  sim::Engine e;
  Network n(e, cfg());
  std::vector<int> order;
  // Saturate the link so queueing occurs, then check arrival order.
  for (int i = 0; i < 40; ++i) {
    n.coreToBank(0, 12, [&order, i] { order.push_back(i); });
  }
  e.run();
  ASSERT_EQ(order.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Network, GroupLinkLimitsThroughput) {
  auto c = cfg();
  c.groupLinkBandwidth = 1;
  sim::Engine e;
  Network n(e, c);
  std::vector<sim::Cycle> arrivals;
  for (int i = 0; i < 8; ++i) {
    n.coreToBank(0, 12, [&] { arrivals.push_back(e.now()); });
  }
  e.run();
  // With bandwidth 1, one message clears the link per cycle.
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i] - arrivals[i - 1], 1u);
  }
  EXPECT_GT(n.linkQueueingDelay(), 0u);
}

TEST(Network, LocalTileBypassesSharedLinks) {
  auto c = cfg();
  c.groupLinkBandwidth = 1;
  c.localGroupBandwidth = 1;
  sim::Engine e;
  Network n(e, c);
  std::vector<sim::Cycle> arrivals;
  for (int i = 0; i < 8; ++i) {
    n.coreToBank(0, 0, [&] { arrivals.push_back(e.now()); });
  }
  e.run();
  // All local-tile messages arrive together: no shared stage.
  for (const auto a : arrivals) {
    EXPECT_EQ(a, c.latLocalTile);
  }
}

TEST(Network, CountsMessagesByDistance) {
  sim::Engine e;
  Network n(e, cfg());
  n.coreToBank(0, 0, [] {});
  n.coreToBank(0, 4, [] {});
  n.coreToBank(0, 12, [] {});
  n.coreToBank(0, 12, [] {});
  e.run();
  const auto& s = n.stats();
  EXPECT_EQ(s.messagesByDistance[0], 1u);
  EXPECT_EQ(s.messagesByDistance[1], 1u);
  EXPECT_EQ(s.messagesByDistance[2], 2u);
  EXPECT_EQ(s.totalMessages, 4u);
  n.resetStats();
  EXPECT_EQ(n.stats().totalMessages, 0u);
}

// Property: messages injected in the same cycle on different pairs never
// violate per-pair order even under heavy cross traffic.
TEST(Network, CrossTrafficPreservesPerPairOrder) {
  auto c = cfg();
  c.groupLinkBandwidth = 2;
  sim::Engine e;
  Network n(e, c);
  std::vector<int> pairA;
  std::vector<int> pairB;
  for (int i = 0; i < 20; ++i) {
    n.coreToBank(0, 12, [&pairA, i] { pairA.push_back(i); });
    n.coreToBank(1, 13, [&pairB, i] { pairB.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(pairA[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(pairB[static_cast<std::size_t>(i)], i);
  }
}

}  // namespace
}  // namespace colibri::arch
