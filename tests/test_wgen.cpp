// Workload-generator tests: the KernelSpec grammar (validation, role
// assignment, Zipf CDF), region resolution on a System, the self-checking
// kernel runner for every preset, determinism (bit-identical results
// across SweepRunner thread counts and across reruns with one seed), and
// the InlineEvent zero-allocation property over a full generated run.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "arch/system.hpp"
#include "exp/run.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "sim/check.hpp"
#include "sim/event.hpp"
#include "wgen/kernel.hpp"
#include "wgen/presets.hpp"

namespace colibri::wgen {
namespace {

constexpr workloads::MeasureWindow kTestWindow{200, 1000};

exp::RunSpec presetSpec(const std::string& adapterName,
                        const std::string& presetName) {
  const auto adapter = exp::findAdapter(adapterName);
  EXPECT_TRUE(adapter.has_value()) << adapterName;
  const auto* preset = findPreset(presetName);
  EXPECT_NE(preset, nullptr) << presetName;
  exp::RunSpec spec;
  spec.label = adapterName + "/" + presetName;
  spec.workload = presetName;
  spec.config = exp::configFor(*adapter, 8, arch::SystemConfig::smallTest());
  WgenParams p;
  p.kernel = preset->spec;
  spec.params = p;
  spec.window = kTestWindow;
  return spec;
}

TEST(WgenPresets, AtLeastEightRegisteredAndValid) {
  ASSERT_GE(presets().size(), 8u);
  for (const auto& p : presets()) {
    EXPECT_FALSE(p.spec.name.empty());
    EXPECT_FALSE(p.description.empty());
    EXPECT_NO_THROW(validate(p.spec)) << p.spec.name;
  }
  for (const char* name : {"uniform_fa", "zipf_hot", "hotspot1",
                           "readers_writers", "stride_fs", "mixed_cas",
                           "burst", "lock_zipf"}) {
    EXPECT_NE(findPreset(name), nullptr) << name;
  }
  EXPECT_EQ(findPreset("no_such_preset"), nullptr);
}

TEST(WgenPresets, AllAreRegistryWorkloads) {
  for (const auto& p : presets()) {
    EXPECT_TRUE(exp::findWorkload(p.spec.name).has_value()) << p.spec.name;
  }
}

TEST(WgenSpec, ValidationCatchesMalformedKernels) {
  KernelSpec s;
  s.name = "bad";
  EXPECT_THROW(validate(s), sim::InvariantViolation);  // no regions/roles
  s.regions = {Region{}};
  s.roles = {Role{"r", 1.0, {Phase{.region = 7}}}};
  EXPECT_THROW(validate(s), sim::InvariantViolation);  // region out of range
  s.roles = {Role{"r", 1.0, {Phase{.region = 0}}}};
  EXPECT_NO_THROW(validate(s));
}

TEST(WgenSpec, NeedsReservationsOnlyForCasKernels) {
  EXPECT_TRUE(needsReservations(findPreset("mixed_cas")->spec));
  for (const char* name : {"uniform_fa", "zipf_hot", "hotspot1",
                           "readers_writers", "stride_fs", "burst",
                           "lock_zipf"}) {
    EXPECT_FALSE(needsReservations(findPreset(name)->spec)) << name;
  }
}

TEST(WgenSpec, RoleAssignmentSplitsByShareAndCoversEveryCore) {
  const auto& spec = findPreset("readers_writers")->spec;  // 0.9 / 0.1
  const auto roles = assignRoles(spec, 16);
  ASSERT_EQ(roles.size(), 16u);
  const auto writers =
      std::count(roles.begin(), roles.end(), std::uint32_t{1});
  EXPECT_GE(writers, 1) << "positive-share role squeezed to zero cores";
  EXPECT_LE(writers, 3);
  // Tiny participant counts still give every positive-share role a core.
  const auto two = assignRoles(spec, 2);
  EXPECT_NE(std::count(two.begin(), two.end(), std::uint32_t{1}), 0);
}

TEST(WgenSpec, ZipfCdfIsMonotoneNormalizedAndSkewed) {
  const auto cdf = zipfCdf(64, 0.99);
  ASSERT_EQ(cdf.size(), 64u);
  EXPECT_TRUE(std::is_sorted(cdf.begin(), cdf.end()));
  EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
  // Rank 0 carries far more mass than the tail rank.
  const double p0 = cdf[0];
  const double pLast = cdf[63] - cdf[62];
  EXPECT_GT(p0, 10.0 * pLast);
  // theta = 0 degenerates to uniform.
  const auto flat = zipfCdf(4, 0.0);
  EXPECT_NEAR(flat[0], 0.25, 1e-12);
  EXPECT_NEAR(flat[2], 0.75, 1e-12);
}

TEST(WgenRegions, StridedZeroPutsEveryWordInOneBank) {
  arch::System sys(arch::SystemConfig::smallTest());
  const auto& spec = findPreset("stride_fs")->spec;
  const auto regions = resolveRegions(sys, spec, 16);
  ASSERT_EQ(regions.size(), 1u);
  ASSERT_EQ(regions[0].addrs.size(), 16u);  // one word per participant
  const auto& map = sys.allocator().map();
  const auto bank = map.bankOf(regions[0].addrs.front());
  for (const auto a : regions[0].addrs) {
    EXPECT_EQ(map.bankOf(a), bank) << "false-sharing words must share a bank";
  }
  // Distinct words, though.
  auto sorted = regions[0].addrs;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(WgenRegions, LockPhasesGetParallelLockWords) {
  arch::System sys(arch::SystemConfig::smallTest());
  const auto regions =
      resolveRegions(sys, findPreset("lock_zipf")->spec, 16);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].locks.size(), regions[0].addrs.size());
  EXPECT_FALSE(regions[0].cdf.empty());  // zipfian region carries its CDF
}

TEST(WgenRun, EveryPresetRunsAndSelfChecksOnColibri) {
  for (const auto& preset : presets()) {
    const auto spec = presetSpec("colibri", preset.spec.name);
    const auto r = exp::runOne(spec);
    EXPECT_TRUE(r.verified) << preset.spec.name;
    EXPECT_GT(r.rate.opsInWindow, 0u) << preset.spec.name;
    EXPECT_EQ(r.workload, preset.spec.name);
    // Every windowed op contributed one latency sample.
    EXPECT_EQ(r.opLatency.count, r.rate.opsInWindow) << preset.spec.name;
    EXPECT_LE(r.opLatency.p50, r.opLatency.p95) << preset.spec.name;
    EXPECT_LE(r.opLatency.p95, r.opLatency.p99) << preset.spec.name;
    EXPECT_GT(r.opLatency.p50, 0.0) << preset.spec.name;
  }
}

TEST(WgenRun, ReadersOutnumberWritersInTraffic) {
  // 90% readers / 10% writers: windowed ops far exceed the increments
  // that landed in the region words.
  const auto spec = presetSpec("colibri", "readers_writers");
  arch::System sys(spec.config);
  WgenParams p = std::get<WgenParams>(spec.params);
  p.window = spec.window;
  const auto r = runKernel(sys, p);
  EXPECT_TRUE(r.sumVerified);
  EXPECT_GT(r.totalOps, 2 * r.totalIncrements)
      << "reader loads should dominate writer increments";
  EXPECT_GT(r.totalIncrements, 0u);
}

TEST(WgenRun, CasPresetRejectedOnAmoEverywhere) {
  const auto scenario = exp::findScenario("amo", "mixed_cas");
  ASSERT_TRUE(scenario.has_value());
  EXPECT_FALSE(scenario->supported);
  // Direct runs enforce it too.
  const auto spec = presetSpec("amo", "mixed_cas");
  EXPECT_THROW((void)exp::runOne(spec), sim::InvariantViolation);
}

TEST(WgenRun, StaysOnTheInlineEventFastPath) {
  // A full generated run — warmup, window, drain — must not fall back to
  // heap-allocated events (the PR 3 invariant extends to wgen closures).
  const auto spec = presetSpec("colibri", "zipf_hot");
  const auto before = sim::InlineEvent::heapFallbackCount();
  const auto r = exp::runOne(spec);
  EXPECT_EQ(sim::InlineEvent::heapFallbackCount(), before);
  EXPECT_TRUE(r.verified);
}

void expectBitIdentical(const exp::RunResult& a, const exp::RunResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.seed, b.seed) << what;
  EXPECT_EQ(a.rate.opsPerCycle, b.rate.opsPerCycle) << what;
  EXPECT_EQ(a.rate.opsInWindow, b.rate.opsInWindow) << what;
  EXPECT_EQ(a.rate.perCoreWindowOps, b.rate.perCoreWindowOps) << what;
  EXPECT_EQ(a.rate.fairnessJain, b.rate.fairnessJain) << what;
  EXPECT_EQ(a.rate.counters.instructions, b.rate.counters.instructions)
      << what;
  EXPECT_EQ(a.rate.counters.netMessages, b.rate.counters.netMessages)
      << what;
  EXPECT_EQ(a.opLatency.count, b.opLatency.count) << what;
  EXPECT_EQ(a.opLatency.mean, b.opLatency.mean) << what;
  EXPECT_EQ(a.opLatency.p50, b.opLatency.p50) << what;
  EXPECT_EQ(a.opLatency.p95, b.opLatency.p95) << what;
  EXPECT_EQ(a.opLatency.p99, b.opLatency.p99) << what;
  EXPECT_EQ(a.verified, b.verified) << what;
}

TEST(WgenDeterminism, BitIdenticalAcrossThreadCountsAndReruns) {
  // Every preset on a representative adapter slice (the supported combos).
  std::vector<exp::RunSpec> specs;
  for (const auto& preset : presets()) {
    for (const char* adapter : {"colibri", "lrsc_single", "amo"}) {
      const auto scenario = exp::findScenario(adapter, preset.spec.name);
      ASSERT_TRUE(scenario.has_value())
          << adapter << " x " << preset.spec.name;
      if (!scenario->supported) {
        continue;
      }
      specs.push_back(presetSpec(adapter, preset.spec.name));
    }
  }
  ASSERT_GE(specs.size(), 20u);

  exp::SweepRunner serial(1);
  exp::SweepRunner wide(8);
  const auto a = serial.run(specs);
  const auto b = wide.run(specs);
  const auto c = serial.run(specs);  // rerun, same seeds
  ASSERT_EQ(a.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expectBitIdentical(a[i].primary(), b[i].primary(),
                       specs[i].label + " (threads)");
    expectBitIdentical(a[i].primary(), c[i].primary(),
                       specs[i].label + " (rerun)");
  }
}

TEST(WgenDeterminism, SeedActuallyChangesTheMeasurement) {
  auto spec = presetSpec("colibri", "zipf_hot");
  const auto a = exp::runOne(spec);
  spec.seed ^= 0xDEADBEEF;
  const auto b = exp::runOne(spec);
  EXPECT_NE(a.rate.perCoreWindowOps, b.rate.perCoreWindowOps);
}

TEST(WgenDeterminism, ThetaOverrideChangesContention) {
  auto flat = presetSpec("colibri", "zipf_hot");
  std::get<WgenParams>(flat.params).kernel.regions[0].zipfTheta = 0.0;
  auto sharp = presetSpec("colibri", "zipf_hot");
  std::get<WgenParams>(sharp.params).kernel.regions[0].zipfTheta = 1.2;
  const auto a = exp::runOne(flat);
  const auto b = exp::runOne(sharp);
  EXPECT_GT(a.rate.opsPerCycle, b.rate.opsPerCycle)
      << "sharper skew must cost throughput";
}

}  // namespace
}  // namespace colibri::wgen
