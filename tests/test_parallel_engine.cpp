// Deterministic parallel engine tests: the conservative-lookahead
// dispatcher (sim/parallel.*) must produce the *bit-identical* schedule —
// same (cycle, sequence) dispatch stream, same results — as the
// sequential engine for every worker count. These tests compare full
// Engine dispatch traces (the strongest check: any reordering at all
// fails), end-to-end CLI outputs across worker counts, the global
// serial-cycle path, and the coroutine frame pool's steady-state
// behavior.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "arch/system.hpp"
#include "cli/driver.hpp"
#include "sim/framepool.hpp"
#include "sync/atomic.hpp"
#include "test_util.hpp"

namespace colibri::arch {
namespace {

// 64 cores in 8 groups: enough shards for 8 workers, small enough that a
// full contended run plus trace comparison stays sub-second.
SystemConfig eightGroups(AdapterKind adapter, std::uint32_t engineThreads) {
  SystemConfig c;
  c.numCores = 64;
  c.coresPerTile = 4;
  c.tilesPerGroup = 2;
  c.banksPerTile = 4;
  c.wordsPerBank = 64;
  c.adapter = adapter;
  c.engineThreads = engineThreads;
  return c;
}

sim::Task incrementer(System& sys, Core& core, sim::Addr a, int iters,
                      sync::RmwFlavor flavor) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, core.id());
  sync::Backoff bo(sync::BackoffPolicy::fixed(32), rng);
  for (int i = 0; i < iters; ++i) {
    const auto r = co_await sync::fetchAdd(core, flavor, a, 1, bo);
    EXPECT_TRUE(r.performed);
  }
}

// Pure compute, no memory traffic: every lookahead window stays quiet.
sim::Task pureCompute(Core& core) {
  for (int i = 0; i < 50; ++i) {
    co_await core.delay(7);
  }
}

struct TracedRun {
  std::vector<sim::DispatchRecord> trace;
  std::uint64_t executed = 0;
  sim::Word finalValue = 0;
};

// Run the full-contention incrementer (every core hammering one word
// through real banks and network) and capture the engine's dispatch
// stream.
TracedRun runTraced(const SystemConfig& cfg, sync::RmwFlavor flavor,
                    int iters) {
  System sys(cfg);
  TracedRun out;
  sys.engine().setTrace(&out.trace);
  const auto a = sys.allocator().allocGlobal(1);
  for (sim::CoreId c = 0; c < cfg.numCores; ++c) {
    sys.spawn(c, incrementer(sys, sys.core(c), a, iters, flavor));
  }
  sys.run();
  sys.rethrowFailures();
  EXPECT_TRUE(sys.allTasksDone());
  out.executed = sys.engine().executedEvents();
  out.finalValue = sys.peek(a);
  return out;
}

void expectSameTrace(const TracedRun& seq, const TracedRun& par,
                     const std::string& label) {
  ASSERT_EQ(seq.trace.size(), par.trace.size()) << label;
  for (std::size_t i = 0; i < seq.trace.size(); ++i) {
    ASSERT_EQ(seq.trace[i].when, par.trace[i].when)
        << label << ": dispatch " << i << " cycle diverged";
    ASSERT_EQ(seq.trace[i].seq, par.trace[i].seq)
        << label << ": dispatch " << i << " sequence diverged (when="
        << seq.trace[i].when << ")";
  }
  EXPECT_EQ(seq.executed, par.executed) << label;
  EXPECT_EQ(seq.finalValue, par.finalValue) << label;
}

TEST(ParallelEngine, ActivatesOnlyWithThreadsAndGroups) {
  // engineThreads == 1: always sequential.
  EXPECT_FALSE(System(eightGroups(AdapterKind::kAmoOnly, 1)).parallelEngine());
  // Threads requested and 8 groups available: parallel.
  EXPECT_TRUE(System(eightGroups(AdapterKind::kAmoOnly, 4)).parallelEngine());
  // One group (16 tiles/group swallows all 16 tiles): nothing to shard,
  // so the request quietly falls back to the sequential engine.
  auto one = eightGroups(AdapterKind::kAmoOnly, 4);
  one.tilesPerGroup = 16;
  EXPECT_FALSE(System(one).parallelEngine());
}

// The core guarantee: the parallel engine's committed dispatch stream is
// the sequential engine's stream, record for record, for every worker
// count — on a retry-based adapter (timing feeds back into control flow
// through LR/SC failures) and on the waiting Colibri adapter (cross-core
// wake-ups, Mwait sleeps).
TEST(ParallelEngine, DispatchTraceMatchesSequential) {
  struct Case {
    AdapterKind adapter;
    sync::RmwFlavor flavor;
  };
  for (const Case& kase :
       {Case{AdapterKind::kLrscSingle, sync::RmwFlavor::kLrsc},
        Case{AdapterKind::kColibri, sync::RmwFlavor::kLrscWait}}) {
    const auto seq =
        runTraced(eightGroups(kase.adapter, 1), kase.flavor, 25);
    ASSERT_GT(seq.trace.size(), 1000u);  // a real run, not a stub
    EXPECT_EQ(seq.finalValue, 64u * 25u);
    for (const std::uint32_t threads : {2u, 4u, 8u}) {
      const auto par =
          runTraced(eightGroups(kase.adapter, threads), kase.flavor, 25);
      expectSameTrace(seq, par,
                      std::string(toString(kase.adapter)) + " x threads=" +
                          std::to_string(threads));
    }
  }
}

// The acceptance-scale case: 1024 cores / 16 groups, each core issuing
// bank-spread atomic adds. Short but wide — exercises the merge with all
// 16 shards active every window.
TEST(ParallelEngine, DispatchTraceMatchesSequentialAt1024Cores) {
  SystemConfig cfg;  // default geometry: 4 cores/tile, 16 tiles/group
  cfg.numCores = 1024;
  cfg.adapter = AdapterKind::kAmoOnly;
  cfg.engineThreads = 1;
  const auto seq = runTraced(cfg, sync::RmwFlavor::kAmo, 6);
  ASSERT_GT(seq.trace.size(), 10000u);
  EXPECT_EQ(seq.finalValue, 1024u * 6u);
  cfg.engineThreads = 8;
  const auto par = runTraced(cfg, sync::RmwFlavor::kAmo, 6);
  expectSameTrace(seq, par, "1024 cores x threads=8");
}

// The lookahead window is the *cross-shard* minimum latency, not the
// global one: intra-group traffic never leaves its shard, so latSameGroup
// must not bound the window. These configs make the distinction matter —
// the widened window is only correct if same-group sends really execute
// inline and only remote-group sends defer.
TEST(ParallelEngine, DispatchTraceMatchesSequentialWithAsymmetricLatency) {
  struct Case {
    const char* label;
    std::uint32_t latSameGroup;
    std::uint32_t latRemoteGroup;
  };
  for (const Case& kase : {
           // Same-group hops slower than remote ones: the old
           // min(same, remote) window would have been wrongly *tight*;
           // the new one must still be exact, not just safe.
           Case{"sameGroup>remoteGroup", 7, 5},
           // Minimum-width window: every window boundary is adjacent to
           // a potential cross-shard arrival.
           Case{"remoteGroup=1", 3, 1},
       }) {
    auto cfg = eightGroups(AdapterKind::kLrscSingle, 1);
    cfg.latSameGroup = kase.latSameGroup;
    cfg.latRemoteGroup = kase.latRemoteGroup;
    const auto seq = runTraced(cfg, sync::RmwFlavor::kLrsc, 15);
    ASSERT_GT(seq.trace.size(), 1000u) << kase.label;
    EXPECT_EQ(seq.finalValue, 64u * 15u) << kase.label;
    for (const std::uint32_t threads : {2u, 8u}) {
      cfg.engineThreads = threads;
      const auto par = runTraced(cfg, sync::RmwFlavor::kLrsc, 15);
      expectSameTrace(seq, par, std::string(kase.label) + " x threads=" +
                                    std::to_string(threads));
    }
  }
}

// The engine's own bookkeeping: every window either merges at its barrier
// or elides it — never both, never neither — and cross-shard traffic is
// what gets deferred.
TEST(ParallelEngine, CountersSatisfyBarrierInvariant) {
  // Contended cross-group run: deferred intents must appear.
  {
    auto cfg = eightGroups(AdapterKind::kAmoOnly, 4);
    System sys(cfg);
    const auto a = sys.allocator().allocGlobal(1);
    for (sim::CoreId c = 0; c < cfg.numCores; ++c) {
      sys.spawn(c, incrementer(sys, sys.core(c), a, 10,
                               sync::RmwFlavor::kAmo));
    }
    sys.run();
    sys.rethrowFailures();
    const auto ec = sys.engineCounters();
    EXPECT_GT(ec.windows, 0u);
    EXPECT_EQ(ec.barriersTaken + ec.barriersElided, ec.windows);
    EXPECT_GT(ec.deferredIntents, 0u)
        << "a global hot word must cross shard boundaries";
  }
  // Quiet run (pure compute, no memory traffic): every window is elidable.
  {
    auto cfg = eightGroups(AdapterKind::kAmoOnly, 4);
    System sys(cfg);
    for (sim::CoreId c = 0; c < cfg.numCores; ++c) {
      sys.spawn(c, pureCompute(sys.core(c)));
    }
    sys.run();
    sys.rethrowFailures();
    const auto ec = sys.engineCounters();
    EXPECT_EQ(ec.barriersTaken + ec.barriersElided, ec.windows);
    EXPECT_GT(ec.barriersElided, 0u)
        << "compute-only windows must skip the serial merge";
    EXPECT_EQ(ec.deferredIntents, 0u);
  }
  // Sequential engine: counters stay zero (nothing to count).
  {
    System sys(eightGroups(AdapterKind::kAmoOnly, 1));
    ASSERT_FALSE(sys.parallelEngine());
    const auto ec = sys.engineCounters();
    EXPECT_EQ(ec.windows, 0u);
    EXPECT_EQ(ec.barriersTaken, 0u);
  }
}

// The 4k-core acceptance case: 4096 cores / 16 groups completes under the
// sparse per-endpoint clamp, whose footprint is O(cores + banks) — the
// dense per-(core, bank) matrices this replaced would need over 1 GiB at
// this geometry and are asserted unaffordable, not silently skipped.
TEST(ParallelEngine, FourKCoresRunSparseClampWithinMemoryBound) {
  SystemConfig cfg;
  cfg.numCores = 4096;
  cfg.coresPerTile = 4;
  cfg.tilesPerGroup = 64;  // 1024 tiles -> 16 groups
  cfg.banksPerTile = 16;   // 16384 banks
  cfg.wordsPerBank = 64;
  cfg.adapter = AdapterKind::kAmoOnly;
  cfg.engineThreads = 8;
  ASSERT_EQ(cfg.numGroups(), 16u);
  // Dense clamp state would be 2 * cores * banks * 8 B = 1 GiB.
  EXPECT_GE(Network::denseClampBytes(cfg), std::size_t{512} << 20);
  System sys(cfg);
  ASSERT_TRUE(sys.parallelEngine());
  // Sparse clamp state: 2 * banks * 3 classes * 8 B, well under 1 MiB.
  EXPECT_LE(sys.network().clampBytes(), std::size_t{1} << 20);
  const auto a = sys.allocator().allocGlobal(1);
  for (sim::CoreId c = 0; c < cfg.numCores; ++c) {
    sys.spawn(c, incrementer(sys, sys.core(c), a, 2,
                             sync::RmwFlavor::kAmo));
  }
  sys.run();
  sys.rethrowFailures();
  EXPECT_TRUE(sys.allTasksDone());
  EXPECT_EQ(sys.peek(a), 4096u * 2u);
  const auto ec = sys.engineCounters();
  EXPECT_EQ(ec.barriersTaken + ec.barriersElided, ec.windows);
}

// Global System::at events run in serial cycles between windows; their
// observations of simulated state must match the sequential engine
// exactly, including callbacks that schedule further callbacks.
TEST(ParallelEngine, GlobalAtCallbacksObserveIdenticalState) {
  auto observe = [](std::uint32_t engineThreads) {
    auto cfg = eightGroups(AdapterKind::kLrscSingle, engineThreads);
    System sys(cfg);
    const auto a = sys.allocator().allocGlobal(1);
    for (sim::CoreId c = 0; c < cfg.numCores; ++c) {
      sys.spawn(c, incrementer(sys, sys.core(c), a, 20,
                               sync::RmwFlavor::kLrsc));
    }
    std::vector<std::pair<sim::Cycle, sim::Word>> seen;
    for (const sim::Cycle when : {17u, 63u, 200u, 512u}) {
      sys.at(when, [&sys, &seen, a] {
        seen.emplace_back(sys.now(), sys.peek(a));
        // Reentrant global scheduling from inside a serial cycle.
        sys.at(sys.now() + 11, [&sys, &seen, a] {
          seen.emplace_back(sys.now(), sys.peek(a));
        });
      });
    }
    sys.run();
    sys.rethrowFailures();
    EXPECT_EQ(sys.peek(a), 64u * 20u);
    return seen;
  };
  const auto seq = observe(1);
  ASSERT_EQ(seq.size(), 8u);
  for (const std::uint32_t threads : {2u, 8u}) {
    EXPECT_EQ(seq, observe(threads)) << "threads=" << threads;
  }
}

// step() and advanceTo() are defined only for the sequential engine; the
// parallel backend refuses them loudly instead of desynchronizing.
TEST(ParallelEngine, StepAndAdvanceToAreSequentialOnly) {
  System sys(eightGroups(AdapterKind::kAmoOnly, 4));
  ASSERT_TRUE(sys.parallelEngine());
  EXPECT_THROW((void)sys.engine().step(), sim::InvariantViolation);
  EXPECT_THROW(sys.engine().advanceTo(10), sim::InvariantViolation);
}

// End-to-end: the CLI must print byte-identical reports for every
// --engine-threads value, across adapter x workload combinations that
// cover wgen kernels, the data-structure workloads, and waiting adapters.
TEST(ParallelEngine, CliOutputIdenticalAcrossWorkerCounts) {
  const std::vector<std::pair<std::string, std::string>> combos = {
      {"colibri", "zipf_hot"},
      {"lrsc_single", "histogram"},
      {"lrscwait", "msqueue"},
      {"amo", "uniform_fa"},
  };
  for (const auto& [adapter, workload] : combos) {
    std::string baseline;
    for (const char* threads : {"1", "2", "4", "8"}) {
      std::ostringstream out;
      std::ostringstream err;
      const int rc = cli::runMain(
          {"--adapter", adapter, "--workload", workload, "--cores", "64",
           "--tiles-per-group", "4", "--warmup", "500", "--measure", "2000",
           "--csv", "--engine-threads", threads},
          out, err);
      ASSERT_EQ(rc, 0) << adapter << " x " << workload << ": " << err.str();
      if (baseline.empty()) {
        baseline = out.str();
        ASSERT_FALSE(baseline.empty());
      } else {
        EXPECT_EQ(out.str(), baseline)
            << adapter << " x " << workload << " --engine-threads " << threads;
      }
    }
  }
}

// The --json document is part of the stable output surface: it must not
// mention the engine-thread count (a wall-clock knob, not a result), and
// it must be byte-identical under the parallel engine.
TEST(ParallelEngine, JsonOmitsEngineThreadsAndStaysIdentical) {
  auto runJson = [](const char* threads) {
    std::ostringstream out;
    std::ostringstream err;
    const int rc = cli::runMain(
        {"--workload", "histogram", "--cores", "64", "--tiles-per-group",
         "4", "--warmup", "500", "--measure", "2000", "--reps", "2",
         "--json", "--engine-threads", threads},
        out, err);
    EXPECT_EQ(rc, 0) << err.str();
    return out.str();
  };
  const std::string seq = runJson("1");
  const std::string par = runJson("8");
  EXPECT_EQ(seq, par);
  EXPECT_EQ(par.find("engine"), std::string::npos);
  EXPECT_EQ(par.find("Threads"), std::string::npos);
}

// Frame pool steady state: once a simulation's coroutine frames have been
// seen, re-running the same workload recycles pooled blocks — the pool
// serves every frame and the heap-fallback counter does not move.
TEST(ParallelEngine, FramePoolServesSteadyStateWithoutHeapFallback) {
  auto runOnce = [] {
    auto cfg = eightGroups(AdapterKind::kLrscSingle, 2);
    System sys(cfg);
    const auto a = sys.allocator().allocGlobal(1);
    for (sim::CoreId c = 0; c < cfg.numCores; ++c) {
      sys.spawn(c, incrementer(sys, sys.core(c), a, 10,
                               sync::RmwFlavor::kLrsc));
    }
    sys.run();
    sys.rethrowFailures();
  };
  runOnce();  // warm the size-class free lists
  const auto pooledBefore = sim::framepool::pooledFrameCount();
  const auto heapBefore = sim::framepool::heapFrameCount();
  const auto arenaBefore = sim::framepool::arenaBytes();
  runOnce();
  EXPECT_GT(sim::framepool::pooledFrameCount(), pooledBefore)
      << "coroutine frames bypassed the pool";
  EXPECT_EQ(sim::framepool::heapFrameCount(), heapBefore)
      << "steady-state frame fell back to the system heap";
  EXPECT_EQ(sim::framepool::arenaBytes(), arenaBefore)
      << "steady-state re-run grew the arena";
}

}  // namespace
}  // namespace colibri::arch
