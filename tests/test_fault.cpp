// Fault-injection + watchdog tests: the fault subsystem's determinism
// contract (decisions are stateless hashes, so reruns and every
// --engine-threads value produce bit-identical schedules and counts), the
// graceful-degradation guarantee (faults cost retries, never correctness),
// and the watchdog's hang diagnosis (the stranded-LR demo is caught in
// bounded simulated time with a blame report naming the owning core and
// the reservation slot).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "arch/system.hpp"
#include "cli/driver.hpp"
#include "fault/demo.hpp"
#include "fault/fault.hpp"
#include "fault/watchdog.hpp"
#include "sync/atomic.hpp"

namespace colibri::fault {
namespace {

// 16 cores in 2 groups: the smallest geometry where the parallel engine
// activates, so determinism checks across engine-thread counts are real.
arch::SystemConfig twoGroups(arch::AdapterKind adapter,
                             std::uint32_t engineThreads) {
  arch::SystemConfig c;
  c.numCores = 16;
  c.coresPerTile = 4;
  c.tilesPerGroup = 2;
  c.banksPerTile = 4;
  c.wordsPerBank = 64;
  c.adapter = adapter;
  c.engineThreads = engineThreads;
  return c;
}

sim::Task incrementer(arch::System& sys, arch::Core& core, sim::Addr a,
                      int iters, sync::RmwFlavor flavor) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, core.id());
  sync::Backoff bo(sync::BackoffPolicy::fixed(32), rng);
  for (int i = 0; i < iters; ++i) {
    const auto r = co_await sync::fetchAdd(core, flavor, a, 1, bo);
    EXPECT_TRUE(r.performed);
  }
}

struct FaultedRun {
  std::vector<sim::DispatchRecord> trace;
  sim::Word finalValue = 0;
  FaultCounters counters{};
  std::uint64_t faultSeed = 0;
};

// Run the contended incrementer under a fault config and capture the
// engine's full dispatch stream — the strongest determinism check: any
// reordering of any event at all fails the comparison.
FaultedRun runFaulted(arch::SystemConfig cfg, const FaultConfig& fc,
                      sync::RmwFlavor flavor, int iters) {
  cfg.fault = fc;
  arch::System sys(cfg);
  FaultedRun out;
  sys.engine().setTrace(&out.trace);
  const auto a = sys.allocator().allocGlobal(1);
  for (sim::CoreId c = 0; c < cfg.numCores; ++c) {
    sys.spawn(c, incrementer(sys, sys.core(c), a, iters, flavor));
  }
  sys.run();
  sys.rethrowFailures();
  EXPECT_TRUE(sys.allTasksDone());
  out.finalValue = sys.peek(a);
  out.counters = sys.faultCounters();
  out.faultSeed = sys.faultSeed();
  return out;
}

void expectSameRun(const FaultedRun& a, const FaultedRun& b,
                   const std::string& label) {
  ASSERT_EQ(a.trace.size(), b.trace.size()) << label;
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    ASSERT_EQ(a.trace[i].when, b.trace[i].when)
        << label << ": dispatch " << i << " cycle diverged";
    ASSERT_EQ(a.trace[i].seq, b.trace[i].seq)
        << label << ": dispatch " << i << " sequence diverged (when="
        << a.trace[i].when << ")";
  }
  EXPECT_EQ(a.finalValue, b.finalValue) << label;
  EXPECT_EQ(a.faultSeed, b.faultSeed) << label;
  for (std::size_t s = 0; s < kSiteCount; ++s) {
    EXPECT_EQ(a.counters.injected[s], b.counters.injected[s])
        << label << ": site " << toString(static_cast<Site>(s));
  }
}

sync::RmwFlavor flavorFor(arch::AdapterKind adapter) {
  switch (adapter) {
    case arch::AdapterKind::kAmoOnly:
      return sync::RmwFlavor::kAmo;
    case arch::AdapterKind::kLrscWait:
    case arch::AdapterKind::kColibri:
      return sync::RmwFlavor::kLrscWait;
    default:
      return sync::RmwFlavor::kLrsc;
  }
}

TEST(FaultConfigTest, DefaultIsDisabledAndValid) {
  const FaultConfig fc;
  EXPECT_FALSE(fc.enabled());
  EXPECT_NO_THROW(fc.validate());
  // A default System carries no plan and reports zero everywhere.
  arch::System sys(twoGroups(arch::AdapterKind::kLrscSingle, 1));
  EXPECT_FALSE(sys.faultActive());
  EXPECT_EQ(sys.faultSeed(), 0u);
  EXPECT_EQ(sys.faultCounters().total(), 0u);
}

TEST(FaultConfigTest, ValidateRejectsBadInputs) {
  FaultConfig fc;
  fc.scFailP = 1.5;  // probability out of [0, 1]
  EXPECT_THROW(fc.validate(), sim::InvariantViolation);
  fc = FaultConfig{};
  fc.netDelayP = 0.1;  // nonzero probability needs a nonzero magnitude
  fc.netDelayMax = 0;
  EXPECT_THROW(fc.validate(), sim::InvariantViolation);
  fc = FaultConfig{};
  fc.stallP = -0.1;
  EXPECT_THROW(fc.validate(), sim::InvariantViolation);
}

TEST(FaultConfigTest, ProfilesAreRegisteredAndValid) {
  const auto& all = profiles();
  ASSERT_EQ(all.size(), 4u);
  for (const char* name : {"net_jitter", "sc_storm", "evict_churn", "chaos"}) {
    const Profile* p = findProfile(name);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_EQ(p->name, name);
    EXPECT_TRUE(p->config.enabled()) << name;
    EXPECT_NO_THROW(p->config.validate()) << name;
  }
  EXPECT_EQ(findProfile("off"), nullptr);
  EXPECT_EQ(findProfile("nonsense"), nullptr);
}

// The decision engine itself is a pure function of (seed, site, entities,
// cycle): two independent plans with the same config agree decision for
// decision, and magnitudes stay in [1, max].
TEST(FaultPlanTest, DecisionsAreStatelessAndBounded) {
  FaultConfig fc = findProfile("chaos")->config;
  fc.seed = 0xFEEDFACE;
  FaultPlan a(fc);
  FaultPlan b(fc);
  std::uint64_t fired = 0;
  for (sim::CoreId core = 0; core < 8; ++core) {
    for (sim::BankId bank = 0; bank < 8; ++bank) {
      for (sim::Cycle at = 0; at < 200; ++at) {
        const auto da = a.netDelay(core, bank, false, at);
        EXPECT_EQ(da, b.netDelay(core, bank, false, at));
        EXPECT_LE(da, fc.netDelayMax);
        const auto sa = a.stall(bank, core, at);
        EXPECT_EQ(sa, b.stall(bank, core, at));
        EXPECT_LE(sa, fc.stallMax);
        EXPECT_EQ(a.scFail(bank, core, 4, at), b.scFail(bank, core, 4, at));
        EXPECT_EQ(a.evict(bank, core, at), b.evict(bank, core, at));
        EXPECT_EQ(a.evictVictim(bank, at, 7), b.evictVictim(bank, at, 7));
        EXPECT_LT(a.evictVictim(bank, at, 7), 7u);
        fired += da + sa;
      }
    }
  }
  EXPECT_GT(fired, 0u) << "chaos probabilities never fired in 12800 trials";
  // Identical histories => identical counters.
  const auto ca = a.counters();
  const auto cb = b.counters();
  EXPECT_GT(ca.total(), 0u);
  for (std::size_t s = 0; s < kSiteCount; ++s) {
    EXPECT_EQ(ca.injected[s], cb.injected[s]);
  }
  // The request and response directions of a hop are distinct decisions.
  bool differs = false;
  for (sim::Cycle at = 0; at < 2000 && !differs; ++at) {
    differs = a.netDelay(0, 0, false, at) != a.netDelay(0, 0, true, at);
  }
  EXPECT_TRUE(differs);
}

// The headline determinism contract: for every profile x adapter combo,
// a rerun and an 8-worker parallel run reproduce the sequential dispatch
// stream record for record, with identical results and fault counts.
TEST(FaultPlanTest, EveryProfileIsDeterministicAcrossRerunsAndThreads) {
  for (const Profile& profile : profiles()) {
    for (const auto adapter :
         {arch::AdapterKind::kLrscSingle, arch::AdapterKind::kLrscTable,
          arch::AdapterKind::kLrscWait, arch::AdapterKind::kColibri}) {
      const auto flavor = flavorFor(adapter);
      const auto cfg = twoGroups(adapter, 1);
      const std::string label = profile.name + std::string(" x ") +
                                arch::toString(adapter);
      const auto seq = runFaulted(cfg, profile.config, flavor, 6);
      EXPECT_EQ(seq.finalValue, 16u * 6u) << label;
      EXPECT_NE(seq.faultSeed, 0u) << label;
      expectSameRun(seq, runFaulted(cfg, profile.config, flavor, 6),
                    label + " rerun");
      expectSameRun(seq,
                    runFaulted(twoGroups(adapter, 8), profile.config, flavor,
                               6),
                    label + " x threads=8");
    }
  }
}

// Graceful degradation on the retry adapters: chaos makes every site fire
// yet the final count is exact — faults cost retries, never lost updates.
TEST(FaultPlanTest, ChaosInjectsAtEverySiteWithoutCorruption) {
  const auto fc = findProfile("chaos")->config;
  const auto run = runFaulted(twoGroups(arch::AdapterKind::kLrscSingle, 1),
                              fc, sync::RmwFlavor::kLrsc, 20);
  EXPECT_EQ(run.finalValue, 16u * 20u);
  EXPECT_GT(run.counters.at(Site::kNetDelay), 0u);
  EXPECT_GT(run.counters.at(Site::kScFail), 0u);
  EXPECT_GT(run.counters.at(Site::kEvict), 0u);
  EXPECT_GT(run.counters.at(Site::kStall), 0u);
  // Colibri's distributed reservation queue has no eviction site by
  // design: the evict counter must stay zero even under evict_churn.
  const auto colibri =
      runFaulted(twoGroups(arch::AdapterKind::kColibri, 1),
                 findProfile("evict_churn")->config,
                 sync::RmwFlavor::kLrscWait, 20);
  EXPECT_EQ(colibri.finalValue, 16u * 20u);
  EXPECT_EQ(colibri.counters.at(Site::kEvict), 0u);
}

// A fault seed of 0 derives one from the system seed; distinct system
// seeds explore distinct fault schedules, a pinned fault seed does not.
TEST(FaultPlanTest, SeedDerivationFollowsSystemSeed) {
  const auto fc = findProfile("chaos")->config;
  auto cfg = twoGroups(arch::AdapterKind::kLrscSingle, 1);
  const auto a = runFaulted(cfg, fc, sync::RmwFlavor::kLrsc, 6);
  cfg.seed += 1;
  const auto b = runFaulted(cfg, fc, sync::RmwFlavor::kLrsc, 6);
  EXPECT_NE(a.faultSeed, b.faultSeed);
  auto pinned = fc;
  pinned.seed = 42;
  const auto c = runFaulted(cfg, pinned, sync::RmwFlavor::kLrsc, 6);
  EXPECT_EQ(c.faultSeed, 42u);
}

// With no trip, the watchdog is pure observation: the dispatch stream of
// a healthy run is byte-identical with the watchdog on and off.
TEST(WatchdogTest, NoTripMeansNoEffect) {
  auto cfg = twoGroups(arch::AdapterKind::kLrscSingle, 1);
  cfg.watchdogCycles = 0;
  const auto off = runFaulted(cfg, FaultConfig{}, sync::RmwFlavor::kLrsc, 10);
  cfg.watchdogCycles = 500;  // tight: many probes fire during the run
  const auto on = runFaulted(cfg, FaultConfig{}, sync::RmwFlavor::kLrsc, 10);
  expectSameRun(off, on, "watchdog on vs off");
}

// The payoff case: a re-introduced PR-7-style stranded-LR leak is caught
// in bounded simulated time, and the blame report names the owning core
// and the reservation slot.
TEST(WatchdogTest, CatchesStrandedLrWithBlame) {
  auto cfg = twoGroups(arch::AdapterKind::kLrscSingle, 1);
  cfg.watchdogCycles = 10'000;
  try {
    runStrandedLr(cfg, 100 * cfg.watchdogCycles);
    FAIL() << "stranded-LR hang ran to the horizon without a trip";
  } catch (const WatchdogError& e) {
    // Trip latency is bounded: limit + one probe step (limit/8).
    EXPECT_GE(e.trippedAt(), cfg.watchdogCycles);
    EXPECT_LE(e.trippedAt(), cfg.watchdogCycles + cfg.watchdogCycles / 8);
    const std::string what = e.what();
    EXPECT_NE(what.find("watchdog"), std::string::npos);
    EXPECT_NE(what.find("10000"), std::string::npos);
    // The blame report names the stranded reservation's owner and slot,
    // and lists stuck cores with their outstanding requests.
    const std::string& report = e.report();
    EXPECT_NE(report.find("reservation slot held by core 0"),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("bank"), std::string::npos) << report;
    EXPECT_NE(report.find("core 1"), std::string::npos) << report;
  }
}

// Same hang under the parallel engine: the probe fires at the identical
// simulated cycle because windows are capped at probe boundaries.
TEST(WatchdogTest, TripCycleIdenticalUnderParallelEngine) {
  auto trip = [](std::uint32_t engineThreads) {
    auto cfg = twoGroups(arch::AdapterKind::kLrscSingle, engineThreads);
    cfg.watchdogCycles = 10'000;
    try {
      runStrandedLr(cfg, 100 * cfg.watchdogCycles);
    } catch (const WatchdogError& e) {
      return e.trippedAt();
    }
    return sim::Cycle{0};
  };
  const auto seq = trip(1);
  ASSERT_GT(seq, 0u);
  EXPECT_EQ(seq, trip(8));
}

// With the watchdog disabled the demo reproduces the pre-watchdog
// behavior: the hang runs silently to the horizon and returns.
TEST(WatchdogTest, DisabledWatchdogLetsTheHangRunSilently) {
  auto cfg = twoGroups(arch::AdapterKind::kLrscSingle, 1);
  cfg.watchdogCycles = 0;
  EXPECT_NO_THROW(runStrandedLr(cfg, 20'000));
}

// --- CLI surface ----------------------------------------------------------

std::vector<std::string> baseArgs(const char* adapter) {
  return {"--adapter", adapter,      "--workload",        "histogram",
          "--cores",   "16",         "--cores-per-tile",  "4",
          "--tiles-per-group", "2",  "--banks-per-tile",  "4",
          "--warmup",  "500",        "--measure",         "2000"};
}

TEST(FaultCliTest, JsonWithFaultBlockIsIdenticalAcrossThreadsAndReruns) {
  auto run = [](const char* threads) {
    auto args = baseArgs("lrsc_single");
    for (const char* extra : {"--fault", "chaos", "--json", "--json-fault",
                              "--engine-threads", threads}) {
      args.emplace_back(extra);
    }
    std::ostringstream out;
    std::ostringstream err;
    const int rc = cli::runMain(args, out, err);
    EXPECT_EQ(rc, 0) << err.str();
    return out.str();
  };
  const std::string seq = run("1");
  EXPECT_NE(seq.find("\"fault\""), std::string::npos);
  EXPECT_NE(seq.find("\"injected\""), std::string::npos);
  EXPECT_NE(seq.find("\"verified\": true"), std::string::npos);
  EXPECT_EQ(seq, run("1")) << "rerun diverged";
  EXPECT_EQ(seq, run("8")) << "--engine-threads 8 diverged";
}

TEST(FaultCliTest, DefaultOutputUntouchedByFaultSubsystem) {
  auto run = [](bool explicitOff) {
    auto args = baseArgs("colibri");
    args.emplace_back("--json");
    if (explicitOff) {
      args.emplace_back("--fault");
      args.emplace_back("off");
    }
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(cli::runMain(args, out, err), 0) << err.str();
    return out.str();
  };
  const std::string plain = run(false);
  EXPECT_EQ(plain, run(true)) << "--fault off changed the output";
  EXPECT_EQ(plain.find("\"fault\""), std::string::npos)
      << "fault block leaked into default JSON";
}

TEST(FaultCliTest, BadFaultFlagsAreUsageErrors) {
  struct Case {
    std::vector<std::string> extra;
    const char* expect;
  };
  for (const Case& kase :
       {Case{{"--fault", "nonsense"}, "net_jitter"},  // lists the profiles
        Case{{"--fault-sc-fail", "1.5"}, "--fault-sc-fail"},
        Case{{"--fault-net-delay", "0.5"}, "--fault-net-delay"},
        Case{{"--json-fault"}, "--json"}}) {
    auto args = baseArgs("lrsc_single");
    args.insert(args.end(), kase.extra.begin(), kase.extra.end());
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(cli::runMain(args, out, err), 2) << kase.extra.front();
    EXPECT_NE(err.str().find(kase.expect), std::string::npos)
        << kase.extra.front() << ": " << err.str();
  }
}

TEST(FaultCliTest, StatsLineReportsInjectionCounts) {
  auto args = baseArgs("lrsc_single");
  for (const char* extra : {"--fault", "chaos", "--stats", "--csv"}) {
    args.emplace_back(extra);
  }
  std::ostringstream out;
  std::ostringstream err;
  ASSERT_EQ(cli::runMain(args, out, err), 0) << err.str();
  const std::string stats = err.str();
  EXPECT_NE(stats.find("fault: seed="), std::string::npos) << stats;
  EXPECT_NE(stats.find("sc-fails="), std::string::npos) << stats;
}

TEST(FaultCliTest, HangDemoExitsThreeWithBlame) {
  std::ostringstream out;
  std::ostringstream err;
  const int rc = cli::runMain(
      {"--hang-demo", "--cores", "16", "--cores-per-tile", "4",
       "--tiles-per-group", "2", "--banks-per-tile", "4", "--watchdog",
       "10000"},
      out, err);
  EXPECT_EQ(rc, 3);
  EXPECT_NE(err.str().find("reservation slot held by core 0"),
            std::string::npos)
      << err.str();
  EXPECT_NE(out.str().find("watchdog caught the hang"), std::string::npos)
      << out.str();
}

// A quick litmus slice under chaos: mutual exclusion must hold (faults
// cost retries, never correctness), so the run exits 0.
TEST(FaultCliTest, LitmusHoldsUnderChaos) {
  std::ostringstream out;
  std::ostringstream err;
  const int rc = cli::runMain(
      {"--litmus", "tas", "--cores", "16", "--cores-per-tile", "4",
       "--tiles-per-group", "2", "--banks-per-tile", "4", "--litmus-iters",
       "10", "--fault", "chaos"},
      out, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("PASS"), std::string::npos) << out.str();
}

}  // namespace
}  // namespace colibri::fault
