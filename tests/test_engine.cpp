// Engine unit tests: time ordering, FIFO tie-break, horizons, teardown.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace colibri::sim {
namespace {

TEST(Engine, StartsAtCycleZeroAndEmpty) {
  Engine e;
  EXPECT_EQ(e.now(), 0u);
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.pendingEvents(), 0u);
}

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.scheduleAt(10, [&] { order.push_back(2); });
  e.scheduleAt(5, [&] { order.push_back(1); });
  e.scheduleAt(20, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 20u);
}

TEST(Engine, SameCycleEventsRunFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.scheduleAt(7, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  e.scheduleAt(1, [&] {
    ++fired;
    e.scheduleAfter(4, [&] { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), 5u);
}

TEST(Engine, SchedulingIntoThePastThrows) {
  Engine e;
  e.scheduleAt(10, [&] {
    EXPECT_THROW(e.scheduleAt(5, [] {}), InvariantViolation);
  });
  e.run();
}

TEST(Engine, RunUntilStopsAtHorizonAndAdvancesNow) {
  Engine e;
  int fired = 0;
  e.scheduleAt(5, [&] { ++fired; });
  e.scheduleAt(15, [&] { ++fired; });
  const auto ran = e.runUntil(10);
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 10u);  // clamped to horizon, not last event
  EXPECT_EQ(e.pendingEvents(), 1u);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilIncludesEventsAtHorizon) {
  Engine e;
  int fired = 0;
  e.scheduleAt(10, [&] { ++fired; });
  e.runUntil(10);
  EXPECT_EQ(fired, 1);
}

TEST(Engine, StepExecutesExactlyN) {
  Engine e;
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    e.scheduleAt(static_cast<Cycle>(i), [&] { ++fired; });
  }
  EXPECT_EQ(e.step(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(e.step(99), 2u);
  EXPECT_EQ(fired, 5);
}

TEST(Engine, ClearDropsPendingWithoutRunning) {
  Engine e;
  int fired = 0;
  e.scheduleAt(1, [&] { ++fired; });
  e.scheduleAt(2, [&] { ++fired; });
  e.clear();
  e.run();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, AdvanceToMovesIdleClock) {
  Engine e;
  e.advanceTo(42);
  EXPECT_EQ(e.now(), 42u);
}

TEST(Engine, AdvanceToRefusesToSkipEvents) {
  Engine e;
  e.scheduleAt(10, [] {});
  EXPECT_THROW(e.advanceTo(11), InvariantViolation);
}

TEST(Engine, CountsExecutedEvents) {
  Engine e;
  for (int i = 0; i < 7; ++i) {
    e.scheduleAt(static_cast<Cycle>(i), [] {});
  }
  e.run();
  EXPECT_EQ(e.executedEvents(), 7u);
}

}  // namespace
}  // namespace colibri::sim
