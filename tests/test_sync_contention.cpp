// Contention-focused sync:: tests that the litmus suite relies on: the MCS
// lock must hand over in FIFO arrival order (its whole point versus a TAS
// lock), Backoff must be deterministic and keep its jitter inside the
// documented [0.75, 1.25) band, and compareAndSwap must honor the abandon
// flag on the single-reservation-slot adapter, where an unbounded retry
// loop can otherwise livelock past a stop flag forever.
#include <gtest/gtest.h>

#include <vector>

#include "arch/system.hpp"
#include "test_util.hpp"
#include "sync/atomic.hpp"
#include "sync/backoff.hpp"
#include "sync/mcs.hpp"

namespace colibri::sync {
namespace {

using arch::AdapterKind;
using arch::Core;
using arch::System;
using arch::SystemConfig;

SystemConfig withAdapter(AdapterKind k) {
  auto c = SystemConfig::smallTest();
  c.adapter = k;
  return c;
}

// --- MCS FIFO handoff ----------------------------------------------------

sim::Task mcsHolder(System& sys, Core& core, McsLock& lock,
                    std::vector<sim::CoreId>& order, sim::Cycle holdFor) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, core.id());
  Backoff bo(BackoffPolicy::fixed(32), rng);
  co_await lock.acquire(core, bo);
  order.push_back(core.id());
  co_await core.delay(holdFor);
  co_await lock.release(core, bo);
}

sim::Task mcsArrival(System& sys, Core& core, McsLock& lock,
                     std::vector<sim::CoreId>& order, sim::Cycle arriveAt) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, core.id());
  Backoff bo(BackoffPolicy::fixed(32), rng);
  co_await core.delay(arriveAt);
  co_await lock.acquire(core, bo);
  order.push_back(core.id());
  co_await core.delay(10);
  co_await lock.release(core, bo);
}

class McsFifo : public ::testing::TestWithParam<AdapterKind> {};

TEST_P(McsFifo, HandoffFollowsArrivalOrder) {
  System sys(withAdapter(GetParam()));
  auto nodes = McsNodes::create(sys);
  const auto tail = sys.allocator().allocGlobal(1);
  const auto casFlavor = GetParam() == AdapterKind::kColibri
                             ? RmwFlavor::kLrscWait
                             : RmwFlavor::kLrsc;
  const auto wait = GetParam() == AdapterKind::kColibri ? WaitKind::kMwait
                                                        : WaitKind::kPoll;
  McsLock lock(tail, nodes, casFlavor, wait);
  std::vector<sim::CoreId> order;
  // Core 0 grabs the lock immediately and holds it while cores 1..7 arrive
  // 200 cycles apart — far wider than the tail-swap latency, so the queue
  // order IS the arrival order. A FIFO lock must then hand over 1, 2, ... 7;
  // a TAS lock would let any spinner barge in.
  sys.spawn(0, mcsHolder(sys, sys.core(0), lock, order, 2000));
  for (sim::CoreId c = 1; c < 8; ++c) {
    sys.spawn(c, mcsArrival(sys, sys.core(c), lock, order, 100 + c * 200));
  }
  sys.run();
  sys.rethrowFailures();
  ASSERT_EQ(order.size(), 8u);
  for (sim::CoreId c = 0; c < 8; ++c) {
    EXPECT_EQ(order[c], c) << "handoff " << c << " went out of FIFO order";
  }
  EXPECT_EQ(sys.peek(tail), 0u);
}

INSTANTIATE_TEST_SUITE_P(Adapters, McsFifo,
                         ::testing::Values(AdapterKind::kLrscTable,
                                           AdapterKind::kColibri),
                         [](const auto& info) {
                           return test::paramName(arch::toString(info.param));
                         });

// --- Backoff determinism and jitter bounds -------------------------------

TEST(BackoffDeterminism, SameSeedSameSequence) {
  auto rngA = sim::Xoshiro256::forStream(42, 7);
  auto rngB = sim::Xoshiro256::forStream(42, 7);
  Backoff a(BackoffPolicy::exponential(16, 4096), rngA);
  Backoff b(BackoffPolicy::exponential(16, 4096), rngB);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.next(), b.next()) << "diverged at step " << i;
  }
}

TEST(BackoffDeterminism, DistinctStreamsDecorrelate) {
  auto rngA = sim::Xoshiro256::forStream(42, 1);
  auto rngB = sim::Xoshiro256::forStream(42, 2);
  Backoff a(BackoffPolicy::fixed(1024), rngA);
  Backoff b(BackoffPolicy::fixed(1024), rngB);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    same += a.next() == b.next() ? 1 : 0;
  }
  // 50 draws from a 513-value window: a handful of collisions is plausible,
  // identical sequences are not.
  EXPECT_LT(same, 10);
}

TEST(BackoffJitter, ExponentialStaysInTheDocumentedBand) {
  auto rng = sim::Xoshiro256::forStream(9, 0);
  const std::uint32_t base = 16;
  const std::uint32_t max = 4096;
  Backoff b(BackoffPolicy::exponential(base, max), rng);
  std::uint32_t around = base;  // shadow the internal doubling schedule
  for (int i = 0; i < 20; ++i) {
    const auto w = b.next();
    const std::uint64_t lo = around - around / 4;
    EXPECT_GE(w, lo) << "step " << i;
    EXPECT_LE(w, lo + around / 2) << "step " << i;
    around = around * 2 > max ? max : around * 2;
  }
  b.reset();
  const auto w = b.next();
  EXPECT_GE(w, base - base / 4);
  EXPECT_LE(w, base - base / 4 + base / 2);
}

// --- compareAndSwap abandon flag -----------------------------------------

sim::Task casUntilAbandoned(System& sys, Core& core, sim::Addr a,
                            const bool* abandon, int* abandoned) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, core.id());
  // The deliberately bad policy: a short fixed backoff on the single-slot
  // adapter keeps every core displacing everyone else's reservation.
  Backoff bo(BackoffPolicy::fixed(8), rng);
  while (true) {
    const auto r =
        co_await compareAndSwap(core, RmwFlavor::kLrsc, a, 0, 0, bo, abandon);
    if (!r.swapped) {
      // The value never changes from 0, so swapped=false can only mean the
      // library saw the abandon flag at a retry point and gave up.
      ++*abandoned;
      co_return;
    }
    if (*abandon) {
      co_return;  // our last call happened to win before failing once
    }
    co_await core.delay(bo.next());
  }
}

TEST(CasAbandon, StopsTheSingleSlotReservationStorm) {
  System sys(withAdapter(AdapterKind::kLrscSingle));
  const auto a = sys.allocator().allocGlobal(1);
  sys.poke(a, 0);
  bool abandon = false;
  int abandoned = 0;
  // CAS(0 -> 0) always has a matching expected value, so the only way out
  // of the loop is the abandon flag. All 8 cores fight over one word on the
  // one-reservation-slot adapter — the storm the flag exists for.
  for (sim::CoreId c = 0; c < 8; ++c) {
    sys.spawn(c, casUntilAbandoned(sys, sys.core(c), a, &abandon, &abandoned));
  }
  sys.at(5000, [&abandon] { abandon = true; });
  sys.run();
  sys.rethrowFailures();
  EXPECT_TRUE(sys.allTasksDone());
  // At least one in-flight call must have been cut short by the flag; the
  // rest may have won their final CAS just before failing once.
  EXPECT_GE(abandoned, 1);
  // The loop must have drained promptly once the flag went up: one retry
  // round plus the acknowledged-abandon path, not another storm.
  EXPECT_LT(sys.now(), 5000u + 2000u);
}

}  // namespace
}  // namespace colibri::sync
