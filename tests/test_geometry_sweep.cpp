// Geometry-sweep property tests: correctness must not depend on the
// machine shape. Runs contended atomic increments and the LRwait/SCwait
// mutual-exclusion probe on a grid of {geometry} x {adapter}
// configurations (TEST_P), including degenerate shapes (1 tile, 1 group,
// minimal banks).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "arch/system.hpp"
#include "sync/atomic.hpp"
#include "test_util.hpp"

namespace colibri::arch {
namespace {

struct Geometry {
  const char* name;
  std::uint32_t cores, coresPerTile, tilesPerGroup, banksPerTile;
};

const Geometry kGeometries[] = {
    {"tiny_1tile", 4, 4, 1, 2},
    {"one_group", 8, 4, 2, 4},
    {"tall_tiles", 16, 8, 2, 4},
    {"many_groups", 32, 4, 2, 8},
    {"wide_banks", 8, 2, 2, 16},
};

using Case = std::tuple<Geometry, AdapterKind>;

class GeometrySweep : public ::testing::TestWithParam<Case> {
 protected:
  static SystemConfig makeConfig(const Case& c) {
    const auto& [g, adapter] = c;
    SystemConfig cfg;
    cfg.numCores = g.cores;
    cfg.coresPerTile = g.coresPerTile;
    cfg.tilesPerGroup = g.tilesPerGroup;
    cfg.banksPerTile = g.banksPerTile;
    cfg.wordsPerBank = 32;
    cfg.adapter = adapter;
    cfg.validate();
    return cfg;
  }
  static sync::RmwFlavor flavorFor(AdapterKind k) {
    switch (k) {
      case AdapterKind::kAmoOnly:
        return sync::RmwFlavor::kAmo;
      case AdapterKind::kLrscSingle:
      case AdapterKind::kLrscTable:
        return sync::RmwFlavor::kLrsc;
      default:
        return sync::RmwFlavor::kLrscWait;
    }
  }
};

sim::Task incr(System& sys, Core& core, sim::Addr a, int iters,
               sync::RmwFlavor flavor) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, core.id());
  sync::Backoff bo(sync::BackoffPolicy::fixed(24), rng);
  for (int i = 0; i < iters; ++i) {
    const auto r = co_await sync::fetchAdd(core, flavor, a, 1, bo);
    EXPECT_TRUE(r.performed);
  }
}

// Property: no geometry loses an update under full contention.
TEST_P(GeometrySweep, ContendedIncrementsAreExact) {
  const auto cfg = makeConfig(GetParam());
  System sys(cfg);
  const auto a = sys.allocator().allocGlobal(1);
  constexpr int kIters = 25;
  for (sim::CoreId c = 0; c < cfg.numCores; ++c) {
    sys.spawn(c,
              incr(sys, sys.core(c), a, kIters,
                   flavorFor(std::get<1>(GetParam()))));
  }
  sys.run();
  sys.rethrowFailures();
  EXPECT_TRUE(sys.allTasksDone());
  EXPECT_EQ(sys.peek(a), cfg.numCores * kIters);
}

// Property: per-bank traffic stays addressable — every word of every bank
// is reachable and holds what was stored (exercises the address map end
// to end on odd shapes).
TEST_P(GeometrySweep, EveryBankWordIsAddressable) {
  const auto cfg = makeConfig(GetParam());
  System sys(cfg);
  for (sim::Addr a = 0; a < cfg.numWords(); a += 7) {
    sys.poke(a, static_cast<sim::Word>(a * 2654435761u));
  }
  for (sim::Addr a = 0; a < cfg.numWords(); a += 7) {
    EXPECT_EQ(sys.peek(a), static_cast<sim::Word>(a * 2654435761u));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometrySweep,
    ::testing::Combine(::testing::ValuesIn(kGeometries),
                       ::testing::Values(AdapterKind::kAmoOnly,
                                         AdapterKind::kLrscSingle,
                                         AdapterKind::kLrscTable,
                                         AdapterKind::kLrscWait,
                                         AdapterKind::kColibri)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_" +
             colibri::test::paramName(toString(std::get<1>(info.param)));
    });

}  // namespace
}  // namespace colibri::arch
