// Golden-output corpus: every supported CLI scenario (all adapters x all
// registered workloads, including the eight wgen presets and the three
// data-structure workloads), the litmus tables, the scenario listing, and
// a sample of --json documents are compared byte-for-byte against files
// committed under tests/golden/.
//
// The simulator is bit-deterministic, so any diff here is a real output
// change: either a regression (fix the code) or an intended change —
// regenerate with
//
//   COLIBRI_GOLDEN_REGEN=1 ctest -R test_golden
//
// and commit the updated files with the change that caused them.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/driver.hpp"
#include "exp/scenario.hpp"

namespace colibri {
namespace {

namespace fs = std::filesystem;

#ifndef COLIBRI_GOLDEN_DIR
#error "COLIBRI_GOLDEN_DIR must point at tests/golden"
#endif

const fs::path kGoldenDir = COLIBRI_GOLDEN_DIR;

bool regenerating() {
  const char* v = std::getenv("COLIBRI_GOLDEN_REGEN");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

/// The small deterministic geometry every golden case runs on.
std::vector<std::string> baseArgs() {
  return {"--cores",          "16", "--cores-per-tile", "4",
          "--tiles-per-group", "2",  "--banks-per-tile", "4",
          "--words-per-bank",  "64", "--warmup",         "500",
          "--measure",         "2000"};
}

struct GoldenCase {
  std::string name;  ///< file name under tests/golden/
  std::vector<std::string> args;
  int expectedRc = 0;
};

std::vector<GoldenCase> goldenCases() {
  std::vector<GoldenCase> cases;
  // Every supported adapter x workload pair as CSV.
  for (const auto& s : exp::allScenarios()) {
    if (!s.supported) {
      continue;
    }
    auto args = baseArgs();
    args.insert(args.end(), {"--adapter", s.adapter.name, "--workload",
                             s.workload.name, "--csv"});
    if (s.workload.name == "matmul") {
      args.insert(args.end(), {"--matmul-n", "8"});
    }
    cases.push_back(
        {s.adapter.name + "__" + s.workload.name + ".csv", args});
  }
  // JSON documents (per-rep + aggregate) for a cross-section of workload
  // families on one adapter.
  for (const char* w :
       {"histogram", "hashtable", "wsdeque", "lockfair", "uniform_fa"}) {
    auto args = baseArgs();
    args.insert(args.end(), {"--adapter", "colibri", "--workload", w,
                             "--json", "--reps", "2"});
    cases.push_back({std::string("json__colibri__") + w + ".json", args});
  }
  // The deterministic parallel engine must reproduce the committed
  // sequential bytes exactly: re-run a cross-section of scenarios with
  // --engine-threads 4 against the *same* golden files. The base geometry
  // has two topology groups, so the parallel dispatcher is genuinely
  // active (with two workers) in these cases.
  for (const auto& [a, w] :
       std::vector<std::pair<std::string, std::string>>{
           {"colibri", "zipf_hot"},
           {"colibri", "prodcons"},
           {"lrsc_single", "histogram"},
           {"lrscwait", "msqueue"},
           {"amo", "uniform_fa"}}) {
    auto args = baseArgs();
    args.insert(args.end(), {"--adapter", a, "--workload", w, "--csv",
                             "--engine-threads", "4"});
    cases.push_back({a + "__" + w + ".csv", args});
  }
  {
    auto args = baseArgs();
    args.insert(args.end(), {"--adapter", "colibri", "--workload",
                             "histogram", "--json", "--reps", "2",
                             "--engine-threads", "4"});
    cases.push_back({"json__colibri__histogram.json", args});
  }
  // Litmus: the full fenced matrix, and the unfenced Dekker memory-model
  // probe (which deliberately FAILs its exclusion expectation -> exit 1).
  {
    auto args = baseArgs();
    args.insert(args.end(),
                {"--litmus", "all", "--litmus-matrix", "--csv"});
    cases.push_back({"litmus__matrix.csv", args});
  }
  {
    auto args = baseArgs();
    args.insert(args.end(), {"--adapter", "lrsc_table", "--litmus", "dekker",
                             "--unfenced", "--csv"});
    cases.push_back({"litmus__dekker_unfenced.csv", args, 1});
  }
  cases.push_back({"list.csv", {"--list", "--csv"}});
  return cases;
}

std::string readFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Golden, EveryScenarioMatchesItsCommittedOutput) {
  const auto cases = goldenCases();
  ASSERT_GT(cases.size(), 80u);  // 6 adapters x 16 workloads minus amo gaps
  if (regenerating()) {
    fs::create_directories(kGoldenDir);
  }
  for (const auto& c : cases) {
    std::ostringstream out;
    std::ostringstream err;
    const int rc = cli::runMain(c.args, out, err);
    EXPECT_EQ(rc, c.expectedRc) << c.name << "\nstderr: " << err.str();
    const auto path = kGoldenDir / c.name;
    if (regenerating()) {
      std::ofstream f(path, std::ios::binary);
      f << out.str();
      continue;
    }
    ASSERT_TRUE(fs::exists(path))
        << path << " missing — run with COLIBRI_GOLDEN_REGEN=1 and commit";
    EXPECT_EQ(out.str(), readFile(path)) << c.name;
  }
  if (regenerating()) {
    GTEST_SKIP() << "regenerated " << cases.size() << " golden files under "
                 << kGoldenDir;
  }
}

TEST(Golden, CorpusHasNoStaleFiles) {
  if (regenerating()) {
    GTEST_SKIP();
  }
  ASSERT_TRUE(fs::exists(kGoldenDir));
  std::vector<std::string> expected;
  for (const auto& c : goldenCases()) {
    expected.push_back(c.name);
  }
  for (const auto& entry : fs::directory_iterator(kGoldenDir)) {
    const auto name = entry.path().filename().string();
    EXPECT_NE(std::find(expected.begin(), expected.end(), name),
              expected.end())
        << name << " is in tests/golden/ but no case generates it";
  }
}

}  // namespace
}  // namespace colibri
