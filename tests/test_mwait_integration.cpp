// End-to-end Mwait semantics through the full system (network + banks +
// Qnodes): wake-on-write, expected-value shortcut, queue drains, and the
// interaction with LRwait on the same address. Runs on both wait-capable
// adapters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/system.hpp"
#include "test_util.hpp"

namespace colibri::arch {
namespace {

SystemConfig withAdapter(AdapterKind k) {
  auto c = SystemConfig::smallTest();
  c.adapter = k;
  return c;
}

class MwaitAdapters : public ::testing::TestWithParam<AdapterKind> {};

sim::Task waiter(System& sys, Core& core, sim::Addr a, sim::Word expected,
                 std::vector<std::pair<sim::CoreId, sim::Word>>& wakes) {
  const auto r = co_await core.mwait(a, expected);
  EXPECT_TRUE(r.ok);
  wakes.emplace_back(core.id(), r.value);
  (void)sys;
}

sim::Task writerAt(System& sys, Core& core, sim::Addr a, sim::Word v,
                   sim::Cycle when) {
  co_await core.delay(when - sys.now());
  (void)co_await core.store(a, v);
}

TEST_P(MwaitAdapters, WakesOnWriteWithNewValue) {
  System sys(withAdapter(GetParam()));
  const auto a = sys.allocator().allocGlobal(1);
  sys.poke(a, 5);
  std::vector<std::pair<sim::CoreId, sim::Word>> wakes;
  sys.spawn(0, waiter(sys, sys.core(0), a, 5, wakes));
  sys.spawn(1, writerAt(sys, sys.core(1), a, 42, 50));
  sys.run();
  sys.rethrowFailures();
  ASSERT_EQ(wakes.size(), 1u);
  EXPECT_EQ(wakes[0].second, 42u);
  // The waiter slept from its Mwait until the write arrived (~50 cycles).
  EXPECT_GT(sys.core(0).stats().sleepCycles, 30u);
}

TEST_P(MwaitAdapters, ImmediateWhenValueAlreadyDiffers) {
  System sys(withAdapter(GetParam()));
  const auto a = sys.allocator().allocGlobal(1);
  sys.poke(a, 7);  // expected will be 5: already changed
  std::vector<std::pair<sim::CoreId, sim::Word>> wakes;
  sys.spawn(0, waiter(sys, sys.core(0), a, 5, wakes));
  sys.run();
  sys.rethrowFailures();
  ASSERT_EQ(wakes.size(), 1u);
  EXPECT_EQ(wakes[0].second, 7u);
  EXPECT_LT(sys.core(0).stats().sleepCycles, 10u);  // no real sleep
}

TEST_P(MwaitAdapters, OneWriteDrainsTheWholeWaitQueue) {
  System sys(withAdapter(GetParam()));
  const auto a = sys.allocator().allocGlobal(1);
  sys.poke(a, 0);
  std::vector<std::pair<sim::CoreId, sim::Word>> wakes;
  for (sim::CoreId c = 0; c < 8; ++c) {
    sys.spawn(c, waiter(sys, sys.core(c), a, 0, wakes));
  }
  sys.spawn(8, writerAt(sys, sys.core(8), a, 9, 100));
  sys.run();
  sys.rethrowFailures();
  EXPECT_TRUE(sys.allTasksDone());
  EXPECT_EQ(wakes.size(), 8u);  // everyone woken by the single store
  for (const auto& [core, value] : wakes) {
    EXPECT_EQ(value, 9u);
  }
}

TEST_P(MwaitAdapters, UnrelatedWriteDoesNotWake) {
  System sys(withAdapter(GetParam()));
  const auto a = sys.allocator().allocGlobal(1);
  const auto b = sys.allocator().allocGlobal(1);
  std::vector<std::pair<sim::CoreId, sim::Word>> wakes;
  sys.spawn(0, waiter(sys, sys.core(0), a, 0, wakes));
  sys.spawn(1, writerAt(sys, sys.core(1), b, 1, 40));
  sys.run();  // ends with core 0 still asleep (no event left)
  sys.rethrowFailures();
  EXPECT_TRUE(wakes.empty());
  EXPECT_FALSE(sys.allTasksDone());  // the waiter is legitimately asleep
}

sim::Task rmwThenSignal(System& sys, Core& core, sim::Addr a) {
  (void)sys;
  const auto r = co_await core.lrWait(a);
  EXPECT_TRUE(r.ok);
  co_await core.delay(10);
  (void)co_await core.scWait(a, r.value + 1);
}

TEST_P(MwaitAdapters, ScwaitCommitWakesMwaiters) {
  // An SCwait is a write: Mwait waiters on the same address must be woken
  // by it (this is how Mwait-based notification composes with LRSCwait).
  System sys(withAdapter(GetParam()));
  const auto a = sys.allocator().allocGlobal(1);
  sys.poke(a, 3);
  std::vector<std::pair<sim::CoreId, sim::Word>> wakes;
  sys.spawn(0, rmwThenSignal(sys, sys.core(0), a));
  sys.spawn(1, waiter(sys, sys.core(1), a, 3, wakes));
  sys.run();
  sys.rethrowFailures();
  EXPECT_TRUE(sys.allTasksDone());
  ASSERT_EQ(wakes.size(), 1u);
  EXPECT_EQ(wakes[0].second, 4u);  // the SCwait's value
}

INSTANTIATE_TEST_SUITE_P(Kinds, MwaitAdapters,
                         ::testing::Values(AdapterKind::kLrscWait,
                                           AdapterKind::kColibri),
                         [](const auto& info) {
                           return colibri::test::paramName(
                               toString(info.param));
                         });

// Colibri-specific: the Mwait drain is a cascade of Qnode WakeUpRequests,
// so wake order must follow enqueue order (FIFO fairness for monitors).
TEST(MwaitColibri, DrainOrderIsFifo) {
  System sys(withAdapter(AdapterKind::kColibri));
  const auto a = sys.allocator().allocGlobal(1);
  std::vector<std::pair<sim::CoreId, sim::Word>> wakes;
  // Stagger enqueues so arrival order is deterministic: core c at cycle
  // 10*c (far apart relative to network latency).
  auto staggered = [&wakes](System& s, Core& core, sim::Addr addr,
                            sim::Cycle at) -> sim::Task {
    co_await core.delay(at);
    const auto r = co_await core.mwait(addr, 0);
    EXPECT_TRUE(r.ok);
    wakes.emplace_back(core.id(), r.value);
    (void)s;
  };
  for (sim::CoreId c = 0; c < 6; ++c) {
    sys.spawn(c, staggered(sys, sys.core(c), a, 10 * c));
  }
  sys.spawn(6, writerAt(sys, sys.core(6), a, 1, 200));
  sys.run();
  sys.rethrowFailures();
  ASSERT_EQ(wakes.size(), 6u);
  for (sim::CoreId c = 0; c < 6; ++c) {
    EXPECT_EQ(wakes[c].first, c) << "drain order broke FIFO";
  }
}

TEST(MwaitColibri, SlotExhaustionFailsAdmission) {
  auto cfg = withAdapter(AdapterKind::kColibri);
  cfg.colibriQueuesPerController = 1;
  System sys(cfg);
  // Two different addresses in the SAME bank: the second Mwait finds no
  // free head/tail pair and must be rejected (ok = false).
  const auto a = sys.allocator().allocInBank(0);
  const auto b = sys.allocator().allocInBank(0);
  bool rejected = false;
  auto probe = [&rejected](System&, Core& core, sim::Addr addr,
                           sim::Cycle at) -> sim::Task {
    co_await core.delay(at);
    const auto r = co_await core.mwait(addr, 0);
    if (!r.ok) {
      rejected = true;
    }
  };
  sys.spawn(0, probe(sys, sys.core(0), a, 0));
  sys.spawn(1, probe(sys, sys.core(1), b, 20));
  sys.run();
  sys.rethrowFailures();
  EXPECT_TRUE(rejected);
}

}  // namespace
}  // namespace colibri::arch
