// Colibri controller protocol tests (paper Section IV): slot allocation,
// SuccessorUpdate emission, queue advance via WakeUpRequest, Mwait drains,
// and the message races discussed in Section IV-A.
#include <gtest/gtest.h>

#include "atomics/colibri.hpp"
#include "mock_bank.hpp"

namespace colibri::test {
namespace {

using atomics::ColibriAdapter;
using SlotState = ColibriAdapter::SlotState;

TEST(Colibri, FirstLrwaitAllocatesSlotAndGrants) {
  MockBank bank;
  ColibriAdapter a(bank, 4);
  bank.writeRaw(3, 17);
  a.handle(lrwait(3, 0));
  const auto r = bank.take();
  EXPECT_TRUE(r.resp.ok);
  EXPECT_EQ(r.resp.value, 17u);
  EXPECT_EQ(a.freeSlots(), 3u);
  ASSERT_TRUE(a.grantedCore(3).has_value());
  EXPECT_EQ(*a.grantedCore(3), 0u);
}

TEST(Colibri, SecondLrwaitAppendsAndSendsSuccessorUpdate) {
  MockBank bank;
  ColibriAdapter a(bank, 4);
  a.handle(lrwait(3, 0));
  bank.responses.clear();
  a.handle(lrwait(3, 1));
  EXPECT_TRUE(bank.responses.empty());  // withheld
  ASSERT_EQ(bank.updates.size(), 1u);
  EXPECT_EQ(bank.updates[0].target, 0u);     // previous tail
  EXPECT_EQ(bank.updates[0].successor, 1u);  // new tail
  EXPECT_FALSE(bank.updates[0].successorIsMwait);
}

TEST(Colibri, ThirdLrwaitUpdatesTheNewTail) {
  MockBank bank;
  ColibriAdapter a(bank, 4);
  a.handle(lrwait(3, 0));
  a.handle(lrwait(3, 1));
  a.handle(lrwait(3, 2));
  ASSERT_EQ(bank.updates.size(), 2u);
  EXPECT_EQ(bank.updates[1].target, 1u);
  EXPECT_EQ(bank.updates[1].successor, 2u);
}

TEST(Colibri, SoleScwaitFreesSlotAndReportsLast) {
  MockBank bank;
  ColibriAdapter a(bank, 4);
  a.handle(lrwait(3, 0));
  bank.responses.clear();
  a.handle(scwait(3, 9, 0));
  const auto r = bank.take();
  EXPECT_TRUE(r.resp.ok);
  EXPECT_TRUE(r.resp.lastInQueue);
  EXPECT_EQ(bank.read(3), 9u);
  EXPECT_EQ(a.freeSlots(), 4u);
}

TEST(Colibri, ScwaitWithSuccessorAwaitsWakeUp) {
  MockBank bank;
  ColibriAdapter a(bank, 4);
  a.handle(lrwait(3, 0));
  a.handle(lrwait(3, 1));
  bank.responses.clear();
  a.handle(scwait(3, 9, 0));
  const auto r = bank.take();
  EXPECT_TRUE(r.resp.ok);
  EXPECT_FALSE(r.resp.lastInQueue);  // core 1 is behind us
  EXPECT_TRUE(bank.responses.empty());
  EXPECT_EQ(a.slots()[0].state, SlotState::kAwaitingWakeUp);

  a.handle(wakeup(3, /*successor=*/1, false, 0));
  const auto grant = bank.take();
  EXPECT_EQ(grant.core, 1u);
  EXPECT_TRUE(grant.resp.ok);
  EXPECT_EQ(grant.resp.value, 9u);
  EXPECT_EQ(*a.grantedCore(3), 1u);
}

TEST(Colibri, SlotExhaustionFailsImmediately) {
  MockBank bank;
  ColibriAdapter a(bank, 2);
  a.handle(lrwait(3, 0));
  a.handle(lrwait(4, 1));
  bank.responses.clear();
  a.handle(lrwait(5, 2));  // no free head/tail pair
  const auto r = bank.take();
  EXPECT_FALSE(r.resp.ok);
  EXPECT_EQ(a.stats().lrFails, 1u);
  // Queuing on an *existing* address still works.
  a.handle(lrwait(3, 2));
  EXPECT_EQ(bank.updates.size(), 1u);
}

TEST(Colibri, StoreInvalidatesReservationScwaitFails) {
  MockBank bank;
  ColibriAdapter a(bank, 4);
  bank.writeRaw(3, 1);
  a.handle(lrwait(3, 0));
  bank.responses.clear();
  a.handle(store(3, 50, 7));
  a.handle(scwait(3, 2, 0));
  const auto r = bank.take();
  EXPECT_FALSE(r.resp.ok);
  EXPECT_EQ(bank.read(3), 50u);  // failed SCwait did not overwrite
  EXPECT_EQ(a.freeSlots(), 4u);  // queue still advanced (freed)
}

TEST(Colibri, FailedScwaitStillAdvancesQueue) {
  MockBank bank;
  ColibriAdapter a(bank, 4);
  a.handle(lrwait(3, 0));
  a.handle(lrwait(3, 1));
  bank.responses.clear();
  a.handle(store(3, 50, 7));
  a.handle(scwait(3, 2, 0));
  EXPECT_FALSE(bank.take().resp.ok);
  a.handle(wakeup(3, 1, false, 0));
  const auto grant = bank.take();
  EXPECT_EQ(grant.core, 1u);
  EXPECT_EQ(grant.resp.value, 50u);  // sees the interfering store's value
}

TEST(Colibri, MwaitImmediateOnDifferentValue) {
  MockBank bank;
  ColibriAdapter a(bank, 4);
  bank.writeRaw(3, 9);
  a.handle(mwait(3, /*expected=*/5, 0));
  const auto r = bank.take();
  EXPECT_TRUE(r.resp.ok);
  EXPECT_TRUE(r.resp.lastInQueue);
  EXPECT_EQ(r.resp.value, 9u);
  EXPECT_EQ(a.freeSlots(), 4u);  // no slot consumed
}

TEST(Colibri, MwaitMonitorsAndWakesOnWrite) {
  MockBank bank;
  ColibriAdapter a(bank, 4);
  bank.writeRaw(3, 5);
  a.handle(mwait(3, 5, 0));
  EXPECT_TRUE(bank.responses.empty());
  EXPECT_EQ(a.slots()[0].state, SlotState::kMwaitMonitoring);
  a.handle(store(3, 6, 1));
  const auto r = bank.take();
  EXPECT_EQ(r.core, 0u);
  EXPECT_EQ(r.resp.value, 6u);
  EXPECT_TRUE(r.resp.lastInQueue);
  EXPECT_EQ(a.freeSlots(), 4u);  // sole waiter: slot freed at wake
}

TEST(Colibri, MwaitQueueDrainsThroughWakeUps) {
  MockBank bank;
  ColibriAdapter a(bank, 4);
  bank.writeRaw(3, 5);
  a.handle(mwait(3, 5, 0));
  a.handle(mwait(3, 5, 1));  // appended; SuccessorUpdate to core 0
  ASSERT_EQ(bank.updates.size(), 1u);
  EXPECT_TRUE(bank.updates[0].successorIsMwait);

  a.handle(store(3, 6, 7));
  auto r = bank.take();  // head woken
  EXPECT_EQ(r.core, 0u);
  EXPECT_FALSE(r.resp.lastInQueue);
  EXPECT_EQ(a.slots()[0].state, SlotState::kAwaitingWakeUp);

  // Core 0's Qnode bounces the wake-up for its successor.
  a.handle(wakeup(3, 1, /*succIsMwait=*/true, 0));
  r = bank.take();
  EXPECT_EQ(r.core, 1u);
  EXPECT_TRUE(r.resp.lastInQueue);
  EXPECT_EQ(r.resp.value, 6u);
  EXPECT_EQ(a.freeSlots(), 4u);  // fully drained
}

TEST(Colibri, MixedQueueLrwaitBehindMwait) {
  MockBank bank;
  ColibriAdapter a(bank, 4);
  bank.writeRaw(3, 5);
  a.handle(mwait(3, 5, 0));
  a.handle(lrwait(3, 1));  // waits behind the monitoring Mwait
  bank.responses.clear();
  a.handle(store(3, 6, 7));
  EXPECT_EQ(bank.take().core, 0u);  // Mwait head woken
  a.handle(wakeup(3, 1, /*succIsMwait=*/false, 0));
  const auto grant = bank.take();  // LRwait served as the new head
  EXPECT_EQ(grant.core, 1u);
  EXPECT_EQ(*a.grantedCore(3), 1u);
}

TEST(Colibri, WakeUpWithoutPendingAdvanceTripsInvariant) {
  MockBank bank;
  ColibriAdapter a(bank, 4);
  a.handle(lrwait(3, 0));
  EXPECT_THROW(a.handle(wakeup(3, 1, false, 0)), sim::InvariantViolation);
}

TEST(Colibri, ScwaitFromNonHeadTripsInvariant) {
  MockBank bank;
  ColibriAdapter a(bank, 4);
  a.handle(lrwait(3, 0));
  a.handle(lrwait(3, 1));
  EXPECT_THROW(a.handle(scwait(3, 1, 1)), sim::InvariantViolation);
}

TEST(Colibri, IndependentAddressesUseIndependentSlots) {
  MockBank bank;
  ColibriAdapter a(bank, 4);
  a.handle(lrwait(3, 0));
  a.handle(lrwait(4, 1));
  EXPECT_EQ(bank.responses.size(), 2u);  // both granted concurrently
  EXPECT_EQ(a.freeSlots(), 2u);
  EXPECT_EQ(*a.grantedCore(3), 0u);
  EXPECT_EQ(*a.grantedCore(4), 1u);
}

TEST(Colibri, CountsProtocolMessages) {
  MockBank bank;
  ColibriAdapter a(bank, 4);
  a.handle(lrwait(3, 0));
  a.handle(lrwait(3, 1));
  a.handle(scwait(3, 1, 0));
  a.handle(wakeup(3, 1, false, 0));
  a.handle(scwait(3, 2, 1));
  EXPECT_EQ(a.stats().successorUpdates, 1u);
  EXPECT_EQ(a.stats().wakeUpRequests, 1u);
  EXPECT_EQ(a.stats().lrGrants, 2u);
  EXPECT_EQ(a.stats().scSuccesses, 2u);
}

}  // namespace
}  // namespace colibri::test
