// Workload harness tests: every histogram mode, queue variant, the
// producer/consumer pipeline and the matmul kernel run correctly on small
// systems, self-verify, and drain cleanly.
#include <gtest/gtest.h>

#include <string>

#include "arch/system.hpp"
#include "test_util.hpp"
#include "workloads/histogram.hpp"
#include "workloads/matmul.hpp"
#include "workloads/msqueue.hpp"
#include "workloads/prodcons.hpp"

namespace colibri::workloads {
namespace {

using arch::AdapterKind;
using arch::System;
using arch::SystemConfig;

SystemConfig withAdapter(AdapterKind k) {
  auto c = SystemConfig::smallTest();
  c.adapter = k;
  return c;
}

MeasureWindow shortWindow() { return MeasureWindow{500, 4000}; }

struct HistCase {
  AdapterKind adapter;
  HistogramMode mode;
};

class HistogramModes : public ::testing::TestWithParam<HistCase> {};

TEST_P(HistogramModes, RunsAndVerifiesSum) {
  System sys(withAdapter(GetParam().adapter));
  HistogramParams p;
  p.bins = 4;
  p.mode = GetParam().mode;
  p.window = shortWindow();
  p.backoff = sync::BackoffPolicy::fixed(64);
  const auto r = runHistogram(sys, p);
  EXPECT_TRUE(r.sumVerified);
  EXPECT_GT(r.totalUpdates, 0u);
  EXPECT_GT(r.rate.opsPerCycle, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, HistogramModes,
    ::testing::Values(
        HistCase{AdapterKind::kAmoOnly, HistogramMode::kAmoAdd},
        HistCase{AdapterKind::kLrscSingle, HistogramMode::kLrsc},
        HistCase{AdapterKind::kLrscTable, HistogramMode::kLrsc},
        HistCase{AdapterKind::kLrscWait, HistogramMode::kLrscWait},
        HistCase{AdapterKind::kColibri, HistogramMode::kLrscWait},
        HistCase{AdapterKind::kAmoOnly, HistogramMode::kAmoLock},
        HistCase{AdapterKind::kLrscTable, HistogramMode::kLrscLock},
        HistCase{AdapterKind::kColibri, HistogramMode::kLrwaitLock},
        HistCase{AdapterKind::kColibri, HistogramMode::kMcsMwaitLock},
        HistCase{AdapterKind::kColibri, HistogramMode::kMcsPollLock}),
    [](const auto& info) {
      return test::paramName(std::string(arch::toString(info.param.adapter)) +
                               "_" + toString(info.param.mode));
    });

TEST(Histogram, SingleBinFullContention) {
  System sys(withAdapter(AdapterKind::kColibri));
  HistogramParams p;
  p.bins = 1;
  p.mode = HistogramMode::kLrscWait;
  p.window = shortWindow();
  const auto r = runHistogram(sys, p);
  EXPECT_TRUE(r.sumVerified);
  // Full contention on one word still makes steady progress.
  EXPECT_GT(r.rate.opsPerCycle, 0.01);
}

TEST(Histogram, WaitModeOnPlainLrscAdapterIsRejected) {
  System sys(withAdapter(AdapterKind::kLrscSingle));
  HistogramParams p;
  p.mode = HistogramMode::kLrscWait;
  EXPECT_THROW((void)runHistogram(sys, p), sim::InvariantViolation);
}

TEST(Histogram, SubsetOfCoresOnlyCountsParticipants) {
  System sys(withAdapter(AdapterKind::kColibri));
  HistogramParams p;
  p.bins = 4;
  p.mode = HistogramMode::kLrscWait;
  p.window = shortWindow();
  p.cores = {0, 5, 10};
  const auto r = runHistogram(sys, p);
  EXPECT_TRUE(r.sumVerified);
  EXPECT_EQ(r.rate.perCoreWindowOps.size(), 3u);
}

TEST(Histogram, LowContentionIsFasterThanHighContention) {
  const auto run = [](std::uint32_t bins) {
    System sys(withAdapter(AdapterKind::kColibri));
    HistogramParams p;
    p.bins = bins;
    p.mode = HistogramMode::kLrscWait;
    p.window = MeasureWindow{500, 6000};
    return runHistogram(sys, p).rate.opsPerCycle;
  };
  EXPECT_GT(run(16), 2.0 * run(1));
}

TEST(Histogram, ColibriBeatsLrscAtHighContention) {
  // The paper's headline effect, on the small test system.
  System colibriSys(withAdapter(AdapterKind::kColibri));
  System lrscSys(withAdapter(AdapterKind::kLrscSingle));
  HistogramParams p;
  p.bins = 1;
  p.window = MeasureWindow{500, 8000};
  p.mode = HistogramMode::kLrscWait;
  const auto colibri = runHistogram(colibriSys, p);
  p.mode = HistogramMode::kLrsc;
  const auto lrsc = runHistogram(lrscSys, p);
  // On this 16-core test system the margin is modest; the full 256-core
  // gap (the paper's 6.5x) is reproduced by bench_fig3_histogram.
  EXPECT_GT(colibri.rate.opsPerCycle, 1.3 * lrsc.rate.opsPerCycle);
}

struct QueueCase {
  AdapterKind adapter;
  QueueVariant variant;
};

class QueueVariants : public ::testing::TestWithParam<QueueCase> {};

TEST_P(QueueVariants, RunsAndPreservesFifo) {
  System sys(withAdapter(GetParam().adapter));
  QueueParams p;
  p.variant = GetParam().variant;
  p.window = shortWindow();
  const auto r = runQueue(sys, p);
  EXPECT_TRUE(r.fifoVerified);
  EXPECT_GT(r.totalAccesses, 0u);
  EXPECT_GT(r.rate.opsPerCycle, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, QueueVariants,
    ::testing::Values(QueueCase{AdapterKind::kLrscTable, QueueVariant::kLrsc},
                      QueueCase{AdapterKind::kColibri,
                                QueueVariant::kLrscWait},
                      QueueCase{AdapterKind::kAmoOnly, QueueVariant::kLock}),
    [](const auto& info) {
      return test::paramName(std::string(arch::toString(info.param.adapter)) +
                               "_" + toString(info.param.variant));
    });

TEST(Queue, FewCoresStillCorrect) {
  System sys(withAdapter(AdapterKind::kColibri));
  QueueParams p;
  p.variant = QueueVariant::kLrscWait;
  p.window = shortWindow();
  p.cores = {0, 1};
  const auto r = runQueue(sys, p);
  EXPECT_TRUE(r.fifoVerified);
}

class ProdConsWaits : public ::testing::TestWithParam<bool> {};

TEST_P(ProdConsWaits, NoItemLostOrDuplicated) {
  System sys(withAdapter(AdapterKind::kColibri));
  ProdConsParams p;
  p.producers = 4;
  p.consumers = 4;
  p.useMwait = GetParam();
  p.window = shortWindow();
  const auto r = runProdCons(sys, p);
  EXPECT_TRUE(r.allItemsSeen);
  EXPECT_GT(r.itemsConsumed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Waits, ProdConsWaits, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? std::string("mwait")
                                             : std::string("poll");
                         });

TEST(ProdCons, MwaitConsumersSleepPollersDont) {
  ProdConsParams p;
  p.producers = 2;
  p.consumers = 6;
  p.produceDelay = 200;  // starved consumers: lots of waiting
  p.window = MeasureWindow{500, 6000};

  p.useMwait = true;
  System mwaitSys(withAdapter(AdapterKind::kColibri));
  const auto slept = runProdCons(mwaitSys, p);

  p.useMwait = false;
  System pollSys(withAdapter(AdapterKind::kColibri));
  const auto polled = runProdCons(pollSys, p);

  EXPECT_GT(slept.consumerSleepFraction, 0.3);
  EXPECT_LT(polled.consumerSleepFraction, 0.05);
  // Polling consumers issue far more memory requests per item.
  EXPECT_GT(polled.consumerRequestsPerItem,
            2.0 * slept.consumerRequestsPerItem);
}

TEST(Matmul, ComputesCorrectProduct) {
  System sys(withAdapter(AdapterKind::kAmoOnly));
  MatmulParams p;
  p.n = 12;
  p.workers = {0, 1, 2, 3};
  const auto r = runMatmul(sys, p);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.macs, 12u * 12u * 12u);
  EXPECT_GT(r.duration, 0u);
}

TEST(Matmul, MoreWorkersFinishFaster) {
  const auto run = [](std::vector<sim::CoreId> workers) {
    System sys(withAdapter(AdapterKind::kAmoOnly));
    MatmulParams p;
    p.n = 12;
    p.workers = std::move(workers);
    return runMatmul(sys, p).duration;
  };
  const auto t1 = run({0});
  const auto t4 = run({0, 1, 2, 3});
  EXPECT_LT(t4 * 2, t1);  // at least 2x speedup from 4 workers
}

TEST(Interference, LrscPollersSlowWorkersMoreThanColibri) {
  // Constrain the fabric so 14 pollers can congest it (the full-scale
  // effect is Fig. 5's bench; this is the small-system sanity check).
  auto congestible = [](AdapterKind k) {
    auto c = withAdapter(k);
    c.groupLinkBandwidth = 1;
    c.localGroupBandwidth = 1;
    return c;
  };

  MatmulParams mm;
  mm.n = 12;
  mm.workers = {0, 1};

  System baseSys(congestible(AdapterKind::kColibri));
  const auto baseline = runMatmul(baseSys, mm).duration;

  InterferenceParams ip;
  ip.matmul = mm;
  ip.bins = 1;
  for (sim::CoreId c = 2; c < 16; ++c) {
    ip.pollers.push_back(c);
  }

  ip.pollerMode = HistogramMode::kLrscWait;
  System colibriSys(congestible(AdapterKind::kColibri));
  const auto withColibri = runInterference(colibriSys, ip).matmul.duration;

  ip.pollerMode = HistogramMode::kLrsc;
  ip.pollerBackoff = sync::BackoffPolicy::none();  // worst-case retry storm
  System lrscSys(congestible(AdapterKind::kLrscSingle));
  const auto withLrsc = runInterference(lrscSys, ip).matmul.duration;

  // Colibri pollers sleep; LR/SC pollers retry and congest the fabric.
  EXPECT_GT(static_cast<double>(withLrsc),
            1.1 * static_cast<double>(withColibri));
  EXPECT_LT(static_cast<double>(withColibri),
            1.35 * static_cast<double>(baseline));
}

}  // namespace
}  // namespace colibri::workloads
