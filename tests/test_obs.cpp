// Observability layer: the metric registry's sharded counters, the span
// tracer's Chrome output, and the end-to-end determinism contract — sink
// bytes are identical across reruns, SweepRunner thread counts, and
// --engine-threads values, while stdout stays byte-identical whether or
// not a sink is attached.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/driver.hpp"
#include "exp/run.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/check.hpp"
#include "test_util.hpp"
#include "wgen/presets.hpp"

namespace colibri {
namespace {

TEST(ObsRegistry, CountersAccumulateAndSumAcrossSlots) {
  obs::Registry reg;
  const auto a = reg.counter("a");
  const auto b = reg.counter("b");
  reg.add(a);
  reg.add(a, 4);
  EXPECT_EQ(reg.counterTotal(a), 5u);
  EXPECT_EQ(reg.counterTotal(b), 0u);

  // Outside any worker window currentWindowShard() is -1, so adds land in
  // slot 0 even after the table is sharded — and prior values survive.
  reg.setShardSlots(4);
  reg.add(b, 7);
  EXPECT_EQ(reg.counterTotal(a), 5u);
  EXPECT_EQ(reg.counterTotal(b), 7u);

  EXPECT_THROW(reg.setShardSlots(2), sim::InvariantViolation);
}

TEST(ObsRegistry, HistogramBucketsAreLog2) {
  obs::Registry reg;
  const auto h = reg.histogram("lat");
  EXPECT_EQ(obs::Registry::bucketOf(0), 0u);
  EXPECT_EQ(obs::Registry::bucketOf(1), 1u);
  EXPECT_EQ(obs::Registry::bucketOf(2), 2u);
  EXPECT_EQ(obs::Registry::bucketOf(3), 2u);
  EXPECT_EQ(obs::Registry::bucketOf(4), 3u);
  EXPECT_EQ(obs::Registry::bucketOf(~0ULL),
            obs::Registry::kHistogramBuckets - 1);

  reg.record(h, 0);
  reg.record(h, 3);
  reg.record(h, 3);
  EXPECT_EQ(reg.bucketTotal(h, 0), 1u);
  EXPECT_EQ(reg.bucketTotal(h, 2), 2u);
  EXPECT_EQ(reg.bucketTotal(h, 1), 0u);
}

TEST(ObsRegistry, GaugesProbeUntilCleared) {
  obs::Registry reg;
  int x = 41;
  const auto g = reg.gauge("x", [&x] { return static_cast<double>(x); });
  x = 42;
  EXPECT_EQ(reg.gaugeValue(g.cell), 42.0);
  EXPECT_TRUE(reg.probesLive());
  reg.clearProbes();
  EXPECT_FALSE(reg.probesLive());
  EXPECT_THROW((void)reg.gaugeValue(g.cell), sim::InvariantViolation);
}

TEST(ObsTracer, EmitsValidChromeTraceJson) {
  obs::Tracer tr;
  tr.bind(2, 4);
  tr.onIssue(0, "load", 10);
  tr.onBankArrive(0, 3, 14, 15);
  tr.onRespond(0, 18);
  tr.onComplete(0, 22);
  tr.onPosted(1, "store", 11);
  tr.onPhase(0, "rmw", 5, 30);
  EXPECT_EQ(tr.spanCount(), 1u);

  std::ostringstream os;
  tr.writeChromeTrace(os);
  const std::string doc = os.str();
  EXPECT_TRUE(test::isValidJson(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"net.req\""), std::string::npos);
  EXPECT_NE(doc.find("\"net.resp\""), std::string::npos);
  EXPECT_NE(doc.find("simulated-cycles"), std::string::npos);
  // The parent span, the bank-track mirror, the instant, and the phase.
  EXPECT_NE(doc.find("\"load\""), std::string::npos);
  EXPECT_NE(doc.find("\"store\""), std::string::npos);
  EXPECT_NE(doc.find("\"rmw\""), std::string::npos);
}

TEST(ObsTracer, SampleEveryKeepsEveryKthOpPerCore) {
  obs::Tracer tr(2);
  tr.bind(1, 1);
  for (int i = 0; i < 6; ++i) {
    tr.onIssue(0, "load", 10 * i);
    tr.onBankArrive(0, 0, 10 * i + 1, 10 * i + 2);
    tr.onRespond(0, 10 * i + 3);
    tr.onComplete(0, 10 * i + 4);
  }
  EXPECT_EQ(tr.spanCount(), 3u);  // ops 0, 2, 4
}

exp::RunSpec smallSpec() {
  exp::RunSpec spec;
  spec.label = "obs-test";
  spec.config = arch::SystemConfig::smallTest();
  spec.window = workloads::MeasureWindow{200, 800};
  spec.workload = "zipf_hot";
  const auto* preset = wgen::findPreset("zipf_hot");
  EXPECT_NE(preset, nullptr);
  wgen::WgenParams p;
  p.kernel = preset->spec;
  spec.params = p;
  return spec;
}

std::string metricsCsvOf(std::uint32_t engineThreads) {
  obs::Recorder::Config rc;
  rc.sampleInterval = 250;
  obs::Recorder rec(rc);
  auto spec = smallSpec();
  spec.config.engineThreads = engineThreads;
  spec.config.recorder = &rec;
  const auto res = exp::runOne(spec);
  EXPECT_TRUE(res.verified);
  std::ostringstream os;
  rec.writeMetricsCsv(os);
  return os.str();
}

TEST(ObsRecorder, MetricsCsvIsByteIdenticalAcrossRerunsAndEngineThreads) {
  const std::string seq = metricsCsvOf(1);
  EXPECT_NE(seq.find("cycle,"), std::string::npos);
  EXPECT_NE(seq.find("core.issuedOps"), std::string::npos);
  // Diagnostic metrics never reach the byte-compared sink.
  EXPECT_EQ(seq.find("framepool.arenaBytes"), std::string::npos);
  EXPECT_EQ(seq.find("engine.windows"), std::string::npos);
  EXPECT_GT(std::count(seq.begin(), seq.end(), '\n'), 3);

  EXPECT_EQ(metricsCsvOf(1), seq) << "rerun changed sink bytes";
  EXPECT_EQ(metricsCsvOf(2), seq) << "engine threads changed sink bytes";
}

TEST(ObsRecorder, SecondRunOnSameRecorderIsRejected) {
  obs::Recorder rec;
  auto spec = smallSpec();
  spec.config.recorder = &rec;
  (void)exp::runOne(spec);
  EXPECT_THROW((void)exp::runOne(spec), sim::InvariantViolation);
}

TEST(ObsRecorder, RepsBeyondZeroRunUnobserved) {
  obs::Recorder rec;
  auto spec = smallSpec();
  spec.config.recorder = &rec;
  // rep != 0 must null the recorder inside runOne — the same Recorder can
  // then still observe rep 0 afterwards.
  (void)exp::runOne(spec, 1);
  const auto res = exp::runOne(spec, 0);
  EXPECT_TRUE(res.verified);
  EXPECT_TRUE(rec.sampledAnything());
}

// --- CLI end-to-end ------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

struct CliRun {
  int rc = 0;
  std::string out;
  std::string err;
};

CliRun runCli(std::vector<std::string> args) {
  std::ostringstream out, err;
  CliRun r;
  r.rc = cli::runMain(args, out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

std::vector<std::string> smallArgs() {
  return {"--workload", "zipf_hot", "--cores", "64", "--tiles-per-group",
          "4",          "--warmup", "200",     "--measure", "800"};
}

std::string tmpPath(const char* name) {
  return testing::TempDir() + name;
}

TEST(ObsCli, SinksAreIdenticalAcrossEngineAndSweepThreads) {
  struct Case {
    const char* engineThreads;
    const char* sweepThreads;
  };
  const Case cases[] = {{"1", "1"}, {"4", "1"}, {"1", "4"}};
  std::string baseCsv;
  std::string baseTrace;
  for (const auto& c : cases) {
    const std::string csv = tmpPath("obs_m.csv");
    const std::string trace = tmpPath("obs_t.json");
    auto args = smallArgs();
    for (const char* extra :
         {"--engine-threads", c.engineThreads, "--threads", c.sweepThreads}) {
      args.emplace_back(extra);
    }
    args.emplace_back("--metrics-csv=" + csv);
    args.emplace_back("--trace=" + trace);
    args.emplace_back("--metrics-interval=250");
    const auto r = runCli(args);
    ASSERT_EQ(r.rc, 0) << r.err;
    const std::string csvBytes = slurp(csv);
    const std::string traceBytes = slurp(trace);
    EXPECT_TRUE(test::isValidJson(traceBytes));
    if (baseCsv.empty()) {
      baseCsv = csvBytes;
      baseTrace = traceBytes;
      continue;
    }
    EXPECT_EQ(csvBytes, baseCsv)
        << "metrics CSV differs at engine-threads=" << c.engineThreads
        << " threads=" << c.sweepThreads;
    EXPECT_EQ(traceBytes, baseTrace)
        << "trace differs at engine-threads=" << c.engineThreads
        << " threads=" << c.sweepThreads;
  }
}

TEST(ObsCli, AttachingSinksLeavesStdoutUntouched) {
  // Table mode.
  const auto plain = runCli(smallArgs());
  ASSERT_EQ(plain.rc, 0) << plain.err;
  {
    auto args = smallArgs();
    args.emplace_back("--metrics-csv=" + tmpPath("obs_so.csv"));
    args.emplace_back("--trace=" + tmpPath("obs_so.json"));
    const auto sink = runCli(args);
    ASSERT_EQ(sink.rc, 0) << sink.err;
    EXPECT_EQ(sink.out, plain.out);
  }
  // JSON mode: a trace-only sink must not grow the document either.
  auto jsonArgs = smallArgs();
  jsonArgs.emplace_back("--json");
  const auto plainJson = runCli(jsonArgs);
  ASSERT_EQ(plainJson.rc, 0) << plainJson.err;
  EXPECT_EQ(plainJson.out.find("timeseries"), std::string::npos);
  EXPECT_EQ(plainJson.out.find("\"engine\""), std::string::npos);
  {
    auto args = jsonArgs;
    args.emplace_back("--trace=" + tmpPath("obs_sj.json"));
    const auto sink = runCli(args);
    ASSERT_EQ(sink.rc, 0) << sink.err;
    EXPECT_EQ(sink.out, plainJson.out);
  }
}

TEST(ObsCli, MetricsSinkAddsTimeseriesBlockToJson) {
  auto args = smallArgs();
  args.emplace_back("--json");
  args.emplace_back("--metrics-csv=" + tmpPath("obs_ts.csv"));
  args.emplace_back("--metrics-interval=250");
  const auto r = runCli(args);
  ASSERT_EQ(r.rc, 0) << r.err;
  EXPECT_TRUE(test::isValidJson(r.out));
  EXPECT_NE(r.out.find("\"timeseries\""), std::string::npos);
  EXPECT_NE(r.out.find("\"interval\": 250"), std::string::npos);
  EXPECT_NE(r.out.find("\"core.opLatency\""), std::string::npos);
  EXPECT_NE(r.out.find("\"samples\""), std::string::npos);
}

TEST(ObsCli, JsonEngineBlockIsOptInAndObeysBarrierInvariant) {
  auto args = smallArgs();
  for (const char* extra : {"--json", "--json-engine", "--engine-threads",
                            "4"}) {
    args.emplace_back(extra);
  }
  const auto r = runCli(args);
  ASSERT_EQ(r.rc, 0) << r.err;
  EXPECT_TRUE(test::isValidJson(r.out));
  const auto pos = r.out.find("\"engine\"");
  ASSERT_NE(pos, std::string::npos);
  auto grab = [&](const char* key) {
    const auto kpos = r.out.find(key, pos);
    EXPECT_NE(kpos, std::string::npos) << key;
    return std::strtoull(r.out.c_str() + kpos + std::strlen(key), nullptr,
                         10);
  };
  const auto windows = grab("\"windows\": ");
  EXPECT_GT(windows, 0u);
  EXPECT_EQ(grab("\"barriersTaken\": ") + grab("\"barriersElided\": "),
            windows);
}

TEST(ObsCli, StatsRoutesThroughRegistry) {
  auto args = smallArgs();
  args.emplace_back("--stats");
  const auto r = runCli(args);
  ASSERT_EQ(r.rc, 0) << r.err;
  EXPECT_NE(r.err.find("obs: core.issuedOps = "), std::string::npos)
      << r.err;
  EXPECT_NE(r.err.find("obs: core.opLatency["), std::string::npos) << r.err;
  // Diagnostic metrics do appear on stderr (unlike the byte-compared
  // sinks), and --stats tolerates --reps > 1 (rep 0 is the observed one).
  EXPECT_NE(r.err.find("obs: framepool.arenaBytes = "), std::string::npos);

  auto reps = smallArgs();
  reps.emplace_back("--stats");
  reps.emplace_back("--reps=2");
  EXPECT_EQ(runCli(reps).rc, 0);
}

TEST(ObsCli, SinkFlagMisuseIsRejected) {
  {
    auto args = smallArgs();
    args.emplace_back("--metrics-csv=" + tmpPath("obs_rej.csv"));
    args.emplace_back("--reps=2");
    const auto r = runCli(args);
    EXPECT_EQ(r.rc, 2);
    EXPECT_NE(r.err.find("--reps 1"), std::string::npos) << r.err;
  }
  {
    auto args = smallArgs();
    args.emplace_back("--trace=" + tmpPath("obs_rej.json"));
    args.emplace_back("--trace-sample=0");
    EXPECT_EQ(runCli(args).rc, 2);
  }
  {
    auto args = smallArgs();
    args.emplace_back("--json-engine");
    const auto r = runCli(args);
    EXPECT_EQ(r.rc, 2);
    EXPECT_NE(r.err.find("--json"), std::string::npos) << r.err;
  }
  {
    const auto r = runCli({"--litmus", "dekker",
                           "--trace=" + tmpPath("obs_rej2.json")});
    EXPECT_EQ(r.rc, 2);
    EXPECT_NE(r.err.find("litmus"), std::string::npos) << r.err;
  }
}

TEST(ObsCli, TraceSampleThinsTheTraceDeterministically) {
  auto traceOf = [&](const char* sample) {
    const std::string path = tmpPath("obs_k.json");
    auto args = smallArgs();
    args.emplace_back("--trace=" + path);
    args.emplace_back(std::string("--trace-sample=") + sample);
    const auto r = runCli(args);
    EXPECT_EQ(r.rc, 0) << r.err;
    return slurp(path);
  };
  const auto full = traceOf("1");
  const auto thin = traceOf("8");
  EXPECT_TRUE(test::isValidJson(thin));
  EXPECT_LT(thin.size(), full.size() / 2);
  EXPECT_EQ(traceOf("8"), thin) << "sampled trace must stay deterministic";
}

}  // namespace
}  // namespace colibri
