// System + Core integration tests: end-to-end memory operations through
// the real network and banks, per-adapter atomic increments, sleep
// accounting, and the mutual-exclusion guarantee of the wait pair.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "arch/system.hpp"
#include "test_util.hpp"
#include "sync/atomic.hpp"

namespace colibri::arch {
namespace {

SystemConfig withAdapter(AdapterKind k) {
  auto c = SystemConfig::smallTest();
  c.adapter = k;
  return c;
}

sim::Task singleOps(System& sys, Core& core, sim::Addr a, bool* done) {
  (void)co_await core.store(a, 7);
  const auto v = co_await core.load(a);
  EXPECT_EQ(v.value, 7u);
  const auto old = co_await core.amoAdd(a, 3);
  EXPECT_EQ(old.value, 7u);
  const auto v2 = co_await core.load(a);
  EXPECT_EQ(v2.value, 10u);
  EXPECT_EQ(sys.peek(a), 10u);
  *done = true;
}

TEST(System, BasicLoadStoreAmoRoundTrip) {
  System sys(withAdapter(AdapterKind::kAmoOnly));
  const auto a = sys.allocator().allocGlobal(1);
  bool done = false;
  sys.spawn(0, singleOps(sys, sys.core(0), a, &done));
  sys.run();
  sys.rethrowFailures();
  EXPECT_TRUE(done);
  EXPECT_TRUE(sys.allTasksDone());
}

sim::Task incrementer(System& sys, Core& core, sim::Addr a, int iters,
                      sync::RmwFlavor flavor) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, core.id());
  sync::Backoff bo(sync::BackoffPolicy::fixed(32), rng);
  for (int i = 0; i < iters; ++i) {
    const auto r = co_await sync::fetchAdd(core, flavor, a, 1, bo);
    EXPECT_TRUE(r.performed);
  }
}

struct AdapterCase {
  AdapterKind adapter;
  sync::RmwFlavor flavor;
};

class ContendedIncrement : public ::testing::TestWithParam<AdapterCase> {};

// Property (all adapters): N cores x M increments on one word lose no
// update — atomicity holds under full contention.
TEST_P(ContendedIncrement, NoLostUpdates) {
  auto cfg = withAdapter(GetParam().adapter);
  System sys(cfg);
  const auto a = sys.allocator().allocGlobal(1);
  constexpr int kIters = 40;
  for (sim::CoreId c = 0; c < cfg.numCores; ++c) {
    sys.spawn(c, incrementer(sys, sys.core(c), a, kIters, GetParam().flavor));
  }
  sys.run();
  sys.rethrowFailures();
  EXPECT_TRUE(sys.allTasksDone());
  EXPECT_EQ(sys.peek(a), cfg.numCores * kIters);
}

INSTANTIATE_TEST_SUITE_P(
    Adapters, ContendedIncrement,
    ::testing::Values(
        AdapterCase{AdapterKind::kAmoOnly, sync::RmwFlavor::kAmo},
        AdapterCase{AdapterKind::kLrscSingle, sync::RmwFlavor::kLrsc},
        AdapterCase{AdapterKind::kLrscTable, sync::RmwFlavor::kLrsc},
        AdapterCase{AdapterKind::kLrscWait, sync::RmwFlavor::kLrscWait},
        AdapterCase{AdapterKind::kColibri, sync::RmwFlavor::kLrscWait}),
    [](const auto& info) { return test::paramName(toString(info.param.adapter)); });

sim::Task sleeper(System& sys, Core& core, sim::Addr a) {
  (void)sys;
  const auto r = co_await core.lrWait(a);
  EXPECT_TRUE(r.ok);
  co_await core.delay(20);  // hold the grant: the other core must sleep
  (void)co_await core.scWait(a, r.value + 1);
}

TEST(System, LrWaitSleepIsAccounted) {
  System sys(withAdapter(AdapterKind::kColibri));
  const auto a = sys.allocator().allocGlobal(1);
  // Both cores queue; the second sleeps until the first's SCwait.
  sys.spawn(0, sleeper(sys, sys.core(0), a));
  sys.spawn(1, sleeper(sys, sys.core(1), a));
  sys.run();
  sys.rethrowFailures();
  EXPECT_EQ(sys.peek(a), 2u);
  const auto sleep0 = sys.core(0).stats().sleepCycles;
  const auto sleep1 = sys.core(1).stats().sleepCycles;
  // Core 1's response was withheld while core 0 held the grant for 20
  // cycles: it slept through that window; core 0 only paid its round trip.
  EXPECT_GT(sleep1, sleep0 + 15);
}

// Mutual exclusion: between an LRwait grant and the matching SCwait, no
// other core may receive a grant for the same address. We detect overlap
// via a shared "in critical section" flag that is only touched between the
// pair — any overlap trips the EXPECT inside.
struct MutexProbe {
  bool inCs = false;
  int entries = 0;
};

sim::Task csProbe(System& sys, Core& core, sim::Addr a, MutexProbe& probe,
                  int iters) {
  (void)sys;
  for (int i = 0; i < iters; ++i) {
    const auto r = co_await core.lrWait(a);
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(probe.inCs) << "two cores inside the LRwait/SCwait pair";
    probe.inCs = true;
    ++probe.entries;
    co_await core.delay(3);
    probe.inCs = false;
    (void)co_await core.scWait(a, r.value + 1);
  }
}

class WaitAdapters : public ::testing::TestWithParam<AdapterKind> {};

TEST_P(WaitAdapters, GrantsAreMutuallyExclusive) {
  System sys(withAdapter(GetParam()));
  const auto a = sys.allocator().allocGlobal(1);
  MutexProbe probe;
  constexpr int kIters = 25;
  for (sim::CoreId c = 0; c < 8; ++c) {
    sys.spawn(c, csProbe(sys, sys.core(c), a, probe, kIters));
  }
  sys.run();
  sys.rethrowFailures();
  EXPECT_EQ(probe.entries, 8 * kIters);
  EXPECT_EQ(sys.peek(a), 8u * kIters);
}

INSTANTIATE_TEST_SUITE_P(Kinds, WaitAdapters,
                         ::testing::Values(AdapterKind::kLrscWait,
                                           AdapterKind::kColibri),
                         [](const auto& info) { return test::paramName(toString(info.param)); });

TEST(System, PostedStoreDoesNotBlockTheCore) {
  System sys(withAdapter(AdapterKind::kAmoOnly));
  // A store to a remote bank followed by local compute: the compute should
  // not wait for the store's network traversal.
  const auto remote = sys.allocator().allocInBank(12);
  bool done = false;
  sim::Cycle doneAt = 0;
  auto task = [](System& s, Core& core, sim::Addr a, bool* flag,
                 sim::Cycle* when) -> sim::Task {
    (void)co_await core.store(a, 1);
    *when = s.now();
    *flag = true;
  };
  sys.spawn(0, task(sys, sys.core(0), remote, &done, &doneAt));
  sys.run();
  sys.rethrowFailures();
  EXPECT_TRUE(done);
  // The core resumed immediately after the issue slot, not after the
  // remote round trip.
  EXPECT_LE(doneAt, 1u);
  EXPECT_EQ(sys.peek(remote), 1u);
}

TEST(System, IssueIntervalPacesBackToBackOps) {
  auto cfg = withAdapter(AdapterKind::kAmoOnly);
  cfg.issueInterval = 4;
  System sys(cfg);
  const auto a = sys.allocator().allocInBank(0);  // local to core 0
  auto task = [](System&, Core& core, sim::Addr addr) -> sim::Task {
    for (int i = 0; i < 5; ++i) {
      (void)co_await core.store(addr, static_cast<sim::Word>(i));
    }
  };
  sys.spawn(0, task(sys, sys.core(0), a));
  sys.run();
  // 5 stores at >= 4-cycle spacing: the last departs at >= cycle 16.
  EXPECT_GE(sys.now(), 16u);
}

TEST(System, ExceptionInTaskPropagates) {
  System sys(withAdapter(AdapterKind::kAmoOnly));
  auto task = [](System&, Core& core) -> sim::Task {
    co_await core.delay(2);
    throw std::runtime_error("kernel bug");
  };
  EXPECT_THROW(
      {
        sys.spawn(0, task(sys, sys.core(0)));
        sys.run();
        sys.rethrowFailures();
      },
      std::runtime_error);
}

TEST(System, PeekPokeBypassSimulation) {
  System sys(withAdapter(AdapterKind::kColibri));
  const auto a = sys.allocator().allocGlobal(4);
  for (int i = 0; i < 4; ++i) {
    sys.poke(a + i, static_cast<sim::Word>(i * 10));
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sys.peek(a + i), static_cast<sim::Word>(i * 10));
  }
  EXPECT_EQ(sys.now(), 0u);  // no simulated time passed
}

}  // namespace
}  // namespace colibri::arch
