// LRSCwait_q adapter protocol tests (Sections III-A/III-B of the paper):
// in-order service, withheld responses, capacity failures, Mwait.
#include <gtest/gtest.h>

#include "atomics/lrscwait.hpp"
#include "mock_bank.hpp"

namespace colibri::test {
namespace {

TEST(LrscWait, FirstLrwaitGrantedImmediately) {
  MockBank bank;
  atomics::LrscWaitAdapter a(bank, 8);
  bank.writeRaw(3, 11);
  a.handle(lrwait(3, 0));
  const auto r = bank.take();
  EXPECT_TRUE(r.resp.ok);
  EXPECT_EQ(r.resp.value, 11u);
  EXPECT_TRUE(a.holdsGrant(0, 3));
}

TEST(LrscWait, SecondLrwaitIsWithheldUntilScwait) {
  MockBank bank;
  atomics::LrscWaitAdapter a(bank, 8);
  a.handle(lrwait(3, 0));
  bank.responses.clear();
  a.handle(lrwait(3, 1));
  // Core 1 gets no response yet: the linearization point moved to LRwait.
  EXPECT_TRUE(bank.responses.empty());
  a.handle(scwait(3, 5, 0));
  ASSERT_EQ(bank.responses.size(), 2u);
  EXPECT_TRUE(bank.take().resp.ok);           // core 0's SCwait success
  const auto grant = bank.take();             // core 1's delayed LRwait
  EXPECT_EQ(grant.core, 1u);
  EXPECT_EQ(grant.resp.value, 5u);  // sees core 0's freshly written value
}

TEST(LrscWait, ServesWaitersInArrivalOrder) {
  MockBank bank;
  atomics::LrscWaitAdapter a(bank, 8);
  a.handle(lrwait(3, 0));
  a.handle(lrwait(3, 1));
  a.handle(lrwait(3, 2));
  bank.responses.clear();
  a.handle(scwait(3, 1, 0));
  EXPECT_EQ(bank.responses[1].core, 1u);  // after core 0's sc response
  bank.responses.clear();
  a.handle(scwait(3, 2, 1));
  EXPECT_EQ(bank.responses[1].core, 2u);
}

TEST(LrscWait, FullQueueFailsImmediately) {
  MockBank bank;
  atomics::LrscWaitAdapter a(bank, 2);
  a.handle(lrwait(3, 0));
  a.handle(lrwait(3, 1));
  bank.responses.clear();
  a.handle(lrwait(3, 2));  // capacity 2 exceeded
  const auto r = bank.take();
  EXPECT_EQ(r.core, 2u);
  EXPECT_FALSE(r.resp.ok);
  EXPECT_EQ(a.stats().lrFails, 1u);
}

TEST(LrscWait, QueuesToDifferentAddressesAreIndependent) {
  MockBank bank;
  atomics::LrscWaitAdapter a(bank, 8);
  a.handle(lrwait(3, 0));
  a.handle(lrwait(4, 1));
  // Both are the oldest for their address: both granted.
  EXPECT_EQ(bank.responses.size(), 2u);
  EXPECT_TRUE(a.holdsGrant(0, 3));
  EXPECT_TRUE(a.holdsGrant(1, 4));
}

TEST(LrscWait, StoreInvalidatesGrantScwaitFailsButQueueAdvances) {
  MockBank bank;
  atomics::LrscWaitAdapter a(bank, 8);
  bank.writeRaw(3, 1);
  a.handle(lrwait(3, 0));
  a.handle(lrwait(3, 1));
  bank.responses.clear();
  a.handle(store(3, 99, 5));  // interferes with core 0's reservation
  a.handle(scwait(3, 2, 0));
  const auto fail = bank.take();
  EXPECT_EQ(fail.core, 0u);
  EXPECT_FALSE(fail.resp.ok);
  EXPECT_EQ(bank.read(3), 99u);  // failed SCwait did not write
  const auto grant = bank.take();  // queue advanced despite the failure
  EXPECT_EQ(grant.core, 1u);
  EXPECT_EQ(grant.resp.value, 99u);
}

TEST(LrscWait, ScwaitWithoutGrantTripsInvariant) {
  MockBank bank;
  atomics::LrscWaitAdapter a(bank, 8);
  EXPECT_THROW(a.handle(scwait(3, 1, 0)), sim::InvariantViolation);
}

TEST(LrscWait, MwaitImmediateWhenValueAlreadyDiffers) {
  MockBank bank;
  atomics::LrscWaitAdapter a(bank, 8);
  bank.writeRaw(3, 7);
  a.handle(mwait(3, /*expected=*/5, 0));
  const auto r = bank.take();
  EXPECT_TRUE(r.resp.ok);
  EXPECT_EQ(r.resp.value, 7u);
  EXPECT_EQ(a.occupancy(), 0u);  // nothing stays enqueued
}

TEST(LrscWait, MwaitSleepsUntilWrite) {
  MockBank bank;
  atomics::LrscWaitAdapter a(bank, 8);
  bank.writeRaw(3, 5);
  a.handle(mwait(3, 5, 0));
  EXPECT_TRUE(bank.responses.empty());
  a.handle(store(4, 1, 1));  // unrelated address: still asleep
  EXPECT_TRUE(bank.responses.empty());
  a.handle(store(3, 6, 1));
  const auto r = bank.take();
  EXPECT_EQ(r.core, 0u);
  EXPECT_EQ(r.resp.value, 6u);  // woken with the new value
}

TEST(LrscWait, WriteWakesAllQueuedMwaits) {
  MockBank bank;
  atomics::LrscWaitAdapter a(bank, 8);
  a.handle(mwait(3, 0, 0));
  a.handle(mwait(3, 0, 1));
  a.handle(mwait(3, 0, 2));
  EXPECT_TRUE(bank.responses.empty());
  a.handle(store(3, 1, 7));
  EXPECT_EQ(bank.responses.size(), 3u);
  EXPECT_EQ(a.occupancy(), 0u);
}

TEST(LrscWait, ScwaitCommitWakesMwaitsOnSameAddress) {
  MockBank bank;
  atomics::LrscWaitAdapter a(bank, 8);
  a.handle(lrwait(3, 0));
  bank.responses.clear();
  a.handle(mwait(3, 0, 1));  // queued behind the granted LRwait
  EXPECT_TRUE(bank.responses.empty());
  a.handle(scwait(3, 42, 0));
  ASSERT_EQ(bank.responses.size(), 2u);
  EXPECT_EQ(bank.responses[1].core, 1u);
  EXPECT_EQ(bank.responses[1].resp.value, 42u);
}

TEST(LrscWait, CapacityOneBehavesLikeLrscWait1) {
  MockBank bank;
  atomics::LrscWaitAdapter a(bank, 1);
  a.handle(lrwait(3, 0));
  bank.responses.clear();
  a.handle(lrwait(3, 1));
  EXPECT_FALSE(bank.take().resp.ok);  // immediate fail, as in Sec. III-B
  a.handle(scwait(3, 1, 0));
  EXPECT_TRUE(bank.take().resp.ok);
  a.handle(lrwait(3, 1));  // now there is room
  EXPECT_TRUE(bank.take().resp.ok);
}

TEST(LrscWait, GrantAfterDequeueSkipsOtherAddressEntries) {
  MockBank bank;
  atomics::LrscWaitAdapter a(bank, 8);
  a.handle(lrwait(3, 0));
  a.handle(lrwait(4, 1));
  a.handle(lrwait(3, 2));
  bank.responses.clear();
  a.handle(scwait(3, 9, 0));
  ASSERT_EQ(bank.responses.size(), 2u);
  EXPECT_EQ(bank.responses[1].core, 2u);  // core 2, not core 1 (addr 4)
}

}  // namespace
}  // namespace colibri::test
