// Synchronization layer tests: CAS semantics, spin locks, MCS locks and
// barriers — all verified by protecting a deliberately non-atomic critical
// section and checking that no update is lost.
#include <gtest/gtest.h>

#include <string>

#include "arch/system.hpp"
#include "test_util.hpp"
#include "sync/atomic.hpp"
#include "sync/barrier.hpp"
#include "sync/mcs.hpp"
#include "sync/spinlock.hpp"

namespace colibri::sync {
namespace {

using arch::AdapterKind;
using arch::Core;
using arch::System;
using arch::SystemConfig;

SystemConfig withAdapter(AdapterKind k) {
  auto c = SystemConfig::smallTest();
  c.adapter = k;
  return c;
}

// --- CAS ---------------------------------------------------------------

sim::Task casOnce(System& sys, Core& core, sim::Addr a, sim::Word expected,
                  sim::Word desired, RmwFlavor flavor, CasResult* out) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, core.id());
  Backoff bo(BackoffPolicy::fixed(16), rng);
  *out = co_await compareAndSwap(core, flavor, a, expected, desired, bo);
}

class CasFlavors : public ::testing::TestWithParam<RmwFlavor> {
 protected:
  AdapterKind adapterFor(RmwFlavor f) {
    return f == RmwFlavor::kLrsc ? AdapterKind::kLrscTable
                                 : AdapterKind::kColibri;
  }
};

TEST_P(CasFlavors, SwapsOnMatch) {
  System sys(withAdapter(adapterFor(GetParam())));
  const auto a = sys.allocator().allocGlobal(1);
  sys.poke(a, 5);
  CasResult r;
  sys.spawn(0, casOnce(sys, sys.core(0), a, 5, 9, GetParam(), &r));
  sys.run();
  sys.rethrowFailures();
  EXPECT_TRUE(r.swapped);
  EXPECT_EQ(r.observed, 5u);
  EXPECT_EQ(sys.peek(a), 9u);
}

TEST_P(CasFlavors, FailsOnMismatchWithoutWriting) {
  System sys(withAdapter(adapterFor(GetParam())));
  const auto a = sys.allocator().allocGlobal(1);
  sys.poke(a, 7);
  CasResult r;
  sys.spawn(0, casOnce(sys, sys.core(0), a, 5, 9, GetParam(), &r));
  sys.run();
  sys.rethrowFailures();
  EXPECT_FALSE(r.swapped);
  EXPECT_EQ(r.observed, 7u);
  EXPECT_EQ(sys.peek(a), 7u);
}

TEST_P(CasFlavors, ContendedCasExactlyOneWinnerPerValue) {
  System sys(withAdapter(adapterFor(GetParam())));
  const auto a = sys.allocator().allocGlobal(1);
  sys.poke(a, 0);
  // 8 cores all try CAS(0 -> id+1): exactly one must win.
  std::vector<CasResult> results(8);
  for (sim::CoreId c = 0; c < 8; ++c) {
    sys.spawn(c, casOnce(sys, sys.core(c), a, 0, c + 1, GetParam(),
                         &results[c]));
  }
  sys.run();
  sys.rethrowFailures();
  int winners = 0;
  for (const auto& r : results) {
    winners += r.swapped ? 1 : 0;
  }
  EXPECT_EQ(winners, 1);
  EXPECT_NE(sys.peek(a), 0u);
}

INSTANTIATE_TEST_SUITE_P(Flavors, CasFlavors,
                         ::testing::Values(RmwFlavor::kLrsc,
                                           RmwFlavor::kLrscWait),
                         [](const auto& info) {
                           return test::paramName(toString(info.param));
                         });

// --- Spin locks ----------------------------------------------------------

struct LockCase {
  AdapterKind adapter;
  SpinLockKind lock;
};

sim::Task lockedIncrements(System& sys, Core& core, sim::Addr lock,
                           sim::Addr counter, SpinLockKind kind, int iters) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, core.id());
  Backoff bo(BackoffPolicy::fixed(32), rng);
  for (int i = 0; i < iters; ++i) {
    co_await acquireLock(core, kind, lock, bo);
    // Deliberately non-atomic read-modify-write: only mutual exclusion can
    // make this correct.
    const auto v = co_await core.load(counter);
    co_await core.delay(2);
    (void)co_await core.amoSwap(counter, v.value + 1);  // acked store
    co_await releaseLock(core, lock);
  }
}

class SpinLocks : public ::testing::TestWithParam<LockCase> {};

TEST_P(SpinLocks, MutualExclusionUnderContention) {
  System sys(withAdapter(GetParam().adapter));
  const auto lock = sys.allocator().allocGlobal(1);
  const auto counter = sys.allocator().allocGlobal(1);
  constexpr int kIters = 30;
  for (sim::CoreId c = 0; c < 8; ++c) {
    sys.spawn(c, lockedIncrements(sys, sys.core(c), lock, counter,
                                  GetParam().lock, kIters));
  }
  sys.run();
  sys.rethrowFailures();
  EXPECT_EQ(sys.peek(counter), 8u * kIters);
  EXPECT_EQ(sys.peek(lock), 0u);  // released at the end
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SpinLocks,
    ::testing::Values(LockCase{AdapterKind::kAmoOnly, SpinLockKind::kAmoTas},
                      LockCase{AdapterKind::kLrscSingle,
                               SpinLockKind::kLrscTas},
                      LockCase{AdapterKind::kLrscTable,
                               SpinLockKind::kLrscTas},
                      LockCase{AdapterKind::kColibri,
                               SpinLockKind::kLrwaitTas}),
    [](const auto& info) {
      return test::paramName(std::string(arch::toString(info.param.adapter)) +
                               "_" + toString(info.param.lock));
    });

// --- MCS lock ------------------------------------------------------------

struct McsCase {
  AdapterKind adapter;
  WaitKind wait;
};

sim::Task mcsIncrements(System& sys, Core& core, McsLock& lock,
                        sim::Addr counter, int iters) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, core.id());
  Backoff bo(BackoffPolicy::fixed(32), rng);
  for (int i = 0; i < iters; ++i) {
    co_await lock.acquire(core, bo);
    const auto v = co_await core.load(counter);
    co_await core.delay(2);
    (void)co_await core.amoSwap(counter, v.value + 1);
    co_await lock.release(core, bo);
  }
}

class McsLocks : public ::testing::TestWithParam<McsCase> {};

TEST_P(McsLocks, MutualExclusionUnderContention) {
  System sys(withAdapter(GetParam().adapter));
  auto nodes = McsNodes::create(sys);
  const auto tail = sys.allocator().allocGlobal(1);
  const auto counter = sys.allocator().allocGlobal(1);
  const auto casFlavor = GetParam().adapter == AdapterKind::kColibri
                             ? RmwFlavor::kLrscWait
                             : RmwFlavor::kLrsc;
  McsLock lock(tail, nodes, casFlavor, GetParam().wait);
  constexpr int kIters = 25;
  for (sim::CoreId c = 0; c < 8; ++c) {
    sys.spawn(c, mcsIncrements(sys, sys.core(c), lock, counter, kIters));
  }
  sys.run();
  sys.rethrowFailures();
  EXPECT_EQ(sys.peek(counter), 8u * kIters);
  EXPECT_EQ(sys.peek(tail), 0u);  // queue empty at the end
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, McsLocks,
    ::testing::Values(McsCase{AdapterKind::kLrscTable, WaitKind::kPoll},
                      McsCase{AdapterKind::kColibri, WaitKind::kPoll},
                      McsCase{AdapterKind::kColibri, WaitKind::kMwait}),
    [](const auto& info) {
      return test::paramName(std::string(arch::toString(info.param.adapter)) +
                               "_" + toString(info.param.wait));
    });

TEST(McsLock, MwaitWaitersSleep) {
  System sys(withAdapter(AdapterKind::kColibri));
  auto nodes = McsNodes::create(sys);
  const auto tail = sys.allocator().allocGlobal(1);
  const auto counter = sys.allocator().allocGlobal(1);
  McsLock lock(tail, nodes, RmwFlavor::kLrscWait, WaitKind::kMwait);
  for (sim::CoreId c = 0; c < 8; ++c) {
    sys.spawn(c, mcsIncrements(sys, sys.core(c), lock, counter, 10));
  }
  sys.run();
  sys.rethrowFailures();
  std::uint64_t sleep = 0;
  for (sim::CoreId c = 0; c < 8; ++c) {
    sleep += sys.core(c).stats().sleepCycles;
  }
  EXPECT_GT(sleep, 100u);  // waiters actually slept instead of polling
}

// --- Barrier ---------------------------------------------------------------

sim::Task barrierRounds(System& sys, Core& core, CentralBarrier& bar,
                        std::vector<int>& phase, int rounds) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, core.id());
  Backoff bo(BackoffPolicy::fixed(32), rng);
  sim::Word sense = 0;
  for (int r = 0; r < rounds; ++r) {
    // Every core must observe every other core's phase >= r before anyone
    // reaches r+1: that is exactly what the barrier must enforce.
    phase[core.id()] = r;
    co_await bar.wait(core, sense, bo);
    for (sim::CoreId c = 0; c < 8; ++c) {
      EXPECT_GE(phase[c], r) << "core " << c << " overtaken in round " << r;
    }
    co_await core.delay(5 + core.id());
  }
}

class Barriers : public ::testing::TestWithParam<WaitKind> {};

TEST_P(Barriers, NoCoreOvertakesARound) {
  System sys(withAdapter(AdapterKind::kColibri));
  CentralBarrier bar(sys, 8, GetParam());
  std::vector<int> phase(8, -1);
  for (sim::CoreId c = 0; c < 8; ++c) {
    sys.spawn(c, barrierRounds(sys, sys.core(c), bar, phase, 6));
  }
  sys.run();
  sys.rethrowFailures();
  EXPECT_TRUE(sys.allTasksDone());
}

INSTANTIATE_TEST_SUITE_P(Waits, Barriers,
                         ::testing::Values(WaitKind::kPoll, WaitKind::kMwait),
                         [](const auto& info) {
                           return test::paramName(toString(info.param));
                         });

// --- Backoff -----------------------------------------------------------

TEST(Backoff, NonePolicyReturnsZero) {
  sim::Xoshiro256 rng(1);
  Backoff b(BackoffPolicy::none(), rng);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(b.next(), 0u);
  }
}

TEST(Backoff, FixedStaysNearBase) {
  sim::Xoshiro256 rng(1);
  Backoff b(BackoffPolicy::fixed(128), rng);
  for (int i = 0; i < 100; ++i) {
    const auto w = b.next();
    EXPECT_GE(w, 96u);
    EXPECT_LE(w, 160u);
  }
}

TEST(Backoff, ExponentialGrowsAndCaps) {
  sim::Xoshiro256 rng(1);
  Backoff b(BackoffPolicy::exponential(16, 256), rng);
  sim::Cycle prev = 0;
  sim::Cycle last = 0;
  for (int i = 0; i < 10; ++i) {
    last = b.next();
    if (i > 0 && i < 4) {
      EXPECT_GT(last, prev);  // growing phase (jitter < doubling)
    }
    prev = last;
  }
  EXPECT_LE(last, 256u + 64u);  // capped (+ jitter)
  b.reset();
  EXPECT_LE(b.next(), 24u);  // back to base
}

}  // namespace
}  // namespace colibri::sync
