// RNG and statistics unit tests.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace colibri::sim {
namespace {

TEST(Xoshiro, DeterministicForSameSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro, StreamsDiffer) {
  auto a = Xoshiro256::forStream(7, 0);
  auto b = Xoshiro256::forStream(7, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a() == b() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Xoshiro, BelowStaysInRange) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(1), 0u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Xoshiro, BelowCoversAllValues) {
  Xoshiro256 rng(5);
  std::array<int, 8> seen{};
  for (int i = 0; i < 4000; ++i) {
    seen[rng.below(8)]++;
  }
  for (int v : seen) {
    EXPECT_GT(v, 300);  // each bucket near 500
  }
}

TEST(Xoshiro, Uniform01InUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(WindowedCounter, SplitsAtWindow) {
  WindowedCounter c;
  c.setWindow(100, 200);
  c.record(50);
  c.record(100);
  c.record(150, 3);
  c.record(199);
  c.record(200);
  EXPECT_EQ(c.total(), 7u);
  EXPECT_EQ(c.inWindow(), 5u);
  EXPECT_DOUBLE_EQ(c.rate(1000), 5.0 / 100.0);
}

TEST(WindowedCounter, RateClampsToSimEnd) {
  WindowedCounter c;
  c.setWindow(0, 1000);
  c.record(10, 50);
  EXPECT_DOUBLE_EQ(c.rate(100), 0.5);
}

TEST(Summary, BasicMoments) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const auto s = Summary::of(xs);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, 1.4142, 1e-3);
}

TEST(Summary, EvenCountMedianAverages) {
  const std::vector<double> xs{1, 2, 3, 10};
  EXPECT_DOUBLE_EQ(Summary::of(xs).median, 2.5);
}

TEST(Summary, EmptyIsZeros) {
  const auto s = Summary::of({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summary, PercentilesInterpolateLinearly) {
  // 0..100: q * 100 lands exactly on the interpolated value.
  std::vector<double> xs(101);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(i);
  }
  const auto s = Summary::of(xs);
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p95, 95.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
  EXPECT_DOUBLE_EQ(s.p50, s.median);  // p50 and median agree by definition

  // Interpolation between ranks: p50 of {1, 2, 3, 10} sits halfway.
  const std::vector<double> four{1, 2, 3, 10};
  const auto f = Summary::of(four);
  EXPECT_DOUBLE_EQ(f.p50, 2.5);
  EXPECT_DOUBLE_EQ(f.p50, f.median);
  // q = 0.95 over 4 samples: pos = 2.85 → 3 + 0.85 * (10 - 3).
  EXPECT_DOUBLE_EQ(f.p95, 3.0 + 0.85 * 7.0);
}

TEST(Summary, PercentileSortedEdgeCases) {
  EXPECT_DOUBLE_EQ(Summary::percentileSorted({}, 0.5), 0.0);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(Summary::percentileSorted(one, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(Summary::percentileSorted(one, 0.99), 7.0);
  const std::vector<double> two{1.0, 3.0};
  EXPECT_DOUBLE_EQ(Summary::percentileSorted(two, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Summary::percentileSorted(two, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(Summary::percentileSorted(two, 0.5), 2.0);
  const auto s = Summary::of({});
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(Summary, JainIndexFairVsUnfair) {
  const std::vector<std::uint64_t> fair{10, 10, 10, 10};
  const std::vector<std::uint64_t> unfair{40, 0, 0, 0};
  EXPECT_DOUBLE_EQ(Summary::jainIndex(fair), 1.0);
  EXPECT_DOUBLE_EQ(Summary::jainIndex(unfair), 0.25);
}

TEST(Accumulator, TracksMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 6.0}) {
    a.add(x);
  }
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
  EXPECT_NEAR(a.stddev(), 1.633, 1e-3);
}

}  // namespace
}  // namespace colibri::sim
