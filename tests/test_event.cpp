// InlineEvent + calendar event-queue tests: inline vs heap storage, move
// semantics, destruction accounting, steady-state allocation freedom, and
// a golden-order determinism check of the calendar queue against a
// reference binary-heap engine (the seed implementation's semantics).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "arch/system.hpp"
#include "sim/engine.hpp"
#include "sim/event.hpp"
#include "sim/eventqueue.hpp"
#include "sim/random.hpp"
#include "sync/atomic.hpp"

namespace colibri::sim {
namespace {

// --- InlineEvent storage and lifetime -----------------------------------

struct Counters {
  int constructed = 0;
  int destroyed = 0;
  int moved = 0;
  int invoked = 0;
};

struct Probe {
  Counters* c;
  explicit Probe(Counters* counters) : c(counters) { ++c->constructed; }
  Probe(Probe&& o) noexcept : c(o.c) {
    ++c->constructed;
    ++c->moved;
  }
  Probe(const Probe& o) : c(o.c) { ++c->constructed; }
  Probe& operator=(const Probe&) = delete;
  Probe& operator=(Probe&&) = delete;
  ~Probe() { ++c->destroyed; }
  void operator()() const { ++c->invoked; }
};
static_assert(InlineEvent::fitsInline<Probe>);

TEST(InlineEvent, EmptyByDefault) {
  InlineEvent ev;
  EXPECT_FALSE(static_cast<bool>(ev));
  EXPECT_THROW(ev(), InvariantViolation);
}

TEST(InlineEvent, SmallCallableStaysInline) {
  const auto before = InlineEvent::heapFallbackCount();
  int hits = 0;
  InlineEvent ev([&hits] { ++hits; });
  EXPECT_EQ(InlineEvent::heapFallbackCount(), before);
  EXPECT_TRUE(static_cast<bool>(ev));
  ev();
  ev();
  EXPECT_EQ(hits, 2);
}

TEST(InlineEvent, OversizedCaptureFallsBackToHeapAndStillWorks) {
  std::array<std::uint64_t, 16> big{};  // 128 bytes > kInlineSize
  big[3] = 7;
  int out = 0;
  const auto before = InlineEvent::heapFallbackCount();
  InlineEvent ev([big, &out] { out = static_cast<int>(big[3]); });
  EXPECT_EQ(InlineEvent::heapFallbackCount(), before + 1);
  ev();
  EXPECT_EQ(out, 7);
}

TEST(InlineEvent, FitsInlineReflectsTheBudget) {
  struct Small {
    void* a;
    void* b;
    void operator()() const {}
  };
  struct Oversized {
    std::array<char, InlineEvent::kInlineSize + 1> bytes;
    void operator()() const {}
  };
  static_assert(InlineEvent::fitsInline<Small>);
  static_assert(!InlineEvent::fitsInline<Oversized>);
  // std::function itself fits inline: wrapping one (System::at) adds no
  // InlineEvent-level allocation on top of the function's own storage.
  static_assert(InlineEvent::fitsInline<std::function<void()>>);
}

TEST(InlineEvent, MoveTransfersOwnership) {
  Counters c;
  {
    InlineEvent a{Probe(&c)};
    InlineEvent b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(b));
    b();
  }
  EXPECT_EQ(c.invoked, 1);
  EXPECT_EQ(c.constructed, c.destroyed);  // nothing leaked, nothing double-freed
}

TEST(InlineEvent, MoveAssignmentDestroysThePreviousCallable) {
  Counters first;
  Counters second;
  {
    InlineEvent a{Probe(&first)};
    InlineEvent b{Probe(&second)};
    a = std::move(b);
    EXPECT_EQ(first.constructed, first.destroyed);  // old callable gone
    EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
    a();
  }
  EXPECT_EQ(second.invoked, 1);
  EXPECT_EQ(second.constructed, second.destroyed);
}

TEST(InlineEvent, ResetDestroysWithoutInvoking) {
  Counters c;
  InlineEvent ev{Probe(&c)};
  ev.reset();
  EXPECT_FALSE(static_cast<bool>(ev));
  EXPECT_EQ(c.invoked, 0);
  EXPECT_EQ(c.constructed, c.destroyed);
}

TEST(InlineEvent, HeapCallableMovesWithoutReallocating) {
  std::array<std::uint64_t, 16> big{};
  int out = 0;
  InlineEvent a([big, &out] { ++out; });
  const auto before = InlineEvent::heapFallbackCount();
  InlineEvent b(std::move(a));
  EXPECT_EQ(InlineEvent::heapFallbackCount(), before);  // move never allocates
  b();
  EXPECT_EQ(out, 1);
}

// --- Engine/queue lifetime and allocation behavior ----------------------

TEST(EngineEvents, RunDestroysEachEventExactlyOnce) {
  Counters c;
  {
    Engine e;
    for (int i = 0; i < 100; ++i) {
      e.scheduleAt(static_cast<Cycle>(i % 7), Probe(&c));
    }
    e.run();
    EXPECT_EQ(c.invoked, 100);
  }
  EXPECT_EQ(c.constructed, c.destroyed);
}

TEST(EngineEvents, ClearDestroysPendingEventsWithoutRunningThem) {
  Counters c;
  Engine e;
  for (int i = 0; i < 50; ++i) {
    e.scheduleAt(static_cast<Cycle>(i), Probe(&c));
  }
  e.clear();
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(c.invoked, 0);
  EXPECT_EQ(c.constructed, c.destroyed);
}

TEST(EventQueue, SteadyStateSchedulingReusesPooledNodes) {
  EventQueue q;
  const auto heapBefore = InlineEvent::heapFallbackCount();
  std::uint64_t fired = 0;
  Cycle when = 0;
  InlineEvent ev;
  q.schedule(0, [&fired] { ++fired; });
  const std::size_t allocatedAfterFirst = q.allocatedNodes();
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(q.popIfAtMost(kCycleNever, when, ev));
    ev();
    q.schedule(when + 1, [&fired] { ++fired; });
  }
  EXPECT_EQ(q.allocatedNodes(), allocatedAfterFirst);  // free-list reuse
  EXPECT_EQ(InlineEvent::heapFallbackCount(), heapBefore);
  EXPECT_EQ(fired, 10000u);
}

TEST(EventQueue, FarFutureEventsParkInTheOverflowHeap) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(2000, [&order] { order.push_back(1); });  // beyond the window
  q.schedule(1500, [&order] { order.push_back(0); });  // beyond the window
  q.schedule(10, [&order] { order.push_back(-1); });   // bucket
  EXPECT_EQ(q.overflowSize(), 2u);

  Cycle when = 0;
  InlineEvent ev;
  ASSERT_TRUE(q.popIfAtMost(kCycleNever, when, ev));
  ev();  // the bucket event at 10
  ASSERT_TRUE(q.popIfAtMost(kCycleNever, when, ev));
  ev();  // overflow event at 1500; window is now [1500, 1500+N)
  EXPECT_EQ(when, 1500u);

  // 2000 now lies inside the bucket window: a new event at the same cycle
  // must still run after the older overflow entry (seq tie-break).
  q.schedule(2000, [&order] { order.push_back(2); });
  ASSERT_TRUE(q.popIfAtMost(kCycleNever, when, ev));
  ev();
  ASSERT_TRUE(q.popIfAtMost(kCycleNever, when, ev));
  ev();
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2}));
  EXPECT_TRUE(q.empty());
}

// --- Golden-order determinism vs a reference binary heap ----------------

// The seed engine's exact semantics: std::priority_queue over (when, seq)
// with stable FIFO tie-break. The calendar queue must reproduce its
// execution order event for event.
class ReferenceEngine {
 public:
  [[nodiscard]] Cycle now() const { return now_; }

  void scheduleAt(Cycle when, std::function<void()> ev) {
    ASSERT_GE(when, now_);
    heap_.push(Item{when, nextSeq_++, std::move(ev)});
  }

  std::size_t runUntil(Cycle horizon) {
    std::size_t ran = 0;
    while (!heap_.empty() && heap_.top().when <= horizon) {
      Item item = std::move(const_cast<Item&>(heap_.top()));
      heap_.pop();
      now_ = item.when;
      item.ev();
      ++ran;
    }
    if (horizon != kCycleNever && now_ < horizon) {
      now_ = horizon;
    }
    return ran;
  }

  std::size_t step(std::size_t n) {
    std::size_t ran = 0;
    while (ran < n && !heap_.empty()) {
      Item item = std::move(const_cast<Item&>(heap_.top()));
      heap_.pop();
      now_ = item.when;
      item.ev();
      ++ran;
    }
    return ran;
  }

  std::size_t run() { return runUntil(kCycleNever); }

  void clear() {
    while (!heap_.empty()) {
      heap_.pop();
    }
  }

 private:
  struct Item {
    Cycle when;
    std::uint64_t seq;
    std::function<void()> ev;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };
  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  Cycle now_ = 0;
  std::uint64_t nextSeq_ = 0;
};

// Randomized self-expanding workload. Children are derived purely from the
// parent's id, so the two engines diverge immediately if their execution
// orders ever differ.
template <typename EngineT>
struct Script {
  EngineT& e;
  std::vector<std::pair<Cycle, int>> order;
  int nextId = 0;

  void spawn(Cycle when, int depth) {
    const int id = nextId++;
    e.scheduleAt(when, [this, id, depth] {
      order.emplace_back(e.now(), id);
      if (depth >= 3) {
        return;
      }
      const auto h = static_cast<std::uint64_t>(id) * 2654435761u;
      if (h % 3 != 0) {
        spawn(e.now() + h % 50, depth + 1);  // near future (bucket window)
      }
      if (h % 7 == 0) {
        spawn(e.now() + 3000 + h % 4000, depth + 1);  // far (overflow heap)
      }
      if (h % 5 == 0) {
        spawn(e.now(), depth + 1);  // same cycle: pure seq tie-break
      }
    });
  }
};

TEST(EventQueue, GoldenOrderMatchesReferenceBinaryHeap) {
  // One deterministic schedule shared by both engines.
  std::vector<Cycle> initial;
  Xoshiro256 rng(0x60D13);
  for (int i = 0; i < 300; ++i) {
    initial.push_back(rng.below(2500));
  }

  Engine real;
  ReferenceEngine ref;
  Script<Engine> realScript{real, {}, 0};
  Script<ReferenceEngine> refScript{ref, {}, 0};
  for (const Cycle when : initial) {
    realScript.spawn(when, 0);
    refScript.spawn(when, 0);
  }

  // Mixed horizons exercise partial drains between schedule bursts.
  EXPECT_EQ(real.runUntil(400), ref.runUntil(400));
  EXPECT_EQ(real.step(37), ref.step(37));
  EXPECT_EQ(real.runUntil(2000), ref.runUntil(2000));
  realScript.spawn(real.now() + 11, 0);
  refScript.spawn(ref.now() + 11, 0);
  EXPECT_EQ(real.run(), ref.run());

  ASSERT_GT(realScript.order.size(), 300u);
  EXPECT_EQ(realScript.order, refScript.order);
}

TEST(EventQueue, GoldenOrderAcrossClear) {
  Engine real;
  ReferenceEngine ref;
  Script<Engine> realScript{real, {}, 0};
  Script<ReferenceEngine> refScript{ref, {}, 0};
  for (int i = 0; i < 100; ++i) {
    const Cycle when = (static_cast<Cycle>(i) * 97) % 1700;
    realScript.spawn(when, 0);
    refScript.spawn(when, 0);
  }
  EXPECT_EQ(real.runUntil(800), ref.runUntil(800));
  real.clear();
  ref.clear();
  EXPECT_TRUE(real.empty());

  // The queue must come back clean after the drop: same orders again.
  realScript.spawn(real.now() + 5, 0);
  refScript.spawn(ref.now() + 5, 0);
  EXPECT_EQ(real.run(), ref.run());
  EXPECT_EQ(realScript.order, refScript.order);
}

// --- Whole-simulation allocation freedom --------------------------------

sim::Task incrementLoop(arch::System& sys, arch::Core& core, Addr a,
                        int iters) {
  auto rng = Xoshiro256::forStream(sys.config().seed, core.id());
  sync::Backoff bo(sync::BackoffPolicy::fixed(32), rng);
  for (int i = 0; i < iters; ++i) {
    (void)co_await sync::fetchAdd(core, sync::RmwFlavor::kLrscWait, a, 1, bo);
  }
}

TEST(InlineEvent, SimulatedWorkloadSchedulesZeroHeapFallbacks) {
  auto cfg = arch::SystemConfig::smallTest();
  cfg.adapter = arch::AdapterKind::kColibri;
  arch::System sys(cfg);
  const auto a = sys.allocator().allocGlobal(1);

  const auto before = InlineEvent::heapFallbackCount();
  constexpr int kIters = 50;
  for (CoreId c = 0; c < cfg.numCores; ++c) {
    sys.spawn(c, incrementLoop(sys, sys.core(c), a, kIters));
  }
  sys.run();
  sys.rethrowFailures();
  EXPECT_EQ(sys.peek(a), cfg.numCores * kIters);
  // Every closure the core/bank/network path schedules fits the inline
  // buffer: the whole run must not touch the event heap fallback.
  EXPECT_EQ(InlineEvent::heapFallbackCount(), before);
}

}  // namespace
}  // namespace colibri::sim
