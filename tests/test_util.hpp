// Shared test helpers.
#pragma once

#include <cctype>
#include <string>
#include <string_view>

namespace colibri::test {

/// gtest parameterized-test names must be [A-Za-z0-9_]; our enum toString
/// values use dashes. Sanitize.
inline std::string paramName(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

}  // namespace colibri::test
