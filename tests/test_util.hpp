// Shared test helpers.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>

namespace colibri::test {

/// gtest parameterized-test names must be [A-Za-z0-9_]; our enum toString
/// values use dashes. Sanitize.
inline std::string paramName(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

/// Minimal RFC 8259 recursive-descent validator, strict enough to catch
/// writer bugs (dangling commas, unescaped control chars, bad numbers).
/// Used by the tests of report::JsonWriter / exp::writeJson.
class JsonValidator {
 public:
  static bool valid(std::string_view s) {
    JsonValidator v{s};
    v.ws();
    return v.value() && (v.ws(), v.pos_ == s.size());
  }

 private:
  explicit JsonValidator(std::string_view s) : s_(s) {}

  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  bool eat(char c) {
    if (peek() != c) {
      return false;
    }
    ++pos_;
    return true;
  }
  void ws() {
    while (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
           peek() == '\r') {
      ++pos_;
    }
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) {
      return false;
    }
    pos_ += lit.size();
    return true;
  }

  bool value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    if (!eat('{')) {
      return false;
    }
    ws();
    if (eat('}')) {
      return true;
    }
    while (true) {
      ws();
      if (!string()) {
        return false;
      }
      ws();
      if (!eat(':')) {
        return false;
      }
      ws();
      if (!value()) {
        return false;
      }
      ws();
      if (eat('}')) {
        return true;
      }
      if (!eat(',')) {
        return false;
      }
    }
  }

  bool array() {
    if (!eat('[')) {
      return false;
    }
    ws();
    if (eat(']')) {
      return true;
    }
    while (true) {
      ws();
      if (!value()) {
        return false;
      }
      ws();
      if (eat(']')) {
        return true;
      }
      if (!eat(',')) {
        return false;
      }
    }
  }

  bool string() {
    if (!eat('"')) {
      return false;
    }
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      if (c == '\\') {
        if (pos_ >= s_.size()) {
          return false;
        }
        const char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_++]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    eat('-');
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    if (!eat('0')) {
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (eat('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') {
        ++pos_;
      }
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

inline bool isValidJson(std::string_view s) {
  return JsonValidator::valid(s);
}

}  // namespace colibri::test
