// AMO adapter + applyAmo unit tests.
#include <gtest/gtest.h>

#include "atomics/amo.hpp"
#include "mock_bank.hpp"

namespace colibri::test {
namespace {

using atomics::OpKind;

TEST(ApplyAmo, AllOperations) {
  using arch::applyAmo;
  EXPECT_EQ(applyAmo(OpKind::kAmoAdd, 5, 3), 8u);
  EXPECT_EQ(applyAmo(OpKind::kAmoSwap, 5, 3), 3u);
  EXPECT_EQ(applyAmo(OpKind::kAmoAnd, 0b1100, 0b1010), 0b1000u);
  EXPECT_EQ(applyAmo(OpKind::kAmoOr, 0b1100, 0b1010), 0b1110u);
  EXPECT_EQ(applyAmo(OpKind::kAmoXor, 0b1100, 0b1010), 0b0110u);
  EXPECT_EQ(applyAmo(OpKind::kAmoMax, 5, 3), 5u);
  EXPECT_EQ(applyAmo(OpKind::kAmoMin, 5, 3), 3u);
}

TEST(ApplyAmo, MinMaxAreSigned) {
  using arch::applyAmo;
  const sim::Word minusOne = 0xFFFFFFFF;
  EXPECT_EQ(applyAmo(OpKind::kAmoMax, minusOne, 1), 1u);
  EXPECT_EQ(applyAmo(OpKind::kAmoMin, minusOne, 1), minusOne);
}

TEST(ApplyAmo, AddWrapsModulo32) {
  EXPECT_EQ(arch::applyAmo(OpKind::kAmoAdd, 0xFFFFFFFF, 1), 0u);
}

TEST(AmoAdapter, LoadReturnsStoredValue) {
  MockBank bank;
  atomics::AmoAdapter a(bank);
  a.handle(store(4, 77, /*core=*/1));
  a.handle(load(4, 2));
  const auto r = bank.take();
  EXPECT_EQ(r.core, 2u);
  EXPECT_EQ(r.resp.value, 77u);
}

TEST(AmoAdapter, StoreIsPosted) {
  MockBank bank;
  atomics::AmoAdapter a(bank);
  a.handle(store(4, 1, 0));
  EXPECT_TRUE(bank.responses.empty());
  EXPECT_EQ(bank.read(4), 1u);
}

TEST(AmoAdapter, AmoReturnsOldValueAndCommitsNew) {
  MockBank bank;
  atomics::AmoAdapter a(bank);
  a.handle(store(9, 10, 0));
  a.handle(req(OpKind::kAmoAdd, 9, 5, 3));
  EXPECT_EQ(bank.take().resp.value, 10u);
  EXPECT_EQ(bank.read(9), 15u);
  a.handle(req(OpKind::kAmoSwap, 9, 2, 3));
  EXPECT_EQ(bank.take().resp.value, 15u);
  EXPECT_EQ(bank.read(9), 2u);
}

TEST(AmoAdapter, RejectsReservedOps) {
  MockBank bank;
  atomics::AmoAdapter a(bank);
  EXPECT_THROW(a.handle(lr(0, 0)), sim::InvariantViolation);
  EXPECT_THROW(a.handle(lrwait(0, 0)), sim::InvariantViolation);
  EXPECT_THROW(a.handle(mwait(0, 0, 0)), sim::InvariantViolation);
}

TEST(AmoAdapter, CountsEvents) {
  MockBank bank;
  atomics::AmoAdapter a(bank);
  a.handle(load(0, 0));
  a.handle(store(0, 1, 0));
  a.handle(req(OpKind::kAmoAdd, 0, 1, 0));
  EXPECT_EQ(a.stats().loads, 1u);
  EXPECT_EQ(a.stats().stores, 1u);
  EXPECT_EQ(a.stats().amos, 1u);
}

}  // namespace
}  // namespace colibri::test
