// Litmus suite tests: every algorithm x adapter combo holds (or, for the
// deliberately broken naive lock, is caught violating) the exclusion /
// lost-update / progress invariants; results are bit-identical across
// SweepRunner thread counts and reruns; the unfenced memory-model probe
// actually observes the posted-store reordering; and the watchdog turns
// non-progressing runs into clean progress failures instead of hangs.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "arch/system.hpp"
#include "exp/scenario.hpp"
#include "litmus/harness.hpp"
#include "litmus/litmus.hpp"
#include "sim/check.hpp"

namespace colibri::litmus {
namespace {

const std::vector<std::uint64_t> kSeeds{1, 2, 3};

std::vector<MatrixCase> smallMatrix() {
  return buildMatrix(kSeeds, arch::SystemConfig::smallTest());
}

std::string cellName(const MatrixCase& c, const LitmusResult& r) {
  return r.adapter + " x " + r.algorithm + " seed=" +
         std::to_string(c.config.seed);
}

TEST(LitmusRegistry, AllSixAlgorithmsRegistered) {
  ASSERT_EQ(algorithms().size(), 6u);
  for (const char* name :
       {"dekker", "peterson", "bakery", "tas", "naive", "race"}) {
    const auto* info = findAlgorithm(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_EQ(info->name, name);
    EXPECT_GE(info->defaultContenders, info->minContenders);
    EXPECT_LE(info->defaultContenders, info->maxContenders);
  }
  EXPECT_EQ(findAlgorithm("no_such_algorithm"), nullptr);
  // Exactly one algorithm is the detector-sanity case.
  int broken = 0;
  for (const auto& info : algorithms()) {
    broken += info.expectExclusion ? 0 : 1;
  }
  EXPECT_EQ(broken, 1);
  EXPECT_FALSE(infoFor(Algorithm::kNaiveLock).expectExclusion);
}

TEST(LitmusMatrix, CoversEveryAdapterAlgorithmSeedCell) {
  const auto cases = smallMatrix();
  EXPECT_EQ(cases.size(),
            exp::adapters().size() * algorithms().size() * kSeeds.size());
  std::set<std::string> adapters;
  std::set<std::string> algos;
  for (const auto& c : cases) {
    adapters.insert(c.adapter.name);
    algos.insert(infoFor(c.params.algo).name);
  }
  EXPECT_EQ(adapters.size(), exp::adapters().size());
  EXPECT_EQ(algos.size(), algorithms().size());
}

TEST(LitmusMatrix, EveryCellHoldsItsInvariants) {
  const auto cases = smallMatrix();
  const auto results = runMatrix(cases);
  ASSERT_EQ(results.size(), cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& r = results[i];
    const auto& info = infoFor(cases[i].params.algo);
    const auto name = cellName(cases[i], r);
    EXPECT_TRUE(passes(info, r)) << name;
    EXPECT_TRUE(r.progressOk) << name;
    EXPECT_EQ(r.entries, r.expectedEntries) << name;
    if (info.expectExclusion) {
      EXPECT_EQ(r.exclusionViolations, 0u) << name;
      EXPECT_EQ(r.lostUpdates, 0u) << name;
    } else {
      // The broken naive lock must be caught by BOTH detectors on every
      // adapter and seed — this is what keeps the suite non-vacuous.
      EXPECT_GT(r.exclusionViolations, 0u) << name;
      EXPECT_GT(r.lostUpdates, 0u) << name;
    }
    // Per-contender accounting adds up.
    std::uint64_t sum = 0;
    for (const auto e : r.perCoreEntries) {
      sum += e;
    }
    EXPECT_EQ(sum, r.entries) << name;
  }
}

void expectBitIdentical(const LitmusResult& a, const LitmusResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.algorithm, b.algorithm) << what;
  EXPECT_EQ(a.adapter, b.adapter) << what;
  EXPECT_EQ(a.seed, b.seed) << what;
  EXPECT_EQ(a.entries, b.entries) << what;
  EXPECT_EQ(a.exclusionViolations, b.exclusionViolations) << what;
  EXPECT_EQ(a.lostUpdates, b.lostUpdates) << what;
  EXPECT_EQ(a.perCoreEntries, b.perCoreEntries) << what;
  EXPECT_EQ(a.finishedAt, b.finishedAt) << what;
  EXPECT_EQ(a.progressOk, b.progressOk) << what;
}

TEST(LitmusDeterminism, BitIdenticalAcrossThreadCountsAndReruns) {
  const auto cases = smallMatrix();
  const auto serial = runMatrix(cases, 1);
  const auto wide = runMatrix(cases, 8);
  const auto rerun = runMatrix(cases, 1);
  ASSERT_EQ(serial.size(), cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    expectBitIdentical(serial[i], wide[i],
                       cellName(cases[i], serial[i]) + " (threads)");
    expectBitIdentical(serial[i], rerun[i],
                       cellName(cases[i], serial[i]) + " (rerun)");
  }
}

TEST(LitmusDeterminism, SeedActuallyChangesTheInterleaving) {
  // The naive lock's violation pattern is interleaving-sensitive: across
  // seeds the counts must not all collapse to one value.
  std::set<std::uint64_t> violations;
  for (const std::uint64_t seed : {1, 2, 3, 4}) {
    auto cfg = arch::SystemConfig::smallTest();
    cfg.seed = seed;
    arch::System sys(cfg);
    LitmusParams p;
    p.algo = Algorithm::kNaiveLock;
    p.contenders = 4;
    const auto r = runLitmus(sys, p);
    violations.insert(r.exclusionViolations);
  }
  EXPECT_GT(violations.size(), 1u);
}

TEST(LitmusMemoryModel, UnfencedDekkerObservesStoreLoadReordering) {
  // Posted protocol stores re-open the store->load race Dekker assumes
  // away: with the adversarial flag placement (each contender's flag in
  // the other's tile) the violation fires on every seed we pin here.
  for (const std::uint64_t seed : {1, 2, 3, 4}) {
    auto cfg = arch::SystemConfig::smallTest();
    cfg.seed = seed;
    arch::System sys(cfg);
    LitmusParams p;
    p.algo = Algorithm::kDekker;
    p.fenced = false;
    const auto r = runLitmus(sys, p);
    EXPECT_GT(r.exclusionViolations, 0u) << "seed " << seed;
    EXPECT_TRUE(r.progressOk) << "seed " << seed;
  }
}

TEST(LitmusMemoryModel, FencedDekkerSurvivesTheSamePlacement) {
  for (const std::uint64_t seed : {1, 2, 3, 4}) {
    auto cfg = arch::SystemConfig::smallTest();
    cfg.seed = seed;
    arch::System sys(cfg);
    LitmusParams p;
    p.algo = Algorithm::kDekker;
    p.fenced = true;
    const auto r = runLitmus(sys, p);
    EXPECT_TRUE(r.holds()) << "seed " << seed;
  }
}

TEST(LitmusWatchdog, AbortsNonProgressingRunCleanly) {
  // A watchdog far too small for the programmed work: contenders must back
  // out of their entry protocols, the system must drain, and the result
  // must report a progress failure (not hang, not throw).
  arch::System sys(arch::SystemConfig::smallTest());
  LitmusParams p;
  p.algo = Algorithm::kBakery;
  p.contenders = 4;
  p.iterations = 10'000;
  p.watchdog = 500;
  const auto r = runLitmus(sys, p);
  EXPECT_FALSE(r.progressOk);
  EXPECT_LT(r.entries, r.expectedEntries);
  EXPECT_EQ(r.exclusionViolations, 0u);  // aborted, but never overlapped
  EXPECT_EQ(r.lostUpdates, 0u);
}

TEST(LitmusParamsValidation, RejectsOutOfRangeRequests) {
  arch::System sys(arch::SystemConfig::smallTest());
  LitmusParams p;
  p.algo = Algorithm::kDekker;
  p.contenders = 3;  // Dekker is strictly 2-party
  EXPECT_THROW((void)runLitmus(sys, p), sim::InvariantViolation);
  p.contenders = 2;
  p.iterations = 0;
  EXPECT_THROW((void)runLitmus(sys, p), sim::InvariantViolation);
}

TEST(LitmusResultApi, PassCriteriaMatchExpectations) {
  LitmusResult r;
  r.progressOk = true;
  EXPECT_TRUE(r.holds());
  EXPECT_FALSE(r.violationDetected());
  r.lostUpdates = 2;
  EXPECT_FALSE(r.holds());
  EXPECT_TRUE(r.violationDetected());
  EXPECT_FALSE(passes(infoFor(Algorithm::kDekker), r));
  EXPECT_TRUE(passes(infoFor(Algorithm::kNaiveLock), r));
}

}  // namespace
}  // namespace colibri::litmus
