// Area model (Table I), energy model (Table II) and report printer tests.
#include <gtest/gtest.h>

#include <sstream>

#include "model/area.hpp"
#include "model/energy.hpp"
#include "report/table.hpp"

namespace colibri {
namespace {

using arch::SystemConfig;

TEST(AreaModel, MatchesPaperAnchorsWithinTenPercent) {
  const auto rows = model::tableOne();
  for (const auto& row : rows) {
    if (row.paperKge == 0.0) {
      continue;  // no anchor (LRSCwait_ideal)
    }
    EXPECT_NEAR(row.areaKge, row.paperKge, row.paperKge * 0.10)
        << row.architecture << " (" << row.parameters << ")";
  }
}

TEST(AreaModel, LrscWaitGrowsLinearlyInQueueSlots) {
  const auto cfg = SystemConfig::memPool();
  const double a1 = model::lrscWaitTileArea(cfg, 1);
  const double a2 = model::lrscWaitTileArea(cfg, 2);
  const double a4 = model::lrscWaitTileArea(cfg, 4);
  EXPECT_NEAR(a4 - a2, 2.0 * (a2 - a1), 1e-9);
}

TEST(AreaModel, IdealLrscWaitIsInfeasiblyLarge) {
  const auto cfg = SystemConfig::memPool();
  const double ideal = model::lrscWaitTileArea(cfg, cfg.numCores);
  const double base = model::AreaParams{}.baseTileKge;
  // >4x the tile: the paper calls this "physically infeasible".
  EXPECT_GT(ideal, 4.0 * base);
}

TEST(AreaModel, ColibriOverheadIsSmall) {
  const auto cfg = SystemConfig::memPool();
  const double base = model::AreaParams{}.baseTileKge;
  // The paper's headline: ~6% overhead for the 1-address configuration.
  const double overhead = model::colibriTileArea(cfg, 1) / base - 1.0;
  EXPECT_GT(overhead, 0.04);
  EXPECT_LT(overhead, 0.08);
}

TEST(AreaModel, SystemScalingLinearVsQuadratic) {
  // Scale the machine 1x..4x and compare overhead growth: LRSCwait_ideal
  // (q = cores) grows ~quadratically, Colibri linearly.
  auto cfgAt = [](std::uint32_t mult) {
    auto c = SystemConfig::memPool();
    c.numCores *= mult;  // tiles scale with cores (same tile shape)
    return c;
  };
  const double colibri1 = model::systemOverheadKge(cfgAt(1), true, 4);
  const double colibri4 = model::systemOverheadKge(cfgAt(4), true, 4);
  EXPECT_NEAR(colibri4 / colibri1, 4.0, 0.3);

  const double ideal1 =
      model::systemOverheadKge(cfgAt(1), false, cfgAt(1).numCores);
  const double ideal4 =
      model::systemOverheadKge(cfgAt(4), false, cfgAt(4).numCores);
  EXPECT_GT(ideal4 / ideal1, 10.0);  // super-linear (≈16x for pure n^2 term)
}

TEST(EnergyModel, BreakdownSumsToTotal) {
  workloads::SystemCounters c;
  c.windowCycles = 1000;
  c.activeCores = 4;
  c.sleepCycles = 1000;
  c.computeCycles = 800;
  c.stallCycles = 300;
  c.instructions = 500;
  c.bankAccesses = 400;
  c.netMessages = {100, 50, 25};
  const auto e = model::chargeEnergy(c);
  EXPECT_NEAR(e.totalPj(), e.instructionPj + e.bankPj + e.networkPj +
                               e.computePj + e.stallPj + e.sleepPj,
              1e-9);
  EXPECT_GT(e.totalPj(), 0.0);
}

TEST(EnergyModel, SleepingIsCheaperThanSpinning) {
  // The same wait spent asleep (Mwait) vs. spinning in a pacing loop.
  workloads::SystemCounters spinning;
  spinning.windowCycles = 1000;
  spinning.activeCores = 1;
  spinning.computeCycles = 900;
  workloads::SystemCounters asleep;
  asleep.windowCycles = 1000;
  asleep.activeCores = 1;
  asleep.sleepCycles = 900;
  EXPECT_LT(model::chargeEnergy(asleep).totalPj(),
            0.2 * model::chargeEnergy(spinning).totalPj());
}

TEST(EnergyModel, PerOpDividesByOps) {
  workloads::SystemCounters c;
  c.windowCycles = 100;
  c.activeCores = 1;
  c.instructions = 100;
  const double e1 = model::energyPerOp(c, 10);
  const double e2 = model::energyPerOp(c, 20);
  EXPECT_NEAR(e1, 2.0 * e2, 1e-9);
  EXPECT_EQ(model::energyPerOp(c, 0), 0.0);
}

TEST(EnergyModel, DynamicPowerScalesWithFrequency) {
  workloads::SystemCounters c;
  c.windowCycles = 1000;
  c.activeCores = 4;
  c.instructions = 100;
  model::EnergyParams slow;
  slow.mhz = 300.0;
  slow.idlePowerMw = 0.0;  // isolate the dynamic part
  model::EnergyParams fast = slow;
  fast.mhz = 600.0;
  EXPECT_NEAR(model::averagePowerMw(c, fast),
              2.0 * model::averagePowerMw(c, slow), 1e-9);
  // With the background floor, power sits above it.
  EXPECT_GT(model::averagePowerMw(c), model::EnergyParams{}.idlePowerMw);
}

TEST(EnergyModel, RetryHeavyRunCostsMore) {
  // Same completed ops; the LR/SC-style run has 30x the instructions and
  // bank traffic (retries) and no sleep: per-op energy must be far higher.
  workloads::SystemCounters colibri;
  colibri.windowCycles = 1000;
  colibri.activeCores = 16;
  colibri.sleepCycles = 12000;
  colibri.instructions = 2000;
  colibri.bankAccesses = 2000;
  colibri.netMessages = {0, 2000, 2000};

  workloads::SystemCounters lrsc = colibri;
  lrsc.sleepCycles = 0;
  lrsc.instructions = 60000;
  lrsc.bankAccesses = 60000;
  lrsc.netMessages = {0, 60000, 60000};

  EXPECT_GT(model::energyPerOp(lrsc, 1000),
            4.0 * model::energyPerOp(colibri, 1000));
}

TEST(Report, TableAlignsAndCounts) {
  report::Table t({"name", "value"});
  t.addRow({"alpha", "1.5"}).addRow({"b", "22.25"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.25"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Report, CsvEmission) {
  report::Table t({"a", "b"});
  t.addRow({"1", "2"});
  std::ostringstream os;
  t.printCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Report, CsvQuotesCellsWithCommasAndQuotes) {
  report::Table t({"name", "desc"});
  t.addRow({"plain", "a, b"});
  t.addRow({"q", "say \"hi\""});
  std::ostringstream os;
  t.printCsv(os);
  EXPECT_EQ(os.str(), "name,desc\nplain,\"a, b\"\nq,\"say \"\"hi\"\"\"\n");
}

TEST(Report, MismatchedRowThrows) {
  report::Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), sim::InvariantViolation);
}

TEST(Report, Formatters) {
  EXPECT_EQ(report::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(report::fmtSpeedup(6.5), "6.50x");
  EXPECT_EQ(report::fmtPercent(16.4), "16.4%");
}

}  // namespace
}  // namespace colibri
