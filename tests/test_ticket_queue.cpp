// TicketQueue unit tests: single-core round trips, prefill, blocking
// semantics (full queue blocks producers, empty queue blocks consumers),
// and multi-core conservation.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "arch/system.hpp"
#include "workloads/ticket_queue.hpp"

namespace colibri::workloads {
namespace {

using arch::AdapterKind;
using arch::Core;
using arch::System;
using arch::SystemConfig;

SystemConfig colibriCfg() {
  auto c = SystemConfig::smallTest();
  c.adapter = AdapterKind::kColibri;
  return c;
}

sim::Task roundTrip(System& sys, Core& core, TicketQueue& q,
                    std::vector<sim::Word>& got, int iters) {
  auto rng = sim::Xoshiro256::forStream(sys.config().seed, core.id());
  sync::Backoff bo(sync::BackoffPolicy::fixed(16), rng);
  for (int i = 0; i < iters; ++i) {
    co_await q.enqueue(core, static_cast<sim::Word>(100 + i),
                       sync::RmwFlavor::kLrscWait, true, bo);
    got.push_back(co_await q.dequeue(core, sync::RmwFlavor::kLrscWait, true,
                                     bo));
  }
}

TEST(TicketQueue, SingleCoreFifoRoundTrip) {
  System sys(colibriCfg());
  auto q = TicketQueue::create(sys, 8);
  std::vector<sim::Word> got;
  sys.spawn(0, roundTrip(sys, sys.core(0), q, got, 5));
  sys.run();
  sys.rethrowFailures();
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], 100u + i);
  }
}

TEST(TicketQueue, PrefilledValuesComeOutFirstInOrder) {
  System sys(colibriCfg());
  auto q = TicketQueue::create(sys, 8, {11, 22, 33});
  std::vector<sim::Word> got;
  auto drain = [&got](System&, Core& core, TicketQueue& tq) -> sim::Task {
    sim::Xoshiro256 rng(1);
    sync::Backoff bo(sync::BackoffPolicy::fixed(16), rng);
    for (int i = 0; i < 3; ++i) {
      got.push_back(co_await tq.dequeue(core, sync::RmwFlavor::kLrscWait,
                                        true, bo));
    }
  };
  sys.spawn(0, drain(sys, sys.core(0), q));
  sys.run();
  sys.rethrowFailures();
  EXPECT_EQ(got, (std::vector<sim::Word>{11, 22, 33}));
}

TEST(TicketQueue, DequeueBlocksUntilAnEnqueueArrives) {
  System sys(colibriCfg());
  auto q = TicketQueue::create(sys, 4);
  sim::Cycle dequeuedAt = 0;
  auto consumer = [&](System& s, Core& core, TicketQueue& tq) -> sim::Task {
    sim::Xoshiro256 rng(1);
    sync::Backoff bo(sync::BackoffPolicy::fixed(16), rng);
    const auto v =
        co_await tq.dequeue(core, sync::RmwFlavor::kLrscWait, true, bo);
    EXPECT_EQ(v, 77u);
    dequeuedAt = s.now();
  };
  auto producer = [](System&, Core& core, TicketQueue& tq) -> sim::Task {
    co_await core.delay(120);
    sim::Xoshiro256 rng(2);
    sync::Backoff bo(sync::BackoffPolicy::fixed(16), rng);
    co_await tq.enqueue(core, 77, sync::RmwFlavor::kLrscWait, true, bo);
  };
  sys.spawn(0, consumer(sys, sys.core(0), q));
  sys.spawn(1, producer(sys, sys.core(1), q));
  sys.run();
  sys.rethrowFailures();
  EXPECT_GE(dequeuedAt, 120u);  // waited for the producer
}

TEST(TicketQueue, EnqueueBlocksWhenFull) {
  System sys(colibriCfg());
  auto q = TicketQueue::create(sys, 2, {1, 2});  // full from the start
  sim::Cycle enqueuedAt = 0;
  auto producer = [&](System& s, Core& core, TicketQueue& tq) -> sim::Task {
    sim::Xoshiro256 rng(1);
    sync::Backoff bo(sync::BackoffPolicy::fixed(16), rng);
    co_await tq.enqueue(core, 3, sync::RmwFlavor::kLrscWait, true, bo);
    enqueuedAt = s.now();
  };
  auto consumer = [](System&, Core& core, TicketQueue& tq) -> sim::Task {
    co_await core.delay(150);
    sim::Xoshiro256 rng(2);
    sync::Backoff bo(sync::BackoffPolicy::fixed(16), rng);
    (void)co_await tq.dequeue(core, sync::RmwFlavor::kLrscWait, true, bo);
  };
  sys.spawn(0, producer(sys, sys.core(0), q));
  sys.spawn(1, consumer(sys, sys.core(1), q));
  sys.run();
  sys.rethrowFailures();
  EXPECT_GE(enqueuedAt, 150u);  // had to wait for the slot to free
}

class TicketQueueFlavors
    : public ::testing::TestWithParam<sync::RmwFlavor> {};

// Conservation property under concurrency: N cores each push K tagged
// values and pop K values; the multiset of popped values equals the
// multiset pushed.
TEST_P(TicketQueueFlavors, ConservesValuesUnderContention) {
  auto cfg = SystemConfig::smallTest();
  cfg.adapter = GetParam() == sync::RmwFlavor::kLrsc
                    ? AdapterKind::kLrscTable
                    : AdapterKind::kColibri;
  System sys(cfg);
  auto q = TicketQueue::create(sys, 32);
  std::vector<sim::Word> popped;
  constexpr int kIters = 20;
  auto worker = [&popped](System& s, Core& core, TicketQueue& tq,
                          sync::RmwFlavor flavor) -> sim::Task {
    auto rng = sim::Xoshiro256::forStream(s.config().seed, core.id());
    sync::Backoff bo(sync::BackoffPolicy::fixed(32), rng);
    const bool mwait = flavor == sync::RmwFlavor::kLrscWait;
    for (int i = 0; i < kIters; ++i) {
      co_await tq.enqueue(core, (core.id() << 8) | static_cast<sim::Word>(i),
                          flavor, mwait, bo);
      popped.push_back(co_await tq.dequeue(core, flavor, mwait, bo));
    }
  };
  for (sim::CoreId c = 0; c < 8; ++c) {
    sys.spawn(c, worker(sys, sys.core(c), q, GetParam()));
  }
  sys.run();
  sys.rethrowFailures();
  EXPECT_TRUE(sys.allTasksDone());
  ASSERT_EQ(popped.size(), 8u * kIters);
  std::sort(popped.begin(), popped.end());
  EXPECT_EQ(std::adjacent_find(popped.begin(), popped.end()), popped.end())
      << "duplicate value popped";
  std::vector<sim::Word> expected;
  for (sim::CoreId c = 0; c < 8; ++c) {
    for (int i = 0; i < kIters; ++i) {
      expected.push_back((c << 8) | static_cast<sim::Word>(i));
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(popped, expected);
}

INSTANTIATE_TEST_SUITE_P(Flavors, TicketQueueFlavors,
                         ::testing::Values(sync::RmwFlavor::kLrsc,
                                           sync::RmwFlavor::kLrscWait),
                         [](const auto& info) {
                           return std::string(
                               info.param == sync::RmwFlavor::kLrsc
                                   ? "lrsc"
                                   : "lrscwait");
                         });

}  // namespace
}  // namespace colibri::workloads
