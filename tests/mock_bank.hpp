// Test double for BankContext: drives adapters directly (no network, no
// engine) and records every response and protocol message synchronously.
// This isolates the adapter protocol logic for unit testing; the
// integration tests cover the same adapters behind the real network.
#pragma once

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "atomics/adapter.hpp"

namespace colibri::test {

using atomics::BankContext;
using atomics::MemRequest;
using atomics::MemResponse;
using sim::Addr;
using sim::CoreId;
using sim::Word;

class MockBank final : public BankContext {
 public:
  struct Response {
    CoreId core;
    MemResponse resp;
  };
  struct SuccUpdate {
    CoreId target;
    CoreId successor;
    Addr addr;
    bool successorIsMwait;
  };

  [[nodiscard]] Word read(Addr a) const override {
    const auto it = mem_.find(a);
    return it == mem_.end() ? 0 : it->second;
  }
  void writeRaw(Addr a, Word v) override { mem_[a] = v; }
  void respond(CoreId c, const MemResponse& r) override {
    responses.push_back({c, r});
  }
  void sendSuccessorUpdate(CoreId target, CoreId successor, Addr a,
                           bool isMwait) override {
    updates.push_back({target, successor, a, isMwait});
  }
  [[nodiscard]] sim::Cycle now() const override { return now_; }
  [[nodiscard]] sim::BankId bankId() const override { return 0; }
  [[nodiscard]] std::uint32_t numCores() const override { return numCores_; }

  void setNumCores(std::uint32_t n) { numCores_ = n; }
  void tick() { ++now_; }

  /// Pop the oldest recorded response (FIFO); fails the test if none.
  Response take() {
    EXPECT_FALSE(responses.empty());
    Response r = responses.front();
    responses.erase(responses.begin());
    return r;
  }

  std::vector<Response> responses;
  std::vector<SuccUpdate> updates;

 private:
  std::unordered_map<Addr, Word> mem_;
  sim::Cycle now_ = 0;
  std::uint32_t numCores_ = 8;
};

// Request builders.
inline MemRequest req(atomics::OpKind k, Addr a, Word v, CoreId c) {
  MemRequest r;
  r.kind = k;
  r.addr = a;
  r.value = v;
  r.core = c;
  return r;
}
inline MemRequest load(Addr a, CoreId c) {
  return req(atomics::OpKind::kLoad, a, 0, c);
}
inline MemRequest store(Addr a, Word v, CoreId c) {
  return req(atomics::OpKind::kStore, a, v, c);
}
inline MemRequest lr(Addr a, CoreId c) {
  return req(atomics::OpKind::kLr, a, 0, c);
}
inline MemRequest sc(Addr a, Word v, CoreId c) {
  return req(atomics::OpKind::kSc, a, v, c);
}
inline MemRequest lrwait(Addr a, CoreId c) {
  return req(atomics::OpKind::kLrWait, a, 0, c);
}
inline MemRequest scwait(Addr a, Word v, CoreId c) {
  return req(atomics::OpKind::kScWait, a, v, c);
}
inline MemRequest mwait(Addr a, Word expected, CoreId c) {
  return req(atomics::OpKind::kMwait, a, expected, c);
}
inline MemRequest wakeup(Addr a, CoreId successor, bool succIsMwait,
                         CoreId from) {
  auto r = req(atomics::OpKind::kWakeUp, a, successor, from);
  r.successorIsMwait = succIsMwait;
  return r;
}

}  // namespace colibri::test
