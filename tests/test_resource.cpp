// ThroughputResource unit tests: bandwidth limiting and FIFO queueing.
#include <gtest/gtest.h>

#include "sim/resource.hpp"

namespace colibri::sim {
namespace {

TEST(ThroughputResource, UncontendedGrantsImmediately) {
  ThroughputResource r(1);
  EXPECT_EQ(r.acquire(5), 5u);
  EXPECT_EQ(r.acquire(9), 9u);
}

TEST(ThroughputResource, SerializesSameCycleRequests) {
  ThroughputResource r(1);
  EXPECT_EQ(r.acquire(3), 3u);
  EXPECT_EQ(r.acquire(3), 4u);
  EXPECT_EQ(r.acquire(3), 5u);
}

TEST(ThroughputResource, MultipleSlotsPerCycle) {
  ThroughputResource r(2);
  EXPECT_EQ(r.acquire(0), 0u);
  EXPECT_EQ(r.acquire(0), 0u);
  EXPECT_EQ(r.acquire(0), 1u);
  EXPECT_EQ(r.acquire(0), 1u);
  EXPECT_EQ(r.acquire(0), 2u);
}

TEST(ThroughputResource, BacklogDelaysLaterArrivals) {
  ThroughputResource r(1);
  for (int i = 0; i < 10; ++i) {
    r.acquire(0);
  }
  // Cursor sits at cycle 9; an arrival at cycle 4 queues behind it.
  EXPECT_EQ(r.acquire(4), 10u);
}

TEST(ThroughputResource, PeekDoesNotClaim) {
  ThroughputResource r(1);
  EXPECT_EQ(r.peek(2), 2u);
  EXPECT_EQ(r.acquire(2), 2u);
  EXPECT_EQ(r.peek(2), 3u);
  EXPECT_EQ(r.peek(2), 3u);  // still 3: peek has no side effect
}

TEST(ThroughputResource, TracksQueueingDelay) {
  ThroughputResource r(1);
  r.acquire(0);
  r.acquire(0);  // +1
  r.acquire(0);  // +2
  EXPECT_EQ(r.totalGrants(), 3u);
  EXPECT_EQ(r.totalQueueingDelay(), 3u);
  r.resetStats();
  EXPECT_EQ(r.totalGrants(), 0u);
  EXPECT_EQ(r.totalQueueingDelay(), 0u);
}

TEST(ThroughputResource, IdleGapResetsCursor) {
  ThroughputResource r(1);
  r.acquire(0);
  r.acquire(0);
  // Long idle gap: no residual backlog.
  EXPECT_EQ(r.acquire(100), 100u);
}

class ThroughputSweep : public ::testing::TestWithParam<std::uint32_t> {};

// Property: over a dense burst of N arrivals at cycle 0, the k-th grant is
// at cycle k / slotsPerCycle — the resource never exceeds its bandwidth
// and never idles while work is queued.
TEST_P(ThroughputSweep, DenseBurstSaturatesExactly) {
  const std::uint32_t slots = GetParam();
  ThroughputResource r(slots);
  const std::uint32_t n = 64;
  for (std::uint32_t k = 0; k < n; ++k) {
    EXPECT_EQ(r.acquire(0), k / slots) << "grant " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, ThroughputSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u));

}  // namespace
}  // namespace colibri::sim
