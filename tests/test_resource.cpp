// ThroughputResource unit tests: bandwidth limiting and FIFO queueing.
#include <gtest/gtest.h>

#include "sim/resource.hpp"

namespace colibri::sim {
namespace {

TEST(ThroughputResource, UncontendedGrantsImmediately) {
  ThroughputResource r(1);
  EXPECT_EQ(r.acquire(5), 5u);
  EXPECT_EQ(r.acquire(9), 9u);
}

TEST(ThroughputResource, SerializesSameCycleRequests) {
  ThroughputResource r(1);
  EXPECT_EQ(r.acquire(3), 3u);
  EXPECT_EQ(r.acquire(3), 4u);
  EXPECT_EQ(r.acquire(3), 5u);
}

TEST(ThroughputResource, MultipleSlotsPerCycle) {
  ThroughputResource r(2);
  EXPECT_EQ(r.acquire(0), 0u);
  EXPECT_EQ(r.acquire(0), 0u);
  EXPECT_EQ(r.acquire(0), 1u);
  EXPECT_EQ(r.acquire(0), 1u);
  EXPECT_EQ(r.acquire(0), 2u);
}

TEST(ThroughputResource, BacklogDelaysLaterArrivals) {
  ThroughputResource r(1);
  for (int i = 0; i < 10; ++i) {
    r.acquire(0);
  }
  // Cursor sits at cycle 9; an arrival at cycle 4 queues behind it.
  EXPECT_EQ(r.acquire(4), 10u);
}

TEST(ThroughputResource, PeekDoesNotClaim) {
  ThroughputResource r(1);
  EXPECT_EQ(r.peek(2), 2u);
  EXPECT_EQ(r.acquire(2), 2u);
  EXPECT_EQ(r.peek(2), 3u);
  EXPECT_EQ(r.peek(2), 3u);  // still 3: peek has no side effect
}

TEST(ThroughputResource, TracksQueueingDelay) {
  ThroughputResource r(1);
  r.acquire(0);
  r.acquire(0);  // +1
  r.acquire(0);  // +2
  EXPECT_EQ(r.totalGrants(), 3u);
  EXPECT_EQ(r.totalQueueingDelay(), 3u);
  r.resetStats();
  EXPECT_EQ(r.totalGrants(), 0u);
  EXPECT_EQ(r.totalQueueingDelay(), 0u);
}

TEST(ThroughputResource, IdleGapResetsCursor) {
  ThroughputResource r(1);
  r.acquire(0);
  r.acquire(0);
  // Long idle gap: no residual backlog.
  EXPECT_EQ(r.acquire(100), 100u);
}

TEST(ThroughputResource, BulkAcquireOfOneEqualsScalarAcquire) {
  ThroughputResource bulk(2);
  ThroughputResource scalar(2);
  for (Cycle at : {0u, 0u, 0u, 5u, 5u, 6u}) {
    EXPECT_EQ(bulk.acquire(at, 1), scalar.acquire(at));
  }
  EXPECT_EQ(bulk.totalGrants(), scalar.totalGrants());
  EXPECT_EQ(bulk.totalQueueingDelay(), scalar.totalQueueingDelay());
}

TEST(ThroughputResource, BulkAcquireMatchesScalarLoopExactly) {
  // Property: acquire(at, n) is bit-equivalent (grant cycle, grant count,
  // queueing delay, and all future behavior) to the scalar chain
  // g = acquire(at); g = acquire(g); ... that holdSlots backpressure used
  // to issue. Randomized interleavings across bandwidths.
  for (const std::uint32_t slots : {1u, 2u, 3u, 4u, 8u, 16u}) {
    ThroughputResource bulk(slots);
    ThroughputResource scalar(slots);
    std::uint64_t state = 0x9E3779B97F4A7C15ull ^ slots;
    Cycle at = 0;
    for (int i = 0; i < 500; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      at += (state >> 33) % 3;            // nondecreasing arrivals with jitter
      const auto n = static_cast<std::uint32_t>((state >> 17) % 9 + 1);
      const Cycle got = bulk.acquire(at, n);
      Cycle want = scalar.acquire(at);
      for (std::uint32_t k = 1; k < n; ++k) {
        want = scalar.acquire(want);
      }
      ASSERT_EQ(got, want) << "slots=" << slots << " i=" << i << " at=" << at
                           << " n=" << n;
      ASSERT_EQ(bulk.totalGrants(), scalar.totalGrants());
      ASSERT_EQ(bulk.totalQueueingDelay(), scalar.totalQueueingDelay());
    }
    // Residual state must match too: a final probe grants identically.
    EXPECT_EQ(bulk.acquire(at), scalar.acquire(at));
  }
}

class ThroughputSweep : public ::testing::TestWithParam<std::uint32_t> {};

// Property: over a dense burst of N arrivals at cycle 0, the k-th grant is
// at cycle k / slotsPerCycle — the resource never exceeds its bandwidth
// and never idles while work is queued.
TEST_P(ThroughputSweep, DenseBurstSaturatesExactly) {
  const std::uint32_t slots = GetParam();
  ThroughputResource r(slots);
  const std::uint32_t n = 64;
  for (std::uint32_t k = 0; k < n; ++k) {
    EXPECT_EQ(r.acquire(0), k / slots) << "grant " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, ThroughputSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u));

}  // namespace
}  // namespace colibri::sim
